#!/usr/bin/env bash
# Line-coverage gate for the observability subsystem: builds with gcov
# instrumentation (-DPROBE_COVERAGE=ON), runs the `obs` ctest label, and
# fails unless src/obs/ line coverage meets the floor.
#
# Usage: scripts/coverage.sh [build-dir] [floor-percent]
#
# Uses gcovr when installed (CI path); otherwise falls back to raw gcov
# and aggregates its per-file "Lines executed" summaries. Headers show up
# once per including TU with per-TU counts, so the fallback keeps the
# most-covered view of each file — close enough for a floor gate, and it
# needs nothing beyond the compiler's own tooling.
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build-cov}"
FLOOR="${2:-80}"

if [ -f "$BUILD/CMakeCache.txt" ]; then
  cmake -B "$BUILD" -DPROBE_COVERAGE=ON
else
  cmake -B "$BUILD" -S . -DPROBE_COVERAGE=ON
fi
cmake --build "$BUILD" -j
# Stale counters from a previous run would inflate the report.
find "$BUILD" -name '*.gcda' -delete
ctest --test-dir "$BUILD" -L obs --output-on-failure

if command -v gcovr >/dev/null 2>&1; then
  gcovr --root . --object-directory "$BUILD" --filter 'src/obs/' \
        --print-summary --fail-under-line "$FLOOR"
  exit 0
fi

echo "gcovr not found; falling back to raw gcov"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
# Absolute paths: gcov runs from the scratch dir so its *.gcov droppings
# (if any) never land in the tree.
abs_build="$(cd "$BUILD" && pwd)"
find "$abs_build" -name '*.gcda' -print0 \
  | (cd "$tmp" && xargs -0 gcov -n >gcov.out 2>/dev/null) || true
python3 - "$tmp/gcov.out" "$FLOOR" <<'PYEOF'
import re
import sys

path, floor = sys.argv[1], float(sys.argv[2])
best = {}
current = None
for line in open(path):
    m = re.match(r"File '(.*)'", line)
    if m:
        current = m.group(1)
        continue
    m = re.match(r"Lines executed:([0-9.]+)% of ([0-9]+)", line)
    if m:
        if current is not None and "src/obs/" in current:
            pct, total = float(m.group(1)), int(m.group(2))
            executed = pct / 100.0 * total
            prev = best.get(current)
            if prev is None or executed * prev[1] > prev[0] * total:
                best[current] = (executed, total)
        current = None

if not best:
    sys.exit("no src/obs/ coverage data found — was the obs label run?")
for name, (executed, total) in sorted(best.items()):
    print(f"  {name}: {100.0 * executed / total:5.1f}% of {total} lines")
total = sum(t for _, t in best.values())
executed = sum(e for e, _ in best.values())
pct = 100.0 * executed / total
print(f"src/obs/ line coverage: {pct:.1f}% (floor {floor:.0f}%)")
if pct < floor:
    sys.exit(f"FAIL: src/obs/ coverage {pct:.1f}% is below the {floor:.0f}% floor")
PYEOF
