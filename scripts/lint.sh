#!/usr/bin/env bash
# Static-analysis gate: the project-invariant linter, then clang-tidy over
# the compile database.
#
# Usage: scripts/lint.sh [build-dir] [-- extra clang-tidy args]
#
# Runs scripts/invariant_lint.py (always — it needs only python3), then
# clang-tidy (config: .clang-tidy at the repo root) over every first-party
# translation unit in the given build directory's compile_commands.json
# (default: build/). Exits nonzero on any invariant finding, any diagnostic
# from a WarningsAsErrors check, or any warning when LINT_STRICT=1.
#
# Missing-tool policy — fail loudly, skip only on request:
#   * In CI (the CI env var is set, as every mainstream CI sets it) or with
#     LINT_REQUIRE_TOOLS=1, a missing clang-tidy is a hard failure: a CI
#     image change must never silently turn the gate off.
#   * Locally, a missing clang-tidy is also an error unless LINT_SOFT_SKIP=1
#     (scripts/check.sh sets it by default so the full check stays runnable
#     on the gcc-only container; CI does not).

set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
shift || true
[ "${1:-}" = "--" ] && shift

# Project invariants first: pure python, runs everywhere. --mode=auto
# upgrades token rules with clang-query AST matchers when available.
PYTHON="${PYTHON:-python3}"
if ! "$PYTHON" "$ROOT/scripts/invariant_lint.py" --mode=auto \
    --build-dir "$BUILD"; then
  echo "lint.sh: invariant_lint.py FAILED" >&2
  exit 1
fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  if [ -n "${CI:-}" ] || [ "${LINT_REQUIRE_TOOLS:-0}" = "1" ]; then
    echo "lint.sh: $TIDY not found but required (CI/LINT_REQUIRE_TOOLS)" >&2
    exit 1
  fi
  if [ "${LINT_SOFT_SKIP:-0}" = "1" ]; then
    echo "lint.sh: $TIDY not found; soft-skipping clang-tidy (LINT_SOFT_SKIP=1)"
    exit 0
  fi
  echo "lint.sh: $TIDY not found; install clang-tidy, or set LINT_SOFT_SKIP=1" \
       "to skip the clang-tidy half locally" >&2
  exit 1
fi

DB="$BUILD/compile_commands.json"
if [ ! -f "$DB" ]; then
  echo "lint.sh: $DB not found; configure with cmake first" >&2
  exit 1
fi

# First-party sources only: everything the compile database knows about
# under src/, tests/, bench/, and examples/.
mapfile -t FILES < <(
  grep -o '"file": *"[^"]*"' "$DB" | sed 's/"file": *"//; s/"$//' |
    grep -E "^$ROOT/(src|tests|bench|examples)/" | sort -u
)

if [ "${#FILES[@]}" -eq 0 ]; then
  echo "lint.sh: no first-party files in $DB" >&2
  exit 1
fi

echo "lint.sh: checking ${#FILES[@]} files with $("$TIDY" --version | head -1)"

STATUS=0
FAILED=()
for f in "${FILES[@]}"; do
  if ! OUT=$("$TIDY" -p "$BUILD" --quiet "$@" "$f" 2>/dev/null); then
    STATUS=1
    FAILED+=("$f")
    printf '%s\n' "$OUT"
  elif [ -n "$OUT" ]; then
    printf '%s\n' "$OUT"
    if [ "${LINT_STRICT:-0}" = "1" ]; then
      STATUS=1
      FAILED+=("$f")
    fi
  fi
done

if [ "$STATUS" -ne 0 ]; then
  echo "lint.sh: FAILED (${#FAILED[@]} files):" >&2
  printf '  %s\n' "${FAILED[@]}" >&2
else
  echo "lint.sh: OK"
fi
exit "$STATUS"
