#!/usr/bin/env bash
# clang-tidy gate over the compile database.
#
# Usage: scripts/lint.sh [build-dir] [-- extra clang-tidy args]
#
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# first-party translation unit in the given build directory's
# compile_commands.json (default: build/). Exits nonzero on any diagnostic
# from a WarningsAsErrors check, or on any warning when LINT_STRICT=1.
#
# Degrades gracefully: when clang-tidy is not installed (the default
# container ships only gcc) it prints a notice and exits 0 so check.sh can
# run end-to-end everywhere; CI installs clang-tidy and gets the real gate.

set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
shift || true
[ "${1:-}" = "--" ] && shift

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "lint.sh: $TIDY not found; skipping lint (install clang-tidy to enable)"
  exit 0
fi

DB="$BUILD/compile_commands.json"
if [ ! -f "$DB" ]; then
  echo "lint.sh: $DB not found; configure with cmake first" >&2
  exit 1
fi

# First-party sources only: everything the compile database knows about
# under src/, tests/, bench/, and examples/.
mapfile -t FILES < <(
  grep -o '"file": *"[^"]*"' "$DB" | sed 's/"file": *"//; s/"$//' |
    grep -E "^$ROOT/(src|tests|bench|examples)/" | sort -u
)

if [ "${#FILES[@]}" -eq 0 ]; then
  echo "lint.sh: no first-party files in $DB" >&2
  exit 1
fi

echo "lint.sh: checking ${#FILES[@]} files with $("$TIDY" --version | head -1)"

STATUS=0
FAILED=()
for f in "${FILES[@]}"; do
  if ! OUT=$("$TIDY" -p "$BUILD" --quiet "$@" "$f" 2>/dev/null); then
    STATUS=1
    FAILED+=("$f")
    printf '%s\n' "$OUT"
  elif [ -n "$OUT" ]; then
    printf '%s\n' "$OUT"
    if [ "${LINT_STRICT:-0}" = "1" ]; then
      STATUS=1
      FAILED+=("$f")
    fi
  fi
done

if [ "$STATUS" -ne 0 ]; then
  echo "lint.sh: FAILED (${#FAILED[@]} files):" >&2
  printf '  %s\n' "${FAILED[@]}" >&2
else
  echo "lint.sh: OK"
fi
exit "$STATUS"
