#!/usr/bin/env bash
# Full verification: configure, build, run tests, run every bench, then the
# sanitizer matrix (ASan+UBSan over everything, TSan over the concurrency
# label) and the clang-tidy gate.
#
# Usage: scripts/check.sh [build-dir]
#
# Each sanitizer gets its own build directory (sanitized objects can't link
# against plain ones):
#   <build>        default RelWithDebInfo, audits compiled out
#   <build>-asan   ASan + UBSan + PROBE_AUDIT=ON, full ctest
#   <build>-tsan   TSan, ctest -L concurrency
#   <build>-cov    gcov instrumentation, ctest -L obs + coverage floor
# Skip the sanitizer passes (e.g. on a machine without the runtimes) with
# CHECK_SKIP_SANITIZERS=1, the coverage pass with CHECK_SKIP_COVERAGE=1.
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

configure() {
  # Keep whatever generator an existing dir was configured with; prefer
  # Ninja for fresh ones.
  local dir="$1"
  shift
  if [ -f "$dir/CMakeCache.txt" ]; then
    cmake -B "$dir" "$@"
  else
    cmake -B "$dir" -S . -G Ninja "$@"
  fi
}

configure "$BUILD"
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure

for b in "$BUILD"/bench/*; do
  # The bench dir also holds CMake bookkeeping; only run real binaries.
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "=== running $b ==="
  "$b"
done

if [ "${CHECK_SKIP_SANITIZERS:-0}" != "1" ]; then
  # ASan + UBSan over the full suite, with the invariant audits compiled in
  # so the sanitizers run over audited code paths. The fuzz drivers (ctest
  # label `fuzz`) are the main UBSan payload: 10k+ seeded cases across the
  # bit-twiddling hot paths.
  ASAN_BUILD="${BUILD}-asan"
  configure "$ASAN_BUILD" -DPROBE_ASAN=ON -DPROBE_UBSAN=ON -DPROBE_AUDIT=ON
  cmake --build "$ASAN_BUILD"
  ctest --test-dir "$ASAN_BUILD" --output-on-failure

  # The recovery tier (WAL, redo, 240-cycle crash matrix) again by name:
  # every recovery path must hold under ASan, not just the plain build.
  ctest --test-dir "$ASAN_BUILD" -L recovery --output-on-failure

  # ThreadSanitizer over the tests that exercise the thread pool and the
  # sharded buffer pool (ctest label `concurrency`).
  TSAN_BUILD="${BUILD}-tsan"
  configure "$TSAN_BUILD" -DPROBE_TSAN=ON
  cmake --build "$TSAN_BUILD" --target concurrency_tests
  ctest --test-dir "$TSAN_BUILD" -L concurrency --output-on-failure
fi

# Coverage gate: gcov build, obs-labeled tests, >=80% line floor on
# src/obs/. Its own build dir, like the sanitizers (instrumented objects
# can't link against plain ones). Skip with CHECK_SKIP_COVERAGE=1.
if [ "${CHECK_SKIP_COVERAGE:-0}" != "1" ]; then
  scripts/coverage.sh "${BUILD}-cov" 80
fi

# clang-tidy gate (no-op with a notice when clang-tidy is unavailable).
scripts/lint.sh "$BUILD"

echo "ALL CHECKS PASSED"
