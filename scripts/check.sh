#!/usr/bin/env bash
# Full verification: configure, build, run tests, run every bench, then
# run the concurrency tests again under ThreadSanitizer.
# Usage: scripts/check.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

if [ -f "$BUILD/CMakeCache.txt" ]; then
  cmake -B "$BUILD"  # keep whatever generator the dir was configured with
else
  cmake -B "$BUILD" -G Ninja
fi
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure
for b in "$BUILD"/bench/*; do
  echo "=== running $b ==="
  "$b"
done

# ThreadSanitizer pass over the parallel/concurrency tests. Separate build
# dir: TSan objects can't link against the normal ones.
TSAN_BUILD="${BUILD}-tsan"
if [ -f "$TSAN_BUILD/CMakeCache.txt" ]; then
  cmake -B "$TSAN_BUILD" -DPROBE_TSAN=ON
else
  cmake -B "$TSAN_BUILD" -S . -G Ninja -DPROBE_TSAN=ON
fi
cmake --build "$TSAN_BUILD" --target parallel_test --target planner_test
echo "=== parallel_test under ThreadSanitizer ==="
"$TSAN_BUILD"/tests/parallel_test
echo "=== planner_test under ThreadSanitizer ==="
"$TSAN_BUILD"/tests/planner_test

echo "ALL CHECKS PASSED"
