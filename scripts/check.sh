#!/usr/bin/env bash
# Full verification: configure, build, run tests, run every bench, then the
# sanitizer matrix (ASan+UBSan over everything, TSan over the concurrency
# label) and the clang-tidy gate.
#
# Usage: scripts/check.sh [build-dir]
#
# Each sanitizer gets its own build directory (sanitized objects can't link
# against plain ones):
#   <build>        default RelWithDebInfo, audits compiled out
#   <build>-asan   ASan + UBSan + PROBE_AUDIT=ON, full ctest
#   <build>-tsan   TSan, ctest -L concurrency
#   <build>-cov    gcov instrumentation, ctest -L obs + coverage floor
# Skip the sanitizer passes (e.g. on a machine without the runtimes) with
# CHECK_SKIP_SANITIZERS=1, the coverage pass with CHECK_SKIP_COVERAGE=1.
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

configure() {
  # Keep whatever generator an existing dir was configured with; prefer
  # Ninja for fresh ones.
  local dir="$1"
  shift
  if [ -f "$dir/CMakeCache.txt" ]; then
    cmake -B "$dir" "$@"
  else
    cmake -B "$dir" -S . -G Ninja "$@"
  fi
}

configure "$BUILD"
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure

for b in "$BUILD"/bench/*; do
  # The bench dir also holds CMake bookkeeping; only run real binaries.
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "=== running $b ==="
  "$b"
done

# Budget gates over the bench JSON the loop just refreshed.
#
# BENCH_leaf.json: the compressed-leaf format must keep paying for itself —
# at least 1.3x more keys per page than v1 on every distribution, the SIMD
# in-page filter at least 1.3x over its scalar fallback (when the host has
# AVX2 at all), and the filter's ns/row within 1.25x of the committed
# baseline so a slow kernel can't land silently.
if [ -f BENCH_leaf.json ]; then
  jq -e '[.leaf.datasets[].keys_per_page_gain] | min >= 1.3' BENCH_leaf.json \
    > /dev/null || { echo "FAIL: keys-per-page gain below 1.3x"; exit 1; }
  jq -e '[.leaf.datasets[].identical] | all' BENCH_leaf.json > /dev/null \
    || { echo "FAIL: v2 results diverged from v1"; exit 1; }
  jq -e '[.leaf.datasets[].materialized_rows] | max == 0' BENCH_leaf.json \
    > /dev/null || { echo "FAIL: aggregate pushdown materialized rows"; exit 1; }
  jq -e 'if .leaf.avx2 then .leaf.filter_speedup >= 1.3 else true end' \
    BENCH_leaf.json > /dev/null \
    || { echo "FAIL: SIMD filter speedup below 1.3x"; exit 1; }
  if committed=$(git show HEAD:BENCH_leaf.json 2>/dev/null); then
    echo "$committed" | jq -es --slurpfile fresh BENCH_leaf.json \
      '.[0].leaf.filter_simd_ns_per_row as $base |
       $fresh[0].leaf.filter_simd_ns_per_row <= $base * 1.25' > /dev/null \
      || { echo "FAIL: filter ns/row regressed vs committed baseline"; exit 1; }
  fi
fi

# BENCH_parallel.json: parallel results must stay identical to serial on
# every row; speedup is only meaningful up to the hardware's core count, so
# rows marked oversubscribed are excluded from regression judgement.
if [ -f BENCH_parallel.json ]; then
  jq -e '[.. | objects | select(has("identical")) | .identical] | all' \
    BENCH_parallel.json > /dev/null \
    || { echo "FAIL: parallel results diverged from serial"; exit 1; }
  jq -e '[.. | objects | select(has("oversubscribed"))
          | select(.oversubscribed | not) | .speedup >= 0.3] | all' \
    BENCH_parallel.json > /dev/null \
    || { echo "FAIL: in-budget parallel row collapsed vs serial"; exit 1; }
fi

# BENCH_server.json: every answer a client read over the wire must match
# the in-process result; throughput must hold the machine-scaled floor the
# committed baseline recorded; and where the host has cores to back
# multi-shard rows, shard-per-core scaling must at least match the best
# single-pool (shared buffer pool) speedup from BENCH_parallel.json.
if [ -f BENCH_server.json ]; then
  jq -e '.server.all_identical and
         ([.server.shard_sweep[].identical] | all)' BENCH_server.json \
    > /dev/null \
    || { echo "FAIL: server answers diverged from in-process results"; exit 1; }
  jq -e '.server.best_qps >= .server.qps_floor' BENCH_server.json \
    > /dev/null \
    || { echo "FAIL: server qps below its own recorded floor"; exit 1; }
  if committed=$(git show HEAD:BENCH_server.json 2>/dev/null); then
    echo "$committed" | jq -es --slurpfile fresh BENCH_server.json \
      '.[0].server.qps_floor as $floor |
       $fresh[0].server.best_qps >= $floor' > /dev/null \
      || { echo "FAIL: server qps regressed below committed floor"; exit 1; }
  fi
  if [ -f BENCH_parallel.json ]; then
    jq -es '([.[0].server.shard_sweep[]
              | select(.shards > 1 and (.oversubscribed | not))
              | .speedup]) as $sharded |
            ([.[1].range.threads[]
              | select(.threads > 1 and (.oversubscribed | not))
              | .speedup]) as $pooled |
            if ($sharded | length) == 0 or ($pooled | length) == 0 then true
            else ($sharded | max) >= ($pooled | max) end' \
      BENCH_server.json BENCH_parallel.json > /dev/null \
      || { echo "FAIL: shard scaling fell below the single-pool curve"; exit 1; }
  fi
fi

# BENCH_commit.json: group commit must actually pay. The loaded writer row
# keeps the WAL tax (durable time over the WAL-off force+fsync baseline)
# under its 1.5x budget and shows real grouping (more than one commit per
# fsync); and where the host has the cores to back concurrent writers at
# all (rows not marked oversubscribed — not this 1-core container), K=4
# writers must clear 2x the single-writer insert rate.
if [ -f BENCH_commit.json ]; then
  jq -e '.commit.tax_budget as $budget |
         [.commit.rows[] | select(.writers == 4 and .readers == 0)
          | .wal_tax <= $budget] | all' BENCH_commit.json > /dev/null \
    || { echo "FAIL: loaded WAL tax above budget"; exit 1; }
  jq -e '[.commit.rows[] | select(.writers > 1) | .group_size_avg > 1] | all' \
    BENCH_commit.json > /dev/null \
    || { echo "FAIL: concurrent commits are not grouping"; exit 1; }
  jq -e '([.commit.rows[] | select(.writers == 1 and .readers == 0)
           | .inserts_per_s] | max) as $single |
         [.commit.rows[]
          | select(.writers == 4 and .readers == 0 and
                   (.oversubscribed | not))
          | .inserts_per_s >= $single * 2] | all' BENCH_commit.json \
    > /dev/null \
    || { echo "FAIL: 4-writer scaling below 2x on a multi-core host"; exit 1; }
fi

# BENCH_join.json: the zones distance join must stay exact and efficient.
# Every thread-sweep row and the all-pairs oracle slice must match the
# serial pair stream bit for bit; the candidate/output ratio must hold the
# recorded budget (a broken zone map degenerates toward the cross product
# and blows it immediately); and serial throughput must clear both its own
# recorded floor and the floor the committed baseline recorded.
if [ -f BENCH_join.json ]; then
  jq -e '([.join.rows[].identical] | all) and .join.oracle.identical' \
    BENCH_join.json > /dev/null \
    || { echo "FAIL: distance join diverged from serial/oracle"; exit 1; }
  jq -e '.join.candidate_ratio <= .join.candidate_budget' BENCH_join.json \
    > /dev/null \
    || { echo "FAIL: join candidate ratio above budget"; exit 1; }
  jq -e '.join.points_per_s >= .join.floor_points_per_s' BENCH_join.json \
    > /dev/null \
    || { echo "FAIL: join throughput below its own recorded floor"; exit 1; }
  if committed=$(git show HEAD:BENCH_join.json 2>/dev/null); then
    echo "$committed" | jq -es --slurpfile fresh BENCH_join.json \
      '.[0].join.floor_points_per_s as $floor |
       $fresh[0].join.points_per_s >= $floor' > /dev/null \
      || { echo "FAIL: join throughput regressed below committed floor"; exit 1; }
  fi
fi

if [ "${CHECK_SKIP_SANITIZERS:-0}" != "1" ]; then
  # ASan + UBSan over the full suite, with the invariant audits compiled in
  # so the sanitizers run over audited code paths. The fuzz drivers (ctest
  # label `fuzz`) are the main UBSan payload: 10k+ seeded cases across the
  # bit-twiddling hot paths.
  ASAN_BUILD="${BUILD}-asan"
  configure "$ASAN_BUILD" -DPROBE_ASAN=ON -DPROBE_UBSAN=ON -DPROBE_AUDIT=ON
  cmake --build "$ASAN_BUILD"
  ctest --test-dir "$ASAN_BUILD" --output-on-failure

  # The recovery tier (WAL, redo, 240-cycle crash matrix) again by name:
  # every recovery path must hold under ASan, not just the plain build.
  ctest --test-dir "$ASAN_BUILD" -L recovery --output-on-failure

  # The server tier (wire codec fuzz, sessions, sharded scatter-gather,
  # TCP end-to-end) likewise: hostile frames and socket teardown paths are
  # exactly where ASan/UBSan earn their keep.
  ctest --test-dir "$ASAN_BUILD" -L server --output-on-failure

  # The join tier (zones distance join, 128-bit distances, SIMD distance
  # kernel, the k-NN fuzzer): overflow and out-of-bounds in the kernels is
  # exactly what ASan/UBSan catch that the oracle tests alone cannot.
  ctest --test-dir "$ASAN_BUILD" -L join --output-on-failure

  # ThreadSanitizer over the tests that exercise the thread pool and the
  # sharded buffer pool (ctest label `concurrency`).
  TSAN_BUILD="${BUILD}-tsan"
  configure "$TSAN_BUILD" -DPROBE_TSAN=ON
  cmake --build "$TSAN_BUILD" --target concurrency_tests
  ctest --test-dir "$TSAN_BUILD" -L concurrency --output-on-failure
fi

# Coverage gate: gcov build, obs-labeled tests, >=80% line floor on
# src/obs/. Its own build dir, like the sanitizers (instrumented objects
# can't link against plain ones). Skip with CHECK_SKIP_COVERAGE=1.
if [ "${CHECK_SKIP_COVERAGE:-0}" != "1" ]; then
  scripts/coverage.sh "${BUILD}-cov" 80
fi

# Static-analysis gate: the invariant linter always runs; the clang-tidy
# half soft-skips when clang-tidy is unavailable (the gcc-only container)
# unless the caller overrides LINT_SOFT_SKIP. CI runs lint.sh directly
# with the tools installed, where missing tools are a hard failure.
LINT_SOFT_SKIP="${LINT_SOFT_SKIP:-1}" scripts/lint.sh "$BUILD"

echo "ALL CHECKS PASSED"
