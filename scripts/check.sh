#!/usr/bin/env bash
# Full verification: configure, build, run tests, run every bench.
# Usage: scripts/check.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure
for b in "$BUILD"/bench/*; do
  echo "=== running $b ==="
  "$b"
done
echo "ALL CHECKS PASSED"
