#!/usr/bin/env python3
"""Project-invariant linter: the concurrency rules the type system can't see.

The clang thread-safety analysis (src/util/thread_annotations.h) proves
lock discipline *inside* the annotated wrappers; this linter enforces the
project conventions that make the proof total — the rules that say which
primitives may appear where:

  raw-mutex          std::mutex / std::shared_mutex / std::condition_variable
                     (and their lock helpers) anywhere outside
                     src/util/mutex.h. Everything must go through the
                     annotated util::Mutex wrappers or the analysis has a
                     hole exactly where a bug would hide.
  raw-thread         std::thread construction outside src/util/thread_pool.*.
                     Loose threads dodge the pool's shutdown/drain contract.
                     Static calls (std::thread::hardware_concurrency) are
                     fine.
  raw-fsync          ::fsync / ::fdatasync outside src/storage/wal.cc.
                     Durability decisions belong to the WAL; a stray sync is
                     either redundant or a no-steal violation.
  unscoped-pin       BufferPool Fetch/New outside the index/storage interior
                     (src/storage/, src/btree/, src/relational/) in a file
                     with no PinBalanceScope. Pins taken elsewhere must be
                     balance-audited (storage/audit.h) or they leak frames
                     invisibly until a pool asserts.
  unexplained-escape PROBE_NO_THREAD_SAFETY_ANALYSIS with no adjacent
                     comment. Every escape hatch needs a written reason or
                     the annotation rollout rots one silent opt-out at a
                     time.

Waivers: a comment `invariant-lint waiver(<rule>)` on the offending line or
within the three lines above suppresses that rule there. Waivers are for
the handful of structural exceptions (the server's acceptor thread, the
base-file fsync in FilePager::Sync) — each must carry its justification in
the surrounding comment.

Modes:
  --mode=regex  (default, and the fallback) — matches against
                comment-and-string-stripped source text.
  --mode=ast    uses clang-query AST matchers over the compile database
                for the rules that are about *constructs* rather than
                tokens (raw-mutex, raw-thread). Needs clang-query and
                build/compile_commands.json; errors out if either is
                missing (CI sets this mode), so a broken toolchain can't
                silently weaken the gate.
  --mode=auto   ast when clang-query is available, else regex.

Self test: `--self-test [fixtures-dir]` runs every rule against the bad
examples in tests/lint_fixtures/ and fails unless each rule (a) fires on
its bad fixture and (b) stays quiet on the clean fixture. The ctest case
`invariant_lint_test` runs exactly this plus a clean scan of the real tree.

Exit status: 0 clean, 1 findings, 2 usage/toolchain error.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Files the scan covers: first-party C++ under src/.
SOURCE_GLOBS = ("src/**/*.h", "src/**/*.cc")

WAIVER_RE = re.compile(r"invariant-lint\s+waiver\((?P<rule>[a-z-]+)\)")
WAIVER_REACH = 3  # lines above the finding a waiver comment may sit

# ---------------------------------------------------------------------------
# Rules. Each: id, human message, matcher over stripped lines, and a
# predicate deciding whether a given file is exempt wholesale.


class Finding:
    def __init__(self, rule, path, line, text):
        self.rule = rule
        self.path = path
        self.line = line
        self.text = text

    def __str__(self):
        rel = self.path.relative_to(REPO) if self.path.is_absolute() else self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.text.strip()}"


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving line structure.

    Good enough for token rules: no tokenizer ambiguity we care about
    survives in this codebase (no raw strings containing `*/`, no trigraphs).
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":  # unterminated; stop at line end
                    break
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


RAW_MUTEX_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable"
    r"(_any)?|lock_guard|unique_lock|shared_lock|scoped_lock)\b"
)
# std::thread as a type/constructor; std::thread::X static calls are allowed.
RAW_THREAD_RE = re.compile(r"std::thread\b(?!::)")
RAW_FSYNC_RE = re.compile(r"\b(?:::)?(fsync|fdatasync)\s*\(")
# Pool pins: Fetch/New called on something named like a pool.
PIN_RE = re.compile(r"\b\w*[Pp]ool\w*(?:\.|->)(?:Fetch|New)\s*\(")
ESCAPE_RE = re.compile(r"PROBE_NO_THREAD_SAFETY_ANALYSIS")

PIN_INTERIOR = ("src/storage/", "src/btree/", "src/relational/")


def rel_posix(path):
    p = path.resolve()
    try:
        return p.relative_to(REPO).as_posix()
    except ValueError:
        return p.as_posix()


def check_file(path, raw_text, synthetic_rel=None):
    """All findings in one file. `synthetic_rel` overrides the path the
    exemption rules see (the self-test presents fixtures as fake tree
    locations)."""
    rel = synthetic_rel if synthetic_rel is not None else rel_posix(path)
    raw_lines = raw_text.splitlines()
    stripped_lines = strip_comments_and_strings(raw_text).splitlines()
    findings = []

    def waived(rule, lineno):
        lo = max(0, lineno - 1 - WAIVER_REACH)
        for raw in raw_lines[lo:lineno]:
            m = WAIVER_RE.search(raw)
            if m and m.group("rule") == rule:
                return True
        return False

    def add(rule, lineno, message):
        if not waived(rule, lineno):
            findings.append(Finding(rule, path, lineno, message))

    # Stripped text: a *comment* mentioning PinBalanceScope is not a scope.
    has_pin_scope = "PinBalanceScope" in "\n".join(stripped_lines)
    in_pin_interior = any(rel.startswith(d) for d in PIN_INTERIOR)

    for idx, line in enumerate(stripped_lines, start=1):
        if rel != "src/util/mutex.h" and RAW_MUTEX_RE.search(line):
            add("raw-mutex", idx,
                "raw std lock primitive; use util::Mutex / util::MutexLock "
                "(src/util/mutex.h) so the thread-safety analysis sees it")
        if (not rel.startswith("src/util/thread_pool")
                and RAW_THREAD_RE.search(line)):
            add("raw-thread", idx,
                "std::thread outside util::ThreadPool; loose threads skip "
                "the pool's shutdown/drain contract")
        if rel != "src/storage/wal.cc" and RAW_FSYNC_RE.search(line):
            add("raw-fsync", idx,
                "fsync/fdatasync outside storage/wal; durability belongs "
                "to the WAL")
        if (not in_pin_interior and not has_pin_scope
                and PIN_RE.search(line)):
            add("unscoped-pin", idx,
                "BufferPool pin outside the index interior with no "
                "PinBalanceScope in the file (storage/audit.h)")

    # unexplained-escape works on raw lines: the *comment* is the point.
    for idx, line in enumerate(raw_lines, start=1):
        if rel.endswith("util/thread_annotations.h"):
            break  # the macro's own definition
        if ESCAPE_RE.search(line) and not line.lstrip().startswith("//"):
            prev = raw_lines[idx - 2] if idx >= 2 else ""
            if "//" not in line and "//" not in prev:
                add("unexplained-escape", idx,
                    "NO_THREAD_SAFETY_ANALYSIS without an adjacent reason "
                    "comment")
    return findings


# ---------------------------------------------------------------------------
# AST mode: clang-query matchers for the construct-shaped rules. Token
# rules (raw-fsync, unscoped-pin, unexplained-escape) stay regex in both
# modes — they are about tokens/macros the AST either can't see (macros,
# comments) or sees too late (fsync via the libc decl is just a callExpr).

AST_MATCHERS = {
    "raw-mutex": (
        'match typeLoc(loc(qualType(hasDeclaration(namedDecl(hasAnyName('
        '"::std::mutex", "::std::shared_mutex", "::std::recursive_mutex", '
        '"::std::timed_mutex", "::std::condition_variable", '
        '"::std::condition_variable_any", "::std::lock_guard", '
        '"::std::unique_lock", "::std::shared_lock", "::std::scoped_lock"'
        ')))), isExpansionInMainFile())'
    ),
    "raw-thread": (
        'match typeLoc(loc(qualType(hasDeclaration(namedDecl(hasName('
        '"::std::thread"))))), isExpansionInMainFile())'
    ),
}

AST_EXEMPT = {
    "raw-mutex": ("src/util/mutex.h",),
    "raw-thread": ("src/util/thread_pool.h", "src/util/thread_pool.cc"),
}

AST_LOC_RE = re.compile(r'^(/[^:]+):(\d+):\d+')


def clang_query_findings(build_dir, files, query_bin):
    findings = []
    by_rule_sources = {}
    for rule in AST_MATCHERS:
        exempt = AST_EXEMPT[rule]
        by_rule_sources[rule] = [
            f for f in files
            if f.suffix == ".cc" and rel_posix(f) not in exempt
        ]
    for rule, sources in by_rule_sources.items():
        if not sources:
            continue
        cmd = [query_bin, "-p", str(build_dir),
               "-c", AST_MATCHERS[rule]] + [str(s) for s in sources]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0 and not proc.stdout:
            raise RuntimeError(
                f"clang-query failed for rule {rule}:\n{proc.stderr[:2000]}")
        seen = set()
        for line in proc.stdout.splitlines():
            m = AST_LOC_RE.match(line)
            if not m:
                continue
            path, lineno = Path(m.group(1)), int(m.group(2))
            rel = rel_posix(path)
            if not rel.startswith("src/") or rel in AST_EXEMPT[rule]:
                continue
            key = (rule, rel, lineno)
            if key in seen:
                continue
            seen.add(key)
            raw_lines = path.read_text(errors="replace").splitlines()
            lo = max(0, lineno - 1 - WAIVER_REACH)
            if any(WAIVER_RE.search(l) and WAIVER_RE.search(l).group("rule") == rule
                   for l in raw_lines[lo:lineno]):
                continue
            findings.append(Finding(rule, path, lineno,
                                    f"(ast) disallowed construct for {rule}"))
    return findings


# ---------------------------------------------------------------------------
# Self test: each rule must fire on its bad fixture (presented at a
# synthetic path where the rule applies) and stay silent on the clean one.

FIXTURE_EXPECTATIONS = [
    # (fixture file, synthetic tree path, rule that must fire)
    ("bad_raw_mutex.cc", "src/query/bad_raw_mutex.cc", "raw-mutex"),
    ("bad_raw_thread.cc", "src/query/bad_raw_thread.cc", "raw-thread"),
    ("bad_raw_fsync.cc", "src/query/bad_raw_fsync.cc", "raw-fsync"),
    ("bad_unscoped_pin.cc", "src/query/bad_unscoped_pin.cc", "unscoped-pin"),
    ("bad_unexplained_escape.cc", "src/query/bad_unexplained_escape.cc",
     "unexplained-escape"),
    ("clean.cc", "src/query/clean.cc", None),
]


def self_test(fixtures_dir):
    failures = []
    for name, synthetic, rule in FIXTURE_EXPECTATIONS:
        path = fixtures_dir / name
        if not path.is_file():
            failures.append(f"fixture missing: {path}")
            continue
        findings = check_file(path, path.read_text(), synthetic_rel=synthetic)
        fired = {f.rule for f in findings}
        if rule is None:
            if fired:
                failures.append(
                    f"{name}: expected clean, got {sorted(fired)}")
        elif rule not in fired:
            failures.append(f"{name}: rule {rule} did not fire (got "
                            f"{sorted(fired) or 'nothing'})")
    # The waiver mechanism itself: a waived bad fixture must be quiet.
    waived = fixtures_dir / "waived_raw_fsync.cc"
    if waived.is_file():
        findings = check_file(waived, waived.read_text(),
                              synthetic_rel="src/query/waived_raw_fsync.cc")
        if any(f.rule == "raw-fsync" for f in findings):
            failures.append("waived_raw_fsync.cc: waiver did not suppress")
    else:
        failures.append(f"fixture missing: {waived}")

    if failures:
        print("invariant_lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"invariant_lint self-test OK "
          f"({len(FIXTURE_EXPECTATIONS) + 1} fixtures)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", help="files/dirs to scan "
                    "(default: the repo's src/ tree)")
    ap.add_argument("--mode", choices=("regex", "ast", "auto"),
                    default="regex")
    ap.add_argument("--build-dir", default=str(REPO / "build"),
                    help="compile database location for --mode=ast")
    ap.add_argument("--self-test", nargs="?", const=str(
        REPO / "tests" / "lint_fixtures"), default=None, metavar="DIR",
        help="run the rules against the bad-example fixtures and exit")
    args = ap.parse_args()

    if args.self_test is not None:
        return self_test(Path(args.self_test))

    files = []
    if args.paths:
        for p in args.paths:
            path = Path(p)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.h")))
                files.extend(sorted(path.rglob("*.cc")))
            else:
                files.append(path)
    else:
        for pattern in SOURCE_GLOBS:
            files.extend(sorted(REPO.glob(pattern)))

    findings = []
    for f in files:
        findings.extend(check_file(f, f.read_text(errors="replace")))

    mode = args.mode
    # CLANG_QUERY pins a versioned binary (CI: clang-query-15).
    query_bin = shutil.which(os.environ.get("CLANG_QUERY", "clang-query"))
    if mode == "auto":
        mode = "ast" if query_bin else "regex"
    if mode == "ast":
        if not query_bin:
            print("invariant_lint: --mode=ast but clang-query not found",
                  file=sys.stderr)
            return 2
        db = Path(args.build_dir) / "compile_commands.json"
        if not db.is_file():
            print(f"invariant_lint: --mode=ast but {db} missing",
                  file=sys.stderr)
            return 2
        try:
            ast = clang_query_findings(Path(args.build_dir), files, query_bin)
        except RuntimeError as e:
            print(f"invariant_lint: {e}", file=sys.stderr)
            return 2
        known = {(f.rule, rel_posix(f.path), f.line) for f in findings}
        for f in ast:
            if (f.rule, rel_posix(f.path), f.line) not in known:
                findings.append(f)

    if findings:
        findings.sort(key=lambda f: (str(f.path), f.line, f.rule))
        for f in findings:
            print(f)
        print(f"invariant_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"invariant_lint: OK ({len(files)} files, mode={mode})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
