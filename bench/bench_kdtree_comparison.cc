// The paper's headline comparison: z-order range search "comparable to
// performance of the kd tree" [BENT75].
//
// Three contenders over the same workloads:
//   * zkd B+-tree  — this paper's structure (pages of 20 points, z order);
//   * bucket kd-tree — kd-style brick-wall partitioning with the same page
//     capacity, so leaf visits are directly comparable page accesses;
//   * classic kd tree — one point per node; reported in node visits.
//
// The shapes to verify: page accesses of the zkd tree track the bucket kd
// tree within a small factor across distributions, volumes and shapes
// (the crossover claim), and both obey the same O(vN) growth.

#include <cstdio>
#include <iostream>

#include "baseline/bucket_kdtree.h"
#include "baseline/kdtree.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/datagen.h"
#include "workload/experiment.h"
#include "workload/querygen.h"

int main() {
  using namespace probe;
  using workload::Distribution;
  const zorder::GridSpec grid{2, 10};

  std::printf("=== zkd B+-tree vs kd trees (5000 points, 20 per page) ===\n");

  for (const auto dist : {Distribution::kUniform, Distribution::kClustered,
                          Distribution::kDiagonal}) {
    workload::DataGenConfig data;
    data.distribution = dist;
    data.count = 5000;
    data.seed = 41;
    const auto points = GeneratePoints(grid, data);

    auto built = workload::BuildZkdIndex(grid, points, 20, 64);
    const auto bucket = baseline::BucketKdTree::Build(2, points, 20);
    const auto kd = baseline::KdTree::Build(2, points);

    std::printf("\n--- distribution %s: zkd pages=%llu, bucket-kd pages=%llu "
                "---\n\n",
                DistributionName(dist).c_str(),
                static_cast<unsigned long long>(built.leaf_pages),
                static_cast<unsigned long long>(bucket.leaf_count()));

    util::Table table({"volume", "aspect", "zkd pages", "bkd pages",
                       "zkd/bkd", "zkd eff", "bkd eff", "kd nodes",
                       "results"});
    util::Summary ratio_all;
    util::Rng rng(4141);
    for (const double volume : {0.01, 0.02, 0.05, 0.10}) {
      for (const double aspect : {1.0, 4.0, 16.0}) {
        util::Summary zkd_pages, bkd_pages, zkd_eff, bkd_eff, kd_nodes,
            results;
        for (const auto& box :
             workload::MakeQueryBoxes2D(grid, volume, aspect, 5, rng)) {
          index::QueryStats zs;
          built.index->RangeSearch(box, &zs);
          baseline::BucketKdStats bs;
          bucket.RangeSearch(box, &bs);
          baseline::KdStats ks;
          kd.RangeSearch(box, &ks);
          zkd_pages.Add(static_cast<double>(zs.leaf_pages));
          bkd_pages.Add(static_cast<double>(bs.leaf_pages));
          zkd_eff.Add(zs.Efficiency());
          bkd_eff.Add(bs.Efficiency());
          kd_nodes.Add(static_cast<double>(ks.nodes_visited));
          results.Add(static_cast<double>(zs.results));
          if (zs.results != bs.results || zs.results != ks.results) {
            std::printf("!! result mismatch\n");
            return 1;
          }
        }
        const double ratio = zkd_pages.Mean() / bkd_pages.Mean();
        ratio_all.Add(ratio);
        table.AddRow();
        table.Cell(volume, 3);
        table.Cell(aspect, 1);
        table.Cell(zkd_pages.Mean(), 1);
        table.Cell(bkd_pages.Mean(), 1);
        table.Cell(ratio, 2);
        table.Cell(zkd_eff.Mean(), 3);
        table.Cell(bkd_eff.Mean(), 3);
        table.Cell(kd_nodes.Mean(), 0);
        table.Cell(results.Mean(), 0);
      }
    }
    table.Print(std::cout);
    std::printf("\nzkd/bucket-kd page ratio: mean %.2f, min %.2f, max %.2f\n",
                ratio_all.Mean(), ratio_all.Min(), ratio_all.Max());
  }

  std::printf("\nThe zkd tree stays within a small constant of the bucket kd\n"
              "tree across every cell ('comparable to the kd tree') while\n"
              "needing only a standard B+-tree: no special structure, plain\n"
              "sort order, ordinary buffering — the paper's integration\n"
              "argument. Unlike the static kd build, it also supports\n"
              "incremental inserts and deletes.\n");
  return 0;
}
