// Section 5.3.1 (partial match): pages accessed = O(N^(1 - t/k)).
//
// A partial-match query fixes t of the k attributes and leaves the rest
// unrestricted. The analysis predicts page accesses growing as N^(1-t/k):
// N^(1/2) for t=1,k=2 and N^(2/3) for t=1,k=3, N^(1/3) for t=2,k=3. This
// bench sweeps N and fits the observed exponents. (The paper analyzes but
// does not measure this case; "experiments in higher dimensions are still
// needed" — here they are.)

#include <cmath>
#include <cstdio>
#include <iostream>
#include <optional>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/datagen.h"
#include "workload/experiment.h"

namespace {

using namespace probe;

// Runs partial-match queries fixing the first `t` attributes at random
// values; returns mean leaf pages accessed.
double MeanPartialMatchPages(index::ZkdIndex& idx,
                             const zorder::GridSpec& grid, int t, int queries,
                             util::Rng& rng) {
  util::Summary pages;
  for (int q = 0; q < queries; ++q) {
    std::vector<std::optional<uint32_t>> fixed(grid.dims);
    for (int d = 0; d < t; ++d) {
      fixed[d] = static_cast<uint32_t>(rng.NextBelow(grid.side()));
    }
    index::QueryStats stats;
    idx.PartialMatch(fixed, &stats);
    pages.Add(static_cast<double>(stats.leaf_pages));
  }
  return pages.Mean();
}

void Sweep(int dims, int bits, int t) {
  const zorder::GridSpec grid{dims, bits};
  const double predicted_exponent =
      1.0 - static_cast<double>(t) / static_cast<double>(dims);
  std::printf("--- k=%d, t=%d: predict pages ~ N^%.2f ---\n\n", dims, t,
              predicted_exponent);
  util::Rng rng(777 + dims * 10 + t);
  util::Table table({"points", "pages N", "pages accessed", "N^(1-t/k)"});
  std::vector<double> n_x, pages_y;
  for (const size_t n : {2000u, 4000u, 8000u, 16000u, 32000u, 64000u}) {
    workload::DataGenConfig data;
    data.count = n;
    data.seed = 900 + n;
    const auto points = GeneratePoints(grid, data);
    auto built = workload::BuildZkdIndex(grid, points, 20, 64);
    const double pages =
        MeanPartialMatchPages(*built.index, grid, t, 12, rng);
    n_x.push_back(static_cast<double>(built.leaf_pages));
    pages_y.push_back(pages);
    table.AddRow();
    table.Cell(static_cast<int64_t>(n));
    table.Cell(static_cast<int64_t>(built.leaf_pages));
    table.Cell(pages, 1);
    table.Cell(std::pow(static_cast<double>(built.leaf_pages),
                        predicted_exponent),
               1);
  }
  table.Print(std::cout);
  std::printf("\nfitted exponent: %.2f (analysis: %.2f)\n\n",
              util::LogLogSlope(n_x, pages_y), predicted_exponent);
}

}  // namespace

int main() {
  std::printf("=== Section 5.3.1: partial-match queries, pages = "
              "O(N^(1-t/k)) ===\n\n");
  Sweep(/*dims=*/2, /*bits=*/10, /*t=*/1);
  Sweep(/*dims=*/3, /*bits=*/7, /*t=*/1);
  Sweep(/*dims=*/3, /*bits=*/7, /*t=*/2);
  std::printf("Partial-match (long, narrow) queries cost more than squarish\n"
              "range queries of equal selectivity — the shape dependence the\n"
              "paper's hypothesis 1 predicts.\n");
  return 0;
}
