// Distance join at catalog scale: the zones algorithm cross-matching two
// correlated point sets (default 5M x 5M on a 2^20 grid — two synthetic
// surveys with half of the second re-observing the first within a few
// cells).
//
// Measures the serial join (zone sort + neighbor-zone merge + SIMD
// distance filter), a thread sweep with bitwise-identity checks against
// the serial pair stream, and a small all-pairs oracle slice. Numbers land
// in BENCH_join.json (section "join"); scripts/check.sh gates on candidate
// efficiency (tested pairs vs emitted pairs), identity, the oracle, and a
// self-recorded throughput floor compared against the committed baseline.
//
// Scale with: bench_join [r_points] [s_points] [radius]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "relational/distance_join.h"
#include "util/bench_json.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"

namespace {

using namespace probe;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Order-sensitive FNV-1a over the pair stream: equal hashes + equal
/// counts certify the parallel merge reproduced the serial emission order
/// without materializing either stream.
struct StreamHash {
  uint64_t h = 1469598103934665603ULL;
  uint64_t count = 0;
  void Add(const relational::IdPair& p) {
    h = (h ^ p.r_id) * 1099511628211ULL;
    h = (h ^ p.s_id) * 1099511628211ULL;
    ++count;
  }
  bool operator==(const StreamHash& o) const {
    return h == o.h && count == o.count;
  }
};

/// All-pairs reference count over a small slice.
uint64_t OraclePairs(std::span<const index::PointRecord> r,
                     std::span<const index::PointRecord> s, uint64_t radius) {
  const unsigned __int128 r2 = static_cast<unsigned __int128>(radius) * radius;
  uint64_t pairs = 0;
  for (const auto& p : r) {
    for (const auto& q : s) {
      const uint64_t dx = p.point[0] > q.point[0] ? p.point[0] - q.point[0]
                                                  : q.point[0] - p.point[0];
      const uint64_t dy = p.point[1] > q.point[1] ? p.point[1] - q.point[1]
                                                  : q.point[1] - p.point[1];
      if (static_cast<unsigned __int128>(dx) * dx +
              static_cast<unsigned __int128>(dy) * dy <=
          r2) {
        ++pairs;
      }
    }
  }
  return pairs;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t r_points =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 5000000;
  const size_t s_points =
      argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 5000000;
  const uint64_t radius =
      argc > 3 ? static_cast<uint64_t>(std::atoll(argv[3])) : 8;

  const zorder::GridSpec grid{2, 20};
  std::printf("=== Distance join (zones): |R|=%zu, |S|=%zu, radius=%llu, "
              "grid 2^%d ===\n\n",
              r_points, s_points,
              static_cast<unsigned long long>(radius), grid.bits_per_dim);

  workload::PairedDataGenConfig config;
  config.base.count = r_points;
  config.base.seed = 4242;
  config.s_count = s_points;
  config.match_fraction = 0.5;
  config.match_sigma = 4.0;
  const auto gen_start = std::chrono::steady_clock::now();
  const auto data = GeneratePairedPoints(grid, config);
  std::printf("generated paired catalogs in %.0f ms "
              "(match fraction %.2f, sigma %.1f)\n",
              MsSince(gen_start), config.match_fraction, config.match_sigma);

  // Serial reference: the stream hash is the identity yardstick for the
  // thread sweep.
  StreamHash serial_hash;
  relational::DistanceJoinStats serial_stats;
  const auto serial_start = std::chrono::steady_clock::now();
  relational::DistanceJoin(
      data.r, data.s, grid, radius,
      [&serial_hash](const relational::IdPair& p) { serial_hash.Add(p); },
      &serial_stats);
  const double serial_ms = MsSince(serial_start);
  const double candidate_ratio =
      static_cast<double>(serial_stats.candidate_pairs) /
      static_cast<double>(std::max<uint64_t>(1, serial_stats.pairs));
  const double points_per_s =
      static_cast<double>(r_points + s_points) / (serial_ms / 1000.0);
  std::printf("serial      %8.0f ms  zones=%llu/%llu  candidates=%llu  "
              "pairs=%llu  ratio=%.2f  sort_pages=%llu\n",
              serial_ms,
              static_cast<unsigned long long>(serial_stats.r_zones),
              static_cast<unsigned long long>(serial_stats.s_zones),
              static_cast<unsigned long long>(serial_stats.candidate_pairs),
              static_cast<unsigned long long>(serial_stats.pairs),
              candidate_ratio,
              static_cast<unsigned long long>(serial_stats.sort_pages));

  // Thread sweep. Rows past the hardware's core count only measure
  // scheduling overhead; tag them so regression tooling skips their
  // speedup numbers (this dev container is single-core).
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::string rows_json = "[";
  bool all_identical = true;
  for (const int threads : {1, 2, 4}) {
    const bool oversubscribed = static_cast<unsigned>(threads) > hw;
    util::ThreadPool pool(threads - 1);
    relational::DistanceJoinOptions options;
    options.pool = &pool;
    StreamHash hash;
    relational::DistanceJoinStats stats;
    const auto start = std::chrono::steady_clock::now();
    relational::DistanceJoin(
        data.r, data.s, grid, radius,
        [&hash](const relational::IdPair& p) { hash.Add(p); }, &stats,
        options);
    const double ms = MsSince(start);
    const double speedup = ms > 0 ? serial_ms / ms : 0.0;
    const bool identical = hash == serial_hash;
    all_identical = all_identical && identical;
    std::printf("threads=%-2d  %8.0f ms  speedup %5.2fx  partitions=%zu  "
                "%s%s\n",
                threads, ms, speedup, stats.partitions,
                identical ? "pairs identical" : "PAIR MISMATCH",
                oversubscribed ? "  (oversubscribed)" : "");
    if (rows_json.size() > 1) rows_json += ",";
    rows_json += "{\"threads\":" + std::to_string(threads) +
                 ",\"ms\":" + std::to_string(ms) +
                 ",\"speedup\":" + std::to_string(speedup) +
                 ",\"partitions\":" + std::to_string(stats.partitions) +
                 ",\"oversubscribed\":" + (oversubscribed ? "true" : "false") +
                 ",\"identical\":" + (identical ? "true" : "false") + "}";
  }
  rows_json += "]";

  // Oracle slice: the first 10k x 10k points against the O(n*m) all-pairs
  // count — the same exactness the unit tests prove, re-certified on this
  // run's actual data.
  const size_t oracle_n = std::min<size_t>(10000, data.r.size());
  const size_t oracle_m = std::min<size_t>(10000, data.s.size());
  const std::span<const index::PointRecord> oracle_r(data.r.data(), oracle_n);
  const std::span<const index::PointRecord> oracle_s(data.s.data(), oracle_m);
  relational::DistanceJoinStats oracle_stats;
  uint64_t oracle_join = 0;
  relational::DistanceJoin(
      oracle_r, oracle_s, grid, radius,
      [&oracle_join](const relational::IdPair&) { ++oracle_join; },
      &oracle_stats);
  const uint64_t oracle_expect = OraclePairs(oracle_r, oracle_s, radius);
  const bool oracle_identical = oracle_join == oracle_expect;
  std::printf("oracle      %zux%zu slice: join=%llu brute-force=%llu  %s\n",
              oracle_n, oracle_m,
              static_cast<unsigned long long>(oracle_join),
              static_cast<unsigned long long>(oracle_expect),
              oracle_identical ? "identical" : "MISMATCH");

  // The candidate budget: zones with h = r bound the tested pairs to a
  // (2r+1) x 3h window per probe, so candidates stay within a small
  // multiple of the output on correlated catalogs. A broken zone map
  // degenerates toward the cross product and blows this immediately.
  const double candidate_budget = 16.0;
  // Throughput floor with 2x headroom, recorded for the committed-baseline
  // regression gate (same shape as BENCH_server's qps floor).
  const double floor_points_per_s = points_per_s / 2.0;

  const std::string payload =
      "{\"r_points\":" + std::to_string(r_points) +
      ",\"s_points\":" + std::to_string(s_points) +
      ",\"radius\":" + std::to_string(radius) +
      ",\"zone_height\":" + std::to_string(serial_stats.zone_height) +
      ",\"r_zones\":" + std::to_string(serial_stats.r_zones) +
      ",\"s_zones\":" + std::to_string(serial_stats.s_zones) +
      ",\"candidate_pairs\":" + std::to_string(serial_stats.candidate_pairs) +
      ",\"pairs\":" + std::to_string(serial_stats.pairs) +
      ",\"candidate_ratio\":" + std::to_string(candidate_ratio) +
      ",\"candidate_budget\":" + std::to_string(candidate_budget) +
      ",\"sort_pages\":" + std::to_string(serial_stats.sort_pages) +
      ",\"sort_runs\":" + std::to_string(serial_stats.sort_runs) +
      ",\"serial_ms\":" + std::to_string(serial_ms) +
      ",\"points_per_s\":" + std::to_string(points_per_s) +
      ",\"floor_points_per_s\":" + std::to_string(floor_points_per_s) +
      ",\"hardware_threads\":" +
      std::to_string(std::thread::hardware_concurrency()) +
      ",\"oracle\":{\"r_rows\":" + std::to_string(oracle_n) +
      ",\"s_rows\":" + std::to_string(oracle_m) +
      ",\"pairs\":" + std::to_string(oracle_join) +
      ",\"identical\":" + (oracle_identical ? "true" : "false") + "}" +
      ",\"rows\":" + rows_json + "}";
  if (util::UpdateJsonSection("BENCH_join.json", "join", payload)) {
    std::printf("wrote BENCH_join.json (section \"join\")\n");
  }

  std::printf("\nZones of height r bound each probe to three neighbor zones\n"
              "and an x-window of 2r+1 cells; the per-pair distance test is\n"
              "the SIMD in-page filter. The candidate/output ratio is the\n"
              "algorithm's whole story: near 1 means the zone geometry did\n"
              "its job, the cross product would be ~%.0e.\n",
              static_cast<double>(r_points) * static_cast<double>(s_points) /
                  static_cast<double>(std::max<uint64_t>(
                      1, serial_stats.pairs)));
  return (all_identical && oracle_identical) ? 0 : 1;
}
