// Optimizer cost model: predicted vs executed page accesses.
//
// A DBMS picks plans from estimates, not measurements. The CostModel
// predicts a range query's data-page accesses from the index's leaf
// boundary keys alone (no data pages read). This bench quantifies its
// accuracy across the paper's distributions, volumes and shapes, plus the
// cheap depth-capped mode an optimizer would use for very large queries.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "index/cost_model.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/datagen.h"
#include "workload/experiment.h"
#include "workload/querygen.h"

int main() {
  using namespace probe;
  using workload::Distribution;
  const zorder::GridSpec grid{2, 10};

  std::printf("=== Cost model: estimated vs executed data pages "
              "(5000 points, 20/page) ===\n\n");
  util::Table table({"dist", "volume", "aspect", "executed mean",
                     "estimated mean", "rel err %", "capped est",
                     "est elements", "capped elements"});
  for (const auto dist : {Distribution::kUniform, Distribution::kClustered,
                          Distribution::kDiagonal}) {
    workload::DataGenConfig data;
    data.distribution = dist;
    data.count = 5000;
    data.seed = 131;
    const auto points = GeneratePoints(grid, data);
    auto built = workload::BuildZkdIndex(grid, points, 20, 64);
    const index::CostModel model = index::CostModel::FromIndex(*built.index);

    util::Rng rng(133);
    for (const double volume : {0.01, 0.05}) {
      for (const double aspect : {1.0, 16.0}) {
        util::Summary executed, estimated, capped, est_elems, cap_elems;
        for (const auto& box :
             workload::MakeQueryBoxes2D(grid, volume, aspect, 8, rng)) {
          index::QueryStats stats;
          built.index->RangeSearch(box, &stats);
          const auto full = model.EstimatePages(box);
          const auto cheap = model.EstimatePages(box, /*max_depth=*/10);
          executed.Add(static_cast<double>(stats.leaf_pages));
          estimated.Add(static_cast<double>(full.pages));
          capped.Add(static_cast<double>(cheap.pages));
          est_elems.Add(static_cast<double>(full.elements_used));
          cap_elems.Add(static_cast<double>(cheap.elements_used));
        }
        table.AddRow();
        table.Cell(DistributionName(dist));
        table.Cell(volume, 3);
        table.Cell(aspect, 1);
        table.Cell(executed.Mean(), 1);
        table.Cell(estimated.Mean(), 1);
        table.Cell(100.0 * std::abs(estimated.Mean() - executed.Mean()) /
                       executed.Mean(),
                   1);
        table.Cell(capped.Mean(), 1);
        table.Cell(est_elems.Mean(), 0);
        table.Cell(cap_elems.Mean(), 0);
      }
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nFull-depth estimates track execution within a few percent using\n"
      "only leaf boundary keys; the depth-10 mode needs an order of\n"
      "magnitude fewer elements and stays a usable upper estimate — the\n"
      "ingredients a query optimizer needs to cost spatial plans inside\n"
      "the DBMS, which is the paper's integration thesis.\n");
  return 0;
}
