// Issue 3 of Section 2: "How are insertions and deletions handled? The
// partitioning and the partition index should adapt gracefully as the
// number and distribution of points change."
//
// The zkd B+-tree inherits the B-tree's answer. This bench measures it:
// starting from a bulk-loaded index, churn (delete a random point, insert
// a fresh one) for several epochs, tracking occupancy, page count and
// range-query page accesses — then compares against a freshly rebuilt
// index over the same final data. Graceful adaptation means query cost
// drifts only with occupancy (roughly the bulk-load fill vs the B-tree's
// steady-state ~70%), not with the amount of churn.

#include <cstdio>
#include <iostream>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/datagen.h"
#include "workload/experiment.h"
#include "workload/querygen.h"

namespace {

using namespace probe;

double MeanQueryPages(index::ZkdIndex& idx, const zorder::GridSpec& grid,
                      uint64_t seed) {
  util::Rng rng(seed);
  util::Summary pages;
  for (const auto& box :
       workload::MakeQueryBoxes2D(grid, 0.05, 1.0, 10, rng)) {
    index::QueryStats stats;
    idx.RangeSearch(box, &stats);
    pages.Add(static_cast<double>(stats.leaf_pages));
  }
  return pages.Mean();
}

}  // namespace

int main() {
  const zorder::GridSpec grid{2, 10};
  workload::DataGenConfig data;
  data.count = 5000;
  data.seed = 101;
  auto points = GeneratePoints(grid, data);
  auto built = workload::BuildZkdIndex(grid, points, 20, 64);

  std::printf("=== Dynamic maintenance: churn vs rebuild (5000 points, "
              "20/page) ===\n\n");
  util::Table table({"churn ops", "entries", "leaf pages", "occupancy",
                     "height", "query pages", "invariants"});

  util::Rng rng(103);
  uint64_t next_id = points.size();
  uint64_t ops_done = 0;
  for (const uint64_t target_ops : {0u, 2500u, 5000u, 10000u, 20000u}) {
    while (ops_done < target_ops) {
      // Delete a random live point, insert a fresh random one.
      const size_t victim = rng.NextBelow(points.size());
      built.index->Delete(points[victim].point, points[victim].id);
      const geometry::GridPoint fresh(
          {static_cast<uint32_t>(rng.NextBelow(1024)),
           static_cast<uint32_t>(rng.NextBelow(1024))});
      built.index->Insert(fresh, next_id);
      points[victim] = index::PointRecord{fresh, next_id};
      ++next_id;
      ++ops_done;
    }
    const auto shape = built.index->tree().ComputeShape();
    table.AddRow();
    table.Cell(static_cast<int64_t>(ops_done));
    table.Cell(static_cast<int64_t>(shape.entries));
    table.Cell(static_cast<int64_t>(shape.leaf_pages));
    table.Cell(static_cast<double>(shape.entries) /
                   (20.0 * static_cast<double>(shape.leaf_pages)),
               3);
    table.Cell(static_cast<int64_t>(shape.height));
    table.Cell(MeanQueryPages(*built.index, grid, 105), 1);
    table.Cell(std::string(built.index->tree().CheckInvariants() ? "ok"
                                                                 : "BROKEN"));
  }
  table.Print(std::cout);

  // Rebuild fresh over the churned data for comparison.
  auto rebuilt = workload::BuildZkdIndex(grid, points, 20, 64);
  const auto shape = rebuilt.index->tree().ComputeShape();
  std::printf("\nfresh rebuild over the same data: %u leaf pages, occupancy "
              "%.3f, query pages %.1f\n",
              shape.leaf_pages,
              static_cast<double>(shape.entries) /
                  (20.0 * static_cast<double>(shape.leaf_pages)),
              MeanQueryPages(*rebuilt.index, grid, 105));
  std::printf(
      "\nOccupancy settles at the B-tree steady state (~0.6) after the\n"
      "first epoch and stays there; query cost tracks the occupancy ratio\n"
      "of the packed rebuild no matter how much churn has occurred: the\n"
      "graceful adaptation the paper asks of a multidimensional structure.\n");
  return 0;
}
