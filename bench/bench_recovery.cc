// Durability tax and recovery time (DESIGN.md §11).
//
// Two questions a WAL answers for a price:
//
//   1. What does logging cost at insert time? Same batched workload run
//      twice — through DurableIndex (page images + commit record + fsync
//      per batch) and through the bare FilePager stack with a force+fsync
//      per batch (the non-logging engine with equivalent durability
//      effort). The ratio must stay under 2.5x; the bench fails loudly if
//      it doesn't.
//
//   2. How does recovery time grow with log length? Logs of increasing
//      batch counts are built, the engine dropped cold, and the redo pass
//      timed on reopen. Linear in log bytes is the designed behavior —
//      and the reason Checkpoint() exists.
//
// Results land in BENCH_recovery.json.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "geometry/box.h"
#include "index/durable_index.h"
#include "index/zkd_index.h"
#include "storage/buffer_pool.h"
#include "storage/file_pager.h"
#include "storage/recovery.h"
#include "util/bench_json.h"
#include "util/rng.h"

namespace {

using namespace probe;
using Op = index::DurableIndex::Op;

constexpr double kMaxWalSlowdown = 2.5;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<std::vector<Op>> MakeBatches(int batches, int per_batch,
                                         uint32_t side) {
  util::Rng rng(0x57AB1E);
  std::vector<std::vector<Op>> out;
  uint64_t id = 0;
  for (int b = 0; b < batches; ++b) {
    std::vector<Op> batch;
    for (int i = 0; i < per_batch; ++i) {
      batch.push_back(Op::Insert(
          geometry::GridPoint({static_cast<uint32_t>(rng.NextBelow(side)),
                               static_cast<uint32_t>(rng.NextBelow(side))}),
          id++));
    }
    out.push_back(std::move(batch));
  }
  return out;
}

void RemoveDb(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".wal.tmp").c_str());
}

}  // namespace

int main() {
  const zorder::GridSpec grid{2, 10};
  constexpr int kBatches = 100;
  constexpr int kPerBatch = 50;
  const std::string wal_on_path = "/tmp/probe_bench_recovery_on.db";
  const std::string wal_off_path = "/tmp/probe_bench_recovery_off.db";
  btree::BTreeConfig config;
  config.leaf_capacity = 20;

  std::printf("=== durability tax: WAL-on vs WAL-off batched inserts ===\n\n");
  const auto batches = MakeBatches(kBatches, kPerBatch, grid.side());

  // --- WAL-on: DurableIndex, one atomic commit per batch --------------
  RemoveDb(wal_on_path);
  double wal_on_ms = 0.0;
  uint64_t log_bytes = 0;
  {
    index::DurableIndex::Options options;
    options.config = config;
    options.truncate = true;
    index::DurableIndex db(grid, wal_on_path, options);
    if (!db.ok()) {
      std::printf("cannot open %s\n", wal_on_path.c_str());
      return 1;
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& batch : batches) {
      if (!db.Apply(batch)) return 1;
    }
    wal_on_ms = MsSince(t0);
    log_bytes = db.wal().size_bytes();
  }

  // --- WAL-off: bare pager, force + fsync per batch --------------------
  double wal_off_ms = 0.0;
  {
    std::remove(wal_off_path.c_str());
    storage::FilePager pager(wal_off_path, /*truncate=*/true);
    storage::BufferPool pool(&pager, 256);
    index::ZkdIndex index(grid, &pool, config);
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& batch : batches) {
      for (const Op& op : batch) index.Insert(op.point, op.id);
      pool.FlushAll();
      pager.Sync();
    }
    wal_off_ms = MsSince(t0);
    std::remove(wal_off_path.c_str());
  }

  const double slowdown = wal_on_ms / wal_off_ms;
  const double inserts = static_cast<double>(kBatches) * kPerBatch;
  std::printf("  WAL-off  %8.2f ms  (%.0f inserts/s)\n", wal_off_ms,
              inserts / (wal_off_ms / 1000.0));
  std::printf("  WAL-on   %8.2f ms  (%.0f inserts/s, log %.1f MiB)\n",
              wal_on_ms, inserts / (wal_on_ms / 1000.0),
              static_cast<double>(log_bytes) / (1024.0 * 1024.0));
  std::printf("  slowdown %.2fx (budget %.1fx)\n\n", slowdown,
              kMaxWalSlowdown);

  // --- recovery time vs log length -------------------------------------
  std::printf("=== recovery time vs log length ===\n\n");
  std::string recovery_rows;
  for (const int n : {25, 50, 100, 200}) {
    RemoveDb(wal_on_path);
    uint64_t bytes = 0;
    {
      index::DurableIndex::Options options;
      options.config = config;
      options.truncate = true;
      index::DurableIndex db(grid, wal_on_path, options);
      for (const auto& batch : MakeBatches(n, kPerBatch, grid.side())) {
        if (!db.Apply(batch)) return 1;
      }
      bytes = db.wal().size_bytes();
      // Dropped cold: recovery on the next open replays the whole log.
    }
    storage::FilePager base(wal_on_path);
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = storage::Recover(wal_on_path + ".wal", &base);
    const double ms = MsSince(t0);
    std::printf("  %4d batches  %7.2f MiB log  %4llu pages redone  %7.2f ms\n",
                n, static_cast<double>(bytes) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(result.records_redone), ms);
    if (!recovery_rows.empty()) recovery_rows += ",";
    recovery_rows += "{\"batches\":" + std::to_string(n) +
                     ",\"log_bytes\":" + std::to_string(bytes) +
                     ",\"pages_redone\":" + std::to_string(result.records_redone) +
                     ",\"recover_ms\":" + std::to_string(ms) + "}";
  }
  RemoveDb(wal_on_path);

  const std::string payload =
      "{\"inserts\":" + std::to_string(static_cast<uint64_t>(inserts)) +
      ",\"wal_off_ms\":" + std::to_string(wal_off_ms) +
      ",\"wal_on_ms\":" + std::to_string(wal_on_ms) +
      ",\"log_bytes\":" + std::to_string(log_bytes) +
      ",\"slowdown\":" + std::to_string(slowdown) +
      ",\"slowdown_budget\":" + std::to_string(kMaxWalSlowdown) +
      ",\"recovery\":[" + recovery_rows + "]}";
  if (util::UpdateJsonSection("BENCH_recovery.json", "recovery", payload)) {
    std::printf("\nwrote BENCH_recovery.json\n");
  }

  if (slowdown > kMaxWalSlowdown) {
    std::printf("FAIL: WAL slowdown %.2fx exceeds the %.1fx budget\n",
                slowdown, kMaxWalSlowdown);
    return 1;
  }
  return 0;
}
