// Figure 3: the z values in an element are consecutive.
//
// "For any region r obtained by recursive splitting, the z value of any
// point in r is lexicographically between the z values of r's lower left
// and upper right corners; i.e., the z values of a region are consecutive."
// Prints the paper's element (001 on the 8x8 grid) cell by cell, then
// verifies the property for every element of every length on the grid.

#include <cstdio>
#include <vector>

#include "zorder/shuffle.h"
#include "zorder/zvalue.h"

int main() {
  using namespace probe::zorder;
  const GridSpec grid{2, 3};
  const int total = grid.total_bits();

  std::printf("=== Figure 3: z values inside element 001 are consecutive ===\n\n");
  const ZValue element = *ZValue::Parse("001");
  const auto ranges = UnshuffleRegion(grid, element);
  std::printf("element 001 covers X [%u:%u], Y [%u:%u]\n\n", ranges[0].lo,
              ranges[0].hi, ranges[1].lo, ranges[1].hi);
  std::printf("   y |  cells (z value shown as in the figure)\n");
  std::printf("-----+------------------------------------\n");
  for (uint32_t y = ranges[1].hi + 1; y-- > ranges[1].lo;) {
    std::printf("   %u |", y);
    for (uint32_t x = ranges[0].lo; x <= ranges[0].hi; ++x) {
      std::printf("  %s", Shuffle2D(grid, x, y).ToString().c_str());
    }
    std::printf("\n");
    if (y == ranges[1].lo) break;
  }
  std::printf("\nrange: zlo=%llu (%s) .. zhi=%llu (%s)\n",
              static_cast<unsigned long long>(element.RangeLo(total)),
              ZValue::FromInteger(element.RangeLo(total), total)
                  .ToString()
                  .c_str(),
              static_cast<unsigned long long>(element.RangeHi(total)),
              ZValue::FromInteger(element.RangeHi(total), total)
                  .ToString()
                  .c_str());

  // Exhaustive verification: for every prefix (element) of every length,
  // the set of cell z values inside the region is exactly the integer
  // interval [RangeLo, RangeHi].
  uint64_t checked = 0;
  uint64_t violations = 0;
  for (int len = 0; len <= total; ++len) {
    for (uint64_t bits = 0; bits < (1ULL << len); ++bits) {
      const ZValue e = ZValue::FromInteger(bits, len);
      const auto region = UnshuffleRegion(grid, e);
      const uint64_t lo = e.RangeLo(total);
      const uint64_t hi = e.RangeHi(total);
      uint64_t cells = 0;
      for (uint32_t x = region[0].lo; x <= region[0].hi; ++x) {
        for (uint32_t y = region[1].lo; y <= region[1].hi; ++y) {
          const uint64_t z = Shuffle2D(grid, x, y).ToInteger();
          if (z < lo || z > hi) ++violations;
          ++cells;
        }
      }
      if (cells != hi - lo + 1) ++violations;
      ++checked;
    }
  }
  std::printf("\nverified all %llu elements of every length on the grid: "
              "%llu violations\n",
              static_cast<unsigned long long>(checked),
              static_cast<unsigned long long>(violations));
  return violations == 0 ? 0 : 1;
}
