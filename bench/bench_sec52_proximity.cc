// Section 5.2: preservation of proximity.
//
// "Proximity in space in any direction usually corresponds to proximity in
// z order. The greater the discrepancy, the less likely it is to occur."
// For pairs of cells at fixed spatial distances, this bench reports the
// distribution of their z-rank gaps; and conversely, for cells adjacent in
// z order, their spatial distance. Also verifies the page-locality
// consequence: a page (a run of consecutive z values) covers a compact
// piece of space.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "zorder/curve.h"
#include "zorder/shuffle.h"

int main() {
  using namespace probe;
  using namespace probe::zorder;
  const GridSpec grid{2, 8};  // 256x256
  util::Rng rng(52);

  // --- Spatial distance -> z gap. --------------------------------------
  std::printf("=== Section 5.2: spatial distance vs z-order distance "
              "(256x256 grid) ===\n\n");
  {
    util::Table table({"spatial dist", "z gap p50", "z gap p90", "z gap mean",
                       "P[z gap <= 4*d^2]"});
    for (const uint32_t dist : {1u, 2u, 4u, 8u, 16u, 32u}) {
      util::Summary gaps;
      int within = 0;
      int samples = 0;
      while (samples < 4000) {
        const uint32_t x = static_cast<uint32_t>(rng.NextBelow(grid.side()));
        const uint32_t y = static_cast<uint32_t>(rng.NextBelow(grid.side()));
        // Random direction at L-infinity distance `dist`.
        const int dx = static_cast<int>(rng.NextBelow(2 * dist + 1)) -
                       static_cast<int>(dist);
        const int dy = rng.NextBelow(2) == 0 ? static_cast<int>(dist)
                                             : -static_cast<int>(dist);
        const int64_t nx = static_cast<int64_t>(x) + dx;
        const int64_t ny = static_cast<int64_t>(y) + dy;
        if (nx < 0 || ny < 0 || nx >= static_cast<int64_t>(grid.side()) ||
            ny >= static_cast<int64_t>(grid.side())) {
          continue;
        }
        const int64_t za = static_cast<int64_t>(ZRank2D(grid, x, y));
        const int64_t zb = static_cast<int64_t>(
            ZRank2D(grid, static_cast<uint32_t>(nx), static_cast<uint32_t>(ny)));
        const double gap = static_cast<double>(std::llabs(za - zb));
        gaps.Add(gap);
        if (gap <= 4.0 * dist * dist) ++within;
        ++samples;
      }
      table.AddRow();
      table.Cell(static_cast<int64_t>(dist));
      table.Cell(gaps.Percentile(0.5), 0);
      table.Cell(gaps.Percentile(0.9), 0);
      table.Cell(gaps.Mean(), 0);
      table.Cell(static_cast<double>(within) / samples, 3);
    }
    table.Print(std::cout);
    std::printf("\nTypical z gaps scale with the *square* of the spatial\n"
                "distance (the area between the cells) — close in space "
                "usually\nmeans close in z order; big discrepancies exist but "
                "are rare\n(the long upper tail).\n\n");
  }

  // --- Z gap -> spatial distance. --------------------------------------
  std::printf("=== Converse: cells at small z gaps are spatially close ===\n\n");
  {
    util::Table table({"z gap", "Chebyshev dist p50", "p90", "max"});
    for (const uint64_t gap : {1ull, 4ull, 16ull, 64ull, 256ull}) {
      util::Summary dist;
      for (int s = 0; s < 4000; ++s) {
        const uint64_t za = rng.NextBelow(grid.cell_count() - gap);
        const uint64_t zb = za + gap;
        dist.Add(static_cast<double>(ChebyshevDistance(grid, za, zb)));
      }
      table.AddRow();
      table.Cell(static_cast<int64_t>(gap));
      table.Cell(dist.Percentile(0.5), 0);
      table.Cell(dist.Percentile(0.9), 0);
      table.Cell(dist.Max(), 0);
    }
    table.Print(std::cout);
  }

  // --- Page locality: runs of 20 consecutive z values (one data page). --
  std::printf("\n=== A page's z-value run covers a compact region "
              "(fixed-size-page view) ===\n\n");
  {
    util::Summary bbox_area;
    const uint64_t run = 20 * 16;  // 20 points at ~1/16 data density
    for (int s = 0; s < 2000; ++s) {
      const uint64_t z0 = rng.NextBelow(grid.cell_count() - run);
      uint32_t xmin = ~0u, xmax = 0, ymin = ~0u, ymax = 0;
      for (uint64_t z = z0; z < z0 + run; z += 16) {
        const auto c = Unshuffle(grid, ZValue::FromInteger(z, 16));
        xmin = std::min(xmin, c[0]);
        xmax = std::max(xmax, c[0]);
        ymin = std::min(ymin, c[1]);
        ymax = std::max(ymax, c[1]);
      }
      bbox_area.Add(static_cast<double>(xmax - xmin + 1) *
                    static_cast<double>(ymax - ymin + 1));
    }
    std::printf("z-run of %llu cells: bounding box area mean %.0f cells "
                "(p90 %.0f)\n",
                static_cast<unsigned long long>(run), bbox_area.Mean(),
                bbox_area.Percentile(0.9));
    std::printf("a random scatter of the same %llu cells would span the whole "
                "grid (%llu cells)\n",
                static_cast<unsigned long long>(run),
                static_cast<unsigned long long>(grid.cell_count()));
  }
  return 0;
}
