// Figure 2: the decomposition of a box into elements.
//
// Reproduces the paper's labelled figure: each element of the decomposed
// box is printed with its z value, its coordinate ranges, and the caption's
// construction (common prefixes of the binary ranges, interleaved starting
// with X). Also renders the element map of the grid.

#include <cstdio>
#include <string>

#include "decompose/decomposer.h"
#include "geometry/box.h"
#include "zorder/shuffle.h"

int main() {
  using namespace probe;
  const zorder::GridSpec grid{2, 3};
  // The box reconstructed from the figure's element labels.
  const geometry::GridBox box = geometry::GridBox::Make2D(1, 3, 0, 4);

  std::printf("=== Figure 2: decomposition of the box %s on an 8x8 grid ===\n\n",
              box.ToString().c_str());

  decompose::DecomposeStats stats;
  const auto elements = DecomposeBox(grid, box, {}, &stats);

  std::printf("%-8s  %-10s  %-10s  %s\n", "z value", "X range", "Y range",
              "construction (x-prefix, y-prefix)");
  std::printf("%s\n", std::string(64, '-').c_str());
  for (const auto& element : elements) {
    const auto ranges = UnshuffleRegion(grid, element);
    // Recover the per-dimension prefixes the caption interleaves.
    std::string xp, yp;
    for (int j = 0; j < element.length(); ++j) {
      (j % 2 == 0 ? xp : yp) += element.BitAt(j) ? '1' : '0';
    }
    std::printf("%-8s  [%u:%u]%-5s  [%u:%u]%-5s  [%s, %s]\n",
                element.ToString().c_str(), ranges[0].lo, ranges[0].hi, "",
                ranges[1].lo, ranges[1].hi, "", xp.c_str(), yp.c_str());
  }

  std::printf("\nelements: %llu   classifier calls: %llu\n",
              static_cast<unsigned long long>(stats.elements),
              static_cast<unsigned long long>(stats.classify_calls));

  // Element map: which element covers each cell (letters in z order).
  std::printf("\nElement map (a = first element in z order; '.' outside):\n\n");
  for (int y = 7; y >= 0; --y) {
    std::printf("  y=%d  ", y);
    for (uint32_t x = 0; x < 8; ++x) {
      char mark = '.';
      const auto z = Shuffle2D(grid, x, static_cast<uint32_t>(y));
      for (size_t e = 0; e < elements.size(); ++e) {
        if (elements[e].Contains(z)) {
          mark = static_cast<char>('a' + e);
          break;
        }
      }
      std::printf("%c ", mark);
    }
    std::printf("\n");
  }
  std::printf("\n");

  // The caption's worked example: element 001.
  std::printf("Caption check: element 001 covers [2:3, 0:3]; binary ranges\n");
  std::printf("[010:011, 000:011]; common prefixes [01, 0]; interleaved 001.\n");
  const auto ranges = UnshuffleRegion(grid, *zorder::ZValue::Parse("001"));
  std::printf("  computed: X [%u:%u], Y [%u:%u]\n", ranges[0].lo, ranges[0].hi,
              ranges[1].lo, ranges[1].hi);
  const zorder::DimRange region[2] = {{2, 3}, {0, 3}};
  std::printf("  shuffle([2:3, 0:3]) = %s\n",
              ShuffleRegion(grid, region).ToString().c_str());
  return 0;
}
