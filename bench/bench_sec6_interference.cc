// Section 6 (CAD): interference detection via the spatial-join machinery.
//
// An assembly of parts is tested pairwise for interference. The AG
// algorithm decomposes each part and merges the element sequences with
// early exit on the first interior-interior overlap, re-expressing the
// localized set operations of [MANT83] as a spatial join. The bench shows
// (a) correctness against a pixel-level reference, (b) the early-exit
// effect: interpenetrating pairs resolve after a tiny fraction of the
// merge, and (c) the resolution/verdict trade of coarse decomposition.

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "ag/interference.h"
#include "geometry/csg.h"
#include "geometry/point.h"
#include "geometry/primitives.h"
#include "util/table.h"

namespace {

using namespace probe;

const char* VerdictName(ag::Interference v) {
  switch (v) {
    case ag::Interference::kDisjoint:
      return "disjoint";
    case ag::Interference::kBoundaryContact:
      return "boundary";
    case ag::Interference::kSolidOverlap:
      return "OVERLAP";
  }
  return "?";
}

bool PixelOverlap(const zorder::GridSpec& grid,
                  const geometry::SpatialObject& a,
                  const geometry::SpatialObject& b) {
  for (uint32_t x = 0; x < grid.side(); ++x) {
    for (uint32_t y = 0; y < grid.side(); ++y) {
      const geometry::GridPoint p({x, y});
      if (a.ContainsCell(p) && b.ContainsCell(p)) return true;
    }
  }
  return false;
}

}  // namespace

int main() {
  std::printf("=== Section 6: interference detection for mechanical CAD "
              "===\n\n");
  const zorder::GridSpec grid{2, 8};  // 256x256 work envelope
  const double s = 256.0;

  // The assembly: a plate with a hole, a shaft through the hole (fits),
  // a bracket overlapping the plate (collision), and a fastener far away.
  auto plate_body = std::make_shared<geometry::BoxObject>(
      geometry::GridBox::Make2D(40, 180, 40, 120));
  auto hole = std::make_shared<geometry::BallObject>(
      std::vector<double>{110.0, 80.0}, 20.0);
  auto plate =
      std::make_shared<geometry::DifferenceObject>(plate_body, hole);
  auto shaft = std::make_shared<geometry::BallObject>(
      std::vector<double>{110.0, 80.0}, 14.0);
  auto bracket = std::make_shared<geometry::BoxObject>(
      geometry::GridBox::Make2D(150, 220, 100, 160));
  auto fastener = std::make_shared<geometry::BallObject>(
      std::vector<double>{0.9 * s, 0.15 * s}, 12.0);

  struct Part {
    const char* name;
    std::shared_ptr<const geometry::SpatialObject> object;
  };
  const std::vector<Part> parts = {{"plate", plate},
                                   {"shaft", shaft},
                                   {"bracket", bracket},
                                   {"fastener", fastener}};

  util::Table table({"pair", "verdict", "pixel ref", "match", "elems A",
                     "elems B", "merge steps", "steps/total"});
  for (size_t i = 0; i < parts.size(); ++i) {
    for (size_t j = i + 1; j < parts.size(); ++j) {
      const auto result =
          ag::DetectInterference(grid, *parts[i].object, *parts[j].object);
      const bool reference =
          PixelOverlap(grid, *parts[i].object, *parts[j].object);
      const bool got_overlap =
          result.verdict == ag::Interference::kSolidOverlap;
      // At full depth the verdict is exact for these center-sampled parts.
      const bool match = got_overlap == reference;
      table.AddRow();
      table.Cell(std::string(parts[i].name) + "-" + parts[j].name);
      table.Cell(std::string(VerdictName(result.verdict)));
      table.Cell(std::string(reference ? "overlap" : "clear"));
      table.Cell(std::string(match ? "yes" : "NO"));
      table.Cell(static_cast<int64_t>(result.a_elements));
      table.Cell(static_cast<int64_t>(result.b_elements));
      table.Cell(static_cast<int64_t>(result.merge_steps));
      table.Cell(static_cast<double>(result.merge_steps) /
                     static_cast<double>(result.a_elements +
                                         result.b_elements),
                 3);
      if (!match) {
        table.Print(std::cout);
        return 1;
      }
    }
  }
  table.Print(std::cout);

  std::printf("\nresolution sweep for the colliding pair (plate-bracket):\n\n");
  util::Table sweep({"max depth", "verdict", "elems A+B", "merge steps"});
  for (const int depth : {4, 6, 8, 10, 12, -1}) {
    const auto result = ag::DetectInterference(grid, *plate, *bracket, depth);
    sweep.AddRow();
    sweep.Cell(static_cast<int64_t>(depth));
    sweep.Cell(std::string(VerdictName(result.verdict)));
    sweep.Cell(static_cast<int64_t>(result.a_elements + result.b_elements));
    sweep.Cell(static_cast<int64_t>(result.merge_steps));
  }
  sweep.Print(std::cout);
  std::printf("\nDeep interpenetration is confirmed after a handful of merge\n"
              "steps even at coarse depth — the early exit that makes the\n"
              "spatial-join formulation effective for CAD checks.\n");
  return 0;
}
