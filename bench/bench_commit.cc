// Group-commit throughput and the concurrent WAL tax (DESIGN.md §16).
//
// Three questions about the concurrent write path:
//
//   1. What does durability cost once commits are *grouped*? The same
//      batched insert workload runs through the bare pager with a
//      force+fsync per batch (the non-logging engine at equivalent
//      durability effort) and through DurableIndex with K concurrent
//      writers sharing fsyncs. The loaded-run tax must stay under 1.5x —
//      the bench fails loudly if it doesn't.
//
//   2. Do commits actually group? Each row reports the mean commits per
//      fsync; under concurrent load it must exceed 1 (also gated).
//
//   3. Do snapshot readers get in the writers' way? A mixed row runs
//      epoch-pinned readers against a writer pair and reports both sides'
//      throughput.
//
// Rows where the writer count exceeds the machine's cores are tagged
// `oversubscribed`: scaling numbers from such rows measure scheduler
// time-slicing, not group commit, so scripts/check.sh skips its scaling
// gate for them (this container is single-core).
//
// Results land in BENCH_commit.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "geometry/box.h"
#include "index/durable_index.h"
#include "index/zkd_index.h"
#include "storage/buffer_pool.h"
#include "storage/file_pager.h"
#include "util/bench_json.h"
#include "util/rng.h"

namespace {

using namespace probe;
using Op = index::DurableIndex::Op;

constexpr double kMaxWalTax = 1.5;
constexpr int kTotalBatches = 96;
constexpr int kPerBatch = 50;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<std::vector<Op>> MakeBatches(int batches, int per_batch,
                                         uint32_t side) {
  util::Rng rng(0xC0117EE);
  std::vector<std::vector<Op>> out;
  uint64_t id = 0;
  for (int b = 0; b < batches; ++b) {
    std::vector<Op> batch;
    for (int i = 0; i < per_batch; ++i) {
      batch.push_back(Op::Insert(
          geometry::GridPoint({static_cast<uint32_t>(rng.NextBelow(side)),
                               static_cast<uint32_t>(rng.NextBelow(side))}),
          id++));
    }
    out.push_back(std::move(batch));
  }
  return out;
}

void RemoveDb(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".wal.tmp").c_str());
}

struct RunResult {
  double ms = 0.0;
  uint64_t syncs = 0;
  uint64_t commits = 0;
  uint64_t queries = 0;  // mixed runs only
};

// K writer threads split the batch list round-robin; `readers` threads pin
// snapshots and scan until the writers finish.
RunResult RunWriters(const zorder::GridSpec& grid, const std::string& path,
                     const std::vector<std::vector<Op>>& batches, int writers,
                     int readers) {
  RemoveDb(path);
  index::DurableIndex::Options options;
  options.config.leaf_capacity = 20;
  options.truncate = true;
  index::DurableIndex db(grid, path, options);
  if (!db.ok()) {
    std::printf("cannot open %s\n", path.c_str());
    std::exit(1);
  }
  // Linger long enough for racing writers to fall into one group, short
  // enough that a lone writer's commits don't stall behind it.
  db.wal().SetGroupCommitDelay(std::chrono::microseconds(writers > 1 ? 100
                                                                     : 0));

  RunResult result;
  std::atomic<int> writers_left{writers};
  std::atomic<uint64_t> queries{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      for (size_t b = static_cast<size_t>(w); b < batches.size();
           b += static_cast<size_t>(writers)) {
        if (!db.Apply(batches[b])) std::exit(1);
      }
      writers_left.fetch_sub(1);
    });
  }
  const geometry::GridBox box =
      geometry::GridBox::Make2D(100, 500, 100, 500);
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&] {
      uint64_t local = 0;
      do {
        index::DurableIndex::Snapshot snap = db.CreateSnapshot();
        (void)snap.index().RangeSearch(box);
        ++local;
      } while (writers_left.load() > 0);
      queries.fetch_add(local);
    });
  }
  for (auto& t : threads) t.join();
  result.ms = MsSince(t0);
  const storage::WalStats stats = db.wal().stats();
  result.syncs = stats.syncs;
  result.commits = stats.group_commits;
  result.queries = queries.load();
  return result;
}

}  // namespace

int main() {
  const zorder::GridSpec grid{2, 10};
  const std::string db_path = "/tmp/probe_bench_commit.db";
  const std::string off_path = "/tmp/probe_bench_commit_off.db";
  const unsigned cores = std::thread::hardware_concurrency();
  const auto batches = MakeBatches(kTotalBatches, kPerBatch, grid.side());
  const double inserts = static_cast<double>(kTotalBatches) * kPerBatch;

  std::printf("=== group commit: %d batches x %d inserts, %u core(s) ===\n\n",
              kTotalBatches, kPerBatch, cores);

  // --- baseline: bare pager, force + fsync per batch, no logging --------
  double baseline_ms = 0.0;
  {
    std::remove(off_path.c_str());
    storage::FilePager pager(off_path, /*truncate=*/true);
    storage::BufferPool pool(&pager, 256);
    btree::BTreeConfig config;
    config.leaf_capacity = 20;
    index::ZkdIndex index(grid, &pool, config);
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& batch : batches) {
      for (const Op& op : batch) index.Insert(op.point, op.id);
      pool.FlushAll();
      pager.Sync();
    }
    baseline_ms = MsSince(t0);
    std::remove(off_path.c_str());
  }
  std::printf("  WAL-off baseline  %8.2f ms  (%.0f inserts/s)\n\n",
              baseline_ms, inserts / (baseline_ms / 1000.0));

  // --- writer scaling + the mixed reader row ----------------------------
  struct Row {
    int writers;
    int readers;
  };
  const Row plan[] = {{1, 0}, {2, 0}, {4, 0}, {2, 2}};
  std::string rows;
  double loaded_tax = 0.0;
  double loaded_group = 0.0;
  for (const Row& r : plan) {
    // Best of two trials: one-core scheduler noise easily costs 10-20%,
    // and the gate below is a budget on the protocol, not on the noise.
    RunResult run = RunWriters(grid, db_path, batches, r.writers, r.readers);
    const RunResult again =
        RunWriters(grid, db_path, batches, r.writers, r.readers);
    if (again.ms < run.ms) run = again;
    const double tax = run.ms / baseline_ms;
    const double group_avg = static_cast<double>(run.commits) /
                             static_cast<double>(run.syncs ? run.syncs : 1);
    const double per_s = inserts / (run.ms / 1000.0);
    const bool oversub = static_cast<unsigned>(r.writers) > cores;
    if (r.writers == 4 && r.readers == 0) {
      loaded_tax = tax;
      loaded_group = group_avg;
    }
    std::printf(
        "  writers=%d readers=%d  %8.2f ms  %8.0f inserts/s  tax %.2fx  "
        "%.1f commits/fsync%s%s\n",
        r.writers, r.readers, run.ms, per_s, tax, group_avg,
        r.readers ? "" : "", oversub ? "  [oversubscribed]" : "");
    if (r.readers) {
      std::printf("                       %8llu snapshot scans (%.0f/s)\n",
                  static_cast<unsigned long long>(run.queries),
                  static_cast<double>(run.queries) / (run.ms / 1000.0));
    }
    if (!rows.empty()) rows += ",";
    rows += "{\"writers\":" + std::to_string(r.writers) +
            ",\"readers\":" + std::to_string(r.readers) +
            ",\"shards\":1,\"ms\":" + std::to_string(run.ms) +
            ",\"inserts_per_s\":" + std::to_string(per_s) +
            ",\"wal_tax\":" + std::to_string(tax) +
            ",\"group_size_avg\":" + std::to_string(group_avg) +
            ",\"syncs_per_commit\":" +
            std::to_string(static_cast<double>(run.syncs) /
                           static_cast<double>(run.commits ? run.commits
                                                          : 1)) +
            ",\"snapshot_scans\":" + std::to_string(run.queries) +
            ",\"oversubscribed\":" + (oversub ? "true" : "false") + "}";
  }
  RemoveDb(db_path);

  std::printf("\n  loaded run (writers=4): tax %.2fx (budget %.1fx), "
              "%.1f commits/fsync\n",
              loaded_tax, kMaxWalTax, loaded_group);

  const std::string payload =
      "{\"inserts\":" + std::to_string(static_cast<uint64_t>(inserts)) +
      ",\"hardware_concurrency\":" + std::to_string(cores) +
      ",\"baseline_ms\":" + std::to_string(baseline_ms) +
      ",\"tax_budget\":" + std::to_string(kMaxWalTax) +
      ",\"rows\":[" + rows + "]}";
  if (util::UpdateJsonSection("BENCH_commit.json", "commit", payload)) {
    std::printf("\nwrote BENCH_commit.json\n");
  }

  if (loaded_tax > kMaxWalTax) {
    std::printf("FAIL: loaded WAL tax %.2fx exceeds the %.1fx budget\n",
                loaded_tax, kMaxWalTax);
    return 1;
  }
  if (loaded_group <= 1.0) {
    std::printf("FAIL: commits are not grouping (%.2f commits/fsync)\n",
                loaded_group);
    return 1;
  }
  return 0;
}
