// Section 6 (connected components): labelling on element sequences.
//
// "How many black objects are in a given picture? What is the area of each
// object?" — the global-property queries of Section 6, answered by a
// union-find over the z-ordered element sequence instead of the
// "extremely complicated" direct quadtree algorithm. Correctness is
// checked against a pixel flood fill; the work comparison shows the AG
// algorithm's probes growing with element adjacencies (surface), not
// pixels (volume).

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <queue>

#include "ag/connected.h"
#include "decompose/decomposer.h"
#include "geometry/csg.h"
#include "geometry/primitives.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace probe;
using Clock = std::chrono::steady_clock;

double Ms(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

// Pixel-level flood fill reference. Returns component count; black cell
// count via out-param.
int FloodFill(const zorder::GridSpec& grid,
              const geometry::SpatialObject& picture, uint64_t* black_cells) {
  const uint32_t side = static_cast<uint32_t>(grid.side());
  std::vector<bool> black(static_cast<size_t>(side) * side, false);
  uint64_t count = 0;
  for (uint32_t x = 0; x < side; ++x) {
    for (uint32_t y = 0; y < side; ++y) {
      if (picture.ContainsCell(geometry::GridPoint({x, y}))) {
        black[static_cast<size_t>(x) * side + y] = true;
        ++count;
      }
    }
  }
  *black_cells = count;
  std::vector<bool> seen(black.size(), false);
  int components = 0;
  for (uint32_t sx = 0; sx < side; ++sx) {
    for (uint32_t sy = 0; sy < side; ++sy) {
      const size_t start = static_cast<size_t>(sx) * side + sy;
      if (!black[start] || seen[start]) continue;
      ++components;
      std::queue<std::pair<uint32_t, uint32_t>> frontier;
      frontier.push({sx, sy});
      seen[start] = true;
      while (!frontier.empty()) {
        const auto [x, y] = frontier.front();
        frontier.pop();
        const int dx[4] = {-1, 1, 0, 0};
        const int dy[4] = {0, 0, -1, 1};
        for (int dir = 0; dir < 4; ++dir) {
          const int64_t nx = static_cast<int64_t>(x) + dx[dir];
          const int64_t ny = static_cast<int64_t>(y) + dy[dir];
          if (nx < 0 || ny < 0 || nx >= side || ny >= side) continue;
          const size_t idx = static_cast<size_t>(nx) * side + ny;
          if (black[idx] && !seen[idx]) {
            seen[idx] = true;
            frontier.push({static_cast<uint32_t>(nx),
                           static_cast<uint32_t>(ny)});
          }
        }
      }
    }
  }
  return components;
}

// A picture of scattered blobs scaled to the grid.
std::shared_ptr<geometry::UnionObject> MakePicture(
    const zorder::GridSpec& grid, int blobs, uint64_t seed) {
  util::Rng rng(seed);
  const double side = static_cast<double>(grid.side());
  std::vector<std::shared_ptr<const geometry::SpatialObject>> parts;
  for (int i = 0; i < blobs; ++i) {
    const double cx = rng.NextDouble() * side;
    const double cy = rng.NextDouble() * side;
    const double r = (0.02 + 0.06 * rng.NextDouble()) * side;
    parts.push_back(std::make_shared<geometry::BallObject>(
        std::vector<double>{cx, cy}, r));
  }
  return std::make_shared<geometry::UnionObject>(parts);
}

}  // namespace

int main() {
  using namespace probe;
  std::printf("=== Section 6: connected component labelling on element "
              "sequences ===\n\n");
  util::Table table({"grid", "blobs", "elements", "components", "flood-fill",
                     "match", "probes", "black cells", "AG ms", "flood ms"});
  for (const int d : {5, 6, 7, 8, 9}) {
    const zorder::GridSpec grid{2, d};
    const auto picture = MakePicture(grid, 14, 60 + d);

    const auto t0 = Clock::now();
    const auto elements = decompose::Decompose(grid, *picture);
    const auto result = ag::LabelComponents(grid, elements);
    const auto t1 = Clock::now();

    uint64_t black_cells = 0;
    const int reference = FloodFill(grid, *picture, &black_cells);
    const auto t2 = Clock::now();

    // Total area must also agree.
    uint64_t ag_area = 0;
    for (uint64_t a : result.component_areas) ag_area += a;

    table.AddRow();
    table.Cell(std::to_string(grid.side()) + "^2");
    table.Cell(static_cast<int64_t>(14));
    table.Cell(static_cast<int64_t>(elements.size()));
    table.Cell(static_cast<int64_t>(result.component_count));
    table.Cell(static_cast<int64_t>(reference));
    table.Cell(std::string(result.component_count == reference &&
                                   ag_area == black_cells
                               ? "yes"
                               : "NO"));
    table.Cell(static_cast<int64_t>(result.probes));
    table.Cell(static_cast<int64_t>(black_cells));
    table.Cell(Ms(t0, t1), 2);
    table.Cell(Ms(t1, t2), 2);
    if (result.component_count != reference || ag_area != black_cells) {
      table.Print(std::cout);
      return 1;
    }
  }
  table.Print(std::cout);
  std::printf("\nComponent counts and areas match the pixel flood fill at "
              "every\nresolution while the AG probes track the element count "
              "(~2x per\nstep), not the pixel count (~4x per step).\n");
  return 0;
}
