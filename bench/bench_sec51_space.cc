// Section 5.1: space requirements — the element count E(U,V).
//
// Regenerates the section's quantitative claims:
//   1. E(U,V) is highly dependent on the bit span of U OR V (first to last
//      1 bits), not on the magnitudes themselves.
//   2. E(U,V) is cyclic: E(U,V) = E(2U,2V).
//   3. Grid coarsening (zeroing the last m bits by expanding the box)
//      reduces E sharply while the area error grows slowly.
//   4. E is governed by surface, not volume: versus an explicit grid, the
//      advantage grows with resolution.

#include <cstdio>
#include <vector>

#include "decompose/analysis.h"
#include "decompose/coarsen.h"
#include "decompose/decomposer.h"
#include "geometry/box.h"
#include "util/stats.h"
#include "util/table.h"

#include <iostream>

int main() {
  using namespace probe;
  using decompose::ElementCountUV;

  // --- Claim 1: bit span drives E(U,V). -------------------------------
  std::printf("=== Section 5.1 (1): E(U,V) follows the bit span of U|V ===\n\n");
  const zorder::GridSpec grid{2, 16};
  {
    util::Table table({"U", "V", "U|V (binary)", "bit span", "E(U,V)"});
    const std::vector<std::pair<uint64_t, uint64_t>> cases = {
        {256, 256},   // span 1: one aligned block
        {256, 384},   // 384 = 110000000: span 2
        {320, 320},   // 101000000: span 3
        {257, 256},   // 100000001: span 9 — tiny change, huge E
        {255, 255},   // 11111111: span 8
        {254, 252},   // span 7
        {260, 264},   // span 4
        {4096, 4097}, // span 13 at larger magnitude
    };
    for (const auto& [u, v] : cases) {
      const uint64_t extents[2] = {u, v};
      char binary[72];
      int pos = 0;
      const uint64_t combined = u | v;
      bool started = false;
      for (int b = 63; b >= 0; --b) {
        const int bit = static_cast<int>((combined >> b) & 1);
        if (bit) started = true;
        if (started) binary[pos++] = static_cast<char>('0' + bit);
      }
      binary[pos] = '\0';
      table.AddRow();
      table.Cell(static_cast<int64_t>(u));
      table.Cell(static_cast<int64_t>(v));
      table.Cell(std::string(binary));
      table.Cell(static_cast<int64_t>(decompose::ExtentBitSpan(extents)));
      table.Cell(static_cast<int64_t>(ElementCountUV(grid, u, v)));
    }
    table.Print(std::cout);
  }
  std::printf("\nNote 257x256 vs 256x256: a one-cell change to the border "
              "multiplies E\nby two orders of magnitude — the sensitivity the "
              "paper highlights.\n\n");

  // Correlation across a sweep.
  {
    std::vector<double> spans, counts;
    for (uint64_t u = 1; u <= 512; u += 3) {
      for (uint64_t v = 1; v <= 512; v += 5) {
        const uint64_t extents[2] = {u, v};
        spans.push_back(static_cast<double>(
            1 << decompose::ExtentBitSpan(extents)));
        counts.push_back(static_cast<double>(ElementCountUV(grid, u, v)));
      }
    }
    std::printf("log-log slope of E against 2^span over a %zu-box sweep: "
                "%.2f (E ~ 2^span)\n\n",
                spans.size(), util::LogLogSlope(spans, counts));
  }

  // --- Claim 2: cyclicity. ---------------------------------------------
  std::printf("=== Section 5.1 (2): E(U,V) = E(2U,2V) ===\n\n");
  {
    util::Table table({"U", "V", "E(U,V)", "E(2U,2V)", "E(4U,4V)", "E(8U,8V)"});
    for (const auto& [u, v] : std::vector<std::pair<uint64_t, uint64_t>>{
             {3, 5}, {7, 9}, {13, 21}, {100, 60}, {255, 129}}) {
      table.AddRow();
      table.Cell(static_cast<int64_t>(u));
      table.Cell(static_cast<int64_t>(v));
      for (int shift = 0; shift < 4; ++shift) {
        table.Cell(static_cast<int64_t>(
            ElementCountUV(grid, u << shift, v << shift)));
      }
    }
    table.Print(std::cout);
    uint64_t mismatches = 0;
    for (uint64_t u = 1; u <= 1024; ++u) {
      for (uint64_t v = 1; v <= 64; ++v) {
        if (ElementCountUV(grid, u, v) != ElementCountUV(grid, 2 * u, 2 * v)) {
          ++mismatches;
        }
      }
    }
    std::printf("\nexhaustive check U in [1,1024], V in [1,64]: "
                "%llu mismatches\n\n",
                static_cast<unsigned long long>(mismatches));
  }

  // --- Claim 3: the coarsening optimization. ---------------------------
  std::printf("=== Section 5.1 (3): grid coarsening (U=01101101 example) ===\n\n");
  {
    const zorder::GridSpec g8{2, 8};
    const uint32_t u = 0b01101101;  // the paper's example magnitude
    const geometry::GridBox box = geometry::GridBox::Make2D(0, u - 1, 0, u - 1);
    util::Table table(
        {"m", "U'", "elements", "reduction", "area error %"});
    const uint64_t base = decompose::DecomposeBox(g8, box).size();
    for (int m = 0; m <= 6; ++m) {
      const auto coarse = decompose::CoarsenBox(g8, box, m);
      const uint64_t count = decompose::DecomposeBox(g8, coarse.box).size();
      table.AddRow();
      table.Cell(static_cast<int64_t>(m));
      table.Cell(static_cast<int64_t>(coarse.box.range(0).hi + 1));
      table.Cell(static_cast<int64_t>(count));
      table.Cell(static_cast<double>(base) / static_cast<double>(count), 1);
      table.Cell(100.0 * coarse.relative_error, 2);
    }
    table.Print(std::cout);
  }

  // --- Claim 4: surface beats volume. ----------------------------------
  std::printf("\n=== Section 5.1 (4): E grows with surface, explicit grids "
              "with volume ===\n\n");
  {
    util::Table table({"resolution d", "box side", "volume (pixels)",
                       "E (elements)", "pixels / element"});
    for (int d = 4; d <= 14; d += 2) {
      const zorder::GridSpec g{2, d};
      // A box at fixed relative size (five-eighths of the side, odd cells
      // so the border stays busy).
      const uint64_t side = g.side() * 5 / 8 + 1;
      const uint64_t volume = side * side;
      const uint64_t e = ElementCountUV(g, side, side);
      table.AddRow();
      table.Cell(static_cast<int64_t>(d));
      table.Cell(static_cast<int64_t>(side));
      table.Cell(static_cast<int64_t>(volume));
      table.Cell(static_cast<int64_t>(e));
      table.Cell(static_cast<double>(volume) / static_cast<double>(e), 1);
    }
    table.Print(std::cout);
    std::printf("\nE roughly doubles per resolution step (surface ~2^d) while "
                "volume\nquadruples (~4^d): 'AG techniques should be very hard "
                "to beat,\nespecially at high resolution.'\n");
  }
  return 0;
}
