// Overhead of the invariant-audit layer (src/probe/check.h).
//
// Runs a fixed workload — bulk load, range queries, decomposition, spatial
// join — and records wall times together with whether the audits were
// compiled into this binary. The audit mode is a compile-time property
// (PROBE_AUDIT_ENABLED), so the off/on comparison comes from running this
// bench from two build trees:
//
//   build/bench/bench_audit            audits compiled out (Release default)
//   build-audit/bench/bench_audit      cmake -DPROBE_AUDIT=ON
//
// Both runs write BENCH_audit.json, each owning its own section, so the
// file ends up holding the pair. With audits compiled out the macros
// expand to ((void)0) — the "off" numbers ARE the no-audit baseline, not a
// disabled-at-runtime approximation.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "decompose/decomposer.h"
#include "geometry/box.h"
#include "index/zkd_index.h"
#include "probe/check.h"
#include "relational/relation.h"
#include "relational/spatial_join.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "util/bench_json.h"
#include "util/rng.h"
#include "zorder/grid.h"
#include "zorder/shuffle.h"

namespace {

using namespace probe;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

bool SanitizedBuild() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#else
  return false;
#endif
}

}  // namespace

int main() {
  const zorder::GridSpec grid{2, 10};
  constexpr int kPoints = 50000;
  constexpr int kQueries = 300;
  constexpr int kDecompositions = 300;
  constexpr int kJoinRows = 4000;

  std::printf("=== audit-layer overhead (audits %s in this binary) ===\n\n",
              check::AuditsEnabled() ? "COMPILED IN" : "compiled out");

  util::Rng rng(0xA0D17);

  // --- bulk load -----------------------------------------------------
  std::vector<index::PointRecord> points;
  points.reserve(kPoints);
  for (uint64_t i = 0; i < kPoints; ++i) {
    points.push_back(
        {geometry::GridPoint(
             {static_cast<uint32_t>(rng.NextBelow(grid.side())),
              static_cast<uint32_t>(rng.NextBelow(grid.side()))}),
         i});
  }
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 256);
  auto t0 = std::chrono::steady_clock::now();
  auto index = index::ZkdIndex::Build(grid, &pool, points);
  const double bulk_ms = MsSince(t0);

  // --- range queries (skip merge: the audited hot path) --------------
  t0 = std::chrono::steady_clock::now();
  size_t hits = 0;
  for (int q = 0; q < kQueries; ++q) {
    uint32_t x = static_cast<uint32_t>(rng.NextBelow(grid.side() - 64));
    uint32_t y = static_cast<uint32_t>(rng.NextBelow(grid.side() - 64));
    hits += index.RangeSearch(geometry::GridBox::Make2D(x, x + 63, y, y + 63))
                .size();
  }
  const double query_ms = MsSince(t0);

  // --- decomposition -------------------------------------------------
  t0 = std::chrono::steady_clock::now();
  size_t elements = 0;
  for (int q = 0; q < kDecompositions; ++q) {
    uint32_t x = static_cast<uint32_t>(rng.NextBelow(grid.side() - 200));
    uint32_t y = static_cast<uint32_t>(rng.NextBelow(grid.side() - 150));
    elements += decompose::DecomposeBox(
                    grid, geometry::GridBox::Make2D(x, x + 199, y, y + 149))
                    .size();
  }
  const double decompose_ms = MsSince(t0);

  // --- spatial join --------------------------------------------------
  using relational::Column;
  using relational::Relation;
  using relational::Schema;
  using relational::ValueType;
  Relation r(Schema({Column{"za", ValueType::kZValue}}));
  Relation s(Schema({Column{"zb", ValueType::kZValue}}));
  for (int i = 0; i < kJoinRows; ++i) {
    const int len = static_cast<int>(4 + rng.NextBelow(
                        static_cast<uint64_t>(grid.total_bits()) - 3));
    r.Add({relational::Value(zorder::ZValue::FromInteger(rng.Next(), len))});
    const int len2 = static_cast<int>(4 + rng.NextBelow(
                         static_cast<uint64_t>(grid.total_bits()) - 3));
    s.Add({relational::Value(zorder::ZValue::FromInteger(rng.Next(), len2))});
  }
  t0 = std::chrono::steady_clock::now();
  relational::SpatialJoinStats jstats;
  const Relation joined = relational::SpatialJoin(r, "za", s, "zb", &jstats);
  const double join_ms = MsSince(t0);

  std::printf("  bulk load %d points      %8.2f ms\n", kPoints, bulk_ms);
  std::printf("  %d range queries        %8.2f ms  (%zu hits)\n", kQueries,
              query_ms, hits);
  std::printf("  %d box decompositions   %8.2f ms  (%zu elements)\n",
              kDecompositions, decompose_ms, elements);
  std::printf("  spatial join %dx%d    %8.2f ms  (%zu pairs)\n", kJoinRows,
              kJoinRows, join_ms, joined.size());

  const std::string section =
      check::AuditsEnabled() ? "audits_on" : "audits_off";
  const std::string payload =
      std::string("{\"audits_compiled_in\":") +
      (check::AuditsEnabled() ? "true" : "false") +
      ",\"sanitized_build\":" + (SanitizedBuild() ? "true" : "false") +
      ",\"points\":" + std::to_string(kPoints) +
      ",\"bulk_ms\":" + std::to_string(bulk_ms) +
      ",\"query_ms\":" + std::to_string(query_ms) +
      ",\"decompose_ms\":" + std::to_string(decompose_ms) +
      ",\"join_ms\":" + std::to_string(join_ms) + "}";
  if (util::UpdateJsonSection("BENCH_audit.json", section, payload)) {
    std::printf("\nwrote BENCH_audit.json (section \"%s\")\n",
                section.c_str());
  }

  std::printf(
      "\nWith audits compiled out the PROBE_* macros expand to ((void)0):\n"
      "the Release hot path carries zero audit overhead by construction.\n"
      "The audits_on section records what Debug/audit builds pay for the\n"
      "monotonicity, cover, and page checks.\n");
  return 0;
}
