// The Section 4 scenario, fully paged: stored relations on heap files,
// decomposition scanning through the buffer pool, spatial join, and
// projection — with the I/O of every stage accounted.
//
//   R(p@, zr, ...) := Decompose(P(p@, ...))      -- P is a heap file
//   S(q@, zs, ...) := Decompose(Q(q@, ...))      -- Q is a heap file
//   RS := R [zr <> zs] S
//   Result := RS[p@, q@]
//
// Scaling the stored relations shows where the work goes: base-table scan
// I/O grows linearly, decomposition output grows with total object
// surface, and the join's merge is linear in the element sequences.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>

#include "geometry/primitives.h"
#include "relational/catalog.h"
#include "relational/heap_file.h"
#include "relational/operators.h"
#include "relational/spatial_join.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace probe;
  using Clock = std::chrono::steady_clock;
  const zorder::GridSpec grid{2, 9};  // 512 x 512 map

  std::printf("=== DBMS pipeline: heap-file relations -> Decompose -> "
              "spatial join -> project ===\n\n");
  util::Table table({"parcels", "zones", "scan pages", "R elems", "S elems",
                     "join pairs", "result rows", "total ms"});

  for (const int n_parcels : {50, 200, 800}) {
    storage::MemPager pager;
    storage::BufferPool pool(&pager, 64);
    relational::ObjectCatalog catalog;
    util::Rng rng(9000 + n_parcels);

    // Stored relation P: parcels with ids and areas.
    relational::HeapFile parcels(
        &pool, relational::Schema({{"p_id", relational::ValueType::kInt},
                                   {"p_name", relational::ValueType::kString},
                                   {"p_value", relational::ValueType::kReal}}));
    for (int i = 0; i < n_parcels; ++i) {
      const uint32_t x = static_cast<uint32_t>(rng.NextBelow(460));
      const uint32_t y = static_cast<uint32_t>(rng.NextBelow(460));
      const uint64_t id = catalog.Register(
          std::make_shared<geometry::BoxObject>(geometry::GridBox::Make2D(
              x, x + 4 + static_cast<uint32_t>(rng.NextBelow(40)), y,
              y + 4 + static_cast<uint32_t>(rng.NextBelow(40)))));
      parcels.Append({static_cast<int64_t>(id),
                      "parcel-" + std::to_string(i), rng.NextDouble() * 1e6});
    }

    // Stored relation Q: zones (one per ~10 parcels).
    const int n_zones = std::max(2, n_parcels / 10);
    relational::HeapFile zones(
        &pool, relational::Schema({{"q_id", relational::ValueType::kInt},
                                   {"q_kind", relational::ValueType::kString}}));
    for (int i = 0; i < n_zones; ++i) {
      const double cx = rng.NextDouble() * 512.0;
      const double cy = rng.NextDouble() * 512.0;
      const uint64_t id = catalog.Register(std::make_shared<
                                           geometry::BallObject>(
          std::vector<double>{cx, cy}, 20.0 + rng.NextDouble() * 60.0));
      zones.Append({static_cast<int64_t>(id),
                    i % 2 == 0 ? "flood" : "protected"});
    }

    const auto t0 = Clock::now();
    uint64_t p_pages = 0;
    uint64_t q_pages = 0;
    const auto r =
        DecomposeHeapFile(grid, parcels, "p_id", catalog, "zr", {}, &p_pages);
    const auto s =
        DecomposeHeapFile(grid, zones, "q_id", catalog, "zs", {}, &q_pages);
    relational::SpatialJoinStats join_stats;
    const auto rs = SpatialJoin(r, "zr", s, "zs", &join_stats);
    const std::string cols[] = {"p_id", "q_id"};
    const auto result = Project(rs, cols, /*deduplicate=*/true);
    const auto t1 = Clock::now();

    table.AddRow();
    table.Cell(static_cast<int64_t>(n_parcels));
    table.Cell(static_cast<int64_t>(n_zones));
    table.Cell(static_cast<int64_t>(p_pages + q_pages));
    table.Cell(static_cast<int64_t>(r.size()));
    table.Cell(static_cast<int64_t>(s.size()));
    table.Cell(static_cast<int64_t>(join_stats.pairs));
    table.Cell(static_cast<int64_t>(result.size()));
    table.Cell(std::chrono::duration<double, std::milli>(t1 - t0).count(), 1);
  }
  table.Print(std::cout);
  std::printf(
      "\nThe whole spatial pipeline runs on stock DBMS machinery: heap\n"
      "scans, one sort per decomposed relation, a sort-merge join on the\n"
      "element domain, and a projection — nothing spatial inside the\n"
      "engine but the element object class, which is the paper's thesis.\n");
  return 0;
}
