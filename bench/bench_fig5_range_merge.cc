// Figure 5: the range-search algorithm as a merge of sequences P and B.
//
// Builds a small point set, decomposes a query box, and prints the two
// z-ordered sequences plus each match, exactly in the spirit of the
// figure. Then ablates the merge strategies of Section 3.3 on a larger
// instance: the plain O(|P|+|B|) merge, the skip-ahead merge ("parts of
// the space that could not possibly contribute to the result are
// skipped"), and the BIGMIN variant that needs no decomposition at all.

#include <algorithm>
#include <cstdio>

#include "decompose/decomposer.h"
#include "geometry/box.h"
#include "index/zkd_index.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "util/rng.h"
#include "workload/datagen.h"
#include "workload/experiment.h"
#include "zorder/shuffle.h"

namespace {

using namespace probe;

void RunStrategy(index::ZkdIndex& idx, const geometry::GridBox& box,
                 index::SearchOptions::Merge merge, const char* name) {
  index::SearchOptions options;
  options.merge = merge;
  index::QueryStats stats;
  const auto hits = idx.RangeSearch(box, &stats, options);
  std::printf(
      "  %-10s  results=%-5llu pages=%-5llu scanned=%-6llu seeks=%-4llu "
      "elements=%-5llu classify=%-6llu efficiency=%.3f\n",
      name, static_cast<unsigned long long>(hits.size()),
      static_cast<unsigned long long>(stats.leaf_pages),
      static_cast<unsigned long long>(stats.points_scanned),
      static_cast<unsigned long long>(stats.point_seeks),
      static_cast<unsigned long long>(stats.elements_generated),
      static_cast<unsigned long long>(stats.classify_calls),
      stats.Efficiency());
}

}  // namespace

int main() {
  using zorder::GridSpec;

  // --- Part 1: the figure itself, on a toy instance. -----------------
  std::printf("=== Figure 5: merging sequence P (points) with sequence B "
              "(box elements) ===\n\n");
  const GridSpec grid{2, 3};
  const std::vector<std::pair<uint32_t, uint32_t>> pts = {
      {1, 1}, {3, 5}, {6, 2}, {2, 3}, {7, 7}, {0, 6}, {3, 0}, {5, 4}};
  std::vector<std::pair<uint64_t, int>> p_sequence;  // (z, point idx)
  for (size_t i = 0; i < pts.size(); ++i) {
    p_sequence.emplace_back(
        zorder::Shuffle2D(grid, pts[i].first, pts[i].second).ToInteger(),
        static_cast<int>(i));
  }
  std::sort(p_sequence.begin(), p_sequence.end());

  const geometry::GridBox box = geometry::GridBox::Make2D(1, 3, 0, 4);
  const auto elements = decompose::DecomposeBox(grid, box);

  std::printf("P (points in z order):\n");
  for (const auto& [z, i] : p_sequence) {
    std::printf("  z=%-3llu %s -> point (%u,%u)\n",
                static_cast<unsigned long long>(z),
                zorder::ZValue::FromInteger(z, 6).ToString().c_str(),
                pts[i].first, pts[i].second);
  }
  std::printf("\nB (elements of box %s in z order):\n", box.ToString().c_str());
  for (const auto& e : elements) {
    std::printf("  %-7s [zlo=%llu, zhi=%llu]\n", e.ToString().c_str(),
                static_cast<unsigned long long>(e.RangeLo(6)),
                static_cast<unsigned long long>(e.RangeHi(6)));
  }
  std::printf("\nmerge matches (b.zlo <= p.z <= b.zhi):\n");
  for (const auto& [z, i] : p_sequence) {
    for (const auto& e : elements) {
      if (e.RangeLo(6) <= z && z <= e.RangeHi(6)) {
        std::printf("  point (%u,%u) in element %s\n", pts[i].first,
                    pts[i].second, e.ToString().c_str());
      }
    }
  }

  // --- Part 2: strategy ablation at the paper's experimental scale. ---
  std::printf("\n=== Merge strategy ablation (5000 points, 20/page, "
              "1024x1024 grid) ===\n\n");
  const GridSpec big{2, 10};
  workload::DataGenConfig data;
  data.count = 5000;
  data.seed = 7;
  const auto points = GeneratePoints(big, data);
  auto built = workload::BuildZkdIndex(big, points, 20, 64);

  const struct {
    const char* label;
    geometry::GridBox query;
  } cases[] = {
      {"tiny 32x32", geometry::GridBox::Make2D(500, 531, 500, 531)},
      {"small 64x64", geometry::GridBox::Make2D(128, 191, 700, 763)},
      {"wide 512x16", geometry::GridBox::Make2D(100, 611, 40, 55)},
      {"large 320x320", geometry::GridBox::Make2D(300, 619, 300, 619)},
  };
  for (const auto& c : cases) {
    std::printf("query %s:\n", c.label);
    RunStrategy(*built.index, c.query, index::SearchOptions::Merge::kPlainMerge,
                "plain");
    RunStrategy(*built.index, c.query, index::SearchOptions::Merge::kSkipMerge,
                "skip");
    RunStrategy(*built.index, c.query, index::SearchOptions::Merge::kBigMin,
                "bigmin");
    std::printf("\n");
  }
  std::printf("The skip merge reads only the leaves its elements touch; the\n"
              "plain merge scans every page once (the LRU-friendly pattern of\n"
              "Section 4, but far more I/O). BIGMIN trades decomposition for\n"
              "per-gap jump computations.\n");
  return 0;
}
