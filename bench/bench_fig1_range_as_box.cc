// Figure 1: the spatial interpretation of a range query.
//
// "Given a set of tuples with k attributes, a range query asks for all
// tuples such that L_i <= A_i <= U_i. ... a range query is a k-dimensional
// box in the space. The range query problem is now a spatial searching
// problem: find all the (black) points in a given box."
//
// This bench draws the paper's example query 1 <= X <= 3 & 0 <= Y <= 4 on
// an 8x8 grid and confirms the tuple/point duality: the tuples selected by
// attribute comparison are exactly the points inside the box.

#include <cstdio>

#include "geometry/box.h"
#include "geometry/primitives.h"
#include "geometry/raster.h"
#include "util/rng.h"
#include "zorder/grid.h"

int main() {
  using namespace probe;

  std::printf("=== Figure 1: range query  1 <= X <= 3  &  0 <= Y <= 4 ===\n");
  const zorder::GridSpec grid{2, 3};
  const geometry::GridBox query = geometry::GridBox::Make2D(1, 3, 0, 4);
  const geometry::BoxObject box(query);

  std::printf("\nThe query region on the 8x8 grid ('#' = inside):\n\n%s\n",
              geometry::RasterArt(grid, box).c_str());

  // A small "relation" of tuples (A1, A2).
  util::Rng rng(2026);
  std::printf("tuple (A1, A2)  |  selected by L<=A<=U  |  point in box\n");
  std::printf("----------------+-----------------------+--------------\n");
  int agreements = 0;
  const int kTuples = 16;
  for (int i = 0; i < kTuples; ++i) {
    const uint32_t a1 = static_cast<uint32_t>(rng.NextBelow(8));
    const uint32_t a2 = static_cast<uint32_t>(rng.NextBelow(8));
    const bool by_predicate = 1 <= a1 && a1 <= 3 && a2 <= 4;
    const bool by_geometry = query.ContainsPoint(geometry::GridPoint({a1, a2}));
    agreements += by_predicate == by_geometry;
    std::printf("     (%u, %u)     |        %s           |     %s\n", a1, a2,
                by_predicate ? "yes" : "no ", by_geometry ? "yes" : "no ");
  }
  std::printf("\nagreement: %d/%d — the range query IS a box search\n",
              agreements, kTuples);
  std::printf("query box volume: %llu of %llu cells (v = %.3f)\n",
              static_cast<unsigned long long>(query.Volume()),
              static_cast<unsigned long long>(grid.cell_count()),
              static_cast<double>(query.Volume()) /
                  static_cast<double>(grid.cell_count()));
  return agreements == kTuples ? 0 : 1;
}
