// The object index: spatial join against a stored relation.
//
// Section 4 stores decomposed objects in relations; when such a relation
// is indexed by element z value, the spatial join's stored side needs no
// scan. This bench loads a synthetic map of parcels into a ZkdObjectIndex
// and measures window and stabbing queries as the map grows, against the
// alternative the paper's scenario implies without an index: a full
// sort-merge spatial join over all stored elements.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>

#include "ag/merge.h"
#include "decompose/decomposer.h"
#include "geometry/primitives.h"
#include "index/object_index.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace probe;
  const zorder::GridSpec grid{2, 10};

  std::printf("=== Object index: window & stabbing queries over stored "
              "parcels ===\n\n");
  util::Table table({"objects", "elements", "window pages", "window scan",
                     "full-join steps", "stab pages", "stab results"});
  for (const size_t n_objects : {100u, 400u, 1600u, 6400u}) {
    storage::MemPager pager;
    storage::BufferPool pool(&pager, 128);
    btree::BTreeConfig config;
    config.leaf_capacity = 40;
    index::ZkdObjectIndex object_index(grid, &pool, config);

    util::Rng rng(4000 + n_objects);
    std::vector<zorder::ZValue> all_elements;  // for the unindexed join
    for (uint64_t id = 1; id <= n_objects; ++id) {
      const uint32_t x = static_cast<uint32_t>(rng.NextBelow(1000));
      const uint32_t y = static_cast<uint32_t>(rng.NextBelow(1000));
      const uint32_t w = 2 + static_cast<uint32_t>(rng.NextBelow(22));
      const uint32_t h = 2 + static_cast<uint32_t>(rng.NextBelow(22));
      const geometry::BoxObject parcel(geometry::GridBox::Make2D(
          x, std::min(x + w, 1023u), y, std::min(y + h, 1023u)));
      object_index.Insert(id, parcel);
      for (const auto& z : decompose::Decompose(grid, parcel)) {
        all_elements.push_back(z);
      }
    }
    std::sort(all_elements.begin(), all_elements.end());

    // Window queries.
    util::Summary window_pages, window_scanned, join_steps, stab_pages,
        stab_results;
    for (int q = 0; q < 10; ++q) {
      const uint32_t x = static_cast<uint32_t>(rng.NextBelow(900));
      const uint32_t y = static_cast<uint32_t>(rng.NextBelow(900));
      const geometry::GridBox window =
          geometry::GridBox::Make2D(x, x + 100, y, y + 100);
      index::ObjectQueryStats stats;
      object_index.QueryBox(window, &stats);
      window_pages.Add(static_cast<double>(stats.leaf_pages));
      window_scanned.Add(static_cast<double>(stats.entries_scanned));

      // The unindexed alternative: merge the probe's elements against the
      // whole stored element sequence.
      const auto probe_elements = decompose::DecomposeBox(grid, window);
      const uint64_t steps = ag::MergeOverlappingElements(
          all_elements, probe_elements, [](size_t, size_t) { return true; });
      join_steps.Add(static_cast<double>(steps));
    }
    for (int q = 0; q < 10; ++q) {
      const geometry::GridPoint p(
          {static_cast<uint32_t>(rng.NextBelow(1024)),
           static_cast<uint32_t>(rng.NextBelow(1024))});
      index::ObjectQueryStats stats;
      object_index.QueryPoint(p, &stats);
      stab_pages.Add(static_cast<double>(stats.leaf_pages));
      stab_results.Add(static_cast<double>(stats.result_objects));
    }

    table.AddRow();
    table.Cell(static_cast<int64_t>(n_objects));
    table.Cell(static_cast<int64_t>(object_index.element_count()));
    table.Cell(window_pages.Mean(), 1);
    table.Cell(window_scanned.Mean(), 1);
    table.Cell(join_steps.Mean(), 1);
    table.Cell(stab_pages.Mean(), 1);
    table.Cell(stab_results.Mean(), 1);
  }
  table.Print(std::cout);
  std::printf(
      "\nWindow-query work tracks the *answer* (denser maps have more\n"
      "overlaps per window), while the unindexed join walks every stored\n"
      "element: at 6400 objects the index scans ~1%% of what the full merge\n"
      "touches. Stabbing queries stay flat at about tree-height pages per\n"
      "prefix — the containment search Section 6 mentions.\n");
  return 0;
}
