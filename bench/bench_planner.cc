// Cost-based planner: chosen plans vs the static alternatives.
//
// For every (distribution, volume, aspect) cell the planner prices a range
// query and picks serial zkd scan, parallel zkd scan, or the bucket-kd
// fallback. The planner's default cost units are page counts (the paper's
// I/O-bound assumption); this bench runs in memory where per-page CPU
// differs between access paths, so it first *calibrates* the planner's
// cost coefficients with a few probe scans (measured ms per leaf page on
// each structure), then executes the planner's choice alongside every
// static plan — all through the same volcano executor, so only the plan
// choice differs. Acceptance bar: the planned execution never exceeds
// 1.1x the best static plan's time in any cell (a small absolute slack
// absorbs timer noise on sub-tenth-millisecond cells).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "baseline/bucket_kdtree.h"
#include "index/cost_model.h"
#include "query/executor.h"
#include "query/explain.h"
#include "query/planner.h"
#include "util/bench_json.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"
#include "workload/experiment.h"
#include "workload/querygen.h"

namespace {

using namespace probe;
using workload::Distribution;

double MsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Minimum wall time of `reps` runs of `fn` (discards scheduler noise).
template <typename F>
double MinMs(int reps, F&& fn) {
  double best = 1e30;
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, MsSince(start));
  }
  return best;
}

/// Executes a fresh instance of one static plan shape, returning min ms.
template <typename MakePlan>
double TimePlan(int reps, MakePlan&& make) {
  double best = 1e30;
  for (int i = 0; i < reps; ++i) {
    auto plan = make();
    const auto start = std::chrono::steady_clock::now();
    query::ExecuteIds(*plan);
    best = std::min(best, MsSince(start));
  }
  return best;
}

/// Measures ms-per-leaf-page cost coefficients for the planner on this
/// machine: raw serial merges and kd traversals over a few probe boxes,
/// plus the fan-out overhead of one parallel scan.
query::PlannerOptions Calibrate(const index::ZkdIndex& index,
                                const baseline::BucketKdTree& kd_tree,
                                util::ThreadPool& pool,
                                const zorder::GridSpec& grid) {
  query::PlannerOptions options;
  util::Rng rng(631);
  double z_ms = 0, z_pages = 0, kd_ms = 0, kd_pages = 0;
  for (const double volume : {0.01, 0.05, 0.10}) {
    for (const auto& box :
         workload::MakeQueryBoxes2D(grid, volume, 1.0, 2, rng)) {
      index::QueryStats stats;
      index.RangeSearch(box, &stats);  // warm the buffer pool
      z_ms += MinMs(3, [&] { index.RangeSearch(box); });
      z_pages += static_cast<double>(stats.leaf_pages);

      baseline::BucketKdStats kd_stats;
      kd_tree.RangeSearch(box, &kd_stats);
      kd_ms += MinMs(3, [&] { kd_tree.RangeSearch(box); });
      kd_pages += static_cast<double>(kd_stats.leaf_pages);
    }
  }
  options.z_cost_per_page = z_ms / std::max(z_pages, 1.0);
  options.kd_cost_per_page = kd_ms / std::max(kd_pages, 1.0);

  // Fan-out overhead: what a parallel scan costs beyond serial/partitions.
  const auto big = workload::MakeQueryBoxes2D(grid, 0.10, 1.0, 1, rng)[0];
  const double serial = MinMs(3, [&] { index.RangeSearch(big); });
  const double parallel =
      MinMs(3, [&] { index.ParallelRangeSearch(big, pool); });
  options.parallel_overhead =
      std::max(parallel - serial / pool.lanes(), 0.0);
  return options;
}

}  // namespace

int main() {
  const zorder::GridSpec grid{2, 10};
  const size_t n_points = 20000;
  const int reps = 3;
  util::ThreadPool pool(std::max(util::ThreadPool::DefaultThreads() - 1, 1));

  std::printf("=== Planner vs static plans (%zu points, %d lanes) ===\n\n",
              n_points, pool.lanes());

  util::Table table({"dist", "volume", "aspect", "plan", "est pages",
                     "actual pages", "plan ms", "best static ms",
                     "worst static ms", "vs best"});
  std::string rows_json = "[";
  bool first_row = true;
  double worst_ratio = 0.0;

  for (const auto dist : {Distribution::kUniform, Distribution::kClustered,
                          Distribution::kDiagonal}) {
    workload::DataGenConfig data;
    data.distribution = dist;
    data.count = n_points;
    data.seed = 911;
    const auto points = GeneratePoints(grid, data);
    auto built = workload::BuildZkdIndex(grid, points, 20, 1024);
    const index::CostModel model = index::CostModel::FromIndex(*built.index);
    const auto kd_tree = baseline::BucketKdTree::Build(grid.dims, points, 20);

    query::PlannerContext ctx;
    ctx.index = built.index.get();
    ctx.cost_model = &model;
    ctx.kd_tree = &kd_tree;
    ctx.pool = &pool;

    const query::PlannerOptions options =
        Calibrate(*built.index, kd_tree, pool, grid);
    std::printf("%s calibration: z %.4f ms/page, kd %.4f ms/page, "
                "parallel overhead %.4f ms\n",
                DistributionName(dist).c_str(), options.z_cost_per_page,
                options.kd_cost_per_page, options.parallel_overhead);

    util::Rng rng(917);
    for (const double volume : {0.005, 0.02, 0.10}) {
      for (const double aspect : {1.0, 4.0}) {
        const auto boxes =
            workload::MakeQueryBoxes2D(grid, volume, aspect, 3, rng);
        util::Summary planner_ms, best_ms, worst_ms, est_pages, actual_pages;
        std::string plan_name;
        double cell_ratio = 0.0;
        for (const auto& box : boxes) {
          // Static plans, all through the executor: serial merge,
          // partitioned parallel merge, bucket kd.
          const double serial = TimePlan(reps, [&] {
            return query::MakeZkdRangeScan(*built.index, box, {});
          });
          const double parallel = TimePlan(reps, [&] {
            return query::MakeZkdRangeScan(*built.index, box, {}, &pool,
                                           pool.lanes());
          });
          const double kd = TimePlan(reps, [&] {
            return query::MakeBucketKdScan(kd_tree, box);
          });
          const double best = std::min({serial, parallel, kd});
          const double worst = std::max({serial, parallel, kd});

          // The planner's choice (replanned fresh each rep).
          query::PlannedQuery planned =
              query::Plan(query::Query::Range(box), ctx, options);
          double planned_time = 1e30;
          for (int r = 0; r < reps; ++r) {
            query::PlannedQuery p =
                query::Plan(query::Query::Range(box), ctx, options);
            const auto start = std::chrono::steady_clock::now();
            query::ExecuteIds(*p.root);
            planned_time = std::min(planned_time, MsSince(start));
            planned = std::move(p);
          }
          plan_name = planned.root->stats().op;

          planner_ms.Add(planned_time);
          best_ms.Add(best);
          worst_ms.Add(worst);
          est_pages.Add(static_cast<double>(planned.root->stats().est_pages));
          actual_pages.Add(
              static_cast<double>(planned.root->stats().actual_pages));
          // 0.05 ms absolute slack: sub-tenth-millisecond cells are timer
          // noise, not plan-choice signal.
          cell_ratio = std::max(cell_ratio, planned_time / (best + 0.05));
        }
        worst_ratio = std::max(worst_ratio, cell_ratio);

        table.AddRow();
        table.Cell(DistributionName(dist));
        table.Cell(volume, 3);
        table.Cell(aspect, 1);
        table.Cell(plan_name);
        table.Cell(est_pages.Mean(), 1);
        table.Cell(actual_pages.Mean(), 1);
        table.Cell(planner_ms.Mean(), 3);
        table.Cell(best_ms.Mean(), 3);
        table.Cell(worst_ms.Mean(), 3);
        table.Cell(cell_ratio, 2);

        if (!first_row) rows_json += ",";
        first_row = false;
        rows_json +=
            "{\"dist\":\"" + DistributionName(dist) + "\"" +
            ",\"volume\":" + std::to_string(volume) +
            ",\"aspect\":" + std::to_string(aspect) +
            ",\"plan\":\"" + util::JsonEscape(plan_name) + "\"" +
            ",\"est_pages\":" + std::to_string(est_pages.Mean()) +
            ",\"actual_pages\":" + std::to_string(actual_pages.Mean()) +
            ",\"planner_ms\":" + std::to_string(planner_ms.Mean()) +
            ",\"best_static_ms\":" + std::to_string(best_ms.Mean()) +
            ",\"worst_static_ms\":" + std::to_string(worst_ms.Mean()) +
            ",\"vs_best\":" + std::to_string(cell_ratio) + "}";
      }
    }

    // One EXPLAIN sample per run, for the record.
    if (dist == Distribution::kUniform) {
      util::Rng explain_rng(919);
      const auto box =
          workload::MakeQueryBoxes2D(grid, 0.05, 1.0, 1, explain_rng)[0];
      query::PlannedQuery planned =
          query::Plan(query::Query::Range(box), ctx, options);
      query::ExecuteIds(*planned.root);
      std::printf("\nEXPLAIN sample (U, volume 0.05, box %s):\n%s\n",
                  box.ToString().c_str(),
                  query::Explain(*planned.root).c_str());
    }
  }
  rows_json += "]";

  table.Print(std::cout);
  std::printf("\nworst planned-vs-best-static ratio: %.2f (bar: 1.10)\n",
              worst_ratio);

  const std::string payload =
      "{\"points\":" + std::to_string(n_points) +
      ",\"hardware_threads\":" +
      std::to_string(std::thread::hardware_concurrency()) +
      ",\"lanes\":" + std::to_string(pool.lanes()) +
      ",\"worst_vs_best\":" + std::to_string(worst_ratio) +
      ",\"cells\":" + rows_json + "}";
  if (util::UpdateJsonSection("BENCH_planner.json", "range_plans", payload)) {
    std::printf("wrote BENCH_planner.json (section \"range_plans\")\n");
  }

  std::printf("\nThe planner prices each cell from leaf boundary keys plus\n"
              "calibrated per-page costs, picking among serial merge,\n"
              "partitioned parallel merge, and the bucket-kd fallback; the\n"
              "table shows its choice staying within noise of the best\n"
              "static plan in every cell.\n");
  return worst_ratio <= 1.1 ? 0 : 1;
}
