// Observability overhead gate: the metrics/tracing instrumentation added
// across the storage, index, and executor layers must stay under a 3%
// wall-clock budget on the PR 1 parallel range and join workloads.
//
// Method: each workload runs in alternating obs-disabled / obs-enabled
// pairs (obs::SetEnabled toggles the single global kill switch every
// instrumentation site checks), repeated kRepeats times; the *minimum*
// of each mode is compared. Min-of-N is the standard noise filter for a
// throughput bench — any scheduler hiccup inflates one repeat, never
// deflates one. A small absolute cushion guards the ratio against timer
// granularity on workloads that finish in a few milliseconds.
//
// Exit status is the gate: nonzero when any workload exceeds the budget,
// so scripts/check.sh and CI fail loudly on an instrumentation
// regression. Numbers land in BENCH_obs.json (section "overhead").
//
// Sizes default small enough for CI; scale with
//   bench_obs [points] [queries] [join_rows]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "btree/btree.h"
#include "index/zkd_index.h"
#include "obs/runtime_metrics.h"
#include "relational/relation.h"
#include "relational/spatial_join.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "util/bench_json.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"
#include "workload/querygen.h"
#include "zorder/zvalue.h"

namespace {

using namespace probe;

constexpr int kRepeats = 7;
constexpr double kBudgetRatio = 1.03;   // <3% overhead
constexpr double kCushionMs = 2.0;      // timer-noise floor for short runs

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// As in bench_parallel_join: element z values deep enough that most pairs
// are disjoint, shallow enough that containment chains still form.
relational::Relation ElementRelation(const std::string& prefix, size_t rows,
                                     uint64_t seed, int min_len,
                                     int max_len) {
  relational::Schema schema({{prefix + "_id", relational::ValueType::kInt},
                             {prefix + "_z", relational::ValueType::kZValue}});
  relational::Relation rel(schema);
  rel.Reserve(rows);
  util::Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    const int length =
        min_len + static_cast<int>(rng.NextBelow(
                      static_cast<uint64_t>(max_len - min_len + 1)));
    const uint64_t bits = rng.Next() & ((1ULL << length) - 1);
    relational::Tuple tuple;
    tuple.emplace_back(static_cast<int64_t>(i));
    tuple.emplace_back(zorder::ZValue::FromInteger(bits, length));
    rel.Add(std::move(tuple));
  }
  return rel;
}

struct GateResult {
  std::string name;
  double disabled_ms = 0.0;
  double enabled_ms = 0.0;
  double overhead = 0.0;  // (enabled - disabled) / disabled
  bool pass = false;
};

/// Runs `work` in alternating disabled/enabled pairs and gates the
/// min-of-repeats pair against the budget.
template <typename Fn>
GateResult Gate(const std::string& name, Fn&& work) {
  GateResult result;
  result.name = name;
  double min_disabled = 0.0;
  double min_enabled = 0.0;
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (const bool enabled : {false, true}) {
      obs::SetEnabled(enabled);
      const auto start = std::chrono::steady_clock::now();
      work();
      const double ms = MsSince(start);
      double& slot = enabled ? min_enabled : min_disabled;
      if (rep == 0 || ms < slot) slot = ms;
    }
  }
  obs::SetEnabled(true);
  result.disabled_ms = min_disabled;
  result.enabled_ms = min_enabled;
  result.overhead =
      min_disabled > 0 ? (min_enabled - min_disabled) / min_disabled : 0.0;
  result.pass =
      min_enabled <= min_disabled * kBudgetRatio + kCushionMs;
  std::printf("  %-22s  off %8.2f ms  on %8.2f ms  overhead %+6.2f%%  %s\n",
              result.name.c_str(), result.disabled_ms, result.enabled_ms,
              result.overhead * 100.0, result.pass ? "ok" : "OVER BUDGET");
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n_points =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 120000;
  const int n_queries = argc > 2 ? std::atoi(argv[2]) : 48;
  const size_t join_rows =
      argc > 3 ? static_cast<size_t>(std::atoll(argv[3])) : 20000;

  std::printf("=== Observability overhead: %zu points, %d queries, "
              "|R|=|S|=%zu join elements, budget <%.0f%% ===\n\n",
              n_points, n_queries, join_rows, (kBudgetRatio - 1.0) * 100.0);

  const zorder::GridSpec grid{2, 16};
  workload::DataGenConfig data;
  data.count = n_points;
  data.seed = 11;
  data.distribution = workload::Distribution::kUniform;
  const auto points = GeneratePoints(grid, data);

  util::Rng qrng(1234);
  const auto boxes =
      workload::MakeQueryBoxes2D(grid, 0.002, 1.0, n_queries, qrng);

  btree::BTreeConfig tree_config;
  tree_config.leaf_capacity = 64;
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 1024);
  index::ZkdIndex index =
      index::ZkdIndex::Build(grid, &pool, points, tree_config);

  const auto r = ElementRelation("r", join_rows, 21, 8, 22);
  const auto s = ElementRelation("s", join_rows, 22, 8, 22);

  util::ThreadPool tp(3);
  tp.EnableMetrics(&obs::ThreadPoolMetrics::Default());

  std::vector<GateResult> gates;
  size_t sink = 0;  // defeats dead-code elimination of the query results

  gates.push_back(Gate("range_serial", [&] {
    for (const auto& box : boxes) sink += index.RangeSearch(box).size();
  }));
  gates.push_back(Gate("range_parallel", [&] {
    for (const auto& box : boxes) {
      sink += index.ParallelRangeSearch(box, tp).size();
    }
  }));
  gates.push_back(Gate("join_serial", [&] {
    sink += relational::SpatialJoin(r, "r_z", s, "s_z").size();
  }));
  gates.push_back(Gate("join_parallel", [&] {
    sink += relational::ParallelSpatialJoin(r, "r_z", s, "s_z", tp).size();
  }));

  bool all_pass = true;
  std::string workloads_json = "[";
  for (const auto& g : gates) {
    all_pass = all_pass && g.pass;
    if (workloads_json.size() > 1) workloads_json += ",";
    workloads_json += "{\"workload\":\"" + g.name +
                      "\",\"disabled_ms\":" + std::to_string(g.disabled_ms) +
                      ",\"enabled_ms\":" + std::to_string(g.enabled_ms) +
                      ",\"overhead\":" + std::to_string(g.overhead) +
                      ",\"pass\":" + (g.pass ? "true" : "false") + "}";
  }
  workloads_json += "]";

  const std::string payload =
      "{\"points\":" + std::to_string(n_points) +
      ",\"queries\":" + std::to_string(n_queries) +
      ",\"join_rows\":" + std::to_string(join_rows) +
      ",\"repeats\":" + std::to_string(kRepeats) +
      ",\"budget_ratio\":" + std::to_string(kBudgetRatio) +
      ",\"cushion_ms\":" + std::to_string(kCushionMs) +
      ",\"workloads\":" + workloads_json +
      ",\"all_pass\":" + (all_pass ? "true" : "false") + "}";
  util::UpdateJsonSection("BENCH_obs.json", "overhead", payload);

  std::printf("\n%s (checksum %zu)\n",
              all_pass ? "all workloads within the <3% overhead budget"
                       : "OVERHEAD BUDGET EXCEEDED",
              sink);
  return all_pass ? 0 : 1;
}
