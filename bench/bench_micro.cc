// Microbenchmarks of the primitive operations (google-benchmark).
//
// Section 4 claims the element object class's operations are "all very
// simple to implement" — these measure just how cheap shuffle, unshuffle,
// precedes, contains, decomposition, B-tree ops, and the range-search
// merge are on this implementation.

#include <benchmark/benchmark.h>

#include "ag/merge.h"
#include "ag/setops.h"
#include "btree/btree.h"
#include "decompose/decomposer.h"
#include "decompose/generator.h"
#include "geometry/primitives.h"
#include "index/zkd_index.h"
#include "relational/relation.h"
#include "relational/spatial_join.h"
#include "util/rng.h"
#include "workload/datagen.h"
#include "workload/experiment.h"
#include "workload/querygen.h"
#include "zorder/bigmin.h"
#include "zorder/curve.h"
#include "zorder/shuffle.h"

namespace {

using namespace probe;

void BM_Shuffle2D(benchmark::State& state) {
  const zorder::GridSpec grid{2, 16};
  util::Rng rng(1);
  uint32_t x = static_cast<uint32_t>(rng.NextBelow(grid.side()));
  uint32_t y = static_cast<uint32_t>(rng.NextBelow(grid.side()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Shuffle2D(grid, x, y));
    x = (x + 12345) & 0xFFFF;
    y = (y + 54321) & 0xFFFF;
  }
}
BENCHMARK(BM_Shuffle2D);

void BM_ShuffleGenericSchedule(benchmark::State& state) {
  // The same alternation expressed as a custom schedule disables the
  // Morton fast path, isolating its speedup.
  std::vector<int> schedule;
  for (int j = 0; j < 32; ++j) schedule.push_back(j % 2);
  const zorder::GridSpec grid = zorder::GridSpec::WithSchedule(2, 16, schedule);
  uint32_t x = 12345, y = 54321;
  for (auto _ : state) {
    const uint32_t coords[2] = {x & 0xFFFF, y & 0xFFFF};
    benchmark::DoNotOptimize(Shuffle(grid, coords));
    x += 12345;
    y += 54321;
  }
}
BENCHMARK(BM_ShuffleGenericSchedule);

void BM_Unshuffle2D(benchmark::State& state) {
  const zorder::GridSpec grid{2, 16};
  uint64_t z = 0x123456789ABCDEFULL & (grid.cell_count() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Unshuffle(grid, zorder::ZValue::FromInteger(z, grid.total_bits())));
    z = (z + 0x9E3779B9) & (grid.cell_count() - 1);
  }
}
BENCHMARK(BM_Unshuffle2D);

void BM_ZValueCompare(benchmark::State& state) {
  util::Rng rng(2);
  std::vector<zorder::ZValue> values;
  for (int i = 0; i < 1024; ++i) {
    values.push_back(
        zorder::ZValue::FromInteger(rng.Next(), 1 + rng.NextBelow(48)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(values[i & 1023] < values[(i + 1) & 1023]);
    ++i;
  }
}
BENCHMARK(BM_ZValueCompare);

void BM_ZValueContains(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<zorder::ZValue> values;
  for (int i = 0; i < 1024; ++i) {
    values.push_back(
        zorder::ZValue::FromInteger(rng.Next(), 1 + rng.NextBelow(48)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(values[i & 1023].Contains(values[(i + 1) & 1023]));
    ++i;
  }
}
BENCHMARK(BM_ZValueContains);

void BM_BigMin(benchmark::State& state) {
  const zorder::GridSpec grid{2, 16};
  const uint64_t zmin = zorder::ZRank(grid, std::vector<uint32_t>{1000, 2000});
  const uint64_t zmax = zorder::ZRank(grid, std::vector<uint32_t>{50000, 60000});
  uint64_t z = zmin + 12345;
  for (auto _ : state) {
    uint64_t out = 0;
    benchmark::DoNotOptimize(zorder::BigMin(grid, z, zmin, zmax, &out));
    z = zmin + ((z + 987654321) % (zmax - zmin));
  }
}
BENCHMARK(BM_BigMin);

void BM_DecomposeBox(benchmark::State& state) {
  const zorder::GridSpec grid{2, static_cast<int>(state.range(0))};
  const uint32_t side = static_cast<uint32_t>(grid.side());
  const geometry::GridBox box = geometry::GridBox::Make2D(
      side / 7, side * 5 / 8, side / 9, side * 3 / 5);
  uint64_t elements = 0;
  for (auto _ : state) {
    const auto decomposition = decompose::DecomposeBox(grid, box);
    elements = decomposition.size();
    benchmark::DoNotOptimize(decomposition);
  }
  state.counters["elements"] = static_cast<double>(elements);
}
BENCHMARK(BM_DecomposeBox)->Arg(8)->Arg(12)->Arg(16);

void BM_LazyGeneratorFullDrain(benchmark::State& state) {
  const zorder::GridSpec grid{2, 12};
  const geometry::BoxObject object(
      geometry::GridBox::Make2D(100, 3000, 200, 2500));
  for (auto _ : state) {
    decompose::ElementGenerator generator(grid, object);
    zorder::ZValue z;
    uint64_t n = 0;
    while (generator.Next(&z)) ++n;
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_LazyGeneratorFullDrain);

void BM_BTreeInsert(benchmark::State& state) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 64);
  btree::BTreeConfig config;
  config.leaf_capacity = 20;
  btree::BTree tree(&pool, config);
  util::Rng rng(4);
  uint64_t i = 0;
  for (auto _ : state) {
    tree.Insert(btree::ZKey::FromZValue(
                    zorder::ZValue::FromInteger(rng.Next(), 32)),
                i++);
  }
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeSeek(benchmark::State& state) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 256);
  btree::BTreeConfig config;
  config.leaf_capacity = 20;
  util::Rng rng(5);
  std::vector<btree::LeafEntry> entries;
  for (uint64_t i = 0; i < 50000; ++i) {
    entries.push_back(
        {btree::ZKey::FromZValue(zorder::ZValue::FromInteger(rng.Next(), 32)),
         i});
  }
  std::sort(entries.begin(), entries.end(),
            [](const btree::LeafEntry& a, const btree::LeafEntry& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.payload < b.payload;
            });
  btree::BTree tree = btree::BTree::BulkLoad(&pool, entries, config);
  for (auto _ : state) {
    btree::BTree::Cursor cursor(&tree);
    benchmark::DoNotOptimize(cursor.Seek(btree::ZKey::FromZValue(
        zorder::ZValue::FromInteger(rng.Next(), 32))));
  }
}
BENCHMARK(BM_BTreeSeek);

void BM_LeafViewGetSet(benchmark::State& state) {
  // The fixed-width entry accessors — one memcpy each way after the
  // switch from field-at-a-time reads; the scan and split paths hit
  // these for every v1 entry they touch.
  storage::Page page;
  btree::LeafView leaf(&page);
  leaf.Init();
  util::Rng rng(6);
  for (int i = 0; i < btree::LeafView::kMaxCapacity; ++i) {
    leaf.Set(i, {btree::ZKey::FromZValue(
                     zorder::ZValue::FromInteger(rng.Next(), 32)),
                 static_cast<uint64_t>(i)});
  }
  leaf.set_count(btree::LeafView::kMaxCapacity);
  int i = 0;
  for (auto _ : state) {
    const btree::LeafEntry entry = leaf.Get(i);
    benchmark::DoNotOptimize(entry);
    leaf.Set((i + 97) % btree::LeafView::kMaxCapacity, entry);
    i = (i + 1) % btree::LeafView::kMaxCapacity;
  }
}
BENCHMARK(BM_LeafViewGetSet);

void BM_V2EncodeDecode(benchmark::State& state) {
  // Codec round trip for a near-full compressed leaf; the per-entry cost
  // bounds what v2 mutation (decode -> edit -> re-encode) pays over v1's
  // in-place memmove.
  util::Rng rng(7);
  std::vector<btree::LeafEntry> entries;
  uint64_t z = rng.NextBelow(1 << 20);
  for (int i = 0; i < 500; ++i) {
    z += 1 + rng.NextBelow(64);
    entries.push_back({btree::ZKey::FromZValue(
                           zorder::ZValue::FromInteger(z, 32)),
                       rng.Next()});
    if (!btree::V2Admits(entries)) {
      entries.pop_back();
      break;
    }
  }
  storage::Page page;
  std::vector<btree::LeafEntry> decoded;
  for (auto _ : state) {
    btree::V2Encode(&page, entries, storage::kInvalidPageId);
    btree::V2Decode(page, &decoded);
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(entries.size()));
}
BENCHMARK(BM_V2EncodeDecode);

void BM_SpatialJoinMerge(benchmark::State& state) {
  // The stack merge over two decomposed objects (element sequences of a
  // few thousand entries each).
  const zorder::GridSpec grid{2, 11};
  const geometry::BallObject a({900.0, 900.0}, 600.0);
  const geometry::BallObject b({1100.0, 1100.0}, 600.0);
  const auto ea = decompose::Decompose(grid, a);
  const auto eb = decompose::Decompose(grid, b);
  for (auto _ : state) {
    uint64_t pairs = 0;
    ag::MergeOverlappingElements(ea, eb, [&](size_t, size_t) {
      ++pairs;
      return true;
    });
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["a_elems"] = static_cast<double>(ea.size());
  state.counters["b_elems"] = static_cast<double>(eb.size());
}
BENCHMARK(BM_SpatialJoinMerge);

void BM_SpatialJoinEmit(benchmark::State& state) {
  // The relational join including output-tuple construction — the path the
  // pre-reserved output relation and bulk row copies speed up (emission
  // dominates once pairs outnumber elements).
  relational::Schema r_schema({{"r_id", relational::ValueType::kInt},
                               {"r_z", relational::ValueType::kZValue}});
  relational::Schema s_schema({{"s_id", relational::ValueType::kInt},
                               {"s_z", relational::ValueType::kZValue}});
  relational::Relation r(r_schema), s(s_schema);
  util::Rng rng(4242);
  for (int i = 0; i < 4000; ++i) {
    const int length = 6 + static_cast<int>(rng.NextBelow(10));
    relational::Tuple tuple;
    tuple.emplace_back(static_cast<int64_t>(i));
    tuple.emplace_back(zorder::ZValue::FromInteger(
        rng.Next() & ((1ULL << length) - 1), length));
    if (i % 2 == 0) {
      r.Add(std::move(tuple));
    } else {
      s.Add(std::move(tuple));
    }
  }
  size_t pairs = 0;
  for (auto _ : state) {
    const auto out = relational::SpatialJoin(r, "r_z", s, "s_z");
    pairs = out.size();
    benchmark::DoNotOptimize(out.size());
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}
BENCHMARK(BM_SpatialJoinEmit);

void BM_SetIntersection(benchmark::State& state) {
  const zorder::GridSpec grid{2, 11};
  const geometry::BallObject a({900.0, 900.0}, 600.0);
  const geometry::BallObject b({1100.0, 1100.0}, 600.0);
  const auto ea = decompose::Decompose(grid, a);
  const auto eb = decompose::Decompose(grid, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ag::IntersectionOf(grid, ea, eb));
  }
}
BENCHMARK(BM_SetIntersection);

void BM_RangeSearch5000(benchmark::State& state) {
  const zorder::GridSpec grid{2, 10};
  workload::DataGenConfig data;
  data.count = 5000;
  data.seed = 6;
  const auto points = GeneratePoints(grid, data);
  auto built = workload::BuildZkdIndex(grid, points, 20, 64);
  util::Rng rng(7);
  const auto boxes = workload::MakeQueryBoxes2D(grid, 0.05, 1.0, 64, rng);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(built.index->RangeSearch(boxes[i & 63]));
    ++i;
  }
}
BENCHMARK(BM_RangeSearch5000);

}  // namespace

BENCHMARK_MAIN();
