// Parallel spatial join: thread sweep over z-partitioned merge slices.
//
// Generates two element relations (z values of bounded depth, the shape
// Decompose produces), joins them serially and with ParallelSpatialJoin at
// 1..16 threads, verifies row-for-row identity, and reports wall time,
// speedup, and how many open-element-free cut points the partitioner
// found. Numbers land in BENCH_parallel.json (section "join").
//
// Scale with: bench_parallel_join [r_rows] [s_rows]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "relational/relation.h"
#include "relational/spatial_join.h"
#include "util/bench_json.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "zorder/zvalue.h"

namespace {

using namespace probe;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Element z values between min_len and max_len bits: deep enough that most
// pairs are disjoint (realistic decompositions), shallow enough that
// containment chains still form.
relational::Relation ElementRelation(const std::string& prefix, size_t rows,
                                     uint64_t seed, int min_len,
                                     int max_len) {
  relational::Schema schema({{prefix + "_id", relational::ValueType::kInt},
                             {prefix + "_z", relational::ValueType::kZValue}});
  relational::Relation rel(schema);
  rel.Reserve(rows);
  util::Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    const int length =
        min_len + static_cast<int>(rng.NextBelow(
                      static_cast<uint64_t>(max_len - min_len + 1)));
    const uint64_t bits = rng.Next() & ((1ULL << length) - 1);
    relational::Tuple tuple;
    tuple.emplace_back(static_cast<int64_t>(i));
    tuple.emplace_back(zorder::ZValue::FromInteger(bits, length));
    rel.Add(std::move(tuple));
  }
  return rel;
}

bool SameRows(const relational::Relation& a, const relational::Relation& b) {
  if (a.size() != b.size()) return false;
  for (size_t row = 0; row < a.size(); ++row) {
    for (size_t col = 0; col < a.row(row).size(); ++col) {
      if (!relational::ValueEquals(a.row(row)[col], b.row(row)[col])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t r_rows =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 40000;
  const size_t s_rows =
      argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 40000;

  const auto r = ElementRelation("r", r_rows, 21, 8, 22);
  const auto s = ElementRelation("s", s_rows, 22, 8, 22);

  std::printf("=== Parallel spatial join: |R|=%zu, |S|=%zu elements, "
              "hardware threads = %u ===\n\n",
              r_rows, s_rows, std::thread::hardware_concurrency());

  relational::SpatialJoinStats serial_stats;
  const auto serial_start = std::chrono::steady_clock::now();
  const auto serial =
      relational::SpatialJoin(r, "r_z", s, "s_z", &serial_stats);
  const double serial_ms = MsSince(serial_start);
  std::printf("serial      %8.2f ms  pairs=%zu  max stack depth=%zu\n",
              serial_ms, serial_stats.pairs, serial_stats.max_stack_depth);

  // Rows above the hardware's core count only measure scheduling overhead;
  // tag them so regression tooling skips their speedup numbers.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::string threads_json = "[";
  for (const int threads : {1, 2, 4, 8, 16}) {
    const bool oversubscribed = static_cast<unsigned>(threads) > hw;
    util::ThreadPool pool(threads - 1);
    relational::SpatialJoinStats stats;
    const auto start = std::chrono::steady_clock::now();
    const auto parallel =
        relational::ParallelSpatialJoin(r, "r_z", s, "s_z", pool, 0, &stats);
    const double ms = MsSince(start);
    const double speedup = ms > 0 ? serial_ms / ms : 0.0;
    const bool identical = SameRows(serial, parallel);
    std::printf("threads=%-2d  %8.2f ms  speedup %5.2fx  partitions=%zu  %s%s\n",
                threads, ms, speedup, stats.partitions,
                identical ? "rows identical" : "ROW MISMATCH",
                oversubscribed ? "  (oversubscribed)" : "");
    if (threads_json.size() > 1) threads_json += ",";
    threads_json += "{\"threads\":" + std::to_string(threads) +
                    ",\"ms\":" + std::to_string(ms) +
                    ",\"speedup\":" + std::to_string(speedup) +
                    ",\"partitions\":" + std::to_string(stats.partitions) +
                    ",\"oversubscribed\":" +
                    (oversubscribed ? "true" : "false") +
                    ",\"identical\":" + (identical ? "true" : "false") + "}";
    if (!identical) return 1;
  }
  threads_json += "]";

  const std::string payload =
      "{\"r_rows\":" + std::to_string(r_rows) +
      ",\"s_rows\":" + std::to_string(s_rows) +
      ",\"pairs\":" + std::to_string(serial_stats.pairs) +
      ",\"hardware_threads\":" +
      std::to_string(std::thread::hardware_concurrency()) +
      ",\"serial_ms\":" + std::to_string(serial_ms) +
      ",\"threads\":" + threads_json + "}";
  if (util::UpdateJsonSection("BENCH_parallel.json", "join", payload)) {
    std::printf("wrote BENCH_parallel.json (section \"join\")\n");
  }
  std::printf("\nThe partitioner cuts both sorted element sequences where the\n"
              "next z range starts after every open range has closed — the\n"
              "containment stacks are provably empty there, so slices join\n"
              "independently and concatenate in the serial emission order.\n");
  return 0;
}
