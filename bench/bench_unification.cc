// The unification claim (contribution 1): published structures are
// special cases of one framework.
//
// "A large number of published data structures and algorithms are special
// cases of the AG techniques described here." Concretely: the split
// schedule is the only degree of freedom. This bench instantiates three
// published orderings as schedules —
//   * strict alternation        -> z order (this paper, [OREN82/84, ...]);
//   * all-x-then-all-y          -> the conventional composite-key B-tree;
//   * x twice, then alternate   -> a "brick wall" pattern [LIOU77, SCHE82];
// — and runs the *same* code (same B+-tree, same decomposer, same merge)
// over the same data with each. Element counts and page accesses fall out
// of the schedule alone.

#include <cstdio>
#include <iostream>
#include <vector>

#include "decompose/analysis.h"
#include "index/zkd_index.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/datagen.h"
#include "workload/experiment.h"
#include "workload/querygen.h"

namespace {

using namespace probe;

zorder::GridSpec BrickWall(int bits) {
  std::vector<int> schedule = {0, 0};
  int x_left = bits - 2;
  int y_left = bits;
  bool turn_y = true;
  while (x_left + y_left > 0) {
    if ((turn_y && y_left > 0) || x_left == 0) {
      schedule.push_back(1);
      --y_left;
    } else {
      schedule.push_back(0);
      --x_left;
    }
    turn_y = !turn_y;
  }
  return zorder::GridSpec::WithSchedule(2, bits, schedule);
}

}  // namespace

int main() {
  const int bits = 10;
  struct NamedGrid {
    const char* name;
    zorder::GridSpec grid;
  };
  const std::vector<NamedGrid> grids = {
      {"z order (alternate)", zorder::GridSpec{2, bits}},
      {"composite (x then y)", zorder::GridSpec::Composite(2, bits)},
      {"brick wall (xx, alt)", BrickWall(bits)},
  };

  std::printf("=== Unification: one framework, three published orderings "
              "===\n\n");

  // --- Element counts of the same query boxes. --------------------------
  std::printf("E(U,V): elements needed to cover an anchored U x V box\n\n");
  {
    util::Table table({"U", "V", "z order", "composite", "brick wall"});
    for (const auto& [u, v] : std::vector<std::pair<uint64_t, uint64_t>>{
             {256, 256}, {100, 100}, {33, 777}, {777, 33}, {513, 513}}) {
      table.AddRow();
      table.Cell(static_cast<int64_t>(u));
      table.Cell(static_cast<int64_t>(v));
      for (const auto& g : grids) {
        table.Cell(static_cast<int64_t>(
            decompose::ElementCountUV(g.grid, u, v)));
      }
    }
    table.Print(std::cout);
  }

  // --- Page accesses of the same workload under each ordering. ----------
  std::printf("\nrange-search page accesses (5000 uniform points, 20/page, "
              "identical code):\n\n");
  {
    util::Table table({"volume", "aspect", "z order", "composite",
                       "brick wall"});
    workload::DataGenConfig data;
    data.count = 5000;
    data.seed = 121;
    // Note: point records are grid-independent; each index shuffles them
    // with its own schedule.
    const zorder::GridSpec plain{2, bits};
    const auto points = GeneratePoints(plain, data);

    std::vector<workload::BuiltIndex> indexes;
    for (const auto& g : grids) {
      indexes.push_back(workload::BuildZkdIndex(g.grid, points, 20, 64));
    }
    for (const double volume : {0.01, 0.05}) {
      for (const double aspect : {0.0625, 1.0, 16.0}) {
        table.AddRow();
        table.Cell(volume, 3);
        table.Cell(aspect, 4);
        util::Rng rng(123);  // same query boxes for every ordering
        const auto boxes =
            workload::MakeQueryBoxes2D(plain, volume, aspect, 5, rng);
        std::vector<uint64_t> first_results;
        for (size_t g = 0; g < grids.size(); ++g) {
          util::Summary pages;
          uint64_t results = 0;
          for (const auto& box : boxes) {
            index::QueryStats stats;
            indexes[g].index->RangeSearch(box, &stats);
            pages.Add(static_cast<double>(stats.leaf_pages));
            results += stats.results;
          }
          if (g == 0) {
            first_results.push_back(results);
          } else if (results != first_results[0]) {
            std::printf("!! result mismatch between orderings\n");
            return 1;
          }
          table.Cell(pages.Mean(), 1);
        }
      }
    }
    table.Print(std::cout);
  }

  std::printf(
      "\nEverything above ran through the same decomposer, B+-tree and\n"
      "merge; only GridSpec's split schedule changed. Note element counts\n"
      "alone can favor the composite order (its unit columns are cheap to\n"
      "name) — but those columns scatter across the key space, so its page\n"
      "accesses explode on squares. The brick wall sits between; strict\n"
      "alternation is the only schedule good across shapes — which is why\n"
      "the paper distills the field to it.\n");
  return 0;
}
