// Figure 6: the partitioning of space induced by page boundaries in the
// zkd B+-tree, for the three distributions of Section 5.3.2:
//   a) U — uniformly distributed points
//   b) C — 50 uniformly placed clusters of 100 points
//   c) D — points uniformly distributed along the line X=Y
//
// Each run builds the paper's exact setup (5000 points, 20 points per
// page) and draws the page boundaries: a cell of the display raster is
// marked where the page owning it differs from the page owning its right
// or upper neighbor. Statistics about the pages' spatial extent follow.

#include <algorithm>
#include <cstdio>
#include <vector>

#include <sys/stat.h>

#include "btree/zkey.h"
#include "index/zkd_index.h"
#include "util/ppm.h"
#include "util/stats.h"
#include "workload/datagen.h"
#include "workload/experiment.h"
#include "zorder/shuffle.h"

namespace {

using namespace probe;

// Index of the leaf page whose key range covers the full-resolution z
// value `z` (leaves partition the key space by their first keys).
size_t OwnerLeaf(const std::vector<index::ZkdIndex::LeafInfo>& leaves,
                 const btree::ZKey& z) {
  size_t lo = 0;
  size_t hi = leaves.size();
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (z < leaves[mid].first_key) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return lo;
}

void DrawDistribution(workload::Distribution dist, uint64_t seed) {
  const zorder::GridSpec grid{2, 10};
  workload::DataGenConfig data;
  data.distribution = dist;
  data.count = 5000;
  data.seed = seed;
  const auto points = GeneratePoints(grid, data);
  auto built = workload::BuildZkdIndex(grid, points, 20, 64);
  const auto leaves = built.index->LeafPartitions();

  std::printf("--- Experiment %s: %llu points, %zu data pages ---\n\n",
              DistributionName(dist).c_str(),
              static_cast<unsigned long long>(points.size()), leaves.size());

  // Display raster: 64x64, each cell represents a 16x16 block of the grid.
  constexpr int kDisplay = 64;
  const uint32_t scale = static_cast<uint32_t>(grid.side()) / kDisplay;
  std::vector<std::vector<size_t>> owner(kDisplay,
                                         std::vector<size_t>(kDisplay));
  for (int dy = 0; dy < kDisplay; ++dy) {
    for (int dx = 0; dx < kDisplay; ++dx) {
      const uint32_t cx = static_cast<uint32_t>(dx) * scale + scale / 2;
      const uint32_t cy = static_cast<uint32_t>(dy) * scale + scale / 2;
      owner[dx][dy] = OwnerLeaf(
          leaves, btree::ZKey::FromZValue(Shuffle2D(grid, cx, cy)));
    }
  }
  std::printf("page boundaries ('#' where the owning page changes):\n\n");
  for (int dy = kDisplay - 1; dy >= 0; --dy) {
    std::printf("  ");
    for (int dx = 0; dx < kDisplay; ++dx) {
      const bool edge =
          (dx + 1 < kDisplay && owner[dx][dy] != owner[dx + 1][dy]) ||
          (dy + 1 < kDisplay && owner[dx][dy] != owner[dx][dy + 1]);
      std::putchar(edge ? '#' : '.');
    }
    std::printf("\n");
  }

  // Also render a full-resolution color map as an image artifact: every
  // cell tinted by its owning page, points overlaid in black.
  {
    ::mkdir("artifacts", 0755);
    constexpr int kImage = 512;
    const uint32_t img_scale = static_cast<uint32_t>(grid.side()) / kImage;
    util::PpmImage image(kImage, kImage);
    for (int iy = 0; iy < kImage; ++iy) {
      for (int ix = 0; ix < kImage; ++ix) {
        const uint32_t cx = static_cast<uint32_t>(ix) * img_scale;
        const uint32_t cy = static_cast<uint32_t>(iy) * img_scale;
        const size_t page = OwnerLeaf(
            leaves, btree::ZKey::FromZValue(Shuffle2D(grid, cx, cy)));
        uint8_t r, g, b;
        util::CategoricalColor(page, &r, &g, &b);
        image.Set(ix, iy, r, g, b);
      }
    }
    for (const auto& record : points) {
      const int ix = static_cast<int>(record.point[0] / img_scale);
      const int iy = static_cast<int>(record.point[1] / img_scale);
      image.Set(ix, iy, 0, 0, 0);
    }
    const std::string path =
        "artifacts/fig6_" + DistributionName(dist) + ".ppm";
    if (image.WriteTo(path)) {
      std::printf("\nwrote %s (cells tinted by owning page, points in "
                  "black)\n",
                  path.c_str());
    }
  }

  // Spatial extent statistics per page: bounding box of its points.
  util::Summary widths, heights, occupancy;
  {
    // Recover each point's page via its z value.
    std::vector<std::pair<btree::ZKey, const index::PointRecord*>> keyed;
    keyed.reserve(points.size());
    for (const auto& r : points) {
      keyed.emplace_back(
          btree::ZKey::FromZValue(Shuffle(grid, r.point.coords())), &r);
    }
    std::vector<std::array<uint32_t, 4>> bounds(
        leaves.size(), {~0u, 0u, ~0u, 0u});  // xmin xmax ymin ymax
    for (const auto& [key, rec] : keyed) {
      auto& b = bounds[OwnerLeaf(leaves, key)];
      b[0] = std::min(b[0], (*rec).point[0]);
      b[1] = std::max(b[1], (*rec).point[0]);
      b[2] = std::min(b[2], (*rec).point[1]);
      b[3] = std::max(b[3], (*rec).point[1]);
    }
    for (size_t i = 0; i < leaves.size(); ++i) {
      if (bounds[i][0] == ~0u) continue;
      widths.Add(static_cast<double>(bounds[i][1] - bounds[i][0] + 1));
      heights.Add(static_cast<double>(bounds[i][3] - bounds[i][2] + 1));
      occupancy.Add(static_cast<double>(leaves[i].entries));
    }
  }
  std::printf("\nper-page point bounding boxes (cells of 1024):\n");
  std::printf("  width : mean %7.1f  p50 %7.1f  max %7.0f\n", widths.Mean(),
              widths.Percentile(0.5), widths.Max());
  std::printf("  height: mean %7.1f  p50 %7.1f  max %7.0f\n", heights.Mean(),
              heights.Percentile(0.5), heights.Max());
  std::printf("  points per page: mean %.1f (capacity 20)\n\n",
              occupancy.Mean());
}

}  // namespace

int main() {
  std::printf("=== Figure 6: partitioning induced by page boundaries "
              "(5000 points, 20/page, 1024x1024 grid) ===\n\n");
  DrawDistribution(workload::Distribution::kUniform, 1);
  DrawDistribution(workload::Distribution::kClustered, 2);
  DrawDistribution(workload::Distribution::kDiagonal, 3);
  DrawDistribution(workload::Distribution::kRoadNetwork, 4);
  std::printf(
      "U shows the regular near-square blocks of the analysis; C shows\n"
      "fine partitions inside clusters and huge pages outside; D shows\n"
      "pages hugging the diagonal — matching Figure 6a/b/c. R (beyond the\n"
      "paper) shows elongated pages tracking the roads with fine patches\n"
      "at towns — the mixture real geographic data exhibits.\n");
  return 0;
}
