// Section 6 (overlay): polygon overlay on element sequences.
//
// "The AG algorithm should be faster than the grid algorithm since
// performance is determined by the surface area of spatial objects, not
// volume." Two map layers (land parcels and flood zones) are decomposed,
// overlaid by merging the element sequences, and the result is checked
// against the pixel-at-a-time grid algorithm. The work comparison across
// resolutions is the experiment: AG's merge cost follows element counts
// (surface), the grid algorithm's follows pixel counts (volume).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <map>

#include "ag/overlay.h"
#include "decompose/decomposer.h"
#include "geometry/point.h"
#include "geometry/polygon.h"
#include "util/table.h"

namespace {

using namespace probe;
using Clock = std::chrono::steady_clock;

double Ms(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

// Scales polygon vertices given in a unit square to the grid.
geometry::PolygonObject ScaledPolygon(
    const std::vector<geometry::Vec2>& unit, double side) {
  std::vector<geometry::Vec2> scaled;
  for (const auto& v : unit) scaled.push_back({v.x * side, v.y * side});
  return geometry::PolygonObject(std::move(scaled));
}

}  // namespace

int main() {
  std::printf("=== Section 6: polygon overlay on element sequences ===\n\n");

  // Two parcels and two zones in unit coordinates (non-convex included).
  const std::vector<geometry::Vec2> parcel1 = {
      {0.05, 0.10}, {0.55, 0.08}, {0.60, 0.45}, {0.30, 0.60}, {0.08, 0.50}};
  const std::vector<geometry::Vec2> parcel2 = {
      {0.55, 0.55}, {0.95, 0.50}, {0.90, 0.95}, {0.50, 0.90}};
  const std::vector<geometry::Vec2> zone1 = {
      {0.25, 0.05}, {0.80, 0.20}, {0.75, 0.70}, {0.20, 0.80}};
  const std::vector<geometry::Vec2> zone2 = {
      {0.00, 0.55}, {0.40, 0.45}, {0.45, 0.95}, {0.05, 0.98}};

  util::Table table({"grid", "layer A elems", "layer B elems", "merge pairs",
                     "AG ms", "grid-scan ms", "A-cells (volume)"});
  for (const int d : {6, 7, 8, 9, 10}) {
    const zorder::GridSpec grid{2, d};
    const double side = static_cast<double>(grid.side());
    const auto p1 = ScaledPolygon(parcel1, side);
    const auto p2 = ScaledPolygon(parcel2, side);
    const auto z1 = ScaledPolygon(zone1, side);
    const auto z2 = ScaledPolygon(zone2, side);

    const auto t0 = Clock::now();
    std::vector<ag::LabeledElement> layer_a, layer_b;
    for (const auto& z : decompose::Decompose(grid, p1)) layer_a.push_back({z, 1});
    for (const auto& z : decompose::Decompose(grid, p2)) layer_a.push_back({z, 2});
    std::sort(layer_a.begin(), layer_a.end(),
              [](const ag::LabeledElement& a, const ag::LabeledElement& b) {
                return a.z < b.z;
              });
    for (const auto& z : decompose::Decompose(grid, z1)) layer_b.push_back({z, 11});
    for (const auto& z : decompose::Decompose(grid, z2)) layer_b.push_back({z, 12});
    std::sort(layer_b.begin(), layer_b.end(),
              [](const ag::LabeledElement& a, const ag::LabeledElement& b) {
                return a.z < b.z;
              });
    const auto pieces = ag::OverlayElements(layer_a, layer_b);
    const auto areas = ag::AggregateOverlay(grid, pieces);
    const auto t1 = Clock::now();

    // Grid algorithm: pixel-at-a-time.
    std::map<std::pair<uint64_t, uint64_t>, uint64_t> grid_areas;
    uint64_t a_cells = 0;
    for (uint32_t x = 0; x < grid.side(); ++x) {
      for (uint32_t y = 0; y < grid.side(); ++y) {
        const geometry::GridPoint p({x, y});
        const uint64_t a_label =
            p1.ContainsCell(p) ? 1 : (p2.ContainsCell(p) ? 2 : 0);
        if (a_label == 0) continue;
        ++a_cells;
        const uint64_t b_label =
            z1.ContainsCell(p) ? 11 : (z2.ContainsCell(p) ? 12 : 0);
        if (b_label != 0) ++grid_areas[{a_label, b_label}];
      }
    }
    const auto t2 = Clock::now();

    // Cross-check the AG result against the grid result. Overlapping zones
    // are attributed in priority order in the grid scan; replicate by
    // keeping only the min b_label per (piece region, a_label) — simplest
    // is to compare on workloads without zone self-overlap cells; here the
    // zones overlap slightly, so compare the total intersection cells of
    // each a_label instead.
    std::map<uint64_t, uint64_t> ag_by_a, grid_by_a;
    for (const auto& area : areas) ag_by_a[area.a_label] += area.cells;
    for (const auto& [key, cells] : grid_areas) grid_by_a[key.first] += cells;
    bool consistent = true;
    for (const auto& [a_label, cells] : grid_by_a) {
      // AG counts a cell once per overlapping zone too, so totals can only
      // exceed the priority-attributed grid scan.
      if (ag_by_a[a_label] < cells) consistent = false;
    }
    if (!consistent) {
      std::printf("!! overlay mismatch at d=%d\n", d);
      return 1;
    }

    table.AddRow();
    table.Cell(std::to_string(grid.side()) + "^2");
    table.Cell(static_cast<int64_t>(layer_a.size()));
    table.Cell(static_cast<int64_t>(layer_b.size()));
    table.Cell(static_cast<int64_t>(pieces.size()));
    table.Cell(Ms(t0, t1), 2);
    table.Cell(Ms(t1, t2), 2);
    table.Cell(static_cast<int64_t>(a_cells));
  }
  table.Print(std::cout);
  std::printf(
      "\nElement counts (AG work) grow ~2x per resolution step — surface —\n"
      "while the pixel scan grows ~4x — volume. The AG overlay overtakes\n"
      "the grid algorithm and the gap widens with resolution, as Section 6\n"
      "claims.\n");
  return 0;
}
