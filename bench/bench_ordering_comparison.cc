// Ablation: the bit ordering is the whole trick.
//
// Three indexes with the *same* prefix B+-tree, the same page capacity and
// the same data — differing only in how coordinate bits become keys:
//   * zkd      — interleaved bits (z order; this paper);
//   * composite — concatenated bits (x then y: the conventional
//                 multi-attribute B-tree index, with skip scan);
// plus the bucket kd tree as the purpose-built spatial yardstick. The
// composite order preserves proximity in one attribute only, so its page
// accesses blow up on squarish queries; z order keeps the B-tree while
// matching the kd tree — the paper's central integration claim.

#include <cstdio>
#include <iostream>

#include "baseline/bucket_kdtree.h"
#include "baseline/composite_index.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/datagen.h"
#include "workload/experiment.h"
#include "workload/querygen.h"

int main() {
  using namespace probe;
  const zorder::GridSpec grid{2, 10};

  workload::DataGenConfig data;
  data.count = 5000;
  data.seed = 71;
  const auto points = GeneratePoints(grid, data);

  auto zkd = workload::BuildZkdIndex(grid, points, 20, 64);
  storage::MemPager composite_pager;
  storage::BufferPool composite_pool(&composite_pager, 64);
  btree::BTreeConfig config;
  config.leaf_capacity = 20;
  auto composite = baseline::CompositeIndex::Build(grid, &composite_pool,
                                                   points, config);
  const auto bucket = baseline::BucketKdTree::Build(2, points, 20);

  std::printf("=== Bit-order ablation: interleaved vs concatenated keys "
              "(5000 uniform points, 20/page) ===\n\n");
  util::Table table({"volume", "aspect", "zkd pages", "composite pages",
                     "bucket-kd pages", "composite/zkd", "zkd seeks",
                     "composite seeks"});
  util::Rng rng(73);
  for (const double volume : {0.005, 0.02, 0.08}) {
    for (const double aspect : {0.0625, 1.0, 16.0}) {
      util::Summary z_pages, c_pages, b_pages, z_seeks, c_seeks;
      for (const auto& box :
           workload::MakeQueryBoxes2D(grid, volume, aspect, 5, rng)) {
        index::QueryStats zs;
        zkd.index->RangeSearch(box, &zs);
        baseline::CompositeStats cs;
        composite.RangeSearch(box, &cs);
        baseline::BucketKdStats bs;
        bucket.RangeSearch(box, &bs);
        if (zs.results != cs.results || zs.results != bs.results) {
          std::printf("!! result mismatch\n");
          return 1;
        }
        z_pages.Add(static_cast<double>(zs.leaf_pages));
        c_pages.Add(static_cast<double>(cs.leaf_pages));
        b_pages.Add(static_cast<double>(bs.leaf_pages));
        z_seeks.Add(static_cast<double>(zs.point_seeks));
        c_seeks.Add(static_cast<double>(cs.seeks));
      }
      table.AddRow();
      table.Cell(volume, 3);
      table.Cell(aspect, 4);
      table.Cell(z_pages.Mean(), 1);
      table.Cell(c_pages.Mean(), 1);
      table.Cell(b_pages.Mean(), 1);
      table.Cell(c_pages.Mean() / z_pages.Mean(), 2);
      table.Cell(z_seeks.Mean(), 1);
      table.Cell(c_seeks.Mean(), 1);
    }
  }
  table.Print(std::cout);

  // Partial-match asymmetry: the composite order is superb when its
  // *leading* attribute is fixed and hopeless when only the trailing one
  // is; z order treats the attributes symmetrically (Section 5.3.1's
  // O(N^(1-t/k)) holds for any choice of the t fixed attributes).
  std::printf("\npartial-match queries (one attribute fixed):\n\n");
  util::Table pm({"fixed attr", "zkd pages", "composite pages"});
  util::Rng pm_rng(79);
  for (const int fixed_dim : {0, 1}) {
    util::Summary z_pages, c_pages;
    for (int q = 0; q < 10; ++q) {
      const uint32_t v = static_cast<uint32_t>(pm_rng.NextBelow(1024));
      const geometry::GridBox box =
          fixed_dim == 0 ? geometry::GridBox::Make2D(v, v, 0, 1023)
                         : geometry::GridBox::Make2D(0, 1023, v, v);
      index::QueryStats zs;
      zkd.index->RangeSearch(box, &zs);
      baseline::CompositeStats cs;
      composite.RangeSearch(box, &cs);
      if (zs.results != cs.results) {
        std::printf("!! partial-match mismatch\n");
        return 1;
      }
      z_pages.Add(static_cast<double>(zs.leaf_pages));
      c_pages.Add(static_cast<double>(cs.leaf_pages));
    }
    pm.AddRow();
    pm.Cell(std::string(fixed_dim == 0 ? "x (leading)" : "y (trailing)"));
    pm.Cell(z_pages.Mean(), 1);
    pm.Cell(c_pages.Mean(), 1);
  }
  pm.Print(std::cout);

  std::printf(
      "\nThe composite (concatenated) order is competitive only when the\n"
      "query is thin in the leading attribute (aspect 16 = tall-narrow in\n"
      "y given x-first concatenation favors small x ranges); on squares it\n"
      "pays several times the pages of the interleaved order. Same tree,\n"
      "same pages — only the bit schedule differs, which is exactly the\n"
      "paper's point about what the DBMS must (and need not) change.\n");
  return 0;
}
