// Section 5.3.1 (range queries): pages accessed = O(v * N).
//
// Verifies the asymptotic claim by (a) sweeping the query volume v at
// fixed N and fitting the log-log slope (expect ~1), (b) sweeping N at
// fixed v (expect ~1), and (c) checking the practical claim of Section 3.3
// that running time is "proportional to the fraction of the space covered
// by the query". Also validates the Section 4 buffering claim: with the
// merge's access pattern, an LRU pool as small as a handful of frames
// already gets no re-reads (each page is needed once).

#include <cstdio>
#include <iostream>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/datagen.h"
#include "workload/experiment.h"
#include "workload/querygen.h"

namespace {

using namespace probe;

double MeanPages(index::ZkdIndex& idx, const zorder::GridSpec& grid,
                 double volume, int queries, util::Rng& rng) {
  util::Summary pages;
  for (const auto& box :
       workload::MakeQueryBoxes2D(grid, volume, 1.0, queries, rng)) {
    index::QueryStats stats;
    idx.RangeSearch(box, &stats);
    pages.Add(static_cast<double>(stats.leaf_pages));
  }
  return pages.Mean();
}

}  // namespace

int main() {
  const zorder::GridSpec grid{2, 10};

  // --- (a) volume sweep at fixed N. ------------------------------------
  std::printf("=== Section 5.3.1: pages accessed = O(v*N) ===\n\n");
  std::printf("(a) volume sweep at N fixed (5000 uniform points, 20/page, "
              "250 pages):\n\n");
  {
    workload::DataGenConfig data;
    data.count = 5000;
    data.seed = 21;
    const auto points = GeneratePoints(grid, data);
    auto built = workload::BuildZkdIndex(grid, points, 20, 64);

    util::Rng rng(531);
    util::Table table({"v", "pages mean", "v*N", "pages/(v*N)"});
    std::vector<double> volumes_x, pages_y;
    for (const double v :
         {0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64}) {
      const double pages = MeanPages(*built.index, grid, v, 8, rng);
      const double vn = v * static_cast<double>(built.leaf_pages);
      volumes_x.push_back(v);
      pages_y.push_back(pages);
      table.AddRow();
      table.Cell(v, 3);
      table.Cell(pages, 1);
      table.Cell(vn, 1);
      table.Cell(pages / vn, 2);
    }
    table.Print(std::cout);
    const std::vector<double> hi_v(volumes_x.end() - 4, volumes_x.end());
    const std::vector<double> hi_p(pages_y.end() - 4, pages_y.end());
    std::printf("\nlog-log slope of pages vs v: %.2f over the full sweep, "
                "%.2f over the top half\n(O(v*N) predicts 1.0; the additive "
                "perimeter term flattens tiny volumes)\n\n",
                util::LogLogSlope(volumes_x, pages_y),
                util::LogLogSlope(hi_v, hi_p));
  }

  // --- (b) N sweep at fixed v. -----------------------------------------
  std::printf("(b) N sweep at v = 0.05:\n\n");
  {
    util::Rng rng(533);
    util::Table table({"points", "pages N", "pages mean", "v*N"});
    std::vector<double> n_x, pages_y;
    for (const size_t n : {1250u, 2500u, 5000u, 10000u, 20000u, 40000u}) {
      workload::DataGenConfig data;
      data.count = n;
      data.seed = 23;
      const auto points = GeneratePoints(grid, data);
      auto built = workload::BuildZkdIndex(grid, points, 20, 64);
      const double pages = MeanPages(*built.index, grid, 0.05, 8, rng);
      n_x.push_back(static_cast<double>(built.leaf_pages));
      pages_y.push_back(pages);
      table.AddRow();
      table.Cell(static_cast<int64_t>(n));
      table.Cell(static_cast<int64_t>(built.leaf_pages));
      table.Cell(pages, 1);
      table.Cell(0.05 * static_cast<double>(built.leaf_pages), 1);
    }
    table.Print(std::cout);
    const std::vector<double> hi_n(n_x.end() - 3, n_x.end());
    const std::vector<double> hi_p(pages_y.end() - 3, pages_y.end());
    std::printf("\nlog-log slope of pages vs N: %.2f full sweep, %.2f over "
                "the top half (predict 1.0)\n\n",
                util::LogLogSlope(n_x, pages_y), util::LogLogSlope(hi_n, hi_p));
  }

  // --- (c) LRU claim of Section 4. --------------------------------------
  std::printf("(c) LRU buffering: 'each page is accessed at most once' "
              "during a merge\n\n");
  {
    workload::DataGenConfig data;
    data.count = 5000;
    data.seed = 29;
    const auto points = GeneratePoints(grid, data);
    util::Table table({"pool frames", "pool fetches", "misses (disk reads)",
                       "re-reads", "hit rate"});
    for (const size_t frames : {4u, 8u, 16u, 64u}) {
      auto built = workload::BuildZkdIndex(grid, points, 20, frames);
      built.pool->ResetStats();
      util::Rng rng(631);
      for (const auto& box :
           workload::MakeQueryBoxes2D(grid, 0.05, 1.0, 10, rng)) {
        index::QueryStats stats;
        built.index->RangeSearch(box, &stats);
      }
      const auto& s = built.pool->stats();
      // Re-reads: misses beyond the first read of each distinct page. A
      // second query legitimately refetches, so compare within the run.
      table.AddRow();
      table.Cell(static_cast<int64_t>(frames));
      table.Cell(static_cast<int64_t>(s.fetches));
      table.Cell(static_cast<int64_t>(s.misses));
      table.Cell(static_cast<int64_t>(
          s.misses > built.leaf_pages ? s.misses - built.leaf_pages : 0));
      table.Cell(static_cast<double>(s.hits) /
                     static_cast<double>(s.fetches),
                 3);
    }
    table.Print(std::cout);
    std::printf("\nDisk reads are insensitive to pool size: the merge never "
                "revisits\na page within a query, so tiny LRU pools suffice — "
                "the paper's\nSection 4 argument.\n\n");

    // And insensitive to the *policy*: under merge access patterns LRU,
    // FIFO and CLOCK are indistinguishable, so the cheapest (which any
    // DBMS already has) is the right choice.
    util::Table policies({"policy", "disk reads", "hit rate"});
    for (const auto& [name, policy] :
         {std::pair<const char*, storage::EvictionPolicy>{
              "LRU", storage::EvictionPolicy::kLru},
          {"FIFO", storage::EvictionPolicy::kFifo},
          {"CLOCK", storage::EvictionPolicy::kClock}}) {
      storage::MemPager pager;
      storage::BufferPool pool(&pager, 8, policy);
      btree::BTreeConfig config;
      config.leaf_capacity = 20;
      auto idx = index::ZkdIndex::Build(grid, &pool, points, config);
      pool.ResetStats();
      util::Rng rng(631);
      for (const auto& box :
           workload::MakeQueryBoxes2D(grid, 0.05, 1.0, 10, rng)) {
        index::QueryStats stats;
        idx.RangeSearch(box, &stats);
      }
      policies.AddRow();
      policies.Cell(std::string(name));
      policies.Cell(static_cast<int64_t>(pool.stats().misses));
      policies.Cell(static_cast<double>(pool.stats().hits) /
                        static_cast<double>(pool.stats().fetches),
                    3);
    }
    policies.Print(std::cout);
    std::printf("\n");
  }

  // --- (d) ablation: lazy generation depth cap. -------------------------
  std::printf("(d) element-depth ablation at v = 0.05 "
              "(verification keeps results exact):\n\n");
  {
    workload::DataGenConfig data;
    data.count = 5000;
    data.seed = 31;
    const auto points = GeneratePoints(grid, data);
    auto built = workload::BuildZkdIndex(grid, points, 20, 64);
    util::Table table({"max element depth", "elements", "classify calls",
                       "pages", "results"});
    for (const int depth : {6, 8, 10, 12, 14, 16, 20, -1}) {
      util::Rng rng(731);
      index::SearchOptions options;
      options.max_element_depth = depth;
      util::Summary elements, classify, pages, results;
      for (const auto& box :
           workload::MakeQueryBoxes2D(grid, 0.05, 1.0, 8, rng)) {
        index::QueryStats stats;
        built.index->RangeSearch(box, &stats, options);
        elements.Add(static_cast<double>(stats.elements_generated));
        classify.Add(static_cast<double>(stats.classify_calls));
        pages.Add(static_cast<double>(stats.leaf_pages));
        results.Add(static_cast<double>(stats.results));
      }
      table.AddRow();
      table.Cell(static_cast<int64_t>(depth));
      table.Cell(elements.Mean(), 1);
      table.Cell(classify.Mean(), 1);
      table.Cell(pages.Mean(), 1);
      table.Cell(results.Mean(), 0);
    }
    table.Print(std::cout);
    std::printf("\nCoarse decompositions (small depth caps) need far fewer "
                "elements at a\nmodest page-access premium — the trade "
                "Section 5.1's coarsening sets up.\n");
  }
  return 0;
}
