// Figure 4: the spatial interpretation of z order.
//
// "The rank of a point is obtained by interleaving the bits of the
// coordinates and interpreting as an integer. E.g. [3, 5] -> (011, 101) ->
// 011011 = 27." Prints the rank grid of Figure 4, traces the recursive "N"
// structure, and quantifies the proximity preservation that Section 3.2
// asserts ("if two points are close in space then they are likely to be
// close in z order").

#include <cstdio>
#include <cstdlib>

#include "util/stats.h"
#include "zorder/curve.h"
#include "zorder/shuffle.h"

int main() {
  using namespace probe;
  using namespace probe::zorder;
  const GridSpec grid{2, 3};

  std::printf("=== Figure 4: z-order ranks on the 8x8 grid ===\n\n");
  std::printf("     x=0  x=1  x=2  x=3  x=4  x=5  x=6  x=7\n");
  for (uint32_t y = 8; y-- > 0;) {
    std::printf("y=%u ", y);
    for (uint32_t x = 0; x < 8; ++x) {
      std::printf("%5llu",
                  static_cast<unsigned long long>(ZRank2D(grid, x, y)));
    }
    std::printf("\n");
  }

  std::printf("\nworked example: [3, 5] -> (011, 101) -> 011011 = %llu\n",
              static_cast<unsigned long long>(ZRank2D(grid, 3, 5)));

  // The recursive N: consecutive ranks move by the same displacement
  // pattern at every scale.
  std::printf("\nfirst 16 steps of the curve (rank: x,y):\n ");
  const auto walk = ZCurveWalk(grid);
  for (int r = 0; r < 16; ++r) {
    std::printf(" %d:(%u,%u)", r, walk[r][0], walk[r][1]);
  }
  std::printf("\n");

  // Proximity: mean |delta rank| between 4-neighbors, versus the mean
  // between random cell pairs. Z order keeps neighbors dramatically closer
  // in rank than chance.
  const GridSpec big{2, 6};  // 64x64
  util::Summary neighbor_gap, random_gap;
  for (uint32_t x = 0; x < big.side(); ++x) {
    for (uint32_t y = 0; y + 1 < big.side(); ++y) {
      const int64_t a = static_cast<int64_t>(ZRank2D(big, x, y));
      const int64_t b = static_cast<int64_t>(ZRank2D(big, x, y + 1));
      neighbor_gap.Add(static_cast<double>(std::llabs(a - b)));
    }
  }
  uint64_t lcg = 12345;
  for (int i = 0; i < 4000; ++i) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const uint64_t za = (lcg >> 20) % big.cell_count();
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const uint64_t zb = (lcg >> 20) % big.cell_count();
    random_gap.Add(
        static_cast<double>(za > zb ? za - zb : zb - za));
  }
  std::printf("\nproximity on a 64x64 grid:\n");
  std::printf("  mean |rank gap| between vertical neighbors: %10.1f\n",
              neighbor_gap.Mean());
  std::printf("  median                                   : %10.1f\n",
              neighbor_gap.Percentile(0.5));
  std::printf("  mean |rank gap| between random pairs     : %10.1f\n",
              random_gap.Mean());
  std::printf("  -> neighbors are %.0fx closer in z order than chance\n",
              random_gap.Mean() / neighbor_gap.Mean());
  return 0;
}
