// Leaf-level raw-speed pass: compressed (v2) leaves, the SIMD in-page
// filter, and aggregate pushdown, measured against the fixed-width v1
// baseline.
//
// For each Section 5.3 distribution (U/C/D) the bench builds the same
// point set into a v1 tree and a compressed v2 tree, then reports
//   - keys per leaf page before/after (the compression win),
//   - leaf page accesses over a Section 5.3 range-query batch,
//   - result identity: v2 serial and v2 parallel versus v1 serial,
//   - COUNT(*) pushdown versus materializing the same boxes.
// A separate kernel section times the in-page interval filter
// (UpperBoundZ) with AVX2 dispatch against its forced-scalar fallback in
// ns per row. Numbers land in BENCH_leaf.json (section "leaf") and gate
// scripts/check.sh.
//
// Scale with: bench_leaf [points] [queries]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "btree/leaf_codec.h"
#include "btree/simd_filter.h"
#include "index/zkd_index.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "util/bench_json.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"
#include "workload/querygen.h"

namespace {

using namespace probe;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct DatasetResult {
  std::string name;
  double v1_keys_per_page = 0.0;
  double v2_keys_per_page = 0.0;
  double gain = 0.0;
  uint64_t v1_leaf_pages = 0;
  uint64_t v2_leaf_pages = 0;
  uint64_t count_leaf_pages = 0;
  uint64_t contained_elements = 0;
  uint64_t materialized_rows = 0;
  bool identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  const size_t n_points =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 100000;
  const int n_queries = argc > 2 ? std::atoi(argv[2]) : 64;

  const zorder::GridSpec grid{2, 10};
  std::printf("=== Leaf raw-speed pass: %zu points, %d queries, avx2=%s ===\n\n",
              n_points, n_queries, btree::HasAvx2() ? "yes" : "no");

  util::Rng qrng(5300);
  const auto boxes =
      workload::MakeQueryBoxes2D(grid, 0.002, 1.0, n_queries, qrng);

  std::vector<DatasetResult> datasets;
  for (const auto dist :
       {workload::Distribution::kUniform, workload::Distribution::kClustered,
        workload::Distribution::kDiagonal}) {
    workload::DataGenConfig data;
    data.distribution = dist;
    data.count = n_points;
    data.seed = 600;
    const auto points = GeneratePoints(grid, data);

    storage::MemPager v1_pager;
    storage::BufferPool v1_pool(&v1_pager, 4096);
    const auto v1 = index::ZkdIndex::Build(grid, &v1_pool, points);

    storage::MemPager v2_pager;
    storage::BufferPool v2_pool(&v2_pager, 4096);
    const auto v2 = index::ZkdIndex::Build(grid, &v2_pool, points,
                                           btree::BTreeConfig::Compressed());

    DatasetResult r;
    r.name = workload::DistributionName(dist);
    r.v1_keys_per_page = static_cast<double>(v1.size()) /
                         static_cast<double>(v1.LeafPartitions().size());
    r.v2_keys_per_page = static_cast<double>(v2.size()) /
                         static_cast<double>(v2.LeafPartitions().size());
    r.gain = r.v2_keys_per_page / r.v1_keys_per_page;

    // Section 5.3 query batch: page accesses and result identity.
    util::ThreadPool tp(3);
    r.identical = true;
    for (const auto& box : boxes) {
      index::QueryStats v1_stats;
      index::QueryStats v2_stats;
      const auto expected = v1.RangeSearch(box, &v1_stats);
      const auto got = v2.RangeSearch(box, &v2_stats);
      const auto parallel = v2.ParallelRangeSearch(box, tp);
      r.v1_leaf_pages += v1_stats.leaf_pages;
      r.v2_leaf_pages += v2_stats.leaf_pages;
      if (got != expected || parallel != expected) r.identical = false;

      // Aggregate pushdown over the same box: same cardinality, no
      // materialized rows at full decomposition depth.
      index::QueryStats count_stats;
      const uint64_t count = v2.CountBox(box, &count_stats);
      if (count != expected.size()) r.identical = false;
      r.count_leaf_pages += count_stats.leaf_pages;
      r.contained_elements += count_stats.contained_elements;
      r.materialized_rows += count_stats.materialized_rows;
    }

    std::printf("dataset %-2s keys/page %6.1f -> %6.1f (%.2fx)  "
                "leaf pages %6llu -> %6llu  count pages %6llu  %s\n",
                r.name.c_str(), r.v1_keys_per_page, r.v2_keys_per_page, r.gain,
                static_cast<unsigned long long>(r.v1_leaf_pages),
                static_cast<unsigned long long>(r.v2_leaf_pages),
                static_cast<unsigned long long>(r.count_leaf_pages),
                r.identical ? "results identical" : "RESULT MISMATCH");
    std::printf("           count pushdown: %llu contained elements, "
                "%llu materialized rows\n",
                static_cast<unsigned long long>(r.contained_elements),
                static_cast<unsigned long long>(r.materialized_rows));
    if (!r.identical) return 1;
    datasets.push_back(r);
  }

  // In-page filter kernel: first-past-the-bound over sorted z values, the
  // operation the skip merge runs once per reported run. ns/row over a
  // sweep of bounds, AVX2 dispatch vs forced scalar.
  const size_t kKernelKeys = 1 << 16;
  std::vector<uint64_t> zs(kKernelKeys);
  util::Rng krng(42);
  for (auto& z : zs) z = krng.Next() >> 8;
  std::sort(zs.begin(), zs.end());
  const int kSweeps = 400;

  double scalar_ns = 0.0;
  double simd_ns = 0.0;
  for (const bool force_scalar : {true, false}) {
    btree::SetForceScalarFilter(force_scalar);
    uint64_t sink = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int s = 0; s < kSweeps; ++s) {
      const uint64_t bound = zs[(static_cast<size_t>(s) * 163) % kKernelKeys];
      sink += static_cast<uint64_t>(
          btree::UpperBoundZ(zs.data(), static_cast<int>(zs.size()), bound));
    }
    const double ns = MsSince(start) * 1e6 /
                      (static_cast<double>(kSweeps) *
                       static_cast<double>(kKernelKeys));
    if (force_scalar) {
      scalar_ns = ns;
    } else {
      simd_ns = ns;
    }
    std::printf("filter %-6s %.4f ns/row (checksum %llu)\n",
                force_scalar ? "scalar" : "simd", ns,
                static_cast<unsigned long long>(sink));
  }
  btree::SetForceScalarFilter(false);
  const double simd_speedup = simd_ns > 0.0 ? scalar_ns / simd_ns : 0.0;
  std::printf("filter speedup %.2fx\n\n", simd_speedup);

  std::string datasets_json = "[";
  for (const auto& r : datasets) {
    if (datasets_json.size() > 1) datasets_json += ",";
    datasets_json += "{\"name\":\"" + r.name + "\"" +
                     ",\"v1_keys_per_page\":" +
                     std::to_string(r.v1_keys_per_page) +
                     ",\"v2_keys_per_page\":" +
                     std::to_string(r.v2_keys_per_page) +
                     ",\"keys_per_page_gain\":" + std::to_string(r.gain) +
                     ",\"v1_leaf_pages\":" + std::to_string(r.v1_leaf_pages) +
                     ",\"v2_leaf_pages\":" + std::to_string(r.v2_leaf_pages) +
                     ",\"count_leaf_pages\":" +
                     std::to_string(r.count_leaf_pages) +
                     ",\"contained_elements\":" +
                     std::to_string(r.contained_elements) +
                     ",\"materialized_rows\":" +
                     std::to_string(r.materialized_rows) +
                     ",\"identical\":" + (r.identical ? "true" : "false") +
                     "}";
  }
  datasets_json += "]";

  const std::string payload =
      "{\"points\":" + std::to_string(n_points) +
      ",\"queries\":" + std::to_string(n_queries) +
      ",\"avx2\":" + (btree::HasAvx2() ? "true" : "false") +
      ",\"filter_scalar_ns_per_row\":" + std::to_string(scalar_ns) +
      ",\"filter_simd_ns_per_row\":" + std::to_string(simd_ns) +
      ",\"filter_speedup\":" + std::to_string(simd_speedup) +
      ",\"datasets\":" + datasets_json + "}";
  if (util::UpdateJsonSection("BENCH_leaf.json", "leaf", payload)) {
    std::printf("wrote BENCH_leaf.json (section \"leaf\")\n");
  }

  std::printf("\nCompressed leaves share one z prefix per page and store\n"
              "varint suffixes, so several times more keys ride on each page\n"
              "access; the merge then tests decoded runs against the query\n"
              "interval 4 wide with AVX2, and COUNT(*) sums run lengths and\n"
              "page headers without materializing rows at all.\n");
  return 0;
}
