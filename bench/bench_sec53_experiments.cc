// Section 5.3.2: the paper's experiments U, C and D.
//
// Setup exactly as published: a prefix B+-tree storing points in z order,
// page capacity 20 points, 5000 points per experiment; rectangular queries
// of several shapes and four volumes, each run at five random locations.
// Measured: data pages accessed and efficiency. Each cell is compared with
// the fixed-size-page analysis's prediction (an upper bound in the paper's
// hypothesis 2).
//
// Findings to look for in the output (the paper's four observations):
//  * predicted trends hold in all experiments; U is closest, D farthest;
//  * predictions mostly upper-bound the measurements;
//  * efficiency increases with query volume;
//  * squarish queries (aspect 1 or 2) are the most efficient shapes.

#include <cstdio>
#include <iostream>

#include "util/table.h"
#include "workload/experiment.h"

int main() {
  using namespace probe;
  using workload::Distribution;

  std::printf("=== Section 5.3.2: experiments U, C, D "
              "(5000 points, 20 per page) ===\n");

  for (const auto dist : {Distribution::kUniform, Distribution::kClustered,
                          Distribution::kDiagonal, Distribution::kRoadNetwork}) {
    workload::ExperimentConfig config;
    config.data.distribution = dist;
    config.data.count = 5000;
    config.data.seed = 11;
    config.query_seed = 53;
    const auto report = RunRangeExperiment(config);

    std::printf("\n--- Experiment %s: %llu points on %llu pages, tree height "
                "%d ---\n\n",
                DistributionName(dist).c_str(),
                static_cast<unsigned long long>(report.points),
                static_cast<unsigned long long>(report.leaf_pages),
                report.tree_height);

    util::Table table({"volume", "aspect h:w", "pages mean", "pages max",
                       "predicted", "within bound", "efficiency", "results"});
    int bounded = 0;
    for (const auto& cell : report.cells) {
      table.AddRow();
      table.Cell(cell.volume, 3);
      table.Cell(cell.aspect, 4);
      table.Cell(cell.mean_pages, 1);
      table.Cell(cell.max_pages, 0);
      table.Cell(cell.predicted_pages, 1);
      const bool ok = cell.mean_pages <= cell.predicted_pages;
      bounded += ok;
      table.Cell(std::string(ok ? "yes" : "NO"));
      table.Cell(cell.mean_efficiency, 3);
      table.Cell(cell.mean_results, 0);
    }
    table.Print(std::cout);
    std::printf("\ncells where the analysis upper-bounds the measurement: "
                "%d / %zu\n",
                bounded, report.cells.size());

    // Efficiency-by-shape summary at the largest volume.
    std::printf("efficiency by shape at volume %.2f:  ",
                config.volumes.back());
    for (const auto& cell : report.cells) {
      if (cell.volume == config.volumes.back()) {
        std::printf("%.3f@%.2g  ", cell.mean_efficiency, cell.aspect);
      }
    }
    std::printf("\n");
  }

  std::printf(
      "\nReading the tables: pages grow ~linearly with volume; long/narrow\n"
      "shapes (aspect far from 1-2) cost more pages at equal volume; the\n"
      "best efficiency sits at aspect 1-2 (the paper: 'square or twice as\n"
      "tall as they are wide'); D departs furthest from the predictions.\n");
  return 0;
}
