// Spatial query server load generator: shard-scaling sweep over TCP.
//
// Builds a ShardedEngine at each shard count in the sweep, fronts it with
// the TCP server, and drives it with pipelined clients executing COUNT
// queries. Two measurements per configuration:
//
//   * latency probe — one client, strict request/response round trips,
//     per-request wall time collected for p50/p99;
//   * throughput run — N client threads, each pipelining windows of
//     requests (write the window, read the window), wall-clock qps.
//
// Every response is checked against the in-process answer computed on the
// single-shard engine, so the row-level `identical` flag certifies the
// scatter-gather concatenation over the wire, not just in a unit test.
// Rows where shard count exceeds the hardware's cores are tagged
// `oversubscribed`; rows whose speedup over the single-shard (single
// buffer pool, single WAL) baseline is <= 1.1x are tagged `low_scaling`
// so regression tooling can judge only the rows the machine can back.
//
// Numbers land in BENCH_server.json (section "server") with a
// machine-scaled `qps_floor`: the committed baseline's floor is the gate
// later runs must sustain (scripts/check.sh).
//
// Sizes default small enough for CI; scale up with
//   bench_server [points] [queries] [clients]
// (e.g. 500000 200000 8 for a real machine).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "index/durable_index.h"
#include "server/client.h"
#include "server/server.h"
#include "server/sharded_engine.h"
#include "util/bench_json.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"
#include "workload/querygen.h"

namespace {

using namespace probe;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

void RemoveShardFiles(const std::string& prefix, int shards) {
  for (int i = 0; i < shards; ++i) {
    const std::string base = server::ShardedEngine::ShardPath(prefix, i);
    std::remove(base.c_str());
    std::remove((base + ".wal").c_str());
    std::remove((base + ".wal.tmp").c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n_points =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 50000;
  const int n_queries = argc > 2 ? std::atoi(argv[2]) : 4000;
  const int n_clients = std::max(1, argc > 3 ? std::atoi(argv[3]) : 4);
  const int n_latency_probe = std::min(500, n_queries);
  constexpr int kWindow = 64;

  const zorder::GridSpec grid{2, 16};
  workload::DataGenConfig data;
  data.count = n_points;
  data.seed = 17;
  data.distribution = workload::Distribution::kUniform;
  const auto points = GeneratePoints(grid, data);
  std::vector<index::DurableIndex::Op> ops;
  ops.reserve(points.size());
  for (const auto& r : points) {
    ops.push_back(index::DurableIndex::Op::Insert(r.point, r.id));
  }

  util::Rng qrng(4321);
  const auto boxes =
      workload::MakeQueryBoxes2D(grid, 0.001, 1.0, 256, qrng);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("=== Query server load: %zu points, %d queries, %d clients, "
              "hardware threads = %u ===\n\n",
              n_points, n_queries, n_clients, hw);

  const std::string prefix =
      "/tmp/probe_bench_server_" + std::to_string(::getpid());

  // Expected answers, computed once in-process: every configuration's wire
  // responses must match these exactly.
  std::vector<uint64_t> expected(boxes.size(), 0);

  std::string rows_json = "[";
  double qps_single = 0.0;
  double best_qps = 0.0;
  bool all_identical = true;

  for (const int shards : {1, 2, 4, 8}) {
    const bool oversubscribed = static_cast<unsigned>(shards) > hw;
    util::ThreadPool engine_pool(shards);
    server::ShardedEngineOptions engine_options;
    engine_options.shards = shards;
    engine_options.truncate = true;
    server::ShardedEngine engine(grid, prefix, engine_options, &engine_pool);
    if (!engine.ok()) {
      std::fprintf(stderr, "FATAL: shard open failed (shards=%d)\n", shards);
      return 1;
    }
    if (!engine.Apply(ops)) {
      std::fprintf(stderr, "FATAL: load failed (shards=%d)\n", shards);
      return 1;
    }
    if (shards == 1) {
      for (size_t q = 0; q < boxes.size(); ++q) {
        expected[q] = engine.CountBox(boxes[q]);
      }
    }

    server::ServerOptions server_options;
    server_options.worker_threads = n_clients + 4;
    server_options.max_connections = n_clients + 8;
    server_options.max_inflight = 1024;
    server::Server server(&engine, server_options);
    if (!server.Start()) {
      std::fprintf(stderr, "FATAL: server bind failed\n");
      return 1;
    }

    // ---- latency probe: strict round trips, per-request timing.
    std::vector<double> latencies_ms;
    latencies_ms.reserve(static_cast<size_t>(n_latency_probe));
    std::atomic<size_t> mismatches{0};
    {
      server::Client probe;
      server::HelloResponse hello;
      if (!probe.ConnectTcp(server.port()) || !probe.Hello(&hello)) {
        std::fprintf(stderr, "FATAL: latency probe connect failed\n");
        return 1;
      }
      for (int i = 0; i < n_latency_probe; ++i) {
        const size_t q = static_cast<size_t>(i) % boxes.size();
        uint64_t count = 0;
        const auto start = std::chrono::steady_clock::now();
        if (!probe.Count(boxes[q], &count)) {
          std::fprintf(stderr, "FATAL: COUNT failed: %s\n",
                       probe.last_error().c_str());
          return 1;
        }
        latencies_ms.push_back(MsSince(start));
        if (count != expected[q]) mismatches.fetch_add(1);
      }
      probe.Goodbye();
    }
    std::sort(latencies_ms.begin(), latencies_ms.end());
    const double p50 = Percentile(latencies_ms, 0.50);
    const double p99 = Percentile(latencies_ms, 0.99);

    // ---- throughput run: pipelined windows across client threads.
    const int per_client = std::max(1, n_queries / n_clients);
    std::vector<std::thread> threads;
    std::atomic<bool> failed{false};
    const auto wall_start = std::chrono::steady_clock::now();
    for (int c = 0; c < n_clients; ++c) {
      threads.emplace_back([&, c] {
        server::Client client;
        server::HelloResponse hello;
        if (!client.ConnectTcp(server.port()) || !client.Hello(&hello)) {
          failed.store(true);
          return;
        }
        uint32_t next_id = 1;
        int done = 0;
        while (done < per_client) {
          const int window = std::min(kWindow, per_client - done);
          for (int i = 0; i < window; ++i) {
            const size_t q =
                static_cast<size_t>(c * 977 + done + i) % boxes.size();
            server::CountRequest req;
            req.box = boxes[q];
            if (!client.Send(req.ToFrame(next_id + static_cast<uint32_t>(i)))) {
              failed.store(true);
              return;
            }
          }
          for (int i = 0; i < window; ++i) {
            server::Frame frame;
            server::CountResponse resp;
            if (!client.Recv(&frame) ||
                frame.type != server::FrameType::kCountResult ||
                frame.request_id != next_id + static_cast<uint32_t>(i) ||
                !server::CountResponse::FromPayload(frame.payload, &resp)) {
              failed.store(true);
              return;
            }
            const size_t q =
                static_cast<size_t>(c * 977 + done + i) % boxes.size();
            if (resp.count != expected[q]) mismatches.fetch_add(1);
          }
          next_id += static_cast<uint32_t>(window);
          done += window;
        }
        client.Goodbye();
      });
    }
    for (auto& t : threads) t.join();
    const double wall_ms = MsSince(wall_start);
    const uint64_t total =
        static_cast<uint64_t>(per_client) * static_cast<uint64_t>(n_clients);
    const double qps = wall_ms > 0 ? 1000.0 * static_cast<double>(total) /
                                         wall_ms
                                   : 0.0;
    if (failed.load()) {
      std::fprintf(stderr, "FATAL: throughput client failed (shards=%d)\n",
                   shards);
      return 1;
    }

    const bool identical = mismatches.load() == 0;
    all_identical = all_identical && identical;
    if (shards == 1) qps_single = qps;
    best_qps = std::max(best_qps, qps);
    const double speedup = qps_single > 0 ? qps / qps_single : 0.0;
    const bool low_scaling = shards > 1 && !oversubscribed && speedup <= 1.1;

    std::printf("shards=%-2d  qps %9.0f  p50 %7.3f ms  p99 %7.3f ms  "
                "speedup %5.2fx  %s%s%s\n",
                shards, qps, p50, p99, speedup,
                identical ? "results identical" : "RESULT MISMATCH",
                oversubscribed ? "  (oversubscribed)" : "",
                low_scaling ? "  (low scaling)" : "");

    if (rows_json.size() > 1) rows_json += ",";
    rows_json += "{\"shards\":" + std::to_string(shards) +
                 ",\"qps\":" + std::to_string(qps) +
                 ",\"p50_ms\":" + std::to_string(p50) +
                 ",\"p99_ms\":" + std::to_string(p99) +
                 ",\"speedup\":" + std::to_string(speedup) +
                 ",\"oversubscribed\":" + (oversubscribed ? "true" : "false") +
                 ",\"low_scaling\":" + (low_scaling ? "true" : "false") +
                 ",\"identical\":" + (identical ? "true" : "false") + "}";

    server.Stop();
    RemoveShardFiles(prefix, shards);
    if (!identical) return 1;
  }
  rows_json += "]";

  // Machine-scaled gate: 100k qps when the host can do it, otherwise half
  // of what this host measured. The committed baseline's floor is what
  // later runs are held to.
  const double qps_floor =
      best_qps >= 100000.0 ? 100000.0 : std::floor(best_qps * 0.5);

  const std::string payload =
      "{\"points\":" + std::to_string(n_points) +
      ",\"queries\":" + std::to_string(n_queries) +
      ",\"clients\":" + std::to_string(n_clients) +
      ",\"hardware_threads\":" + std::to_string(hw) +
      ",\"best_qps\":" + std::to_string(best_qps) +
      ",\"qps_floor\":" + std::to_string(qps_floor) +
      ",\"all_identical\":" + (all_identical ? "true" : "false") +
      ",\"shard_sweep\":" + rows_json + "}";
  if (util::UpdateJsonSection("BENCH_server.json", "server", payload)) {
    std::printf("\nwrote BENCH_server.json (section \"server\")\n");
  }
  std::printf("\nEach shard owns a contiguous z interval with its own WAL\n"
              "and buffer pool, so scatter-gathered COUNTs scale with cores\n"
              "instead of one pool's latch throughput — and the gathered\n"
              "answer stays bitwise equal to the single-engine result.\n");
  return all_identical ? 0 : 1;
}
