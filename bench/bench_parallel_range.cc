// Parallel z-partitioned range search: thread sweep + buffer-pool policies.
//
// Builds one index per eviction policy (LRU / FIFO / CLOCK) over a sharded
// buffer pool, runs a fixed query batch serially and with
// ParallelRangeSearch at 1..16 threads, verifies the parallel results are
// element-for-element identical to serial, and reports wall time, speedup,
// and pool hit rate. Numbers also land in BENCH_parallel.json (section
// "range") for cross-PR tracking.
//
// Sizes default small enough for CI; scale up with
//   bench_parallel_range [points] [queries]
// (e.g. 1000000 1000 for a real machine). Speedup is bounded by the
// hardware's core count — on a single-core host every thread count
// measures the same work plus scheduling overhead.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "btree/btree.h"
#include "index/zkd_index.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "util/bench_json.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"
#include "workload/querygen.h"

namespace {

using namespace probe;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

const char* PolicyName(storage::EvictionPolicy policy) {
  switch (policy) {
    case storage::EvictionPolicy::kLru:
      return "lru";
    case storage::EvictionPolicy::kFifo:
      return "fifo";
    case storage::EvictionPolicy::kClock:
      return "clock";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n_points =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 200000;
  const int n_queries = argc > 2 ? std::atoi(argv[2]) : 64;

  const zorder::GridSpec grid{2, 16};
  workload::DataGenConfig data;
  data.count = n_points;
  data.seed = 11;
  data.distribution = workload::Distribution::kUniform;
  const auto points = GeneratePoints(grid, data);

  util::Rng qrng(1234);
  const auto boxes = workload::MakeQueryBoxes2D(grid, 0.002, 1.0, n_queries,
                                                qrng);

  std::printf("=== Parallel range search: %zu points, %d queries, "
              "hardware threads = %u ===\n\n",
              n_points, n_queries, std::thread::hardware_concurrency());

  btree::BTreeConfig tree_config;
  tree_config.leaf_capacity = 64;

  std::string policies_json = "[";
  std::string threads_json = "[";
  double serial_ms_lru = 0.0;

  for (const auto policy :
       {storage::EvictionPolicy::kLru, storage::EvictionPolicy::kFifo,
        storage::EvictionPolicy::kClock}) {
    storage::MemPager pager;
    // Large enough to auto-shard; small enough that queries miss.
    storage::BufferPool pool(&pager, 1024, policy);
    index::ZkdIndex index =
        index::ZkdIndex::Build(grid, &pool, points, tree_config);

    // Serial baseline (also the expected output for verification).
    std::vector<std::vector<uint64_t>> expected(boxes.size());
    const auto serial_start = std::chrono::steady_clock::now();
    for (size_t q = 0; q < boxes.size(); ++q) {
      expected[q] = index.RangeSearch(boxes[q]);
    }
    const double serial_ms = MsSince(serial_start);
    const storage::BufferPoolStats after_serial = pool.stats();
    const double hit_rate =
        after_serial.fetches == 0
            ? 1.0
            : static_cast<double>(after_serial.hits) /
                  static_cast<double>(after_serial.fetches);

    std::printf("policy %-5s  shards=%zu  serial %8.2f ms  "
                "pool hit rate %.3f\n",
                PolicyName(policy), pool.shard_count(), serial_ms, hit_rate);
    if (policies_json.size() > 1) policies_json += ",";
    policies_json += "{\"policy\":\"" + std::string(PolicyName(policy)) +
                     "\",\"serial_ms\":" + std::to_string(serial_ms) +
                     ",\"hit_rate\":" + std::to_string(hit_rate) + "}";

    if (policy != storage::EvictionPolicy::kLru) continue;
    serial_ms_lru = serial_ms;

    // Thread sweep on the LRU pool: total lanes = requested threads
    // (the caller participates, so the pool gets threads - 1 workers).
    // Counts beyond the hardware's cores cannot speed anything up — they
    // only measure scheduling overhead — so those rows are tagged
    // oversubscribed and regression tooling skips them.
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    for (const int threads : {1, 2, 4, 8, 16}) {
      const bool oversubscribed = static_cast<unsigned>(threads) > hw;
      util::ThreadPool tp(threads - 1);
      size_t mismatches = 0;
      const auto start = std::chrono::steady_clock::now();
      for (size_t q = 0; q < boxes.size(); ++q) {
        const auto got = index.ParallelRangeSearch(boxes[q], tp);
        if (got != expected[q]) ++mismatches;
      }
      const double ms = MsSince(start);
      const double speedup = ms > 0 ? serial_ms / ms : 0.0;
      std::printf("  threads=%-2d  %8.2f ms  speedup %5.2fx  %s%s\n", threads,
                  ms, speedup,
                  mismatches == 0 ? "results identical"
                                  : "RESULT MISMATCH",
                  oversubscribed ? "  (oversubscribed)" : "");
      if (threads_json.size() > 1) threads_json += ",";
      threads_json += "{\"threads\":" + std::to_string(threads) +
                      ",\"ms\":" + std::to_string(ms) +
                      ",\"speedup\":" + std::to_string(speedup) +
                      ",\"oversubscribed\":" +
                      (oversubscribed ? "true" : "false") +
                      ",\"identical\":" +
                      (mismatches == 0 ? "true" : "false") + "}";
      if (mismatches != 0) return 1;
    }
    std::printf("\n");
  }
  policies_json += "]";
  threads_json += "]";

  const std::string payload =
      "{\"points\":" + std::to_string(n_points) +
      ",\"queries\":" + std::to_string(n_queries) +
      ",\"hardware_threads\":" +
      std::to_string(std::thread::hardware_concurrency()) +
      ",\"serial_ms\":" + std::to_string(serial_ms_lru) +
      ",\"threads\":" + threads_json + ",\"policies\":" + policies_json + "}";
  if (util::UpdateJsonSection("BENCH_parallel.json", "range", payload)) {
    std::printf("wrote BENCH_parallel.json (section \"range\")\n");
  }
  std::printf("\nPartitioning splits the query's element sequence at BIGMIN-\n"
              "snapped z boundaries; each lane runs the ordinary skip merge\n"
              "on its interval, so speedup tracks available cores while the\n"
              "result stays bitwise equal to the serial scan.\n");
  return 0;
}
