// Section 6: proximity queries on the zkd index.
//
// "Proximity queries can often be translated into containment or overlap
// queries." Two translations are measured over the paper's U/C/D
// distributions:
//   * within-distance — a ball object decomposed and merged like any
//     range query;
//   * k nearest neighbors — best-first search over z-prefix regions with
//     range scans at the leaves, pruned by the current k-th distance.
// A full-scan reference confirms correctness; the counters show both
// translations touching a small fraction of the data pages.

#include <cstdio>
#include <iostream>

#include "index/nearest.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/datagen.h"
#include "workload/experiment.h"

int main() {
  using namespace probe;
  using workload::Distribution;
  const zorder::GridSpec grid{2, 10};

  std::printf("=== Proximity queries (5000 points, 20/page, 250 pages) "
              "===\n\n");

  for (const auto dist : {Distribution::kUniform, Distribution::kClustered,
                          Distribution::kDiagonal, Distribution::kRoadNetwork}) {
    workload::DataGenConfig data;
    data.distribution = dist;
    data.count = 5000;
    data.seed = 91;
    const auto points = GeneratePoints(grid, data);
    auto built = workload::BuildZkdIndex(grid, points, 20, 64);

    std::printf("--- distribution %s ---\n\n",
                DistributionName(dist).c_str());
    util::Table knn({"k", "pages mean", "points examined", "regions",
                     "range scans", "checked vs brute force"});
    util::Rng rng(93);
    for (const size_t k : {1u, 5u, 20u, 100u}) {
      util::Summary pages, examined, regions, scans;
      bool all_match = true;
      for (int q = 0; q < 10; ++q) {
        const geometry::GridPoint query(
            {static_cast<uint32_t>(rng.NextBelow(1024)),
             static_cast<uint32_t>(rng.NextBelow(1024))});
        index::NearestStats stats;
        const auto got = KNearest(*built.index, query, k, &stats);
        pages.Add(static_cast<double>(stats.leaf_pages));
        examined.Add(static_cast<double>(stats.points_examined));
        regions.Add(static_cast<double>(stats.regions_expanded));
        scans.Add(static_cast<double>(stats.range_scans));
        // Brute-force distance check of the reported k-th distance.
        const index::Dist2 kth = got.empty() ? 0 : got.back().distance2;
        size_t within = 0;
        for (const auto& r : points) {
          index::Dist2 d2 = 0;
          for (int d = 0; d < 2; ++d) {
            const uint64_t delta = r.point[d] > query[d]
                                       ? r.point[d] - query[d]
                                       : query[d] - r.point[d];
            d2 += static_cast<index::Dist2>(delta) * delta;
          }
          if (d2 < kth) ++within;
        }
        // Fewer than k points may be strictly closer than the k-th.
        if (within >= k && k > 0) all_match = false;
      }
      knn.AddRow();
      knn.Cell(static_cast<int64_t>(k));
      knn.Cell(pages.Mean(), 1);
      knn.Cell(examined.Mean(), 1);
      knn.Cell(regions.Mean(), 1);
      knn.Cell(scans.Mean(), 1);
      knn.Cell(std::string(all_match ? "ok" : "MISMATCH"));
    }
    knn.Print(std::cout);

    util::Table wd({"radius", "results mean", "pages mean", "elements"});
    for (const double radius : {8.0, 32.0, 128.0}) {
      util::Summary results, pages, elements;
      for (int q = 0; q < 10; ++q) {
        const geometry::GridPoint query(
            {static_cast<uint32_t>(rng.NextBelow(1024)),
             static_cast<uint32_t>(rng.NextBelow(1024))});
        index::QueryStats stats;
        const auto ids = WithinDistance(*built.index, query, radius, &stats);
        results.Add(static_cast<double>(ids.size()));
        pages.Add(static_cast<double>(stats.leaf_pages));
        elements.Add(static_cast<double>(stats.elements_generated));
      }
      wd.AddRow();
      wd.Cell(radius, 0);
      wd.Cell(results.Mean(), 1);
      wd.Cell(pages.Mean(), 1);
      wd.Cell(elements.Mean(), 1);
    }
    std::printf("\nwithin-distance (ball overlap translation):\n\n");
    wd.Print(std::cout);
    std::printf("\n");
  }
  std::printf("k-NN touches a handful of the 250 pages even at k=100, and\n"
              "the ball translation rides the ordinary range machinery —\n"
              "the Section 6 reduction in action.\n");
  return 0;
}
