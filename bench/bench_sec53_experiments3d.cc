// Higher-dimensional experiments: the paper's closing line of Section 5 —
// "Experiments in higher dimensions and with 'real' data are still
// needed." Here are the 3-d ones.
//
// Setup mirrors Section 5.3.2 in three dimensions: 5000 points, page
// capacity 20, query shapes from cubes to long boxes at four volumes, five
// locations each. The fixed-size-page analysis bound uses the paper's 3-d
// constant: at most 28/3 pages per block.

#include <cstdio>
#include <iostream>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/datagen.h"
#include "workload/experiment.h"
#include "workload/querygen.h"

int main() {
  using namespace probe;
  using workload::Distribution;
  const zorder::GridSpec grid{3, 7};  // 128^3 cells

  std::printf("=== Section 5.3.2 extended to 3-d (5000 points, 20/page, "
              "128^3 grid, <=28/3 pages per block) ===\n");

  const std::vector<std::vector<double>> shapes = {
      {1, 1, 1},   // cube
      {1, 1, 4},   // slab-ish
      {1, 4, 4},   // tall slab
      {1, 1, 16},  // rod
  };
  const char* shape_names[] = {"1:1:1", "1:1:4", "1:4:4", "1:1:16"};

  for (const auto dist : {Distribution::kUniform, Distribution::kClustered,
                          Distribution::kDiagonal}) {
    workload::DataGenConfig data;
    data.distribution = dist;
    data.count = 5000;
    data.seed = 81;
    data.clusters = 50;
    const auto points = GeneratePoints(grid, data);
    auto built = workload::BuildZkdIndex(grid, points, 20, 64);

    std::printf("\n--- distribution %s: %llu points on %llu pages ---\n\n",
                DistributionName(dist).c_str(),
                static_cast<unsigned long long>(points.size()),
                static_cast<unsigned long long>(built.leaf_pages));

    util::Table table({"volume", "shape", "pages mean", "pages max",
                       "predicted", "within", "efficiency", "results"});
    int bounded = 0;
    int cells = 0;
    util::Rng rng(83);
    for (const double volume : {0.005, 0.01, 0.02, 0.05}) {
      for (size_t s = 0; s < shapes.size(); ++s) {
        util::Summary pages, eff, results;
        std::vector<double> extents(3);
        for (const auto& box : workload::MakeQueryBoxes(
                 grid, volume, shapes[s], 5, rng)) {
          index::QueryStats stats;
          built.index->RangeSearch(box, &stats);
          pages.Add(static_cast<double>(stats.leaf_pages));
          eff.Add(stats.Efficiency());
          results.Add(static_cast<double>(stats.results));
          for (int d = 0; d < 3; ++d) {
            extents[d] = static_cast<double>(box.range(d).width());
          }
        }
        const double predicted = workload::PredictedPagesKD(
            extents, static_cast<double>(grid.side()), built.leaf_pages);
        const bool ok = pages.Mean() <= predicted;
        bounded += ok;
        ++cells;
        table.AddRow();
        table.Cell(volume, 3);
        table.Cell(std::string(shape_names[s]));
        table.Cell(pages.Mean(), 1);
        table.Cell(pages.Max(), 0);
        table.Cell(predicted, 1);
        table.Cell(std::string(ok ? "yes" : "NO"));
        table.Cell(eff.Mean(), 3);
        table.Cell(results.Mean(), 0);
      }
    }
    table.Print(std::cout);
    std::printf("\nanalysis bounds the measurement in %d / %d cells\n",
                bounded, cells);
  }
  std::printf("\nThe 2-d findings carry over: pages track volume, compact\n"
              "shapes beat elongated ones, and the fixed-size-page analysis\n"
              "(28/3 pages per block in 3-d) stays an upper bound.\n");
  return 0;
}
