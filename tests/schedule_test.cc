// Tests of the split-schedule generalization: the paper's unification
// claim that published structures are special cases of one framework.

#include <bit>
#include <set>

#include <gtest/gtest.h>

#include "decompose/analysis.h"
#include "decompose/decomposer.h"
#include "geometry/primitives.h"
#include "geometry/raster.h"
#include "index/zkd_index.h"
#include "util/rng.h"
#include "zorder/bigmin.h"
#include "zorder/shuffle.h"

namespace probe::zorder {
namespace {

using geometry::BoxObject;
using geometry::GridBox;
using geometry::GridPoint;

GridSpec BrickWall2D(int bits) {
  // Split x twice, then alternate: the brick-wall flavor of [LIOU77].
  std::vector<int> schedule;
  schedule.push_back(0);
  schedule.push_back(0);
  int x_left = bits - 2;
  int y_left = bits;
  bool turn_y = true;
  while (x_left + y_left > 0) {
    if (turn_y && y_left > 0) {
      schedule.push_back(1);
      --y_left;
    } else if (x_left > 0) {
      schedule.push_back(0);
      --x_left;
    } else {
      schedule.push_back(1);
      --y_left;
    }
    turn_y = !turn_y;
  }
  return GridSpec::WithSchedule(2, bits, schedule);
}

TEST(ScheduleTest, ValidationRejectsBadSchedules) {
  const std::vector<int> unbalanced = {0, 0, 0, 0, 1, 0};  // x 5 times
  EXPECT_FALSE(GridSpec::WithSchedule(2, 3, unbalanced).Valid());
  const std::vector<int> out_of_range = {0, 2, 0, 1, 0, 1};
  EXPECT_FALSE(GridSpec::WithSchedule(2, 3, out_of_range).Valid());
  const std::vector<int> good = {1, 1, 0, 0, 0, 1};
  EXPECT_TRUE(GridSpec::WithSchedule(2, 3, good).Valid());
}

TEST(ScheduleTest, DefaultEqualsExplicitAlternation) {
  const GridSpec plain{2, 4};
  const std::vector<int> alternating = {0, 1, 0, 1, 0, 1, 0, 1};
  const GridSpec scheduled = GridSpec::WithSchedule(2, 4, alternating);
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      EXPECT_EQ(Shuffle2D(plain, x, y), Shuffle2D(scheduled, x, y));
    }
  }
}

TEST(ScheduleTest, CompositeScheduleIsKeyConcatenation) {
  // The composite schedule's shuffle must equal the conventional
  // concatenated key — the published composite index as a special case.
  const GridSpec composite = GridSpec::Composite(2, 5);
  ASSERT_TRUE(composite.Valid());
  util::Rng rng(2100);
  for (int t = 0; t < 200; ++t) {
    const uint32_t x = static_cast<uint32_t>(rng.NextBelow(32));
    const uint32_t y = static_cast<uint32_t>(rng.NextBelow(32));
    EXPECT_EQ(Shuffle2D(composite, x, y).ToInteger(),
              (static_cast<uint64_t>(x) << 5) | y);
  }
}

class ScheduledGridTest : public ::testing::TestWithParam<int> {
 protected:
  GridSpec MakeGrid() const {
    switch (GetParam()) {
      case 0:
        return GridSpec{2, 5};  // alternation (z order)
      case 1:
        return GridSpec::Composite(2, 5);
      default:
        return BrickWall2D(5);
    }
  }
};

TEST_P(ScheduledGridTest, ShuffleRoundTrips) {
  const GridSpec grid = MakeGrid();
  ASSERT_TRUE(grid.Valid());
  for (uint32_t x = 0; x < grid.side(); ++x) {
    for (uint32_t y = 0; y < grid.side(); ++y) {
      const ZValue z = Shuffle2D(grid, x, y);
      const auto coords = Unshuffle(grid, z);
      EXPECT_EQ(coords[0], x);
      EXPECT_EQ(coords[1], y);
    }
  }
}

TEST_P(ScheduledGridTest, RanksAreABijection) {
  const GridSpec grid = MakeGrid();
  std::set<uint64_t> ranks;
  for (uint32_t x = 0; x < grid.side(); ++x) {
    for (uint32_t y = 0; y < grid.side(); ++y) {
      ranks.insert(Shuffle2D(grid, x, y).ToInteger());
    }
  }
  EXPECT_EQ(ranks.size(), grid.cell_count());
}

TEST_P(ScheduledGridTest, DecompositionCoversBoxesExactly) {
  const GridSpec grid = MakeGrid();
  util::Rng rng(2200 + GetParam());
  for (int t = 0; t < 30; ++t) {
    uint32_t x1 = static_cast<uint32_t>(rng.NextBelow(grid.side()));
    uint32_t x2 = static_cast<uint32_t>(rng.NextBelow(grid.side()));
    uint32_t y1 = static_cast<uint32_t>(rng.NextBelow(grid.side()));
    uint32_t y2 = static_cast<uint32_t>(rng.NextBelow(grid.side()));
    const GridBox box = GridBox::Make2D(std::min(x1, x2), std::max(x1, x2),
                                        std::min(y1, y2), std::max(y1, y2));
    const auto elements = decompose::DecomposeBox(grid, box);
    // Disjoint, sorted, and covering exactly the box's cells.
    const int total = grid.total_bits();
    uint64_t covered = 0;
    for (size_t i = 0; i < elements.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(elements[i - 1].RangeHi(total), elements[i].RangeLo(total));
      }
      covered += elements[i].RangeHi(total) - elements[i].RangeLo(total) + 1;
    }
    EXPECT_EQ(covered, box.Volume());
    // Spot-check membership of random cells.
    for (int s = 0; s < 20; ++s) {
      const uint32_t px = static_cast<uint32_t>(rng.NextBelow(grid.side()));
      const uint32_t py = static_cast<uint32_t>(rng.NextBelow(grid.side()));
      const ZValue z = Shuffle2D(grid, px, py);
      bool in_elements = false;
      for (const auto& e : elements) {
        if (e.Contains(z)) in_elements = true;
      }
      EXPECT_EQ(in_elements, box.ContainsPoint(GridPoint({px, py})));
    }
  }
}

TEST_P(ScheduledGridTest, BigMinMatchesBruteForce) {
  const GridSpec grid = MakeGrid();
  util::Rng rng(2300 + GetParam());
  for (int t = 0; t < 10; ++t) {
    uint32_t lo[2], hi[2];
    for (int d = 0; d < 2; ++d) {
      uint32_t a = static_cast<uint32_t>(rng.NextBelow(grid.side()));
      uint32_t b = static_cast<uint32_t>(rng.NextBelow(grid.side()));
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    const uint64_t zmin = Shuffle2D(grid, lo[0], lo[1]).ToInteger();
    const uint64_t zmax = Shuffle2D(grid, hi[0], hi[1]).ToInteger();
    for (uint64_t z = 0; z < grid.cell_count(); z += 3) {
      if (InBox(grid, z, zmin, zmax)) continue;
      uint64_t expect = 0;
      bool have = false;
      for (uint64_t cand = z + 1; cand <= zmax; ++cand) {
        if (InBox(grid, cand, zmin, zmax)) {
          expect = cand;
          have = true;
          break;
        }
      }
      uint64_t got = 0;
      ASSERT_EQ(BigMin(grid, z, zmin, zmax, &got), have) << "z=" << z;
      if (have) {
        EXPECT_EQ(got, expect) << "z=" << z;
      }
    }
  }
}

TEST_P(ScheduledGridTest, RangeSearchCorrectUnderAnySchedule) {
  const GridSpec grid = MakeGrid();
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 32);
  util::Rng rng(2400 + GetParam());
  std::vector<index::PointRecord> points;
  for (uint64_t i = 0; i < 400; ++i) {
    points.push_back({GridPoint({static_cast<uint32_t>(rng.NextBelow(32)),
                                 static_cast<uint32_t>(rng.NextBelow(32))}),
                      i});
  }
  btree::BTreeConfig config;
  config.leaf_capacity = 10;
  auto index = index::ZkdIndex::Build(grid, &pool, points, config);
  for (int q = 0; q < 15; ++q) {
    uint32_t x1 = static_cast<uint32_t>(rng.NextBelow(32));
    uint32_t x2 = static_cast<uint32_t>(rng.NextBelow(32));
    uint32_t y1 = static_cast<uint32_t>(rng.NextBelow(32));
    uint32_t y2 = static_cast<uint32_t>(rng.NextBelow(32));
    const GridBox box = GridBox::Make2D(std::min(x1, x2), std::max(x1, x2),
                                        std::min(y1, y2), std::max(y1, y2));
    auto got = index.RangeSearch(box);
    std::sort(got.begin(), got.end());
    std::vector<uint64_t> expect;
    for (const auto& r : points) {
      if (box.ContainsPoint(r.point)) expect.push_back(r.id);
    }
    EXPECT_EQ(got, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, ScheduledGridTest,
                         ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           switch (info.param) {
                             case 0:
                               return "zorder";
                             case 1:
                               return "composite";
                             default:
                               return "brickwall";
                           }
                         });

TEST(ScheduleTest, CompositeElementCountClosedForm) {
  // Under the composite schedule, a region that is not full-width keeps
  // splitting in x until columns are one cell wide, so the anchored box
  // [0,U) x [0,V) with U < side costs U * popcount(V) elements — the
  // blowup that motivates interleaving. (A full-width box degenerates to
  // the 1-d count popcount(V).)
  const GridSpec composite = GridSpec::Composite(2, 6);
  const GridSpec interleaved{2, 6};
  // E_composite(U, V) = U * popcount(V): the schedule splits x to
  // exhaustion before touching y, so even aligned or full-width boxes pay
  // one 1-d y-decomposition per unit column.
  EXPECT_EQ(decompose::ElementCountUV(composite, 32, 32), 32u);  // 32 * 1
  EXPECT_EQ(decompose::ElementCountUV(interleaved, 32, 32), 1u);
  EXPECT_EQ(decompose::ElementCountUV(composite, 33, 33),
            33u * std::popcount(33u));
  EXPECT_EQ(decompose::ElementCountUV(composite, 64, 33),
            64u * std::popcount(33u));
  // Sweep the closed form against the generic counter.
  for (uint64_t u = 1; u <= 64; u += 7) {
    for (uint64_t v = 1; v <= 64; v += 5) {
      EXPECT_EQ(decompose::ElementCountUV(composite, u, v),
                u * static_cast<uint64_t>(std::popcount(v)))
          << u << "x" << v;
    }
  }
  // The combinatorial count agrees with a real decomposition.
  const geometry::GridBox box = geometry::GridBox::Make2D(0, 32, 0, 32);
  EXPECT_EQ(decompose::ElementCountUV(composite, 33, 33),
            decompose::DecomposeBox(composite, box).size());
  // Note composite can need *fewer elements* than interleaving (33 cheap
  // columns here) — its real cost is that the columns are scattered
  // across the key space, which the page-access benches expose.
  EXPECT_EQ(decompose::ElementCountUV(composite, 33, 33), 66u);
  EXPECT_EQ(decompose::ElementCountUV(interleaved, 33, 33), 50u);
}

}  // namespace
}  // namespace probe::zorder
