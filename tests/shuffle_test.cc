#include "zorder/shuffle.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "zorder/curve.h"

namespace probe::zorder {
namespace {

TEST(ShuffleTest, PaperFigure4Example) {
  // Figure 4: [3, 5] -> (011, 101) -> 011011 = 27 on an 8x8 grid.
  const GridSpec grid{2, 3};
  const ZValue z = Shuffle2D(grid, 3, 5);
  EXPECT_EQ(z.ToString(), "011011");
  EXPECT_EQ(z.ToInteger(), 27u);
  EXPECT_EQ(ZRank2D(grid, 3, 5), 27u);
}

TEST(ShuffleTest, FirstBitComesFromX) {
  // The split alternates starting with a vertical split (discriminating on
  // x0), so the leading z bit is x's most significant bit.
  const GridSpec grid{2, 3};
  EXPECT_EQ(Shuffle2D(grid, 4, 0).ToString(), "100000");
  EXPECT_EQ(Shuffle2D(grid, 0, 4).ToString(), "010000");
}

TEST(ShuffleTest, RoundTrip2D) {
  const GridSpec grid{2, 5};
  for (uint32_t x = 0; x < grid.side(); ++x) {
    for (uint32_t y = 0; y < grid.side(); ++y) {
      const auto coords = Unshuffle(grid, Shuffle2D(grid, x, y));
      ASSERT_EQ(coords.size(), 2u);
      EXPECT_EQ(coords[0], x);
      EXPECT_EQ(coords[1], y);
    }
  }
}

class ShuffleDimsTest : public ::testing::TestWithParam<int> {};

TEST_P(ShuffleDimsTest, RoundTripRandomized) {
  const int dims = GetParam();
  const GridSpec grid{dims, 60 / dims >= 8 ? 8 : 60 / dims};
  util::Rng rng(17 + dims);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint32_t> coords(dims);
    for (int d = 0; d < dims; ++d) {
      coords[d] = static_cast<uint32_t>(rng.NextBelow(grid.side()));
    }
    const ZValue z = Shuffle(grid, coords);
    EXPECT_EQ(z.length(), grid.total_bits());
    EXPECT_EQ(Unshuffle(grid, z), coords);
  }
}

TEST_P(ShuffleDimsTest, RanksAreABijectionOnSmallGrids) {
  const int dims = GetParam();
  const GridSpec grid{dims, dims <= 3 ? 3 : 2};
  if (grid.total_bits() > 20) GTEST_SKIP();
  std::vector<bool> seen(grid.cell_count(), false);
  std::vector<uint32_t> coords(dims, 0);
  const uint32_t side = static_cast<uint32_t>(grid.side());
  // Odometer over all cells.
  for (;;) {
    const uint64_t rank = Shuffle(grid, coords).ToInteger();
    ASSERT_LT(rank, seen.size());
    EXPECT_FALSE(seen[rank]);
    seen[rank] = true;
    int axis = dims - 1;
    while (axis >= 0 && ++coords[axis] == side) coords[axis--] = 0;
    if (axis < 0) break;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

INSTANTIATE_TEST_SUITE_P(AllDims, ShuffleDimsTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(UnshuffleRegionTest, EmptyZValueIsWholeGrid) {
  const GridSpec grid{2, 3};
  const auto ranges = UnshuffleRegion(grid, ZValue());
  EXPECT_EQ(ranges[0], (DimRange{0, 7}));
  EXPECT_EQ(ranges[1], (DimRange{0, 7}));
}

TEST(UnshuffleRegionTest, PaperFigure2Element) {
  // Figure 2: element 001 covers X in [2,3] and Y in [0,3] on an 8x8 grid.
  const GridSpec grid{2, 3};
  const auto ranges = UnshuffleRegion(grid, *ZValue::Parse("001"));
  EXPECT_EQ(ranges[0], (DimRange{2, 3}));
  EXPECT_EQ(ranges[1], (DimRange{0, 3}));
}

TEST(UnshuffleRegionTest, SingleBitSplitsInX) {
  const GridSpec grid{2, 3};
  const auto left = UnshuffleRegion(grid, *ZValue::Parse("0"));
  EXPECT_EQ(left[0], (DimRange{0, 3}));
  EXPECT_EQ(left[1], (DimRange{0, 7}));
  const auto right = UnshuffleRegion(grid, *ZValue::Parse("1"));
  EXPECT_EQ(right[0], (DimRange{4, 7}));
  EXPECT_EQ(right[1], (DimRange{0, 7}));
}

TEST(ShuffleRegionTest, InverseOfUnshuffleRegion) {
  const GridSpec grid{2, 4};
  util::Rng rng(23);
  for (int trial = 0; trial < 400; ++trial) {
    const int len = static_cast<int>(rng.NextBelow(grid.total_bits() + 1));
    const ZValue z = ZValue::FromInteger(rng.Next(), len);
    const auto ranges = UnshuffleRegion(grid, z);
    EXPECT_TRUE(IsElementRegion(grid, ranges));
    EXPECT_EQ(ShuffleRegion(grid, ranges), z) << z.ToString();
  }
}

TEST(ShuffleRegionTest, RejectsNonElementRegions) {
  const GridSpec grid{2, 3};
  // A 3-cell-wide strip is not a power-of-two block.
  const DimRange bad1[2] = {{0, 2}, {0, 3}};
  EXPECT_FALSE(IsElementRegion(grid, bad1));
  // Misaligned block.
  const DimRange bad2[2] = {{1, 2}, {0, 7}};
  EXPECT_FALSE(IsElementRegion(grid, bad2));
  // Wrong split schedule: a half-height block must first split in x, so a
  // full-width half-height region is not an element in the x-first order.
  const DimRange bad3[2] = {{0, 7}, {0, 3}};
  EXPECT_FALSE(IsElementRegion(grid, bad3));
  // The legitimate first split: half-width, full height.
  const DimRange good[2] = {{0, 3}, {0, 7}};
  EXPECT_TRUE(IsElementRegion(grid, good));
}

TEST(CurveTest, WalkVisitsNeighborsInNPattern) {
  // The first four cells of the 2-d z curve form the "N" shape of
  // Figure 4: (0,0), (0,1), (1,0), (1,1).
  const GridSpec grid{2, 2};
  const auto walk = ZCurveWalk(grid);
  ASSERT_EQ(walk.size(), 16u);
  EXPECT_EQ(walk[0], (std::vector<uint32_t>{0, 0}));
  EXPECT_EQ(walk[1], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(walk[2], (std::vector<uint32_t>{1, 0}));
  EXPECT_EQ(walk[3], (std::vector<uint32_t>{1, 1}));
}

TEST(CurveTest, DistancesMatchCoordinates) {
  const GridSpec grid{2, 4};
  const uint64_t a = ZRank2D(grid, 3, 5);
  const uint64_t b = ZRank2D(grid, 7, 2);
  EXPECT_EQ(ManhattanDistance(grid, a, b), 7u);
  EXPECT_EQ(ChebyshevDistance(grid, a, b), 4u);
  EXPECT_EQ(ManhattanDistance(grid, a, a), 0u);
}

}  // namespace
}  // namespace probe::zorder
