// Boundary-condition tests across the stack: extreme grids, degenerate
// queries, duplicate-heavy data, corners of the coordinate space.

#include <algorithm>

#include <gtest/gtest.h>

#include "decompose/decomposer.h"
#include "geometry/primitives.h"
#include "index/nearest.h"
#include "index/object_index.h"
#include "index/zkd_index.h"
#include "query/executor.h"
#include "query/plan.h"
#include "relational/catalog.h"
#include "relational/relation.h"
#include "util/rng.h"
#include "zorder/shuffle.h"

namespace probe {
namespace {

using geometry::BoxObject;
using geometry::GridBox;
using geometry::GridPoint;
using index::PointRecord;
using index::ZkdIndex;
using zorder::GridSpec;
using zorder::ZValue;

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(EdgeCaseTest, NearMaximumGridWidth) {
  // 2 x 31 bits = 62-bit keys: close to the 64-bit ceiling.
  const GridSpec grid{2, 31};
  ASSERT_TRUE(grid.Valid());
  util::Rng rng(8000);
  for (int t = 0; t < 200; ++t) {
    const uint32_t x = static_cast<uint32_t>(rng.Next()) & 0x7FFFFFFF;
    const uint32_t y = static_cast<uint32_t>(rng.Next()) & 0x7FFFFFFF;
    const ZValue z = Shuffle2D(grid, x, y);
    EXPECT_EQ(z.length(), 62);
    const auto coords = Unshuffle(grid, z);
    EXPECT_EQ(coords[0], x);
    EXPECT_EQ(coords[1], y);
  }

  // A small index on the huge grid still answers queries.
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 16);
  ZkdIndex index(grid, &pool);
  const uint32_t max = 0x7FFFFFFF;
  index.Insert(GridPoint({0, 0}), 1);
  index.Insert(GridPoint({max, max}), 2);
  index.Insert(GridPoint({max / 2, max / 2}), 3);
  EXPECT_EQ(Sorted(index.RangeSearch(GridBox::Make2D(0, max, 0, max))),
            (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(Sorted(index.RangeSearch(GridBox::Make2D(max, max, max, max))),
            (std::vector<uint64_t>{2}));
}

TEST(EdgeCaseTest, EightDimensions) {
  const GridSpec grid{8, 8};  // the dimensional ceiling, 64-bit keys... 8*8=64
  ASSERT_TRUE(grid.Valid());
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 16);
  util::Rng rng(8100);
  std::vector<PointRecord> points;
  for (uint64_t i = 0; i < 300; ++i) {
    std::vector<uint32_t> coords(8);
    for (int d = 0; d < 8; ++d) {
      coords[d] = static_cast<uint32_t>(rng.NextBelow(256));
    }
    points.push_back({GridPoint(std::span<const uint32_t>(coords)), i});
  }
  auto index = ZkdIndex::Build(grid, &pool, points);
  // A thick slab query through all dimensions.
  std::vector<zorder::DimRange> ranges(8, zorder::DimRange{0, 255});
  ranges[3] = {64, 191};
  const GridBox box{std::span<const zorder::DimRange>(ranges)};
  auto got = Sorted(index.RangeSearch(box));
  std::vector<uint64_t> expect;
  for (const auto& r : points) {
    if (r.point[3] >= 64 && r.point[3] <= 191) expect.push_back(r.id);
  }
  EXPECT_EQ(got, expect);
}

TEST(EdgeCaseTest, WholeSpaceAndSingleCellQueries) {
  const GridSpec grid{2, 6};
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 16);
  util::Rng rng(8200);
  std::vector<PointRecord> points;
  for (uint64_t i = 0; i < 300; ++i) {
    points.push_back({GridPoint({static_cast<uint32_t>(rng.NextBelow(64)),
                                 static_cast<uint32_t>(rng.NextBelow(64))}),
                      i});
  }
  auto index = ZkdIndex::Build(grid, &pool, points);

  for (const auto merge :
       {index::SearchOptions::Merge::kSkipMerge,
        index::SearchOptions::Merge::kPlainMerge,
        index::SearchOptions::Merge::kBigMin}) {
    index::SearchOptions options;
    options.merge = merge;
    // The whole space returns everything.
    EXPECT_EQ(
        index.RangeSearch(GridBox::Make2D(0, 63, 0, 63), nullptr, options)
            .size(),
        points.size());
    // Corner cells.
    for (const auto& [cx, cy] : {std::pair<uint32_t, uint32_t>{0, 0},
                                 {63, 63},
                                 {0, 63},
                                 {63, 0}}) {
      auto got = Sorted(
          index.RangeSearch(GridBox::Make2D(cx, cx, cy, cy), nullptr, options));
      std::vector<uint64_t> expect;
      for (const auto& r : points) {
        if (r.point[0] == cx && r.point[1] == cy) expect.push_back(r.id);
      }
      EXPECT_EQ(got, expect);
    }
    // One-row and one-column strips at the edges.
    EXPECT_EQ(index.RangeSearch(GridBox::Make2D(0, 63, 63, 63), nullptr,
                                options)
                  .size(),
              static_cast<size_t>(std::count_if(
                  points.begin(), points.end(),
                  [](const PointRecord& r) { return r.point[1] == 63; })));
  }
}

TEST(EdgeCaseTest, AllPointsIdentical) {
  const GridSpec grid{2, 8};
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 32);
  btree::BTreeConfig config;
  config.leaf_capacity = 20;
  std::vector<PointRecord> points;
  for (uint64_t i = 0; i < 1000; ++i) {
    points.push_back({GridPoint({100, 100}), i});
  }
  auto index = ZkdIndex::Build(grid, &pool, points, config);
  EXPECT_EQ(index.RangeSearch(GridBox::Make2D(100, 100, 100, 100)).size(),
            1000u);
  EXPECT_TRUE(index.RangeSearch(GridBox::Make2D(101, 101, 100, 100)).empty());
  // k-NN over a degenerate dataset.
  const auto nn = KNearest(index, GridPoint({0, 0}), 3);
  ASSERT_EQ(nn.size(), 3u);
  EXPECT_EQ(nn[0].distance2, 2ull * 100 * 100);
  // Deletes of duplicates remove exactly one entry each.
  EXPECT_TRUE(index.Delete(GridPoint({100, 100}), 0));
  EXPECT_TRUE(index.Delete(GridPoint({100, 100}), 999));
  EXPECT_FALSE(index.Delete(GridPoint({100, 100}), 999));
  EXPECT_EQ(index.size(), 998u);
  EXPECT_TRUE(index.tree().CheckInvariants());
}

TEST(EdgeCaseTest, OneDimensionalGrid) {
  const GridSpec grid{1, 12};
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 16);
  ZkdIndex index(grid, &pool);
  for (uint64_t i = 0; i < 500; ++i) {
    index.Insert(GridPoint({static_cast<uint32_t>(i * 7 % 4096)}), i);
  }
  const zorder::DimRange range[1] = {{100, 300}};
  auto got = index.RangeSearch(GridBox{range});
  size_t expect = 0;
  for (uint64_t i = 0; i < 500; ++i) {
    const uint32_t x = static_cast<uint32_t>(i * 7 % 4096);
    if (x >= 100 && x <= 300) ++expect;
  }
  EXPECT_EQ(got.size(), expect);
}

TEST(EdgeCaseTest, ObjectIndexWholeSpaceObjectAndProbe) {
  const GridSpec grid{2, 5};
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 16);
  index::ZkdObjectIndex objects(grid, &pool);
  objects.Insert(1, BoxObject(GridBox::Make2D(0, 31, 0, 31)));  // whole space
  objects.Insert(2, BoxObject(GridBox::Make2D(5, 6, 5, 6)));
  // Whole-space probe overlaps everything and contains everything.
  EXPECT_EQ(Sorted(objects.QueryBox(GridBox::Make2D(0, 31, 0, 31))),
            (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(objects.QueryContained(GridBox::Make2D(0, 31, 0, 31)),
            (std::vector<uint64_t>{1, 2}));
  // A tiny probe still finds the whole-space object via ancestors.
  EXPECT_EQ(Sorted(objects.QueryBox(GridBox::Make2D(20, 20, 3, 3))),
            (std::vector<uint64_t>{1}));
}

TEST(EdgeCaseTest, SinglePointRangesThroughEveryMerge) {
  // A zero-extent query box (lo == hi in every dimension) through each
  // merge strategy, probing both an occupied and an empty cell.
  const GridSpec grid{3, 4};
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 16);
  ZkdIndex index(grid, &pool);
  index.Insert(GridPoint({3, 7, 11}), 42);
  index.Insert(GridPoint({3, 7, 12}), 43);
  for (const auto merge :
       {index::SearchOptions::Merge::kSkipMerge,
        index::SearchOptions::Merge::kPlainMerge,
        index::SearchOptions::Merge::kBigMin}) {
    index::SearchOptions options;
    options.merge = merge;
    EXPECT_EQ(index.RangeSearch(GridBox::Make3D(3, 3, 7, 7, 11, 11), nullptr,
                                options),
              (std::vector<uint64_t>{42}));
    EXPECT_TRUE(index.RangeSearch(GridBox::Make3D(3, 3, 7, 7, 13, 13),
                                  nullptr, options)
                    .empty());
  }
}

TEST(EdgeCaseTest, MaxDepthDecompositions) {
  const GridSpec grid{2, 5};
  const geometry::BallObject ball({16.0, 16.0}, 9.5);

  // Depth 0: one boundary-crossing region — the whole space — so the cover
  // is everything (boundary in) or nothing (boundary out).
  decompose::DecomposeOptions coarse;
  coarse.max_depth = 0;
  const auto whole = decompose::Decompose(grid, ball, coarse);
  ASSERT_EQ(whole.size(), 1u);
  EXPECT_TRUE(whole[0].IsEmpty());
  coarse.include_boundary = false;
  EXPECT_TRUE(decompose::Decompose(grid, ball, coarse).empty());

  // A cap at exactly total_bits is the same as no cap at all.
  decompose::DecomposeOptions capped;
  capped.max_depth = grid.total_bits();
  EXPECT_EQ(decompose::Decompose(grid, ball, capped),
            decompose::Decompose(grid, ball));

  // Tightening the cap one bit at a time never grows the element count
  // beyond the cap's budget and keeps the bracket property.
  const uint64_t exact = decompose::CoveredVolume(
      grid, decompose::Decompose(grid, ball));
  for (int depth = 0; depth <= grid.total_bits(); ++depth) {
    decompose::DecomposeOptions outer;
    outer.max_depth = depth;
    decompose::DecomposeOptions inner = outer;
    inner.include_boundary = false;
    EXPECT_LE(decompose::CoveredVolume(
                  grid, decompose::Decompose(grid, ball, inner)),
              exact);
    EXPECT_GE(decompose::CoveredVolume(
                  grid, decompose::Decompose(grid, ball, outer)),
              exact);
  }
}

TEST(EdgeCaseTest, EmptyRelationsThroughEveryPlanNode) {
  using relational::Column;
  using relational::Relation;
  using relational::Schema;
  using relational::ValueType;

  const GridSpec grid{2, 6};
  relational::ObjectCatalog catalog;
  const Relation empty(
      Schema({Column{"id", ValueType::kInt}}));

  // RelationScan over an empty relation yields nothing.
  {
    auto scan = query::MakeRelationScan(empty);
    EXPECT_EQ(query::Execute(*scan).rows.size(), 0u);
  }
  // EmptyResult is, by construction, empty.
  {
    auto node = query::MakeEmptyResult(empty.schema());
    EXPECT_EQ(query::Execute(*node).rows.size(), 0u);
  }
  // Decompose of zero objects yields zero elements.
  {
    auto plan = query::MakeDecompose(query::MakeRelationScan(empty), grid,
                                     "id", catalog, "z", {});
    const auto result = query::Execute(*plan);
    EXPECT_EQ(result.rows.size(), 0u);
    EXPECT_EQ(result.rows.schema().column_count(), 2);
  }
  // A merge join with one (or both) empty inputs yields no pairs — via
  // both the serial and the parallel implementation.
  {
    const Relation z_empty(Schema({Column{"za", ValueType::kZValue}}));
    const Relation z_empty2(Schema({Column{"zb", ValueType::kZValue}}));
    Relation z_one(Schema({Column{"zb", ValueType::kZValue}}));
    z_one.Add({relational::Value(ZValue::FromInteger(0b01, 2))});

    auto serial = query::MakeMergeJoin(
        query::MakeRelationScan(z_empty), query::MakeRelationScan(z_one),
        "za", "zb", nullptr, 0);
    EXPECT_EQ(query::Execute(*serial).rows.size(), 0u);

    util::ThreadPool pool(2);
    auto parallel = query::MakeMergeJoin(
        query::MakeRelationScan(z_empty), query::MakeRelationScan(z_empty2),
        "za", "zb", &pool, 4);
    EXPECT_EQ(query::Execute(*parallel).rows.size(), 0u);
  }
  // Filter, Project, and Limit over empty children.
  {
    auto filtered = query::MakeFilter(query::MakeRelationScan(empty),
                                      [](const relational::Tuple&) {
                                        return true;
                                      });
    EXPECT_EQ(query::Execute(*filtered).rows.size(), 0u);

    auto projected = query::MakeProject(query::MakeRelationScan(empty),
                                        {"id"}, /*deduplicate=*/true);
    EXPECT_EQ(query::Execute(*projected).rows.size(), 0u);

    auto limited =
        query::MakeLimit(query::MakeRelationScan(empty), /*limit=*/5);
    EXPECT_EQ(query::Execute(*limited).rows.size(), 0u);
  }
  // An index range scan over an empty index, streamed and materialized.
  {
    storage::MemPager pager;
    storage::BufferPool pool(&pager, 16);
    ZkdIndex index(grid, &pool);
    auto scan = query::MakeZkdRangeScan(index, GridBox::Make2D(0, 63, 0, 63),
                                        {}, nullptr, 0);
    EXPECT_TRUE(query::ExecuteIds(*scan).empty());
  }
}

TEST(EdgeCaseTest, DecomposeDegenerateBoxes) {
  const GridSpec grid{2, 6};
  // Single row, single column, single cell at each corner.
  for (const auto& box :
       {GridBox::Make2D(0, 63, 0, 0), GridBox::Make2D(63, 63, 0, 63),
        GridBox::Make2D(0, 0, 0, 0), GridBox::Make2D(63, 63, 63, 63)}) {
    const auto elements = decompose::DecomposeBox(grid, box);
    uint64_t covered = 0;
    for (const auto& e : elements) {
      covered += 1ULL << (grid.total_bits() - e.length());
    }
    EXPECT_EQ(covered, box.Volume()) << box.ToString();
  }
}

}  // namespace
}  // namespace probe
