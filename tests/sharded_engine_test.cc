#include "server/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "index/durable_index.h"
#include "storage/wal.h"
#include "temp_file.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"
#include "workload/querygen.h"

// The ShardedEngine's load-bearing promise: scatter-gather answers are
// *bitwise identical* to a single engine holding all the points —
// element for element, in the same order — across the paper's U/C/D
// distributions, for RANGE, BOX (rows), COUNT, and k-NN, including with a
// depth-capped search, and including after one shard's WAL is killed
// mid-batch and recovered.

namespace probe::server {
namespace {

using geometry::GridBox;
using geometry::GridPoint;
using index::DurableIndex;
using probe::util::Rng;
using workload::DataGenConfig;
using workload::Distribution;

constexpr zorder::GridSpec kGrid{2, 8};

// Removes the per-shard database files TempFile's own cleanup does not
// know about.
class ShardFiles {
 public:
  ShardFiles(std::string prefix, int shards)
      : prefix_(std::move(prefix)), shards_(shards) {
    Remove();
  }
  ~ShardFiles() { Remove(); }

  const std::string& prefix() const { return prefix_; }

 private:
  void Remove() {
    for (int i = 0; i < shards_; ++i) {
      const std::string base = ShardedEngine::ShardPath(prefix_, i);
      std::remove(base.c_str());
      std::remove((base + ".wal").c_str());
      std::remove((base + ".wal.tmp").c_str());
    }
  }

  std::string prefix_;
  int shards_;
};

std::vector<DurableIndex::Op> InsertOps(
    const std::vector<index::PointRecord>& points) {
  std::vector<DurableIndex::Op> ops;
  ops.reserve(points.size());
  for (const auto& r : points) ops.push_back(DurableIndex::Op::Insert(r.point, r.id));
  return ops;
}

std::vector<index::PointRecord> Points(Distribution d, size_t count,
                                       uint64_t seed) {
  DataGenConfig config;
  config.distribution = d;
  config.count = count;
  config.seed = seed;
  return workload::GeneratePoints(kGrid, config);
}

void ExpectIdentical(const ShardedEngine& sharded, const ShardedEngine& single,
                     const GridBox& box) {
  // RANGE: same ids in the same (z) order.
  EXPECT_EQ(sharded.RangeSearch(box), single.RangeSearch(box)) << box.ToString();

  // BOX rows: same (id, point) pairs in the same order.
  const auto sharded_rows = sharded.RangeSearchRows(box);
  const auto single_rows = single.RangeSearchRows(box);
  ASSERT_EQ(sharded_rows.size(), single_rows.size()) << box.ToString();
  for (size_t i = 0; i < sharded_rows.size(); ++i) {
    EXPECT_EQ(sharded_rows[i].id, single_rows[i].id);
    EXPECT_EQ(sharded_rows[i].point, single_rows[i].point);
  }

  // COUNT: aggregate pushdown sums to the same total.
  EXPECT_EQ(sharded.CountBox(box), single.CountBox(box)) << box.ToString();

  // Depth-capped search (the session override path) stays exact too.
  index::SearchOptions capped;
  capped.max_element_depth = 8;
  EXPECT_EQ(sharded.RangeSearch(box, nullptr, capped),
            single.RangeSearch(box, nullptr, capped))
      << box.ToString() << " depth-capped";
}

class ShardedEngineIdentityTest
    : public ::testing::TestWithParam<Distribution> {};

TEST_P(ShardedEngineIdentityTest, MatchesSingleShardBitwise) {
  testutil::TempFile tmp_sharded("sharded_multi");
  testutil::TempFile tmp_single("sharded_single");
  ShardFiles multi_files(tmp_sharded.path(), 4);
  ShardFiles single_files(tmp_single.path(), 1);
  util::ThreadPool pool(4);

  ShardedEngineOptions multi;
  multi.shards = 4;
  multi.truncate = true;
  ShardedEngineOptions one;
  one.shards = 1;
  one.truncate = true;

  ShardedEngine sharded(kGrid, multi_files.prefix(), multi, &pool);
  ShardedEngine single(kGrid, single_files.prefix(), one, &pool);
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE(single.ok());

  const auto points = Points(GetParam(), 3000, 42);
  const auto ops = InsertOps(points);
  ASSERT_TRUE(sharded.Apply(ops));
  ASSERT_TRUE(single.Apply(ops));
  EXPECT_EQ(sharded.size(), single.size());

  Rng rng(7);
  std::vector<GridBox> boxes;
  for (const double volume : {0.001, 0.01, 0.1}) {
    for (const auto& b :
         workload::MakeQueryBoxes2D(kGrid, volume, 2.0, 5, rng)) {
      boxes.push_back(b);
    }
  }
  boxes.push_back(GridBox::Make2D(0, 255, 0, 255));  // everything
  boxes.push_back(GridBox::Make2D(17, 17, 99, 99));  // a single cell

  for (const auto& box : boxes) ExpectIdentical(sharded, single, box);

  // k-NN: same neighbors in the same (distance, id) order.
  for (int i = 0; i < 10; ++i) {
    const GridPoint center({static_cast<uint32_t>(rng.NextBelow(256)),
                            static_cast<uint32_t>(rng.NextBelow(256))});
    const auto a = sharded.KNearest(center, 10);
    const auto b = single.KNearest(center, 10);
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].id, b[j].id);
      EXPECT_EQ(a[j].distance2, b[j].distance2);
    }
  }

  // Deletes route like inserts; identity must survive them.
  std::vector<DurableIndex::Op> deletes;
  for (size_t i = 0; i < points.size(); i += 3) {
    deletes.push_back(DurableIndex::Op::Delete(points[i].point, points[i].id));
  }
  ASSERT_TRUE(sharded.Apply(deletes));
  ASSERT_TRUE(single.Apply(deletes));
  for (const auto& box : boxes) ExpectIdentical(sharded, single, box);
}

INSTANTIATE_TEST_SUITE_P(Workloads, ShardedEngineIdentityTest,
                         ::testing::Values(Distribution::kUniform,
                                           Distribution::kClustered,
                                           Distribution::kDiagonal),
                         [](const auto& info) {
                           return workload::DistributionName(info.param);
                         });

TEST(ShardedEngineTest, RoutingPartitionsTheZSpace) {
  testutil::TempFile tmp("sharded_routing");
  ShardFiles files(tmp.path(), 5);
  util::ThreadPool pool(2);
  ShardedEngineOptions options;
  options.shards = 5;  // deliberately not a power of two
  options.truncate = true;
  ShardedEngine engine(kGrid, files.prefix(), options, &pool);
  ASSERT_TRUE(engine.ok());

  // The shard intervals tile [0, 2^16) contiguously...
  EXPECT_EQ(engine.ShardZRange(0).first, 0u);
  EXPECT_EQ(engine.ShardZRange(4).second, 0xFFFFu);
  for (int s = 0; s + 1 < 5; ++s) {
    EXPECT_EQ(engine.ShardZRange(s).second + 1,
              engine.ShardZRange(s + 1).first);
  }
  // ...and ShardOf agrees with the interval ends.
  for (int s = 0; s < 5; ++s) {
    const auto [lo, hi] = engine.ShardZRange(s);
    EXPECT_EQ(engine.ShardOf(lo), s);
    EXPECT_EQ(engine.ShardOf(hi), s);
  }
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t z = rng.NextBelow(0x10000);
    const int s = engine.ShardOf(z);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 5);
    const auto [lo, hi] = engine.ShardZRange(s);
    EXPECT_GE(z, lo);
    EXPECT_LE(z, hi);
  }
}

TEST(ShardedEngineTest, PointsLandOnTheirOwnShard) {
  testutil::TempFile tmp("sharded_placement");
  ShardFiles files(tmp.path(), 4);
  util::ThreadPool pool(4);
  ShardedEngineOptions options;
  options.shards = 4;
  options.truncate = true;
  ShardedEngine engine(kGrid, files.prefix(), options, &pool);
  ASSERT_TRUE(engine.ok());

  const auto points = Points(Distribution::kUniform, 1000, 11);
  ASSERT_TRUE(engine.Apply(InsertOps(points)));

  const auto everything = GridBox::Make2D(0, 255, 0, 255);
  for (int s = 0; s < 4; ++s) {
    const auto [zlo, zhi] = engine.ShardZRange(s);
    const auto ids = engine.shard(s).index().RangeSearch(everything);
    std::set<uint64_t> on_shard(ids.begin(), ids.end());
    for (const auto& r : points) {
      const uint64_t z = engine.ZOf(r.point);
      EXPECT_EQ(on_shard.count(r.id) != 0, z >= zlo && z <= zhi)
          << "id " << r.id << " z " << z << " shard " << s;
    }
  }
}

TEST(ShardedEngineTest, ValidationRejectsWrongDimsAndOutOfGrid) {
  testutil::TempFile tmp("sharded_validate");
  ShardFiles files(tmp.path(), 2);
  util::ThreadPool pool(2);
  ShardedEngineOptions options;
  options.shards = 2;
  options.truncate = true;
  ShardedEngine engine(kGrid, files.prefix(), options, &pool);
  ASSERT_TRUE(engine.ok());

  EXPECT_TRUE(engine.ValidBox(GridBox::Make2D(0, 255, 0, 255)));
  EXPECT_FALSE(engine.ValidBox(GridBox::Make2D(0, 256, 0, 255)));  // off-grid
  const uint32_t coords3[] = {1, 2, 3};
  const zorder::DimRange ranges3[] = {{0, 1}, {0, 1}, {0, 1}};
  EXPECT_FALSE(
      engine.ValidBox(GridBox(std::span<const zorder::DimRange>(ranges3, 3))));
  EXPECT_TRUE(engine.ValidPoint(GridPoint({255, 255})));
  EXPECT_FALSE(engine.ValidPoint(GridPoint({256, 0})));
  EXPECT_FALSE(
      engine.ValidPoint(GridPoint(std::span<const uint32_t>(coords3, 3))));
}

TEST(ShardedEngineTest, KillAndRecoverOneShardKeepsIdentity) {
  testutil::TempFile tmp("sharded_kill");
  testutil::TempFile tmp_ref("sharded_kill_ref");
  ShardFiles files(tmp.path(), 4);
  ShardFiles ref_files(tmp_ref.path(), 1);
  util::ThreadPool pool(4);

  ShardedEngineOptions options;
  options.shards = 4;

  const auto batch1 = InsertOps(Points(Distribution::kClustered, 2000, 99));
  const auto batch2 = InsertOps(Points(Distribution::kUniform, 500, 100));
  const int victim = 2;

  {
    options.truncate = true;
    ShardedEngine engine(kGrid, files.prefix(), options, &pool);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine.Apply(batch1));

    // Arm the victim shard's WAL to tear a few records into the next
    // batch's flush, then apply a batch that touches every shard.
    auto& wal = engine.shard(victim).wal();
    wal.SetFaultPlan(
        {.fail_after_records = wal.stats().records + 3, .tear_bytes = 257});
    EXPECT_FALSE(engine.Apply(batch2));
  }

  // Reopen: per-shard recovery truncates the victim's torn tail.
  options.truncate = false;
  ShardedEngine engine(kGrid, files.prefix(), options, &pool);
  ASSERT_TRUE(engine.ok());

  const auto everything = GridBox::Make2D(0, 255, 0, 255);

  // The victim shard lost exactly the uncommitted batch: its contents are
  // batch1's points routed to it, nothing more, nothing less.
  {
    std::set<uint64_t> expect;
    const auto [zlo, zhi] = engine.ShardZRange(victim);
    for (const auto& op : batch1) {
      const uint64_t z = engine.ZOf(op.point);
      if (z >= zlo && z <= zhi) expect.insert(op.id);
    }
    const auto got_ids = engine.shard(victim).index().RangeSearch(everything);
    EXPECT_EQ(std::set<uint64_t>(got_ids.begin(), got_ids.end()), expect);
  }

  // Every shard holds batch1's share plus either all or none of batch2's
  // share (per-shard batch atomicity).
  for (int s = 0; s < 4; ++s) {
    const auto [zlo, zhi] = engine.ShardZRange(s);
    std::set<uint64_t> base;
    std::set<uint64_t> extra;
    for (const auto& op : batch1) {
      const uint64_t z = engine.ZOf(op.point);
      if (z >= zlo && z <= zhi) base.insert(op.id);
    }
    for (const auto& op : batch2) {
      const uint64_t z = engine.ZOf(op.point);
      if (z >= zlo && z <= zhi) extra.insert(op.id);
    }
    const auto got_ids = engine.shard(s).index().RangeSearch(everything);
    const std::set<uint64_t> got(got_ids.begin(), got_ids.end());
    std::set<uint64_t> with_batch2 = base;
    with_batch2.insert(extra.begin(), extra.end());
    EXPECT_TRUE(got == base || got == with_batch2) << "shard " << s;
  }

  // Scatter-gather over the recovered engine is still bitwise identical to
  // a single engine loaded with exactly the surviving records.
  const auto survivors = engine.RangeSearchRows(everything);
  std::vector<DurableIndex::Op> rebuild;
  rebuild.reserve(survivors.size());
  for (const auto& row : survivors) {
    rebuild.push_back(DurableIndex::Op::Insert(row.point, row.id));
  }
  ShardedEngineOptions ref_options;
  ref_options.shards = 1;
  ref_options.truncate = true;
  ShardedEngine reference(kGrid, ref_files.prefix(), ref_options, &pool);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(reference.Apply(rebuild));

  Rng rng(13);
  for (const auto& box : workload::MakeQueryBoxes2D(kGrid, 0.05, 1.0, 8, rng)) {
    ExpectIdentical(engine, reference, box);
  }
  ExpectIdentical(engine, reference, everything);

  // The recovered engine accepts new batches.
  EXPECT_TRUE(engine.Apply(InsertOps(Points(Distribution::kDiagonal, 50, 5))));
  EXPECT_TRUE(engine.Checkpoint());
}

TEST(ShardedEngineTest, ReopenAfterCheckpointPreservesContents) {
  testutil::TempFile tmp("sharded_reopen");
  ShardFiles files(tmp.path(), 3);
  util::ThreadPool pool(3);
  ShardedEngineOptions options;
  options.shards = 3;

  const auto points = Points(Distribution::kDiagonal, 1000, 21);
  std::vector<uint64_t> before;
  {
    options.truncate = true;
    ShardedEngine engine(kGrid, files.prefix(), options, &pool);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine.Apply(InsertOps(points)));
    ASSERT_TRUE(engine.Checkpoint());
    before = engine.RangeSearch(GridBox::Make2D(0, 255, 0, 255));
  }
  options.truncate = false;
  ShardedEngine engine(kGrid, files.prefix(), options, &pool);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine.RangeSearch(GridBox::Make2D(0, 255, 0, 255)), before);
  EXPECT_EQ(engine.size(), points.size());
}

// Checkpoint is documented safe to overlap with queries and writers.
// The hazard this pins down: a shard's checkpoint drains that shard's
// snapshot pins while CreateView pins shards one by one, so two shards
// draining at once can cycle (view A pins shard 0 and blocks at shard
// 1's drain, view B pins shard 1 and blocks at shard 0's drain, each
// drain waiting on the other view's pin). Checkpoint serializes its
// drains to break the cycle; this storm — view-creating readers, an
// epoch-advancing writer, and two concurrent checkpointers — deadlocks
// (hangs the test) if that ever regresses. The reader churn also
// exercises dropping the last reference to a stale cached snapshot while
// another thread is inside CreateSnapshot.
TEST(ShardedEngineTest, CheckpointsOverlapQueriesAndWritesWithoutDeadlock) {
  testutil::TempFile tmp("sharded_ckpt_overlap");
  ShardFiles files(tmp.path(), 4);
  util::ThreadPool pool(4);
  ShardedEngineOptions options;
  options.shards = 4;
  options.truncate = true;
  ShardedEngine engine(kGrid, files.prefix(), options, &pool);
  ASSERT_TRUE(engine.ok());

  const auto points = Points(Distribution::kUniform, 2000, 99);
  ASSERT_TRUE(engine.Apply(InsertOps(points)));

  const GridBox everything = GridBox::Make2D(0, 255, 0, 255);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writer_batches{0};
  constexpr size_t kBatch = 8;

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&engine, &everything, &stop] {
      while (!stop.load()) {
        const ShardedEngine::View view = engine.CreateView();
        // Each shard snapshot is internally consistent, so a full-space
        // scan over the view must account for exactly its pinned sizes.
        EXPECT_EQ(view.RangeSearch(everything).size(), view.size());
        EXPECT_EQ(view.CountBox(everything), view.size());
      }
    });
  }

  std::thread writer([&engine, &stop, &writer_batches] {
    Rng rng(1234);
    uint64_t next_id = 1'000'000;
    while (!stop.load()) {
      std::vector<DurableIndex::Op> ops;
      for (size_t i = 0; i < kBatch; ++i) {
        const GridPoint p({static_cast<uint32_t>(rng.NextBelow(256)),
                           static_cast<uint32_t>(rng.NextBelow(256))});
        ops.push_back(DurableIndex::Op::Insert(p, next_id++));
      }
      if (!engine.Apply(ops)) {
        ADD_FAILURE() << "concurrent Apply failed";
        break;
      }
      writer_batches.fetch_add(1);
    }
  });

  std::vector<std::thread> checkpointers;
  for (int c = 0; c < 2; ++c) {
    checkpointers.emplace_back([&engine] {
      for (int i = 0; i < 10; ++i) EXPECT_TRUE(engine.Checkpoint());
    });
  }

  for (auto& t : checkpointers) t.join();
  stop.store(true);
  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(engine.CountBox(everything),
            points.size() + writer_batches.load() * kBatch);
}

}  // namespace
}  // namespace probe::server
