// Positive control for guarded_by_violation.cc: the same class with the
// lock held everywhere. This file MUST compile under -Wthread-safety
// -Werror=thread-safety (and under gcc, where the annotations are
// no-ops) — if it doesn't, the gate is rejecting correct code and the
// negative result next door proves nothing.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    probe::util::MutexLock lock(&mutex_);
    balance_ += amount;
  }

  int balance() const {
    probe::util::MutexLock lock(&mutex_);
    return balance_;
  }

 private:
  mutable probe::util::Mutex mutex_;
  int balance_ PROBE_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.balance() == 1 ? 0 : 1;
}
