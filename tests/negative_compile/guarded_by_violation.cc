// Negative-compile probe: reads and writes a PROBE_GUARDED_BY member
// without holding its mutex. Under clang with -Wthread-safety
// -Werror=thread-safety this file MUST NOT compile — if it ever does, the
// thread-safety gate is dead (wrong flags, broken macros) and the
// configure step in CMakeLists.txt aborts the build.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    balance_ += amount;  // BUG on purpose: mutex_ not held
  }

  int balance() const {
    return balance_;  // BUG on purpose: mutex_ not held
  }

 private:
  mutable probe::util::Mutex mutex_;
  int balance_ PROBE_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.balance();
}
