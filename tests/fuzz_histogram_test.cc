// Histogram fuzz: random record/merge sequences checked against a naive
// std::map oracle. The histogram's wait-free bucket RMWs must classify
// exactly like the oracle's linear scan — bucket boundaries (Prometheus
// upper-inclusive `le`), the +Inf catch-all, sums, counts, cumulative
// form, and snapshot merging all have to agree on every sequence.
//
// Joins the `fuzz` ctest label alongside the recovery and z-order fuzzers.

#include <cmath>
#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace probe::obs {
namespace {

/// The oracle: classification by linear scan over a sorted bound list.
class OracleHistogram {
 public:
  explicit OracleHistogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)) {}

  void Observe(double value) {
    sum_ += value;
    ++count_;
    for (const double bound : bounds_) {
      if (value <= bound) {
        ++by_bound_[bound];
        return;
      }
    }
    ++overflow_;
  }

  void MergeFrom(const OracleHistogram& other) {
    sum_ += other.sum_;
    count_ += other.count_;
    overflow_ += other.overflow_;
    for (const auto& [bound, n] : other.by_bound_) by_bound_[bound] += n;
  }

  std::vector<uint64_t> Counts() const {
    std::vector<uint64_t> out;
    out.reserve(bounds_.size() + 1);
    for (const double bound : bounds_) {
      const auto it = by_bound_.find(bound);
      out.push_back(it == by_bound_.end() ? 0 : it->second);
    }
    out.push_back(overflow_);
    return out;
  }

  double sum() const { return sum_; }
  uint64_t count() const { return count_; }

 private:
  std::vector<double> bounds_;
  std::map<double, uint64_t> by_bound_;
  uint64_t overflow_ = 0;
  double sum_ = 0.0;
  uint64_t count_ = 0;
};

std::vector<double> RandomBounds(std::mt19937* rng) {
  std::uniform_int_distribution<int> count_dist(0, 8);
  std::uniform_real_distribution<double> step_dist(0.001, 50.0);
  const int n = count_dist(*rng);
  std::vector<double> bounds;
  double bound = 0.0;
  for (int i = 0; i < n; ++i) {
    bound += step_dist(*rng);
    bounds.push_back(bound);
  }
  return bounds;
}

void ExpectMatchesOracle(const HistogramSnapshot& snap,
                         const OracleHistogram& oracle, uint32_t seed) {
  const std::vector<uint64_t> want = oracle.Counts();
  ASSERT_EQ(snap.counts.size(), want.size()) << "seed " << seed;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(snap.counts[i], want[i]) << "bucket " << i << ", seed " << seed;
  }
  EXPECT_EQ(snap.count, oracle.count()) << "seed " << seed;
  // Sums accumulate in different orders; allow relative FP slack.
  const double tolerance =
      1e-9 * std::max(1.0, std::abs(oracle.sum()));
  EXPECT_NEAR(snap.sum, oracle.sum(), tolerance) << "seed " << seed;
  // Structural invariants that must hold on every snapshot.
  const std::vector<uint64_t> cumulative = snap.Cumulative();
  ASSERT_EQ(cumulative.size(), snap.counts.size()) << "seed " << seed;
  for (size_t i = 1; i < cumulative.size(); ++i) {
    EXPECT_GE(cumulative[i], cumulative[i - 1]) << "seed " << seed;
  }
  EXPECT_EQ(cumulative.empty() ? 0 : cumulative.back(), snap.count)
      << "seed " << seed;
}

// 10k random sequences: random bucket shapes, values skewed across all
// boundary neighborhoods (exact bounds, nextafter neighbors, negatives,
// huge outliers), interleaved with snapshot+merge operations.
TEST(HistogramFuzzTest, MatchesMapOracleOn10kSequences) {
  constexpr int kSequences = 10000;
  for (int round = 0; round < kSequences; ++round) {
    const uint32_t seed = 424200 + static_cast<uint32_t>(round);
    std::mt19937 rng(seed);
    const std::vector<double> bounds = RandomBounds(&rng);
    Histogram hist(bounds);
    OracleHistogram oracle(bounds);

    std::uniform_int_distribution<int> ops_dist(1, 40);
    std::uniform_int_distribution<int> kind_dist(0, 5);
    std::uniform_real_distribution<double> wide(-10.0, 500.0);
    std::uniform_int_distribution<size_t> pick_bound(
        0, bounds.empty() ? 0 : bounds.size() - 1);
    const int ops = ops_dist(rng);
    for (int op = 0; op < ops; ++op) {
      double value = 0.0;
      switch (kind_dist(rng)) {
        case 0:  // exactly on a bound — the upper-inclusive edge case
          value = bounds.empty() ? 0.0 : bounds[pick_bound(rng)];
          break;
        case 1:  // just below a bound
          value = bounds.empty()
                      ? -1.0
                      : std::nextafter(bounds[pick_bound(rng)], -1e300);
          break;
        case 2:  // just above a bound
          value = bounds.empty()
                      ? 1.0
                      : std::nextafter(bounds[pick_bound(rng)], 1e300);
          break;
        case 3:  // far outlier
          value = 1e12;
          break;
        case 4:  // negative (below every bound)
          value = -std::abs(wide(rng));
          break;
        default:
          value = wide(rng);
          break;
      }
      hist.Observe(value);
      oracle.Observe(value);
    }
    ExpectMatchesOracle(hist.Snapshot(), oracle, seed);
    if (testing::Test::HasFailure()) return;  // one seed is enough to debug
  }
}

// Merge fuzz: two independently filled histograms of the same shape must
// merge into exactly the oracle's union; a shape mismatch must be refused
// without touching the target.
TEST(HistogramFuzzTest, MergeMatchesOracleAndRejectsShapeMismatch) {
  constexpr int kSequences = 2000;
  for (int round = 0; round < kSequences; ++round) {
    const uint32_t seed = 777000 + static_cast<uint32_t>(round);
    std::mt19937 rng(seed);
    const std::vector<double> bounds = RandomBounds(&rng);
    Histogram a(bounds);
    Histogram b(bounds);
    OracleHistogram oracle_a(bounds);
    OracleHistogram oracle_b(bounds);

    std::uniform_int_distribution<int> ops_dist(0, 30);
    std::uniform_real_distribution<double> wide(-50.0, 300.0);
    for (int i = ops_dist(rng); i > 0; --i) {
      const double v = wide(rng);
      a.Observe(v);
      oracle_a.Observe(v);
    }
    for (int i = ops_dist(rng); i > 0; --i) {
      const double v = wide(rng);
      b.Observe(v);
      oracle_b.Observe(v);
    }

    HistogramSnapshot merged = a.Snapshot();
    ASSERT_TRUE(merged.Merge(b.Snapshot())) << "seed " << seed;
    oracle_a.MergeFrom(oracle_b);
    ExpectMatchesOracle(merged, oracle_a, seed);

    // A different shape must be refused and leave the target untouched.
    std::vector<double> other_bounds = bounds;
    other_bounds.push_back(other_bounds.empty() ? 1.0
                                                : other_bounds.back() + 1.0);
    Histogram c(other_bounds);
    c.Observe(0.5);
    const HistogramSnapshot before = merged;
    ASSERT_FALSE(merged.Merge(c.Snapshot())) << "seed " << seed;
    EXPECT_EQ(merged.counts, before.counts) << "seed " << seed;
    EXPECT_EQ(merged.count, before.count) << "seed " << seed;
    if (testing::Test::HasFailure()) return;
  }
}

}  // namespace
}  // namespace probe::obs
