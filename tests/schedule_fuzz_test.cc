// Seeded schedule fuzzing: drive the yield-point harness (util/yieldpoint)
// through thousands of distinct interleavings of the group-commit and
// epoch-publication protocols, checking the invariants that must hold on
// *every* schedule — durability is monotone, an acked commit is durable,
// the on-disk log is a valid strictly-increasing-LSN record sequence, and
// a pinned snapshot always answers a full epoch prefix. Each seed is one
// deterministic schedule (see ScheduleHarness), so a failure reproduces
// by running its seed alone.
//
// The sweep size scales down under sanitizers (TSan in particular runs
// this via the `concurrency`/`fuzz` ctest labels and is ~20x slower);
// PROBE_FUZZ_SEEDS overrides both defaults.

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "index/durable_index.h"
#include "storage/wal.h"
#include "temp_file.h"
#include "util/yieldpoint.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define PROBE_FUZZ_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#ifndef PROBE_FUZZ_SANITIZED
#define PROBE_FUZZ_SANITIZED 1
#endif
#endif

namespace probe {
namespace {

using geometry::GridPoint;
using index::DurableIndex;
using storage::Wal;
using Op = index::DurableIndex::Op;

constexpr zorder::GridSpec kGrid{2, 8};

size_t SweepSize() {
  if (const char* env = std::getenv("PROBE_FUZZ_SEEDS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
#ifdef PROBE_FUZZ_SANITIZED
  return 400;
#else
  return 10000;
#endif
}

// One seed's WAL scenario: three writers race deferred commits through
// group commit under the harness's schedule for `seed`.
void RunWalScenario(uint64_t seed, const std::string& path) {
  util::ScheduleOptions options;
  options.seed = seed;
  options.pause_one_in = 3;
  options.max_wait_steps = 4;
  options.max_wait_micros = 100;  // bounded: a stall never deadlocks
  util::ScheduleHarness harness(options);

  Wal wal(path, /*truncate=*/true);
  ASSERT_TRUE(wal.ok());
  if (seed % 3 == 1) {
    wal.SetGroupCommitDelay(std::chrono::microseconds(50));
  }

  constexpr int kThreads = 3;
  constexpr int kCommitsPerThread = 2;
  const std::vector<uint8_t> meta{0x42};
  std::atomic<uint64_t> max_acked{0};
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal, &meta, &max_acked, t] {
      util::ScheduleThreadOrdinal(t);
      for (int i = 0; i < kCommitsPerThread; ++i) {
        const uint64_t before = wal.durable_lsn();
        const uint64_t lsn = wal.AppendCommitDeferred(1, meta);
        ASSERT_NE(lsn, 0u);
        ASSERT_TRUE(wal.GroupCommit(lsn));
        const uint64_t after = wal.durable_lsn();
        // Acked ⊆ durable, and durability never moves backwards.
        ASSERT_GE(after, lsn);
        ASSERT_GE(after, before);
        uint64_t seen = max_acked.load();
        while (seen < lsn && !max_acked.compare_exchange_weak(seen, lsn)) {
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_GE(wal.durable_lsn(), max_acked.load());
  ASSERT_EQ(wal.stats().group_commits,
            static_cast<uint64_t>(kThreads * kCommitsPerThread));

  // The file is a valid log: every record parses, LSNs strictly increase,
  // and every commit made it out.
  storage::WalReader reader(path);
  storage::WalRecord record;
  uint64_t prev = 0;
  size_t count = 0;
  while (reader.Next(&record)) {
    ASSERT_GT(record.lsn, prev);
    prev = record.lsn;
    ++count;
  }
  ASSERT_EQ(count, static_cast<size_t>(kThreads * kCommitsPerThread));

  const util::ScheduleStats stats = harness.stats();
  ASSERT_GT(stats.points, 0u) << "harness saw no yield points — are the "
                                 "SchedulePoint call sites compiled in?";
}

// Every eighth seed also exercises the epoch machinery: two writers land
// batches through Apply while a reader pins snapshots; each snapshot must
// hold an exact batch prefix (all batches are the same size).
void RunEpochScenario(uint64_t seed, const std::string& path) {
  util::ScheduleOptions options;
  options.seed = seed;
  options.pause_one_in = 3;
  options.max_wait_steps = 4;
  options.max_wait_micros = 100;
  util::ScheduleHarness harness(options);

  DurableIndex::Options db_options;
  db_options.truncate = true;
  db_options.pool_pages = 32;
  db_options.snapshot_pool_pages = 16;
  DurableIndex db(kGrid, path, db_options);
  ASSERT_TRUE(db.ok());

  constexpr int kWriters = 2;
  constexpr int kBatchesPerWriter = 3;
  constexpr int kPerBatch = 4;
  std::atomic<int> writers_left{kWriters};
  std::vector<std::thread> threads;
  for (uint32_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&db, &writers_left, w] {
      util::ScheduleThreadOrdinal(w);
      for (int b = 0; b < kBatchesPerWriter; ++b) {
        std::vector<Op> batch;
        for (int i = 0; i < kPerBatch; ++i) {
          const uint64_t id = static_cast<uint64_t>(w) * 1000 +
                              static_cast<uint64_t>(b) * 10 +
                              static_cast<uint64_t>(i) + 1;
          batch.push_back(Op::Insert(
              GridPoint({static_cast<uint32_t>((id * 29) % 256),
                         static_cast<uint32_t>((id * 71) % 256)}),
              id));
        }
        uint64_t epoch = 0;
        ASSERT_TRUE(db.Apply(batch, &epoch));
        ASSERT_LE(epoch, db.published_epoch());
      }
      writers_left.fetch_sub(1);
    });
  }
  threads.emplace_back([&db, &writers_left] {
    util::ScheduleThreadOrdinal(2);
    do {
      DurableIndex::Snapshot snap = db.CreateSnapshot();
      ASSERT_TRUE(snap.ok());
      // Epoch E pins exactly the first E - 1 batches, whatever order the
      // writers' commits landed in.
      ASSERT_EQ(snap.index().size(), (snap.epoch() - 1) * kPerBatch);
    } while (writers_left.load() > 0);
  });
  for (auto& t : threads) t.join();

  ASSERT_EQ(db.published_epoch(),
            1u + static_cast<uint64_t>(kWriters * kBatchesPerWriter));
  ASSERT_EQ(db.published_size(),
            static_cast<uint64_t>(kWriters * kBatchesPerWriter * kPerBatch));
  ASSERT_TRUE(db.index().tree().CheckInvariants());
}

TEST(ScheduleFuzzTest, SeededInterleavingSweep) {
  const size_t seeds = SweepSize();
  testutil::TempFile wal_file("schedule_fuzz_wal");
  testutil::TempFile db_file("schedule_fuzz_db");
  for (size_t seed = 0; seed < seeds; ++seed) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    RunWalScenario(seed, wal_file.path());
    if (seed % 8 == 0) {
      RunEpochScenario(seed, db_file.path());
    }
    if (::testing::Test::HasFailure()) {
      break;  // one seed's trace is the repro; don't drown it in 10k more
    }
  }
}

}  // namespace
}  // namespace probe
