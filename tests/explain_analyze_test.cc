// EXPLAIN ANALYZE tests: golden snapshots of the instrumented rendering
// (wall-clock fields masked, everything else deterministic from the
// seeds), plus the two accuracy bars the instrumentation must clear —
//
//   * measured pages: on a cold pool, a serial z scan's reported pool
//     misses equal the BufferPool's own miss delta *exactly*, and sit in
//     the [leaf_pages, leaf_pages + internal_pages] sandwich;
//   * cost model: on the planner-calibration workload (same grid, seeds,
//     and query boxes as planner_calibration_test) the planner's page
//     estimates track the *measured* misses in aggregate.
//
// Regenerate snapshots with:  ./explain_analyze_test --update-golden

#include <cmath>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "index/cost_model.h"
#include "query/executor.h"
#include "query/explain.h"
#include "query/planner.h"
#include "storage/buffer_pool.h"
#include "util/rng.h"
#include "workload/datagen.h"
#include "workload/experiment.h"
#include "workload/querygen.h"

namespace probe::query {
namespace {

bool g_update_golden = false;

using geometry::GridBox;
using geometry::GridPoint;
using zorder::GridSpec;

/// Replaces every wall-clock figure with a fixed token so snapshots are
/// stable across machines: "ms": 1.234 / "total_ms": 1.234 in JSON,
/// "1.234 ms" in text.
std::string MaskTimings(const std::string& s) {
  static const std::regex kJsonMs("(\"(?:total_)?ms\": )[0-9]+\\.[0-9]+");
  static const std::regex kTextMs("[0-9]+\\.[0-9]+ ms");
  std::string out = std::regex_replace(s, kJsonMs, "$1\"<ms>\"");
  return std::regex_replace(out, kTextMs, "<ms>");
}

std::string GoldenPath(const std::string& name) {
  return std::string(PROBE_GOLDEN_DIR) + "/" + name;
}

void CheckGolden(const std::string& name, const std::string& content) {
  const std::string path = GoldenPath(name);
  if (g_update_golden) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << content;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path
                         << " is missing; run with --update-golden to create";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(content, want.str())
      << "EXPLAIN ANALYZE output for '" << name << "' drifted from " << path
      << "\nif the change is intended, rerun with --update-golden";
}

/// The golden fixture: the same seeded dataset explain_golden_test plans
/// against, re-opened over a *cold* pool so every page count in the
/// snapshots is a pure function of the data.
struct AnalyzeFixture {
  GridSpec grid{2, 10};
  workload::BuiltIndex built;
  std::unique_ptr<storage::BufferPool> cold_pool;
  std::unique_ptr<index::ZkdIndex> index;
  index::CostModel model;

  AnalyzeFixture()
      : built([&] {
          workload::DataGenConfig data;
          data.distribution = workload::Distribution::kUniform;
          data.count = 5000;
          data.seed = 7100;
          const auto points = GeneratePoints(grid, data);
          return workload::BuildZkdIndex(grid, points, 20, 256);
        }()),
        model(index::CostModel::FromIndex(*built.index)) {
    // Push every page the build dirtied down to the pager, then re-open
    // the tree over a fresh pool: first touch of any page is a miss.
    built.pool->FlushAll();
    cold_pool = std::make_unique<storage::BufferPool>(built.pager.get(), 256);
    btree::BTreeConfig config;
    config.leaf_capacity = 20;
    index = std::make_unique<index::ZkdIndex>(index::ZkdIndex::Attach(
        grid, cold_pool.get(), built.index->DetachState(), config));
  }

  PlannerContext Context() const {
    PlannerContext ctx;
    ctx.index = index.get();
    ctx.cost_model = &model;
    return ctx;
  }
};

TEST(ExplainAnalyzeGoldenTest, SerialRangeScanText) {
  const AnalyzeFixture fx;
  PlannedQuery planned =
      Plan(Query::Range(GridBox::Make2D(100, 400, 100, 400)), fx.Context());
  ExplainAnalyzeOptions options;
  options.pool = fx.cold_pool.get();
  const ExplainAnalyzeResult result = ExplainAnalyze(*planned.root, options);
  CheckGolden("analyze_range_serial.txt", MaskTimings(result.text));
}

TEST(ExplainAnalyzeGoldenTest, SerialRangeScanJson) {
  const AnalyzeFixture fx;
  PlannedQuery planned =
      Plan(Query::Range(GridBox::Make2D(100, 400, 100, 400)), fx.Context());
  ExplainAnalyzeOptions options;
  options.pool = fx.cold_pool.get();
  const ExplainAnalyzeResult result = ExplainAnalyze(*planned.root, options);
  CheckGolden("analyze_range_serial.json", MaskTimings(result.json));
}

TEST(ExplainAnalyzeGoldenTest, ProjectedWithinDistanceJson) {
  const AnalyzeFixture fx;
  PlannedQuery planned = Plan(
      Query::WithinDistance(GridPoint({512, 512}), 60.0), fx.Context());
  ExplainAnalyzeOptions options;
  options.pool = fx.cold_pool.get();
  const ExplainAnalyzeResult result = ExplainAnalyze(*planned.root, options);
  CheckGolden("analyze_within_distance.json", MaskTimings(result.json));
}

/// Finds the scan node (the single leaf) in a decorated plan.
const PlanNode* FindLeaf(const PlanNode* node) {
  while (node->child_count() > 0) node = node->child(0);
  return node;
}

// The exactness bar: on a cold pool, the misses ExplainAnalyze reports
// are the BufferPool's own miss delta — the summary, the leaf node's
// window, and the externally measured delta must all be the same number.
TEST(ExplainAnalyzeTest, MeasuredPagesEqualPoolMissDeltaExactly) {
  const AnalyzeFixture fx;
  PlannedQuery planned =
      Plan(Query::Range(GridBox::Make2D(100, 400, 100, 400)), fx.Context());

  const storage::BufferPoolStats before = fx.cold_pool->stats();
  ExplainAnalyzeOptions options;
  options.pool = fx.cold_pool.get();
  const ExplainAnalyzeResult result = ExplainAnalyze(*planned.root, options);
  const storage::BufferPoolStats after = fx.cold_pool->stats();

  const uint64_t measured_misses = after.misses - before.misses;
  ASSERT_TRUE(result.has_pool_stats);
  EXPECT_EQ(result.pool_misses, measured_misses);
  EXPECT_EQ(result.pool_hits, after.hits - before.hits);
  EXPECT_EQ(result.pool_fetches, after.fetches - before.fetches);

  const NodeStats& leaf = FindLeaf(planned.root.get())->stats();
  ASSERT_TRUE(leaf.has_pool_stats);
  EXPECT_EQ(leaf.pool_misses, measured_misses)
      << "the scan node's Open..Close window missed pool traffic";

  // Cold cache: every leaf entered is a miss, plus at most the descent.
  EXPECT_GE(measured_misses, leaf.actual_pages);
  EXPECT_LE(measured_misses, leaf.actual_pages + fx.index->tree().height());
  EXPECT_GT(result.rows.size(), 0u);
}

// A warm second run of the same query must be all hits — the miss window
// proves the pool (not the instrumentation) is what changed.
TEST(ExplainAnalyzeTest, WarmRunReportsZeroMisses) {
  const AnalyzeFixture fx;
  ExplainAnalyzeOptions options;
  options.pool = fx.cold_pool.get();
  const Query query = Query::Range(GridBox::Make2D(100, 400, 100, 400));

  PlannedQuery cold = Plan(query, fx.Context());
  const ExplainAnalyzeResult first = ExplainAnalyze(*cold.root, options);

  PlannedQuery warm = Plan(query, fx.Context());
  const ExplainAnalyzeResult second = ExplainAnalyze(*warm.root, options);

  EXPECT_GT(first.pool_misses, 0u);
  EXPECT_EQ(second.pool_misses, 0u);
  EXPECT_EQ(second.pool_hits, second.pool_fetches);
  EXPECT_EQ(first.rows.size(), second.rows.size());
}

// Cross-check against the PR 2 cost model on the planner-calibration
// workload: the page estimates the planner attaches must track the pool
// misses ExplainAnalyze measures. The calibration suite already holds
// estimate-vs-leaf_pages drift under 15%; measured misses add the descent
// pages, so the aggregate band here is a looser 25%.
TEST(ExplainAnalyzeTest, EstimatesTrackMeasuredMissesOnCalibrationWorkload) {
  const GridSpec grid{2, 10};
  workload::DataGenConfig data;
  data.distribution = workload::Distribution::kUniform;
  data.count = 5000;
  data.seed = 7900;
  const auto points = GeneratePoints(grid, data);
  auto built = workload::BuildZkdIndex(grid, points, 20, 256);
  const index::CostModel model = index::CostModel::FromIndex(*built.index);
  built.pool->FlushAll();

  util::Rng rng(7910);
  double total_estimated = 0;
  double total_measured = 0;
  int queries = 0;
  for (const double volume : {0.01, 0.02, 0.05, 0.10}) {
    for (const double aspect : {1.0, 4.0}) {
      for (const auto& box :
           workload::MakeQueryBoxes2D(grid, volume, aspect, 5, rng)) {
        // Fresh cold pool per query: misses == pages this query touched.
        storage::BufferPool pool(built.pager.get(), 256);
        btree::BTreeConfig config;
        config.leaf_capacity = 20;
        index::ZkdIndex index = index::ZkdIndex::Attach(
            grid, &pool, built.index->DetachState(), config);

        PlannerContext ctx;
        ctx.index = &index;
        ctx.cost_model = &model;
        PlannedQuery planned = Plan(Query::Range(box), ctx);

        ExplainAnalyzeOptions options;
        options.pool = &pool;
        const ExplainAnalyzeResult result =
            ExplainAnalyze(*planned.root, options);

        const NodeStats& leaf = FindLeaf(planned.root.get())->stats();
        ASSERT_TRUE(leaf.has_estimate);
        total_estimated += static_cast<double>(leaf.est_pages);
        total_measured += static_cast<double>(result.pool_misses);
        ++queries;
      }
    }
  }
  ASSERT_GT(queries, 0);
  ASSERT_GT(total_measured, 0.0);
  const double drift =
      std::abs(total_estimated - total_measured) / total_measured;
  EXPECT_LT(drift, 0.25) << "estimated " << total_estimated
                         << " pages vs measured " << total_measured
                         << " misses over " << queries << " queries";
}

}  // namespace
}  // namespace probe::query

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      probe::query::g_update_golden = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
