// The zones-style distance join must be exact: identical pair sets to an
// O(n*m) all-pairs oracle on every distribution, at degenerate radii
// (r = 0, r spanning the whole grid), at full 32-bit grid resolution, and
// for every zone height — and the parallel merge must reproduce the
// serial emission order bitwise, not just as a set.

#include "relational/distance_join.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "query/executor.h"
#include "query/planner.h"
#include "query/query.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"

namespace probe::relational {
namespace {

using index::PointRecord;
using workload::DataGenConfig;
using workload::Distribution;
using zorder::GridSpec;

/// All-pairs reference in 128-bit arithmetic: every (r, s) with
/// dx^2 + dy^2 <= radius^2.
std::vector<IdPair> OracleJoin(const std::vector<PointRecord>& r,
                               const std::vector<PointRecord>& s,
                               uint64_t radius) {
  const unsigned __int128 r2 = static_cast<unsigned __int128>(radius) * radius;
  std::vector<IdPair> out;
  for (const auto& p : r) {
    for (const auto& q : s) {
      const uint64_t dx =
          p.point[0] > q.point[0] ? p.point[0] - q.point[0] : q.point[0] - p.point[0];
      const uint64_t dy =
          p.point[1] > q.point[1] ? p.point[1] - q.point[1] : q.point[1] - p.point[1];
      if (static_cast<unsigned __int128>(dx) * dx +
              static_cast<unsigned __int128>(dy) * dy <=
          r2) {
        out.push_back(IdPair{p.id, q.id});
      }
    }
  }
  return out;
}

/// Canonical ordering for set comparison (the join's own emission order is
/// a different, deterministic order — (zone, x) — so sets are compared
/// sorted by id pair).
void SortPairs(std::vector<IdPair>* pairs) {
  std::sort(pairs->begin(), pairs->end(),
            [](const IdPair& a, const IdPair& b) {
              if (a.r_id != b.r_id) return a.r_id < b.r_id;
              return a.s_id < b.s_id;
            });
}

void ExpectSamePairSet(std::vector<IdPair> got, std::vector<IdPair> expect,
                       const char* what) {
  SortPairs(&got);
  SortPairs(&expect);
  ASSERT_EQ(got.size(), expect.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i] == expect[i])
        << what << " i=" << i << " got=(" << got[i].r_id << "," << got[i].s_id
        << ") expect=(" << expect[i].r_id << "," << expect[i].s_id << ")";
  }
}

class DistanceJoinDistributionTest
    : public ::testing::TestWithParam<int> {};

TEST_P(DistanceJoinDistributionTest, MatchesOracle) {
  const GridSpec grid{2, 12};
  workload::PairedDataGenConfig config;
  config.base.distribution = static_cast<Distribution>(GetParam());
  config.base.count = 4000;
  config.base.seed = 4200 + static_cast<uint64_t>(GetParam());
  config.match_fraction = 0.4;
  config.match_sigma = 6.0;
  const auto data = GeneratePairedPoints(grid, config);

  for (const uint64_t radius : {0ull, 3ull, 17ull}) {
    DistanceJoinStats stats;
    auto got = DistanceJoinPairs(data.r, data.s, grid, radius, &stats);
    ExpectSamePairSet(got, OracleJoin(data.r, data.s, radius),
                      DistributionName(config.base.distribution).c_str());
    EXPECT_EQ(stats.pairs, got.size());
    EXPECT_GE(stats.candidate_pairs, stats.pairs);
    EXPECT_EQ(stats.r_rows, data.r.size());
    EXPECT_EQ(stats.s_rows, data.s.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, DistanceJoinDistributionTest,
                         ::testing::Values(0, 1, 2));

TEST(DistanceJoinTest, AsymmetricSidesMatchOracle) {
  const GridSpec grid{2, 10};
  DataGenConfig big;
  big.count = 20000;
  big.seed = 551;
  DataGenConfig small;
  small.distribution = Distribution::kClustered;
  small.count = 700;
  small.seed = 552;
  const auto r = GeneratePoints(grid, big);
  const auto s = GeneratePoints(grid, small);
  const auto got = DistanceJoinPairs(r, s, grid, 9);
  ExpectSamePairSet(got, OracleJoin(r, s, 9), "asymmetric");
}

TEST(DistanceJoinTest, DegenerateRadii) {
  const GridSpec grid{2, 8};
  DataGenConfig config;
  config.count = 600;
  config.seed = 661;
  const auto r = GeneratePoints(grid, config);
  config.seed = 662;
  const auto s = GeneratePoints(grid, config);

  // r = 0: only exact coordinate collisions pair.
  ExpectSamePairSet(DistanceJoinPairs(r, s, grid, 0), OracleJoin(r, s, 0),
                    "r=0");

  // A radius spanning the whole grid: every pair qualifies — the
  // candidate bound degenerates to the cross product and the join must
  // still be exact (and its pair count exactly n*m).
  const uint64_t span = 2 * grid.side();
  DistanceJoinStats stats;
  const auto all = DistanceJoinPairs(r, s, grid, span, &stats);
  EXPECT_EQ(all.size(), r.size() * s.size());
  ExpectSamePairSet(all, OracleJoin(r, s, span), "grid-spanning");
  EXPECT_EQ(stats.candidate_pairs, stats.pairs);
}

TEST(DistanceJoinTest, EmptySides) {
  const GridSpec grid{2, 8};
  DataGenConfig config;
  config.count = 100;
  config.seed = 71;
  const auto pts = GeneratePoints(grid, config);
  const std::vector<PointRecord> empty;
  EXPECT_TRUE(DistanceJoinPairs(empty, pts, grid, 10).empty());
  EXPECT_TRUE(DistanceJoinPairs(pts, empty, grid, 10).empty());
  DistanceJoinStats stats;
  EXPECT_TRUE(DistanceJoinPairs(empty, empty, grid, 10, &stats).empty());
  EXPECT_EQ(stats.pairs, 0u);
}

TEST(DistanceJoinTest, ZoneHeightSweepIsInvariant) {
  // The zone height is a performance knob, never a correctness one: every
  // height must produce the identical pair set (and heights far from r
  // must cost more candidates, not lose pairs).
  const GridSpec grid{2, 10};
  workload::PairedDataGenConfig config;
  config.base.count = 3000;
  config.base.seed = 81;
  const auto data = GeneratePairedPoints(grid, config);
  const uint64_t radius = 7;
  const auto expect = OracleJoin(data.r, data.s, radius);

  for (const uint64_t h : {1ull, 3ull, 7ull, 28ull, 1024ull}) {
    DistanceJoinOptions options;
    options.zone_height = h;
    DistanceJoinStats stats;
    auto got = DistanceJoinPairs(data.r, data.s, grid, radius, &stats,
                                 options);
    EXPECT_EQ(stats.zone_height, h);
    ExpectSamePairSet(got, expect, ("h=" + std::to_string(h)).c_str());
  }
}

TEST(DistanceJoinTest, SerialAndParallelAreBitwiseIdentical) {
  const GridSpec grid{2, 11};
  workload::PairedDataGenConfig config;
  config.base.count = 30000;
  config.base.seed = 91;
  config.match_fraction = 0.3;
  const auto data = GeneratePairedPoints(grid, config);

  const auto serial = DistanceJoinPairs(data.r, data.s, grid, 5);

  util::ThreadPool pool(3);
  for (const int partitions : {0, 2, 3, 7}) {
    DistanceJoinOptions options;
    options.pool = &pool;
    options.partitions = partitions;
    DistanceJoinStats stats;
    const auto parallel =
        DistanceJoinPairs(data.r, data.s, grid, 5, &stats, options);
    // Not a set comparison: the emission *order* must match too.
    ASSERT_EQ(parallel.size(), serial.size()) << partitions;
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_TRUE(parallel[i] == serial[i]) << "partitions=" << partitions
                                            << " i=" << i;
    }
    if (partitions > 1) {
      EXPECT_EQ(stats.partitions, static_cast<size_t>(partitions));
    }
  }
}

TEST(DistanceJoinTest, SpilledSortMatchesInMemory) {
  // Force the external sorter to spill runs (tiny budget) — the join must
  // not care where the sorted stream came from.
  const GridSpec grid{2, 9};
  DataGenConfig config;
  config.count = 5000;
  config.seed = 101;
  const auto r = GeneratePoints(grid, config);
  config.seed = 102;
  const auto s = GeneratePoints(grid, config);

  const auto in_memory = DistanceJoinPairs(r, s, grid, 4);

  DistanceJoinOptions options;
  options.sort_budget_entries = 64;
  DistanceJoinStats stats;
  const auto spilled = DistanceJoinPairs(r, s, grid, 4, &stats, options);
  EXPECT_GT(stats.sort_runs, 0u);
  EXPECT_GT(stats.sort_pages, 0u);
  ASSERT_EQ(spilled.size(), in_memory.size());
  for (size_t i = 0; i < spilled.size(); ++i) {
    ASSERT_TRUE(spilled[i] == in_memory[i]) << i;
  }
}

TEST(DistanceJoinTest, FullResolutionGridCorners) {
  // d = 32: coordinates up to 2^32 - 1, squared distances past uint64 —
  // the join must use the 128-bit scalar path and still be exact.
  const GridSpec grid{2, 32};
  constexpr uint32_t kMax = ~static_cast<uint32_t>(0);
  std::vector<PointRecord> r;
  r.push_back({geometry::GridPoint({0, 0}), 0});
  r.push_back({geometry::GridPoint({kMax, kMax}), 1});
  r.push_back({geometry::GridPoint({kMax, 0}), 2});
  std::vector<PointRecord> s;
  s.push_back({geometry::GridPoint({3, 4}), 0});
  s.push_back({geometry::GridPoint({kMax - 3, kMax - 4}), 1});
  s.push_back({geometry::GridPoint({0, kMax}), 2});

  // Radius 5 catches each corner's jittered partner and nothing else.
  ExpectSamePairSet(DistanceJoinPairs(r, s, grid, 5), OracleJoin(r, s, 5),
                    "corners r=5");
  // A radius past 2^32 spans every axis delta; with 64-bit arithmetic the
  // squared radius would wrap to something tiny and drop the far pairs.
  const uint64_t huge = 1ULL << 33;
  ExpectSamePairSet(DistanceJoinPairs(r, s, grid, huge),
                    OracleJoin(r, s, huge), "corners huge r");
}

TEST(DistanceJoinTest, PlannerRunsDistanceJoinEndToEnd) {
  const GridSpec grid{2, 10};
  workload::PairedDataGenConfig config;
  config.base.count = 2000;
  config.base.seed = 111;
  const auto data = GeneratePairedPoints(grid, config);

  query::PlannerContext ctx;  // no index: the join plans standalone
  auto query = query::Query::DistanceJoin(data.r, data.s, grid, 6);
  auto planned = query::Plan(query, ctx);
  ASSERT_NE(planned.root, nullptr);
  EXPECT_EQ(planned.root->stats().op, "DistanceJoin");
  EXPECT_TRUE(planned.root->stats().has_estimate);

  const auto result = query::Execute(*planned.root).rows;
  const auto expect = OracleJoin(data.r, data.s, 6);
  ASSERT_EQ(result.size(), expect.size());
  // The node's detail must carry the measured counters for EXPLAIN.
  EXPECT_NE(planned.root->stats().detail.find("candidates="),
            std::string::npos);
  EXPECT_NE(planned.root->stats().detail.find("pairs=" +
                                              std::to_string(expect.size())),
            std::string::npos);

  // And the parallel plan: same rows, ParallelDistanceJoin operator.
  util::ThreadPool pool(2);
  ctx.pool = &pool;
  query::PlannerOptions options;
  options.join_parallel_row_threshold = 1;
  auto parallel = query::Plan(query, ctx, options);
  EXPECT_EQ(parallel.root->stats().op, "ParallelDistanceJoin");
  const auto parallel_result = query::Execute(*parallel.root).rows;
  ASSERT_EQ(parallel_result.size(), result.size());
  for (size_t i = 0; i < result.size(); ++i) {
    EXPECT_TRUE(parallel_result.row(i) == result.row(i)) << i;
  }
}

}  // namespace
}  // namespace probe::relational
