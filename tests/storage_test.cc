#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include "storage/page.h"
#include "storage/pager.h"

namespace probe::storage {
namespace {

TEST(PageTest, TypedReadWriteRoundTrips) {
  Page page;
  page.Write<uint64_t>(0, 0xDEADBEEFCAFEF00DULL);
  page.Write<uint16_t>(100, 1234);
  page.Write<uint8_t>(200, 7);
  EXPECT_EQ(page.Read<uint64_t>(0), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(page.Read<uint16_t>(100), 1234);
  EXPECT_EQ(page.Read<uint8_t>(200), 7);
}

TEST(PageTest, ClearZeroes) {
  Page page;
  page.Write<uint64_t>(8, 42);
  page.Clear();
  EXPECT_EQ(page.Read<uint64_t>(8), 0u);
}

TEST(MemPagerTest, AllocateReadWrite) {
  MemPager pager;
  const PageId a = pager.Allocate();
  const PageId b = pager.Allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(pager.page_count(), 2u);

  Page page;
  page.Write<uint32_t>(0, 99);
  pager.Write(a, page);

  Page read_back;
  pager.Read(a, &read_back);
  EXPECT_EQ(read_back.Read<uint32_t>(0), 99u);

  pager.Read(b, &read_back);
  EXPECT_EQ(read_back.Read<uint32_t>(0), 0u);  // fresh pages are zeroed

  EXPECT_EQ(pager.stats().reads, 2u);
  EXPECT_EQ(pager.stats().writes, 1u);
  EXPECT_EQ(pager.stats().allocations, 2u);
}

TEST(BufferPoolTest, HitsAndMisses) {
  MemPager pager;
  const PageId a = pager.Allocate();
  const PageId b = pager.Allocate();
  BufferPool pool(&pager, 4);

  { PageRef r = pool.Fetch(a); }
  { PageRef r = pool.Fetch(a); }  // resident: hit
  { PageRef r = pool.Fetch(b); }

  EXPECT_EQ(pool.stats().fetches, 3u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 2u);
  EXPECT_EQ(pager.stats().reads, 2u);  // only misses reach the disk
}

TEST(BufferPoolTest, LruEvictsOldestUnpinned) {
  MemPager pager;
  PageId ids[3];
  for (PageId& id : ids) id = pager.Allocate();
  BufferPool pool(&pager, 2);

  { PageRef r = pool.Fetch(ids[0]); }
  { PageRef r = pool.Fetch(ids[1]); }
  { PageRef r = pool.Fetch(ids[2]); }  // evicts ids[0]
  EXPECT_EQ(pool.stats().evictions, 1u);
  { PageRef r = pool.Fetch(ids[1]); }  // still resident
  EXPECT_EQ(pool.stats().hits, 1u);
  { PageRef r = pool.Fetch(ids[0]); }  // must re-read
  EXPECT_EQ(pool.stats().misses, 4u);
}

TEST(BufferPoolTest, DirtyPagesWriteBackOnEviction) {
  MemPager pager;
  const PageId a = pager.Allocate();
  const PageId b = pager.Allocate();
  BufferPool pool(&pager, 1);

  {
    PageRef r = pool.Fetch(a);
    r.page().Write<uint32_t>(0, 7);
    r.MarkDirty();
  }
  { PageRef r = pool.Fetch(b); }  // evicts a, forcing the write-back
  EXPECT_EQ(pool.stats().writebacks, 1u);

  Page check;
  pager.Read(a, &check);
  EXPECT_EQ(check.Read<uint32_t>(0), 7u);
}

TEST(BufferPoolTest, FlushAllPersistsWithoutEviction) {
  MemPager pager;
  const PageId a = pager.Allocate();
  BufferPool pool(&pager, 4);
  {
    PageRef r = pool.Fetch(a);
    r.page().Write<uint64_t>(16, 123);
    r.MarkDirty();
  }
  pool.FlushAll();
  Page check;
  pager.Read(a, &check);
  EXPECT_EQ(check.Read<uint64_t>(16), 123u);
  // Still resident afterwards.
  { PageRef r = pool.Fetch(a); }
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, NewPagesStartZeroedAndDirty) {
  MemPager pager;
  BufferPool pool(&pager, 2);
  PageId id = kInvalidPageId;
  {
    PageRef r = pool.New(&id);
    EXPECT_EQ(r.page().Read<uint64_t>(0), 0u);
    r.page().Write<uint64_t>(0, 5);
  }
  pool.FlushAll();
  Page check;
  pager.Read(id, &check);
  EXPECT_EQ(check.Read<uint64_t>(0), 5u);
}

TEST(BufferPoolTest, PinnedPagesSurviveEvictionPressure) {
  MemPager pager;
  PageId ids[4];
  for (PageId& id : ids) id = pager.Allocate();
  BufferPool pool(&pager, 2);

  PageRef pinned = pool.Fetch(ids[0]);
  pinned.page().Write<uint32_t>(0, 11);
  pinned.MarkDirty();
  // Cycle other pages through the remaining frame.
  { PageRef r = pool.Fetch(ids[1]); }
  { PageRef r = pool.Fetch(ids[2]); }
  { PageRef r = pool.Fetch(ids[3]); }
  // The pinned page was never evicted: its data is still in the frame.
  EXPECT_EQ(pinned.page().Read<uint32_t>(0), 11u);
}

TEST(BufferPoolTest, FifoEvictsByLoadOrderDespiteHits) {
  MemPager pager;
  PageId ids[3];
  for (PageId& id : ids) id = pager.Allocate();
  BufferPool pool(&pager, 2, EvictionPolicy::kFifo);
  { PageRef r = pool.Fetch(ids[0]); }
  { PageRef r = pool.Fetch(ids[1]); }
  { PageRef r = pool.Fetch(ids[0]); }  // a hit must NOT save ids[0]
  { PageRef r = pool.Fetch(ids[2]); }  // evicts ids[0] (oldest load)
  { PageRef r = pool.Fetch(ids[1]); }  // still resident
  EXPECT_EQ(pool.stats().hits, 2u);
  { PageRef r = pool.Fetch(ids[0]); }  // gone: re-read
  EXPECT_EQ(pool.stats().misses, 4u);
}

TEST(BufferPoolTest, ClockSparesRecentlyReferenced) {
  MemPager pager;
  PageId ids[4];
  for (PageId& id : ids) id = pager.Allocate();
  BufferPool pool(&pager, 3, EvictionPolicy::kClock);
  { PageRef r = pool.Fetch(ids[0]); }
  { PageRef r = pool.Fetch(ids[1]); }
  { PageRef r = pool.Fetch(ids[2]); }
  // Reference 1 and 2 so the sweep clears their bits first and lands on 0.
  { PageRef r = pool.Fetch(ids[1]); }
  { PageRef r = pool.Fetch(ids[2]); }
  { PageRef r = pool.Fetch(ids[3]); }  // eviction sweep
  // ids[1] and ids[2] should have survived at least this round.
  const uint64_t misses_before = pool.stats().misses;
  { PageRef r = pool.Fetch(ids[1]); }
  { PageRef r = pool.Fetch(ids[2]); }
  EXPECT_EQ(pool.stats().misses, misses_before);
}

TEST(BufferPoolTest, PoliciesAgreeOnColdSequentialScan) {
  // The merge-style access pattern (each page once, in order) costs the
  // same under every policy — the substance of the paper's LRU argument.
  MemPager pager;
  std::vector<PageId> ids;
  for (int i = 0; i < 50; ++i) ids.push_back(pager.Allocate());
  for (const auto policy :
       {EvictionPolicy::kLru, EvictionPolicy::kFifo, EvictionPolicy::kClock}) {
    BufferPool pool(&pager, 8, policy);
    for (const PageId id : ids) {
      PageRef r = pool.Fetch(id);
    }
    EXPECT_EQ(pool.stats().misses, ids.size());
    EXPECT_EQ(pool.stats().hits, 0u);
  }
}

TEST(BufferPoolTest, MoveTransfersThePin) {
  MemPager pager;
  const PageId a = pager.Allocate();
  BufferPool pool(&pager, 2);
  PageRef first = pool.Fetch(a);
  PageRef second = std::move(first);
  EXPECT_FALSE(first.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(second.valid());
  second.Release();
  EXPECT_FALSE(second.valid());
}

}  // namespace
}  // namespace probe::storage
