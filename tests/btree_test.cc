#include "btree/btree.h"

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "btree/node.h"
#include "btree/zkey.h"
#include "util/rng.h"
#include "zorder/zvalue.h"

namespace probe::btree {
namespace {

using zorder::ZValue;

ZKey Key(uint64_t value, int len = 16) {
  return ZKey::FromZValue(ZValue::FromInteger(value, len));
}

// Reference model: multiset of (key, payload) ordered like the tree.
using Model = std::multiset<std::pair<ZKey, uint64_t>>;

std::vector<std::pair<ZKey, uint64_t>> Dump(BTree& tree) {
  std::vector<std::pair<ZKey, uint64_t>> out;
  BTree::Cursor cursor(&tree);
  if (cursor.SeekFirst()) {
    do {
      out.emplace_back(cursor.entry().key, cursor.entry().payload);
    } while (cursor.Next());
  }
  return out;
}

TEST(PrefixSeparatorTest, ShortestStrictPrefix) {
  const ZKey left = ZKey::FromZValue(*ZValue::Parse("00110"));
  const ZKey right = ZKey::FromZValue(*ZValue::Parse("01011"));
  const ZKey sep = PrefixSeparator(left, right);
  // "01" is the shortest prefix of right exceeding left.
  EXPECT_EQ(sep.ToZValue().ToString(), "01");
  EXPECT_LT(left, sep);
  EXPECT_LE(sep, right);
}

TEST(PrefixSeparatorTest, PrefixPairNeedsFullKey) {
  const ZKey left = ZKey::FromZValue(*ZValue::Parse("0"));
  const ZKey right = ZKey::FromZValue(*ZValue::Parse("00"));
  const ZKey sep = PrefixSeparator(left, right);
  EXPECT_EQ(sep.ToZValue().ToString(), "00");
}

TEST(PrefixSeparatorTest, EqualKeysReturnTheKey) {
  const ZKey k = ZKey::FromZValue(*ZValue::Parse("0101"));
  EXPECT_EQ(PrefixSeparator(k, k), k);
}

TEST(PrefixSeparatorTest, AlwaysValidOnRandomPairs) {
  util::Rng rng(77);
  for (int trial = 0; trial < 1000; ++trial) {
    ZKey a = Key(rng.Next(), 1 + static_cast<int>(rng.NextBelow(20)));
    ZKey b = Key(rng.Next(), 1 + static_cast<int>(rng.NextBelow(20)));
    if (b < a) std::swap(a, b);
    const ZKey sep = PrefixSeparator(a, b);
    if (a < b) {
      EXPECT_LT(a, sep);
      EXPECT_LE(sep, b);
    } else {
      EXPECT_EQ(sep, b);
    }
  }
}

TEST(LeafViewTest, InsertRemoveShift) {
  storage::Page page;
  LeafView leaf(&page);
  leaf.Init();
  leaf.InsertAt(0, LeafEntry{Key(10), 1});
  leaf.InsertAt(1, LeafEntry{Key(30), 3});
  leaf.InsertAt(1, LeafEntry{Key(20), 2});
  ASSERT_EQ(leaf.count(), 3);
  EXPECT_EQ(leaf.Get(0).payload, 1u);
  EXPECT_EQ(leaf.Get(1).payload, 2u);
  EXPECT_EQ(leaf.Get(2).payload, 3u);
  leaf.RemoveAt(1);
  ASSERT_EQ(leaf.count(), 2);
  EXPECT_EQ(leaf.Get(1).payload, 3u);
  EXPECT_EQ(leaf.LowerBound(Key(15)), 1);
  EXPECT_EQ(leaf.LowerBound(Key(10)), 0);
  EXPECT_EQ(leaf.LowerBound(Key(99)), 2);
}

TEST(BTreeTest, EmptyTree) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 16);
  BTree tree(&pool);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  BTree::Cursor cursor(&tree);
  EXPECT_FALSE(cursor.SeekFirst());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, InsertAndIterateSorted) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 16);
  BTreeConfig config;
  config.leaf_capacity = 4;
  config.internal_capacity = 4;
  BTree tree(&pool, config);
  const uint64_t values[] = {42, 7, 99, 1, 55, 23, 80, 3, 64, 31};
  for (uint64_t v : values) tree.Insert(Key(v), v);
  EXPECT_EQ(tree.size(), 10u);
  EXPECT_TRUE(tree.CheckInvariants());

  const auto dump = Dump(tree);
  ASSERT_EQ(dump.size(), 10u);
  for (size_t i = 1; i < dump.size(); ++i) {
    EXPECT_LT(dump[i - 1].first, dump[i].first);
  }
}

TEST(BTreeTest, SplitsGrowHeight) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 16);
  BTreeConfig config;
  config.leaf_capacity = 4;
  config.internal_capacity = 4;
  BTree tree(&pool, config);
  for (uint64_t v = 0; v < 200; ++v) tree.Insert(Key(v * 131 % 1024, 10), v);
  EXPECT_GE(tree.height(), 3);
  EXPECT_TRUE(tree.CheckInvariants());
  const BTreeShape shape = tree.ComputeShape();
  EXPECT_EQ(shape.entries, 200u);
  EXPECT_GE(shape.leaf_pages, 200u / 5);
}

TEST(BTreeTest, SeekFindsLowerBound) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 16);
  BTreeConfig config;
  config.leaf_capacity = 4;
  config.internal_capacity = 4;
  BTree tree(&pool, config);
  for (uint64_t v = 0; v < 100; v += 2) tree.Insert(Key(v), v);

  BTree::Cursor cursor(&tree);
  ASSERT_TRUE(cursor.Seek(Key(31)));
  EXPECT_EQ(cursor.entry().payload, 32u);
  ASSERT_TRUE(cursor.Seek(Key(32)));
  EXPECT_EQ(cursor.entry().payload, 32u);
  ASSERT_TRUE(cursor.Seek(Key(0)));
  EXPECT_EQ(cursor.entry().payload, 0u);
  EXPECT_FALSE(cursor.Seek(Key(99)));
}

TEST(BTreeTest, DuplicateKeysAllKept) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 16);
  BTreeConfig config;
  config.leaf_capacity = 4;
  config.internal_capacity = 4;
  BTree tree(&pool, config);
  for (uint64_t p = 0; p < 50; ++p) tree.Insert(Key(7), p);
  tree.Insert(Key(3), 1000);
  tree.Insert(Key(9), 2000);
  EXPECT_TRUE(tree.CheckInvariants());

  BTree::Cursor cursor(&tree);
  ASSERT_TRUE(cursor.Seek(Key(7)));
  std::set<uint64_t> payloads;
  do {
    if (cursor.entry().key != Key(7)) break;
    payloads.insert(cursor.entry().payload);
  } while (cursor.Next());
  EXPECT_EQ(payloads.size(), 50u);
  EXPECT_EQ(*payloads.begin(), 0u);
}

TEST(BTreeTest, VariableLengthKeysSortLexicographically) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 16);
  BTreeConfig config;
  config.leaf_capacity = 4;
  config.internal_capacity = 4;
  BTree tree(&pool, config);
  const std::vector<std::string> patterns = {"1",   "0",    "01",  "001",
                                             "000", "0110", "011", "11"};
  for (size_t i = 0; i < patterns.size(); ++i) {
    tree.Insert(ZKey::FromZValue(*ZValue::Parse(patterns[i])), i);
  }
  auto sorted = patterns;
  std::sort(sorted.begin(), sorted.end());
  const auto dump = Dump(tree);
  ASSERT_EQ(dump.size(), patterns.size());
  for (size_t i = 0; i < dump.size(); ++i) {
    EXPECT_EQ(dump[i].first.ToZValue().ToString(), sorted[i]);
  }
}

TEST(BTreeTest, DeleteSimple) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 16);
  BTree tree(&pool);
  for (uint64_t v = 0; v < 10; ++v) tree.Insert(Key(v), v);
  EXPECT_TRUE(tree.Delete(Key(5), 5));
  EXPECT_FALSE(tree.Delete(Key(5), 5));  // already gone
  EXPECT_FALSE(tree.Delete(Key(77), 77));
  EXPECT_EQ(tree.size(), 9u);
  const auto dump = Dump(tree);
  for (const auto& [key, payload] : dump) EXPECT_NE(payload, 5u);
}

class BTreeRandomOpsTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BTreeRandomOpsTest, MatchesReferenceModel) {
  const auto [leaf_cap, internal_cap] = GetParam();
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 32);
  BTreeConfig config;
  config.leaf_capacity = leaf_cap;
  config.internal_capacity = internal_cap;
  BTree tree(&pool, config);
  Model model;
  util::Rng rng(1000 + leaf_cap * 17 + internal_cap);

  for (int op = 0; op < 3000; ++op) {
    const uint64_t key_val = rng.NextBelow(500);  // dense: many duplicates
    const int key_len = 10 + static_cast<int>(rng.NextBelow(6));
    const ZKey key = Key(key_val, key_len);
    if (model.empty() || rng.NextBelow(100) < 65) {
      const uint64_t payload = rng.NextBelow(1000);
      tree.Insert(key, payload);
      model.emplace(key, payload);
    } else {
      // Delete a random existing entry half the time, a random (maybe
      // absent) one otherwise.
      if (rng.NextBelow(2) == 0) {
        auto it = model.begin();
        std::advance(it, rng.NextBelow(model.size()));
        EXPECT_TRUE(tree.Delete(it->first, it->second));
        model.erase(it);
      } else {
        const uint64_t payload = rng.NextBelow(1000);
        const bool in_model =
            model.find({key, payload}) != model.end();
        EXPECT_EQ(tree.Delete(key, payload), in_model);
        if (in_model) model.erase(model.find({key, payload}));
      }
    }
    if (op % 250 == 0) {
      ASSERT_TRUE(tree.CheckInvariants()) << "op " << op;
    }
  }
  ASSERT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), model.size());
  const auto dump = Dump(tree);
  ASSERT_EQ(dump.size(), model.size());
  size_t i = 0;
  for (const auto& entry : model) {
    // Keys must match exactly; payload order within duplicate runs is the
    // tree's choice, so compare keys here and payload sets below.
    EXPECT_EQ(dump[i].first, entry.first) << "i=" << i;
    ++i;
  }
  // Payload multisets per key must match.
  std::map<ZKey, std::multiset<uint64_t>> tree_payloads, model_payloads;
  for (const auto& [k, p] : dump) tree_payloads[k].insert(p);
  for (const auto& [k, p] : model) model_payloads[k].insert(p);
  EXPECT_EQ(tree_payloads, model_payloads);
}

INSTANTIATE_TEST_SUITE_P(
    Capacities, BTreeRandomOpsTest,
    ::testing::Values(std::make_pair(4, 4), std::make_pair(5, 3),
                      std::make_pair(20, 10), std::make_pair(3, 8)));

TEST(BTreeTest, BulkLoadMatchesInserts) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 32);
  BTreeConfig config;
  config.leaf_capacity = 20;
  config.internal_capacity = 8;

  util::Rng rng(333);
  std::vector<LeafEntry> entries;
  for (int i = 0; i < 2000; ++i) {
    entries.push_back(LeafEntry{Key(rng.NextBelow(100000), 20),
                                static_cast<uint64_t>(i)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const LeafEntry& a, const LeafEntry& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.payload < b.payload;
            });
  BTree loaded = BTree::BulkLoad(&pool, entries, config);
  EXPECT_EQ(loaded.size(), entries.size());
  EXPECT_TRUE(loaded.CheckInvariants());

  const auto dump = Dump(loaded);
  ASSERT_EQ(dump.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(dump[i].first, entries[i].key);
    EXPECT_EQ(dump[i].second, entries[i].payload);
  }
}

TEST(BTreeTest, BulkLoadPartialFillLeavesRoomForInserts) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 32);
  BTreeConfig config;
  config.leaf_capacity = 10;
  std::vector<LeafEntry> entries;
  for (uint64_t i = 0; i < 100; ++i) entries.push_back({Key(i * 10, 16), i});
  BTree tree = BTree::BulkLoad(&pool, entries, config, 0.7);
  const auto shape_before = tree.ComputeShape();
  // At fill 0.7, leaves hold 7 of 10: more pages than a packed load.
  EXPECT_GE(shape_before.leaf_pages, 100u / 7);
  for (uint64_t i = 0; i < 50; ++i) tree.Insert(Key(i * 10 + 5, 16), 1000 + i);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), 150u);
}

TEST(BTreeTest, BulkLoadEmptyAndSingle) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 16);
  BTree empty = BTree::BulkLoad(&pool, {}, {});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.CheckInvariants());

  const LeafEntry one[] = {{Key(5), 5}};
  BTree single = BTree::BulkLoad(&pool, one, {});
  EXPECT_EQ(single.size(), 1u);
  EXPECT_EQ(single.height(), 1);
  EXPECT_TRUE(single.CheckInvariants());
}

TEST(BTreeTest, CursorCountsLeafLoads) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 16);
  BTreeConfig config;
  config.leaf_capacity = 10;
  config.internal_capacity = 8;
  std::vector<LeafEntry> entries;
  for (uint64_t i = 0; i < 100; ++i) entries.push_back({Key(i, 16), i});
  BTree tree = BTree::BulkLoad(&pool, entries, config);

  BTree::Cursor cursor(&tree);
  ASSERT_TRUE(cursor.SeekFirst());
  uint64_t steps = 1;
  while (cursor.Next()) ++steps;
  EXPECT_EQ(steps, 100u);
  EXPECT_EQ(cursor.leaf_loads(), 10u);  // 100 entries / 10 per leaf
  EXPECT_EQ(cursor.leaf_entries_seen(), 100u);
}

TEST(BTreeTest, LeafSequenceReportsChainOrder) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 16);
  BTreeConfig config;
  config.leaf_capacity = 5;
  std::vector<LeafEntry> entries;
  for (uint64_t i = 0; i < 32; ++i) entries.push_back({Key(i, 16), i});
  BTree tree = BTree::BulkLoad(&pool, entries, config);
  const auto leaves = tree.LeafSequence();
  ASSERT_EQ(leaves.size(), 7u);  // ceil(32/5)
  uint64_t total = 0;
  for (size_t i = 0; i < leaves.size(); ++i) {
    total += leaves[i].entries;
    if (i > 0) {
      EXPECT_LT(leaves[i - 1].first_key, leaves[i].first_key);
    }
  }
  EXPECT_EQ(total, 32u);
}

TEST(BTreeTest, BulkLoadThenChurnKeepsInvariants) {
  // Mixed lifecycle: a packed bulk load followed by heavy interleaved
  // inserts and deletes must stay consistent with the reference model.
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 32);
  BTreeConfig config;
  config.leaf_capacity = 8;
  config.internal_capacity = 5;
  util::Rng rng(606);

  std::vector<LeafEntry> initial;
  for (uint64_t i = 0; i < 500; ++i) {
    initial.push_back(LeafEntry{Key(rng.NextBelow(5000), 16), i});
  }
  std::sort(initial.begin(), initial.end(),
            [](const LeafEntry& a, const LeafEntry& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.payload < b.payload;
            });
  BTree tree = BTree::BulkLoad(&pool, initial, config, /*fill=*/0.8);
  Model model;
  for (const auto& e : initial) model.emplace(e.key, e.payload);

  for (int op = 0; op < 2000; ++op) {
    if (rng.NextBelow(2) == 0 || model.empty()) {
      const ZKey key = Key(rng.NextBelow(5000), 16);
      const uint64_t payload = 1000 + op;
      tree.Insert(key, payload);
      model.emplace(key, payload);
    } else {
      auto it = model.begin();
      std::advance(it, rng.NextBelow(model.size()));
      ASSERT_TRUE(tree.Delete(it->first, it->second));
      model.erase(it);
    }
  }
  ASSERT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), model.size());
  const auto dump = Dump(tree);
  ASSERT_EQ(dump.size(), model.size());
  size_t i = 0;
  for (const auto& entry : model) {
    EXPECT_EQ(dump[i].first, entry.first);
    ++i;
  }
}

TEST(BTreeTest, DeleteDownToEmptyAndReuse) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 32);
  BTreeConfig config;
  config.leaf_capacity = 4;
  config.internal_capacity = 4;
  BTree tree(&pool, config);
  for (uint64_t v = 0; v < 300; ++v) tree.Insert(Key(v, 16), v);
  for (uint64_t v = 0; v < 300; ++v) ASSERT_TRUE(tree.Delete(Key(v, 16), v));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants());
  // The tree keeps working after total erasure.
  for (uint64_t v = 0; v < 50; ++v) tree.Insert(Key(v, 16), v);
  EXPECT_EQ(tree.size(), 50u);
  EXPECT_TRUE(tree.CheckInvariants());
}

}  // namespace
}  // namespace probe::btree
