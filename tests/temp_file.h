#ifndef PROBE_TESTS_TEMP_FILE_H_
#define PROBE_TESTS_TEMP_FILE_H_

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

/// \file
/// Scoped temp-file paths for tests that touch real files.
///
/// Every test database used to be removed with a trailing std::remove —
/// which leaked the file whenever an assertion failed first, and never
/// covered sibling files (a ".wal" beside the database). TempFile is the
/// RAII replacement: a unique path under gtest's TempDir that is deleted —
/// along with its WAL siblings — when the object goes out of scope,
/// pass or fail. Uniqueness (pid + counter) keeps parallel ctest runs and
/// repeated in-process tests from colliding.

namespace probe::testutil {

/// A unique temp path, removed (with `.wal` / `.wal.tmp` siblings) on
/// destruction. The file itself is not created; the path is handed to
/// whatever pager or log wants to create it.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(std::string(::testing::TempDir()) + "probe_" +
              std::to_string(::getpid()) + "_" +
              std::to_string(counter_.fetch_add(1)) + "_" + name) {
    Remove();  // a colliding leftover from a crashed run would be stale
  }

  ~TempFile() { Remove(); }

  TempFile(const TempFile&) = delete;
  TempFile& operator=(const TempFile&) = delete;

  const std::string& path() const { return path_; }

  /// Path of the WAL that a DurableIndex/Wal opened on path() would use.
  std::string wal_path() const { return path_ + ".wal"; }

 private:
  void Remove() {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
    std::remove((path_ + ".wal.tmp").c_str());
  }

  static inline std::atomic<int> counter_{0};
  std::string path_;
};

}  // namespace probe::testutil

#endif  // PROBE_TESTS_TEMP_FILE_H_
