#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "btree/btree.h"
#include "index/zkd_index.h"
#include "storage/buffer_pool.h"
#include "storage/file_pager.h"
#include "temp_file.h"
#include "util/rng.h"

namespace probe {
namespace {

using btree::BTree;
using btree::LeafEntry;
using btree::ZKey;
using zorder::ZValue;

ZKey Key(uint64_t value) {
  return ZKey::FromZValue(ZValue::FromInteger(value, 20));
}

TEST(FilePagerTest, PagesSurviveReopen) {
  testutil::TempFile tmp("filepager_basic.db");
  const std::string& path = tmp.path();
  {
    storage::FilePager pager(path, /*truncate=*/true);
    ASSERT_TRUE(pager.ok());
    const storage::PageId a = pager.Allocate();
    const storage::PageId b = pager.Allocate();
    storage::Page page;
    page.Write<uint64_t>(0, 111);
    pager.Write(a, page);
    page.Write<uint64_t>(0, 222);
    pager.Write(b, page);
    pager.Sync();
  }
  {
    storage::FilePager pager(path);
    ASSERT_TRUE(pager.ok());
    EXPECT_EQ(pager.page_count(), 2u);
    storage::Page page;
    pager.Read(0, &page);
    EXPECT_EQ(page.Read<uint64_t>(0), 111u);
    pager.Read(1, &page);
    EXPECT_EQ(page.Read<uint64_t>(0), 222u);
  }
}

TEST(FilePagerTest, TruncateWipes) {
  testutil::TempFile tmp("filepager_trunc.db");
  const std::string& path = tmp.path();
  {
    storage::FilePager pager(path, /*truncate=*/true);
    pager.Allocate();
    pager.Allocate();
  }
  {
    storage::FilePager pager(path, /*truncate=*/true);
    EXPECT_EQ(pager.page_count(), 0u);
  }
}

TEST(BTreePersistenceTest, DetachAndAttachRoundTrip) {
  testutil::TempFile tmp("btree_persist.db");
  const std::string& path = tmp.path();
  btree::BTreeConfig config;
  config.leaf_capacity = 10;
  config.internal_capacity = 6;
  BTree::PersistentState state;
  util::Rng rng(3001);
  std::vector<std::pair<uint64_t, uint64_t>> inserted;

  {
    storage::FilePager pager(path, /*truncate=*/true);
    ASSERT_TRUE(pager.ok());
    storage::BufferPool pool(&pager, 32);
    BTree tree(&pool, config);
    for (int i = 0; i < 500; ++i) {
      const uint64_t key = rng.NextBelow(100000);
      tree.Insert(Key(key), static_cast<uint64_t>(i));
      inserted.emplace_back(key, static_cast<uint64_t>(i));
    }
    state = tree.DetachState();
    pool.FlushAll();
    pager.Sync();
  }

  {
    storage::FilePager pager(path);
    ASSERT_TRUE(pager.ok());
    storage::BufferPool pool(&pager, 32);
    BTree tree = BTree::Attach(&pool, state, config);
    EXPECT_EQ(tree.size(), 500u);
    EXPECT_TRUE(tree.CheckInvariants());

    // Every inserted entry is findable.
    for (const auto& [key, payload] : inserted) {
      BTree::Cursor cursor(&tree);
      ASSERT_TRUE(cursor.Seek(Key(key)));
      bool found = false;
      while (cursor.Valid() && cursor.entry().key == Key(key)) {
        if (cursor.entry().payload == payload) {
          found = true;
          break;
        }
        if (!cursor.Next()) break;
      }
      EXPECT_TRUE(found) << "key " << key;
    }

    // The reopened tree accepts further updates.
    tree.Insert(Key(424242), 99);
    EXPECT_TRUE(tree.Delete(Key(424242), 99));
    EXPECT_TRUE(tree.CheckInvariants());
  }
}

TEST(BTreePersistenceTest, IndexOverFilePager) {
  // Full stack: zkd index on a file, reopened and queried.
  testutil::TempFile tmp("zkd_persist.db");
  const std::string& path = tmp.path();
  const zorder::GridSpec grid{2, 8};
  btree::BTreeConfig config;
  config.leaf_capacity = 20;
  BTree::PersistentState state;
  util::Rng rng(3003);
  std::vector<index::PointRecord> points;
  for (uint64_t i = 0; i < 1000; ++i) {
    points.push_back({geometry::GridPoint(
                          {static_cast<uint32_t>(rng.NextBelow(256)),
                           static_cast<uint32_t>(rng.NextBelow(256))}),
                      i});
  }

  {
    storage::FilePager pager(path, /*truncate=*/true);
    storage::BufferPool pool(&pager, 64);
    auto index = index::ZkdIndex::Build(grid, &pool, points, config);
    state = index.tree().DetachState();
    pool.FlushAll();
    pager.Sync();
  }

  {
    storage::FilePager pager(path);
    storage::BufferPool pool(&pager, 64);
    auto index = index::ZkdIndex::Attach(grid, &pool, state, config);

    const geometry::GridBox box = geometry::GridBox::Make2D(50, 120, 30, 180);
    auto got = index.RangeSearch(box);
    std::sort(got.begin(), got.end());
    std::vector<uint64_t> expect;
    for (const auto& r : points) {
      if (box.ContainsPoint(r.point)) expect.push_back(r.id);
    }
    EXPECT_EQ(got, expect);
  }
}

}  // namespace
}  // namespace probe
