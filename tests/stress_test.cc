// Cross-configuration soak: one randomized sweep exercising the whole
// query stack under many grids, page capacities, schedules and merge
// strategies at once, cross-validated against brute force. Complements
// the per-module property tests by randomizing the *configuration* too.

#include <algorithm>

#include <gtest/gtest.h>

#include "baseline/bucket_kdtree.h"
#include "baseline/composite_index.h"
#include "index/nearest.h"
#include "index/zkd_index.h"
#include "util/rng.h"
#include "workload/datagen.h"

namespace probe {
namespace {

using geometry::GridBox;
using geometry::GridPoint;
using index::PointRecord;
using zorder::GridSpec;

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<uint64_t> BruteForce(const std::vector<PointRecord>& points,
                                 const GridBox& box) {
  std::vector<uint64_t> out;
  for (const auto& r : points) {
    if (box.ContainsPoint(r.point)) out.push_back(r.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// A random valid schedule for `dims` x `bits`.
GridSpec RandomSchedule(int dims, int bits, util::Rng& rng) {
  std::vector<int> schedule;
  for (int d = 0; d < dims; ++d) {
    for (int b = 0; b < bits; ++b) schedule.push_back(d);
  }
  // Fisher-Yates shuffle of the split order.
  for (size_t i = schedule.size(); i > 1; --i) {
    std::swap(schedule[i - 1], schedule[rng.NextBelow(i)]);
  }
  return GridSpec::WithSchedule(dims, bits, schedule);
}

TEST(StressTest, RandomConfigurationsCrossValidate) {
  util::Rng rng(424242);
  for (int round = 0; round < 25; ++round) {
    // Random configuration.
    const int dims = 1 + static_cast<int>(rng.NextBelow(3));  // 1..3
    const int bits =
        dims == 1 ? 8 + static_cast<int>(rng.NextBelow(8))
                  : (dims == 2 ? 4 + static_cast<int>(rng.NextBelow(7))
                               : 3 + static_cast<int>(rng.NextBelow(4)));
    const bool custom = rng.NextBelow(3) == 0;
    const GridSpec grid =
        custom ? RandomSchedule(dims, bits, rng) : GridSpec{dims, bits};
    ASSERT_TRUE(grid.Valid());
    const int capacity = 3 + static_cast<int>(rng.NextBelow(30));
    const size_t n = 50 + rng.NextBelow(500);

    // Random data (clustered half the time, via modding a small range).
    std::vector<PointRecord> points;
    const uint64_t spread =
        rng.NextBelow(2) == 0 ? grid.side() : 1 + grid.side() / 7;
    for (uint64_t i = 0; i < n; ++i) {
      std::vector<uint32_t> coords(dims);
      for (int d = 0; d < dims; ++d) {
        coords[d] = static_cast<uint32_t>(rng.NextBelow(spread));
      }
      points.push_back({GridPoint(std::span<const uint32_t>(coords)), i});
    }

    storage::MemPager pager;
    storage::BufferPool pool(&pager, 32);
    btree::BTreeConfig config;
    config.leaf_capacity = capacity;
    config.internal_capacity = 3 + static_cast<int>(rng.NextBelow(20));
    auto index = index::ZkdIndex::Build(grid, &pool, points, config,
                                        0.5 + rng.NextDouble() * 0.5);
    ASSERT_TRUE(index.tree().CheckInvariants()) << "round " << round;

    // A few random box queries through every merge strategy.
    for (int q = 0; q < 6; ++q) {
      std::vector<zorder::DimRange> ranges(dims);
      for (int d = 0; d < dims; ++d) {
        uint32_t a = static_cast<uint32_t>(rng.NextBelow(grid.side()));
        uint32_t b = static_cast<uint32_t>(rng.NextBelow(grid.side()));
        ranges[d] = {std::min(a, b), std::max(a, b)};
      }
      const GridBox box{std::span<const zorder::DimRange>(ranges)};
      const auto expect = BruteForce(points, box);
      for (const auto merge :
           {index::SearchOptions::Merge::kSkipMerge,
            index::SearchOptions::Merge::kPlainMerge,
            index::SearchOptions::Merge::kBigMin}) {
        index::SearchOptions options;
        options.merge = merge;
        EXPECT_EQ(Sorted(index.RangeSearch(box, nullptr, options)), expect)
            << "round " << round << " dims " << dims << " custom " << custom;
      }
      // Depth-capped variant stays exact through verification.
      index::SearchOptions capped;
      capped.max_element_depth =
          1 + static_cast<int>(rng.NextBelow(grid.total_bits()));
      EXPECT_EQ(Sorted(index.RangeSearch(box, nullptr, capped)), expect);
    }

    // Some churn, then re-validate one query.
    for (int op = 0; op < 60 && !points.empty(); ++op) {
      if (rng.NextBelow(2) == 0) {
        const size_t victim = rng.NextBelow(points.size());
        ASSERT_TRUE(index.Delete(points[victim].point, points[victim].id));
        points.erase(points.begin() + victim);
      } else {
        std::vector<uint32_t> coords(dims);
        for (int d = 0; d < dims; ++d) {
          coords[d] = static_cast<uint32_t>(rng.NextBelow(grid.side()));
        }
        const PointRecord fresh{GridPoint(std::span<const uint32_t>(coords)),
                                100000 + static_cast<uint64_t>(op)};
        index.Insert(fresh.point, fresh.id);
        points.push_back(fresh);
      }
    }
    ASSERT_TRUE(index.tree().CheckInvariants()) << "round " << round;
    std::vector<zorder::DimRange> whole(dims);
    for (int d = 0; d < dims; ++d) {
      whole[d] = {0, static_cast<uint32_t>(grid.side() - 1)};
    }
    const GridBox all{std::span<const zorder::DimRange>(whole)};
    EXPECT_EQ(index.RangeSearch(all).size(), points.size());
  }
}

TEST(StressTest, StructuresAgreeOnUniform2D) {
  // zkd, composite, and bucket kd answer identically on a shared workload.
  const GridSpec grid{2, 8};
  util::Rng rng(515151);
  std::vector<PointRecord> points;
  for (uint64_t i = 0; i < 2000; ++i) {
    points.push_back({GridPoint({static_cast<uint32_t>(rng.NextBelow(256)),
                                 static_cast<uint32_t>(rng.NextBelow(256))}),
                      i});
  }
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 64);
  btree::BTreeConfig config;
  config.leaf_capacity = 20;
  auto zkd = index::ZkdIndex::Build(grid, &pool, points, config);
  auto composite = baseline::CompositeIndex::Build(grid, &pool, points, config);
  const auto bucket = baseline::BucketKdTree::Build(2, points, 20);

  for (int q = 0; q < 40; ++q) {
    uint32_t x1 = static_cast<uint32_t>(rng.NextBelow(256));
    uint32_t x2 = static_cast<uint32_t>(rng.NextBelow(256));
    uint32_t y1 = static_cast<uint32_t>(rng.NextBelow(256));
    uint32_t y2 = static_cast<uint32_t>(rng.NextBelow(256));
    const GridBox box = GridBox::Make2D(std::min(x1, x2), std::max(x1, x2),
                                        std::min(y1, y2), std::max(y1, y2));
    const auto expect = BruteForce(points, box);
    EXPECT_EQ(Sorted(zkd.RangeSearch(box)), expect);
    EXPECT_EQ(Sorted(composite.RangeSearch(box)), expect);
    EXPECT_EQ(Sorted(bucket.RangeSearch(box)), expect);
  }
}

}  // namespace
}  // namespace probe
