#include "relational/heap_file.h"

#include <gtest/gtest.h>

#include "storage/pager.h"
#include "util/rng.h"
#include "zorder/zvalue.h"

namespace probe::relational {
namespace {

using zorder::ZValue;

Schema TestSchema() {
  return Schema({{"id", ValueType::kInt},
                 {"score", ValueType::kReal},
                 {"name", ValueType::kString},
                 {"z", ValueType::kZValue}});
}

Tuple MakeTuple(int64_t id, double score, std::string name, ZValue z) {
  return Tuple{id, score, std::move(name), z};
}

TEST(HeapFileTest, EmptyFileScansNothing) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 8);
  HeapFile file(&pool, TestSchema());
  EXPECT_EQ(file.tuple_count(), 0u);
  EXPECT_EQ(file.page_count(), 0u);
  auto scanner = file.Scan();
  EXPECT_FALSE(scanner.Next().has_value());
}

TEST(HeapFileTest, RoundTripsAllValueTypes) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 8);
  HeapFile file(&pool, TestSchema());
  ASSERT_TRUE(file.Append(
      MakeTuple(42, 2.5, "hello", *ZValue::Parse("01101"))));
  ASSERT_TRUE(file.Append(MakeTuple(-7, -0.125, "", ZValue())));

  auto scanner = file.Scan();
  auto first = scanner.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(std::get<int64_t>((*first)[0]), 42);
  EXPECT_EQ(std::get<double>((*first)[1]), 2.5);
  EXPECT_EQ(std::get<std::string>((*first)[2]), "hello");
  EXPECT_EQ(std::get<ZValue>((*first)[3]).ToString(), "01101");
  auto second = scanner.Next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(std::get<int64_t>((*second)[0]), -7);
  EXPECT_TRUE(std::get<ZValue>((*second)[3]).IsEmpty());
  EXPECT_FALSE(scanner.Next().has_value());
}

TEST(HeapFileTest, SpillsAcrossPagesAndCountsIo) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 8);
  HeapFile file(&pool, TestSchema());
  util::Rng rng(7100);
  std::vector<Tuple> reference;
  for (int i = 0; i < 2000; ++i) {
    Tuple t = MakeTuple(i, rng.NextDouble(),
                        std::string(rng.NextBelow(40), 'x'),
                        ZValue::FromInteger(rng.Next(), 20));
    reference.push_back(t);
    ASSERT_TRUE(file.Append(t));
  }
  EXPECT_EQ(file.tuple_count(), 2000u);
  EXPECT_GT(file.page_count(), 10u);

  auto scanner = file.Scan();
  for (int i = 0; i < 2000; ++i) {
    auto tuple = scanner.Next();
    ASSERT_TRUE(tuple.has_value()) << i;
    for (size_t c = 0; c < tuple->size(); ++c) {
      EXPECT_TRUE(ValueEquals((*tuple)[c], reference[i][c]))
          << "tuple " << i << " col " << c;
    }
  }
  EXPECT_FALSE(scanner.Next().has_value());
  EXPECT_EQ(scanner.pages_read(), file.page_count());
}

TEST(HeapFileTest, RejectsOversizedTuple) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 8);
  HeapFile file(&pool, Schema({{"blob", ValueType::kString}}));
  EXPECT_FALSE(file.Append(Tuple{std::string(5000, 'x')}));
  EXPECT_EQ(file.tuple_count(), 0u);
  EXPECT_TRUE(file.Append(Tuple{std::string(1000, 'x')}));
}

TEST(HeapFileTest, ToRelationMaterializes) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 8);
  HeapFile file(&pool, TestSchema());
  for (int64_t i = 0; i < 50; ++i) {
    file.Append(MakeTuple(i, 0.5, "row", ZValue::FromInteger(i, 10)));
  }
  const Relation rel = file.ToRelation();
  EXPECT_EQ(rel.size(), 50u);
  EXPECT_EQ(std::get<int64_t>(rel.row(49)[0]), 49);
}

TEST(HeapFileTest, ScanGoesThroughTheBufferPool) {
  // Scanning a file bigger than the pool forces real (re)reads; a second
  // scan re-fetches evicted pages — the I/O behavior a DBMS scan has.
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 4);
  HeapFile file(&pool, Schema({{"pad", ValueType::kString}}));
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(file.Append(Tuple{std::string(400, 'a' + (i % 26))}));
  }
  ASSERT_GT(file.page_count(), 8u);
  pool.ResetStats();
  auto scan1 = file.Scan();
  while (scan1.Next().has_value()) {
  }
  const uint64_t misses_first = pool.stats().misses;
  EXPECT_GE(misses_first, file.page_count() - 4);  // most pages not resident
  auto scan2 = file.Scan();
  while (scan2.Next().has_value()) {
  }
  EXPECT_GT(pool.stats().misses, misses_first);  // evicted pages re-read
}

}  // namespace
}  // namespace probe::relational
