// The crash matrix: a seeded fault-injection sweep that kills the engine
// at every interesting instant and asserts recovery lands on the last
// committed batch, exactly.
//
// One deterministic workload script (inserts + deletes of live records,
// periodic checkpoints) is replayed over and over. Each cycle arms one
// fault — the log dying at record k (clean or torn), or the base file
// dying at write w (dropped or torn page) — runs the script until the
// engine dies, then reopens the database and checks three things:
//
//   1. the handle recovers (ok(), tree invariants hold),
//   2. every range scan matches an in-memory oracle of the batches that
//      committed before the crash — no lost batch, no resurrected one,
//   3. the recovered database accepts new batches.
//
// The sweep covers 240 crash/recover cycles (WAL records 0..119 with
// alternating torn tails, base writes 0..59 under both fault kinds), well
// past every record boundary the script can produce. scripts/check.sh
// runs this under ASan via the `recovery` ctest label.

#include <algorithm>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "index/durable_index.h"
#include "temp_file.h"
#include "util/rng.h"

namespace probe {
namespace {

using geometry::GridBox;
using geometry::GridPoint;
using index::DurableIndex;
using Op = index::DurableIndex::Op;

constexpr int kBatches = 12;
constexpr int kInsertsPerBatch = 6;
constexpr int kDeletesPerBatch = 2;
constexpr uint32_t kSide = 64;  // grid {2, 6}

struct Record {
  GridPoint point;
  uint64_t id = 0;
};

// The scripted workload: every cycle replays exactly this. Deletes target
// records inserted in strictly earlier batches, so a cycle that dies in
// batch b has executed only well-defined ops.
std::vector<std::vector<Op>> BuildScript() {
  util::Rng rng(0x5EED5EED);
  std::vector<std::vector<Op>> script;
  std::vector<Record> live;
  uint64_t next_id = 1;
  for (int b = 0; b < kBatches; ++b) {
    std::vector<Op> batch;
    std::vector<Record> added;
    for (int i = 0; i < kInsertsPerBatch; ++i) {
      const GridPoint p({static_cast<uint32_t>(rng.NextBelow(kSide)),
                         static_cast<uint32_t>(rng.NextBelow(kSide))});
      batch.push_back(Op::Insert(p, next_id));
      added.push_back({p, next_id});
      ++next_id;
    }
    for (int i = 0; i < kDeletesPerBatch && !live.empty(); ++i) {
      const size_t victim = rng.NextBelow(live.size());
      batch.push_back(Op::Delete(live[victim].point, live[victim].id));
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
    }
    live.insert(live.end(), added.begin(), added.end());
    script.push_back(std::move(batch));
  }
  return script;
}

bool CheckpointAfter(int batch) { return (batch + 1) % 3 == 0; }

// Folds a batch into the oracle. Only called for batches whose Apply
// returned true — the committed prefix of the script.
void FoldBatch(const std::vector<Op>& batch, std::vector<Record>* oracle) {
  for (const Op& op : batch) {
    if (op.kind == Op::Kind::kInsert) {
      oracle->push_back({op.point, op.id});
    } else {
      auto it = std::find_if(oracle->begin(), oracle->end(),
                             [&](const Record& r) { return r.id == op.id; });
      ASSERT_NE(it, oracle->end()) << "script deletes only live records";
      oracle->erase(it);
    }
  }
}

std::vector<uint64_t> OracleScan(const std::vector<Record>& oracle,
                                 const GridBox& box) {
  std::vector<uint64_t> ids;
  for (const Record& r : oracle) {
    if (box.ContainsPoint(r.point)) ids.push_back(r.id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

DurableIndex::Options SmallOptions() {
  DurableIndex::Options options;
  options.config.leaf_capacity = 8;  // deep-ish tree from few records
  options.pool_pages = 8;            // force mid-batch evictions
  return options;
}

// One kill-and-recover cycle. `arm` installs this cycle's fault into a
// freshly created database; the oracle accumulates committed batches.
void RunCycle(const std::vector<std::vector<Op>>& script,
              const std::string& label,
              const std::function<void(DurableIndex*)>& arm) {
  SCOPED_TRACE(label);
  testutil::TempFile tmp("crash_matrix");
  const zorder::GridSpec grid{2, 6};
  std::vector<Record> oracle;

  {
    DurableIndex::Options options = SmallOptions();
    options.truncate = true;
    DurableIndex db(grid, tmp.path(), options);
    arm(&db);
    // With the fault armed before the first batch, even the initial empty
    // commit may already have died; run the script only on a live engine.
    for (int b = 0; db.ok() && b < kBatches; ++b) {
      if (!db.Apply(script[b])) break;
      ASSERT_NO_FATAL_FAILURE(FoldBatch(script[b], &oracle));
      if (CheckpointAfter(b) && !db.Checkpoint()) break;
    }
    // The handle dies here — no shutdown, no flush. Whatever reached the
    // log is all the next open gets.
  }

  DurableIndex db(grid, tmp.path(), SmallOptions());
  ASSERT_TRUE(db.ok()) << "recovery must always produce a usable database";
  EXPECT_TRUE(db.index().tree().CheckInvariants());
  EXPECT_EQ(db.index().size(), oracle.size());

  const GridBox boxes[] = {
      GridBox::Make2D(0, kSide - 1, 0, kSide - 1),
      GridBox::Make2D(5, 30, 10, 40),
      GridBox::Make2D(32, kSide - 1, 0, 20),
  };
  for (const GridBox& box : boxes) {
    auto got = db.index().RangeSearch(box);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, OracleScan(oracle, box));
  }

  // Recovered databases are not read-only relics: new batches commit.
  EXPECT_TRUE(db.Insert(GridPoint({1, 1}), 999999));
  EXPECT_TRUE(db.Delete(GridPoint({1, 1}), 999999));
}

TEST(CrashMatrixTest, WalDiesAtEveryRecordBoundary) {
  const auto script = BuildScript();
  for (uint64_t k = 0; k < 120; ++k) {
    // Even crash points drop the victim record whole; odd ones tear it at
    // a seeded, varying cut.
    const uint64_t tear = (k % 2 == 0) ? 0 : 1 + (k * 37) % 4096;
    RunCycle(script, "wal record " + std::to_string(k) +
                         " tear=" + std::to_string(tear),
             [&](DurableIndex* db) {
               db->wal().SetFaultPlan(
                   {.fail_after_records = k, .tear_bytes = tear});
             });
  }
}

TEST(CrashMatrixTest, BaseFileDiesAtEveryCheckpointWrite) {
  const auto script = BuildScript();
  using Kind = storage::FaultPlan::Kind;
  for (const Kind kind : {Kind::kFailStop, Kind::kShortWrite}) {
    for (uint64_t w = 0; w < 60; ++w) {
      RunCycle(script, std::string("base write ") + std::to_string(w) +
                           (kind == Kind::kFailStop ? " failstop" : " torn"),
               [&](DurableIndex* db) {
                 db->base_faults().SetFaultPlan(
                     {.kind = kind,
                      .fail_after_writes = w,
                      .seed = 0x9E3779B9u ^ w});
               });
    }
  }
}

}  // namespace
}  // namespace probe
