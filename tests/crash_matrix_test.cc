// The crash matrix: a seeded fault-injection sweep that kills the engine
// at every interesting instant and asserts recovery lands on the last
// committed batch, exactly.
//
// One deterministic workload script (inserts + deletes of live records,
// periodic checkpoints) is replayed over and over. Each cycle arms one
// fault — the log dying at record k (clean or torn), or the base file
// dying at write w (dropped or torn page) — runs the script until the
// engine dies, then reopens the database and checks three things:
//
//   1. the handle recovers (ok(), tree invariants hold),
//   2. every range scan matches an in-memory oracle of the batches that
//      committed before the crash — no lost batch, no resurrected one,
//   3. the recovered database accepts new batches.
//
// The sweep covers 240 single-writer crash/recover cycles (WAL records
// 0..119 with alternating torn tails, base writes 0..59 under both fault
// kinds), well past every record boundary the script can produce — plus
// 200 *concurrent-writer* cycles that kill the log mid-group-commit and
// check recovery is a durable prefix of the commit order (see
// ConcurrentWritersDieMidGroupCommit). scripts/check.sh runs this under
// ASan via the `recovery` ctest label.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "index/durable_index.h"
#include "temp_file.h"
#include "util/mutex.h"
#include "util/rng.h"

namespace probe {
namespace {

using geometry::GridBox;
using geometry::GridPoint;
using index::DurableIndex;
using Op = index::DurableIndex::Op;

constexpr int kBatches = 12;
constexpr int kInsertsPerBatch = 6;
constexpr int kDeletesPerBatch = 2;
constexpr uint32_t kSide = 64;  // grid {2, 6}

struct Record {
  GridPoint point;
  uint64_t id = 0;
};

// The scripted workload: every cycle replays exactly this. Deletes target
// records inserted in strictly earlier batches, so a cycle that dies in
// batch b has executed only well-defined ops.
std::vector<std::vector<Op>> BuildScript() {
  util::Rng rng(0x5EED5EED);
  std::vector<std::vector<Op>> script;
  std::vector<Record> live;
  uint64_t next_id = 1;
  for (int b = 0; b < kBatches; ++b) {
    std::vector<Op> batch;
    std::vector<Record> added;
    for (int i = 0; i < kInsertsPerBatch; ++i) {
      const GridPoint p({static_cast<uint32_t>(rng.NextBelow(kSide)),
                         static_cast<uint32_t>(rng.NextBelow(kSide))});
      batch.push_back(Op::Insert(p, next_id));
      added.push_back({p, next_id});
      ++next_id;
    }
    for (int i = 0; i < kDeletesPerBatch && !live.empty(); ++i) {
      const size_t victim = rng.NextBelow(live.size());
      batch.push_back(Op::Delete(live[victim].point, live[victim].id));
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
    }
    live.insert(live.end(), added.begin(), added.end());
    script.push_back(std::move(batch));
  }
  return script;
}

bool CheckpointAfter(int batch) { return (batch + 1) % 3 == 0; }

// Folds a batch into the oracle. Only called for batches whose Apply
// returned true — the committed prefix of the script.
void FoldBatch(const std::vector<Op>& batch, std::vector<Record>* oracle) {
  for (const Op& op : batch) {
    if (op.kind == Op::Kind::kInsert) {
      oracle->push_back({op.point, op.id});
    } else {
      auto it = std::find_if(oracle->begin(), oracle->end(),
                             [&](const Record& r) { return r.id == op.id; });
      ASSERT_NE(it, oracle->end()) << "script deletes only live records";
      oracle->erase(it);
    }
  }
}

std::vector<uint64_t> OracleScan(const std::vector<Record>& oracle,
                                 const GridBox& box) {
  std::vector<uint64_t> ids;
  for (const Record& r : oracle) {
    if (box.ContainsPoint(r.point)) ids.push_back(r.id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

DurableIndex::Options SmallOptions() {
  DurableIndex::Options options;
  options.config.leaf_capacity = 8;  // deep-ish tree from few records
  options.pool_pages = 8;            // force mid-batch evictions
  return options;
}

// One kill-and-recover cycle. `arm` installs this cycle's fault into a
// freshly created database; the oracle accumulates committed batches.
void RunCycle(const std::vector<std::vector<Op>>& script,
              const std::string& label,
              const std::function<void(DurableIndex*)>& arm) {
  SCOPED_TRACE(label);
  testutil::TempFile tmp("crash_matrix");
  const zorder::GridSpec grid{2, 6};
  std::vector<Record> oracle;

  {
    DurableIndex::Options options = SmallOptions();
    options.truncate = true;
    DurableIndex db(grid, tmp.path(), options);
    arm(&db);
    // With the fault armed before the first batch, even the initial empty
    // commit may already have died; run the script only on a live engine.
    for (int b = 0; db.ok() && b < kBatches; ++b) {
      if (!db.Apply(script[b])) break;
      ASSERT_NO_FATAL_FAILURE(FoldBatch(script[b], &oracle));
      if (CheckpointAfter(b) && !db.Checkpoint()) break;
    }
    // The handle dies here — no shutdown, no flush. Whatever reached the
    // log is all the next open gets.
  }

  DurableIndex db(grid, tmp.path(), SmallOptions());
  ASSERT_TRUE(db.ok()) << "recovery must always produce a usable database";
  EXPECT_TRUE(db.index().tree().CheckInvariants());
  EXPECT_EQ(db.index().size(), oracle.size());

  const GridBox boxes[] = {
      GridBox::Make2D(0, kSide - 1, 0, kSide - 1),
      GridBox::Make2D(5, 30, 10, 40),
      GridBox::Make2D(32, kSide - 1, 0, 20),
  };
  for (const GridBox& box : boxes) {
    auto got = db.index().RangeSearch(box);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, OracleScan(oracle, box));
  }

  // Recovered databases are not read-only relics: new batches commit.
  EXPECT_TRUE(db.Insert(GridPoint({1, 1}), 999999));
  EXPECT_TRUE(db.Delete(GridPoint({1, 1}), 999999));
}

TEST(CrashMatrixTest, WalDiesAtEveryRecordBoundary) {
  const auto script = BuildScript();
  for (uint64_t k = 0; k < 120; ++k) {
    // Even crash points drop the victim record whole; odd ones tear it at
    // a seeded, varying cut.
    const uint64_t tear = (k % 2 == 0) ? 0 : 1 + (k * 37) % 4096;
    RunCycle(script, "wal record " + std::to_string(k) +
                         " tear=" + std::to_string(tear),
             [&](DurableIndex* db) {
               db->wal().SetFaultPlan(
                   {.fail_after_records = k, .tear_bytes = tear});
             });
  }
}

TEST(CrashMatrixTest, BaseFileDiesAtEveryCheckpointWrite) {
  const auto script = BuildScript();
  using Kind = storage::FaultPlan::Kind;
  for (const Kind kind : {Kind::kFailStop, Kind::kShortWrite}) {
    for (uint64_t w = 0; w < 60; ++w) {
      RunCycle(script, std::string("base write ") + std::to_string(w) +
                           (kind == Kind::kFailStop ? " failstop" : " torn"),
               [&](DurableIndex* db) {
                 db->base_faults().SetFaultPlan(
                     {.kind = kind,
                      .fail_after_writes = w,
                      .seed = 0x9E3779B9u ^ w});
               });
    }
  }
}

// The concurrent-writer kill matrix: three writers race insert batches
// through group commit while the log dies at record k, for 200 seeded
// crash points — so the kill lands before, inside, and after group
// formation (a linger delay keeps groups forming). Recovery must land on
// a *durable prefix of the commit (epoch) order*:
//
//   1. every acked batch (Apply returned true) is recovered — acked means
//      durable, no matter which thread's fsync covered it,
//   2. every batch is all-or-nothing — no torn batches,
//   3. each thread's recovered batches are a prefix of that thread's
//      apply order — epochs are assigned in commit order and the log's
//      durable prefix is LSN-closed,
//   4. the recovered point count is exactly (published_epoch - 1) batches'
//      worth — the prefix is dense, nothing skipped or resurrected.
TEST(CrashMatrixTest, ConcurrentWritersDieMidGroupCommit) {
  constexpr int kThreads = 3;
  constexpr int kBatchesPerThread = 4;
  constexpr int kPerBatch = 4;
  const zorder::GridSpec grid{2, 6};

  // Thread-unique id spaces keep every batch's footprint disjoint.
  auto batch_ids = [](int t, int b) {
    std::vector<uint64_t> ids;
    for (int i = 0; i < kPerBatch; ++i) {
      ids.push_back(static_cast<uint64_t>(t) * 1000 +
                    static_cast<uint64_t>(b) * 10 + static_cast<uint64_t>(i) +
                    1);
    }
    return ids;
  };
  auto batch_ops = [&](int t, int b) {
    std::vector<Op> ops;
    for (uint64_t id : batch_ids(t, b)) {
      ops.push_back(Op::Insert(
          GridPoint({static_cast<uint32_t>((id * 37) % kSide),
                     static_cast<uint32_t>((id * 13) % kSide)}),
          id));
    }
    return ops;
  };

  for (uint64_t k = 0; k < 200; ++k) {
    SCOPED_TRACE("wal record " + std::to_string(k));
    testutil::TempFile tmp("crash_matrix_mt");
    const uint64_t tear = (k % 2 == 0) ? 0 : 1 + (k * 53) % 4096;

    util::Mutex log_mutex;
    struct Acked {
      uint64_t epoch;
      int thread;
      int batch;
    };
    std::vector<Acked> acked;
    // applied[t] = how many batches thread t managed to ack, in order.
    int applied[kThreads] = {0, 0, 0};

    {
      DurableIndex::Options options = SmallOptions();
      options.truncate = true;
      DurableIndex db(grid, tmp.path(), options);
      ASSERT_TRUE(db.ok());
      db.wal().SetFaultPlan({.fail_after_records = k, .tear_bytes = tear});
      db.wal().SetGroupCommitDelay(std::chrono::microseconds(50));

      std::vector<std::thread> threads;
      for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
          for (int b = 0; b < kBatchesPerThread; ++b) {
            const auto ops = batch_ops(t, b);
            uint64_t epoch = 0;
            if (!db.Apply(ops, &epoch)) break;  // engine died
            util::MutexLock lock(&log_mutex);
            acked.push_back({epoch, t, b});
            applied[t] = b + 1;
          }
        });
      }
      for (auto& th : threads) th.join();
      // Die here: no shutdown, no flush.
    }

    DurableIndex db(grid, tmp.path(), SmallOptions());
    ASSERT_TRUE(db.ok()) << "recovery must always produce a usable database";
    EXPECT_TRUE(db.index().tree().CheckInvariants());

    const uint64_t recovered_epoch = db.published_epoch();
    auto got =
        db.index().RangeSearch(GridBox::Make2D(0, kSide - 1, 0, kSide - 1));
    const std::set<uint64_t> got_set(got.begin(), got.end());
    ASSERT_EQ(got.size(), got_set.size());

    // (4) dense prefix: epoch 1 is the empty commit, each later epoch one
    // kPerBatch-sized batch.
    ASSERT_GE(recovered_epoch, 1u);
    EXPECT_EQ(got_set.size(), (recovered_epoch - 1) * kPerBatch);

    // (1) acked ⊆ recovered.
    for (const Acked& a : acked) {
      EXPECT_LE(a.epoch, recovered_epoch)
          << "thread " << a.thread << " batch " << a.batch
          << " was acked but its epoch is beyond the recovered one";
      for (uint64_t id : batch_ids(a.thread, a.batch)) {
        EXPECT_TRUE(got_set.count(id))
            << "acked batch lost id " << id << " (thread " << a.thread
            << " batch " << a.batch << ")";
      }
    }

    // (2) all-or-nothing, (3) per-thread prefix.
    for (int t = 0; t < kThreads; ++t) {
      bool prior_present = true;
      for (int b = 0; b < kBatchesPerThread; ++b) {
        const auto ids = batch_ids(t, b);
        size_t present = 0;
        for (uint64_t id : ids) present += got_set.count(id);
        EXPECT_TRUE(present == 0 || present == ids.size())
            << "torn batch: thread " << t << " batch " << b << " has "
            << present << "/" << ids.size() << " ids";
        if (present == ids.size()) {
          EXPECT_TRUE(prior_present)
              << "thread " << t << " batch " << b
              << " recovered without its predecessor";
        }
        prior_present = present == ids.size();
      }
    }

    // Recovered databases accept new writes.
    EXPECT_TRUE(db.Insert(GridPoint({1, 1}), 999999));
    EXPECT_TRUE(db.Delete(GridPoint({1, 1}), 999999));
  }
}

}  // namespace
}  // namespace probe
