#include "index/object_index.h"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "geometry/csg.h"
#include "geometry/primitives.h"
#include "geometry/raster.h"
#include "util/rng.h"

namespace probe::index {
namespace {

using geometry::BallObject;
using geometry::BoxObject;
using geometry::GridBox;
using geometry::GridPoint;
using zorder::GridSpec;

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// Pixel-level overlap reference between two objects.
bool CellsOverlap(const GridSpec& grid, const geometry::SpatialObject& a,
                  const geometry::SpatialObject& b) {
  for (uint32_t x = 0; x < grid.side(); ++x) {
    for (uint32_t y = 0; y < grid.side(); ++y) {
      const GridPoint p({x, y});
      if (a.ContainsCell(p) && b.ContainsCell(p)) return true;
    }
  }
  return false;
}

class ObjectIndexFixture : public ::testing::Test {
 protected:
  ObjectIndexFixture() : pool_(&pager_, 32) {}

  storage::MemPager pager_;
  storage::BufferPool pool_;
};

TEST_F(ObjectIndexFixture, EmptyIndex) {
  const GridSpec grid{2, 6};
  ZkdObjectIndex index(grid, &pool_);
  EXPECT_EQ(index.element_count(), 0u);
  EXPECT_TRUE(index.QueryBox(GridBox::Make2D(0, 63, 0, 63)).empty());
  EXPECT_TRUE(index.QueryPoint(GridPoint({3, 3})).empty());
}

TEST_F(ObjectIndexFixture, WindowQueryFindsOverlappingBoxes) {
  const GridSpec grid{2, 6};
  ZkdObjectIndex index(grid, &pool_);
  index.Insert(1, BoxObject(GridBox::Make2D(0, 10, 0, 10)));
  index.Insert(2, BoxObject(GridBox::Make2D(20, 30, 20, 30)));
  index.Insert(3, BoxObject(GridBox::Make2D(8, 22, 8, 22)));

  EXPECT_EQ(Sorted(index.QueryBox(GridBox::Make2D(0, 5, 0, 5))),
            (std::vector<uint64_t>{1}));
  EXPECT_EQ(Sorted(index.QueryBox(GridBox::Make2D(9, 21, 9, 21))),
            (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(Sorted(index.QueryBox(GridBox::Make2D(40, 60, 40, 60))),
            (std::vector<uint64_t>{}));
}

TEST_F(ObjectIndexFixture, PointStabbingQuery) {
  const GridSpec grid{2, 6};
  ZkdObjectIndex index(grid, &pool_);
  index.Insert(1, BoxObject(GridBox::Make2D(0, 31, 0, 31)));
  index.Insert(2, BoxObject(GridBox::Make2D(16, 47, 16, 47)));
  index.Insert(3, BallObject({40.0, 40.0}, 5.0));

  EXPECT_EQ(Sorted(index.QueryPoint(GridPoint({5, 5}))),
            (std::vector<uint64_t>{1}));
  EXPECT_EQ(Sorted(index.QueryPoint(GridPoint({20, 20}))),
            (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(Sorted(index.QueryPoint(GridPoint({40, 40}))),
            (std::vector<uint64_t>{2, 3}));
  EXPECT_TRUE(index.QueryPoint(GridPoint({60, 5})).empty());
}

TEST_F(ObjectIndexFixture, QueryMatchesPairwiseOverlapReference) {
  const GridSpec grid{2, 5};
  ZkdObjectIndex index(grid, &pool_);
  util::Rng rng(811);
  std::vector<std::shared_ptr<const geometry::SpatialObject>> objects;
  for (uint64_t id = 1; id <= 30; ++id) {
    std::shared_ptr<const geometry::SpatialObject> object;
    if (rng.NextBelow(2) == 0) {
      const uint32_t x = static_cast<uint32_t>(rng.NextBelow(24));
      const uint32_t y = static_cast<uint32_t>(rng.NextBelow(24));
      object = std::make_shared<BoxObject>(GridBox::Make2D(
          x, x + static_cast<uint32_t>(rng.NextBelow(8)), y,
          y + static_cast<uint32_t>(rng.NextBelow(8))));
    } else {
      object = std::make_shared<BallObject>(
          std::vector<double>{static_cast<double>(rng.NextBelow(32)),
                              static_cast<double>(rng.NextBelow(32))},
          1.0 + static_cast<double>(rng.NextBelow(5)));
    }
    objects.push_back(object);
    index.Insert(id, *object);
  }

  for (int q = 0; q < 20; ++q) {
    const uint32_t x = static_cast<uint32_t>(rng.NextBelow(24));
    const uint32_t y = static_cast<uint32_t>(rng.NextBelow(24));
    const GridBox window = GridBox::Make2D(
        x, x + static_cast<uint32_t>(rng.NextBelow(10)), y,
        y + static_cast<uint32_t>(rng.NextBelow(10)));
    const BoxObject probe(window);
    std::vector<uint64_t> expect;
    for (uint64_t id = 1; id <= objects.size(); ++id) {
      if (CellsOverlap(grid, *objects[id - 1], probe)) expect.push_back(id);
    }
    EXPECT_EQ(Sorted(index.QueryBox(window)), expect)
        << "window " << window.ToString();
  }
}

TEST_F(ObjectIndexFixture, RemoveerasesExactlyTheObject) {
  const GridSpec grid{2, 6};
  ZkdObjectIndex index(grid, &pool_);
  const BoxObject a(GridBox::Make2D(0, 15, 0, 15));
  const BoxObject b(GridBox::Make2D(10, 25, 10, 25));
  const uint64_t a_elements = index.Insert(1, a);
  index.Insert(2, b);
  EXPECT_EQ(Sorted(index.QueryBox(GridBox::Make2D(0, 5, 0, 5))),
            (std::vector<uint64_t>{1}));

  EXPECT_EQ(index.Remove(1, a), a_elements);
  EXPECT_TRUE(index.QueryBox(GridBox::Make2D(0, 5, 0, 5)).empty());
  EXPECT_EQ(Sorted(index.QueryBox(GridBox::Make2D(12, 12, 12, 12))),
            (std::vector<uint64_t>{2}));
  // Removing again finds nothing.
  EXPECT_EQ(index.Remove(1, a), 0u);
}

TEST_F(ObjectIndexFixture, GeneralProbeObject) {
  const GridSpec grid{2, 6};
  ZkdObjectIndex index(grid, &pool_);
  index.Insert(1, BoxObject(GridBox::Make2D(0, 20, 0, 20)));
  index.Insert(2, BoxObject(GridBox::Make2D(40, 60, 40, 60)));
  // Probe with a ball overlapping only object 2.
  const BallObject probe({50.0, 50.0}, 6.0);
  ObjectQueryStats stats;
  EXPECT_EQ(Sorted(index.QueryOverlapping(probe, &stats)),
            (std::vector<uint64_t>{2}));
  EXPECT_GT(stats.probe_elements, 0u);
  EXPECT_EQ(stats.result_objects, 1u);
}

TEST_F(ObjectIndexFixture, ContainmentQueryDistinguishesFromOverlap) {
  const GridSpec grid{2, 6};
  ZkdObjectIndex index(grid, &pool_);
  index.Insert(1, BoxObject(GridBox::Make2D(5, 10, 5, 10)));    // inside
  index.Insert(2, BoxObject(GridBox::Make2D(18, 30, 18, 30)));  // straddles
  index.Insert(3, BoxObject(GridBox::Make2D(40, 50, 40, 50)));  // outside
  index.Insert(4, BallObject({12.0, 12.0}, 4.0));               // inside

  const GridBox window = GridBox::Make2D(2, 20, 2, 20);
  EXPECT_EQ(Sorted(index.QueryBox(window)),
            (std::vector<uint64_t>{1, 2, 4}));  // overlap finds 3 of them
  ObjectQueryStats stats;
  EXPECT_EQ(index.QueryContained(window, &stats),
            (std::vector<uint64_t>{1, 4}));  // containment drops the straddler
  EXPECT_EQ(stats.prefix_lookups, 0u);  // no ancestor lookups needed
}

TEST_F(ObjectIndexFixture, ContainmentMatchesReference) {
  const GridSpec grid{2, 5};
  ZkdObjectIndex index(grid, &pool_);
  util::Rng rng(821);
  std::vector<std::shared_ptr<const geometry::SpatialObject>> objects;
  for (uint64_t id = 1; id <= 25; ++id) {
    const uint32_t x = static_cast<uint32_t>(rng.NextBelow(26));
    const uint32_t y = static_cast<uint32_t>(rng.NextBelow(26));
    auto object = std::make_shared<BoxObject>(GridBox::Make2D(
        x, x + static_cast<uint32_t>(rng.NextBelow(6)), y,
        y + static_cast<uint32_t>(rng.NextBelow(6))));
    objects.push_back(object);
    index.Insert(id, *object);
  }
  for (int q = 0; q < 15; ++q) {
    const uint32_t x = static_cast<uint32_t>(rng.NextBelow(20));
    const uint32_t y = static_cast<uint32_t>(rng.NextBelow(20));
    const GridBox window = GridBox::Make2D(
        x, x + 5 + static_cast<uint32_t>(rng.NextBelow(8)), y,
        y + 5 + static_cast<uint32_t>(rng.NextBelow(8)));
    std::vector<uint64_t> expect;
    for (uint64_t id = 1; id <= objects.size(); ++id) {
      const auto* box =
          static_cast<const BoxObject*>(objects[id - 1].get());
      if (window.ContainsBox(box->box())) expect.push_back(id);
    }
    EXPECT_EQ(index.QueryContained(window), expect)
        << "window " << window.ToString();
  }
}

TEST_F(ObjectIndexFixture, ContainmentAfterRemove) {
  const GridSpec grid{2, 5};
  ZkdObjectIndex index(grid, &pool_);
  const BoxObject a(GridBox::Make2D(2, 6, 2, 6));
  index.Insert(1, a);
  const GridBox window = GridBox::Make2D(0, 10, 0, 10);
  EXPECT_EQ(index.QueryContained(window), (std::vector<uint64_t>{1}));
  index.Remove(1, a);
  EXPECT_TRUE(index.QueryContained(window).empty());
}

TEST_F(ObjectIndexFixture, AncestorContainmentIsFound) {
  // A huge stored object fully containing a tiny probe: the stored
  // elements are short prefixes that precede the probe in key order and
  // are only reachable through the ancestor lookups.
  const GridSpec grid{2, 6};
  ZkdObjectIndex index(grid, &pool_);
  index.Insert(7, BoxObject(GridBox::Make2D(0, 63, 0, 63)));  // whole space
  ObjectQueryStats stats;
  EXPECT_EQ(index.QueryBox(GridBox::Make2D(33, 33, 17, 17), &stats),
            (std::vector<uint64_t>{7}));
  EXPECT_GT(stats.prefix_lookups, 0u);
}

}  // namespace
}  // namespace probe::index
