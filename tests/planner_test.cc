// Planner correctness: every physical plan the planner emits returns
// exactly what the direct index / join calls return. The serial and
// parallel z plans are bitwise identical to the direct calls (same merge,
// same order); the bucket-kd fallback returns the same set in the tree's
// traversal order. This test also runs under TSan (scripts/check.sh) to
// certify the parallel plans race-free.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/primitives.h"
#include "index/cost_model.h"
#include "index/nearest.h"
#include "query/executor.h"
#include "query/explain.h"
#include "query/planner.h"
#include "relational/operators.h"
#include "relational/spatial_join.h"
#include "util/rng.h"
#include "workload/datagen.h"
#include "workload/experiment.h"
#include "workload/querygen.h"

namespace probe::query {
namespace {

using geometry::GridBox;
using relational::Relation;
using relational::Schema;
using relational::Tuple;
using relational::ValueEquals;
using relational::ValueType;
using zorder::GridSpec;

/// One index + everything the planner may use, over a generated workload.
struct PlannerFixture {
  GridSpec grid{2, 10};
  std::vector<index::PointRecord> points;
  workload::BuiltIndex built;
  index::CostModel model;
  baseline::BucketKdTree kd_tree;

  explicit PlannerFixture(workload::Distribution dist =
                              workload::Distribution::kUniform,
                          size_t count = 5000, uint64_t seed = 7100)
      : points([&] {
          workload::DataGenConfig data;
          data.distribution = dist;
          data.count = count;
          data.seed = seed;
          return GeneratePoints(grid, data);
        }()),
        built(workload::BuildZkdIndex(grid, points, 20, 256)),
        model(index::CostModel::FromIndex(*built.index)),
        kd_tree(baseline::BucketKdTree::Build(grid.dims, points, 20)) {}

  PlannerContext Context(util::ThreadPool* pool = nullptr,
                         bool with_kd = false) const {
    PlannerContext ctx;
    ctx.index = built.index.get();
    ctx.cost_model = &model;
    ctx.pool = pool;
    if (with_kd) ctx.kd_tree = &kd_tree;
    return ctx;
  }
};

void ExpectRelationsEqual(const Relation& a, const Relation& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.schema().column_count(), b.schema().column_count());
  for (size_t i = 0; i < a.size(); ++i) {
    const Tuple& ta = a.row(i);
    const Tuple& tb = b.row(i);
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t j = 0; j < ta.size(); ++j) {
      ASSERT_TRUE(ValueEquals(ta[j], tb[j])) << "row " << i << " col " << j;
    }
  }
}

TEST(PlannerTest, SerialRangePlanIsIdenticalToDirectSearch) {
  const PlannerFixture fx;
  const PlannerContext ctx = fx.Context();
  util::Rng rng(7200);
  for (const double volume : {0.001, 0.01, 0.05}) {
    for (const auto& box :
         workload::MakeQueryBoxes2D(fx.grid, volume, 2.0, 4, rng)) {
      PlannedQuery planned = Plan(Query::Range(box), ctx);
      const auto ids = ExecuteIds(*planned.root);
      EXPECT_EQ(ids, fx.built.index->RangeSearch(box)) << planned.summary;
    }
  }
}

TEST(PlannerTest, ParallelRangePlanIsIdenticalToDirectSearch) {
  const PlannerFixture fx;
  util::ThreadPool pool(3);
  const PlannerContext ctx = fx.Context(&pool);
  PlannerOptions options;
  options.parallel_page_threshold = 1;  // force parallel plans
  options.pages_per_lane = 1;
  util::Rng rng(7300);
  for (const auto& box :
       workload::MakeQueryBoxes2D(fx.grid, 0.05, 1.0, 6, rng)) {
    PlannedQuery planned = Plan(Query::Range(box), ctx, options);
    EXPECT_NE(planned.summary.find("ParallelRangeScan"), std::string::npos)
        << planned.summary;
    const auto ids = ExecuteIds(*planned.root);
    EXPECT_EQ(ids, fx.built.index->RangeSearch(box)) << planned.summary;
  }
}

TEST(PlannerTest, DepthCappedPlanStaysExact) {
  const PlannerFixture fx;
  const PlannerContext ctx = fx.Context();
  PlannerOptions options;
  options.element_budget = 64;  // force a coarse decomposition cap
  util::Rng rng(7400);
  bool saw_cap = false;
  for (const auto& box :
       workload::MakeQueryBoxes2D(fx.grid, 0.10, 1.0, 4, rng)) {
    PlannedQuery planned = Plan(Query::Range(box), ctx, options);
    if (planned.summary.find("depth=full") == std::string::npos) {
      saw_cap = true;
    }
    // Capped execution verifies candidates, so results match the
    // full-depth search exactly.
    const auto ids = ExecuteIds(*planned.root);
    EXPECT_EQ(ids, fx.built.index->RangeSearch(box)) << planned.summary;
  }
  EXPECT_TRUE(saw_cap) << "budget of 64 elements should cap 10%-volume boxes";
}

TEST(PlannerTest, KdFallbackPlanReturnsSameIdSet) {
  const PlannerFixture fx;
  PlannerContext ctx = fx.Context(nullptr, /*with_kd=*/true);
  PlannerOptions options;
  options.kd_advantage = 1e9;  // make the fallback always look better
  util::Rng rng(7500);
  for (const auto& box :
       workload::MakeQueryBoxes2D(fx.grid, 0.02, 1.0, 4, rng)) {
    PlannedQuery planned = Plan(Query::Range(box), ctx, options);
    EXPECT_NE(planned.summary.find("BucketKdScan"), std::string::npos)
        << planned.summary;
    auto ids = ExecuteIds(*planned.root);
    auto expected = fx.built.index->RangeSearch(box);
    std::sort(ids.begin(), ids.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(ids, expected);
  }
}

TEST(PlannerTest, KdFallbackIsNotChosenByDefaultOnSmallQueries) {
  const PlannerFixture fx;
  PlannerContext ctx = fx.Context(nullptr, /*with_kd=*/true);
  util::Rng rng(7550);
  for (const auto& box :
       workload::MakeQueryBoxes2D(fx.grid, 0.01, 1.0, 4, rng)) {
    PlannedQuery planned = Plan(Query::Range(box), ctx);
    EXPECT_NE(planned.summary.find("ZkdRangeScan"), std::string::npos)
        << planned.summary;
  }
}

TEST(PlannerTest, ObjectSearchPlanIsIdenticalToDirectSearch) {
  const PlannerFixture fx;
  util::ThreadPool pool(3);
  const geometry::BallObject ball({512.0, 512.0}, 90.0);
  const auto bound = GridBox::Make2D(421, 603, 421, 603);
  const auto expected = fx.built.index->SearchObject(ball);

  for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr), &pool}) {
    PlannerContext ctx = fx.Context(p);
    PlannerOptions options;
    options.parallel_page_threshold = 1;
    options.pages_per_lane = 1;
    PlannedQuery planned =
        Plan(Query::ObjectSearch(ball, bound), ctx, options);
    const auto ids = ExecuteIds(*planned.root);
    EXPECT_EQ(ids, expected) << planned.summary;
  }
}

TEST(PlannerTest, WithinDistancePlanIsIdenticalToDirectCall) {
  const PlannerFixture fx;
  const PlannerContext ctx = fx.Context();
  const geometry::GridPoint center({300, 700});
  for (const double radius : {5.0, 40.0, 130.0}) {
    PlannedQuery planned = Plan(Query::WithinDistance(center, radius), ctx);
    const auto ids = ExecuteIds(*planned.root);
    EXPECT_EQ(ids, index::WithinDistance(*fx.built.index, center, radius))
        << planned.summary;
  }
}

TEST(PlannerTest, KNearestPlanIsIdenticalToDirectCall) {
  const PlannerFixture fx;
  const PlannerContext ctx = fx.Context();
  const geometry::GridPoint center({100, 900});
  PlannedQuery planned = Plan(Query::KNearest(center, 12), ctx);
  const ExecutionResult result = Execute(*planned.root);
  const auto expected = index::KNearest(*fx.built.index, center, 12);
  ASSERT_EQ(result.rows.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(std::get<int64_t>(result.rows.row(i)[0]),
              static_cast<int64_t>(expected[i].id));
    EXPECT_EQ(std::get<int64_t>(result.rows.row(i)[1]),
              static_cast<int64_t>(expected[i].distance2));
  }
}

/// Builds an object relation (schema: id) of boxes registered in `catalog`,
/// covering a band of the space.
Relation MakeBoxRelation(relational::ObjectCatalog* catalog, int count,
                         uint32_t origin, uint32_t step, uint32_t size) {
  Relation rel(Schema({{"id", ValueType::kInt}}));
  for (int i = 0; i < count; ++i) {
    const uint32_t lo = origin + static_cast<uint32_t>(i) * step;
    const auto id = catalog->Register(std::make_shared<geometry::BoxObject>(
        GridBox::Make2D(lo, lo + size, lo, lo + size)));
    rel.Add({static_cast<int64_t>(id)});
  }
  return rel;
}

TEST(PlannerTest, JoinPlanMatchesDirectDecomposeAndJoin) {
  const PlannerFixture fx;
  relational::ObjectCatalog catalog;
  const Relation r_rel = MakeBoxRelation(&catalog, 30, 10, 30, 25);
  const Relation s_rel = MakeBoxRelation(&catalog, 30, 20, 30, 25);

  const Relation r_elems = relational::DecomposeRelation(
      fx.grid, r_rel, "id", catalog, "zr");
  const Relation s_elems = relational::DecomposeRelation(
      fx.grid, s_rel, "id", catalog, "zs");
  const Relation expected =
      relational::SpatialJoin(r_elems, "zr", s_elems, "zs");
  ASSERT_GT(expected.size(), 0u);

  PlannerContext ctx = fx.Context();
  ctx.catalog = &catalog;

  // Decompose-then-join: both sides are object relations.
  {
    Query q = Query::SpatialJoin({&r_rel, "id", ""}, {&s_rel, "id", ""});
    PlannedQuery planned = Plan(q, ctx);
    const ExecutionResult result = Execute(*planned.root);
    ExpectRelationsEqual(result.rows, expected);
  }
  // Merge join over pre-decomposed element relations.
  {
    Query q = Query::SpatialJoin({&r_elems, "id", "zr"},
                                 {&s_elems, "id", "zs"});
    PlannedQuery planned = Plan(q, ctx);
    const ExecutionResult result = Execute(*planned.root);
    ExpectRelationsEqual(result.rows, expected);
  }
  // Parallel merge join (forced by a zero row threshold).
  {
    util::ThreadPool pool(3);
    ctx.pool = &pool;
    PlannerOptions options;
    options.join_parallel_row_threshold = 0;
    Query q = Query::SpatialJoin({&r_rel, "id", ""}, {&s_rel, "id", ""});
    PlannedQuery planned = Plan(q, ctx, options);
    EXPECT_NE(planned.summary.find("ParallelMergeSpatialJoin"),
              std::string::npos)
        << planned.summary;
    const ExecutionResult result = Execute(*planned.root);
    ExpectRelationsEqual(result.rows, expected);
  }
}

TEST(PlannerTest, DisjointJoinBoundsPlanToEmptyResult) {
  const PlannerFixture fx;
  relational::ObjectCatalog catalog;
  const Relation r_rel = MakeBoxRelation(&catalog, 5, 10, 20, 10);
  const Relation s_rel = MakeBoxRelation(&catalog, 5, 800, 20, 10);

  PlannerContext ctx = fx.Context();
  ctx.catalog = &catalog;
  Query q = Query::SpatialJoin({&r_rel, "id", ""}, {&s_rel, "id", ""});
  q.r_bound = GridBox::Make2D(10, 120, 10, 120);
  q.s_bound = GridBox::Make2D(800, 900, 800, 900);
  PlannedQuery planned = Plan(q, ctx);
  EXPECT_NE(planned.summary.find("EmptyResult"), std::string::npos)
      << planned.summary;
  const ExecutionResult result = Execute(*planned.root);
  EXPECT_EQ(result.rows.size(), 0u);
  // The empty plan still presents the join's output schema.
  EXPECT_EQ(result.rows.schema().column_count(), 4);
}

TEST(PlannerTest, FilterProjectLimitDecorationApplies) {
  const PlannerFixture fx;
  const PlannerContext ctx = fx.Context();
  const auto box = GridBox::Make2D(0, 1023, 0, 1023);
  Query q = Query::Range(box);
  q.filter = [](const Tuple& t) { return std::get<int64_t>(t[0]) % 2 == 0; };
  q.projection = {"id"};
  q.limit = 10;
  PlannedQuery planned = Plan(q, ctx);
  const ExecutionResult result = Execute(*planned.root);
  EXPECT_EQ(result.rows.size(), 10u);
  for (size_t i = 0; i < result.rows.size(); ++i) {
    EXPECT_EQ(std::get<int64_t>(result.rows.row(i)[0]) % 2, 0);
  }
}

TEST(PlannerTest, ExplainRendersEstimatesAndActuals) {
  const PlannerFixture fx;
  const PlannerContext ctx = fx.Context();
  util::Rng rng(7600);
  const auto box = workload::MakeQueryBoxes2D(fx.grid, 0.02, 1.0, 1, rng)[0];
  Query q = Query::Range(box);
  q.limit = 1u << 20;
  PlannedQuery planned = Plan(q, ctx);

  const std::string before = Explain(*planned.root);
  EXPECT_NE(before.find("est: "), std::string::npos) << before;
  EXPECT_NE(before.find("not executed"), std::string::npos) << before;

  Execute(*planned.root);
  const std::string after = Explain(*planned.root);
  EXPECT_NE(after.find("Limit"), std::string::npos) << after;
  EXPECT_NE(after.find("ZkdRangeScan"), std::string::npos) << after;
  EXPECT_NE(after.find("actual: "), std::string::npos) << after;
  EXPECT_EQ(after.find("not executed"), std::string::npos) << after;

  const std::string json = ExplainJson(*planned.root);
  EXPECT_NE(json.find("\"op\": \"Limit\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"children\": ["), std::string::npos) << json;
  EXPECT_NE(json.find("\"est_pages\": "), std::string::npos) << json;
}

TEST(PlannerTest, BufferPoolPinsAreReleased) {
  const PlannerFixture fx;
  util::ThreadPool pool(3);
  const PlannerContext ctx = fx.Context(&pool);
  PlannerOptions options;
  options.parallel_page_threshold = 1;
  util::Rng rng(7700);
  for (const auto& box :
       workload::MakeQueryBoxes2D(fx.grid, 0.05, 1.0, 3, rng)) {
    PlannedQuery planned = Plan(Query::Range(box), ctx, options);
    ExecuteIds(*planned.root);
    EXPECT_EQ(fx.built.pool->PinnedByThisThread(), 0u);

    // The serial streaming scan must drop its cursor's leaf pin on Close,
    // not at node destruction — check with the closed plan still alive.
    PlannedQuery serial = Plan(Query::Range(box), fx.Context(nullptr));
    ExecuteIds(*serial.root);
    EXPECT_EQ(fx.built.pool->PinnedByThisThread(), 0u);
  }
}

}  // namespace
}  // namespace probe::query
