#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/runtime_metrics.h"
#include "obs/trace.h"

// Unit and property tests for the observability layer: metric primitives,
// the registry (including snapshot consistency under concurrent writers —
// the contract the TSan `concurrency` run checks), and per-query traces.

namespace probe::obs {
namespace {

// ------------------------------------------------------------- primitives

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAndAddGoNegative) {
  Gauge g;
  g.Set(10);
  g.Add(-25);
  EXPECT_EQ(g.value(), -15);
  g.Set(0);
  EXPECT_EQ(g.value(), 0);
}

TEST(HistogramTest, BucketBoundariesAreUpperInclusive) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // -> le=1
  h.Observe(1.0);    // boundary lands in le=1 (Prometheus semantics)
  h.Observe(1.5);    // -> le=10
  h.Observe(100.0);  // -> le=100
  h.Observe(1e9);    // -> +Inf
  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 100.0 + 1e9);
}

TEST(HistogramTest, CountEqualsSumOfBuckets) {
  Histogram h(Histogram::LatencyBucketsMs());
  std::mt19937 rng(101);
  std::uniform_real_distribution<double> dist(0.0, 20000.0);
  for (int i = 0; i < 1000; ++i) h.Observe(dist(rng));
  const HistogramSnapshot snap = h.Snapshot();
  uint64_t total = 0;
  for (const uint64_t c : snap.counts) total += c;
  EXPECT_EQ(total, snap.count);
  EXPECT_EQ(snap.count, 1000u);
}

TEST(HistogramTest, CumulativeIsMonotone) {
  Histogram h({0.1, 1.0, 10.0});
  for (double v : {0.05, 0.5, 5.0, 50.0, 0.5, 5.0}) h.Observe(v);
  const std::vector<uint64_t> cum = h.Snapshot().Cumulative();
  ASSERT_EQ(cum.size(), 4u);
  for (size_t i = 1; i < cum.size(); ++i) EXPECT_GE(cum[i], cum[i - 1]);
  EXPECT_EQ(cum.back(), 6u);
}

TEST(HistogramTest, MergeRequiresMatchingBounds) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  Histogram c({1.0, 3.0});
  a.Observe(0.5);
  b.Observe(1.5);
  c.Observe(2.5);
  HistogramSnapshot merged = a.Snapshot();
  EXPECT_TRUE(merged.Merge(b.Snapshot()));
  EXPECT_EQ(merged.count, 2u);
  EXPECT_EQ(merged.counts[0], 1u);
  EXPECT_EQ(merged.counts[1], 1u);
  EXPECT_FALSE(merged.Merge(c.Snapshot()));  // refused, left unchanged
  EXPECT_EQ(merged.count, 2u);
}

// --------------------------------------------------------------- registry

TEST(RegistryTest, LabelsDedupToTheSameInstrument) {
  Registry r;
  Counter* a = r.GetCounter("requests_total", {{"method", "get"}});
  Counter* b =
      r.GetCounter("requests_total", {{"method", "get"}});
  Counter* c = r.GetCounter("requests_total", {{"method", "put"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Label order must not matter: {a=1,b=2} == {b=2,a=1}.
  Counter* d = r.GetCounter("multi", {{"a", "1"}, {"b", "2"}});
  Counter* e = r.GetCounter("multi", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(d, e);
}

TEST(RegistryTest, SnapshotCarriesAllFamilies) {
  Registry r;
  r.GetCounter("c_total", {{"k", "v"}})->Increment(3);
  r.GetGauge("g")->Set(-7);
  r.GetHistogram("h_ms", {}, {1.0, 10.0})->Observe(0.5);
  const RegistrySnapshot snap = r.Snapshot();
  EXPECT_DOUBLE_EQ(snap.CounterValue("c_total", {{"k", "v"}}), 3.0);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, -7.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].hist.count, 1u);
}

TEST(RegistryTest, RenderTextIsPrometheusShaped) {
  Registry r;
  r.GetCounter("probe_requests_total", {{"op", "range"}})->Increment(5);
  r.GetGauge("probe_depth")->Set(2);
  r.GetHistogram("probe_lat_ms", {}, {1.0})->Observe(0.25);
  const std::string text = r.RenderText();
  EXPECT_NE(text.find("# TYPE probe_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("probe_requests_total{op=\"range\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE probe_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("probe_depth 2"), std::string::npos);
  EXPECT_NE(text.find("probe_lat_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("probe_lat_ms_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("probe_lat_ms_count 1"), std::string::npos);
}

TEST(RegistryTest, RenderTextEscapesLabelValues) {
  Registry r;
  r.GetCounter("c_total", {{"path", "a\"b\\c\nd"}})->Increment();
  const std::string text = r.RenderText();
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(RegistryTest, CollectorsRunAtSnapshot) {
  Registry r;
  std::atomic<int> calls{0};
  {
    const Registry::CollectorHandle handle =
        r.AddCollector([&](RegistrySnapshot* snap) {
          ++calls;
          snap->counters.push_back(Sample{"external_total", {}, 9});
        });
    const RegistrySnapshot snap = r.Snapshot();
    EXPECT_EQ(calls.load(), 1);
    EXPECT_DOUBLE_EQ(snap.CounterValue("external_total"), 9.0);
  }
  // Handle destroyed: the collector must be gone.
  (void)r.Snapshot();
  EXPECT_EQ(calls.load(), 1);
}

// Property: a Snapshot taken while writers hammer the registry is
// per-metric coherent — every histogram's count equals the sum of its
// bucket counts, even mid-Observe. TSan (probe's `concurrency` label)
// additionally proves the reads are race-free.
TEST(RegistryConcurrencyTest, SnapshotConsistentUnderConcurrentWriters) {
  Registry r;
  constexpr int kWriters = 8;
  constexpr int kOpsPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&r, w]() {
      Counter* counter =
          r.GetCounter("ops_total", {{"writer", std::to_string(w % 4)}});
      Gauge* gauge = r.GetGauge("depth");
      Histogram* hist = r.GetHistogram("lat_ms", {}, {0.5, 5.0, 50.0});
      std::mt19937 rng(static_cast<uint32_t>(1000 + w));
      std::uniform_real_distribution<double> dist(0.0, 100.0);
      for (int i = 0; i < kOpsPerWriter; ++i) {
        counter->Increment();
        gauge->Add(i % 2 == 0 ? 1 : -1);
        hist->Observe(dist(rng));
      }
    });
  }

  // Snapshot continuously while the writers run.
  int snapshots = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    const RegistrySnapshot snap = r.Snapshot();
    for (const HistogramSample& h : snap.histograms) {
      uint64_t total = 0;
      for (const uint64_t c : h.hist.counts) total += c;
      ASSERT_EQ(total, h.hist.count)
          << "histogram snapshot incoherent mid-write";
    }
    if (++snapshots >= 50) break;
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();

  // Quiescent: totals are exact.
  const RegistrySnapshot final_snap = r.Snapshot();
  double ops = 0;
  for (const Sample& s : final_snap.counters) ops += s.value;
  EXPECT_DOUBLE_EQ(ops, static_cast<double>(kWriters) * kOpsPerWriter);
  ASSERT_EQ(final_snap.histograms.size(), 1u);
  EXPECT_EQ(final_snap.histograms[0].hist.count,
            static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  ASSERT_EQ(final_snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(final_snap.gauges[0].value, 0.0);
}

// ------------------------------------------------------------------ trace

TEST(TraceTest, SpansRecordDurationsAndCounters) {
  Trace trace;
  {
    Trace::Span outer = trace.StartSpan("scan");
    outer.Count("rows", 10);
    outer.Count("rows", 5);
    Trace::Span inner = trace.StartSpan("filter");
    inner.Count("dropped", 2);
  }
  const auto spans = trace.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "scan");
  EXPECT_EQ(spans[1].name, "filter");
  for (const auto& span : spans) EXPECT_GE(span.ms, 0.0) << span.name;
  ASSERT_EQ(spans[0].counters.size(), 1u);
  EXPECT_EQ(spans[0].counters[0].first, "rows");
  EXPECT_EQ(spans[0].counters[0].second, 15u);
}

TEST(TraceTest, OpenSpanRendersAsOpen) {
  Trace trace;
  Trace::Span span = trace.StartSpan("pending");
  EXPECT_NE(trace.RenderText().find("(open)"), std::string::npos);
  span.Finish();
  EXPECT_EQ(trace.RenderText().find("(open)"), std::string::npos);
  EXPECT_FALSE(span.active());
}

TEST(TraceTest, MoveTransfersOwnership) {
  Trace trace;
  Trace::Span a = trace.StartSpan("s");
  Trace::Span b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): post-move test
  EXPECT_TRUE(b.active());
  b.Finish();
  ASSERT_EQ(trace.Spans().size(), 1u);
  EXPECT_GE(trace.Spans()[0].ms, 0.0);
}

// The contract the parallel z-partition workers rely on: many threads
// bumping trace-level counters concurrently, totals exact afterwards.
TEST(TraceTest, TraceLevelCountersAreThreadSafe) {
  Trace trace;
  constexpr int kThreads = 8;
  constexpr int kOps = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&trace]() {
      for (int i = 0; i < kOps; ++i) trace.Count("points", 2);
    });
  }
  for (std::thread& t : workers) t.join();
  const auto counters = trace.Counters();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].first, "points");
  EXPECT_EQ(counters[0].second,
            static_cast<uint64_t>(kThreads) * kOps * 2);
}

// -------------------------------------------------------- global switches

TEST(RuntimeMetricsTest, DisabledRecordingIsDropped) {
  QueryMetrics& m = QueryMetrics::Default();
  const uint64_t before = m.queries->value();
  SetEnabled(false);
  m.RecordQuery(1, 1, 1, 1, 1, 1);
  EXPECT_EQ(m.queries->value(), before);
  SetEnabled(true);
  m.RecordQuery(1, 1, 1, 1, 1, 1);
  EXPECT_EQ(m.queries->value(), before + 1);
}

TEST(RuntimeMetricsTest, DefaultFamiliesLiveInDefaultRegistry) {
  (void)QueryMetrics::Default();
  (void)StorageMetrics::Default();
  (void)ThreadPoolMetrics::Default();
  const std::string text = Registry::Default().RenderText();
  EXPECT_NE(text.find("probe_index_queries_total"), std::string::npos);
  EXPECT_NE(text.find("probe_pager_reads_total"), std::string::npos);
  EXPECT_NE(text.find("probe_threadpool_task_ms_bucket"), std::string::npos);
}

}  // namespace
}  // namespace probe::obs
