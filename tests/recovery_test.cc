// Recovery unit tests: redo of committed batches, discard of uncommitted
// tails, idempotent double-recovery, checkpoint truncation, torn-page
// repair, and the full DurableIndex reopen path (including planning
// queries against a recovered index).

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "index/cost_model.h"
#include "index/durable_index.h"
#include "query/executor.h"
#include "query/planner.h"
#include "storage/buffer_pool.h"
#include "storage/fault_pager.h"
#include "storage/file_pager.h"
#include "storage/recovery.h"
#include "storage/txn_pager.h"
#include "storage/wal.h"
#include "temp_file.h"
#include "util/rng.h"

namespace probe {
namespace {

using geometry::GridBox;
using geometry::GridPoint;
using index::DurableIndex;
using storage::FilePager;
using storage::Page;
using storage::PageId;
using storage::Recover;
using storage::TxnPager;
using storage::Wal;

const std::vector<uint8_t> kMeta = {0xDE, 0xAD, 0xBE, 0xEF};

// Writes `value` at offset 0 of page `id` through a pool over `txn`.
void WritePage(storage::BufferPool* pool, PageId id, uint64_t value) {
  storage::PageRef ref = pool->Fetch(id);
  ref.page().Write<uint64_t>(0, value);
  ref.MarkDirty();
}

uint64_t ReadPage(FilePager* pager, PageId id) {
  Page page;
  pager->Read(id, &page);
  return page.Read<uint64_t>(0);
}

TEST(RecoveryTest, MissingLogMeansNothingToDo) {
  testutil::TempFile tmp("rec_nolog");
  FilePager base(tmp.path(), /*truncate=*/true);
  const auto result = Recover(tmp.wal_path(), &base);
  EXPECT_FALSE(result.log_found);
  EXPECT_EQ(result.records_redone, 0u);
}

TEST(RecoveryTest, CommittedBatchIsReplayedIntoAnEmptyBase) {
  testutil::TempFile tmp("rec_replay");
  {
    FilePager base(tmp.path(), /*truncate=*/true);
    Wal wal(tmp.wal_path(), /*truncate=*/true);
    TxnPager txn(&base, &wal);
    storage::BufferPool pool(&txn, 8);
    for (int i = 0; i < 4; ++i) {
      PageId id;
      storage::PageRef ref = pool.New(&id);
      ref.page().Write<uint64_t>(0, 100 + static_cast<uint64_t>(i));
      ref.MarkDirty();
    }
    pool.FlushAll();
    ASSERT_TRUE(txn.Commit(kMeta));
    // No checkpoint: the base file never saw a byte (no-steal).
    EXPECT_EQ(base.page_count(), 0u);
  }
  FilePager base(tmp.path());
  const auto result = Recover(tmp.wal_path(), &base);
  EXPECT_TRUE(result.log_found);
  EXPECT_EQ(result.records_redone, 4u);
  EXPECT_EQ(result.meta, kMeta);
  ASSERT_EQ(base.page_count(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ReadPage(&base, static_cast<PageId>(i)),
              100 + static_cast<uint64_t>(i));
  }
}

TEST(RecoveryTest, UncommittedTailIsDiscardedAndTruncated) {
  testutil::TempFile tmp("rec_tail");
  {
    FilePager base(tmp.path(), /*truncate=*/true);
    Wal wal(tmp.wal_path(), /*truncate=*/true);
    TxnPager txn(&base, &wal);
    storage::BufferPool pool(&txn, 8);
    PageId id;
    storage::PageRef ref = pool.New(&id);
    ref.page().Write<uint64_t>(0, 41);
    ref.MarkDirty();
    ref.Release();
    pool.FlushAll();
    ASSERT_TRUE(txn.Commit(kMeta));

    // A second batch updates the page and allocates another — but never
    // commits: the crash interrupts it.
    WritePage(&pool, id, 42);
    PageId id2;
    storage::PageRef ref2 = pool.New(&id2);
    ref2.page().Write<uint64_t>(0, 77);
    ref2.MarkDirty();
    ref2.Release();
    pool.FlushAll();
  }
  FilePager base(tmp.path());
  const auto result = Recover(tmp.wal_path(), &base);
  // Only the committed batch survives; the tail was cut off the log.
  EXPECT_EQ(result.records_redone, 1u);
  EXPECT_GT(result.bytes_truncated, 0u);
  ASSERT_EQ(base.page_count(), 1u);
  EXPECT_EQ(ReadPage(&base, 0), 41u);
}

TEST(RecoveryTest, DoubleRecoveryIsIdempotent) {
  testutil::TempFile tmp("rec_idem");
  {
    FilePager base(tmp.path(), /*truncate=*/true);
    Wal wal(tmp.wal_path(), /*truncate=*/true);
    TxnPager txn(&base, &wal);
    storage::BufferPool pool(&txn, 8);
    PageId id;
    storage::PageRef ref = pool.New(&id);
    ref.page().Write<uint64_t>(0, 7);
    ref.MarkDirty();
    ref.Release();
    pool.FlushAll();
    ASSERT_TRUE(txn.Commit(kMeta));
    WritePage(&pool, id, 8);  // uncommitted
    pool.FlushAll();
  }
  FilePager base(tmp.path());
  const auto first = Recover(tmp.wal_path(), &base);
  EXPECT_EQ(first.records_redone, 1u);
  EXPECT_GT(first.bytes_truncated, 0u);
  const uint64_t lsn = first.boundary_lsn;

  // Recovering again — as a crash *during* recovery would force — finds
  // the same boundary, redoes the same image onto identical bytes, and
  // has nothing left to truncate.
  const auto second = Recover(tmp.wal_path(), &base);
  EXPECT_EQ(second.boundary_lsn, lsn);
  EXPECT_EQ(second.records_redone, 1u);
  EXPECT_EQ(second.bytes_truncated, 0u);
  EXPECT_EQ(second.meta, first.meta);
  EXPECT_EQ(base.page_count(), 1u);
  EXPECT_EQ(ReadPage(&base, 0), 7u);
}

TEST(RecoveryTest, CheckpointForcesBaseAndResetsLog) {
  testutil::TempFile tmp("rec_ckpt");
  {
    FilePager base(tmp.path(), /*truncate=*/true);
    Wal wal(tmp.wal_path(), /*truncate=*/true);
    TxnPager txn(&base, &wal);
    storage::BufferPool pool(&txn, 8);
    for (int i = 0; i < 6; ++i) {
      PageId id;
      storage::PageRef ref = pool.New(&id);
      ref.page().Write<uint64_t>(0, static_cast<uint64_t>(i));
      ref.MarkDirty();
    }
    pool.FlushAll();
    ASSERT_TRUE(txn.Commit(kMeta));
    const uint64_t log_before = wal.size_bytes();
    ASSERT_TRUE(txn.Checkpoint(kMeta));
    EXPECT_LT(wal.size_bytes(), log_before);
    EXPECT_EQ(txn.pending_pages(), 0u);
    EXPECT_EQ(base.page_count(), 6u);  // forced
  }
  FilePager base(tmp.path());
  const auto result = Recover(tmp.wal_path(), &base);
  // The checkpoint is the boundary; there are no images to redo.
  EXPECT_TRUE(result.boundary_was_checkpoint);
  EXPECT_EQ(result.records_redone, 0u);
  EXPECT_EQ(result.meta, kMeta);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(ReadPage(&base, static_cast<PageId>(i)),
              static_cast<uint64_t>(i));
  }
}

TEST(RecoveryTest, CheckpointRefusesMidBatch) {
  testutil::TempFile tmp("rec_ckpt_midbatch");
  FilePager base(tmp.path(), /*truncate=*/true);
  Wal wal(tmp.wal_path(), /*truncate=*/true);
  TxnPager txn(&base, &wal);
  Page page;
  const PageId id = txn.Allocate();
  txn.Write(id, page);
  // Forcing uncommitted images would violate no-steal.
  EXPECT_FALSE(txn.Checkpoint(kMeta));
  ASSERT_TRUE(txn.Commit(kMeta));
  EXPECT_TRUE(txn.Checkpoint(kMeta));
}

TEST(RecoveryTest, TornBasePageFromCrashedCheckpointIsRepaired) {
  testutil::TempFile tmp("rec_torn_base");
  {
    FilePager base(tmp.path(), /*truncate=*/true);
    storage::FaultInjectingPager faulty(&base);
    Wal wal(tmp.wal_path(), /*truncate=*/true);
    TxnPager txn(&faulty, &wal);
    storage::BufferPool pool(&txn, 8);
    for (int i = 0; i < 4; ++i) {
      PageId id;
      storage::PageRef ref = pool.New(&id);
      ref.page().Write<uint64_t>(0, 900 + static_cast<uint64_t>(i));
      ref.MarkDirty();
    }
    pool.FlushAll();
    ASSERT_TRUE(txn.Commit(kMeta));

    // The third base write of the checkpoint's force lands torn, then the
    // disk dies: the checkpoint record is never written.
    faulty.SetFaultPlan({.kind = storage::FaultPlan::Kind::kShortWrite,
                         .fail_after_writes = 2,
                         .seed = 0xC0FFEE});
    EXPECT_FALSE(txn.Checkpoint(kMeta));
    EXPECT_TRUE(faulty.crashed());
  }
  FilePager base(tmp.path());
  const auto result = Recover(tmp.wal_path(), &base);
  // The commit (not a checkpoint) is the boundary; redo overwrites the
  // torn page with its logged after-image.
  EXPECT_FALSE(result.boundary_was_checkpoint);
  EXPECT_EQ(result.records_redone, 4u);
  ASSERT_EQ(base.page_count(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ReadPage(&base, static_cast<PageId>(i)),
              900 + static_cast<uint64_t>(i));
  }
}

// ------------------------------------------------------------------ the
// full stack: DurableIndex crash/reopen.

std::vector<DurableIndex::Op> InsertBatch(util::Rng* rng, uint32_t side,
                                          uint64_t id_base, int count) {
  std::vector<DurableIndex::Op> ops;
  for (int i = 0; i < count; ++i) {
    ops.push_back(DurableIndex::Op::Insert(
        GridPoint({static_cast<uint32_t>(rng->NextBelow(side)),
                   static_cast<uint32_t>(rng->NextBelow(side))}),
        id_base + static_cast<uint64_t>(i)));
  }
  return ops;
}

TEST(DurableIndexTest, CleanReopenSeesEveryCommittedBatch) {
  testutil::TempFile tmp("durable_reopen");
  const zorder::GridSpec grid{2, 8};
  DurableIndex::Options options;
  options.config.leaf_capacity = 10;
  options.pool_pages = 16;
  util::Rng rng(9100);
  std::vector<index::PointRecord> all;

  {
    options.truncate = true;
    DurableIndex db(grid, tmp.path(), options);
    ASSERT_TRUE(db.ok());
    for (int batch = 0; batch < 10; ++batch) {
      auto ops = InsertBatch(&rng, 256, static_cast<uint64_t>(batch) * 100, 40);
      ASSERT_TRUE(db.Apply(ops));
      for (const auto& op : ops) all.push_back({op.point, op.id});
      if (batch == 4) {
        ASSERT_TRUE(db.Checkpoint());
      }
    }
    // No shutdown courtesy of any kind — the process "dies" here.
  }

  options.truncate = false;
  DurableIndex db(grid, tmp.path(), options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.index().size(), all.size());
  EXPECT_TRUE(db.index().tree().CheckInvariants());

  const auto box = GridBox::Make2D(30, 200, 50, 220);
  auto got = db.index().RangeSearch(box);
  std::sort(got.begin(), got.end());
  std::vector<uint64_t> expect;
  for (const auto& r : all) {
    if (box.ContainsPoint(r.point)) expect.push_back(r.id);
  }
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(got, expect);
}

TEST(DurableIndexTest, CrashMidBatchLosesExactlyTheUncommittedBatch) {
  testutil::TempFile tmp("durable_midbatch");
  const zorder::GridSpec grid{2, 8};
  DurableIndex::Options options;
  options.config.leaf_capacity = 10;
  options.pool_pages = 8;
  util::Rng rng(9200);
  std::vector<index::PointRecord> committed;

  {
    options.truncate = true;
    DurableIndex db(grid, tmp.path(), options);
    ASSERT_TRUE(db.ok());
    auto ops = InsertBatch(&rng, 256, 0, 50);
    ASSERT_TRUE(db.Apply(ops));
    for (const auto& op : ops) committed.push_back({op.point, op.id});

    // Arm the log to die a few records into the next batch's flush.
    db.wal().SetFaultPlan({.fail_after_records = db.wal().stats().records + 3,
                           .tear_bytes = 513});
    auto doomed = InsertBatch(&rng, 256, 1000, 50);
    EXPECT_FALSE(db.Apply(doomed));
  }

  options.truncate = false;
  DurableIndex db(grid, tmp.path(), options);
  ASSERT_TRUE(db.ok());
  EXPECT_GT(db.recovery().bytes_truncated, 0u);
  EXPECT_EQ(db.index().size(), committed.size());
  EXPECT_TRUE(db.index().tree().CheckInvariants());

  const auto everything = GridBox::Make2D(0, 255, 0, 255);
  auto got = db.index().RangeSearch(everything);
  std::sort(got.begin(), got.end());
  std::vector<uint64_t> expect;
  for (const auto& r : committed) expect.push_back(r.id);
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(got, expect);

  // The recovered database accepts new batches.
  EXPECT_TRUE(db.Insert(GridPoint({1, 2}), 424242));
  EXPECT_TRUE(db.Delete(GridPoint({1, 2}), 424242));
}

TEST(DurableIndexTest, PlansRunAgainstARecoveredIndex) {
  testutil::TempFile tmp("durable_planner");
  const zorder::GridSpec grid{2, 8};
  DurableIndex::Options options;
  options.config.leaf_capacity = 10;
  util::Rng rng(9300);
  std::vector<index::PointRecord> all;

  {
    options.truncate = true;
    DurableIndex db(grid, tmp.path(), options);
    ASSERT_TRUE(db.ok());
    for (int batch = 0; batch < 5; ++batch) {
      auto ops = InsertBatch(&rng, 256, static_cast<uint64_t>(batch) * 1000,
                             100);
      ASSERT_TRUE(db.Apply(ops));
      for (const auto& op : ops) all.push_back({op.point, op.id});
    }
  }

  options.truncate = false;
  DurableIndex db(grid, tmp.path(), options);
  ASSERT_TRUE(db.ok());

  // The planner sees a recovered index exactly like a built one.
  const auto model = index::CostModel::FromIndex(db.index());
  query::PlannerContext ctx;
  ctx.index = &db.index();
  ctx.cost_model = &model;
  const auto box = GridBox::Make2D(40, 180, 40, 180);
  query::PlannedQuery planned = query::Plan(query::Query::Range(box), ctx);
  const auto ids = query::ExecuteIds(*planned.root);
  EXPECT_EQ(ids, db.index().RangeSearch(box)) << planned.summary;
  EXPECT_FALSE(ids.empty());
}

TEST(DurableIndexTest, RefusesAForeignDatabase) {
  testutil::TempFile tmp("durable_foreign");
  {
    // A bare FilePager database with pages but no WAL metadata.
    FilePager base(tmp.path(), /*truncate=*/true);
    base.Allocate();
  }
  const zorder::GridSpec grid{2, 8};
  DurableIndex db(grid, tmp.path());
  EXPECT_FALSE(db.ok());
}

TEST(DurableIndexTest, RefusesAMismatchedGrid) {
  testutil::TempFile tmp("durable_grid");
  {
    DurableIndex::Options options;
    options.truncate = true;
    DurableIndex db(zorder::GridSpec{2, 8}, tmp.path(), options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db.Insert(GridPoint({3, 4}), 1));
  }
  DurableIndex db(zorder::GridSpec{2, 6}, tmp.path());
  EXPECT_FALSE(db.ok());
}

}  // namespace
}  // namespace probe
