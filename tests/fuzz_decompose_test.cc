/// \file
/// Deterministic fuzz driver for decomposition: random boxes and balls on
/// random grids, audited with the disjoint-cover invariants of Section 3.
///
/// Every output is pushed through the auditors (strictly ascending,
/// pairwise-disjoint z intervals; exact cell cover for boxes; over- or
/// under-approximation as requested for capped decompositions), and the
/// lazy ElementGenerator is cross-checked against the eager Decompose.
/// 10,000+ seeded cases per test; run under UBSan by scripts/check.sh.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "decompose/audit.h"
#include "decompose/decomposer.h"
#include "decompose/generator.h"
#include "geometry/box.h"
#include "geometry/primitives.h"
#include "util/rng.h"
#include "zorder/audit.h"
#include "zorder/grid.h"
#include "zorder/zvalue.h"

namespace probe {
namespace {

using decompose::DecomposeOptions;
using geometry::GridBox;
using zorder::DimRange;
using zorder::GridSpec;
using zorder::ZValue;

constexpr int kCases = 10000;

GridSpec RandomGrid(util::Rng& rng, int max_total_bits) {
  GridSpec grid;
  grid.dims = static_cast<int>(1 + rng.NextBelow(3));
  grid.bits_per_dim = static_cast<int>(
      1 + rng.NextBelow(static_cast<uint64_t>(max_total_bits / grid.dims)));
  return grid;
}

GridBox RandomBox(util::Rng& rng, const GridSpec& grid) {
  std::vector<DimRange> ranges(static_cast<size_t>(grid.dims));
  for (auto& r : ranges) {
    uint64_t a = rng.NextBelow(grid.side());
    uint64_t b = rng.NextBelow(grid.side());
    if (a > b) std::swap(a, b);
    r.lo = static_cast<uint32_t>(a);
    r.hi = static_cast<uint32_t>(b);
  }
  return GridBox(ranges);
}

TEST(FuzzDecompose, BoxCoversAreExact) {
  util::Rng rng(0xDEC0);
  for (int c = 0; c < kCases; ++c) {
    const GridSpec grid = RandomGrid(rng, 16);
    const GridBox box = RandomBox(rng, grid);
    decompose::DecomposeStats stats;
    const std::vector<ZValue> elements =
        decompose::DecomposeBox(grid, box, {}, &stats);
    ASSERT_EQ(stats.elements, elements.size());
    ASSERT_EQ(stats.boundary_elements, 0u)
        << "a full-depth box decomposition has no boundary fringe";
    decompose::AuditBoxCover(grid, box, elements, /*exact=*/true,
                             /*include_boundary=*/true);
  }
}

TEST(FuzzDecompose, CappedBoxCoversBracketTheBox) {
  util::Rng rng(0xDEC1);
  for (int c = 0; c < kCases; ++c) {
    const GridSpec grid = RandomGrid(rng, 16);
    const GridBox box = RandomBox(rng, grid);
    DecomposeOptions options;
    options.max_depth =
        static_cast<int>(rng.NextBelow(
            static_cast<uint64_t>(grid.total_bits()) + 1));
    options.include_boundary = rng.NextBelow(2) == 0;
    const std::vector<ZValue> elements =
        decompose::DecomposeBox(grid, box, options);
    // With the boundary fringe the cover over-approximates the box; without
    // it the cover under-approximates. Either way it is a disjoint cover.
    decompose::AuditBoxCover(grid, box, elements, /*exact=*/false,
                             options.include_boundary);
  }
}

TEST(FuzzDecompose, BallCoversAreDisjointAndBracketed) {
  util::Rng rng(0xDEC2);
  for (int c = 0; c < 2000; ++c) {  // balls classify slower than boxes
    GridSpec grid;
    grid.dims = 2;
    grid.bits_per_dim = static_cast<int>(2 + rng.NextBelow(4));
    std::vector<double> center = {
        rng.NextDouble() * static_cast<double>(grid.side()),
        rng.NextDouble() * static_cast<double>(grid.side())};
    const double radius =
        rng.NextDouble() * static_cast<double>(grid.side()) / 2.0;
    const geometry::BallObject ball(center, radius);

    decompose::DecomposeStats inner_stats;
    DecomposeOptions inner;
    inner.include_boundary = false;
    const std::vector<ZValue> interior =
        decompose::Decompose(grid, ball, inner, &inner_stats);
    decompose::AuditDecomposition(grid, interior);

    const std::vector<ZValue> full = decompose::Decompose(grid, ball);
    decompose::AuditDecomposition(grid, full);

    // Inside-out approximation never covers more than boundary-inclusive.
    ASSERT_LE(decompose::CoveredVolume(grid, interior),
              decompose::CoveredVolume(grid, full));
  }
}

TEST(FuzzDecompose, GeneratorMatchesEagerDecompose) {
  util::Rng rng(0xDEC3);
  for (int c = 0; c < kCases; ++c) {
    const GridSpec grid = RandomGrid(rng, 14);
    const GridBox box = RandomBox(rng, grid);
    const geometry::BoxObject object(box);

    const std::vector<ZValue> eager = decompose::Decompose(grid, object);
    decompose::ElementGenerator gen(grid, object);
    std::vector<ZValue> lazy;
    ZValue z;
    while (gen.Next(&z)) lazy.push_back(z);
    ASSERT_EQ(lazy, eager) << "lazy and eager decompositions disagree";
  }
}

TEST(FuzzDecompose, GeneratorSeekForwardSkipsSoundly) {
  util::Rng rng(0xDEC4);
  for (int c = 0; c < kCases; ++c) {
    const GridSpec grid = RandomGrid(rng, 14);
    const GridBox box = RandomBox(rng, grid);
    const geometry::BoxObject object(box);
    const std::vector<ZValue> eager = decompose::Decompose(grid, object);

    const uint64_t target = rng.NextBelow(grid.cell_count());
    decompose::ElementGenerator gen(grid, object);
    ZValue z;
    const bool found = gen.SeekForward(target, &z);

    // Oracle: first eager element whose interval ends at or after target.
    const ZValue* want = nullptr;
    for (const ZValue& e : eager) {
      if (e.RangeHi(grid.total_bits()) >= target) {
        want = &e;
        break;
      }
    }
    ASSERT_EQ(found, want != nullptr);
    if (found) {
      ASSERT_EQ(z, *want) << "SeekForward skipped past an element";
    }
  }
}

}  // namespace
}  // namespace probe
