#include "index/cost_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "workload/datagen.h"
#include "workload/experiment.h"
#include "workload/querygen.h"

namespace probe::index {
namespace {

using geometry::GridBox;
using zorder::GridSpec;

TEST(CostModelTest, EmptyIndexEstimatesZero) {
  const GridSpec grid{2, 8};
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 16);
  ZkdIndex index(grid, &pool);
  const CostModel model = CostModel::FromIndex(index);
  // One (empty) leaf exists; a query may land on it.
  EXPECT_LE(model.EstimatePages(GridBox::Make2D(0, 10, 0, 10)).pages, 1u);
}

TEST(CostModelTest, FullDepthEstimateTracksExecution) {
  const GridSpec grid{2, 10};
  workload::DataGenConfig data;
  data.count = 5000;
  data.seed = 5100;
  for (const auto dist :
       {workload::Distribution::kUniform, workload::Distribution::kClustered,
        workload::Distribution::kDiagonal}) {
    data.distribution = dist;
    const auto points = GeneratePoints(grid, data);
    auto built = workload::BuildZkdIndex(grid, points, 20, 64);
    const CostModel model = CostModel::FromIndex(*built.index);
    EXPECT_EQ(model.leaf_count(), built.leaf_pages);

    util::Rng rng(5200);
    double total_measured = 0;
    double total_error = 0;
    for (const double volume : {0.01, 0.05}) {
      for (const auto& box :
           workload::MakeQueryBoxes2D(grid, volume, 1.0, 8, rng)) {
        const auto estimate = model.EstimatePages(box);
        EXPECT_TRUE(estimate.full_depth);
        QueryStats stats;
        built.index->RangeSearch(box, &stats);
        total_measured += static_cast<double>(stats.leaf_pages);
        total_error += std::abs(static_cast<double>(estimate.pages) -
                                static_cast<double>(stats.leaf_pages));
        // The estimate drifts from the executed count by the merge's gap
        // landings (under) and by intersecting-but-skipped leaves (over) —
        // a few pages either way, never a large factor.
        EXPECT_NEAR(static_cast<double>(estimate.pages),
                    static_cast<double>(stats.leaf_pages),
                    4.0 + 0.25 * static_cast<double>(stats.leaf_pages));
      }
    }
    // Aggregate accuracy: within ~10% of the executed totals.
    EXPECT_LT(total_error / total_measured, 0.12)
        << workload::DistributionName(dist);
  }
}

TEST(CostModelTest, DepthCappedEstimateIsCheaperAndUpper) {
  const GridSpec grid{2, 10};
  workload::DataGenConfig data;
  data.count = 5000;
  data.seed = 5300;
  const auto points = GeneratePoints(grid, data);
  auto built = workload::BuildZkdIndex(grid, points, 20, 64);
  const CostModel model = CostModel::FromIndex(*built.index);

  const GridBox box = GridBox::Make2D(100, 400, 300, 600);
  const auto full = model.EstimatePages(box);
  const auto capped = model.EstimatePages(box, /*max_element_depth=*/8);
  EXPECT_FALSE(capped.full_depth);
  EXPECT_LT(capped.elements_used, full.elements_used);
  // A coarser cover can only touch more leaves.
  EXPECT_GE(capped.pages, full.pages);
}

TEST(CostModelTest, EstimateGrowsWithVolume) {
  const GridSpec grid{2, 10};
  workload::DataGenConfig data;
  data.count = 5000;
  data.seed = 5400;
  const auto points = GeneratePoints(grid, data);
  auto built = workload::BuildZkdIndex(grid, points, 20, 64);
  const CostModel model = CostModel::FromIndex(*built.index);
  uint64_t prev = 0;
  for (const uint32_t half : {10u, 50u, 150u, 400u}) {
    const auto estimate =
        model.EstimatePages(GridBox::Make2D(512 - half, 512 + half,
                                            512 - half, 512 + half));
    EXPECT_GE(estimate.pages, prev);
    prev = estimate.pages;
  }
  EXPECT_GT(prev, 50u);
}

}  // namespace
}  // namespace probe::index
