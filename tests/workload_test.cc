#include "workload/experiment.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "workload/datagen.h"
#include "workload/querygen.h"

namespace probe::workload {
namespace {

using zorder::GridSpec;

TEST(DataGenTest, CountsAndBounds) {
  const GridSpec grid{2, 10};
  for (auto dist : {Distribution::kUniform, Distribution::kClustered,
                    Distribution::kDiagonal, Distribution::kRoadNetwork}) {
    DataGenConfig config;
    config.distribution = dist;
    config.count = 5000;
    const auto points = GeneratePoints(grid, config);
    EXPECT_EQ(points.size(), 5000u);
    std::set<uint64_t> ids;
    for (const auto& r : points) {
      ids.insert(r.id);
      ASSERT_EQ(r.point.dims(), 2);
      EXPECT_LT(r.point[0], grid.side());
      EXPECT_LT(r.point[1], grid.side());
    }
    EXPECT_EQ(ids.size(), 5000u);  // ids are unique
  }
}

TEST(DataGenTest, DeterministicInSeed) {
  const GridSpec grid{2, 10};
  DataGenConfig config;
  config.distribution = Distribution::kClustered;
  config.seed = 99;
  const auto a = GeneratePoints(grid, config);
  const auto b = GeneratePoints(grid, config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].point, b[i].point);
  config.seed = 100;
  const auto c = GeneratePoints(grid, config);
  bool any_differ = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].point == c[i].point)) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(DataGenTest, DiagonalPointsLieOnTheLine) {
  const GridSpec grid{2, 10};
  DataGenConfig config;
  config.distribution = Distribution::kDiagonal;
  config.count = 500;
  for (const auto& r : GeneratePoints(grid, config)) {
    EXPECT_EQ(r.point[0], r.point[1]);
  }
}

TEST(DataGenTest, ClusteredPointsAreConcentrated) {
  // With 50 tight clusters, the points occupy far fewer distinct grid
  // cells per unit of data than a uniform sample would.
  const GridSpec grid{2, 10};
  DataGenConfig config;
  config.distribution = Distribution::kClustered;
  config.count = 5000;
  const auto points = GeneratePoints(grid, config);
  // Mean pairwise distance to the cluster rep (first point of each
  // residue class) must be small relative to the grid side.
  double total = 0;
  for (size_t i = 50; i < points.size(); ++i) {
    const auto& rep = points[i % 50].point;
    const auto& p = points[i].point;
    const double dx = static_cast<double>(rep[0]) - p[0];
    const double dy = static_cast<double>(rep[1]) - p[1];
    total += std::sqrt(dx * dx + dy * dy);
  }
  const double mean = total / static_cast<double>(points.size() - 50);
  EXPECT_LT(mean, 0.1 * static_cast<double>(grid.side()));
}

TEST(DataGenTest, RoadNetworkIsConcentratedButNotDegenerate) {
  // Road points hug 1-d features: far more concentrated than uniform (few
  // distinct coarse blocks occupied) but spread over many blocks, unlike a
  // pure cluster set.
  const GridSpec grid{2, 10};
  DataGenConfig config;
  config.distribution = Distribution::kRoadNetwork;
  config.count = 5000;
  auto occupied_blocks = [&](Distribution dist) {
    DataGenConfig c = config;
    c.distribution = dist;
    std::set<uint64_t> blocks;  // 32x32-cell blocks
    for (const auto& r : GeneratePoints(grid, c)) {
      blocks.insert((static_cast<uint64_t>(r.point[0] / 32) << 32) |
                    (r.point[1] / 32));
    }
    return blocks.size();
  };
  const size_t roads = occupied_blocks(Distribution::kRoadNetwork);
  const size_t uniform = occupied_blocks(Distribution::kUniform);
  const size_t clustered = occupied_blocks(Distribution::kClustered);
  EXPECT_LT(roads, uniform / 2);
  EXPECT_GT(roads, clustered);
}

TEST(DataGenTest, WorksInThreeDimensions) {
  const GridSpec grid{3, 6};
  DataGenConfig config;
  config.distribution = Distribution::kClustered;
  config.count = 300;
  config.clusters = 10;
  const auto points = GeneratePoints(grid, config);
  EXPECT_EQ(points.size(), 300u);
  for (const auto& r : points) EXPECT_EQ(r.point.dims(), 3);
}

TEST(QueryGenTest, VolumeAndAspectApproximate) {
  const GridSpec grid{2, 10};
  util::Rng rng(401);
  const double volume = 0.05;
  const double aspect = 4.0;
  for (const auto& box : MakeQueryBoxes2D(grid, volume, aspect, 20, rng)) {
    const double cells = static_cast<double>(box.Volume());
    const double space = static_cast<double>(grid.cell_count());
    EXPECT_NEAR(cells / space, volume, volume * 0.2);
    const double got_aspect = static_cast<double>(box.range(1).width()) /
                              static_cast<double>(box.range(0).width());
    EXPECT_NEAR(got_aspect, aspect, aspect * 0.2);
    // In bounds.
    EXPECT_LT(box.range(0).hi, grid.side());
    EXPECT_LT(box.range(1).hi, grid.side());
  }
}

TEST(QueryGenTest, ExtremeAspectsClampToGrid) {
  const GridSpec grid{2, 8};
  util::Rng rng(403);
  const auto boxes = MakeQueryBoxes2D(grid, 0.5, 1000.0, 5, rng);
  for (const auto& box : boxes) {
    EXPECT_LT(box.range(1).hi, grid.side());
    EXPECT_GE(box.Volume(), 1u);
  }
}

TEST(QueryGenTest, ThreeDimensionalWeights) {
  const GridSpec grid{3, 6};
  util::Rng rng(405);
  const double weights[3] = {1.0, 2.0, 4.0};
  const auto box = MakeQueryBox(grid, 0.05, weights, rng);
  EXPECT_EQ(box.dims(), 3);
  EXPECT_LE(box.range(0).width(), box.range(1).width());
  EXPECT_LE(box.range(1).width(), box.range(2).width());
}

TEST(ExperimentTest, SmokeRunPaperSetup) {
  ExperimentConfig config;
  config.data.count = 1000;  // shrunk for test speed
  config.volumes = {0.01, 0.05};
  config.aspects = {1.0, 4.0};
  config.locations = 3;
  const ExperimentReport report = RunRangeExperiment(config);
  EXPECT_EQ(report.points, 1000u);
  EXPECT_EQ(report.leaf_pages, 50u);  // 1000 points / 20 per page
  ASSERT_EQ(report.cells.size(), 4u);
  for (const auto& cell : report.cells) {
    EXPECT_GT(cell.mean_pages, 0.0);
    EXPECT_GE(cell.mean_efficiency, 0.0);
    EXPECT_LE(cell.mean_efficiency, 1.0);
    EXPECT_GT(cell.predicted_pages, 0.0);
  }
}

TEST(ExperimentTest, PagesGrowWithVolume) {
  ExperimentConfig config;
  config.data.count = 3000;
  config.volumes = {0.01, 0.10};
  config.aspects = {1.0};
  config.locations = 5;
  const ExperimentReport report = RunRangeExperiment(config);
  ASSERT_EQ(report.cells.size(), 2u);
  EXPECT_LT(report.cells[0].mean_pages, report.cells[1].mean_pages);
}

TEST(ExperimentTest, PredictedPagesFormula) {
  // With N = 600 pages on a side-1024 grid, a block holds 6 pages and has
  // side 1024*sqrt(6/600) = 102.4. A 100-cell segment overlaps at most
  // floor(100/102.4)+2 = 2 aligned blocks, so a 100x100 query touches at
  // most 6 * 2 * 2 pages.
  const double predicted = PredictedPages2D(100, 100, 1024, 600);
  EXPECT_NEAR(predicted, 24.0, 1e-9);
  // A 300x100 query: floor(300/102.4)+2 = 4 blocks along x.
  EXPECT_NEAR(PredictedPages2D(300, 100, 1024, 600), 6.0 * 4 * 2, 1e-9);
}

TEST(ExperimentTest, BuildZkdIndexShape) {
  const GridSpec grid{2, 10};
  DataGenConfig data;
  data.count = 5000;
  const auto points = GeneratePoints(grid, data);
  const BuiltIndex built = BuildZkdIndex(grid, points, 20, 64);
  EXPECT_EQ(built.leaf_pages, 250u);
  EXPECT_EQ(built.index->size(), 5000u);
}

}  // namespace
}  // namespace probe::workload
