// Write-ahead log unit tests: LSN sequencing, CRC rejection of corrupt and
// torn records, checkpoint rewrite, and the deterministic fault plans the
// crash tier is built on.

#include <fcntl.h>
#include <unistd.h>

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/wal.h"
#include "temp_file.h"

namespace probe::storage {
namespace {

Page PageOf(uint64_t tag) {
  Page page;
  for (size_t off = 0; off + 8 <= Page::kSize; off += 512) {
    page.Write<uint64_t>(off, tag ^ off);
  }
  return page;
}

std::vector<uint8_t> Meta(std::initializer_list<uint8_t> bytes) {
  return std::vector<uint8_t>(bytes);
}

std::vector<WalRecord> ReadAll(const std::string& path) {
  WalReader reader(path);
  std::vector<WalRecord> records;
  WalRecord record;
  while (reader.Next(&record)) records.push_back(record);
  return records;
}

uint64_t SizeOf(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  EXPECT_GE(fd, 0);
  const off_t size = ::lseek(fd, 0, SEEK_END);
  ::close(fd);
  return static_cast<uint64_t>(size);
}

TEST(WalTest, LsnsAreStrictlyMonotonic) {
  testutil::TempFile tmp("wal_lsn");
  Wal wal(tmp.path(), /*truncate=*/true);
  ASSERT_TRUE(wal.ok());

  std::vector<uint64_t> lsns;
  for (uint64_t i = 0; i < 10; ++i) {
    lsns.push_back(wal.AppendPageImage(static_cast<PageId>(i), PageOf(i)));
  }
  const auto meta = Meta({1, 2, 3});
  lsns.push_back(wal.AppendCommit(11, meta));

  for (size_t i = 0; i < lsns.size(); ++i) {
    EXPECT_EQ(lsns[i], i + 1) << "LSNs count up from 1 without gaps";
  }

  const auto records = ReadAll(tmp.path());
  ASSERT_EQ(records.size(), lsns.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].lsn, lsns[i]);
  }
  EXPECT_EQ(records.back().type, WalRecordType::kCommit);
  EXPECT_EQ(records.back().page_count, 11u);
  EXPECT_EQ(records.back().payload, meta);
}

TEST(WalTest, PageImagesRoundTrip) {
  testutil::TempFile tmp("wal_roundtrip");
  Wal wal(tmp.path(), /*truncate=*/true);
  wal.AppendPageImage(7, PageOf(0xAB));
  wal.AppendPageImage(3, PageOf(0xCD));
  // Appends buffer in memory until a commit, sync, or explicit flush.
  ASSERT_TRUE(wal.Flush());

  const auto records = ReadAll(tmp.path());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].page_id, 7u);
  EXPECT_EQ(records[1].page_id, 3u);
  const Page expect = PageOf(0xCD);
  ASSERT_EQ(records[1].payload.size(), Page::kSize);
  EXPECT_EQ(0, std::memcmp(records[1].payload.data(), expect.data(),
                           Page::kSize));
}

TEST(WalTest, ReopenResumesLsnSequence) {
  testutil::TempFile tmp("wal_reopen");
  {
    Wal wal(tmp.path(), /*truncate=*/true);
    EXPECT_EQ(wal.AppendPageImage(0, PageOf(1)), 1u);
    EXPECT_EQ(wal.AppendPageImage(1, PageOf(2)), 2u);
  }
  {
    Wal wal(tmp.path());
    EXPECT_EQ(wal.next_lsn(), 3u);
    EXPECT_EQ(wal.AppendPageImage(2, PageOf(3)), 3u);
  }
  EXPECT_EQ(ReadAll(tmp.path()).size(), 3u);
}

TEST(WalTest, CrcRejectsCorruptedRecord) {
  testutil::TempFile tmp("wal_corrupt");
  {
    Wal wal(tmp.path(), /*truncate=*/true);
    for (uint64_t i = 0; i < 5; ++i) {
      wal.AppendPageImage(static_cast<PageId>(i), PageOf(i));
    }
  }
  // Flip one payload byte in the middle of the third record.
  const uint64_t record_bytes = SizeOf(tmp.path()) / 5;
  const int fd = ::open(tmp.path().c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  const off_t victim = static_cast<off_t>(2 * record_bytes + record_bytes / 2);
  uint8_t byte;
  ASSERT_EQ(::pread(fd, &byte, 1, victim), 1);
  byte ^= 0x40;
  ASSERT_EQ(::pwrite(fd, &byte, 1, victim), 1);
  ::close(fd);

  // The scan ends at the corruption: the two clean records before it are
  // the whole valid prefix (nothing after a bad record can be trusted —
  // record boundaries themselves are unverifiable there).
  const auto records = ReadAll(tmp.path());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].lsn, 1u);
  EXPECT_EQ(records[1].lsn, 2u);
}

TEST(WalTest, TornTailIsRejected) {
  testutil::TempFile tmp("wal_torn");
  {
    Wal wal(tmp.path(), /*truncate=*/true);
    for (uint64_t i = 0; i < 3; ++i) {
      wal.AppendPageImage(static_cast<PageId>(i), PageOf(i));
    }
  }
  // Cut the last record short, as a crash mid-append would.
  const uint64_t size = SizeOf(tmp.path());
  ASSERT_EQ(0, ::truncate(tmp.path().c_str(),
                          static_cast<off_t>(size - Page::kSize / 2)));

  WalReader reader(tmp.path());
  WalRecord record;
  int seen = 0;
  while (reader.Next(&record)) ++seen;
  EXPECT_EQ(seen, 2);
  // valid_bytes marks exactly where recovery should truncate.
  EXPECT_EQ(reader.valid_bytes(), (size / 3) * 2);
}

TEST(WalTest, CheckpointRewriteLeavesSingleRecordWithContinuingLsn) {
  testutil::TempFile tmp("wal_ckpt");
  Wal wal(tmp.path(), /*truncate=*/true);
  for (uint64_t i = 0; i < 20; ++i) {
    wal.AppendPageImage(static_cast<PageId>(i), PageOf(i));
  }
  const auto meta = Meta({9, 9});
  wal.AppendCommit(20, meta);
  const uint64_t before = SizeOf(tmp.path());

  EXPECT_EQ(wal.RewriteWithCheckpoint(20, meta), 22u);
  EXPECT_LT(SizeOf(tmp.path()), before);

  const auto records = ReadAll(tmp.path());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, WalRecordType::kCheckpoint);
  EXPECT_EQ(records[0].lsn, 22u);
  EXPECT_EQ(records[0].page_count, 20u);
  EXPECT_EQ(records[0].payload, meta);

  // The log keeps appending after the rewrite, LSNs still monotone.
  EXPECT_EQ(wal.AppendPageImage(0, PageOf(7)), 23u);
  ASSERT_TRUE(wal.Flush());
  EXPECT_EQ(ReadAll(tmp.path()).size(), 2u);
}

TEST(WalTest, FaultPlanStopsTheLogDead) {
  testutil::TempFile tmp("wal_fault_stop");
  Wal wal(tmp.path(), /*truncate=*/true);
  wal.SetFaultPlan({.fail_after_records = 2, .tear_bytes = 0});

  EXPECT_NE(wal.AppendPageImage(0, PageOf(0)), 0u);
  EXPECT_NE(wal.AppendPageImage(1, PageOf(1)), 0u);
  EXPECT_FALSE(wal.dead());
  // The third append is the victim: nothing lands, the log dies.
  EXPECT_EQ(wal.AppendPageImage(2, PageOf(2)), 0u);
  EXPECT_TRUE(wal.dead());
  // Every later mutation fails too.
  EXPECT_EQ(wal.AppendCommit(3, Meta({1})), 0u);
  EXPECT_FALSE(wal.Sync());
  EXPECT_EQ(wal.RewriteWithCheckpoint(3, Meta({1})), 0u);

  EXPECT_EQ(ReadAll(tmp.path()).size(), 2u);
}

TEST(WalTest, FaultPlanTearsTheVictimRecord) {
  testutil::TempFile tmp("wal_fault_tear");
  uint64_t clean_two_records = 0;
  {
    Wal wal(tmp.path(), /*truncate=*/true);
    wal.AppendPageImage(0, PageOf(0));
    wal.AppendPageImage(1, PageOf(1));
    clean_two_records = wal.size_bytes();
  }
  {
    Wal wal(tmp.path(), /*truncate=*/true);
    wal.SetFaultPlan({.fail_after_records = 2, .tear_bytes = 100});
    wal.AppendPageImage(0, PageOf(0));
    wal.AppendPageImage(1, PageOf(1));
    EXPECT_EQ(wal.AppendPageImage(2, PageOf(2)), 0u);
    EXPECT_TRUE(wal.dead());
  }
  // 100 bytes of the victim reached the file...
  EXPECT_EQ(SizeOf(tmp.path()), clean_two_records + 100);
  // ...and the reader treats them as the torn tail they are.
  const auto records = ReadAll(tmp.path());
  ASSERT_EQ(records.size(), 2u);

  // A reopened log resumes over the torn tail, exactly at the valid end.
  Wal wal(tmp.path());
  EXPECT_EQ(wal.next_lsn(), 3u);
  EXPECT_NE(wal.AppendPageImage(5, PageOf(5)), 0u);
  ASSERT_TRUE(wal.Flush());
  ASSERT_EQ(ReadAll(tmp.path()).size(), 3u);
  EXPECT_EQ(ReadAll(tmp.path()).back().page_id, 5u);
}

}  // namespace
}  // namespace probe::storage
