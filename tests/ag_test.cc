#include <map>
#include <memory>
#include <queue>
#include <set>

#include <gtest/gtest.h>

#include "ag/connected.h"
#include "ag/interference.h"
#include "ag/merge.h"
#include "ag/overlay.h"
#include "decompose/decomposer.h"
#include "geometry/csg.h"
#include "geometry/primitives.h"
#include "geometry/raster.h"
#include "util/rng.h"
#include "zorder/shuffle.h"

namespace probe::ag {
namespace {

using decompose::Decompose;
using decompose::DecomposeBox;
using geometry::BallObject;
using geometry::BoxObject;
using geometry::GridBox;
using geometry::GridPoint;
using zorder::GridSpec;
using zorder::ZValue;

TEST(MergeTest, PairsEveryOverlapExactlyOnce) {
  util::Rng rng(301);
  for (int round = 0; round < 20; ++round) {
    // Random sorted element lists.
    std::vector<ZValue> a, b;
    for (int i = 0; i < 40; ++i) {
      a.push_back(ZValue::FromInteger(rng.Next(), rng.NextBelow(9)));
      b.push_back(ZValue::FromInteger(rng.Next(), rng.NextBelow(9)));
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());

    std::multiset<std::pair<size_t, size_t>> got;
    MergeOverlappingElements(a, b, [&](size_t i, size_t j) {
      got.insert({i, j});
      return true;
    });
    std::multiset<std::pair<size_t, size_t>> expect;
    for (size_t i = 0; i < a.size(); ++i) {
      for (size_t j = 0; j < b.size(); ++j) {
        if (a[i].Contains(b[j]) || b[j].Contains(a[i])) expect.insert({i, j});
      }
    }
    EXPECT_EQ(got, expect);
  }
}

TEST(MergeTest, EarlyExitStopsTheScan) {
  std::vector<ZValue> a = {*ZValue::Parse("0")};
  std::vector<ZValue> b = {*ZValue::Parse("00"), *ZValue::Parse("01")};
  int visits = 0;
  MergeOverlappingElements(a, b, [&](size_t, size_t) {
    ++visits;
    return false;
  });
  EXPECT_EQ(visits, 1);
}

// Ground truth for overlay: rasterize both objects and count label-pair
// cells directly.
TEST(OverlayTest, AreasMatchRasterGroundTruth) {
  const GridSpec grid{2, 5};
  const BoxObject parcel_a(GridBox::Make2D(2, 17, 3, 22));
  const BoxObject parcel_b(GridBox::Make2D(9, 30, 0, 12));
  const BallObject zone(std::vector<double>{14.0, 12.0}, 9.0);

  // Layer A: two parcels; layer B: one zone.
  std::vector<LabeledElement> layer_a, layer_b;
  for (const ZValue& z : Decompose(grid, parcel_a)) {
    layer_a.push_back({z, 1});
  }
  for (const ZValue& z : Decompose(grid, parcel_b)) {
    layer_a.push_back({z, 2});
  }
  std::sort(layer_a.begin(), layer_a.end(),
            [](const LabeledElement& x, const LabeledElement& y) {
              return x.z < y.z;
            });
  for (const ZValue& z : Decompose(grid, zone)) layer_b.push_back({z, 7});

  const auto pieces = OverlayElements(layer_a, layer_b);
  const auto areas = AggregateOverlay(grid, pieces);

  std::map<std::pair<uint64_t, uint64_t>, uint64_t> expect;
  for (uint32_t x = 0; x < grid.side(); ++x) {
    for (uint32_t y = 0; y < grid.side(); ++y) {
      const GridPoint p({x, y});
      if (!zone.ContainsCell(p)) continue;
      if (parcel_a.ContainsCell(p)) ++expect[{1, 7}];
      if (parcel_b.ContainsCell(p)) ++expect[{2, 7}];
    }
  }
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> got;
  for (const OverlayArea& area : areas) {
    got[{area.a_label, area.b_label}] = area.cells;
  }
  EXPECT_EQ(got, expect);
}

TEST(OverlayTest, CoverageAccountsForEveryCell) {
  // For each A label: a_only + sum of its intersections == its area (when
  // B objects don't overlap each other), and symmetrically for B.
  const GridSpec grid{2, 5};
  const BoxObject a1(GridBox::Make2D(2, 14, 2, 14));
  const BoxObject a2(GridBox::Make2D(18, 29, 4, 12));
  const BoxObject b1(GridBox::Make2D(10, 21, 8, 25));

  std::vector<LabeledElement> layer_a, layer_b;
  for (const ZValue& z : Decompose(grid, a1)) layer_a.push_back({z, 1});
  for (const ZValue& z : Decompose(grid, a2)) layer_a.push_back({z, 2});
  std::sort(layer_a.begin(), layer_a.end(),
            [](const LabeledElement& x, const LabeledElement& y) {
              return x.z < y.z;
            });
  for (const ZValue& z : Decompose(grid, b1)) layer_b.push_back({z, 7});

  const CoverageReport report = OverlayCoverage(grid, layer_a, layer_b);

  auto intersection_of = [&](uint64_t a_label) {
    uint64_t cells = 0;
    for (const auto& area : report.intersections) {
      if (area.a_label == a_label) cells += area.cells;
    }
    return cells;
  };
  auto only_of = [&](const std::vector<std::pair<uint64_t, uint64_t>>& v,
                     uint64_t label) {
    for (const auto& [l, cells] : v) {
      if (l == label) return cells;
    }
    return uint64_t{0};
  };

  EXPECT_EQ(only_of(report.a_only, 1) + intersection_of(1),
            a1.box().Volume());
  EXPECT_EQ(only_of(report.a_only, 2) + intersection_of(2),
            a2.box().Volume());
  uint64_t b_intersections = 0;
  for (const auto& area : report.intersections) b_intersections += area.cells;
  EXPECT_EQ(only_of(report.b_only, 7) + b_intersections, b1.box().Volume());

  // Spot values against geometry: a1 ^ b1 = [10,14]x[8,14] = 35 cells.
  EXPECT_EQ(intersection_of(1), 35u);
  // a2 ^ b1 = [18,21]x[8,12] = 20 cells.
  EXPECT_EQ(intersection_of(2), 20u);
}

TEST(OverlayTest, DisjointLayersProduceNothing) {
  const GridSpec grid{2, 4};
  std::vector<LabeledElement> a, b;
  for (const ZValue& z : DecomposeBox(grid, GridBox::Make2D(0, 3, 0, 3))) {
    a.push_back({z, 1});
  }
  for (const ZValue& z : DecomposeBox(grid, GridBox::Make2D(8, 15, 8, 15))) {
    b.push_back({z, 2});
  }
  EXPECT_TRUE(OverlayElements(a, b).empty());
}

TEST(OverlayTest, RegionIsTheFinerElement) {
  std::vector<LabeledElement> a = {{*ZValue::Parse("0"), 1}};
  std::vector<LabeledElement> b = {{*ZValue::Parse("0011"), 2}};
  const auto pieces = OverlayElements(a, b);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].region.ToString(), "0011");
}

// Reference CCL: BFS flood fill on the raster.
int CountComponentsByFloodFill(const GridSpec& grid,
                               const geometry::SpatialObject& object,
                               std::vector<uint64_t>* areas) {
  const uint32_t side = static_cast<uint32_t>(grid.side());
  std::vector<std::vector<bool>> black(side, std::vector<bool>(side, false));
  for (uint32_t x = 0; x < side; ++x) {
    for (uint32_t y = 0; y < side; ++y) {
      black[x][y] = object.ContainsCell(GridPoint({x, y}));
    }
  }
  std::vector<std::vector<bool>> seen(side, std::vector<bool>(side, false));
  int components = 0;
  for (uint32_t sx = 0; sx < side; ++sx) {
    for (uint32_t sy = 0; sy < side; ++sy) {
      if (!black[sx][sy] || seen[sx][sy]) continue;
      ++components;
      uint64_t area = 0;
      std::queue<std::pair<uint32_t, uint32_t>> frontier;
      frontier.push({sx, sy});
      seen[sx][sy] = true;
      while (!frontier.empty()) {
        const auto [x, y] = frontier.front();
        frontier.pop();
        ++area;
        const int dx[4] = {-1, 1, 0, 0};
        const int dy[4] = {0, 0, -1, 1};
        for (int d = 0; d < 4; ++d) {
          const int nx = static_cast<int>(x) + dx[d];
          const int ny = static_cast<int>(y) + dy[d];
          if (nx < 0 || ny < 0 || nx >= static_cast<int>(side) ||
              ny >= static_cast<int>(side)) {
            continue;
          }
          if (black[nx][ny] && !seen[nx][ny]) {
            seen[nx][ny] = true;
            frontier.push({static_cast<uint32_t>(nx),
                           static_cast<uint32_t>(ny)});
          }
        }
      }
      if (areas != nullptr) areas->push_back(area);
    }
  }
  if (areas != nullptr) std::sort(areas->begin(), areas->end());
  return components;
}

TEST(ConnectedTest, TwoSeparateBlobs) {
  const GridSpec grid{2, 4};
  auto blob1 = std::make_shared<BoxObject>(GridBox::Make2D(0, 3, 0, 3));
  auto blob2 = std::make_shared<BoxObject>(GridBox::Make2D(8, 12, 9, 14));
  const geometry::UnionObject picture({blob1, blob2});
  const auto elements = Decompose(grid, picture);
  const ComponentResult result = LabelComponents(grid, elements);
  EXPECT_EQ(result.component_count, 2);
  std::vector<uint64_t> areas = result.component_areas;
  std::sort(areas.begin(), areas.end());
  EXPECT_EQ(areas, (std::vector<uint64_t>{16, 30}));
}

TEST(ConnectedTest, TouchingBoxesAreOneComponent) {
  const GridSpec grid{2, 4};
  auto blob1 = std::make_shared<BoxObject>(GridBox::Make2D(0, 3, 0, 3));
  auto blob2 = std::make_shared<BoxObject>(GridBox::Make2D(4, 7, 3, 3));
  const geometry::UnionObject picture({blob1, blob2});
  const auto elements = Decompose(grid, picture);
  const ComponentResult result = LabelComponents(grid, elements);
  EXPECT_EQ(result.component_count, 1);
}

TEST(ConnectedTest, DiagonallyTouchingBoxesStaySeparate) {
  // 4-connectivity: corner contact does not connect.
  const GridSpec grid{2, 4};
  auto blob1 = std::make_shared<BoxObject>(GridBox::Make2D(0, 3, 0, 3));
  auto blob2 = std::make_shared<BoxObject>(GridBox::Make2D(4, 7, 4, 7));
  const geometry::UnionObject picture({blob1, blob2});
  const auto elements = Decompose(grid, picture);
  EXPECT_EQ(LabelComponents(grid, elements).component_count, 2);
}

TEST(ConnectedTest, MatchesFloodFillOnRandomPictures) {
  const GridSpec grid{2, 5};
  util::Rng rng(307);
  for (int round = 0; round < 10; ++round) {
    // Union of random boxes and balls.
    std::vector<std::shared_ptr<const geometry::SpatialObject>> parts;
    const int n_parts = 2 + static_cast<int>(rng.NextBelow(5));
    for (int i = 0; i < n_parts; ++i) {
      if (rng.NextBelow(2) == 0) {
        uint32_t x = static_cast<uint32_t>(rng.NextBelow(24));
        uint32_t y = static_cast<uint32_t>(rng.NextBelow(24));
        parts.push_back(std::make_shared<BoxObject>(GridBox::Make2D(
            x, x + static_cast<uint32_t>(rng.NextBelow(8)), y,
            y + static_cast<uint32_t>(rng.NextBelow(8)))));
      } else {
        parts.push_back(std::make_shared<BallObject>(
            std::vector<double>{static_cast<double>(rng.NextBelow(32)),
                                static_cast<double>(rng.NextBelow(32))},
            1.0 + static_cast<double>(rng.NextBelow(6))));
      }
    }
    const geometry::UnionObject picture(parts);
    const auto elements = Decompose(grid, picture);
    std::vector<uint64_t> expect_areas;
    const int expect =
        CountComponentsByFloodFill(grid, picture, &expect_areas);
    const ComponentResult result = LabelComponents(grid, elements);
    EXPECT_EQ(result.component_count, expect) << "round " << round;
    std::vector<uint64_t> got_areas = result.component_areas;
    std::sort(got_areas.begin(), got_areas.end());
    EXPECT_EQ(got_areas, expect_areas) << "round " << round;
  }
}

TEST(InterferenceTest, DisjointParts) {
  const GridSpec grid{2, 6};
  const BallObject a({12.0, 12.0}, 6.0);
  const BallObject b({48.0, 48.0}, 6.0);
  const auto result = DetectInterference(grid, a, b);
  EXPECT_EQ(result.verdict, Interference::kDisjoint);
  EXPECT_FALSE(result.witness.has_value());
}

TEST(InterferenceTest, OverlappingPartsFoundEarly) {
  const GridSpec grid{2, 8};
  const BallObject a({100.0, 100.0}, 50.0);
  const BallObject b({120.0, 110.0}, 50.0);
  const auto result = DetectInterference(grid, a, b);
  EXPECT_EQ(result.verdict, Interference::kSolidOverlap);
  ASSERT_TRUE(result.witness.has_value());
  // The witness elements really overlap.
  EXPECT_TRUE(result.witness->first.Contains(result.witness->second) ||
              result.witness->second.Contains(result.witness->first));
  // Early exit: far fewer merge steps than total elements.
  EXPECT_LT(result.merge_steps, result.a_elements + result.b_elements);
}

TEST(InterferenceTest, NearMissIsBoundaryContactAtCoarseDepth) {
  const GridSpec grid{2, 6};
  // Two boxes separated by a single empty column.
  const BoxObject a(GridBox::Make2D(0, 30, 0, 63));
  const BoxObject b(GridBox::Make2D(32, 63, 0, 63));
  // At full depth they are cleanly disjoint.
  EXPECT_EQ(DetectInterference(grid, a, b).verdict, Interference::kDisjoint);
  // With a coarse cap the fringe elements of both sides cover the gap, so
  // the verdict degrades to boundary contact — never to a false solid
  // overlap.
  const auto coarse = DetectInterference(grid, a, b, /*max_depth=*/6);
  EXPECT_NE(coarse.verdict, Interference::kSolidOverlap);
}

TEST(InterferenceTest, ConsistentWithRasterIntersection) {
  const GridSpec grid{2, 5};
  util::Rng rng(311);
  for (int round = 0; round < 15; ++round) {
    const BallObject a(
        std::vector<double>{static_cast<double>(rng.NextBelow(32)),
                            static_cast<double>(rng.NextBelow(32))},
        2.0 + static_cast<double>(rng.NextBelow(8)));
    const BallObject b(
        std::vector<double>{static_cast<double>(rng.NextBelow(32)),
                            static_cast<double>(rng.NextBelow(32))},
        2.0 + static_cast<double>(rng.NextBelow(8)));
    // Raster reference: do the cell sets intersect?
    bool cells_intersect = false;
    for (uint32_t x = 0; x < grid.side() && !cells_intersect; ++x) {
      for (uint32_t y = 0; y < grid.side(); ++y) {
        const GridPoint p({x, y});
        if (a.ContainsCell(p) && b.ContainsCell(p)) {
          cells_intersect = true;
          break;
        }
      }
    }
    const auto result = DetectInterference(grid, a, b);
    if (cells_intersect) {
      // Shared interior cells always produce at least boundary contact;
      // the full-depth decomposition includes every member cell.
      EXPECT_NE(result.verdict, Interference::kDisjoint) << "round " << round;
    } else {
      // Without shared cells there can be no solid overlap (boundary
      // fringes may still touch where crossing cells coincide).
      EXPECT_NE(result.verdict, Interference::kSolidOverlap)
          << "round " << round;
    }
  }
}

}  // namespace
}  // namespace probe::ag
