#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "server/client.h"
#include "temp_file.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"

// End-to-end over real TCP: a client executes every query type against a
// ShardedEngine through the server and gets byte-identical answers to
// in-process calls; pipelined requests come back in order; the same
// listener answers HTTP /metrics and /healthz; and Stop() is graceful.

namespace probe::server {
namespace {

using geometry::GridBox;
using geometry::GridPoint;

constexpr zorder::GridSpec kGrid{2, 8};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tmp_ = std::make_unique<testutil::TempFile>("server_e2e");
    pool_ = std::make_unique<util::ThreadPool>(4);
    ShardedEngineOptions engine_options;
    engine_options.shards = 4;
    engine_options.truncate = true;
    engine_ = std::make_unique<ShardedEngine>(kGrid, tmp_->path(),
                                              engine_options, pool_.get());
    ASSERT_TRUE(engine_->ok());

    workload::DataGenConfig config;
    config.distribution = workload::Distribution::kClustered;
    config.count = 2000;
    config.seed = 5;
    const auto points = workload::GeneratePoints(kGrid, config);
    std::vector<index::DurableIndex::Op> ops;
    for (const auto& r : points) {
      ops.push_back(index::DurableIndex::Op::Insert(r.point, r.id));
    }
    ASSERT_TRUE(engine_->Apply(ops));

    server_ = std::make_unique<Server>(engine_.get(), ServerOptions{});
    ASSERT_TRUE(server_->Start());
    ASSERT_GT(server_->port(), 0);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    for (int i = 0; i < 4; ++i) {
      const std::string base = ShardedEngine::ShardPath(tmp_->path(), i);
      std::remove(base.c_str());
      std::remove((base + ".wal").c_str());
    }
  }

  // One blocking HTTP exchange against the server's port.
  std::string Http(const std::string& request) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string response;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      response.append(chunk, static_cast<size_t>(n));
    }
    ::close(fd);
    return response;
  }

  std::unique_ptr<testutil::TempFile> tmp_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<ShardedEngine> engine_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, EveryQueryTypeMatchesInProcessResults) {
  Client client;
  ASSERT_TRUE(client.ConnectTcp(server_->port()));
  HelloResponse hello;
  ASSERT_TRUE(client.Hello(&hello));
  EXPECT_EQ(hello.shards, 4);
  EXPECT_EQ(hello.point_count, 2000u);

  const GridBox boxes[] = {
      GridBox::Make2D(0, 255, 0, 255),
      GridBox::Make2D(40, 90, 120, 200),
      GridBox::Make2D(7, 7, 7, 7),
  };
  for (const auto& box : boxes) {
    std::vector<uint64_t> ids;
    ASSERT_TRUE(client.Range(box, &ids));
    EXPECT_EQ(ids, engine_->RangeSearch(box)) << box.ToString();

    std::vector<BoxResponse::Row> rows;
    ASSERT_TRUE(client.Box(box, &rows));
    const auto expect = engine_->RangeSearchRows(box);
    ASSERT_EQ(rows.size(), expect.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].id, expect[i].id);
      EXPECT_EQ(rows[i].point, expect[i].point);
    }

    uint64_t count = 0;
    ASSERT_TRUE(client.Count(box, &count));
    EXPECT_EQ(count, engine_->CountBox(box)) << box.ToString();

    std::string explain;
    ASSERT_TRUE(client.Explain(box, false, &explain));
    EXPECT_EQ(explain, engine_->Explain(box, false));
    ASSERT_TRUE(client.Explain(box, true, &explain));
    EXPECT_EQ(explain, engine_->Explain(box, true));
  }

  const GridPoint center({128, 128});
  std::vector<index::Neighbor> neighbors;
  ASSERT_TRUE(client.Knn(center, 25, &neighbors));
  const auto expect_knn = engine_->KNearest(center, 25);
  ASSERT_EQ(neighbors.size(), expect_knn.size());
  for (size_t i = 0; i < neighbors.size(); ++i) {
    EXPECT_EQ(neighbors[i].id, expect_knn[i].id);
    EXPECT_EQ(neighbors[i].distance2, expect_knn[i].distance2);
  }

  EXPECT_TRUE(client.Goodbye());
}

TEST_F(ServerTest, PipelinedRequestsAnswerInOrder) {
  Client client;
  ASSERT_TRUE(client.ConnectTcp(server_->port()));
  HelloResponse hello;
  ASSERT_TRUE(client.Hello(&hello));

  // Write a window of COUNT requests, then read the window of responses:
  // request_ids echo back in submission order.
  constexpr int kWindow = 64;
  std::vector<uint64_t> expected;
  for (int i = 0; i < kWindow; ++i) {
    const auto lo = static_cast<uint32_t>(i * 3);
    const GridBox box = GridBox::Make2D(lo, lo + 50, 10, 240);
    expected.push_back(engine_->CountBox(box));
    CountRequest req;
    req.box = box;
    ASSERT_TRUE(client.Send(req.ToFrame(static_cast<uint32_t>(1000 + i))));
  }
  for (int i = 0; i < kWindow; ++i) {
    Frame frame;
    ASSERT_TRUE(client.Recv(&frame));
    ASSERT_EQ(frame.type, FrameType::kCountResult);
    EXPECT_EQ(frame.request_id, static_cast<uint32_t>(1000 + i));
    CountResponse resp;
    ASSERT_TRUE(CountResponse::FromPayload(frame.payload, &resp));
    EXPECT_EQ(resp.count, expected[static_cast<size_t>(i)]);
  }
}

TEST_F(ServerTest, UnknownFrameTypeIsAnsweredNotFatal) {
  Client client;
  ASSERT_TRUE(client.ConnectTcp(server_->port()));

  Frame weird;
  weird.type = static_cast<FrameType>(50);  // intact but unknown
  weird.request_id = 77;
  ASSERT_TRUE(client.Send(weird));
  Frame resp;
  ASSERT_TRUE(client.Recv(&resp));
  EXPECT_EQ(resp.type, FrameType::kError);
  ErrorResponse err;
  ASSERT_TRUE(ErrorResponse::FromPayload(resp.payload, &err));
  EXPECT_EQ(err.status, Status::kUnknownType);

  // The stream stayed synchronized: the connection still works.
  EXPECT_TRUE(client.Ping());
}

TEST_F(ServerTest, MetricsAndHealthzOverTheSameListener) {
  // Generate some traffic so the counters are nonzero.
  Client client;
  ASSERT_TRUE(client.ConnectTcp(server_->port()));
  HelloResponse hello;
  ASSERT_TRUE(client.Hello(&hello));
  std::vector<uint64_t> ids;
  ASSERT_TRUE(client.Range(GridBox::Make2D(0, 255, 0, 255), &ids));

  const std::string metrics = Http("GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("probe_server_requests_total"), std::string::npos);
  EXPECT_NE(metrics.find("probe_server_sessions"), std::string::npos);

  const std::string health = Http("GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"shards\":4"), std::string::npos);

  const std::string missing = Http("GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(missing.find("404"), std::string::npos);

  EXPECT_GE(server_->counters().http_requests, 3u);
}

TEST_F(ServerTest, GracefulStopDrainsAndIsIdempotent) {
  Client client;
  ASSERT_TRUE(client.ConnectTcp(server_->port()));
  HelloResponse hello;
  ASSERT_TRUE(client.Hello(&hello));
  std::vector<uint64_t> ids;
  ASSERT_TRUE(client.Range(GridBox::Make2D(0, 100, 0, 100), &ids));

  EXPECT_TRUE(server_->Stop());
  EXPECT_TRUE(server_->Stop());  // idempotent

  // The open connection was woken and closed.
  EXPECT_FALSE(client.Ping());

  // New connections are refused outright (listener closed).
  Client late;
  EXPECT_FALSE(late.ConnectTcp(server_->port()));
}

TEST_F(ServerTest, CorruptFrameClosesOnlyThatConnection) {
  Client good;
  ASSERT_TRUE(good.ConnectTcp(server_->port()));
  HelloResponse hello;
  ASSERT_TRUE(good.Hello(&hello));

  // Push a CRC-corrupted frame through a raw socket. The server must
  // answer kBadCrc and hang up that connection — and only that one.
  Frame ping;
  ping.type = FrameType::kPing;
  ping.request_id = 9;
  std::vector<uint8_t> wire;
  EncodeFrame(ping, &wire);
  wire[3] ^= 0x40;  // flip a type bit: the CRC no longer matches

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));

  // Read until close; the bytes read must decode to a kBadCrc error frame.
  std::vector<uint8_t> rx;
  uint8_t chunk[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    rx.insert(rx.end(), chunk, chunk + n);
  }
  ::close(fd);
  Frame resp;
  size_t consumed = 0;
  Status error = Status::kOk;
  ASSERT_EQ(DecodeFrame(rx, &resp, &consumed, &error), DecodeResult::kFrame);
  ASSERT_EQ(resp.type, FrameType::kError);
  ErrorResponse err;
  ASSERT_TRUE(ErrorResponse::FromPayload(resp.payload, &err));
  EXPECT_EQ(err.status, Status::kBadCrc);

  // Isolation: the well-behaved connection is untouched.
  EXPECT_TRUE(good.Ping());
  std::vector<uint64_t> ids;
  EXPECT_TRUE(good.Range(GridBox::Make2D(0, 50, 0, 50), &ids));
}

}  // namespace
}  // namespace probe::server
