// Seeded k-NN fuzzer: ten thousand queries against an O(n) brute-force
// oracle with the same ties-by-id rule. The sweep crosses the paper's
// U/C/D distributions with duplicate-heavy data, degenerate k (0, 1, n,
// n+5), random query points on and off the data, and scan-threshold
// extremes that force both the region-splitting and the range-scanning
// paths of the best-first search.

#include "index/nearest.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "workload/datagen.h"
#include "workload/experiment.h"

namespace probe::index {
namespace {

using geometry::GridPoint;
using workload::DataGenConfig;
using workload::Distribution;
using zorder::GridSpec;

Dist2 Distance2(const GridPoint& a, const GridPoint& b) {
  Dist2 d2 = 0;
  for (int i = 0; i < a.dims(); ++i) {
    const uint64_t d = a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
    d2 += static_cast<Dist2>(d) * d;
  }
  return d2;
}

/// The oracle: full scan, sort by (distance, id) — the library's
/// documented tie rule — cut to k.
std::vector<Neighbor> BruteForceKnn(const std::vector<PointRecord>& points,
                                    const GridPoint& query, size_t k) {
  std::vector<Neighbor> all;
  all.reserve(points.size());
  for (const auto& r : points) {
    all.push_back(Neighbor{r.id, Distance2(r.point, query)});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance2 != b.distance2) return a.distance2 < b.distance2;
    return a.id < b.id;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

void ExpectExactMatch(const std::vector<Neighbor>& got,
                      const std::vector<Neighbor>& expect, uint64_t seed,
                      size_t k) {
  ASSERT_EQ(got.size(), expect.size()) << "seed=" << seed << " k=" << k;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].id, expect[i].id) << "seed=" << seed << " k=" << k
                                       << " i=" << i;
    ASSERT_TRUE(got[i].distance2 == expect[i].distance2)
        << "seed=" << seed << " k=" << k << " i=" << i;
  }
}

/// One fuzz round: build a dataset from `round`, fire `queries_per_round`
/// randomized queries at it. Returns how many queries ran.
size_t FuzzRound(uint64_t round, size_t queries_per_round) {
  util::Rng rng(0xfeed0000 + round);

  // Dataset shape: distribution, size, resolution, and duplication all
  // driven by the round seed. Low-resolution grids plus duplicated points
  // make distance ties common, exercising the id tie-break everywhere.
  const int bits = 4 + static_cast<int>(rng.NextBelow(5));  // 4..8
  const GridSpec grid{2, bits};
  DataGenConfig config;
  config.distribution = static_cast<Distribution>(round % 3);  // U, C, D
  config.count = 50 + rng.NextBelow(500);
  config.seed = 0xdada + round;
  auto points = GeneratePoints(grid, config);
  // Duplicate a slice of the points under fresh ids: exact coordinate
  // collisions, resolved only by the tie rule.
  const size_t dupes = rng.NextBelow(points.size() / 2 + 1);
  for (size_t i = 0; i < dupes; ++i) {
    PointRecord copy = points[rng.NextBelow(points.size())];
    copy.id = points.size() + i;
    points.push_back(copy);
  }
  auto built = workload::BuildZkdIndex(
      grid, points, 4 + static_cast<int>(rng.NextBelow(20)), 64);

  const uint64_t side = grid.side();
  const size_t n = points.size();
  size_t ran = 0;
  for (size_t q = 0; q < queries_per_round; ++q) {
    // Query point: uniform, or exactly on a data point (distance-zero
    // ties), or on the grid boundary.
    GridPoint query({static_cast<uint32_t>(rng.NextBelow(side)),
                     static_cast<uint32_t>(rng.NextBelow(side))});
    switch (rng.NextBelow(4)) {
      case 0:
        query = points[rng.NextBelow(n)].point;
        break;
      case 1:
        query.at(rng.NextBelow(2) == 0 ? 0 : 1) =
            static_cast<uint32_t>(side - 1);
        break;
      default:
        break;
    }

    // k: the degenerate set plus random values past both ends.
    size_t k;
    switch (q % 5) {
      case 0: k = 0; break;
      case 1: k = 1; break;
      case 2: k = n; break;
      case 3: k = n + 5; break;
      default: k = 1 + rng.NextBelow(n + 3); break;
    }

    // Threshold sweep: tiny forces deep region splitting, huge forces
    // immediate range scans; default exercises the tuned balance.
    NearestOptions options;
    switch (q % 3) {
      case 0: options.scan_cell_threshold = 1; break;
      case 1: options.scan_cell_threshold = 1ULL << 62; break;
      default: break;
    }

    const auto got = KNearest(*built.index, query, k, nullptr, options);
    const auto expect = BruteForceKnn(points, query, k);
    ExpectExactMatch(got, expect, 0xfeed0000 + round, k);
    ++ran;
  }
  return ran;
}

TEST(FuzzNearestTest, TenThousandQueriesMatchBruteForce) {
  // 100 datasets x 100 queries = 10,000 oracle-checked k-NN searches
  // across all three distributions (round % 3 cycles U, C, D).
  size_t total = 0;
  for (uint64_t round = 0; round < 100; ++round) {
    total += FuzzRound(round, 100);
  }
  EXPECT_EQ(total, 10000u);
}

}  // namespace
}  // namespace probe::index
