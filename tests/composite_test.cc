#include "baseline/composite_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "workload/datagen.h"
#include "workload/experiment.h"
#include "workload/querygen.h"

namespace probe::baseline {
namespace {

using geometry::GridBox;
using geometry::GridPoint;
using index::PointRecord;
using zorder::GridSpec;

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<uint64_t> BruteForce(const std::vector<PointRecord>& points,
                                 const GridBox& box) {
  std::vector<uint64_t> out;
  for (const auto& r : points) {
    if (box.ContainsPoint(r.point)) out.push_back(r.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(CompositeIndexTest, SmallKnownExample) {
  const GridSpec grid{2, 3};
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 32);
  std::vector<PointRecord> points = {
      {GridPoint({1, 1}), 1}, {GridPoint({3, 5}), 2}, {GridPoint({6, 2}), 3},
      {GridPoint({2, 3}), 4}, {GridPoint({7, 7}), 5},
  };
  btree::BTreeConfig config;
  config.leaf_capacity = 4;
  auto index = CompositeIndex::Build(grid, &pool, points, config);
  EXPECT_EQ(Sorted(index.RangeSearch(GridBox::Make2D(1, 3, 0, 4))),
            (std::vector<uint64_t>{1, 4}));
  EXPECT_EQ(Sorted(index.RangeSearch(GridBox::Make2D(0, 7, 0, 7))),
            (std::vector<uint64_t>{1, 2, 3, 4, 5}));
}

class CompositeDimsTest : public ::testing::TestWithParam<int> {};

TEST_P(CompositeDimsTest, MatchesBruteForce) {
  const int dims = GetParam();
  const GridSpec grid{dims, dims == 2 ? 7 : 5};
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 32);
  util::Rng rng(1500 + dims);
  std::vector<PointRecord> points;
  for (uint64_t i = 0; i < 600; ++i) {
    std::vector<uint32_t> coords(dims);
    for (int d = 0; d < dims; ++d) {
      coords[d] = static_cast<uint32_t>(rng.NextBelow(grid.side()));
    }
    points.push_back({GridPoint(std::span<const uint32_t>(coords)), i});
  }
  btree::BTreeConfig config;
  config.leaf_capacity = 20;
  auto index = CompositeIndex::Build(grid, &pool, points, config);

  for (int q = 0; q < 25; ++q) {
    std::vector<zorder::DimRange> ranges(dims);
    for (int d = 0; d < dims; ++d) {
      uint32_t a = static_cast<uint32_t>(rng.NextBelow(grid.side()));
      uint32_t b = static_cast<uint32_t>(rng.NextBelow(grid.side()));
      ranges[d] = {std::min(a, b), std::max(a, b)};
    }
    const GridBox box{std::span<const zorder::DimRange>(ranges)};
    CompositeStats stats;
    EXPECT_EQ(Sorted(index.RangeSearch(box, &stats)), BruteForce(points, box))
        << box.ToString();
    EXPECT_EQ(stats.results,
              static_cast<uint64_t>(BruteForce(points, box).size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, CompositeDimsTest, ::testing::Values(2, 3));

TEST(CompositeIndexTest, DynamicOps) {
  const GridSpec grid{2, 6};
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 32);
  CompositeIndex index(grid, &pool);
  index.Insert(GridPoint({5, 9}), 1);
  index.Insert(GridPoint({5, 10}), 2);
  EXPECT_EQ(Sorted(index.RangeSearch(GridBox::Make2D(5, 5, 0, 63))),
            (std::vector<uint64_t>{1, 2}));
  EXPECT_TRUE(index.Delete(GridPoint({5, 9}), 1));
  EXPECT_FALSE(index.Delete(GridPoint({5, 9}), 1));
  EXPECT_EQ(Sorted(index.RangeSearch(GridBox::Make2D(5, 5, 0, 63))),
            (std::vector<uint64_t>{2}));
}

TEST(CompositeIndexTest, ZOrderBeatsCompositeOnSquarishQueries) {
  // The motivating comparison: same B+-tree, same page capacity, only the
  // bit order differs. On squarish queries the concatenated order must
  // touch pages for every x-run; z order clusters the box's cells.
  const GridSpec grid{2, 10};
  workload::DataGenConfig data;
  data.count = 5000;
  data.seed = 55;
  const auto points = GeneratePoints(grid, data);

  storage::MemPager pager;
  storage::BufferPool pool(&pager, 64);
  btree::BTreeConfig config;
  config.leaf_capacity = 20;
  auto composite = CompositeIndex::Build(grid, &pool, points, config);
  auto zkd = workload::BuildZkdIndex(grid, points, 20, 64);

  util::Rng rng(57);
  uint64_t composite_pages = 0;
  uint64_t zkd_pages = 0;
  for (const auto& box :
       workload::MakeQueryBoxes2D(grid, 0.05, 1.0, 10, rng)) {
    CompositeStats cs;
    index::QueryStats zs;
    const auto a = Sorted(composite.RangeSearch(box, &cs));
    const auto b = Sorted(zkd.index->RangeSearch(box, &zs));
    EXPECT_EQ(a, b);
    composite_pages += cs.leaf_pages;
    zkd_pages += zs.leaf_pages;
  }
  EXPECT_LT(zkd_pages, composite_pages);
}

}  // namespace
}  // namespace probe::baseline
