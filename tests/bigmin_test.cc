#include "zorder/bigmin.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "zorder/shuffle.h"

namespace probe::zorder {
namespace {

// Brute-force reference: is the cell with z rank `z` inside the box given
// by corner ranks zmin/zmax?
bool InBoxReference(const GridSpec& grid, uint64_t z, uint64_t zmin,
                    uint64_t zmax) {
  const auto c = Unshuffle(grid, ZValue::FromInteger(z, grid.total_bits()));
  const auto lo =
      Unshuffle(grid, ZValue::FromInteger(zmin, grid.total_bits()));
  const auto hi =
      Unshuffle(grid, ZValue::FromInteger(zmax, grid.total_bits()));
  for (int d = 0; d < grid.dims; ++d) {
    if (c[d] < lo[d] || c[d] > hi[d]) return false;
  }
  return true;
}

TEST(InBoxTest, MatchesCoordinateTestExhaustively) {
  const GridSpec grid{2, 3};
  const uint64_t zmin = Shuffle2D(grid, 1, 2).ToInteger();
  const uint64_t zmax = Shuffle2D(grid, 5, 6).ToInteger();
  for (uint64_t z = 0; z < grid.cell_count(); ++z) {
    EXPECT_EQ(InBox(grid, z, zmin, zmax), InBoxReference(grid, z, zmin, zmax))
        << "z=" << z;
  }
}

// Sweeps random boxes on a small grid and checks BigMin/LitMax against a
// linear scan over all cells.
class BigMinPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BigMinPropertyTest, MatchesBruteForce) {
  const int dims = GetParam();
  const GridSpec grid{dims, dims >= 4 ? 2 : (dims == 2 ? 4 : 3)};
  util::Rng rng(100 + dims);
  const uint64_t cells = grid.cell_count();
  for (int trial = 0; trial < 30; ++trial) {
    // Random box corners.
    std::vector<uint32_t> lo(dims), hi(dims);
    for (int d = 0; d < dims; ++d) {
      const uint32_t a = static_cast<uint32_t>(rng.NextBelow(grid.side()));
      const uint32_t b = static_cast<uint32_t>(rng.NextBelow(grid.side()));
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    const uint64_t zmin = Shuffle(grid, lo).ToInteger();
    const uint64_t zmax = Shuffle(grid, hi).ToInteger();

    for (uint64_t z = 0; z < cells; ++z) {
      // Reference BIGMIN: the smallest in-box z greater than z.
      uint64_t expect_big = 0;
      bool have_big = false;
      for (uint64_t cand = z + 1; cand <= zmax && cand < cells; ++cand) {
        if (InBoxReference(grid, cand, zmin, zmax)) {
          expect_big = cand;
          have_big = true;
          break;
        }
      }
      uint64_t got_big = 0;
      const bool has_big = BigMin(grid, z, zmin, zmax, &got_big);
      // BigMin's contract applies when z is not itself inside the box;
      // when z is inside, the merge never calls it.
      if (!InBoxReference(grid, z, zmin, zmax)) {
        ASSERT_EQ(has_big, have_big) << "z=" << z;
        if (have_big) {
          EXPECT_EQ(got_big, expect_big) << "z=" << z;
        }
      }

      // Reference LITMAX.
      uint64_t expect_lit = 0;
      bool have_lit = false;
      for (uint64_t cand = z; cand-- > zmin;) {
        if (InBoxReference(grid, cand, zmin, zmax)) {
          expect_lit = cand;
          have_lit = true;
          break;
        }
      }
      uint64_t got_lit = 0;
      const bool has_lit = LitMax(grid, z, zmin, zmax, &got_lit);
      if (!InBoxReference(grid, z, zmin, zmax)) {
        ASSERT_EQ(has_lit, have_lit) << "z=" << z;
        if (have_lit) {
          EXPECT_EQ(got_lit, expect_lit) << "z=" << z;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, BigMinPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(BigMinTest, JumpsOverTheGapBetweenQuadrants) {
  // Classic example: query box spanning the seam of the N; from a z value
  // just past the lower-left quadrant's portion, BIGMIN must jump to the
  // start of the box's part in the next quadrant, skipping the dead space.
  const GridSpec grid{2, 3};
  const uint64_t zmin = Shuffle2D(grid, 1, 1).ToInteger();
  const uint64_t zmax = Shuffle2D(grid, 5, 5).ToInteger();
  // Pick a z between the quadrants that is not in the box.
  const uint64_t probe = Shuffle2D(grid, 7, 0).ToInteger();
  ASSERT_FALSE(InBox(grid, probe, zmin, zmax));
  uint64_t next = 0;
  ASSERT_TRUE(BigMin(grid, probe, zmin, zmax, &next));
  EXPECT_GT(next, probe);
  EXPECT_TRUE(InBox(grid, next, zmin, zmax));
}

TEST(BigMinTest, ReturnsFalsePastTheBox) {
  const GridSpec grid{2, 3};
  const uint64_t zmin = Shuffle2D(grid, 0, 0).ToInteger();
  const uint64_t zmax = Shuffle2D(grid, 1, 1).ToInteger();
  uint64_t out = 0;
  EXPECT_FALSE(BigMin(grid, grid.cell_count() - 1, zmin, zmax, &out));
}

TEST(BigMinTest, WorksOnFullWidth64BitGrid) {
  // total_bits() == 64: every shift in the bit walk runs at its extreme
  // (p == 63) and cell_count() is unrepresentable. The skip logic must
  // still be exact.
  const GridSpec grid{2, 32};
  const uint64_t zmin = Shuffle2D(grid, 1u << 30, 1u << 29).ToInteger();
  const uint64_t zmax = Shuffle2D(grid, ~0u - 5, ~0u - 9).ToInteger();

  EXPECT_TRUE(InBox(grid, zmin, zmin, zmax));
  EXPECT_TRUE(InBox(grid, zmax, zmin, zmax));
  EXPECT_FALSE(InBox(grid, 0, zmin, zmax));
  EXPECT_FALSE(InBox(grid, ~0ULL, zmin, zmax));

  uint64_t out = 0;
  // From below the box the first in-box value is its lower corner.
  ASSERT_TRUE(BigMin(grid, 0, zmin, zmax, &out));
  EXPECT_EQ(out, zmin);
  // From the top of z space nothing remains.
  EXPECT_FALSE(BigMin(grid, ~0ULL, zmin, zmax, &out));
  // And the mirror: from above the box LitMax is its upper corner.
  ASSERT_TRUE(LitMax(grid, ~0ULL, zmin, zmax, &out));
  EXPECT_EQ(out, zmax);
  EXPECT_FALSE(LitMax(grid, 0, zmin, zmax, &out));
}

TEST(BigMinTest, WholeSpaceBoxOn64BitGrid) {
  // The degenerate box covering all of z space: BigMin must advance by
  // exactly one everywhere, with no skips possible.
  const GridSpec grid{2, 32};
  const uint64_t zmin = 0;
  const uint64_t zmax = ~0ULL;
  uint64_t out = 0;
  for (const uint64_t zcur : {0ULL, 1ULL, 0x123456789ABCDEFULL, ~0ULL - 1}) {
    ASSERT_TRUE(BigMin(grid, zcur, zmin, zmax, &out));
    EXPECT_EQ(out, zcur + 1);
  }
  EXPECT_FALSE(BigMin(grid, ~0ULL, zmin, zmax, &out));
}

}  // namespace
}  // namespace probe::zorder
