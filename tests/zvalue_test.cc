#include "zorder/zvalue.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/bits.h"
#include "util/rng.h"
#include "zorder/fast_interleave.h"
#include "zorder/grid.h"
#include "zorder/shuffle.h"

namespace probe::zorder {
namespace {

TEST(ZValueTest, DefaultIsEmpty) {
  ZValue z;
  EXPECT_TRUE(z.IsEmpty());
  EXPECT_EQ(z.length(), 0);
  EXPECT_EQ(z.ToString(), "");
}

TEST(ZValueTest, FromIntegerRoundTrips) {
  const ZValue z = ZValue::FromInteger(0b001, 3);
  EXPECT_EQ(z.length(), 3);
  EXPECT_EQ(z.ToInteger(), 0b001u);
  EXPECT_EQ(z.ToString(), "001");
}

TEST(ZValueTest, ParseAcceptsBinaryStrings) {
  const auto z = ZValue::Parse("01101101");
  ASSERT_TRUE(z.has_value());
  EXPECT_EQ(z->ToString(), "01101101");
  EXPECT_EQ(z->length(), 8);
}

TEST(ZValueTest, ParseRejectsNonBinary) {
  EXPECT_FALSE(ZValue::Parse("012").has_value());
  EXPECT_FALSE(ZValue::Parse("0 1").has_value());
}

TEST(ZValueTest, ParseRejectsOverlongStrings) {
  EXPECT_TRUE(ZValue::Parse(std::string(64, '1')).has_value());
  EXPECT_FALSE(ZValue::Parse(std::string(65, '1')).has_value());
}

TEST(ZValueTest, BitAtReadsMsbFirst) {
  const ZValue z = *ZValue::Parse("101");
  EXPECT_EQ(z.BitAt(0), 1);
  EXPECT_EQ(z.BitAt(1), 0);
  EXPECT_EQ(z.BitAt(2), 1);
}

TEST(ZValueTest, ChildAppendsBit) {
  const ZValue z = *ZValue::Parse("01");
  EXPECT_EQ(z.Child(0).ToString(), "010");
  EXPECT_EQ(z.Child(1).ToString(), "011");
}

TEST(ZValueTest, ParentDropsLastBit) {
  const ZValue z = *ZValue::Parse("0110");
  EXPECT_EQ(z.Parent().ToString(), "011");
  EXPECT_EQ(z.Parent().Parent().ToString(), "01");
}

TEST(ZValueTest, PrefixTruncates) {
  const ZValue z = *ZValue::Parse("011011");
  EXPECT_EQ(z.Prefix(0).ToString(), "");
  EXPECT_EQ(z.Prefix(3).ToString(), "011");
  EXPECT_EQ(z.Prefix(6).ToString(), "011011");
}

TEST(ZValueTest, ContainsIsPrefixTest) {
  const ZValue outer = *ZValue::Parse("001");
  EXPECT_TRUE(outer.Contains(*ZValue::Parse("001")));
  EXPECT_TRUE(outer.Contains(*ZValue::Parse("0010")));
  EXPECT_TRUE(outer.Contains(*ZValue::Parse("001111")));
  EXPECT_FALSE(outer.Contains(*ZValue::Parse("000")));
  EXPECT_FALSE(outer.Contains(*ZValue::Parse("01")));
  EXPECT_FALSE(outer.Contains(*ZValue::Parse("00")));  // shorter: not contained
}

TEST(ZValueTest, EmptyContainsEverything) {
  const ZValue whole;
  EXPECT_TRUE(whole.Contains(*ZValue::Parse("0")));
  EXPECT_TRUE(whole.Contains(*ZValue::Parse("111111")));
  EXPECT_TRUE(whole.Contains(whole));
}

TEST(ZValueTest, RangeLoHiPadWithZerosAndOnes) {
  // Figure 3: element 001 on a 6-bit grid covers z values 001000..001111.
  const ZValue element = *ZValue::Parse("001");
  EXPECT_EQ(element.RangeLo(6), 0b001000u);
  EXPECT_EQ(element.RangeHi(6), 0b001111u);
}

TEST(ZValueTest, FullLengthRangeIsDegenerate) {
  const ZValue z = *ZValue::Parse("011011");
  EXPECT_EQ(z.RangeLo(6), z.RangeHi(6));
  EXPECT_EQ(z.RangeLo(6), 27u);
}

TEST(ZValueTest, OrderingMatchesStringOrder) {
  // Lexicographic comparison of ZValues must agree with std::string
  // comparison of their bitstrings — the property that lets any sort
  // utility produce z order (Section 4).
  const std::vector<std::string> patterns = {
      "",     "0",    "1",    "00",   "01",     "10",    "11",
      "000",  "001",  "010",  "0110", "011011", "11111", "101",
      "0000", "1110", "0101", "10",   "011",    "0111",
  };
  for (const auto& a : patterns) {
    for (const auto& b : patterns) {
      const ZValue za = *ZValue::Parse(a);
      const ZValue zb = *ZValue::Parse(b);
      EXPECT_EQ(za < zb, a < b) << "a=" << a << " b=" << b;
      EXPECT_EQ(za == zb, a == b) << "a=" << a << " b=" << b;
    }
  }
}

TEST(ZValueTest, OrderingMatchesStringOrderRandomized) {
  util::Rng rng(7);
  std::vector<ZValue> values;
  std::vector<std::string> strings;
  for (int i = 0; i < 300; ++i) {
    const int len = static_cast<int>(rng.NextBelow(20));
    std::string s;
    for (int j = 0; j < len; ++j) s.push_back(rng.NextBelow(2) ? '1' : '0');
    strings.push_back(s);
    values.push_back(*ZValue::Parse(s));
  }
  std::vector<size_t> order(values.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto by_z = order;
  std::sort(by_z.begin(), by_z.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  auto by_s = order;
  std::sort(by_s.begin(), by_s.end(),
            [&](size_t a, size_t b) { return strings[a] < strings[b]; });
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(strings[by_z[i]], strings[by_s[i]]);
  }
}

TEST(ZValueTest, ContainmentEquivalentToRangeNesting) {
  // e1 contains e2 iff [zlo1, zhi1] contains [zlo2, zhi2] at any common
  // resolution — the element/range duality the merge algorithms rely on.
  util::Rng rng(11);
  const int total = 16;
  for (int trial = 0; trial < 500; ++trial) {
    const int len1 = static_cast<int>(rng.NextBelow(total + 1));
    const int len2 = static_cast<int>(rng.NextBelow(total + 1));
    const ZValue a = ZValue::FromInteger(rng.Next(), len1);
    const ZValue b = ZValue::FromInteger(rng.Next(), len2);
    const bool nested = a.RangeLo(total) <= b.RangeLo(total) &&
                        b.RangeHi(total) <= a.RangeHi(total);
    EXPECT_EQ(a.Contains(b), nested)
        << "a=" << a.ToString() << " b=" << b.ToString();
  }
}

TEST(ZValueTest, SiblingRangesAreConsecutive) {
  // Child 0's range immediately precedes child 1's: elements tile the
  // space with consecutive z values (Section 3.1).
  util::Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    const int len = static_cast<int>(rng.NextBelow(12));
    const ZValue parent = ZValue::FromInteger(rng.Next(), len);
    const ZValue c0 = parent.Child(0);
    const ZValue c1 = parent.Child(1);
    EXPECT_EQ(c0.RangeLo(16), parent.RangeLo(16));
    EXPECT_EQ(c1.RangeHi(16), parent.RangeHi(16));
    EXPECT_EQ(c0.RangeHi(16) + 1, c1.RangeLo(16));
  }
}

TEST(BitsTest, MasksHandleFullWordWidths) {
  // The 0- and 64-bit widths are where a naive `~0 << (64 - n)` is UB.
  EXPECT_EQ(util::HighMask(0), 0u);
  EXPECT_EQ(util::HighMask(64), ~0ULL);
  EXPECT_EQ(util::HighMask(1), 1ULL << 63);
  EXPECT_EQ(util::LowMask(0), 0u);
  EXPECT_EQ(util::LowMask(64), ~0ULL);
  EXPECT_EQ(util::LowMask(1), 1u);
}

TEST(BitsTest, RoundUpToZeroBitsAcrossTheShiftRange) {
  EXPECT_EQ(util::RoundUpToZeroBits(5, 0), 5u);
  EXPECT_EQ(util::RoundUpToZeroBits(5, 3), 8u);
  EXPECT_EQ(util::RoundUpToZeroBits(8, 3), 8u);
  EXPECT_EQ(util::RoundUpToZeroBits(0, 3), 0u);
  // m == 63: the largest representable unit.
  EXPECT_EQ(util::RoundUpToZeroBits(1, 63), 1ULL << 63);
  // m == 64 used to shift by the full word width (UB); the only 64-bit
  // multiple of 2^64 is 0.
  EXPECT_EQ(util::RoundUpToZeroBits(5, 64), 0u);
  EXPECT_EQ(util::RoundUpToZeroBits(0, 64), 0u);
}

TEST(GridSpecTest, FullWidthGridsStayDefined) {
  // 2 x 32 and 1 x 64 are legal specs whose cell counts exceed 64 bits;
  // side()/cell_count() must wrap to 0, not shift by the word width.
  const GridSpec square{2, 32};
  EXPECT_TRUE(square.Valid());
  EXPECT_EQ(square.side(), 1ULL << 32);
  EXPECT_EQ(square.cell_count(), 0u);

  const GridSpec line{1, 64};
  EXPECT_TRUE(line.Valid());
  EXPECT_EQ(line.side(), 0u);
  EXPECT_EQ(line.cell_count(), 0u);
}

TEST(ZValueTest, FullResolutionShuffleOn64BitGrid) {
  // The widest 2-d grid: every z-value bit significant. The corner cells
  // and an arbitrary interior cell must round-trip.
  const GridSpec grid{2, 32};
  const uint32_t top = ~0u;
  EXPECT_EQ(Shuffle2D(grid, 0, 0).ToInteger(), 0u);
  EXPECT_EQ(Shuffle2D(grid, top, top).ToInteger(), ~0ULL);
  const uint64_t z = MortonEncode2(0xDEADBEEF, 0x12345678, 32);
  EXPECT_EQ(z, Shuffle2D(grid, 0xDEADBEEF, 0x12345678).ToInteger());
  uint32_t x = 0, y = 0;
  MortonDecode2(z, 32, &x, &y);
  EXPECT_EQ(x, 0xDEADBEEFu);
  EXPECT_EQ(y, 0x12345678u);
}

TEST(ZValueTest, RootElementRangeOn64BitGrid) {
  // The empty prefix covers the whole space; on a 64-bit grid the naive
  // range computation would shift by 64 (UBSan-caught regression).
  const ZValue root;
  EXPECT_EQ(root.RangeLo(64), 0u);
  EXPECT_EQ(root.RangeHi(64), ~0ULL);
  EXPECT_EQ(ZValue::FromInteger(1, 1).RangeLo(64), 1ULL << 63);
  EXPECT_EQ(ZValue::FromInteger(1, 1).RangeHi(64), ~0ULL);
}

}  // namespace
}  // namespace probe::zorder
