#include "btree/external_sort.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "index/zkd_index.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "util/rng.h"
#include "workload/datagen.h"

namespace probe::btree {
namespace {

using zorder::ZValue;

LeafEntry Entry(uint64_t key, uint64_t payload) {
  return LeafEntry{ZKey::FromZValue(ZValue::FromInteger(key, 32)), payload};
}

std::vector<LeafEntry> DrainAll(ExternalSorter& sorter) {
  std::vector<LeafEntry> out;
  sorter.Drain([&](const LeafEntry& e) { out.push_back(e); });
  return out;
}

void ExpectSorted(const std::vector<LeafEntry>& entries) {
  for (size_t i = 1; i < entries.size(); ++i) {
    const bool ordered =
        entries[i - 1].key < entries[i].key ||
        (entries[i - 1].key == entries[i].key &&
         entries[i - 1].payload <= entries[i].payload);
    ASSERT_TRUE(ordered) << "position " << i;
  }
}

TEST(ExternalSortTest, InMemoryOnly) {
  storage::MemPager scratch;
  ExternalSorter sorter(&scratch, 100);
  for (uint64_t i = 0; i < 50; ++i) sorter.Add(Entry(49 - i, i));
  const auto out = DrainAll(sorter);
  ASSERT_EQ(out.size(), 50u);
  ExpectSorted(out);
  EXPECT_EQ(sorter.stats().runs, 0u);  // never spilled
  EXPECT_EQ(scratch.page_count(), 0u);
}

TEST(ExternalSortTest, SpillsAndMerges) {
  storage::MemPager scratch;
  ExternalSorter sorter(&scratch, 64);  // force many runs
  util::Rng rng(4100);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t key = rng.NextBelow(1 << 20);
    keys.push_back(key);
    sorter.Add(Entry(key, static_cast<uint64_t>(i)));
  }
  const auto out = DrainAll(sorter);
  ASSERT_EQ(out.size(), keys.size());
  ExpectSorted(out);
  EXPECT_GT(sorter.stats().runs, 50u);
  EXPECT_GT(sorter.stats().pages_written, 0u);
  EXPECT_EQ(sorter.stats().pages_read, sorter.stats().pages_written);

  // Same multiset of keys.
  std::vector<uint64_t> got;
  for (const auto& e : out) got.push_back(e.key.ToZValue().ToInteger());
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(got, keys);
}

TEST(ExternalSortTest, DuplicatesOrderedByPayload) {
  storage::MemPager scratch;
  ExternalSorter sorter(&scratch, 8);
  for (uint64_t p = 100; p-- > 0;) sorter.Add(Entry(7, p));
  const auto out = DrainAll(sorter);
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].payload, i);
  }
}

TEST(ExternalSortTest, EmptyInput) {
  storage::MemPager scratch;
  ExternalSorter sorter(&scratch, 10);
  EXPECT_TRUE(DrainAll(sorter).empty());
}

TEST(BulkBuilderTest, StreamingEqualsSpanBulkLoad) {
  storage::MemPager pager_a, pager_b;
  storage::BufferPool pool_a(&pager_a, 32), pool_b(&pager_b, 32);
  BTreeConfig config;
  config.leaf_capacity = 10;
  config.internal_capacity = 5;

  util::Rng rng(4200);
  std::vector<LeafEntry> entries;
  for (int i = 0; i < 1000; ++i) {
    entries.push_back(Entry(rng.NextBelow(100000), i));
  }
  std::sort(entries.begin(), entries.end(),
            [](const LeafEntry& a, const LeafEntry& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.payload < b.payload;
            });

  BTree via_span = BTree::BulkLoad(&pool_a, entries, config);
  BTree::BulkBuilder builder(&pool_b, config);
  for (const auto& e : entries) builder.Add(e);
  BTree via_stream = builder.Finish();

  EXPECT_EQ(via_span.size(), via_stream.size());
  EXPECT_EQ(via_span.height(), via_stream.height());
  EXPECT_TRUE(via_stream.CheckInvariants());
  BTree::Cursor a(&via_span), b(&via_stream);
  bool have_a = a.SeekFirst();
  bool have_b = b.SeekFirst();
  while (have_a && have_b) {
    EXPECT_EQ(a.entry().key, b.entry().key);
    EXPECT_EQ(a.entry().payload, b.entry().payload);
    have_a = a.Next();
    have_b = b.Next();
  }
  EXPECT_EQ(have_a, have_b);
}

TEST(BuildExternalTest, MatchesInMemoryBuild) {
  const zorder::GridSpec grid{2, 10};
  workload::DataGenConfig data;
  data.count = 5000;
  data.seed = 4300;
  const auto points = GeneratePoints(grid, data);

  storage::MemPager pager_mem, pager_ext, scratch;
  storage::BufferPool pool_mem(&pager_mem, 64), pool_ext(&pager_ext, 64);
  BTreeConfig config;
  config.leaf_capacity = 20;

  auto in_memory = index::ZkdIndex::Build(grid, &pool_mem, points, config);
  ExternalSortStats stats;
  auto external = index::ZkdIndex::BuildExternal(
      grid, &pool_ext, points, &scratch, /*memory_budget=*/256, config, 1.0,
      &stats);
  EXPECT_GT(stats.runs, 10u);
  EXPECT_EQ(external.size(), in_memory.size());

  // Identical query answers and identical page counts.
  EXPECT_EQ(external.tree().ComputeShape().leaf_pages,
            in_memory.tree().ComputeShape().leaf_pages);
  const geometry::GridBox box = geometry::GridBox::Make2D(100, 400, 200, 700);
  auto a = in_memory.RangeSearch(box);
  auto b = external.RangeSearch(box);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace probe::btree
