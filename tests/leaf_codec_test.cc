// Unit tests for the compressed (v2) leaf codec: varints, prefix/suffix
// arithmetic, encode/decode round trips, header short-cuts, and the
// worst-case admission rule that keeps every rebalancing subset of
// admitted pages encodable.

#include "btree/leaf_codec.h"

#include <vector>

#include <gtest/gtest.h>

#include "btree/node.h"
#include "storage/page.h"
#include "zorder/zvalue.h"

namespace probe::btree {
namespace {

using zorder::ZValue;

ZKey Key(uint64_t value, int len = 20) {
  return ZKey::FromZValue(ZValue::FromInteger(value, len));
}

std::vector<LeafEntry> SampleRun() {
  // A realistic leaf: consecutive full-resolution z values sharing a long
  // prefix, ascending payloads.
  std::vector<LeafEntry> entries;
  for (uint64_t i = 0; i < 200; ++i) {
    entries.push_back(LeafEntry{Key(0x40000 + i * 3), i + 1});
  }
  return entries;
}

TEST(LeafCodecTest, VarintLenBoundaries) {
  EXPECT_EQ(VarintLen(0), 1u);
  EXPECT_EQ(VarintLen(0x7f), 1u);
  EXPECT_EQ(VarintLen(0x80), 2u);
  EXPECT_EQ(VarintLen(0x3fff), 2u);
  EXPECT_EQ(VarintLen(0x4000), 3u);
  EXPECT_EQ(VarintLen(~0ULL), 10u);
}

TEST(LeafCodecTest, CommonPrefixAndSuffix) {
  const ZKey a = Key(0b10110000000000000000, 20);
  const ZKey b = Key(0b10110000000000000111, 20);
  EXPECT_EQ(CommonPrefixBits(a, b), 17);
  EXPECT_EQ(SuffixValue(b, 17), 0b111u);
  EXPECT_EQ(SuffixValue(b, 20), 0u);
}

TEST(LeafCodecTest, RoundTripPreservesEntries) {
  const auto entries = SampleRun();
  ASSERT_TRUE(V2Admits(entries));
  storage::Page page;
  const size_t used = V2Encode(&page, entries, 7);
  EXPECT_LE(used, storage::Page::kSize);
  EXPECT_EQ(page.Read<uint8_t>(kKindOffset), kLeafV2Kind);
  EXPECT_EQ(page.Read<storage::PageId>(kNextLeafOffset), 7u);

  std::vector<LeafEntry> decoded;
  EXPECT_EQ(V2Decode(page, &decoded), static_cast<int>(entries.size()));
  ASSERT_EQ(decoded.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(decoded[i].key, entries[i].key) << i;
    EXPECT_EQ(decoded[i].payload, entries[i].payload) << i;
  }
  EXPECT_EQ(V2FirstKey(page), entries.front().key);
  EXPECT_EQ(V2LastKey(page), entries.back().key);
}

TEST(LeafCodecTest, EmptyPageRoundTrips) {
  storage::Page page;
  V2Encode(&page, {}, storage::kInvalidPageId);
  std::vector<LeafEntry> decoded;
  EXPECT_EQ(V2Decode(page, &decoded), 0);
  EXPECT_TRUE(decoded.empty());
}

TEST(LeafCodecTest, CompressionBeatsFixedWidthOnSharedPrefixes) {
  const auto entries = SampleRun();
  const size_t v1_bytes = kEntriesOffset + entries.size() * LeafView::kEntryBytes;
  EXPECT_LT(V2EncodedSize(entries), v1_bytes / 2);
}

TEST(LeafCodecTest, WorstSizeBoundsActualSize) {
  const auto entries = SampleRun();
  EXPECT_GE(V2WorstSize(entries), V2EncodedSize(entries));
  for (const auto& e : entries) {
    EXPECT_GE(V2EntryWorstSize(e), V2EntryEncodedSize(e, V2PrefixFor(entries)));
  }
}

TEST(LeafCodecTest, AdmissionImpliesFitEvenAfterPrefixCollapse) {
  // Entries admitted under the worst-case rule must still encode after a
  // divergent key collapses the shared prefix to zero — the exact hazard
  // actual-size admission would miss.
  std::vector<LeafEntry> entries;
  for (uint64_t i = 0; entries.size() < 300; ++i) {
    entries.push_back(LeafEntry{Key(0xF0000 + i, 20), i});
  }
  ASSERT_TRUE(V2Admits(entries));
  ASSERT_TRUE(V2Fits(entries));

  std::vector<LeafEntry> collapsed = entries;
  collapsed.insert(collapsed.begin(), LeafEntry{Key(0, 20), 0});
  if (V2Admits(collapsed)) {
    EXPECT_TRUE(V2Fits(collapsed));
    storage::Page page;
    V2Encode(&page, collapsed, storage::kInvalidPageId);
    std::vector<LeafEntry> decoded;
    EXPECT_EQ(V2Decode(page, &decoded), static_cast<int>(collapsed.size()));
  }
}

TEST(LeafCodecTest, AdmissionSubsetStable) {
  // Any contiguous subset of an admitted set is admitted (worst-case sums
  // are additive), which is what makes insert-overflow splits feasible.
  const auto entries = SampleRun();
  ASSERT_TRUE(V2Admits(entries));
  for (size_t split = 1; split < entries.size(); split += 17) {
    EXPECT_TRUE(V2Admits({entries.data(), split}));
    EXPECT_TRUE(V2Admits({entries.data() + split, entries.size() - split}));
  }
}

}  // namespace
}  // namespace probe::btree
