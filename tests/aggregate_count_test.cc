// Aggregate pushdown: CountRange/CountBox on the index, the planner's
// AggregateCount node, EXPLAIN's rendering of the pushdown counters, and
// the cost model's calibration on compressed (v2) pages.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "btree/btree.h"
#include "index/cost_model.h"
#include "index/zkd_index.h"
#include "query/executor.h"
#include "query/explain.h"
#include "query/planner.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "util/rng.h"
#include "workload/datagen.h"
#include "workload/experiment.h"
#include "workload/querygen.h"
#include "zorder/shuffle.h"

namespace probe::query {
namespace {

using geometry::GridBox;
using index::QueryStats;
using index::ZkdIndex;
using workload::Distribution;
using zorder::GridSpec;

struct Fixture {
  storage::MemPager pager;
  storage::BufferPool pool;
  ZkdIndex index;

  Fixture(const GridSpec& grid, const std::vector<index::PointRecord>& points,
          const btree::BTreeConfig& config)
      : pool(&pager, 1024),
        index(ZkdIndex::Build(grid, &pool, points, config)) {}
};

std::vector<index::PointRecord> Points(const GridSpec& grid, size_t count,
                                       uint64_t seed) {
  workload::DataGenConfig data;
  data.count = count;
  data.seed = seed;
  return GeneratePoints(grid, data);
}

TEST(AggregateCountTest, CountBoxMatchesRangeSearchOnBothFormats) {
  const GridSpec grid{2, 10};
  const auto points = Points(grid, 20000, 8800);
  Fixture v1(grid, points, {});
  Fixture v2(grid, points, btree::BTreeConfig::Compressed());

  util::Rng rng(8801);
  for (const double volume : {0.001, 0.01, 0.05}) {
    for (const auto& box :
         workload::MakeQueryBoxes2D(grid, volume, 1.0, 8, rng)) {
      const uint64_t expected = v1.index.RangeSearch(box).size();
      QueryStats v1_stats;
      QueryStats v2_stats;
      EXPECT_EQ(v1.index.CountBox(box, &v1_stats), expected);
      EXPECT_EQ(v2.index.CountBox(box, &v2_stats), expected);
      // Full-depth decomposition: every element is contained, nothing is
      // decoded into rows.
      EXPECT_EQ(v1_stats.materialized_rows, 0u);
      EXPECT_EQ(v2_stats.materialized_rows, 0u);
      if (expected > 0) {
        EXPECT_GT(v2_stats.contained_elements, 0u);
      }
    }
  }
}

TEST(AggregateCountTest, DepthCappedCountVerifiesBoundaryRows) {
  const GridSpec grid{2, 10};
  const auto points = Points(grid, 20000, 8810);
  Fixture v2(grid, points, btree::BTreeConfig::Compressed());

  util::Rng rng(8811);
  index::SearchOptions capped;
  capped.max_element_depth = 8;  // coarse cover: boundary cells overcover
  for (const auto& box : workload::MakeQueryBoxes2D(grid, 0.02, 1.0, 8, rng)) {
    const uint64_t expected = v2.index.RangeSearch(box).size();
    QueryStats stats;
    EXPECT_EQ(v2.index.CountBox(box, &stats, capped), expected);
    // The capped cover is inexact, so the count had to verify rows.
    EXPECT_GT(stats.materialized_rows, 0u);
  }
}

TEST(AggregateCountTest, CountRangeMatchesCursorScan) {
  const GridSpec grid{2, 8};
  const auto points = Points(grid, 5000, 8820);
  Fixture v2(grid, points, btree::BTreeConfig::Compressed());

  const int total = grid.total_bits();
  std::vector<uint64_t> zs;
  for (const auto& rec : points) {
    zs.push_back(zorder::Shuffle(grid, rec.point.coords()).ToInteger());
  }
  std::sort(zs.begin(), zs.end());

  util::Rng rng(8821);
  for (int trial = 0; trial < 50; ++trial) {
    uint64_t lo = rng.NextBelow(1ULL << total);
    uint64_t hi = rng.NextBelow(1ULL << total);
    if (lo > hi) std::swap(lo, hi);
    const auto begin = std::lower_bound(zs.begin(), zs.end(), lo);
    const auto end = std::upper_bound(zs.begin(), zs.end(), hi);
    EXPECT_EQ(v2.index.CountRange(lo, hi),
              static_cast<uint64_t>(end - begin));
  }
}

TEST(AggregateCountTest, PlannerProducesAggregateNode) {
  const GridSpec grid{2, 10};
  const auto points = Points(grid, 8000, 8830);
  Fixture v2(grid, points, btree::BTreeConfig::Compressed());
  const index::CostModel model = index::CostModel::FromIndex(v2.index);
  EXPECT_GT(model.avg_leaf_entries(), 400.0);  // v2 density, not v1's 239

  PlannerContext ctx;
  ctx.index = &v2.index;
  ctx.cost_model = &model;

  util::Rng rng(8831);
  const auto boxes = workload::MakeQueryBoxes2D(grid, 0.02, 1.0, 4, rng);
  for (const auto& box : boxes) {
    PlannedQuery planned = Plan(Query::Count(box), ctx);
    EXPECT_NE(planned.summary.find("AggregateCount"), std::string::npos);
    ExecutionResult result = Execute(*planned.root);
    ASSERT_EQ(result.rows.size(), 1u);
    const uint64_t expected = v2.index.RangeSearch(box).size();
    EXPECT_EQ(std::get<int64_t>(result.rows.row(0)[0]),
              static_cast<int64_t>(expected));

    const NodeStats& stats = planned.root->stats();
    EXPECT_TRUE(stats.has_aggregate);
    EXPECT_EQ(stats.materialized_rows, 0u);

    // EXPLAIN surfaces the pushdown counters once executed.
    const std::string text = Explain(*planned.root);
    EXPECT_NE(text.find("materialized rows"), std::string::npos);
    const std::string json = ExplainJson(*planned.root);
    EXPECT_NE(json.find("\"materialized_rows\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"contained_elements\""), std::string::npos);
  }
}

TEST(AggregateCountTest, CostModelCalibratedOnCompressedPages) {
  // The estimator reads leaf boundaries through the format-dispatched
  // walk, so its page predictions must stay inside the ~15% band on v2
  // trees exactly as planner_calibration_test holds them on v1.
  const GridSpec grid{2, 10};
  for (const auto dist : {Distribution::kUniform, Distribution::kClustered}) {
    workload::DataGenConfig data;
    data.distribution = dist;
    data.count = 20000;
    data.seed = 8840;
    const auto points = GeneratePoints(grid, data);
    Fixture v2(grid, points, btree::BTreeConfig::Compressed());
    const index::CostModel model = index::CostModel::FromIndex(v2.index);

    util::Rng rng(8841);
    double total_estimated = 0;
    double total_actual = 0;
    for (const double volume : {0.01, 0.05, 0.10}) {
      for (const auto& box :
           workload::MakeQueryBoxes2D(grid, volume, 1.0, 8, rng)) {
        total_estimated +=
            static_cast<double>(model.EstimatePages(box).pages);
        QueryStats stats;
        v2.index.CountBox(box, &stats);
        total_actual += static_cast<double>(stats.leaf_pages);
      }
    }
    ASSERT_GT(total_actual, 0.0);
    EXPECT_LT(std::abs(total_estimated - total_actual) / total_actual, 0.15)
        << workload::DistributionName(dist);
  }
}

}  // namespace
}  // namespace probe::query
