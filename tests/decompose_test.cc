#include "decompose/decomposer.h"

#include <cmath>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "decompose/analysis.h"
#include "decompose/coarsen.h"
#include "decompose/generator.h"
#include "geometry/polygon.h"
#include "geometry/primitives.h"
#include "geometry/raster.h"
#include "util/rng.h"
#include "zorder/shuffle.h"

namespace probe::decompose {
namespace {

using geometry::BallObject;
using geometry::BoxObject;
using geometry::GridBox;
using geometry::GridPoint;
using zorder::GridSpec;
using zorder::ZValue;

TEST(DecomposeTest, PaperFigure2Box) {
  // Figure 2 decomposes a box on an 8x8 grid. Reconstructing the region
  // from the labelled elements (00001 is pixel column x=1, y in [0,1];
  // 010010/011000/011010 are the pixels (1,4), (2,4), (3,4); 001 is
  // X in [2,3], Y in [0,3] per the caption), the box is X in [1,3],
  // Y in [0,4].
  const GridSpec grid{2, 3};
  const auto elements = DecomposeBox(grid, GridBox::Make2D(1, 3, 0, 4));
  std::vector<std::string> got;
  for (const ZValue& z : elements) got.push_back(z.ToString());
  const std::vector<std::string> want = {"00001",  "00011",  "001",
                                         "010010", "011000", "011010"};
  EXPECT_EQ(got, want);
}

TEST(DecomposeTest, WholeSpaceIsOneElement) {
  const GridSpec grid{2, 3};
  const auto elements = DecomposeBox(grid, GridBox::Make2D(0, 7, 0, 7));
  ASSERT_EQ(elements.size(), 1u);
  EXPECT_TRUE(elements[0].IsEmpty());
}

TEST(DecomposeTest, SinglePixel) {
  const GridSpec grid{2, 3};
  const auto elements = DecomposeBox(grid, GridBox::Make2D(3, 3, 5, 5));
  ASSERT_EQ(elements.size(), 1u);
  EXPECT_EQ(elements[0], Shuffle2D(grid, 3, 5));
}

// Checks the three structural properties of any decomposition: z-sorted,
// pairwise disjoint, and covering exactly the object's cells.
void CheckDecomposition(const GridSpec& grid,
                        const geometry::SpatialObject& object,
                        const std::vector<ZValue>& elements) {
  const int total = grid.total_bits();
  // Sorted and disjoint: each element's range starts after the previous
  // range ends.
  for (size_t i = 1; i < elements.size(); ++i) {
    EXPECT_LT(elements[i - 1].RangeHi(total), elements[i].RangeLo(total));
  }
  // Coverage: the union of ranges is exactly the set of member cells.
  std::set<uint64_t> covered;
  for (const ZValue& e : elements) {
    for (uint64_t z = e.RangeLo(total); z <= e.RangeHi(total); ++z) {
      covered.insert(z);
    }
  }
  std::set<uint64_t> expected;
  for (const GridPoint& p : Rasterize(grid, object)) {
    expected.insert(Shuffle(grid, p.coords()).ToInteger());
  }
  EXPECT_EQ(covered, expected);
}

TEST(DecomposeTest, RandomBoxesCoverExactly) {
  const GridSpec grid{2, 4};
  util::Rng rng(51);
  for (int trial = 0; trial < 50; ++trial) {
    uint32_t x1 = static_cast<uint32_t>(rng.NextBelow(grid.side()));
    uint32_t x2 = static_cast<uint32_t>(rng.NextBelow(grid.side()));
    uint32_t y1 = static_cast<uint32_t>(rng.NextBelow(grid.side()));
    uint32_t y2 = static_cast<uint32_t>(rng.NextBelow(grid.side()));
    const GridBox box = GridBox::Make2D(std::min(x1, x2), std::max(x1, x2),
                                        std::min(y1, y2), std::max(y1, y2));
    const BoxObject object(box);
    CheckDecomposition(grid, object, DecomposeBox(grid, box));
  }
}

TEST(DecomposeTest, ThreeDimensionalBoxesCoverExactly) {
  const GridSpec grid{3, 3};
  util::Rng rng(53);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<zorder::DimRange> ranges(3);
    for (int d = 0; d < 3; ++d) {
      uint32_t a = static_cast<uint32_t>(rng.NextBelow(grid.side()));
      uint32_t b = static_cast<uint32_t>(rng.NextBelow(grid.side()));
      ranges[d] = {std::min(a, b), std::max(a, b)};
    }
    const GridBox box{std::span<const zorder::DimRange>(ranges)};
    const BoxObject object(box);
    CheckDecomposition(grid, object, DecomposeBox(grid, box));
  }
}

TEST(DecomposeTest, PolygonCoversExactlyAtFullDepth) {
  // Non-convex polygon: the decomposition must reproduce the even-odd
  // raster cell for cell. PolygonObject classifies single cells exactly
  // (it falls back to the center test), so full depth has no fringe.
  const GridSpec grid{2, 5};
  const geometry::PolygonObject arrow(
      {{2, 2}, {28, 6}, {16, 14}, {28, 26}, {4, 28}, {12, 14}});
  CheckDecomposition(grid, arrow, Decompose(grid, arrow));
}

TEST(DecomposeTest, RandomPolygonsCoverExactly) {
  const GridSpec grid{2, 4};
  util::Rng rng(59);
  for (int trial = 0; trial < 15; ++trial) {
    // A star-shaped polygon around a random center: always simple.
    const double cx = 3.0 + rng.NextDouble() * 10.0;
    const double cy = 3.0 + rng.NextDouble() * 10.0;
    std::vector<geometry::Vec2> vertices;
    const int n = 5 + static_cast<int>(rng.NextBelow(6));
    for (int i = 0; i < n; ++i) {
      const double angle = 2.0 * M_PI * i / n;
      const double radius = 1.5 + rng.NextDouble() * 4.0;
      vertices.push_back(
          {cx + radius * std::cos(angle), cy + radius * std::sin(angle)});
    }
    const geometry::PolygonObject poly(std::move(vertices));
    CheckDecomposition(grid, poly, Decompose(grid, poly));
  }
}

TEST(DecomposeTest, BallCoversExactlyAtFullDepth) {
  // At pixel resolution, boundary cells count as part of the object per
  // the grid approximation; the raster ground truth uses the same rule
  // only when the classifier marks the single cell inside. For the ball,
  // Classify on a single cell is exact, so coverage must match the raster.
  const GridSpec grid{2, 5};
  const BallObject ball({15.0, 13.0}, 8.0);
  CheckDecomposition(grid, ball, Decompose(grid, ball));
}

TEST(DecomposeTest, CapsuleCoversExactlyAtFullDepth) {
  const GridSpec grid{2, 5};
  const geometry::CapsuleObject road({3.0, 5.0}, {27.0, 22.0}, 2.5);
  CheckDecomposition(grid, road, Decompose(grid, road));
}

TEST(DecomposeTest, StatsCountElements) {
  const GridSpec grid{2, 3};
  DecomposeStats stats;
  const auto elements =
      DecomposeBox(grid, GridBox::Make2D(1, 3, 0, 6), {}, &stats);
  EXPECT_EQ(stats.elements, elements.size());
  EXPECT_EQ(stats.boundary_elements, 0u);  // boxes decompose exactly
  EXPECT_GT(stats.classify_calls, stats.elements);
}

TEST(DecomposeTest, CountMatchesMaterialized) {
  const GridSpec grid{2, 6};
  const GridBox box = GridBox::Make2D(5, 49, 11, 40);
  EXPECT_EQ(CountElements(grid, BoxObject(box)),
            DecomposeBox(grid, box).size());
}

TEST(DecomposeTest, DepthCapCoarsensAndCovers) {
  const GridSpec grid{2, 5};
  const GridBox box = GridBox::Make2D(3, 21, 7, 29);
  const BoxObject object(box);
  DecomposeOptions options;
  options.max_depth = 6;
  const auto coarse = Decompose(grid, object, options);
  const auto fine = Decompose(grid, object);
  EXPECT_LT(coarse.size(), fine.size());
  // No element exceeds the depth cap.
  for (const ZValue& e : coarse) EXPECT_LE(e.length(), 6);
  // The coarse cover is a superset: its covered volume is at least the
  // box's volume.
  EXPECT_GE(CoveredVolume(grid, coarse), box.Volume());
  EXPECT_EQ(CoveredVolume(grid, fine), box.Volume());
}

TEST(DecomposeTest, ExcludeBoundaryUnderapproximates) {
  // Membership is decided on cell centers, so single-cell regions classify
  // exactly and a full-depth decomposition has no boundary fringe; a depth
  // cap is what creates crossing leaves.
  const GridSpec grid{2, 5};
  const BallObject ball({16.0, 16.0}, 10.0);
  DecomposeOptions inner;
  inner.include_boundary = false;
  inner.max_depth = 8;
  DecomposeOptions outer;
  outer.max_depth = 8;
  const auto inside_only = Decompose(grid, ball, inner);
  const auto with_boundary = Decompose(grid, ball, outer);
  EXPECT_LT(CoveredVolume(grid, inside_only),
            CoveredVolume(grid, with_boundary));
  // Every inside-only element's cells really are inside.
  for (const ZValue& e : inside_only) {
    const GridBox region{
        std::span<const zorder::DimRange>(UnshuffleRegion(grid, e))};
    EXPECT_EQ(ball.Classify(region), geometry::RegionClass::kInside);
  }
}

TEST(DecomposeTaggedTest, BoundaryFlagsMarkTheFringe) {
  const GridSpec grid{2, 4};
  const BallObject ball({8.0, 8.0}, 5.0);
  DecomposeOptions options;
  options.max_depth = 6;  // a depth cap creates the crossing fringe
  const auto tagged = DecomposeTagged(grid, ball, options);
  uint64_t interior = 0;
  uint64_t boundary = 0;
  for (const TaggedElement& e : tagged) {
    if (e.boundary) {
      ++boundary;
      EXPECT_EQ(e.z.length(), 6);  // fringe elements sit at the cap
    } else {
      ++interior;
    }
  }
  EXPECT_GT(interior, 0u);
  EXPECT_GT(boundary, 0u);
}

TEST(DecomposeTaggedTest, FullDepthBallHasNoFringe) {
  // Cell membership is exact at pixel resolution, so the full-depth
  // decomposition of a ball is exact: no boundary elements.
  const GridSpec grid{2, 4};
  const BallObject ball({8.0, 8.0}, 5.0);
  for (const TaggedElement& e : DecomposeTagged(grid, ball)) {
    EXPECT_FALSE(e.boundary);
  }
}

TEST(GeneratorTest, StreamsSameElementsAsEagerDecompose) {
  const GridSpec grid{2, 5};
  const GridBox box = GridBox::Make2D(2, 19, 5, 23);
  const BoxObject object(box);
  const auto eager = DecomposeBox(grid, box);
  ElementGenerator generator(grid, object);
  std::vector<ZValue> lazy;
  ZValue element;
  while (generator.Next(&element)) lazy.push_back(element);
  EXPECT_EQ(lazy, eager);
  EXPECT_EQ(generator.elements_emitted(), eager.size());
}

TEST(GeneratorTest, SeekForwardSkipsAndSavesClassifyCalls) {
  const GridSpec grid{2, 8};
  const GridBox box = GridBox::Make2D(10, 200, 10, 200);
  const BoxObject object(box);
  const int total = grid.total_bits();

  // Reference: full element list.
  const auto all = DecomposeBox(grid, box);

  // Seek to a z value in the middle of the box's range.
  const uint64_t target = all[all.size() / 2].RangeLo(total) + 1;
  ElementGenerator seeker(grid, object);
  ZValue element;
  ASSERT_TRUE(seeker.SeekForward(target, &element));
  // The element returned is the first whose range ends at/after target.
  size_t expect_idx = 0;
  while (all[expect_idx].RangeHi(total) < target) ++expect_idx;
  EXPECT_EQ(element, all[expect_idx]);

  // And it must have cost fewer classify calls than generating everything.
  ElementGenerator full(grid, object);
  while (full.Next(&element)) {
  }
  EXPECT_LT(seeker.classify_calls(), full.classify_calls());
}

TEST(GeneratorTest, SeekForwardFromBeyondEndIsExhausted) {
  const GridSpec grid{2, 4};
  const BoxObject object(GridBox::Make2D(0, 3, 0, 3));
  ElementGenerator generator(grid, object);
  ZValue element;
  EXPECT_FALSE(
      generator.SeekForward((1ULL << grid.total_bits()) - 1, &element));
}

TEST(CoarsenTest, PaperExample) {
  // Section 5.1: U = 01101101, m = 4 -> U' = 01110000.
  const GridSpec grid{2, 8};
  const GridBox box = GridBox::Make2D(0, 0b01101101 - 1, 0, 0b01101101 - 1);
  const auto coarse = CoarsenBox(grid, box, 4);
  EXPECT_EQ(coarse.box.range(0).hi + 1, 0b01110000u);
  EXPECT_EQ(coarse.box.range(1).hi + 1, 0b01110000u);
}

TEST(CoarsenTest, ReducesElementCountAtSmallAreaCost) {
  const GridSpec grid{2, 8};
  const GridBox box = GridBox::Make2D(0, 0b01101101 - 1, 0, 0b01101101 - 1);
  const uint64_t before = DecomposeBox(grid, box).size();
  const auto coarse = CoarsenBox(grid, box, 4);
  const uint64_t after = DecomposeBox(grid, coarse.box).size();
  EXPECT_LT(after, before);
  EXPECT_LT(coarse.relative_error, 0.10);  // imprecision grows slowly
}

TEST(CoarsenTest, ZeroIsIdentity) {
  const GridSpec grid{2, 6};
  const GridBox box = GridBox::Make2D(3, 41, 7, 29);
  const auto coarse = CoarsenBox(grid, box, 0);
  EXPECT_EQ(coarse.box, box);
  EXPECT_EQ(coarse.added_volume, 0u);
}

TEST(AnalysisTest, MatchesRealDecompositionCounts) {
  const GridSpec grid{2, 7};
  util::Rng rng(61);
  for (int trial = 0; trial < 60; ++trial) {
    const uint64_t u = 1 + rng.NextBelow(grid.side());
    const uint64_t v = 1 + rng.NextBelow(grid.side());
    const GridBox box = GridBox::Make2D(0, static_cast<uint32_t>(u - 1), 0,
                                        static_cast<uint32_t>(v - 1));
    EXPECT_EQ(ElementCountUV(grid, u, v), DecomposeBox(grid, box).size())
        << "U=" << u << " V=" << v;
  }
}

TEST(AnalysisTest, OneDimensionalClosedForm) {
  const GridSpec grid{1, 8};
  util::Rng rng(67);
  for (int trial = 0; trial < 60; ++trial) {
    const uint64_t u = 1 + rng.NextBelow(grid.side());
    const uint64_t extents[1] = {u};
    EXPECT_EQ(AnchoredBoxElementCount(grid, extents), ElementCount1D(u))
        << "U=" << u;
  }
}

TEST(AnalysisTest, CyclicityEUV) {
  // Section 5.1: E(U,V) = E(2U,2V).
  const GridSpec grid{2, 10};
  for (uint64_t u = 1; u <= 100; u += 7) {
    for (uint64_t v = 1; v <= 100; v += 9) {
      EXPECT_EQ(ElementCountUV(grid, u, v), ElementCountUV(grid, 2 * u, 2 * v))
          << "U=" << u << " V=" << v;
    }
  }
}

TEST(AnalysisTest, ThreeDimensionalCountMatches) {
  const GridSpec grid{3, 4};
  util::Rng rng(71);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint64_t> extents(3);
    std::vector<zorder::DimRange> ranges(3);
    for (int d = 0; d < 3; ++d) {
      extents[d] = 1 + rng.NextBelow(grid.side());
      ranges[d] = {0, static_cast<uint32_t>(extents[d] - 1)};
    }
    const GridBox box{std::span<const zorder::DimRange>(ranges)};
    EXPECT_EQ(AnchoredBoxElementCount(grid, extents),
              DecomposeBox(grid, box).size());
  }
}

TEST(AnalysisTest, BitSpanStatistic) {
  const uint64_t extents1[2] = {0b1000, 0b1000};
  EXPECT_EQ(ExtentBitSpan(extents1), 1);
  const uint64_t extents2[2] = {0b1001, 0b0010};
  EXPECT_EQ(ExtentBitSpan(extents2), 4);  // OR = 1011 spans 4 bits
  const uint64_t extents3[2] = {0, 0};
  EXPECT_EQ(ExtentBitSpan(extents3), 0);
}

TEST(AnalysisTest, ZeroExtentYieldsZero) {
  const GridSpec grid{2, 6};
  EXPECT_EQ(ElementCountUV(grid, 0, 13), 0u);
  EXPECT_EQ(ElementCountUV(grid, 13, 0), 0u);
}

}  // namespace
}  // namespace probe::decompose
