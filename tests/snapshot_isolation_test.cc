// Snapshot isolation under writer storms: a reader that pins an epoch E
// must see, for RANGE / BOX / COUNT / k-NN, exactly what a serial replay
// of batches 1..E answers — bitwise, same ids in the same order — no
// matter how many batches writers land while the reader runs. Covered for
// a single DurableIndex (bitwise vs a replay engine), a multi-writer
// storm (exact prefix sizes + containment), and a ShardedEngine View
// (per-shard epochs each a prefix of that shard's sub-batch sequence).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "index/durable_index.h"
#include "index/nearest.h"
#include "server/sharded_engine.h"
#include "temp_file.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace probe {
namespace {

using geometry::GridBox;
using geometry::GridPoint;
using index::DurableIndex;
using probe::util::Rng;
using Op = index::DurableIndex::Op;

constexpr zorder::GridSpec kGrid{2, 8};
constexpr uint32_t kSide = 256;
constexpr int kBatches = 24;
constexpr int kInsertsPerBatch = 16;

const GridBox FullBox() { return GridBox::Make2D(0, kSide - 1, 0, kSide - 1); }
const GridBox SubBox() { return GridBox::Make2D(40, 180, 60, 220); }
const GridPoint KnnCenter() { return GridPoint({128, 128}); }
constexpr size_t kKnnK = 8;

// The deterministic batch script both the replay oracle and the storm
// writer run: mostly inserts, with a delete of an older point every few
// batches so prefixes are not monotone sets.
std::vector<std::vector<Op>> BuildScript() {
  Rng rng(0x150D47E5);
  std::vector<std::vector<Op>> script;
  std::vector<std::pair<GridPoint, uint64_t>> live;
  uint64_t next_id = 1;
  for (int b = 0; b < kBatches; ++b) {
    std::vector<Op> batch;
    for (int i = 0; i < kInsertsPerBatch; ++i) {
      const GridPoint p({static_cast<uint32_t>(rng.Next() % kSide),
                         static_cast<uint32_t>(rng.Next() % kSide)});
      batch.push_back(Op::Insert(p, next_id));
      live.emplace_back(p, next_id);
      ++next_id;
    }
    if (b >= 2 && b % 3 == 0) {
      const size_t victim = rng.Next() % (live.size() - kInsertsPerBatch);
      batch.push_back(Op::Delete(live[victim].first, live[victim].second));
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
    }
    script.push_back(std::move(batch));
  }
  return script;
}

// The serially-replayed answers after batches 1..k.
struct PrefixAnswers {
  std::vector<uint64_t> range;
  std::vector<uint64_t> box;
  uint64_t count = 0;
  std::vector<index::Neighbor> knn;
};

PrefixAnswers Answers(const index::ZkdIndex& index) {
  PrefixAnswers a;
  a.range = index.RangeSearch(FullBox());
  a.box = index.RangeSearch(SubBox());
  a.count = index.CountBox(SubBox());
  a.knn = index::KNearest(index, KnnCenter(), kKnnK);
  return a;
}

void ExpectBitwiseEqual(const PrefixAnswers& got, const PrefixAnswers& want,
                        uint64_t epoch) {
  EXPECT_EQ(got.range, want.range) << "RANGE diverges at epoch " << epoch;
  EXPECT_EQ(got.box, want.box) << "BOX diverges at epoch " << epoch;
  EXPECT_EQ(got.count, want.count) << "COUNT diverges at epoch " << epoch;
  ASSERT_EQ(got.knn.size(), want.knn.size())
      << "KNN diverges at epoch " << epoch;
  for (size_t i = 0; i < got.knn.size(); ++i) {
    EXPECT_EQ(got.knn[i].id, want.knn[i].id) << "epoch " << epoch;
    EXPECT_EQ(got.knn[i].distance2, want.knn[i].distance2)
        << "epoch " << epoch;
  }
}

// A writer lands the script while readers pin snapshots mid-flight; every
// snapshot must answer bitwise-identically to the serial replay of its
// epoch prefix, precomputed on a second engine.
TEST(SnapshotIsolationTest, ReadersSeeSerialReplayPrefixes) {
  const auto script = BuildScript();

  // Replay the script serially, recording the answers after each prefix.
  // oracle[k] = answers as of epoch k + 1 (epoch 1 is the empty commit).
  std::vector<PrefixAnswers> oracle;
  {
    testutil::TempFile replay_file("snap_iso_replay");
    DurableIndex::Options options;
    options.truncate = true;
    DurableIndex replay(kGrid, replay_file.path(), options);
    ASSERT_TRUE(replay.ok());
    oracle.push_back(Answers(replay.index()));
    for (const auto& batch : script) {
      ASSERT_TRUE(replay.Apply(batch));
      oracle.push_back(Answers(replay.index()));
    }
  }

  testutil::TempFile tmp("snap_iso_live");
  DurableIndex::Options options;
  options.truncate = true;
  DurableIndex db(kGrid, tmp.path(), options);
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db.published_epoch(), 1u);

  std::atomic<bool> writer_done{false};
  std::thread writer([&db, &script, &writer_done] {
    for (const auto& batch : script) {
      ASSERT_TRUE(db.Apply(batch));
    }
    writer_done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&db, &oracle, &writer_done] {
      uint64_t newest = 0;
      do {
        DurableIndex::Snapshot snap = db.CreateSnapshot();
        ASSERT_TRUE(snap.ok());
        const uint64_t epoch = snap.epoch();
        ASSERT_GE(epoch, 1u);
        ASSERT_LE(epoch, 1u + static_cast<uint64_t>(kBatches));
        ExpectBitwiseEqual(Answers(snap.index()), oracle[epoch - 1], epoch);
        newest = std::max(newest, epoch);
      } while (!writer_done.load());
      EXPECT_GE(newest, 1u);
    });
  }
  writer.join();
  for (auto& r : readers) r.join();

  // Quiescent: the final snapshot is the full replay.
  DurableIndex::Snapshot final_snap = db.CreateSnapshot();
  ASSERT_TRUE(final_snap.ok());
  EXPECT_EQ(final_snap.epoch(), 1u + static_cast<uint64_t>(kBatches));
  ExpectBitwiseEqual(Answers(final_snap.index()), oracle.back(),
                     final_snap.epoch());
}

// Three writers race same-sized insert batches (thread-unique id spaces)
// while readers pin snapshots. A pinned epoch E fixes the point count
// exactly — (E - 1) * kPerBatch — and must contain every batch whose
// commit the reader observed before pinning.
TEST(SnapshotIsolationTest, WriterStormPinsExactPrefixes) {
  constexpr int kWriters = 3;
  constexpr int kBatchesPerWriter = 10;
  constexpr int kPerBatch = 8;
  testutil::TempFile tmp("snap_iso_storm");
  DurableIndex::Options options;
  options.truncate = true;
  DurableIndex db(kGrid, tmp.path(), options);
  ASSERT_TRUE(db.ok());

  util::Mutex log_mutex;
  std::map<uint64_t, std::vector<uint64_t>> commit_log;  // epoch -> ids

  std::atomic<int> writers_left{kWriters};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&db, &log_mutex, &commit_log, &writers_left, w] {
      for (int b = 0; b < kBatchesPerWriter; ++b) {
        std::vector<Op> batch;
        std::vector<uint64_t> ids;
        for (int i = 0; i < kPerBatch; ++i) {
          const uint64_t id = static_cast<uint64_t>(w) * 100000 +
                              static_cast<uint64_t>(b) * 100 +
                              static_cast<uint64_t>(i) + 1;
          batch.push_back(Op::Insert(
              GridPoint({static_cast<uint32_t>((id * 53) % kSide),
                         static_cast<uint32_t>((id * 17) % kSide)}),
              id));
          ids.push_back(id);
        }
        uint64_t epoch = 0;
        ASSERT_TRUE(db.Apply(batch, &epoch));
        util::MutexLock lock(&log_mutex);
        commit_log.emplace(epoch, std::move(ids));
      }
      writers_left.fetch_sub(1);
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&db, &log_mutex, &commit_log, &writers_left] {
      do {
        // Copy the log *before* pinning: every epoch recorded here is
        // published, so a snapshot pinned afterwards must include it.
        std::map<uint64_t, std::vector<uint64_t>> seen;
        {
          util::MutexLock lock(&log_mutex);
          seen = commit_log;
        }
        DurableIndex::Snapshot snap = db.CreateSnapshot();
        ASSERT_TRUE(snap.ok());
        const uint64_t epoch = snap.epoch();
        auto got = snap.index().RangeSearch(FullBox());
        // Exact size: every batch is the same size and epochs are dense.
        EXPECT_EQ(got.size(), (epoch - 1) * kPerBatch);
        std::set<uint64_t> got_set(got.begin(), got.end());
        for (const auto& [e, ids] : seen) {
          if (e > epoch) continue;
          for (uint64_t id : ids) {
            EXPECT_TRUE(got_set.count(id))
                << "epoch " << epoch << " is missing id " << id
                << " committed at epoch " << e;
          }
        }
      } while (writers_left.load() > 0);
    });
  }
  for (auto& t : threads) t.join();
  for (auto& r : readers) r.join();

  EXPECT_EQ(db.published_epoch(),
            1u + static_cast<uint64_t>(kWriters * kBatchesPerWriter));
  EXPECT_EQ(db.published_size(),
            static_cast<uint64_t>(kWriters * kBatchesPerWriter * kPerBatch));
}

// Sharded: a View pins one epoch per shard, and each pinned epoch is a
// prefix of that shard's sub-batch sequence — so the View's answer set is
// exactly the union of those per-shard prefixes, and COUNT agrees.
TEST(SnapshotIsolationTest, ShardedViewsPinPerShardPrefixes) {
  constexpr int kShards = 4;
  const auto script = BuildScript();

  testutil::TempFile tmp("snap_iso_sharded");
  // TempFile cleans only its own path; scrub the per-shard files.
  struct ShardScrub {
    std::string prefix;
    int shards;
    ~ShardScrub() {
      for (int i = 0; i < shards; ++i) {
        const std::string base =
            server::ShardedEngine::ShardPath(prefix, i);
        std::remove(base.c_str());
        std::remove((base + ".wal").c_str());
        std::remove((base + ".wal.tmp").c_str());
      }
    }
  } scrub{tmp.path(), kShards};

  util::ThreadPool pool(3);
  server::ShardedEngineOptions options;
  options.shards = kShards;
  options.truncate = true;
  server::ShardedEngine engine(kGrid, tmp.path(), options, &pool);
  ASSERT_TRUE(engine.ok());

  // Route the script the way Apply will: shard_script[s] is the sequence
  // of id-sets shard s commits, one entry per batch that touches it.
  std::vector<std::vector<std::set<uint64_t>>> shard_script(kShards);
  {
    std::vector<std::set<uint64_t>> live(kShards);
    for (const auto& batch : script) {
      std::vector<std::set<uint64_t>> touched(kShards);
      std::vector<bool> involved(kShards, false);
      for (const Op& op : batch) {
        const int s = engine.ShardOf(engine.ZOf(op.point));
        involved[static_cast<size_t>(s)] = true;
        if (op.kind == Op::Kind::kInsert) {
          live[static_cast<size_t>(s)].insert(op.id);
        } else {
          live[static_cast<size_t>(s)].erase(op.id);
        }
      }
      for (int s = 0; s < kShards; ++s) {
        if (involved[static_cast<size_t>(s)]) {
          shard_script[static_cast<size_t>(s)].push_back(
              live[static_cast<size_t>(s)]);
        }
      }
    }
  }

  std::atomic<bool> writer_done{false};
  std::thread writer([&engine, &script, &writer_done] {
    for (const auto& batch : script) {
      ASSERT_TRUE(engine.Apply(batch));
    }
    writer_done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&engine, &shard_script, &writer_done] {
      do {
        server::ShardedEngine::View view = engine.CreateView();
        ASSERT_TRUE(view.ok());
        std::set<uint64_t> expected;
        for (int s = 0; s < kShards; ++s) {
          const uint64_t epoch = view.epoch(s);
          ASSERT_GE(epoch, 1u);
          // Shard s at epoch E holds exactly its first E - 1 sub-batches.
          const size_t prefix = static_cast<size_t>(epoch - 1);
          const auto& commits = shard_script[static_cast<size_t>(s)];
          ASSERT_LE(prefix, commits.size()) << "shard " << s;
          if (prefix > 0) {
            expected.insert(commits[prefix - 1].begin(),
                            commits[prefix - 1].end());
          }
        }
        auto got = view.RangeSearch(FullBox());
        std::set<uint64_t> got_set(got.begin(), got.end());
        EXPECT_EQ(got_set, expected);
        EXPECT_EQ(got.size(), got_set.size()) << "duplicate ids in a View";
        EXPECT_EQ(view.CountBox(FullBox()), got.size());
        EXPECT_EQ(view.size(), got.size());
      } while (!writer_done.load());
    });
  }
  writer.join();
  for (auto& r : readers) r.join();

  // Quiescent: a fresh View holds every shard's full sub-batch sequence
  // and the engine-level queries agree with it.
  server::ShardedEngine::View final_view = engine.CreateView();
  std::set<uint64_t> all;
  for (int s = 0; s < kShards; ++s) {
    const auto& commits = shard_script[static_cast<size_t>(s)];
    EXPECT_EQ(final_view.epoch(s), 1u + commits.size()) << "shard " << s;
    if (!commits.empty()) {
      all.insert(commits.back().begin(), commits.back().end());
    }
  }
  auto got = final_view.RangeSearch(FullBox());
  EXPECT_EQ(std::set<uint64_t>(got.begin(), got.end()), all);
  EXPECT_EQ(engine.RangeSearch(FullBox()), got);
  EXPECT_EQ(engine.size(), got.size());
}

}  // namespace
}  // namespace probe
