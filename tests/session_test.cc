#include "server/session.h"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "server/client.h"
#include "server/server.h"
#include "server/sharded_engine.h"
#include "temp_file.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"

// Session rules, enforced end to end over a socketpair (no TCP, fully
// hermetic): HELLO creates a session, queries require one, a second HELLO
// is rejected, GOODBYE ends it, idling past the server's timeout expires
// it, and admission control answers kBusy instead of queueing.

namespace probe::server {
namespace {

using geometry::GridBox;
using std::chrono::milliseconds;

constexpr zorder::GridSpec kGrid{2, 8};

// ---------------------------------------------------------- unit level

TEST(SessionManagerTest, CreateTouchCloseLifecycle) {
  SessionManager manager(milliseconds(60000));
  EXPECT_EQ(manager.active(), 0u);
  const uint64_t a = manager.Create(-1, "a");
  const uint64_t b = manager.Create(8, "b");
  EXPECT_NE(a, b);
  EXPECT_EQ(manager.active(), 2u);

  Session* session = manager.Touch(b);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->max_element_depth(), 8);
  EXPECT_EQ(session->client_name(), "b");

  EXPECT_TRUE(manager.Close(a));
  EXPECT_FALSE(manager.Close(a));  // already gone
  EXPECT_EQ(manager.Touch(a), nullptr);
  EXPECT_EQ(manager.active(), 1u);
}

TEST(SessionManagerTest, IdleSessionsExpire) {
  // Harness clock: the test advances `now` instead of sleeping, so expiry
  // is exact at the timeout boundary and the test is sleep-free.
  auto now = std::chrono::steady_clock::now();
  SessionManager manager(milliseconds(50));
  manager.SetClockForTest([&now] { return now; });

  const uint64_t id = manager.Create(-1, "idler");
  EXPECT_FALSE(manager.Expired(id));
  now += milliseconds(120);
  EXPECT_TRUE(manager.Expired(id));
  // Touching an expired session refuses instead of reviving it; the
  // session stays registered until closed or swept.
  EXPECT_EQ(manager.Touch(id), nullptr);
  EXPECT_EQ(manager.active(), 1u);
  EXPECT_EQ(manager.ExpireIdle(), 1u);
  EXPECT_EQ(manager.active(), 0u);

  // A session touched inside the window keeps sliding: two 40ms idles
  // never expire under a 50ms timeout, a 60ms one does.
  const uint64_t fresh = manager.Create(-1, "fresh");
  now += milliseconds(40);
  ASSERT_NE(manager.Touch(fresh), nullptr);
  now += milliseconds(40);
  EXPECT_FALSE(manager.Expired(fresh));
  EXPECT_EQ(manager.ExpireIdle(), 0u);
  now += milliseconds(60);
  EXPECT_EQ(manager.ExpireIdle(), 1u);
  EXPECT_EQ(manager.active(), 0u);
}

// ------------------------------------------------------- protocol level

class SessionProtocolTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options) {
    tmp_ = std::make_unique<testutil::TempFile>("session_proto");
    pool_ = std::make_unique<util::ThreadPool>(4);
    ShardedEngineOptions engine_options;
    engine_options.shards = 2;
    engine_options.truncate = true;
    engine_ = std::make_unique<ShardedEngine>(kGrid, tmp_->path(),
                                              engine_options, pool_.get());
    ASSERT_TRUE(engine_->ok());

    workload::DataGenConfig config;
    config.count = 500;
    const auto points = workload::GeneratePoints(kGrid, config);
    std::vector<index::DurableIndex::Op> ops;
    for (const auto& r : points) {
      ops.push_back(index::DurableIndex::Op::Insert(r.point, r.id));
    }
    ASSERT_TRUE(engine_->Apply(ops));

    server_ = std::make_unique<Server>(engine_.get(), options);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    RemoveShardFiles();
  }

  // Hands one socketpair end to the server, returns a client on the other.
  Client Connect() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    server_->ServeConnection(fds[0]);
    Client client;
    client.Adopt(fds[1]);
    return client;
  }

  void RemoveShardFiles() {
    if (tmp_ == nullptr) return;
    for (int i = 0; i < 2; ++i) {
      const std::string base = ShardedEngine::ShardPath(tmp_->path(), i);
      std::remove(base.c_str());
      std::remove((base + ".wal").c_str());
    }
  }

  std::unique_ptr<testutil::TempFile> tmp_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<ShardedEngine> engine_;
  std::unique_ptr<Server> server_;
};

TEST_F(SessionProtocolTest, HelloQueriesGoodbye) {
  StartServer(ServerOptions{});
  Client client = Connect();

  HelloResponse hello;
  ASSERT_TRUE(client.Hello(&hello, -1, "lifecycle-test"));
  EXPECT_NE(hello.session_id, 0u);
  EXPECT_EQ(hello.dims, 2);
  EXPECT_EQ(hello.bits_per_dim, 8);
  EXPECT_EQ(hello.shards, 2);
  EXPECT_EQ(hello.point_count, 500u);
  EXPECT_EQ(server_->sessions().active(), 1u);

  const auto box = GridBox::Make2D(10, 200, 10, 200);
  std::vector<uint64_t> ids;
  ASSERT_TRUE(client.Range(box, &ids));
  EXPECT_EQ(ids, engine_->RangeSearch(box));

  uint64_t count = 0;
  ASSERT_TRUE(client.Count(box, &count));
  EXPECT_EQ(count, ids.size());

  ASSERT_TRUE(client.Goodbye());
  EXPECT_EQ(server_->sessions().active(), 0u);

  // The connection survives GOODBYE but queries need a new HELLO.
  EXPECT_TRUE(client.Ping());
  EXPECT_FALSE(client.Range(box, &ids));
  EXPECT_EQ(client.last_status(), Status::kNoSession);
  ASSERT_TRUE(client.Hello(&hello));
  ASSERT_TRUE(client.Range(box, &ids));
}

TEST_F(SessionProtocolTest, DoubleHelloIsRejected) {
  StartServer(ServerOptions{});
  Client client = Connect();
  HelloResponse hello;
  ASSERT_TRUE(client.Hello(&hello));
  HelloResponse again;
  EXPECT_FALSE(client.Hello(&again));
  EXPECT_EQ(client.last_status(), Status::kDoubleHello);
  // The session survives the rejected HELLO.
  EXPECT_TRUE(client.Ping());
  std::vector<uint64_t> ids;
  EXPECT_TRUE(client.Range(GridBox::Make2D(0, 50, 0, 50), &ids));
}

TEST_F(SessionProtocolTest, QueryBeforeHelloIsRejected) {
  StartServer(ServerOptions{});
  Client client = Connect();
  std::vector<uint64_t> ids;
  EXPECT_FALSE(client.Range(GridBox::Make2D(0, 50, 0, 50), &ids));
  EXPECT_EQ(client.last_status(), Status::kNoSession);
  uint64_t count = 0;
  EXPECT_FALSE(client.Count(GridBox::Make2D(0, 50, 0, 50), &count));
  EXPECT_EQ(client.last_status(), Status::kNoSession);
}

TEST_F(SessionProtocolTest, IdleSessionExpiresAndConnectionCloses) {
  ServerOptions options;
  options.idle_timeout = milliseconds(100);
  StartServer(options);

  // Harness clock: real time plus a test-controlled offset. Advancing the
  // offset leaps the session past its idle timeout with no real sleeping
  // (the offset is atomic because handler threads read the clock
  // concurrently).
  auto offset = std::make_shared<std::atomic<int64_t>>(0);
  server_->sessions().SetClockForTest([offset] {
    return std::chrono::steady_clock::now() + milliseconds(offset->load());
  });

  Client client = Connect();
  HelloResponse hello;
  ASSERT_TRUE(client.Hello(&hello));
  EXPECT_EQ(server_->sessions().active(), 1u);

  offset->store(250);  // idle for "250ms" against a 100ms timeout

  // The next query finds the session expired — deterministically via the
  // lookup itself, or via the server's idle tick if that raced ahead and
  // closed the connection first.
  std::vector<uint64_t> ids;
  EXPECT_FALSE(client.Range(GridBox::Make2D(0, 50, 0, 50), &ids));
  EXPECT_TRUE(client.last_status() == Status::kSessionExpired ||
              client.last_status() == Status::kIoError)
      << StatusName(client.last_status());
  EXPECT_EQ(server_->sessions().active(), 0u);
}

TEST_F(SessionProtocolTest, SessionDepthCapAppliesToQueries) {
  StartServer(ServerOptions{});
  Client capped = Connect();
  HelloResponse hello;
  ASSERT_TRUE(capped.Hello(&hello, /*max_element_depth=*/6));

  // Depth-capped search with verification stays exact: same answers.
  const auto box = GridBox::Make2D(30, 220, 10, 190);
  std::vector<uint64_t> ids;
  ASSERT_TRUE(capped.Range(box, &ids));
  EXPECT_EQ(ids, engine_->RangeSearch(box));
  uint64_t count = 0;
  ASSERT_TRUE(capped.Count(box, &count));
  EXPECT_EQ(count, engine_->CountBox(box));
}

TEST_F(SessionProtocolTest, ConnectionsBeyondMaxAreRefusedBusy) {
  ServerOptions options;
  options.max_connections = 1;
  options.worker_threads = 4;
  StartServer(options);

  Client first = Connect();
  HelloResponse hello;
  ASSERT_TRUE(first.Hello(&hello));

  // The second connection is answered kBusy at the door and closed.
  Client second = Connect();
  HelloResponse refused;
  EXPECT_FALSE(second.Hello(&refused));
  EXPECT_EQ(second.last_status(), Status::kBusy);
  EXPECT_GE(server_->counters().busy, 1u);

  // Once the first hangs up, a new connection is admitted.
  ASSERT_TRUE(first.Goodbye());
  first.Close();
  // Give the handler a moment to notice the close and release the slot.
  for (int i = 0; i < 100; ++i) {
    if (server_->counters().connections >= 2) break;
    std::this_thread::sleep_for(milliseconds(10));
  }
  // A refused connection surfaces as kBusy (the refusal frame was read) or
  // as an I/O error (the send raced the server's close); both mean retry.
  Client third = Connect();
  for (int i = 0; i < 100; ++i) {
    HelloResponse ok;
    if (third.Hello(&ok)) return;
    if (third.last_status() != Status::kBusy &&
        third.last_status() != Status::kIoError) {
      break;
    }
    third.Close();
    std::this_thread::sleep_for(milliseconds(10));
    third = Connect();
  }
  FAIL() << "connection never admitted after slot freed: "
         << StatusName(third.last_status());
}

TEST_F(SessionProtocolTest, ZeroInflightBudgetAnswersBusyPerQuery) {
  ServerOptions options;
  options.max_inflight = 0;
  StartServer(options);
  Client client = Connect();
  HelloResponse hello;
  ASSERT_TRUE(client.Hello(&hello));  // HELLO is not a query
  std::vector<uint64_t> ids;
  EXPECT_FALSE(client.Range(GridBox::Make2D(0, 50, 0, 50), &ids));
  EXPECT_EQ(client.last_status(), Status::kBusy);
  // The connection stays usable; admission is per-request.
  EXPECT_TRUE(client.Ping());
}

TEST_F(SessionProtocolTest, InvalidQueryPayloadIsRejectedNotCrashed) {
  StartServer(ServerOptions{});
  Client client = Connect();
  HelloResponse hello;
  ASSERT_TRUE(client.Hello(&hello));

  // A box off the engine's grid (hi >= 2^8) is kBadPayload.
  std::vector<uint64_t> ids;
  EXPECT_FALSE(client.Range(GridBox::Make2D(0, 300, 0, 300), &ids));
  EXPECT_EQ(client.last_status(), Status::kBadPayload);

  // A 3-d box against a 2-d engine likewise.
  const zorder::DimRange ranges3[] = {{0, 1}, {0, 1}, {0, 1}};
  EXPECT_FALSE(client.Range(
      GridBox(std::span<const zorder::DimRange>(ranges3, 3)), &ids));
  EXPECT_EQ(client.last_status(), Status::kBadPayload);

  // The session survives rejected queries.
  EXPECT_TRUE(client.Range(GridBox::Make2D(0, 255, 0, 255), &ids));
}

}  // namespace
}  // namespace probe::server
