#include "index/nearest.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "workload/datagen.h"
#include "workload/experiment.h"

namespace probe::index {
namespace {

using geometry::GridPoint;
using zorder::GridSpec;

Dist2 Distance2(const GridPoint& a, const GridPoint& b) {
  Dist2 d2 = 0;
  for (int i = 0; i < a.dims(); ++i) {
    const uint64_t d = a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
    d2 += static_cast<Dist2>(d) * d;
  }
  return d2;
}

std::vector<Neighbor> BruteForceKnn(const std::vector<PointRecord>& points,
                                    const GridPoint& query, size_t k) {
  std::vector<Neighbor> all;
  for (const auto& r : points) {
    all.push_back(Neighbor{r.id, Distance2(r.point, query)});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance2 != b.distance2) return a.distance2 < b.distance2;
    return a.id < b.id;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(KNearestTest, EmptyIndexAndZeroK) {
  const GridSpec grid{2, 8};
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 32);
  ZkdIndex index(grid, &pool);
  EXPECT_TRUE(KNearest(index, GridPoint({10, 10}), 5).empty());
  index.Insert(GridPoint({1, 1}), 1);
  EXPECT_TRUE(KNearest(index, GridPoint({10, 10}), 0).empty());
}

TEST(KNearestTest, SinglePoint) {
  const GridSpec grid{2, 8};
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 32);
  ZkdIndex index(grid, &pool);
  index.Insert(GridPoint({100, 200}), 42);
  const auto result = KNearest(index, GridPoint({0, 0}), 3);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 42u);
  EXPECT_EQ(result[0].distance2, 100ull * 100 + 200ull * 200);
}

class KnnPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KnnPropertyTest, MatchesBruteForceAcrossDistributions) {
  const GridSpec grid{2, 8};
  workload::DataGenConfig data;
  data.distribution = static_cast<workload::Distribution>(GetParam());
  data.count = 700;
  data.seed = 77 + GetParam();
  const auto points = GeneratePoints(grid, data);
  auto built = workload::BuildZkdIndex(grid, points, 20, 64);

  util::Rng rng(900 + GetParam());
  for (int q = 0; q < 20; ++q) {
    const GridPoint query({static_cast<uint32_t>(rng.NextBelow(256)),
                           static_cast<uint32_t>(rng.NextBelow(256))});
    const size_t k = 1 + rng.NextBelow(10);
    const auto got = KNearest(*built.index, query, k);
    const auto expect = BruteForceKnn(points, query, k);
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < got.size(); ++i) {
      // Distances must match exactly; ids may differ only among exact
      // distance ties at the cut boundary — our tie-break is by id, same
      // as the reference, so require exact agreement.
      EXPECT_EQ(got[i].distance2, expect[i].distance2) << "i=" << i;
      EXPECT_EQ(got[i].id, expect[i].id) << "i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, KnnPropertyTest,
                         ::testing::Values(0, 1, 2));

TEST(KNearestTest, ThreeDimensional) {
  const GridSpec grid{3, 6};
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 32);
  util::Rng rng(911);
  std::vector<PointRecord> points;
  for (uint64_t i = 0; i < 400; ++i) {
    points.push_back({GridPoint({static_cast<uint32_t>(rng.NextBelow(64)),
                                 static_cast<uint32_t>(rng.NextBelow(64)),
                                 static_cast<uint32_t>(rng.NextBelow(64))}),
                      i});
  }
  auto index = ZkdIndex::Build(grid, &pool, points);
  const GridPoint query({30, 30, 30});
  const auto got = KNearest(index, query, 7);
  const auto expect = BruteForceKnn(points, query, 7);
  ASSERT_EQ(got.size(), 7u);
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(got[i].id, expect[i].id);
  }
}

TEST(KNearestTest, PruningBeatsFullScan) {
  const GridSpec grid{2, 10};
  workload::DataGenConfig data;
  data.count = 5000;
  data.seed = 13;
  const auto points = GeneratePoints(grid, data);
  auto built = workload::BuildZkdIndex(grid, points, 20, 64);
  NearestStats stats;
  KNearest(*built.index, GridPoint({512, 512}), 5, &stats);
  // A 5-NN query must not read most of the 250 data pages.
  EXPECT_LT(stats.leaf_pages, 40u);
  EXPECT_LT(stats.points_examined, 1000u);
}

TEST(KNearestTest, FullResolutionGridCornersDoNotOverflow) {
  // On a 2 x 32-bit grid the corner-to-corner squared distance is
  // 2 * (2^32 - 1)^2 ≈ 2^65 — past uint64_t. With 64-bit accumulation the
  // far corner's distance wrapped *below* the 1-axis corners' (~2^64)
  // distances, corrupting the reported order; Dist2 (128-bit) keeps it
  // straight. A huge scan threshold makes the search scan the grid's two
  // halves directly: with so few points there is no distance bound to
  // prune a 2^64-cell region tree with, and this test is about the
  // distance arithmetic, not the traversal.
  const GridSpec grid{2, 32};
  constexpr uint32_t kMax = ~static_cast<uint32_t>(0);
  std::vector<PointRecord> points;
  points.push_back({GridPoint({kMax, kMax}), 0});        // true d2 ~ 2^65
  points.push_back({GridPoint({kMax, 0}), 1});           // true d2 ~ 2^64
  points.push_back({GridPoint({0, kMax}), 2});           // true d2 ~ 2^64
  points.push_back({GridPoint({5, 7}), 3});              // truly near
  points.push_back({GridPoint({1u << 20, 1u << 20}), 4});  // mid-near
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 32);
  auto index = ZkdIndex::Build(grid, &pool, points);

  NearestOptions options;
  options.scan_cell_threshold = 1ULL << 63;
  const GridPoint query({0, 0});
  const auto got =
      KNearest(index, query, points.size(), nullptr, options);
  const auto expect = BruteForceKnn(points, query, points.size());
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, expect[i].id) << "i=" << i;
    EXPECT_TRUE(got[i].distance2 == expect[i].distance2) << "i=" << i;
  }
  // The ordering the overflow used to corrupt: near points first, the
  // one-axis corners next, the far corner last — its distance really is
  // past 64 bits.
  EXPECT_EQ(got[0].id, 3u);
  EXPECT_EQ(got[1].id, 4u);
  EXPECT_EQ(got.back().id, 0u);
  EXPECT_TRUE(got.back().distance2 >
              static_cast<Dist2>(~static_cast<uint64_t>(0)));

  // Best-first pruning at the same resolution: a query beside the far
  // corner must find it without the threshold crutch — MinDistance2 on
  // deep regions must not wrap either.
  const auto nearest = KNearest(index, GridPoint({kMax - 3, kMax - 5}), 1);
  ASSERT_EQ(nearest.size(), 1u);
  EXPECT_EQ(nearest[0].id, 0u);
  EXPECT_TRUE(nearest[0].distance2 == static_cast<Dist2>(9 + 25));
}

TEST(WithinDistanceTest, MatchesBruteForce) {
  const GridSpec grid{2, 7};
  util::Rng rng(913);
  std::vector<PointRecord> points;
  for (uint64_t i = 0; i < 500; ++i) {
    points.push_back({GridPoint({static_cast<uint32_t>(rng.NextBelow(128)),
                                 static_cast<uint32_t>(rng.NextBelow(128))}),
                      i});
  }
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 32);
  auto index = ZkdIndex::Build(grid, &pool, points);

  for (const double radius : {3.0, 10.0, 25.0}) {
    const GridPoint query({60, 70});
    auto got = WithinDistance(index, query, radius);
    std::sort(got.begin(), got.end());
    std::vector<uint64_t> expect;
    for (const auto& r : points) {
      if (static_cast<double>(Distance2(r.point, query)) <= radius * radius) {
        expect.push_back(r.id);
      }
    }
    EXPECT_EQ(got, expect) << "radius " << radius;
  }
}

TEST(KNearestTest, ScanThresholdOptionTradesScansForExpansion) {
  const GridSpec grid{2, 10};
  workload::DataGenConfig data;
  data.count = 5000;
  data.seed = 17;
  const auto points = GeneratePoints(grid, data);
  auto built = workload::BuildZkdIndex(grid, points, 20, 64);

  NearestOptions coarse;
  coarse.scan_cell_threshold = 1 << 14;
  NearestOptions fine;
  fine.scan_cell_threshold = 1 << 6;
  NearestStats coarse_stats, fine_stats;
  const auto a =
      KNearest(*built.index, GridPoint({100, 900}), 10, &coarse_stats, coarse);
  const auto b =
      KNearest(*built.index, GridPoint({100, 900}), 10, &fine_stats, fine);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
  EXPECT_LT(coarse_stats.regions_expanded, fine_stats.regions_expanded);
  EXPECT_GE(coarse_stats.points_examined, fine_stats.points_examined);
}

}  // namespace
}  // namespace probe::index
