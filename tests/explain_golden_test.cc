// Golden-file EXPLAIN tests: the planner's decisions for a fixed workload,
// snapshotted as pretty-printed ExplainJson under tests/golden/.
//
// Plans are snapshotted *before* execution, so the JSON holds only the
// chosen operators, their shapes, and the cost estimates — all pure
// functions of the (seeded) dataset and the planner options, never wall
// clock. A diff in a golden file is a planner behavior change: estimates
// moved, a threshold flipped, an operator was renamed. Review the diff,
// then regenerate with
//
//   ./explain_golden_test --update-golden
//
// which rewrites every snapshot in the source tree and exits green.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "index/cost_model.h"
#include "query/explain.h"
#include "query/planner.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"
#include "workload/experiment.h"

namespace probe::query {
namespace {

bool g_update_golden = false;

using geometry::GridBox;
using geometry::GridPoint;
using zorder::GridSpec;

/// The one fixture every snapshot is planned against. Everything is
/// seeded: a different dataset would change every estimate in every file.
struct GoldenFixture {
  GridSpec grid{2, 10};
  std::vector<index::PointRecord> points;
  workload::BuiltIndex built;
  index::CostModel model;
  baseline::BucketKdTree kd_tree;

  GoldenFixture()
      : points([&] {
          workload::DataGenConfig data;
          data.distribution = workload::Distribution::kUniform;
          data.count = 5000;
          data.seed = 7100;
          return GeneratePoints(grid, data);
        }()),
        built(workload::BuildZkdIndex(grid, points, 20, 256)),
        model(index::CostModel::FromIndex(*built.index)),
        kd_tree(baseline::BucketKdTree::Build(grid.dims, points, 20)) {}

  PlannerContext Context(util::ThreadPool* pool = nullptr,
                         bool with_kd = false) const {
    PlannerContext ctx;
    ctx.index = built.index.get();
    ctx.cost_model = &model;
    ctx.pool = pool;
    if (with_kd) ctx.kd_tree = &kd_tree;
    return ctx;
  }
};

std::string GoldenPath(const std::string& name) {
  return std::string(PROBE_GOLDEN_DIR) + "/" + name + ".json";
}

/// Compares `json` against the named snapshot — or rewrites the snapshot
/// when --update-golden was passed.
void CheckGolden(const std::string& name, const std::string& json) {
  const std::string path = GoldenPath(name);
  if (g_update_golden) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << json;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path
                         << " is missing; run with --update-golden to create";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(json, want.str())
      << "plan for '" << name << "' drifted from " << path
      << "\nif the change is intended, rerun with --update-golden";
}

TEST(ExplainGoldenTest, SerialRangeScan) {
  const GoldenFixture fx;
  PlannedQuery planned =
      Plan(Query::Range(GridBox::Make2D(100, 400, 100, 400)), fx.Context());
  CheckGolden("range_serial", ExplainJsonPretty(*planned.root));
}

TEST(ExplainGoldenTest, ParallelRangeScan) {
  const GoldenFixture fx;
  util::ThreadPool pool(3);
  PlannerOptions options;
  options.parallel_page_threshold = 1;
  options.pages_per_lane = 1;
  PlannedQuery planned = Plan(Query::Range(GridBox::Make2D(50, 800, 50, 800)),
                              fx.Context(&pool), options);
  CheckGolden("range_parallel", ExplainJsonPretty(*planned.root));
}

TEST(ExplainGoldenTest, DepthCappedRangeScan) {
  const GoldenFixture fx;
  PlannerOptions options;
  options.element_budget = 64;
  PlannedQuery planned = Plan(Query::Range(GridBox::Make2D(10, 900, 10, 900)),
                              fx.Context(), options);
  CheckGolden("range_depth_capped", ExplainJsonPretty(*planned.root));
}

TEST(ExplainGoldenTest, BucketKdFallback) {
  const GoldenFixture fx;
  PlannerOptions options;
  options.kd_advantage = 1e9;  // any finite kd estimate wins
  PlannedQuery planned =
      Plan(Query::Range(GridBox::Make2D(100, 400, 100, 400)),
           fx.Context(nullptr, /*with_kd=*/true), options);
  CheckGolden("range_kd_fallback", ExplainJsonPretty(*planned.root));
}

TEST(ExplainGoldenTest, AggregateCount) {
  const GoldenFixture fx;
  PlannedQuery planned =
      Plan(Query::Count(GridBox::Make2D(100, 400, 100, 400)), fx.Context());
  CheckGolden("aggregate_count", ExplainJsonPretty(*planned.root));
}

TEST(ExplainGoldenTest, WithinDistance) {
  const GoldenFixture fx;
  PlannedQuery planned = Plan(
      Query::WithinDistance(GridPoint({512, 512}), 60.0), fx.Context());
  CheckGolden("within_distance", ExplainJsonPretty(*planned.root));
}

TEST(ExplainGoldenTest, KNearest) {
  const GoldenFixture fx;
  PlannedQuery planned =
      Plan(Query::KNearest(GridPoint({512, 512}), 16), fx.Context());
  CheckGolden("k_nearest", ExplainJsonPretty(*planned.root));
}

TEST(ExplainGoldenTest, DistanceJoin) {
  const GoldenFixture fx;
  // A second seeded catalog joined against the fixture's points; the
  // distance join plans standalone (no index), so only the analytic
  // estimate and the operator shape land in the snapshot.
  workload::DataGenConfig s_config;
  s_config.count = 3000;
  s_config.seed = 7200;
  const auto s_points = GeneratePoints(fx.grid, s_config);
  PlannedQuery planned = Plan(
      Query::DistanceJoin(fx.points, s_points, fx.grid, 8), fx.Context());
  CheckGolden("distance_join", ExplainJsonPretty(*planned.root));
}

TEST(ExplainGoldenTest, ParallelDistanceJoin) {
  const GoldenFixture fx;
  workload::DataGenConfig s_config;
  s_config.count = 3000;
  s_config.seed = 7200;
  const auto s_points = GeneratePoints(fx.grid, s_config);
  util::ThreadPool pool(3);
  PlannerOptions options;
  options.join_parallel_row_threshold = 1;
  PlannedQuery planned =
      Plan(Query::DistanceJoin(fx.points, s_points, fx.grid, 8),
           fx.Context(&pool), options);
  CheckGolden("distance_join_parallel", ExplainJsonPretty(*planned.root));
}

}  // namespace
}  // namespace probe::query

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      probe::query::g_update_golden = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
