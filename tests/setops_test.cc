#include "ag/setops.h"

#include <set>

#include <gtest/gtest.h>

#include "decompose/decomposer.h"
#include "geometry/csg.h"
#include "geometry/primitives.h"
#include "util/rng.h"
#include "zorder/shuffle.h"

namespace probe::ag {
namespace {

using decompose::Decompose;
using geometry::BallObject;
using geometry::BoxObject;
using geometry::GridBox;
using zorder::GridSpec;
using zorder::ZValue;

// Expands a sequence to its cell set (z ranks) for ground-truth checks.
std::set<uint64_t> Cells(const GridSpec& grid,
                         std::span<const ZValue> elements) {
  std::set<uint64_t> cells;
  const int total = grid.total_bits();
  for (const ZValue& e : elements) {
    for (uint64_t z = e.RangeLo(total); z <= e.RangeHi(total); ++z) {
      cells.insert(z);
    }
  }
  return cells;
}

// A random disjoint sorted sequence over a small grid: decompose a random
// union of boxes.
std::vector<ZValue> RandomSequence(const GridSpec& grid, util::Rng& rng) {
  std::vector<std::shared_ptr<const geometry::SpatialObject>> parts;
  const int n = 1 + static_cast<int>(rng.NextBelow(4));
  for (int i = 0; i < n; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.NextBelow(grid.side()));
    const uint32_t y = static_cast<uint32_t>(rng.NextBelow(grid.side()));
    const uint32_t w = static_cast<uint32_t>(rng.NextBelow(grid.side() / 2));
    const uint32_t h = static_cast<uint32_t>(rng.NextBelow(grid.side() / 2));
    parts.push_back(std::make_shared<BoxObject>(GridBox::Make2D(
        x, std::min<uint32_t>(x + w, grid.side() - 1), y,
        std::min<uint32_t>(y + h, grid.side() - 1))));
  }
  return Decompose(grid, geometry::UnionObject(parts));
}

TEST(SetOpsTest, IsDisjointSortedDetectsViolations) {
  const GridSpec grid{2, 3};
  std::vector<ZValue> good = {*ZValue::Parse("00"), *ZValue::Parse("01"),
                              *ZValue::Parse("1")};
  EXPECT_TRUE(IsDisjointSorted(grid, good));
  std::vector<ZValue> overlap = {*ZValue::Parse("0"), *ZValue::Parse("01")};
  EXPECT_FALSE(IsDisjointSorted(grid, overlap));
  std::vector<ZValue> unsorted = {*ZValue::Parse("1"), *ZValue::Parse("00")};
  EXPECT_FALSE(IsDisjointSorted(grid, unsorted));
}

TEST(SetOpsTest, CanonicalizeCoalescesSiblings) {
  const GridSpec grid{2, 3};
  // The four quadrant children of "01" plus "1": should fold to {01, 1},
  // and then — since 0's other half is missing — stop there.
  std::vector<ZValue> input = {*ZValue::Parse("0100"), *ZValue::Parse("0101"),
                               *ZValue::Parse("011"), *ZValue::Parse("1")};
  const auto canonical = Canonicalize(grid, input);
  ASSERT_EQ(canonical.size(), 2u);
  EXPECT_EQ(canonical[0].ToString(), "01");
  EXPECT_EQ(canonical[1].ToString(), "1");
}

TEST(SetOpsTest, CanonicalizeWholeSpace) {
  const GridSpec grid{2, 2};
  // All 16 pixels -> the empty prefix (whole space).
  std::vector<ZValue> pixels;
  for (uint64_t z = 0; z < 16; ++z) pixels.push_back(ZValue::FromInteger(z, 4));
  const auto canonical = Canonicalize(grid, pixels);
  ASSERT_EQ(canonical.size(), 1u);
  EXPECT_TRUE(canonical[0].IsEmpty());
}

TEST(SetOpsTest, OperationsMatchCellSetAlgebra) {
  const GridSpec grid{2, 4};
  util::Rng rng(3100);
  for (int trial = 0; trial < 40; ++trial) {
    const auto a = RandomSequence(grid, rng);
    const auto b = RandomSequence(grid, rng);
    const auto cells_a = Cells(grid, a);
    const auto cells_b = Cells(grid, b);

    const auto u = UnionOf(grid, a, b);
    const auto i = IntersectionOf(grid, a, b);
    const auto d = DifferenceOf(grid, a, b);
    EXPECT_TRUE(IsDisjointSorted(grid, u));
    EXPECT_TRUE(IsDisjointSorted(grid, i));
    EXPECT_TRUE(IsDisjointSorted(grid, d));

    std::set<uint64_t> expect_u = cells_a;
    expect_u.insert(cells_b.begin(), cells_b.end());
    std::set<uint64_t> expect_i, expect_d;
    for (uint64_t z : cells_a) {
      if (cells_b.count(z)) {
        expect_i.insert(z);
      } else {
        expect_d.insert(z);
      }
    }
    EXPECT_EQ(Cells(grid, u), expect_u);
    EXPECT_EQ(Cells(grid, i), expect_i);
    EXPECT_EQ(Cells(grid, d), expect_d);

    // Volumes agree.
    EXPECT_EQ(SequenceVolume(grid, u), expect_u.size());
    EXPECT_EQ(SequenceVolume(grid, i), expect_i.size());
    EXPECT_EQ(SequenceVolume(grid, d), expect_d.size());

    // Covers is difference-emptiness.
    EXPECT_EQ(Covers(grid, a, b), expect_i.size() == cells_b.size());
    EXPECT_TRUE(Covers(grid, a, a));
    EXPECT_TRUE(Covers(grid, u, a));
    EXPECT_TRUE(Covers(grid, u, b));
    EXPECT_TRUE(Covers(grid, a, i));
  }
}

TEST(SetOpsTest, CanonicalFormsAreEqualForEqualSets) {
  // The same cell set reached via different expressions canonicalizes to
  // identical sequences.
  const GridSpec grid{2, 4};
  const auto big = Decompose(grid, BoxObject(GridBox::Make2D(2, 13, 3, 12)));
  const auto left = Decompose(grid, BoxObject(GridBox::Make2D(2, 7, 3, 12)));
  const auto right = Decompose(grid, BoxObject(GridBox::Make2D(8, 13, 3, 12)));
  const auto rebuilt = UnionOf(grid, left, right);
  const auto canonical_big = Canonicalize(grid, big);
  EXPECT_EQ(rebuilt, canonical_big);
}

TEST(SetOpsTest, DecomposeDifferenceEqualsSetDifference) {
  // The CSG DifferenceObject and the sequence difference agree.
  const GridSpec grid{2, 4};
  auto disk = std::make_shared<BallObject>(std::vector<double>{8.0, 8.0}, 6.0);
  auto hole = std::make_shared<BallObject>(std::vector<double>{8.0, 8.0}, 3.0);
  const geometry::DifferenceObject annulus(disk, hole);
  const auto via_csg =
      Canonicalize(grid, Decompose(grid, annulus));
  const auto via_setops = DifferenceOf(grid, Decompose(grid, *disk),
                                       Decompose(grid, *hole));
  EXPECT_EQ(Cells(grid, via_csg), Cells(grid, via_setops));
  EXPECT_EQ(via_csg, via_setops);  // canonical forms are identical
}

TEST(SetOpsTest, EmptyInputs) {
  const GridSpec grid{2, 3};
  const std::vector<ZValue> empty;
  const std::vector<ZValue> one = {*ZValue::Parse("01")};
  EXPECT_TRUE(UnionOf(grid, empty, empty).empty());
  EXPECT_EQ(UnionOf(grid, one, empty), one);
  EXPECT_TRUE(IntersectionOf(grid, one, empty).empty());
  EXPECT_EQ(DifferenceOf(grid, one, empty), one);
  EXPECT_TRUE(DifferenceOf(grid, empty, one).empty());
  EXPECT_TRUE(Covers(grid, one, empty));
  EXPECT_FALSE(Covers(grid, empty, one));
  EXPECT_EQ(SequenceVolume(grid, empty), 0u);
}

}  // namespace
}  // namespace probe::ag
