#include "index/zkd_index.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "geometry/primitives.h"
#include "util/rng.h"
#include "workload/datagen.h"

namespace probe::index {
namespace {

using geometry::GridBox;
using geometry::GridPoint;
using zorder::GridSpec;

std::vector<uint64_t> BruteForce(const std::vector<PointRecord>& points,
                                 const GridBox& box) {
  std::vector<uint64_t> out;
  for (const PointRecord& r : points) {
    if (box.ContainsPoint(r.point)) out.push_back(r.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class IndexFixture {
 public:
  IndexFixture(const GridSpec& grid, std::span<const PointRecord> points,
               int leaf_capacity = 20)
      : pool_(&pager_, 64) {
    btree::BTreeConfig config;
    config.leaf_capacity = leaf_capacity;
    index_ = std::make_unique<ZkdIndex>(
        ZkdIndex::Build(grid, &pool_, points, config));
  }

  ZkdIndex& index() { return *index_; }

 private:
  storage::MemPager pager_;
  storage::BufferPool pool_;
  std::unique_ptr<ZkdIndex> index_;
};

TEST(ZkdIndexTest, EmptyIndexFindsNothing) {
  const GridSpec grid{2, 8};
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 16);
  ZkdIndex index(grid, &pool);
  QueryStats stats;
  const auto hits = index.RangeSearch(GridBox::Make2D(0, 255, 0, 255), &stats);
  EXPECT_TRUE(hits.empty());
  EXPECT_EQ(stats.results, 0u);
}

TEST(ZkdIndexTest, SmallKnownExample) {
  // Figure 5's flavor: a handful of points, a box, exact answers.
  const GridSpec grid{2, 3};
  std::vector<PointRecord> points = {
      {GridPoint({1, 1}), 1}, {GridPoint({3, 5}), 2}, {GridPoint({6, 2}), 3},
      {GridPoint({2, 3}), 4}, {GridPoint({7, 7}), 5}, {GridPoint({0, 6}), 6},
  };
  IndexFixture fixture(grid, points, 4);
  const GridBox box = GridBox::Make2D(1, 3, 0, 4);
  const auto hits = Sorted(fixture.index().RangeSearch(box));
  EXPECT_EQ(hits, (std::vector<uint64_t>{1, 4}));
}

struct StrategyCase {
  SearchOptions::Merge merge;
  const char* name;
};

class MergeStrategyTest : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(MergeStrategyTest, MatchesBruteForceOnRandomWorkloads) {
  const GridSpec grid{2, 8};
  util::Rng rng(91);
  // Mixed distributions stress different leaf layouts.
  for (int round = 0; round < 3; ++round) {
    workload::DataGenConfig data;
    data.distribution = static_cast<workload::Distribution>(round % 3);
    data.count = 800;
    data.seed = 100 + round;
    const auto points = GeneratePoints(grid, data);
    IndexFixture fixture(grid, points, 20);

    SearchOptions options;
    options.merge = GetParam().merge;
    for (int q = 0; q < 25; ++q) {
      uint32_t x1 = static_cast<uint32_t>(rng.NextBelow(grid.side()));
      uint32_t x2 = static_cast<uint32_t>(rng.NextBelow(grid.side()));
      uint32_t y1 = static_cast<uint32_t>(rng.NextBelow(grid.side()));
      uint32_t y2 = static_cast<uint32_t>(rng.NextBelow(grid.side()));
      const GridBox box = GridBox::Make2D(std::min(x1, x2), std::max(x1, x2),
                                          std::min(y1, y2), std::max(y1, y2));
      QueryStats stats;
      const auto got = Sorted(fixture.index().RangeSearch(box, &stats, options));
      EXPECT_EQ(got, BruteForce(points, box)) << "query " << box.ToString();
      EXPECT_EQ(stats.results, got.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, MergeStrategyTest,
    ::testing::Values(StrategyCase{SearchOptions::Merge::kSkipMerge, "skip"},
                      StrategyCase{SearchOptions::Merge::kPlainMerge, "plain"},
                      StrategyCase{SearchOptions::Merge::kBigMin, "bigmin"}),
    [](const ::testing::TestParamInfo<StrategyCase>& info) {
      return info.param.name;
    });

class DimsRangeTest : public ::testing::TestWithParam<int> {};

TEST_P(DimsRangeTest, WorksInAnyDimension) {
  // Section 3.3: "Algorithms based on z order work without modification in
  // all dimensions."
  const int dims = GetParam();
  const GridSpec grid{dims, dims == 1 ? 12 : (dims == 2 ? 7 : 4)};
  util::Rng rng(97 + dims);
  std::vector<PointRecord> points;
  for (uint64_t i = 0; i < 500; ++i) {
    std::vector<uint32_t> coords(dims);
    for (int d = 0; d < dims; ++d) {
      coords[d] = static_cast<uint32_t>(rng.NextBelow(grid.side()));
    }
    points.push_back({GridPoint(std::span<const uint32_t>(coords)), i});
  }
  IndexFixture fixture(grid, points, 20);

  for (int q = 0; q < 15; ++q) {
    std::vector<zorder::DimRange> ranges(dims);
    for (int d = 0; d < dims; ++d) {
      uint32_t a = static_cast<uint32_t>(rng.NextBelow(grid.side()));
      uint32_t b = static_cast<uint32_t>(rng.NextBelow(grid.side()));
      ranges[d] = {std::min(a, b), std::max(a, b)};
    }
    const GridBox box{std::span<const zorder::DimRange>(ranges)};
    EXPECT_EQ(Sorted(fixture.index().RangeSearch(box)),
              BruteForce(points, box));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, DimsRangeTest, ::testing::Values(1, 2, 3, 4));

TEST(ZkdIndexTest, PartialMatchEqualsDegenerateRange) {
  const GridSpec grid{3, 4};
  util::Rng rng(103);
  std::vector<PointRecord> points;
  for (uint64_t i = 0; i < 600; ++i) {
    points.push_back({GridPoint({static_cast<uint32_t>(rng.NextBelow(16)),
                                 static_cast<uint32_t>(rng.NextBelow(16)),
                                 static_cast<uint32_t>(rng.NextBelow(16))}),
                      i});
  }
  IndexFixture fixture(grid, points, 20);

  const std::optional<uint32_t> fixed[3] = {std::nullopt, 7, std::nullopt};
  const auto got = Sorted(fixture.index().PartialMatch(fixed));
  const GridBox expect_box = GridBox::Make3D(0, 15, 7, 7, 0, 15);
  EXPECT_EQ(got, BruteForce(points, expect_box));
}

TEST(ZkdIndexTest, DynamicInsertDeleteStaysCorrect) {
  const GridSpec grid{2, 6};
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 32);
  btree::BTreeConfig config;
  config.leaf_capacity = 8;
  ZkdIndex index(grid, &pool, config);

  util::Rng rng(107);
  std::vector<PointRecord> live;
  for (int op = 0; op < 1500; ++op) {
    if (live.empty() || rng.NextBelow(100) < 60) {
      PointRecord r{GridPoint({static_cast<uint32_t>(rng.NextBelow(64)),
                               static_cast<uint32_t>(rng.NextBelow(64))}),
                    static_cast<uint64_t>(op)};
      index.Insert(r.point, r.id);
      live.push_back(r);
    } else {
      const size_t victim = rng.NextBelow(live.size());
      EXPECT_TRUE(index.Delete(live[victim].point, live[victim].id));
      live.erase(live.begin() + victim);
    }
  }
  EXPECT_EQ(index.size(), live.size());
  const GridBox box = GridBox::Make2D(10, 50, 5, 60);
  EXPECT_EQ(Sorted(index.RangeSearch(box)), BruteForce(live, box));
}

TEST(ZkdIndexTest, SearchObjectBallMatchesMembership) {
  const GridSpec grid{2, 6};
  util::Rng rng(109);
  std::vector<PointRecord> points;
  for (uint64_t i = 0; i < 800; ++i) {
    points.push_back({GridPoint({static_cast<uint32_t>(rng.NextBelow(64)),
                                 static_cast<uint32_t>(rng.NextBelow(64))}),
                      i});
  }
  IndexFixture fixture(grid, points, 20);
  const geometry::BallObject ball({30.0, 30.0}, 14.0);
  const auto got = Sorted(fixture.index().SearchObject(ball));
  std::vector<uint64_t> expect;
  for (const auto& r : points) {
    if (ball.ContainsCell(r.point)) expect.push_back(r.id);
  }
  EXPECT_EQ(got, Sorted(std::move(expect)));
}

TEST(ZkdIndexTest, DepthCappedSearchStaysExactWithVerification) {
  const GridSpec grid{2, 8};
  workload::DataGenConfig data;
  data.count = 1000;
  data.seed = 5;
  const auto points = GeneratePoints(grid, data);
  IndexFixture fixture(grid, points, 20);

  const GridBox box = GridBox::Make2D(17, 200, 33, 180);
  SearchOptions capped;
  capped.max_element_depth = 8;  // coarse elements
  capped.verify_candidates = true;
  QueryStats capped_stats, full_stats;
  const auto capped_hits =
      Sorted(fixture.index().RangeSearch(box, &capped_stats, capped));
  const auto full_hits =
      Sorted(fixture.index().RangeSearch(box, &full_stats, {}));
  EXPECT_EQ(capped_hits, full_hits);
  EXPECT_EQ(capped_hits, BruteForce(points, box));
  // The cap must actually reduce decomposition work.
  EXPECT_LT(capped_stats.elements_generated, full_stats.elements_generated);
}

TEST(ZkdIndexTest, SkipMergeTouchesFewerPagesThanPlain) {
  const GridSpec grid{2, 10};
  workload::DataGenConfig data;
  data.count = 5000;
  data.seed = 9;
  const auto points = GeneratePoints(grid, data);
  IndexFixture fixture(grid, points, 20);

  // A small query in a big space: plain merge scans every leaf, the skip
  // merge only the relevant ones (Section 3.3's optimization).
  const GridBox box = GridBox::Make2D(100, 160, 700, 760);
  QueryStats skip_stats, plain_stats;
  SearchOptions plain;
  plain.merge = SearchOptions::Merge::kPlainMerge;
  const auto a = Sorted(fixture.index().RangeSearch(box, &skip_stats, {}));
  const auto b = Sorted(fixture.index().RangeSearch(box, &plain_stats, plain));
  EXPECT_EQ(a, b);
  EXPECT_LT(skip_stats.leaf_pages, plain_stats.leaf_pages / 4);
  EXPECT_LT(skip_stats.points_scanned, plain_stats.points_scanned / 4);
}

TEST(ZkdIndexTest, RangeCursorStreamsSameResultsAsRangeSearch) {
  const GridSpec grid{2, 8};
  workload::DataGenConfig data;
  data.count = 1500;
  data.seed = 111;
  const auto points = GeneratePoints(grid, data);
  IndexFixture fixture(grid, points, 20);
  util::Rng rng(113);
  for (int q = 0; q < 15; ++q) {
    const uint32_t x = static_cast<uint32_t>(rng.NextBelow(200));
    const uint32_t y = static_cast<uint32_t>(rng.NextBelow(200));
    const GridBox box = GridBox::Make2D(x, x + 50, y, y + 50);

    QueryStats batch_stats;
    const auto batch =
        Sorted(fixture.index().RangeSearch(box, &batch_stats));

    ZkdIndex::RangeCursor cursor(fixture.index(), box);
    std::vector<uint64_t> streamed;
    uint64_t id = 0;
    GridPoint point;
    while (cursor.Next(&id, &point)) {
      streamed.push_back(id);
      EXPECT_TRUE(box.ContainsPoint(point));
    }
    EXPECT_EQ(Sorted(streamed), batch);
    EXPECT_EQ(cursor.stats().results, batch.size());
    EXPECT_EQ(cursor.stats().leaf_pages, batch_stats.leaf_pages);
  }
}

TEST(ZkdIndexTest, RangeCursorEarlyAbandonIsCheap) {
  // A consumer that stops after the first few rows must not pay for the
  // whole result — the point of streaming.
  const GridSpec grid{2, 10};
  workload::DataGenConfig data;
  data.count = 5000;
  data.seed = 117;
  const auto points = GeneratePoints(grid, data);
  IndexFixture fixture(grid, points, 20);
  const GridBox big = GridBox::Make2D(0, 1023, 0, 1023);

  ZkdIndex::RangeCursor cursor(fixture.index(), big);
  uint64_t id = 0;
  for (int i = 0; i < 5 && cursor.Next(&id); ++i) {
  }
  EXPECT_LE(cursor.stats().leaf_pages, 3u);  // stopped after ~5 rows

  QueryStats full;
  fixture.index().RangeSearch(big, &full);
  EXPECT_EQ(full.leaf_pages, 250u);  // the batch call pays for everything
}

TEST(ZkdIndexTest, LeafPartitionsCoverAllPoints) {
  const GridSpec grid{2, 10};
  workload::DataGenConfig data;
  data.count = 5000;
  data.seed = 1;
  const auto points = GeneratePoints(grid, data);
  IndexFixture fixture(grid, points, 20);
  const auto partitions = fixture.index().LeafPartitions();
  uint64_t total = 0;
  for (size_t i = 0; i < partitions.size(); ++i) {
    total += partitions[i].entries;
    EXPECT_LE(partitions[i].entries, 20);
    if (i > 0) {
      EXPECT_LT(partitions[i - 1].first_key, partitions[i].first_key);
    }
  }
  EXPECT_EQ(total, 5000u);
  // The paper's setup: 5000 points at 20/page = 250 pages when packed.
  EXPECT_EQ(partitions.size(), 250u);
}

TEST(ZkdIndexTest, EfficiencyBetweenZeroAndOne) {
  const GridSpec grid{2, 8};
  workload::DataGenConfig data;
  data.count = 2000;
  data.seed = 3;
  const auto points = GeneratePoints(grid, data);
  IndexFixture fixture(grid, points, 20);
  util::Rng rng(11);
  for (int q = 0; q < 20; ++q) {
    const uint32_t x = static_cast<uint32_t>(rng.NextBelow(200));
    const uint32_t y = static_cast<uint32_t>(rng.NextBelow(200));
    QueryStats stats;
    fixture.index().RangeSearch(GridBox::Make2D(x, x + 40, y, y + 40), &stats);
    EXPECT_GE(stats.Efficiency(), 0.0);
    EXPECT_LE(stats.Efficiency(), 1.0);
    EXPECT_LE(stats.results, stats.entries_on_touched_pages);
  }
}

}  // namespace
}  // namespace probe::index
