// The parallel query layer: thread pool, concurrent buffer pool, and the
// partitioned search/join paths. The load-bearing property everywhere is
// *bitwise identity*: the parallel paths must return element-for-element
// the same results, in the same order, as their serial counterparts —
// partitioning at disjoint z intervals is a pure execution-strategy
// change. Run under ThreadSanitizer (-DPROBE_TSAN=ON) to check the
// concurrency claims, not just the results.

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/primitives.h"
#include "index/zkd_index.h"
#include "relational/spatial_join.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"
#include "workload/querygen.h"
#include "zorder/zvalue.h"

namespace probe {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  util::ThreadPool pool(4);
  for (const size_t n : {0u, 1u, 3u, 64u, 1000u}) {
    std::vector<std::atomic<int>> counts(n);
    pool.ParallelFor(n, [&](size_t i) { counts[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, SubmitReturnsFutureResults) {
  util::ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPoolTest, ParallelForRethrowsWorkerException) {
  util::ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(16,
                       [&](size_t i) {
                         if (i == 7) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0);
  EXPECT_EQ(pool.lanes(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(8, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

// ---------------------------------------------------------------- BufferPool

TEST(ConcurrentBufferPoolTest, ManyReadersSeeConsistentPages) {
  storage::MemPager pager;
  constexpr int kPages = 512;
  std::vector<storage::PageId> ids;
  for (int p = 0; p < kPages; ++p) {
    const storage::PageId id = pager.Allocate();
    storage::Page page;
    page.Clear();
    // Stamp every page with a recognizable pattern.
    for (size_t b = 0; b < 16; ++b) {
      page.data()[b] = static_cast<uint8_t>((id * 31 + b) & 0xFF);
    }
    pager.Write(id, page);
    ids.push_back(id);
  }

  // A pool big enough to auto-shard, deliberately smaller than the page
  // count so readers force concurrent eviction.
  storage::BufferPool pool(&pager, 256);
  EXPECT_GT(pool.shard_count(), 1u);

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> bad{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      util::Rng rng(1000 + t);
      for (int round = 0; round < 4000; ++round) {
        const storage::PageId id = ids[rng.NextBelow(ids.size())];
        storage::PageRef ref = pool.Fetch(id);
        for (size_t b = 0; b < 16; ++b) {
          if (ref.page().data()[b] !=
              static_cast<uint8_t>((id * 31 + b) & 0xFF)) {
            bad.fetch_add(1);
          }
        }
      }
      if (storage::BufferPool::PinnedByThisThread() != 0) bad.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(bad.load(), 0);

  const storage::BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.fetches, static_cast<uint64_t>(kThreads) * 4000);
  EXPECT_EQ(stats.hits + stats.misses, stats.fetches);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(ConcurrentBufferPoolTest, SmallPoolsKeepOneShardAndExactStats) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 8);
  EXPECT_EQ(pool.shard_count(), 1u);

  storage::PageId a, b;
  { storage::PageRef ref = pool.New(&a); }
  { storage::PageRef ref = pool.New(&b); }
  { storage::PageRef ref = pool.Fetch(a); }
  const storage::BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.fetches, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(ConcurrentBufferPoolTest, ExplicitShardCountIsHonored) {
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 64, storage::EvictionPolicy::kLru, 4);
  EXPECT_EQ(pool.shard_count(), 4u);
  // Round-trip through all policies sharded, single-threaded.
  for (const auto policy :
       {storage::EvictionPolicy::kLru, storage::EvictionPolicy::kFifo,
        storage::EvictionPolicy::kClock}) {
    storage::MemPager p2;
    storage::BufferPool sharded(&p2, 32, policy, 4);
    std::vector<storage::PageId> ids;
    for (int i = 0; i < 100; ++i) {
      storage::PageId id;
      storage::PageRef ref = sharded.New(&id);
      ref.page().data()[0] = static_cast<uint8_t>(i);
      ref.MarkDirty();
      ids.push_back(id);
    }
    for (int i = 0; i < 100; ++i) {
      storage::PageRef ref = sharded.Fetch(ids[i]);
      EXPECT_EQ(ref.page().data()[0], static_cast<uint8_t>(i));
    }
  }
}

// ------------------------------------------------------------ ParallelSearch

struct IndexFixture {
  zorder::GridSpec grid{2, 10};
  storage::MemPager pager;
  storage::BufferPool pool;
  index::ZkdIndex index;

  IndexFixture(size_t points, uint64_t seed,
               workload::Distribution dist = workload::Distribution::kUniform)
      : pool(&pager, 4096),
        index(MakeIndex(grid, &pool, points, seed, dist)) {}

  static index::ZkdIndex MakeIndex(const zorder::GridSpec& grid,
                                   storage::BufferPool* pool, size_t points,
                                   uint64_t seed,
                                   workload::Distribution dist) {
    workload::DataGenConfig config;
    config.count = points;
    config.seed = seed;
    config.distribution = dist;
    const auto records = GeneratePoints(grid, config);
    btree::BTreeConfig tree_config;
    tree_config.leaf_capacity = 20;
    return index::ZkdIndex::Build(grid, pool, records, tree_config);
  }
};

TEST(ParallelRangeSearchTest, IdenticalToSerialAcrossThreadsAndStrategies) {
  IndexFixture fx(20000, 77);
  util::Rng rng(901);
  const auto boxes = workload::MakeQueryBoxes2D(fx.grid, 0.02, 2.0, 12, rng);

  for (const int threads : {1, 2, 4, 8}) {
    util::ThreadPool pool(threads);
    for (const auto merge :
         {index::SearchOptions::Merge::kSkipMerge,
          index::SearchOptions::Merge::kPlainMerge,
          index::SearchOptions::Merge::kBigMin}) {
      index::SearchOptions options;
      options.merge = merge;
      for (const auto& box : boxes) {
        index::QueryStats serial_stats, parallel_stats;
        const auto serial = fx.index.RangeSearch(box, &serial_stats, options);
        const auto parallel = fx.index.ParallelRangeSearch(
            box, pool, /*partitions=*/0, &parallel_stats, options);
        ASSERT_EQ(parallel, serial)
            << "threads=" << threads
            << " merge=" << static_cast<int>(merge);
        EXPECT_EQ(parallel_stats.results, serial.size());
      }
    }
    EXPECT_EQ(storage::BufferPool::PinnedByThisThread(), 0);
  }
}

TEST(ParallelRangeSearchTest, ClusteredDataAndExplicitPartitionCounts) {
  IndexFixture fx(15000, 31, workload::Distribution::kClustered);
  util::Rng rng(902);
  const auto boxes = workload::MakeQueryBoxes2D(fx.grid, 0.05, 0.5, 8, rng);
  util::ThreadPool pool(4);
  for (const int partitions : {1, 2, 3, 7, 16}) {
    for (const auto& box : boxes) {
      const auto serial = fx.index.RangeSearch(box);
      const auto parallel =
          fx.index.ParallelRangeSearch(box, pool, partitions);
      ASSERT_EQ(parallel, serial) << "partitions=" << partitions;
    }
  }
}

TEST(ParallelRangeSearchTest, DepthCappedDecompositionStaysExact) {
  IndexFixture fx(10000, 5);
  util::Rng rng(903);
  const auto boxes = workload::MakeQueryBoxes2D(fx.grid, 0.03, 1.0, 6, rng);
  util::ThreadPool pool(4);
  index::SearchOptions options;
  options.max_element_depth = 8;  // coarse elements + candidate verification
  for (const auto& box : boxes) {
    const auto serial = fx.index.RangeSearch(box, nullptr, options);
    const auto parallel =
        fx.index.ParallelRangeSearch(box, pool, 0, nullptr, options);
    ASSERT_EQ(parallel, serial);
  }
}

TEST(ParallelSearchObjectTest, BallAndCapsuleMatchSerial) {
  IndexFixture fx(12000, 13);
  util::ThreadPool pool(8);
  const geometry::BallObject ball({300.0, 700.0}, 120.0);
  const geometry::CapsuleObject capsule({100.0, 100.0}, {900.0, 600.0},
                                        40.0);
  for (const geometry::SpatialObject* object :
       {static_cast<const geometry::SpatialObject*>(&ball),
        static_cast<const geometry::SpatialObject*>(&capsule)}) {
    index::QueryStats serial_stats, parallel_stats;
    const auto serial = fx.index.SearchObject(*object, &serial_stats);
    const auto parallel =
        fx.index.ParallelSearchObject(*object, pool, 0, &parallel_stats);
    ASSERT_EQ(parallel, serial) << object->Describe();
    EXPECT_EQ(parallel_stats.results, serial.size());
  }
}

TEST(ParallelRangeSearchTest, ConcurrentQueriesOnOneIndex) {
  // Several client threads issuing parallel searches against one shared
  // index and pool at once — the production shape, and the TSan target.
  IndexFixture fx(20000, 99);
  util::ThreadPool pool(4);
  util::Rng rng(904);
  const auto boxes = workload::MakeQueryBoxes2D(fx.grid, 0.01, 1.0, 16, rng);
  std::vector<std::vector<uint64_t>> expected;
  for (const auto& box : boxes) expected.push_back(fx.index.RangeSearch(box));

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t]() {
      for (size_t q = t; q < boxes.size(); q += 4) {
        // Serial API from many threads: concurrent readers of one tree.
        const auto got = fx.index.RangeSearch(boxes[q]);
        if (got != expected[q]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentBufferPoolTest, StatsSnapshotsAreCoherentWhileWorkersRun) {
  // A monitoring thread snapshotting pool.stats() while query workers
  // hammer the pool — the surface the obs::Counter rework fixed. The
  // counters are independent atomics, so a snapshot is per-field coherent:
  // a fetch may be counted before its hit/miss classification lands, but
  // never the other way around (fetches >= hits + misses always), and
  // totals are exact once the workers quiesce. TSan (the `concurrency`
  // run) checks the reads are race-free, not merely plausible.
  IndexFixture fx(20000, 321);
  util::Rng rng(905);
  const auto boxes = workload::MakeQueryBoxes2D(fx.grid, 0.01, 1.0, 8, rng);
  fx.pool.ResetStats();

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&]() {
      for (int round = 0; round < 20; ++round) {
        for (const auto& box : boxes) (void)fx.index.RangeSearch(box);
      }
    });
  }

  constexpr uint64_t kSnapshots = 10000;
  uint64_t incoherent = 0;
  for (uint64_t i = 0; i < kSnapshots; ++i) {
    const storage::BufferPoolStats stats = fx.pool.stats();
    if (stats.hits + stats.misses > stats.fetches) ++incoherent;
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(incoherent, 0u) << "over " << kSnapshots << " snapshots";

  // Quiescent: classification complete, every fetch accounted for.
  const storage::BufferPoolStats final_stats = fx.pool.stats();
  EXPECT_EQ(final_stats.hits + final_stats.misses, final_stats.fetches);
  EXPECT_GT(final_stats.fetches, 0u);
}

// -------------------------------------------------------- ParallelSpatialJoin

relational::Relation RandomElementRelation(const std::string& prefix,
                                           size_t rows, uint64_t seed,
                                           int max_length) {
  relational::Schema schema({{prefix + "_id", relational::ValueType::kInt},
                             {prefix + "_z", relational::ValueType::kZValue}});
  relational::Relation rel(schema);
  util::Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    const int length = static_cast<int>(rng.NextBelow(
        static_cast<uint64_t>(max_length + 1)));
    const uint64_t bits =
        length == 0 ? 0 : (rng.Next() & ((length == 64) ? ~0ULL
                                                        : ((1ULL << length) - 1)));
    relational::Tuple tuple;
    tuple.emplace_back(static_cast<int64_t>(i));
    tuple.emplace_back(zorder::ZValue::FromInteger(bits, length));
    rel.Add(std::move(tuple));
  }
  return rel;
}

TEST(ParallelSpatialJoinTest, IdenticalToSerialAcrossThreadCounts) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const auto r = RandomElementRelation("r", 1500, seed * 10 + 1, 14);
    const auto s = RandomElementRelation("s", 1200, seed * 10 + 2, 14);

    relational::SpatialJoinStats serial_stats;
    const auto serial =
        relational::SpatialJoin(r, "r_z", s, "s_z", &serial_stats);

    for (const int threads : {1, 2, 4, 8}) {
      util::ThreadPool pool(threads);
      relational::SpatialJoinStats parallel_stats;
      const auto parallel = relational::ParallelSpatialJoin(
          r, "r_z", s, "s_z", pool, 0, &parallel_stats);

      ASSERT_EQ(parallel.size(), serial.size()) << "threads=" << threads;
      for (size_t row = 0; row < serial.size(); ++row) {
        const auto& a = serial.row(row);
        const auto& b = parallel.row(row);
        ASSERT_EQ(a.size(), b.size());
        for (size_t col = 0; col < a.size(); ++col) {
          ASSERT_TRUE(relational::ValueEquals(a[col], b[col]))
              << "row " << row << " col " << col;
        }
      }
      EXPECT_EQ(parallel_stats.pairs, serial_stats.pairs);
      EXPECT_EQ(parallel_stats.max_stack_depth, serial_stats.max_stack_depth);
      EXPECT_GE(parallel_stats.partitions, 1u);
    }
  }
}

TEST(ParallelSpatialJoinTest, DeepNestingLimitsCutsButStaysCorrect) {
  // A chain of nested prefixes leaves no open-element-free boundary: the
  // cut finder must degrade to few (possibly one) partitions, never split
  // illegally.
  relational::Schema r_schema({{"r_id", relational::ValueType::kInt},
                               {"r_z", relational::ValueType::kZValue}});
  relational::Schema s_schema({{"s_id", relational::ValueType::kInt},
                               {"s_z", relational::ValueType::kZValue}});
  relational::Relation r(r_schema), s(s_schema);
  for (int i = 0; i < 40; ++i) {
    relational::Tuple t1;
    t1.emplace_back(static_cast<int64_t>(i));
    t1.emplace_back(zorder::ZValue::FromInteger(0, i));  // 0, 00, 000, ...
    r.Add(std::move(t1));
    relational::Tuple t2;
    t2.emplace_back(static_cast<int64_t>(i));
    t2.emplace_back(zorder::ZValue::FromInteger(0, std::min(i + 1, 40)));
    s.Add(std::move(t2));
  }
  const auto serial = relational::SpatialJoin(r, "r_z", s, "s_z");
  util::ThreadPool pool(4);
  relational::SpatialJoinStats stats;
  const auto parallel =
      relational::ParallelSpatialJoin(r, "r_z", s, "s_z", pool, 8, &stats);
  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t row = 0; row < serial.size(); ++row) {
    for (size_t col = 0; col < serial.row(row).size(); ++col) {
      ASSERT_TRUE(relational::ValueEquals(serial.row(row)[col],
                                          parallel.row(row)[col]));
    }
  }
}

TEST(ParallelSpatialJoinTest, EmptyInputs) {
  relational::Schema r_schema({{"r_id", relational::ValueType::kInt},
                               {"r_z", relational::ValueType::kZValue}});
  relational::Schema s_schema({{"s_id", relational::ValueType::kInt},
                               {"s_z", relational::ValueType::kZValue}});
  relational::Relation r(r_schema), s(s_schema);
  util::ThreadPool pool(2);
  const auto out = relational::ParallelSpatialJoin(r, "r_z", s, "s_z", pool);
  EXPECT_EQ(out.size(), 0u);
}

}  // namespace
}  // namespace probe
