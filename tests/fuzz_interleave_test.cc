/// \file
/// Deterministic fuzz driver for the interleaving stack: Spread/Gather
/// round trips, portable-vs-BMI2 equivalence, Morton-vs-Shuffle agreement,
/// and Shuffle/Unshuffle round trips under random split schedules.
///
/// Each test runs >= 10,000 seeded cases; under UBSan (scripts/check.sh)
/// the sweep doubles as a shift/conversion UB hunt over the bit-twiddling
/// hot path (fast_interleave.cc, shuffle.cc, bits.h).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "zorder/audit.h"
#include "zorder/fast_interleave.h"
#include "zorder/grid.h"
#include "zorder/shuffle.h"
#include "zorder/zvalue.h"

namespace probe {
namespace {

using zorder::GridSpec;
using zorder::ZValue;

constexpr int kCases = 10000;

TEST(FuzzInterleave, SpreadGatherRoundTrip) {
  util::Rng rng(0x5B12EAD);
  const bool bmi2 = zorder::HasBmi2();
  for (int c = 0; c < kCases; ++c) {
    const uint32_t x = static_cast<uint32_t>(rng.Next());

    const uint64_t s2 = zorder::SpreadBits2Portable(x);
    ASSERT_EQ(zorder::GatherBits2Portable(s2), x);
    ASSERT_EQ(zorder::SpreadBits2(x), s2);
    ASSERT_EQ(zorder::GatherBits2(s2), x);
    if (bmi2) {
      ASSERT_EQ(zorder::SpreadBits2Bmi2(x), s2);
      ASSERT_EQ(zorder::GatherBits2Bmi2(s2), x);
    }

    const uint32_t x21 = x & ((1u << 21) - 1);
    const uint64_t s3 = zorder::SpreadBits3Portable(x21);
    ASSERT_EQ(zorder::GatherBits3Portable(s3), x21);
    ASSERT_EQ(zorder::SpreadBits3(x21), s3);
    ASSERT_EQ(zorder::GatherBits3(s3), x21);
    if (bmi2) {
      ASSERT_EQ(zorder::SpreadBits3Bmi2(x21), s3);
      ASSERT_EQ(zorder::GatherBits3Bmi2(s3), x21);
    }
  }
}

TEST(FuzzInterleave, MortonAgreesWithShuffle2D) {
  util::Rng rng(0x3032702);
  for (int c = 0; c < kCases; ++c) {
    // bits spans the full legal range, including the 32-bit edge where a
    // shift by the whole word width lurks in naive implementations.
    const int bits = static_cast<int>(1 + rng.NextBelow(32));
    GridSpec grid{.dims = 2, .bits_per_dim = bits};
    const uint32_t mask =
        bits == 32 ? ~0u : (static_cast<uint32_t>(1u << bits) - 1);
    const uint32_t x = static_cast<uint32_t>(rng.Next()) & mask;
    const uint32_t y = static_cast<uint32_t>(rng.Next()) & mask;

    const uint64_t z = zorder::MortonEncode2(x, y, bits);
    ASSERT_EQ(z, zorder::Shuffle2D(grid, x, y).ToInteger());

    uint32_t rx = 0, ry = 0;
    zorder::MortonDecode2(z, bits, &rx, &ry);
    ASSERT_EQ(rx, x);
    ASSERT_EQ(ry, y);
  }
}

TEST(FuzzInterleave, Morton3AgreesWithShuffle) {
  util::Rng rng(0x3D3D3D);
  for (int c = 0; c < kCases; ++c) {
    const int bits = static_cast<int>(1 + rng.NextBelow(21));
    GridSpec grid{.dims = 3, .bits_per_dim = bits};
    const uint32_t mask = (1u << bits) - 1;
    const uint32_t x = static_cast<uint32_t>(rng.Next()) & mask;
    const uint32_t y = static_cast<uint32_t>(rng.Next()) & mask;
    const uint32_t w = static_cast<uint32_t>(rng.Next()) & mask;

    const uint64_t z = zorder::MortonEncode3(x, y, w, bits);
    const std::vector<uint32_t> coords = {x, y, w};
    ASSERT_EQ(z, zorder::Shuffle(grid, coords).ToInteger());

    uint32_t rx = 0, ry = 0, rw = 0;
    zorder::MortonDecode3(z, bits, &rx, &ry, &rw);
    ASSERT_EQ(rx, x);
    ASSERT_EQ(ry, y);
    ASSERT_EQ(rw, w);
  }
}

TEST(FuzzInterleave, ShuffleRoundTripUnderRandomSchedules) {
  util::Rng rng(0x5C4ED1);
  for (int c = 0; c < kCases; ++c) {
    const int dims = static_cast<int>(1 + rng.NextBelow(4));
    const int bits = static_cast<int>(
        1 + rng.NextBelow(static_cast<uint64_t>(64 / dims > 16
                                                    ? 16
                                                    : 64 / dims)));
    // A random permutation of the multiset {each dim, `bits` times}.
    std::vector<int> schedule;
    for (int d = 0; d < dims; ++d) {
      for (int b = 0; b < bits; ++b) schedule.push_back(d);
    }
    for (size_t i = schedule.size(); i > 1; --i) {
      std::swap(schedule[i - 1], schedule[rng.NextBelow(i)]);
    }
    const GridSpec grid = GridSpec::WithSchedule(dims, bits, schedule);
    ASSERT_TRUE(grid.Valid());

    std::vector<uint32_t> coords(static_cast<size_t>(dims));
    for (auto& v : coords) {
      v = static_cast<uint32_t>(rng.NextBelow(grid.side()));
    }
    const ZValue z = zorder::Shuffle(grid, coords);
    ASSERT_EQ(z.length(), grid.total_bits());
    ASSERT_EQ(zorder::Unshuffle(grid, z), coords);

    // A random prefix names a region that must contain the cell, and the
    // algebraic laws must hold between the prefix and the full z value.
    const int cut = static_cast<int>(rng.NextBelow(
        static_cast<uint64_t>(grid.total_bits()) + 1));
    const ZValue prefix = z.Prefix(cut);
    zorder::AuditZOrderLaws(prefix, z);
    const auto region = zorder::UnshuffleRegion(grid, prefix);
    for (int d = 0; d < dims; ++d) {
      ASSERT_GE(coords[static_cast<size_t>(d)],
                region[static_cast<size_t>(d)].lo);
      ASSERT_LE(coords[static_cast<size_t>(d)],
                region[static_cast<size_t>(d)].hi);
    }
    // Regions produced by the splitting policy shuffle back to the prefix.
    ASSERT_TRUE(zorder::IsElementRegion(grid, region));
    ASSERT_EQ(zorder::ShuffleRegion(grid, region), prefix);
  }
}

TEST(FuzzInterleave, ZOrderLawsOnRandomPairs) {
  util::Rng rng(0x2A1A5);
  for (int c = 0; c < kCases; ++c) {
    const int la = static_cast<int>(rng.NextBelow(65));
    const int lb = static_cast<int>(rng.NextBelow(65));
    const ZValue a = ZValue::FromInteger(rng.Next(), la);
    ZValue b = ZValue::FromInteger(rng.Next(), lb);
    if (rng.NextBelow(4) == 0 && lb <= la) {
      b = a.Prefix(lb);  // force the nested case to be exercised often
    }
    zorder::AuditZOrderLaws(a, b);
  }
}

}  // namespace
}  // namespace probe
