// End-to-end coverage of the compressed (v2) leaf format: bulk build,
// incremental maintenance, result identity with the v1 format across
// serial, parallel, and WAL-recovered indexes, and mixed-format trees
// produced by re-attaching a v1 image under the compressed config.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "btree/btree.h"
#include "geometry/box.h"
#include "index/durable_index.h"
#include "index/zkd_index.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "temp_file.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"
#include "workload/querygen.h"

namespace probe::index {
namespace {

using geometry::GridBox;
using zorder::GridSpec;

std::vector<PointRecord> UniformPoints(const GridSpec& grid, size_t count,
                                       uint64_t seed) {
  workload::DataGenConfig data;
  data.count = count;
  data.seed = seed;
  return GeneratePoints(grid, data);
}

std::vector<GridBox> QueryBatch(const GridSpec& grid, int count,
                                uint64_t seed) {
  util::Rng rng(seed);
  return workload::MakeQueryBoxes2D(grid, 0.01, 1.0, count, rng);
}

TEST(LeafV2Test, BulkBuildMatchesV1AcrossSerialAndParallel) {
  const GridSpec grid{2, 10};
  const auto points = UniformPoints(grid, 20000, 42);

  storage::MemPager v1_pager;
  storage::BufferPool v1_pool(&v1_pager, 1024);
  const auto v1 = ZkdIndex::Build(grid, &v1_pool, points);

  storage::MemPager v2_pager;
  storage::BufferPool v2_pool(&v2_pager, 1024);
  const auto v2 = ZkdIndex::Build(grid, &v2_pool, points,
                                  btree::BTreeConfig::Compressed());

  // The compression claim itself: meaningfully fewer leaves for the same
  // entries (the acceptance bar is 1.5x keys per page; 2x holds easily).
  EXPECT_GE(v1.LeafPartitions().size(),
            2 * v2.LeafPartitions().size());

  util::ThreadPool pool(3);
  for (const auto& box : QueryBatch(grid, 24, 43)) {
    QueryStats v1_stats;
    QueryStats v2_stats;
    const auto expected = v1.RangeSearch(box, &v1_stats);
    EXPECT_EQ(v2.RangeSearch(box, &v2_stats), expected);
    EXPECT_EQ(v2.ParallelRangeSearch(box, pool), expected);
    // Fewer leaves means fewer page accesses on the same query.
    EXPECT_LE(v2_stats.leaf_pages, v1_stats.leaf_pages);
  }
}

TEST(LeafV2Test, IncrementalInsertDeleteMatchesBruteForce) {
  const GridSpec grid{2, 8};
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 512);
  btree::BTreeConfig config = btree::BTreeConfig::Compressed();
  config.leaf_capacity = 40;  // force splits and merges
  ZkdIndex index(grid, &pool, config);

  util::Rng rng(4242);
  std::vector<PointRecord> live;
  for (int op = 0; op < 4000; ++op) {
    if (live.empty() || rng.NextBelow(3) != 0) {
      PointRecord rec;
      rec.point = geometry::GridPoint(
          {static_cast<uint32_t>(rng.NextBelow(grid.side())),
           static_cast<uint32_t>(rng.NextBelow(grid.side()))});
      rec.id = static_cast<uint64_t>(op);
      index.Insert(rec.point, rec.id);
      live.push_back(rec);
    } else {
      const size_t victim = rng.NextBelow(live.size());
      ASSERT_TRUE(index.Delete(live[victim].point, live[victim].id));
      live.erase(live.begin() + static_cast<long>(victim));
    }
  }

  for (const auto& box : QueryBatch(grid, 16, 4243)) {
    std::vector<uint64_t> expected;
    for (const auto& rec : live) {
      if (box.ContainsPoint(rec.point)) expected.push_back(rec.id);
    }
    auto got = index.RangeSearch(box);
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected);
  }
}

TEST(LeafV2Test, WalRecoveredIndexIsIdentical) {
  const GridSpec grid{2, 8};
  const auto points = UniformPoints(grid, 3000, 77);
  testutil::TempFile tmp("leaf_v2_wal");

  DurableIndex::Options options;
  options.config = btree::BTreeConfig::Compressed();
  options.truncate = true;

  std::vector<std::vector<uint64_t>> expected;
  const auto boxes = QueryBatch(grid, 12, 78);
  {
    DurableIndex db(grid, tmp.path(), options);
    ASSERT_TRUE(db.ok());
    std::vector<DurableIndex::Op> batch;
    for (const auto& rec : points) {
      batch.push_back(DurableIndex::Op::Insert(rec.point, rec.id));
    }
    ASSERT_TRUE(db.Apply(batch));
    for (const auto& box : boxes) {
      expected.push_back(db.index().RangeSearch(box));
    }
  }

  // Reopen (recovery path) and compare bitwise: same ids, same order.
  DurableIndex::Options reopen = options;
  reopen.truncate = false;
  DurableIndex db(grid, tmp.path(), reopen);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.index().size(), points.size());
  for (size_t q = 0; q < boxes.size(); ++q) {
    EXPECT_EQ(db.index().RangeSearch(boxes[q]), expected[q]) << q;
  }
}

TEST(LeafV2Test, MixedFormatTreeStaysCorrect) {
  // A v1-built image re-attached under the compressed config: old leaves
  // keep their v1 tag, every page the insert path touches re-encodes as
  // v2, and readers dispatch per page — queries never notice.
  const GridSpec grid{2, 8};
  const auto points = UniformPoints(grid, 4000, 99);
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 512);

  btree::BTree::PersistentState state;
  {
    const auto v1 = ZkdIndex::Build(grid, &pool, points);
    state = v1.DetachState();
  }
  ZkdIndex mixed = ZkdIndex::Attach(grid, &pool, state,
                                    btree::BTreeConfig::Compressed());
  EXPECT_EQ(mixed.size(), points.size());

  std::vector<PointRecord> extra = UniformPoints(grid, 2000, 100);
  for (auto& rec : extra) {
    rec.id += 1000000;
    mixed.Insert(rec.point, rec.id);
  }

  std::vector<PointRecord> all = points;
  all.insert(all.end(), extra.begin(), extra.end());
  for (const auto& box : QueryBatch(grid, 16, 101)) {
    std::vector<uint64_t> expected;
    for (const auto& rec : all) {
      if (box.ContainsPoint(rec.point)) expected.push_back(rec.id);
    }
    auto got = mixed.RangeSearch(box);
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected);
  }
}

}  // namespace
}  // namespace probe::index
