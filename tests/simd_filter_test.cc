// The SIMD in-page filter must be bitwise-identical to its scalar
// fallback: UpperBoundZ and CountInRangeZ over random sorted arrays,
// adversarial boundary values (0, ~0, the signed-comparison bias point),
// all alignments and tail lengths, with the dispatch forced both ways.

#include "btree/simd_filter.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace probe::btree {
namespace {

int OracleUpperBound(const std::vector<uint64_t>& zs, uint64_t bound) {
  int i = 0;
  while (i < static_cast<int>(zs.size()) && zs[static_cast<size_t>(i)] <= bound) ++i;
  return i;
}

class SimdFilterTest : public ::testing::Test {
 protected:
  void TearDown() override { SetForceScalarFilter(false); }
};

TEST_F(SimdFilterTest, DispatchMatchesScalarOnRandomArrays) {
  util::Rng rng(0x51ed);
  for (int trial = 0; trial < 500; ++trial) {
    const size_t n = rng.NextBelow(70);  // covers sub-width and multi-lane
    std::vector<uint64_t> zs(n);
    for (auto& z : zs) z = rng.Next();
    std::sort(zs.begin(), zs.end());

    for (int b = 0; b < 8; ++b) {
      uint64_t bound;
      switch (b) {
        case 0: bound = 0; break;
        case 1: bound = ~0ULL; break;
        case 2: bound = 0x8000000000000000ULL; break;        // sign-bias point
        case 3: bound = 0x7fffffffffffffffULL; break;
        default:
          bound = n > 0 ? zs[rng.NextBelow(n)] + rng.NextBelow(3) - 1
                        : rng.Next();
      }
      const int expect = OracleUpperBound(zs, bound);

      SetForceScalarFilter(true);
      EXPECT_EQ(UpperBoundZ(zs.data(), static_cast<int>(n), bound), expect);
      EXPECT_EQ(UpperBoundZScalar(zs.data(), static_cast<int>(n), bound),
                expect);
      SetForceScalarFilter(false);
      EXPECT_EQ(UpperBoundZ(zs.data(), static_cast<int>(n), bound), expect)
          << "trial " << trial << " n " << n << " bound " << bound;
    }
  }
}

TEST_F(SimdFilterTest, CountInRangeMatchesScalar) {
  util::Rng rng(0x52ed);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t n = rng.NextBelow(100);
    std::vector<uint64_t> zs(n);
    for (auto& z : zs) z = rng.Next() >> static_cast<int>(rng.NextBelow(32));
    std::sort(zs.begin(), zs.end());

    uint64_t lo = rng.Next();
    uint64_t hi = rng.Next();
    if (lo > hi) std::swap(lo, hi);

    int expect = 0;
    for (const uint64_t z : zs) expect += (z >= lo && z <= hi) ? 1 : 0;

    SetForceScalarFilter(true);
    EXPECT_EQ(CountInRangeZ(zs.data(), static_cast<int>(n), lo, hi), expect);
    SetForceScalarFilter(false);
    EXPECT_EQ(CountInRangeZ(zs.data(), static_cast<int>(n), lo, hi), expect);
    EXPECT_EQ(CountInRangeZScalar(zs.data(), static_cast<int>(n), lo, hi),
              expect);
  }
}

std::vector<int32_t> OracleWithinDist2(const std::vector<uint64_t>& xs,
                                       const std::vector<uint64_t>& ys,
                                       uint64_t qx, uint64_t qy, uint64_t r2) {
  std::vector<int32_t> out;
  for (size_t i = 0; i < xs.size(); ++i) {
    const uint64_t dx = xs[i] > qx ? xs[i] - qx : qx - xs[i];
    const uint64_t dy = ys[i] > qy ? ys[i] - qy : qy - ys[i];
    const unsigned __int128 d2 = static_cast<unsigned __int128>(dx) * dx +
                                 static_cast<unsigned __int128>(dy) * dy;
    if (d2 <= r2) out.push_back(static_cast<int32_t>(i));
  }
  return out;
}

TEST_F(SimdFilterTest, CollectWithinDist2MatchesScalarAndOracle) {
  util::Rng rng(0x54ed);
  constexpr uint64_t kCoordMax = 1ULL << 31;  // the kernel's contract
  for (int trial = 0; trial < 400; ++trial) {
    const size_t n = rng.NextBelow(130);  // sub-width, multi-lane, tails
    std::vector<uint64_t> xs(n), ys(n);
    // Mix a tight cluster with full-range scatter so r2 selects a
    // nontrivial subset in most trials.
    const uint64_t cx = rng.NextBelow(kCoordMax);
    const uint64_t cy = rng.NextBelow(kCoordMax);
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextBelow(2) == 0) {
        xs[i] = std::min(cx + rng.NextBelow(1000), kCoordMax - 1);
        ys[i] = std::min(cy + rng.NextBelow(1000), kCoordMax - 1);
      } else {
        xs[i] = rng.NextBelow(kCoordMax);
        ys[i] = rng.NextBelow(kCoordMax);
      }
    }
    const uint64_t qx = rng.NextBelow(2) ? cx : rng.NextBelow(kCoordMax);
    const uint64_t qy = rng.NextBelow(2) ? cy : rng.NextBelow(kCoordMax);
    uint64_t r2;
    switch (rng.NextBelow(4)) {
      case 0: r2 = 0; break;                                // exact hits only
      case 1: r2 = ~0ULL >> 1; break;                       // int64 max: all in
      case 2: r2 = rng.NextBelow(1000000); break;           // cluster scale
      default: {
        const uint64_t r = rng.NextBelow(kCoordMax);
        r2 = r * r;  // < 2^62
        break;
      }
    }
    const auto expect = OracleWithinDist2(xs, ys, qx, qy, r2);

    std::vector<int32_t> got(n + 1);
    SetForceScalarFilter(true);
    int m = CollectWithinDist2(xs.data(), ys.data(), static_cast<int>(n), qx,
                               qy, r2, got.data());
    ASSERT_EQ(static_cast<size_t>(m), expect.size()) << "trial " << trial;
    for (int i = 0; i < m; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], expect[static_cast<size_t>(i)]);

    SetForceScalarFilter(false);
    m = CollectWithinDist2(xs.data(), ys.data(), static_cast<int>(n), qx, qy,
                           r2, got.data());
    ASSERT_EQ(static_cast<size_t>(m), expect.size())
        << "trial " << trial << " n " << n << " r2 " << r2;
    for (int i = 0; i < m; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], expect[static_cast<size_t>(i)]);

    m = CollectWithinDist2Scalar(xs.data(), ys.data(), static_cast<int>(n),
                                 qx, qy, r2, got.data());
    ASSERT_EQ(static_cast<size_t>(m), expect.size());
  }
}

TEST_F(SimdFilterTest, CollectWithinDist2UnalignedAndBoundary) {
  // Walk offsets so the AVX2 loads hit every alignment; exercise deltas at
  // the contract's edge (coordinates just below 2^31, so a squared delta
  // approaches 2^62 and the lane sums approach 2^63).
  constexpr uint64_t kEdge = (1ULL << 31) - 1;
  std::vector<uint64_t> xs, ys;
  for (uint64_t i = 0; i < 40; ++i) {
    xs.push_back(i % 2 == 0 ? i : kEdge - i);
    ys.push_back(i % 3 == 0 ? i : kEdge - i);
  }
  const uint64_t r2 = ~0ULL >> 1;  // int64 max admits everything
  for (size_t off = 0; off < 12; ++off) {
    const int n = static_cast<int>(xs.size() - off);
    std::vector<int32_t> got(xs.size());
    const int m = CollectWithinDist2(xs.data() + off, ys.data() + off, n, 0,
                                     kEdge, r2, got.data());
    // Max possible d2 is 2*(2^31-1)^2 = 2^63 - 2^33 + 2, still <= int64
    // max — the contract's whole point — so every index must come back.
    EXPECT_EQ(m, n) << off;
    for (int i = 0; i < m; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
  }
  // And a radius that admits nothing.
  std::vector<int32_t> got(xs.size());
  const int m = CollectWithinDist2(xs.data(), ys.data(),
                                   static_cast<int>(xs.size()), 12345, 54321,
                                   0, got.data());
  int expect = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] == 12345 && ys[i] == 54321) ++expect;
  }
  EXPECT_EQ(m, expect);
}

TEST_F(SimdFilterTest, UnalignedBasePointers) {
  // The kernels use unaligned loads; walk every offset of a bigger array.
  util::Rng rng(0x53ed);
  std::vector<uint64_t> zs(64);
  for (auto& z : zs) z = rng.Next();
  std::sort(zs.begin(), zs.end());
  const uint64_t bound = zs[40];
  for (size_t off = 0; off < 16; ++off) {
    const int n = static_cast<int>(zs.size() - off);
    int expect = 0;
    while (expect < n && zs[off + static_cast<size_t>(expect)] <= bound) ++expect;
    EXPECT_EQ(UpperBoundZ(zs.data() + off, n, bound), expect) << off;
    EXPECT_EQ(UpperBoundZScalar(zs.data() + off, n, bound), expect) << off;
  }
}

}  // namespace
}  // namespace probe::btree
