// The SIMD in-page filter must be bitwise-identical to its scalar
// fallback: UpperBoundZ and CountInRangeZ over random sorted arrays,
// adversarial boundary values (0, ~0, the signed-comparison bias point),
// all alignments and tail lengths, with the dispatch forced both ways.

#include "btree/simd_filter.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace probe::btree {
namespace {

int OracleUpperBound(const std::vector<uint64_t>& zs, uint64_t bound) {
  int i = 0;
  while (i < static_cast<int>(zs.size()) && zs[static_cast<size_t>(i)] <= bound) ++i;
  return i;
}

class SimdFilterTest : public ::testing::Test {
 protected:
  void TearDown() override { SetForceScalarFilter(false); }
};

TEST_F(SimdFilterTest, DispatchMatchesScalarOnRandomArrays) {
  util::Rng rng(0x51ed);
  for (int trial = 0; trial < 500; ++trial) {
    const size_t n = rng.NextBelow(70);  // covers sub-width and multi-lane
    std::vector<uint64_t> zs(n);
    for (auto& z : zs) z = rng.Next();
    std::sort(zs.begin(), zs.end());

    for (int b = 0; b < 8; ++b) {
      uint64_t bound;
      switch (b) {
        case 0: bound = 0; break;
        case 1: bound = ~0ULL; break;
        case 2: bound = 0x8000000000000000ULL; break;        // sign-bias point
        case 3: bound = 0x7fffffffffffffffULL; break;
        default:
          bound = n > 0 ? zs[rng.NextBelow(n)] + rng.NextBelow(3) - 1
                        : rng.Next();
      }
      const int expect = OracleUpperBound(zs, bound);

      SetForceScalarFilter(true);
      EXPECT_EQ(UpperBoundZ(zs.data(), static_cast<int>(n), bound), expect);
      EXPECT_EQ(UpperBoundZScalar(zs.data(), static_cast<int>(n), bound),
                expect);
      SetForceScalarFilter(false);
      EXPECT_EQ(UpperBoundZ(zs.data(), static_cast<int>(n), bound), expect)
          << "trial " << trial << " n " << n << " bound " << bound;
    }
  }
}

TEST_F(SimdFilterTest, CountInRangeMatchesScalar) {
  util::Rng rng(0x52ed);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t n = rng.NextBelow(100);
    std::vector<uint64_t> zs(n);
    for (auto& z : zs) z = rng.Next() >> static_cast<int>(rng.NextBelow(32));
    std::sort(zs.begin(), zs.end());

    uint64_t lo = rng.Next();
    uint64_t hi = rng.Next();
    if (lo > hi) std::swap(lo, hi);

    int expect = 0;
    for (const uint64_t z : zs) expect += (z >= lo && z <= hi) ? 1 : 0;

    SetForceScalarFilter(true);
    EXPECT_EQ(CountInRangeZ(zs.data(), static_cast<int>(n), lo, hi), expect);
    SetForceScalarFilter(false);
    EXPECT_EQ(CountInRangeZ(zs.data(), static_cast<int>(n), lo, hi), expect);
    EXPECT_EQ(CountInRangeZScalar(zs.data(), static_cast<int>(n), lo, hi),
              expect);
  }
}

TEST_F(SimdFilterTest, UnalignedBasePointers) {
  // The kernels use unaligned loads; walk every offset of a bigger array.
  util::Rng rng(0x53ed);
  std::vector<uint64_t> zs(64);
  for (auto& z : zs) z = rng.Next();
  std::sort(zs.begin(), zs.end());
  const uint64_t bound = zs[40];
  for (size_t off = 0; off < 16; ++off) {
    const int n = static_cast<int>(zs.size() - off);
    int expect = 0;
    while (expect < n && zs[off + static_cast<size_t>(expect)] <= bound) ++expect;
    EXPECT_EQ(UpperBoundZ(zs.data() + off, n, bound), expect) << off;
    EXPECT_EQ(UpperBoundZScalar(zs.data() + off, n, bound), expect) << off;
  }
}

}  // namespace
}  // namespace probe::btree
