// Planner calibration: the page estimates the planner attaches to its
// plans must track what execution actually touches — the acceptance bar
// is an aggregate drift under ~15% on range queries across all four
// point distributions, measured through the planner itself (plan, read
// the estimate off the root scan's stats, execute, read the actual).

#include <cmath>
#include <optional>

#include <gtest/gtest.h>

#include "index/cost_model.h"
#include "query/executor.h"
#include "query/planner.h"
#include "util/rng.h"
#include "workload/datagen.h"
#include "workload/experiment.h"
#include "workload/querygen.h"

namespace probe::query {
namespace {

using geometry::GridBox;
using workload::Distribution;
using zorder::GridSpec;

/// Finds the scan node (the single leaf) in a decorated plan.
const PlanNode* FindLeaf(const PlanNode* node) {
  while (node->child_count() > 0) node = node->child(0);
  return node;
}

TEST(PlannerCalibrationTest, RangeEstimatesTrackExecutedPages) {
  const GridSpec grid{2, 10};
  for (const auto dist :
       {Distribution::kUniform, Distribution::kClustered,
        Distribution::kDiagonal, Distribution::kRoadNetwork}) {
    workload::DataGenConfig data;
    data.distribution = dist;
    data.count = 5000;
    data.seed = 7900;
    const auto points = GeneratePoints(grid, data);
    auto built = workload::BuildZkdIndex(grid, points, 20, 256);
    const index::CostModel model = index::CostModel::FromIndex(*built.index);

    PlannerContext ctx;
    ctx.index = built.index.get();
    ctx.cost_model = &model;

    util::Rng rng(7910);
    double total_estimated = 0;
    double total_actual = 0;
    double total_error = 0;
    for (const double volume : {0.01, 0.02, 0.05, 0.10}) {
      for (const double aspect : {1.0, 4.0}) {
        for (const auto& box :
             workload::MakeQueryBoxes2D(grid, volume, aspect, 5, rng)) {
          PlannedQuery planned = Plan(Query::Range(box), ctx);
          ExecuteIds(*planned.root);
          const NodeStats& stats = FindLeaf(planned.root.get())->stats();
          ASSERT_TRUE(stats.has_estimate) << planned.summary;
          ASSERT_TRUE(stats.executed) << planned.summary;
          total_estimated += static_cast<double>(stats.est_pages);
          total_actual += static_cast<double>(stats.actual_pages);
          total_error +=
              std::abs(static_cast<double>(stats.est_pages) -
                       static_cast<double>(stats.actual_pages));
        }
      }
    }
    ASSERT_GT(total_actual, 0.0);
    // Aggregate drift band: mean absolute error and the bias both under
    // 15% of the executed total.
    EXPECT_LT(total_error / total_actual, 0.15)
        << workload::DistributionName(dist);
    EXPECT_LT(std::abs(total_estimated - total_actual) / total_actual, 0.15)
        << workload::DistributionName(dist);
  }
}

TEST(PlannerCalibrationTest, JoinEstimateEqualsIntersectionEstimate) {
  const GridSpec grid{2, 10};
  workload::DataGenConfig data;
  data.count = 5000;
  data.seed = 7950;
  const auto points = GeneratePoints(grid, data);
  auto built = workload::BuildZkdIndex(grid, points, 20, 256);
  const index::CostModel model = index::CostModel::FromIndex(*built.index);

  util::Rng rng(7960);
  for (int i = 0; i < 8; ++i) {
    const auto r_box = workload::MakeQueryBoxes2D(grid, 0.05, 1.0, 1, rng)[0];
    const auto s_box = workload::MakeQueryBoxes2D(grid, 0.05, 2.0, 1, rng)[0];
    const auto join = model.EstimateJoinPages(model, r_box, s_box);
    const auto overlap = r_box.Intersection(s_box);
    ASSERT_EQ(join.overlap, overlap.has_value());
    if (!overlap.has_value()) {
      EXPECT_EQ(join.pages(), 0u);
      continue;
    }
    // At full depth the intersected run lists of the two boxes cover
    // exactly the cells of the boxes' intersection, so the join estimate
    // must agree with the plain range estimate of the intersection box —
    // on both snapshots (here the same index twice).
    const auto direct = model.EstimatePages(*overlap);
    EXPECT_EQ(join.r_pages, direct.pages);
    EXPECT_EQ(join.s_pages, direct.pages);

    // And that shared estimate tracks execution over the intersection.
    index::QueryStats stats;
    built.index->RangeSearch(*overlap, &stats);
    EXPECT_NEAR(static_cast<double>(join.r_pages),
                static_cast<double>(stats.leaf_pages),
                4.0 + 0.25 * static_cast<double>(stats.leaf_pages));
  }
}

TEST(PlannerCalibrationTest, DepthCapKeepsEstimateUsable) {
  const GridSpec grid{2, 10};
  workload::DataGenConfig data;
  data.count = 5000;
  data.seed = 7970;
  const auto points = GeneratePoints(grid, data);
  auto built = workload::BuildZkdIndex(grid, points, 20, 256);
  const index::CostModel model = index::CostModel::FromIndex(*built.index);

  const auto box = GridBox::Make2D(100, 500, 200, 900);
  const int cap = index::CostModel::EstimateDepthCap(grid, box, 256);
  ASSERT_GE(cap, 0) << "a 400x700 box must not fit 256 elements at full depth";
  // The capped cover stays within the element budget...
  const auto capped = model.EstimatePages(box, cap);
  EXPECT_LE(capped.elements_used, 256u);
  // ...and remains an upper estimate of the full-depth one.
  EXPECT_GE(capped.pages, model.EstimatePages(box).pages);
}

}  // namespace
}  // namespace probe::query
