// Lint fixture: std::thread construction outside util::ThreadPool must
// trip the raw-thread rule. Never compiled; see README.md.
#include <thread>

namespace fixture {

void FireAndForget() {
  // A loose thread: nothing drains or joins it at shutdown.
  std::thread worker([] {});
  worker.detach();
}

// Static member calls are allowed — this line must NOT fire:
inline unsigned Cores() { return std::thread::hardware_concurrency(); }

}  // namespace fixture
