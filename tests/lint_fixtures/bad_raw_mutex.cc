// Lint fixture: raw std::mutex outside src/util/mutex.h must trip the
// raw-mutex rule. Never compiled; see README.md.
#include <mutex>

namespace fixture {

class Registry {
 public:
  void Touch() {
    std::lock_guard<std::mutex> lock(mutex_);  // raw lock helper: also bad
    ++touches_;
  }

 private:
  std::mutex mutex_;  // the analysis can't see through this
  int touches_ = 0;
};

}  // namespace fixture
