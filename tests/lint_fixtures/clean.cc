// Lint fixture: clean control — no rule may fire here. Mentions of the
// banned names inside comments and strings must not count:
// std::mutex, std::thread, fsync(fd).
namespace fixture {

inline const char* Banner() {
  return "not a real std::mutex, fsync(2), or std::thread";
}

}  // namespace fixture
