// Lint fixture: a BufferPool pin outside the index interior, in a file
// with no PinBalanceScope, must trip the unscoped-pin rule. Never
// compiled; see README.md.

namespace fixture {

struct Pool {
  int Fetch(int id);
  int New(int* id);
};

int ReadPageZero(Pool* pool) {
  return pool->Fetch(0);  // unaudited pin: a leak here is invisible
}

}  // namespace fixture
