// Lint fixture: the waiver comment must suppress the rule it names.
// Never compiled; see README.md.
#include <unistd.h>

namespace fixture {

void CheckpointForce(int fd) {
  // invariant-lint waiver(raw-fsync): fixture exercising the waiver
  // mechanism itself — the scan must stay quiet here.
  ::fsync(fd);
}

}  // namespace fixture
