// Lint fixture: a NO_THREAD_SAFETY_ANALYSIS escape hatch with no reason
// comment must trip the unexplained-escape rule. Never compiled; see
// README.md.
#define PROBE_NO_THREAD_SAFETY_ANALYSIS

namespace fixture {

class Pool {
 public:
  int Size();

  void Drain() PROBE_NO_THREAD_SAFETY_ANALYSIS;

 private:
  int size_ = 0;
};

}  // namespace fixture
