// Lint fixture: fsync outside storage/wal.cc must trip the raw-fsync
// rule. Never compiled; see README.md.
#include <unistd.h>

namespace fixture {

void SneakySync(int fd) {
  ::fsync(fd);  // durability decision outside the WAL
  ::fdatasync(fd);
}

}  // namespace fixture
