/// \file
/// Tests for the invariant-audit layer itself (src/probe/check.h and the
/// per-subsystem auditors). The auditors are compiled in every build
/// configuration, so these tests — including the death tests that feed
/// deliberately broken invariants — run identically whether or not the
/// hot-path PROBE_AUDIT call sites are compiled in.

#include <gtest/gtest.h>

#include <vector>

#include "btree/audit.h"
#include "btree/node.h"
#include "decompose/audit.h"
#include "decompose/decomposer.h"
#include "geometry/box.h"
#include "probe/check.h"
#include "storage/page.h"
#include "zorder/audit.h"
#include "zorder/bigmin.h"
#include "zorder/grid.h"
#include "zorder/shuffle.h"
#include "zorder/zvalue.h"

namespace probe {
namespace {

using geometry::GridBox;
using zorder::GridSpec;
using zorder::ZValue;

// Every AuditFailure diagnostic starts with this marker.
constexpr char kDeath[] = "PROBE_AUDIT failure";

TEST(ProbeCheck, AuditsEnabledMatchesMacro) {
  EXPECT_EQ(check::AuditsEnabled(), PROBE_AUDIT_ENABLED != 0);
}

// ------------------------------------------------------------- ZMonotone

TEST(ProbeCheck, ZMonotoneAcceptsForwardProgress) {
  check::ZMonotone strict(/*strict=*/true);
  strict.Observe(0, "test");
  strict.Observe(1, "test");
  strict.Observe(100, "test");
  EXPECT_EQ(strict.last(), 100u);

  check::ZMonotone lax(/*strict=*/false);
  lax.Observe(5, "test");
  lax.Observe(5, "test");  // equality is fine when not strict
  lax.Observe(6, "test");
}

TEST(ProbeCheckDeath, ZMonotoneCatchesBackwardStep) {
  check::ZMonotone lax(/*strict=*/false);
  lax.Observe(10, "test");
  EXPECT_DEATH(lax.Observe(9, "test"), kDeath);
}

TEST(ProbeCheckDeath, StrictZMonotoneCatchesRepeat) {
  check::ZMonotone strict(/*strict=*/true);
  strict.Observe(10, "test");
  EXPECT_DEATH(strict.Observe(10, "test"), kDeath);
}

TEST(ProbeCheck, ZMonotoneResetAllowsRewind) {
  check::ZMonotone strict(/*strict=*/true);
  strict.Observe(10, "test");
  strict.Reset();
  strict.Observe(0, "test");  // legal after an intentional rewind
  EXPECT_EQ(strict.last(), 0u);
}

// ---------------------------------------------------------- z-order laws

TEST(ProbeCheck, ZOrderLawsHoldForRepresentativePairs) {
  const auto a = ZValue::FromInteger(0b0011, 4);
  zorder::AuditZOrderLaws(a, a);                              // reflexive
  zorder::AuditZOrderLaws(a, ZValue::FromInteger(0b001101, 6));  // nested
  zorder::AuditZOrderLaws(a, ZValue::FromInteger(0b0100, 4));    // disjoint
  zorder::AuditZOrderLaws(ZValue(), a);  // the whole space contains all
}

// --------------------------------------------------------- element covers

TEST(ProbeCheck, ElementCoverAcceptsBoxDecomposition) {
  GridSpec grid{.dims = 2, .bits_per_dim = 4};
  const GridBox box = GridBox::Make2D(3, 11, 2, 13);
  const std::vector<ZValue> elements = decompose::DecomposeBox(grid, box);
  zorder::AuditElementCover(grid, elements,
                            static_cast<int64_t>(box.Volume()),
                            /*max_elements=*/0);
  decompose::AuditBoxCover(grid, box, elements, /*exact=*/true,
                           /*include_boundary=*/true);
}

TEST(ProbeCheckDeath, ElementCoverCatchesOverlap) {
  GridSpec grid{.dims = 2, .bits_per_dim = 2};
  // The second element is inside the first: intervals overlap.
  const std::vector<ZValue> elements = {ZValue::FromInteger(0b01, 2),
                                        ZValue::FromInteger(0b0110, 4)};
  EXPECT_DEATH(zorder::AuditElementCover(grid, elements, -1, 0), kDeath);
}

TEST(ProbeCheckDeath, ElementCoverCatchesOutOfOrderElements) {
  GridSpec grid{.dims = 2, .bits_per_dim = 2};
  const std::vector<ZValue> elements = {ZValue::FromInteger(0b10, 2),
                                        ZValue::FromInteger(0b01, 2)};
  EXPECT_DEATH(zorder::AuditElementCover(grid, elements, -1, 0), kDeath);
}

TEST(ProbeCheckDeath, ElementCoverCatchesWrongCellCount) {
  GridSpec grid{.dims = 2, .bits_per_dim = 2};
  const std::vector<ZValue> elements = {ZValue::FromInteger(0b00, 2)};
  // One quadrant covers 4 cells, not 5.
  EXPECT_DEATH(zorder::AuditElementCover(grid, elements, 5, 0), kDeath);
}

// ------------------------------------------------------------ BIGMIN step

TEST(ProbeCheckDeath, BigMinAuditCatchesSwappedBounds) {
  GridSpec grid{.dims = 2, .bits_per_dim = 4};
  const uint64_t zmin = zorder::Shuffle2D(grid, 2, 3).ToInteger();
  const uint64_t zmax = zorder::Shuffle2D(grid, 9, 12).ToInteger();
  uint64_t next = 0;
  const bool found = zorder::BigMin(grid, /*zcur=*/zmin, zmin, zmax, &next);
  ASSERT_TRUE(found);
  // The correct call passes.
  zorder::AuditBigMinResult(grid, zmin, zmin, zmax, found, next,
                            /*is_bigmin=*/true);
  // The same result audited against *swapped* bounds fails the in-box
  // check (this is the acceptance-criterion scenario: a planted bug in the
  // merge's bound handling is caught at the audit point).
  EXPECT_DEATH(zorder::AuditBigMinResult(grid, zmin, zmax, zmin, found, next,
                                         /*is_bigmin=*/true),
               kDeath);
}

TEST(ProbeCheckDeath, BigMinAuditCatchesNonAdvancingResult) {
  GridSpec grid{.dims = 2, .bits_per_dim = 4};
  const uint64_t zmin = zorder::Shuffle2D(grid, 2, 3).ToInteger();
  const uint64_t zmax = zorder::Shuffle2D(grid, 9, 12).ToInteger();
  // Claiming "found" with out == zcur violates strict forward progress.
  EXPECT_DEATH(zorder::AuditBigMinResult(grid, zmin, zmin, zmax,
                                         /*found=*/true, /*out=*/zmin,
                                         /*is_bigmin=*/true),
               kDeath);
}

// ----------------------------------------------------------- B-tree pages

TEST(ProbeCheck, LeafAuditAcceptsSortedLeaf) {
  storage::Page page;
  btree::LeafView leaf(&page);
  leaf.Init();
  for (int i = 0; i < 8; ++i) {
    leaf.InsertAt(i, {btree::ZKey::FromZValue(
                          ZValue::FromInteger(static_cast<uint64_t>(i), 8)),
                      static_cast<uint64_t>(i)});
  }
  btree::AuditLeafPage(leaf, 1, btree::LeafView::kMaxCapacity);
}

TEST(ProbeCheckDeath, LeafAuditCatchesOutOfOrderKeys) {
  storage::Page page;
  btree::LeafView leaf(&page);
  leaf.Init();
  leaf.InsertAt(0, {btree::ZKey::FromZValue(ZValue::FromInteger(7, 8)), 1});
  // Bypass LowerBound and plant a smaller key *after* a larger one.
  leaf.InsertAt(1, {btree::ZKey::FromZValue(ZValue::FromInteger(3, 8)), 2});
  EXPECT_DEATH(
      btree::AuditLeafPage(leaf, 1, btree::LeafView::kMaxCapacity), kDeath);
}

TEST(ProbeCheckDeath, LeafAuditCatchesOverflow) {
  storage::Page page;
  btree::LeafView leaf(&page);
  leaf.Init();
  leaf.InsertAt(0, {btree::ZKey::FromZValue(ZValue::FromInteger(1, 8)), 1});
  leaf.InsertAt(1, {btree::ZKey::FromZValue(ZValue::FromInteger(2, 8)), 2});
  // A capacity bound below the actual count must trip the occupancy check.
  EXPECT_DEATH(btree::AuditLeafPage(leaf, 1, 1), kDeath);
}

TEST(ProbeCheckDeath, InternalAuditCatchesInvalidChild) {
  storage::Page page;
  btree::InternalView node(&page);
  node.Init(storage::kInvalidPageId);  // leftmost child missing
  node.InsertPairAt(0, btree::ZKey::FromZValue(ZValue::FromInteger(1, 4)), 7);
  EXPECT_DEATH(
      btree::AuditInternalPage(node, 1, btree::InternalView::kMaxCapacity),
      kDeath);
}

}  // namespace
}  // namespace probe
