// Group commit and epoch snapshots, the deterministic half of the
// concurrency tier: WAL commit grouping (one fsync acks many commits),
// the acked ⊆ durable invariant under a multi-threaded commit storm,
// concurrent DurableIndex::Apply equivalence with serial epoch-order
// replay, snapshot isolation from later commits, checkpoint draining, and
// the schedule harness's same-seed determinism. The TSan build runs this
// via the `concurrency` ctest label; the seeded interleaving sweep lives
// in schedule_fuzz_test.cc.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "index/durable_index.h"
#include "storage/wal.h"
#include "temp_file.h"
#include "util/mutex.h"
#include "util/yieldpoint.h"

namespace probe {
namespace {

using geometry::GridBox;
using geometry::GridPoint;
using index::DurableIndex;
using storage::Wal;
using Op = index::DurableIndex::Op;

constexpr zorder::GridSpec kGrid{2, 8};
constexpr uint32_t kSide = 256;

std::vector<uint8_t> Meta(uint8_t tag) { return std::vector<uint8_t>{tag}; }

// ------------------------------------------------------------ WAL level

TEST(GroupCommitTest, DeferredCommitsShareOneSync) {
  testutil::TempFile tmp("group_commit_share");
  Wal wal(tmp.path(), /*truncate=*/true);
  ASSERT_TRUE(wal.ok());

  const auto meta = Meta(1);
  const uint64_t c1 = wal.AppendCommitDeferred(1, meta);
  const uint64_t c2 = wal.AppendCommitDeferred(2, meta);
  const uint64_t c3 = wal.AppendCommitDeferred(3, meta);
  ASSERT_NE(c1, 0u);
  ASSERT_LT(c1, c2);
  ASSERT_LT(c2, c3);
  EXPECT_EQ(wal.stats().syncs, 0u) << "deferred commits must not fsync";
  EXPECT_EQ(wal.durable_lsn(), 0u);

  // Waiting on the *last* commit elects this thread leader once; the one
  // fsync covers all three queued commits.
  ASSERT_TRUE(wal.GroupCommit(c3));
  storage::WalStats stats = wal.stats();
  EXPECT_EQ(stats.syncs, 1u);
  EXPECT_EQ(stats.group_syncs, 1u);
  EXPECT_EQ(stats.group_commits, 3u);
  EXPECT_EQ(stats.max_group, 3u);
  EXPECT_EQ(wal.durable_lsn(), c3);

  // The earlier commits are already durable: no further fsync.
  EXPECT_TRUE(wal.GroupCommit(c1));
  EXPECT_TRUE(wal.GroupCommit(c2));
  EXPECT_EQ(wal.stats().syncs, 1u);
}

TEST(GroupCommitTest, ExplicitSyncCutsLeaderLingerShort) {
  testutil::TempFile tmp("group_commit_linger_cut");
  Wal wal(tmp.path(), /*truncate=*/true);
  ASSERT_TRUE(wal.ok());
  // A linger far longer than the test budget: if an explicit Sync had to
  // sit it out, the elapsed-time bound below would trip.
  wal.SetGroupCommitDelay(std::chrono::seconds(30));

  std::thread committer([&wal] {
    const uint64_t lsn = wal.AppendCommitDeferred(1, Meta(1));
    ASSERT_NE(lsn, 0u);
    EXPECT_TRUE(wal.GroupCommit(lsn));  // leads, and would linger 30s
  });
  // Wait for the commit record to exist so Sync has something to cover
  // (whether the committer has claimed leadership yet or not — both
  // orders must come in far under the linger).
  while (wal.next_lsn() < 2) std::this_thread::yield();

  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(wal.Sync());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(wal.durable_lsn(), 1u);
  EXPECT_LT(elapsed, std::chrono::seconds(10))
      << "Sync waited out the group-commit linger";
  committer.join();
}

TEST(GroupCommitTest, CommitStormKeepsAckedWithinDurable) {
  constexpr int kThreads = 4;
  constexpr int kCommitsPerThread = 32;
  testutil::TempFile tmp("group_commit_storm");
  Wal wal(tmp.path(), /*truncate=*/true);
  ASSERT_TRUE(wal.ok());
  wal.SetGroupCommitDelay(std::chrono::microseconds(200));

  std::vector<std::vector<uint64_t>> acked(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal, &acked, t] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        const uint64_t lsn =
            wal.AppendCommitDeferred(static_cast<uint32_t>(i), Meta(1));
        ASSERT_NE(lsn, 0u);
        ASSERT_TRUE(wal.GroupCommit(lsn));
        // The moment GroupCommit returns, durability must already cover
        // this commit — the acked ⊆ durable invariant.
        EXPECT_GE(wal.durable_lsn(), lsn);
        acked[static_cast<size_t>(t)].push_back(lsn);
      }
    });
  }
  for (auto& t : threads) t.join();

  const storage::WalStats stats = wal.stats();
  EXPECT_EQ(stats.group_commits,
            static_cast<uint64_t>(kThreads * kCommitsPerThread));
  EXPECT_GE(stats.group_syncs, 1u);
  EXPECT_LE(stats.group_syncs,
            static_cast<uint64_t>(kThreads * kCommitsPerThread));
  EXPECT_GE(stats.max_group, 1u);

  // Every acked LSN is durable and unique; the file holds exactly the
  // records, in strictly increasing LSN order (buffer order == LSN order).
  std::vector<uint64_t> all;
  for (const auto& per_thread : acked) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  EXPECT_LE(all.back(), wal.durable_lsn());

  storage::WalReader reader(tmp.path());
  storage::WalRecord record;
  uint64_t prev = 0;
  size_t count = 0;
  while (reader.Next(&record)) {
    EXPECT_GT(record.lsn, prev);
    prev = record.lsn;
    ++count;
  }
  EXPECT_EQ(count, all.size());
}

// ---------------------------------------------------- DurableIndex level

// Four writers land interleaved batches; the result must equal a serial
// replay of the batches in their *epoch* order — the order the engine
// itself assigned — and survive reopen with the same epoch.
TEST(GroupCommitTest, ConcurrentAppliesMatchSerialReplayByEpoch) {
  constexpr int kThreads = 4;
  constexpr int kBatchesPerThread = 8;
  constexpr int kInsertsPerBatch = 4;
  testutil::TempFile tmp("group_commit_apply");

  util::Mutex log_mutex;
  std::map<uint64_t, std::vector<Op>> commit_log;  // epoch -> batch

  {
    DurableIndex::Options options;
    options.truncate = true;
    DurableIndex db(kGrid, tmp.path(), options);
    ASSERT_TRUE(db.ok());
    db.wal().SetGroupCommitDelay(std::chrono::microseconds(100));

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&db, &log_mutex, &commit_log, t] {
        for (int b = 0; b < kBatchesPerThread; ++b) {
          std::vector<Op> batch;
          for (int i = 0; i < kInsertsPerBatch; ++i) {
            const uint64_t id = static_cast<uint64_t>(t) * 1000 +
                                static_cast<uint64_t>(b) * 10 +
                                static_cast<uint64_t>(i) + 1;
            const GridPoint p({static_cast<uint32_t>((id * 37) % kSide),
                               static_cast<uint32_t>((id * 91) % kSide)});
            batch.push_back(Op::Insert(p, id));
          }
          uint64_t epoch = 0;
          ASSERT_TRUE(db.Apply(batch, &epoch));
          util::MutexLock lock(&log_mutex);
          EXPECT_TRUE(commit_log.emplace(epoch, std::move(batch)).second)
              << "two batches claimed epoch " << epoch;
        }
      });
    }
    for (auto& t : threads) t.join();

    // Epochs are dense: 1 is the fresh-database empty commit, then one per
    // batch with no gaps and no reuse.
    ASSERT_EQ(commit_log.size(),
              static_cast<size_t>(kThreads * kBatchesPerThread));
    uint64_t expect = 2;
    for (const auto& [epoch, batch] : commit_log) {
      EXPECT_EQ(epoch, expect++);
    }
    EXPECT_EQ(db.published_epoch(), expect - 1);

    // Serial replay in epoch order == the concurrent result.
    std::vector<uint64_t> oracle;
    for (const auto& [epoch, batch] : commit_log) {
      for (const Op& op : batch) oracle.push_back(op.id);
    }
    std::sort(oracle.begin(), oracle.end());
    auto got =
        db.index().RangeSearch(GridBox::Make2D(0, kSide - 1, 0, kSide - 1));
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, oracle);
    EXPECT_TRUE(db.index().tree().CheckInvariants());
  }

  // Reopen: recovery lands on the same state and resumes the epochs.
  DurableIndex db(kGrid, tmp.path(), DurableIndex::Options());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.published_epoch(),
            1u + static_cast<uint64_t>(kThreads * kBatchesPerThread));
  EXPECT_EQ(db.index().size(),
            static_cast<uint64_t>(kThreads * kBatchesPerThread *
                                  kInsertsPerBatch));
}

TEST(GroupCommitTest, SnapshotIsIsolatedFromLaterCommits) {
  testutil::TempFile tmp("group_commit_snapshot");
  DurableIndex::Options options;
  options.truncate = true;
  DurableIndex db(kGrid, tmp.path(), options);
  ASSERT_TRUE(db.ok());

  std::vector<Op> first;
  for (uint64_t id = 1; id <= 10; ++id) {
    first.push_back(Op::Insert(
        GridPoint({static_cast<uint32_t>(id), static_cast<uint32_t>(id)}),
        id));
  }
  uint64_t first_epoch = 0;
  ASSERT_TRUE(db.Apply(first, &first_epoch));

  DurableIndex::Snapshot snap = db.CreateSnapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.epoch(), first_epoch);

  std::vector<Op> second;
  for (uint64_t id = 11; id <= 20; ++id) {
    second.push_back(Op::Insert(
        GridPoint({static_cast<uint32_t>(id), static_cast<uint32_t>(id)}),
        id));
  }
  ASSERT_TRUE(db.Apply(second));

  // The snapshot still answers as of its epoch; the live index (and a
  // fresh snapshot) see both batches.
  const GridBox all = GridBox::Make2D(0, kSide - 1, 0, kSide - 1);
  EXPECT_EQ(snap.index().RangeSearch(all).size(), 10u);
  EXPECT_EQ(snap.index().size(), 10u);
  EXPECT_EQ(db.index().RangeSearch(all).size(), 20u);
  DurableIndex::Snapshot fresh = db.CreateSnapshot();
  EXPECT_EQ(fresh.epoch(), first_epoch + 1);
  EXPECT_EQ(fresh.index().RangeSearch(all).size(), 20u);
  EXPECT_EQ(db.published_size(), 20u);
}

TEST(GroupCommitTest, CheckpointDrainsSnapshotPins) {
  testutil::TempFile tmp("group_commit_drain");
  DurableIndex::Options options;
  options.truncate = true;
  DurableIndex db(kGrid, tmp.path(), options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.Insert(GridPoint({3, 4}), 42));

  DurableIndex::Snapshot snap = db.CreateSnapshot();
  ASSERT_TRUE(snap.ok());

  std::atomic<bool> done{false};
  std::thread checkpointer([&db, &done] {
    EXPECT_TRUE(db.Checkpoint());
    done.store(true);
  });
  // The checkpoint CANNOT complete while the pin is held (it would drop
  // the page versions the snapshot reads), so this wait is not a timing
  // assumption — only the release below lets it finish.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(done.load());
  // The pinned view still answers mid-drain? No — new snapshots queue
  // behind the drain, but the existing pin keeps its versions; release it.
  EXPECT_EQ(snap.index().size(), 1u);
  snap = DurableIndex::Snapshot();  // release the pin
  checkpointer.join();
  EXPECT_TRUE(done.load());

  // Post-checkpoint snapshots read the forced base pages.
  DurableIndex::Snapshot after = db.CreateSnapshot();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.index().size(), 1u);
  EXPECT_EQ(db.txn_pager().pending_pages(), 0u);
}

// ------------------------------------------------- schedule harness unit

TEST(ScheduleHarnessTest, SameSeedSameDecisions) {
  auto run = [](uint64_t seed) {
    util::ScheduleOptions options;
    options.seed = seed;
    options.max_wait_micros = 100;  // keep the run fast
    util::ScheduleHarness harness(options);
    std::vector<std::thread> threads;
    for (uint32_t t = 0; t < 3; ++t) {
      threads.emplace_back([t] {
        util::ScheduleThreadOrdinal(t);
        for (int i = 0; i < 200; ++i) {
          util::SchedulePoint("test.a");
          util::SchedulePoint("test.b");
        }
      });
    }
    for (auto& t : threads) t.join();
    return harness.stats();
  };

  const util::ScheduleStats a = run(42);
  const util::ScheduleStats b = run(42);
  EXPECT_EQ(a.points, 3u * 200u * 2u);
  EXPECT_EQ(b.points, a.points);
  // The pause *decision* is a pure function of (seed, ordinal, name,
  // visit) — identical across runs. (Timeouts depend on the OS scheduler
  // and are deliberately not compared.)
  EXPECT_EQ(a.pauses, b.pauses);
  EXPECT_GT(a.pauses, 0u) << "density 1/4 over 1200 passages must pause";
}

TEST(ScheduleHarnessTest, UninstalledPointsAreFree) {
  // No harness: the point must be a no-op (and must not crash).
  util::SchedulePoint("test.noharness");
}

}  // namespace
}  // namespace probe
