#include <memory>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/csg.h"
#include "geometry/point.h"
#include "geometry/polygon.h"
#include "geometry/primitives.h"
#include "geometry/raster.h"
#include "util/rng.h"
#include "zorder/grid.h"

namespace probe::geometry {
namespace {

using zorder::GridSpec;

TEST(GridPointTest, BasicAccessors) {
  const GridPoint p({3, 5});
  EXPECT_EQ(p.dims(), 2);
  EXPECT_EQ(p[0], 3u);
  EXPECT_EQ(p[1], 5u);
  EXPECT_EQ(p.ToString(), "(3, 5)");
}

TEST(GridBoxTest, VolumeAndContainment) {
  const GridBox box = GridBox::Make2D(1, 3, 0, 4);
  EXPECT_EQ(box.Volume(), 15u);
  EXPECT_TRUE(box.ContainsPoint(GridPoint({1, 0})));
  EXPECT_TRUE(box.ContainsPoint(GridPoint({3, 4})));
  EXPECT_FALSE(box.ContainsPoint(GridPoint({4, 4})));
  EXPECT_FALSE(box.ContainsPoint(GridPoint({0, 0})));
}

TEST(GridBoxTest, IntersectionCases) {
  const GridBox a = GridBox::Make2D(0, 4, 0, 4);
  const GridBox b = GridBox::Make2D(3, 7, 2, 9);
  ASSERT_TRUE(a.Intersects(b));
  const auto common = a.Intersection(b);
  ASSERT_TRUE(common.has_value());
  EXPECT_EQ(*common, GridBox::Make2D(3, 4, 2, 4));

  const GridBox c = GridBox::Make2D(5, 7, 0, 4);
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(a.Intersection(c).has_value());
}

TEST(GridBoxTest, ContainsBox) {
  const GridBox outer = GridBox::Make2D(0, 7, 0, 7);
  EXPECT_TRUE(outer.ContainsBox(GridBox::Make2D(1, 3, 2, 5)));
  EXPECT_TRUE(outer.ContainsBox(outer));
  EXPECT_FALSE(outer.ContainsBox(GridBox::Make2D(5, 8, 0, 1)));
}

TEST(BoxObjectTest, ClassifiesExactly) {
  const BoxObject object(GridBox::Make2D(2, 5, 2, 5));
  EXPECT_EQ(object.Classify(GridBox::Make2D(3, 4, 3, 4)),
            RegionClass::kInside);
  EXPECT_EQ(object.Classify(GridBox::Make2D(6, 7, 6, 7)),
            RegionClass::kOutside);
  EXPECT_EQ(object.Classify(GridBox::Make2D(0, 3, 0, 3)),
            RegionClass::kCrossing);
}

// The classifier contract: kInside/kOutside verdicts must agree with the
// per-cell membership test on every cell of the region.
void CheckClassifierConsistency(const GridSpec& grid,
                                const SpatialObject& object, int trials,
                                uint64_t seed) {
  util::Rng rng(seed);
  for (int t = 0; t < trials; ++t) {
    std::vector<zorder::DimRange> ranges(grid.dims);
    for (int d = 0; d < grid.dims; ++d) {
      uint32_t a = static_cast<uint32_t>(rng.NextBelow(grid.side()));
      uint32_t b = static_cast<uint32_t>(rng.NextBelow(grid.side()));
      ranges[d] = {std::min(a, b), std::max(a, b)};
    }
    const GridBox region{std::span<const zorder::DimRange>(ranges)};
    const RegionClass verdict = object.Classify(region);
    if (verdict == RegionClass::kCrossing) continue;  // allowed conservatively
    // Enumerate the region's cells (2-d only in this helper).
    for (uint32_t x = region.range(0).lo; x <= region.range(0).hi; ++x) {
      for (uint32_t y = region.range(1).lo; y <= region.range(1).hi; ++y) {
        const bool in = object.ContainsCell(GridPoint({x, y}));
        EXPECT_EQ(in, verdict == RegionClass::kInside)
            << object.Describe() << " region=" << region.ToString() << " cell("
            << x << "," << y << ")";
      }
    }
  }
}

TEST(BallObjectTest, ClassifierConsistentWithMembership) {
  const GridSpec grid{2, 5};
  const BallObject ball({13.0, 17.0}, 9.5);
  CheckClassifierConsistency(grid, ball, 200, 31);
}

TEST(BallObjectTest, ExactClassification) {
  // BallObject promises exact (not conservative) inside/outside for
  // regions fully in or out.
  const BallObject ball({8.0, 8.0}, 3.0);
  EXPECT_EQ(ball.Classify(GridBox::Make2D(7, 8, 7, 8)), RegionClass::kInside);
  EXPECT_EQ(ball.Classify(GridBox::Make2D(12, 15, 12, 15)),
            RegionClass::kOutside);
  EXPECT_EQ(ball.Classify(GridBox::Make2D(4, 11, 4, 11)),
            RegionClass::kCrossing);
}

TEST(CapsuleObjectTest, MembershipMatchesSegmentDistance) {
  // A horizontal capsule: membership by distance to the segment.
  const CapsuleObject road({4.0, 10.0}, {24.0, 10.0}, 2.0);
  EXPECT_TRUE(road.ContainsCell(GridPoint({10, 10})));   // near center line
  EXPECT_TRUE(road.ContainsCell(GridPoint({10, 11})));   // within width
  EXPECT_FALSE(road.ContainsCell(GridPoint({10, 14})));  // too far off-axis
  EXPECT_TRUE(road.ContainsCell(GridPoint({3, 10})));    // round end cap
  EXPECT_FALSE(road.ContainsCell(GridPoint({0, 10})));   // past the cap
}

TEST(CapsuleObjectTest, ClassifierConsistentWithMembership) {
  const GridSpec grid{2, 5};
  const CapsuleObject diagonal({2.0, 3.0}, {28.0, 26.0}, 3.0);
  CheckClassifierConsistency(grid, diagonal, 300, 39);
}

TEST(CapsuleObjectTest, DegenerateSegmentIsABall) {
  // Zero-length capsule == ball: classifications agree on random regions.
  const CapsuleObject capsule({15.0, 17.0}, {15.0, 17.0}, 6.0);
  const BallObject ball({15.0, 17.0}, 6.0);
  util::Rng rng(40);
  for (int t = 0; t < 200; ++t) {
    uint32_t x1 = static_cast<uint32_t>(rng.NextBelow(32));
    uint32_t x2 = static_cast<uint32_t>(rng.NextBelow(32));
    uint32_t y1 = static_cast<uint32_t>(rng.NextBelow(32));
    uint32_t y2 = static_cast<uint32_t>(rng.NextBelow(32));
    const GridBox region = GridBox::Make2D(std::min(x1, x2), std::max(x1, x2),
                                           std::min(y1, y2), std::max(y1, y2));
    EXPECT_EQ(capsule.Classify(region), ball.Classify(region))
        << region.ToString();
  }
}

TEST(CapsuleObjectTest, ThreeDimensional) {
  const CapsuleObject pipe({2.0, 2.0, 2.0}, {14.0, 14.0, 14.0}, 2.0);
  EXPECT_TRUE(pipe.ContainsCell(GridPoint({8, 8, 8})));
  EXPECT_FALSE(pipe.ContainsCell(GridPoint({14, 2, 2})));
  EXPECT_EQ(pipe.Classify(GridBox::Make3D(7, 8, 7, 8, 7, 8)),
            RegionClass::kInside);
}

TEST(HalfSpaceObjectTest, ClassifierConsistentWithMembership) {
  const GridSpec grid{2, 5};
  const HalfSpaceObject half({1.0, -2.0}, 4.0);
  CheckClassifierConsistency(grid, half, 200, 37);
}

TEST(HalfSpaceObjectTest, ThreeDimensional) {
  const HalfSpaceObject half({1.0, 1.0, 1.0}, 10.0);
  EXPECT_TRUE(half.ContainsCell(GridPoint({1, 1, 1})));
  EXPECT_FALSE(half.ContainsCell(GridPoint({5, 5, 5})));
  EXPECT_EQ(half.Classify(GridBox::Make3D(0, 1, 0, 1, 0, 1)),
            RegionClass::kInside);
  EXPECT_EQ(half.Classify(GridBox::Make3D(6, 7, 6, 7, 6, 7)),
            RegionClass::kOutside);
}

TEST(SegmentRectTest, BasicIntersections) {
  EXPECT_TRUE(SegmentIntersectsRect({0, 0}, {10, 10}, 4, 6, 4, 6));
  EXPECT_FALSE(SegmentIntersectsRect({0, 0}, {10, 0}, 4, 6, 4, 6));
  EXPECT_TRUE(SegmentIntersectsRect({5, -1}, {5, 11}, 4, 6, 4, 6));  // vertical
  EXPECT_TRUE(SegmentIntersectsRect({4, 4}, {4, 4}, 4, 6, 4, 6));  // degenerate
  EXPECT_FALSE(SegmentIntersectsRect({0, 5}, {3, 5}, 4, 6, 4, 6));  // stops short
}

TEST(PolygonTest, SquareMembership) {
  const PolygonObject square({{2, 2}, {10, 2}, {10, 10}, {2, 10}});
  EXPECT_TRUE(square.ContainsCell(GridPoint({5, 5})));
  EXPECT_FALSE(square.ContainsCell(GridPoint({0, 0})));
  EXPECT_FALSE(square.ContainsCell(GridPoint({11, 5})));
}

TEST(PolygonTest, NonConvexMembership) {
  // An L-shape: the notch at the top right must be outside.
  const PolygonObject ell(
      {{0, 0}, {8, 0}, {8, 4}, {4, 4}, {4, 8}, {0, 8}});
  EXPECT_TRUE(ell.ContainsCell(GridPoint({1, 1})));
  EXPECT_TRUE(ell.ContainsCell(GridPoint({6, 2})));
  EXPECT_TRUE(ell.ContainsCell(GridPoint({1, 6})));
  EXPECT_FALSE(ell.ContainsCell(GridPoint({6, 6})));  // the notch
}

TEST(PolygonTest, ClassifyNeverLiesOnUniformRegions) {
  const GridSpec grid{2, 4};
  const PolygonObject triangle({{1, 1}, {14, 2}, {6, 13}});
  CheckClassifierConsistency(grid, triangle, 300, 41);
}

TEST(CsgTest, UnionMembershipTruthTable) {
  auto a = std::make_shared<BoxObject>(GridBox::Make2D(0, 3, 0, 3));
  auto b = std::make_shared<BoxObject>(GridBox::Make2D(2, 5, 2, 5));
  const UnionObject u({a, b});
  EXPECT_TRUE(u.ContainsCell(GridPoint({0, 0})));   // a only
  EXPECT_TRUE(u.ContainsCell(GridPoint({5, 5})));   // b only
  EXPECT_TRUE(u.ContainsCell(GridPoint({2, 2})));   // both
  EXPECT_FALSE(u.ContainsCell(GridPoint({7, 7})));  // neither
}

TEST(CsgTest, IntersectionAndDifference) {
  auto a = std::make_shared<BoxObject>(GridBox::Make2D(0, 5, 0, 5));
  auto b = std::make_shared<BoxObject>(GridBox::Make2D(3, 8, 3, 8));
  const IntersectionObject inter({a, b});
  EXPECT_TRUE(inter.ContainsCell(GridPoint({4, 4})));
  EXPECT_FALSE(inter.ContainsCell(GridPoint({1, 1})));

  const DifferenceObject diff(a, b);
  EXPECT_TRUE(diff.ContainsCell(GridPoint({1, 1})));
  EXPECT_FALSE(diff.ContainsCell(GridPoint({4, 4})));
  EXPECT_FALSE(diff.ContainsCell(GridPoint({8, 8})));
}

TEST(CsgTest, ClassifyConsistency) {
  const GridSpec grid{2, 4};
  auto disk = std::make_shared<BallObject>(
      std::vector<double>{8.0, 8.0}, 6.0);
  auto hole = std::make_shared<BallObject>(
      std::vector<double>{8.0, 8.0}, 2.5);
  const DifferenceObject annulus(disk, hole);
  CheckClassifierConsistency(grid, annulus, 300, 43);
}

TEST(CsgTest, ExactVerdictsPropagate) {
  auto a = std::make_shared<BoxObject>(GridBox::Make2D(0, 7, 0, 7));
  auto b = std::make_shared<BoxObject>(GridBox::Make2D(8, 15, 8, 15));
  const UnionObject u({a, b});
  EXPECT_EQ(u.Classify(GridBox::Make2D(1, 2, 1, 2)), RegionClass::kInside);
  EXPECT_EQ(u.Classify(GridBox::Make2D(9, 10, 9, 10)), RegionClass::kInside);
  // A region straddling the two parts is not inside either part alone, so
  // the union classifier conservatively reports crossing even though every
  // cell is covered; the decomposer handles that by splitting further.
  EXPECT_NE(u.Classify(GridBox::Make2D(0, 15, 0, 15)), RegionClass::kOutside);
}

TEST(TranslatedObjectTest, ShiftsMembership) {
  auto box = std::make_shared<BoxObject>(GridBox::Make2D(2, 5, 2, 5));
  const TranslatedObject moved(box, {10, -2});
  EXPECT_TRUE(moved.ContainsCell(GridPoint({12, 0})));   // (2,2) shifted
  EXPECT_TRUE(moved.ContainsCell(GridPoint({15, 3})));   // (5,5) shifted
  EXPECT_FALSE(moved.ContainsCell(GridPoint({2, 2})));   // original spot
  EXPECT_FALSE(moved.ContainsCell(GridPoint({12, 7})));  // above it now
}

TEST(TranslatedObjectTest, ClassifierConsistentAndClipsDomain) {
  const GridSpec grid{2, 5};
  auto ball = std::make_shared<BallObject>(std::vector<double>{6.0, 6.0}, 5.0);
  const TranslatedObject moved(ball, {12, 9});
  CheckClassifierConsistency(grid, moved, 300, 47);
  // An object shifted so part of it would sit at negative coordinates: a
  // region whose pre-image straddles the domain edge cannot be kInside.
  const TranslatedObject off_edge(ball, {-4, 0});
  EXPECT_NE(off_edge.Classify(GridBox::Make2D(0, 7, 2, 9)),
            RegionClass::kInside);
  // And its membership matches the shifted ball wherever defined.
  EXPECT_TRUE(off_edge.ContainsCell(GridPoint({2, 6})));
  EXPECT_FALSE(off_edge.ContainsCell(GridPoint({15, 6})));
}

TEST(TranslatedObjectTest, SweepFindsFirstCollisionFreePose) {
  // Motion sweep: slide a part rightward until it no longer overlaps a
  // fixed obstacle — each pose is just a new TranslatedObject.
  auto part = std::make_shared<BoxObject>(GridBox::Make2D(0, 7, 0, 7));
  const BoxObject obstacle(GridBox::Make2D(4, 19, 0, 7));
  int64_t first_clear = -1;
  for (int64_t dx = 0; dx < 32; ++dx) {
    const TranslatedObject pose(part, {dx, 0});
    bool overlap = false;
    for (uint32_t x = 0; x < 40 && !overlap; ++x) {
      for (uint32_t y = 0; y < 8; ++y) {
        if (pose.ContainsCell(GridPoint({x, y})) &&
            obstacle.ContainsCell(GridPoint({x, y}))) {
          overlap = true;
          break;
        }
      }
    }
    if (!overlap) {
      first_clear = dx;
      break;
    }
  }
  EXPECT_EQ(first_clear, 20);  // part [dx, dx+7] clears obstacle at dx=20
}

TEST(RasterTest, VolumeMatchesBoxVolume) {
  const GridSpec grid{2, 4};
  const BoxObject box(GridBox::Make2D(2, 9, 3, 11));
  EXPECT_EQ(RasterVolume(grid, box), box.box().Volume());
}

TEST(RasterTest, ArtDimensions) {
  const GridSpec grid{2, 3};
  const BoxObject box(GridBox::Make2D(0, 1, 0, 1));
  const std::string art = RasterArt(grid, box);
  // 8 rows of 8 chars + newline.
  EXPECT_EQ(art.size(), 72u);
  // Bottom-left corner is drawn last-line-first-chars.
  EXPECT_EQ(art.substr(art.size() - 9, 2), "##");
}

}  // namespace
}  // namespace probe::geometry
