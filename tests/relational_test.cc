#include <memory>

#include <gtest/gtest.h>

#include "geometry/primitives.h"
#include "relational/catalog.h"
#include "relational/operators.h"
#include "relational/relation.h"
#include "relational/spatial_join.h"
#include "relational/value.h"
#include "util/rng.h"
#include "zorder/shuffle.h"

namespace probe::relational {
namespace {

using geometry::BoxObject;
using geometry::GridBox;
using zorder::GridSpec;
using zorder::ZValue;

TEST(ValueTest, TypeTagsAndToString) {
  EXPECT_EQ(TypeOf(Value{int64_t{5}}), ValueType::kInt);
  EXPECT_EQ(TypeOf(Value{2.5}), ValueType::kReal);
  EXPECT_EQ(TypeOf(Value{std::string("x")}), ValueType::kString);
  EXPECT_EQ(TypeOf(Value{*ZValue::Parse("01")}), ValueType::kZValue);
  EXPECT_EQ(ValueToString(Value{int64_t{5}}), "5");
  EXPECT_EQ(ValueToString(Value{*ZValue::Parse("0110")}), "0110");
}

TEST(ValueTest, OrderingWithinTypes) {
  EXPECT_TRUE(ValueLess(Value{int64_t{1}}, Value{int64_t{2}}));
  EXPECT_TRUE(ValueLess(Value{*ZValue::Parse("0")}, Value{*ZValue::Parse("00")}));
  EXPECT_TRUE(ValueEquals(Value{std::string("a")}, Value{std::string("a")}));
  EXPECT_FALSE(ValueEquals(Value{int64_t{1}}, Value{1.0}));
}

TEST(RelationTest, SortAndText) {
  Relation rel(Schema({{"id", ValueType::kInt}, {"name", ValueType::kString}}));
  rel.Add({int64_t{3}, std::string("c")});
  rel.Add({int64_t{1}, std::string("a")});
  rel.Add({int64_t{2}, std::string("b")});
  rel.SortBy("id");
  EXPECT_EQ(std::get<int64_t>(rel.row(0)[0]), 1);
  EXPECT_EQ(std::get<int64_t>(rel.row(2)[0]), 3);
  EXPECT_NE(rel.ToText().find("name"), std::string::npos);
}

TEST(OperatorsTest, SelectFilters) {
  Relation rel(Schema({{"v", ValueType::kInt}}));
  for (int64_t i = 0; i < 10; ++i) rel.Add({i});
  const Relation evens = Select(rel, [](const Tuple& t) {
    return std::get<int64_t>(t[0]) % 2 == 0;
  });
  EXPECT_EQ(evens.size(), 5u);
}

TEST(OperatorsTest, ProjectDeduplicates) {
  Relation rel(Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
  rel.Add({int64_t{1}, int64_t{10}});
  rel.Add({int64_t{1}, int64_t{20}});
  rel.Add({int64_t{2}, int64_t{30}});
  const std::string cols[] = {"a"};
  const Relation raw = Project(rel, cols, /*deduplicate=*/false);
  EXPECT_EQ(raw.size(), 3u);
  const Relation unique = Project(rel, cols, /*deduplicate=*/true);
  EXPECT_EQ(unique.size(), 2u);
}

TEST(OperatorsTest, DecomposeRelationFlattens) {
  const GridSpec grid{2, 3};
  ObjectCatalog catalog;
  const uint64_t box_id = catalog.Register(
      std::make_shared<BoxObject>(GridBox::Make2D(1, 3, 0, 4)));

  Relation objects(Schema({{"obj", ValueType::kInt}}));
  objects.Add({static_cast<int64_t>(box_id)});

  const Relation elements =
      DecomposeRelation(grid, objects, "obj", catalog, "z");
  // Figure 2's box decomposes into 6 elements.
  EXPECT_EQ(elements.size(), 6u);
  ASSERT_EQ(elements.schema().column_count(), 2);
  // Sorted by z.
  for (size_t i = 1; i < elements.size(); ++i) {
    EXPECT_TRUE(ValueLess(elements.row(i - 1)[1], elements.row(i)[1]) ||
                ValueEquals(elements.row(i - 1)[1], elements.row(i)[1]));
  }
}

// Brute-force overlap reference: decompose both, test all element pairs.
size_t CountOverlapPairsBruteForce(const Relation& r, int zr,
                                   const Relation& s, int zs) {
  size_t pairs = 0;
  for (const Tuple& a : r.rows()) {
    for (const Tuple& b : s.rows()) {
      const ZValue& za = std::get<ZValue>(a[zr]);
      const ZValue& zb = std::get<ZValue>(b[zs]);
      if (za.Contains(zb) || zb.Contains(za)) ++pairs;
    }
  }
  return pairs;
}

TEST(SpatialJoinTest, MatchesBruteForceOnRandomElements) {
  util::Rng rng(201);
  for (int round = 0; round < 10; ++round) {
    Relation r(Schema({{"rid", ValueType::kInt}, {"zr", ValueType::kZValue}}));
    Relation s(Schema({{"sid", ValueType::kInt}, {"zs", ValueType::kZValue}}));
    for (int i = 0; i < 60; ++i) {
      r.Add({static_cast<int64_t>(i),
             ZValue::FromInteger(rng.Next(), rng.NextBelow(10))});
      s.Add({static_cast<int64_t>(i),
             ZValue::FromInteger(rng.Next(), rng.NextBelow(10))});
    }
    SpatialJoinStats stats;
    const Relation joined = SpatialJoin(r, "zr", s, "zs", &stats);
    EXPECT_EQ(joined.size(), CountOverlapPairsBruteForce(r, 1, s, 1));
    EXPECT_EQ(stats.pairs, joined.size());
  }
}

TEST(SpatialJoinTest, OutputCarriesBothSidesColumns) {
  Relation r(Schema({{"rid", ValueType::kInt}, {"zr", ValueType::kZValue}}));
  Relation s(Schema({{"sid", ValueType::kInt}, {"zs", ValueType::kZValue}}));
  r.Add({int64_t{7}, *ZValue::Parse("01")});
  s.Add({int64_t{9}, *ZValue::Parse("0110")});  // contained in 01
  const Relation joined = SpatialJoin(r, "zr", s, "zs");
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(joined.row(0)[0]), 7);
  EXPECT_EQ(std::get<int64_t>(joined.row(0)[2]), 9);
}

TEST(SpatialJoinTest, EqualElementsJoinOnce) {
  Relation r(Schema({{"rid", ValueType::kInt}, {"zr", ValueType::kZValue}}));
  Relation s(Schema({{"sid", ValueType::kInt}, {"zs", ValueType::kZValue}}));
  r.Add({int64_t{1}, *ZValue::Parse("0101")});
  s.Add({int64_t{2}, *ZValue::Parse("0101")});
  const Relation joined = SpatialJoin(r, "zr", s, "zs");
  EXPECT_EQ(joined.size(), 1u);
}

TEST(SpatialJoinTest, DisjointElementsDoNotJoin) {
  Relation r(Schema({{"rid", ValueType::kInt}, {"zr", ValueType::kZValue}}));
  Relation s(Schema({{"sid", ValueType::kInt}, {"zs", ValueType::kZValue}}));
  r.Add({int64_t{1}, *ZValue::Parse("00")});
  s.Add({int64_t{2}, *ZValue::Parse("01")});
  s.Add({int64_t{3}, *ZValue::Parse("1")});
  EXPECT_EQ(SpatialJoin(r, "zr", s, "zs").size(), 0u);
}

TEST(OperatorsTest, RenameEnablesSelfJoin) {
  // All overlapping pairs within one relation: a self spatial join with
  // one side renamed. Parcels 1 and 2 overlap; 3 is off on its own.
  const GridSpec grid{2, 4};
  ObjectCatalog catalog;
  Relation parcels(Schema({{"pid", ValueType::kInt}}));
  for (const auto& box :
       {GridBox::Make2D(0, 5, 0, 5), GridBox::Make2D(4, 9, 4, 9),
        GridBox::Make2D(12, 15, 12, 15)}) {
    parcels.Add({static_cast<int64_t>(
        catalog.Register(std::make_shared<BoxObject>(box)))});
  }
  const Relation r = DecomposeRelation(grid, parcels, "pid", catalog, "z");
  const Relation r2 = RenameColumns(r, "other_");
  const Relation joined = SpatialJoin(r, "z", r2, "other_z");
  const std::string cols[] = {"pid", "other_pid"};
  const Relation pairs = Project(joined, cols, /*deduplicate=*/true);
  // Expected pairs (including self-pairs and both orientations):
  // (1,1), (1,2), (2,1), (2,2), (3,3).
  EXPECT_EQ(pairs.size(), 5u);
  size_t cross_pairs = 0;
  for (const Tuple& row : pairs.rows()) {
    if (!ValueEquals(row[0], row[1])) ++cross_pairs;
  }
  EXPECT_EQ(cross_pairs, 2u);
}

TEST(OperatorsTest, GroupByCountsAndSums) {
  Relation rel(Schema({{"dept", ValueType::kString},
                       {"salary", ValueType::kInt},
                       {"score", ValueType::kReal}}));
  rel.Add({std::string("eng"), int64_t{100}, 0.5});
  rel.Add({std::string("ops"), int64_t{70}, 0.9});
  rel.Add({std::string("eng"), int64_t{120}, 0.7});
  rel.Add({std::string("eng"), int64_t{90}, 0.2});
  rel.Add({std::string("ops"), int64_t{80}, 0.4});

  const std::string groups[] = {"dept"};
  const AggregateSpec aggs[] = {
      {AggregateFn::kCount, "dept", "n"},
      {AggregateFn::kSum, "salary", "total"},
      {AggregateFn::kMin, "salary", "lo"},
      {AggregateFn::kMax, "score", "best"},
  };
  const Relation result = GroupBy(rel, groups, aggs);
  ASSERT_EQ(result.size(), 2u);  // sorted by group key: eng, ops
  EXPECT_EQ(std::get<std::string>(result.row(0)[0]), "eng");
  EXPECT_EQ(std::get<int64_t>(result.row(0)[1]), 3);
  EXPECT_EQ(std::get<int64_t>(result.row(0)[2]), 310);
  EXPECT_EQ(std::get<int64_t>(result.row(0)[3]), 90);
  EXPECT_EQ(std::get<double>(result.row(0)[4]), 0.7);
  EXPECT_EQ(std::get<std::string>(result.row(1)[0]), "ops");
  EXPECT_EQ(std::get<int64_t>(result.row(1)[1]), 2);
}

TEST(OperatorsTest, GroupByOverJoinCountsOverlapEvidence) {
  // The paper notes overlap "may be noted many times"; GroupBy counts the
  // evidence per pair instead of discarding it.
  Relation r(Schema({{"rid", ValueType::kInt}, {"zr", ValueType::kZValue}}));
  Relation s(Schema({{"sid", ValueType::kInt}, {"zs", ValueType::kZValue}}));
  r.Add({int64_t{1}, *ZValue::Parse("0")});
  s.Add({int64_t{9}, *ZValue::Parse("00")});
  s.Add({int64_t{9}, *ZValue::Parse("011")});
  s.Add({int64_t{8}, *ZValue::Parse("1")});
  const Relation joined = SpatialJoin(r, "zr", s, "zs");
  const std::string groups[] = {"rid", "sid"};
  const AggregateSpec aggs[] = {{AggregateFn::kCount, "rid", "pairs"}};
  const Relation counted = GroupBy(joined, groups, aggs);
  ASSERT_EQ(counted.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(counted.row(0)[0]), 1);
  EXPECT_EQ(std::get<int64_t>(counted.row(0)[1]), 9);
  EXPECT_EQ(std::get<int64_t>(counted.row(0)[2]), 2);  // two witnesses
}

TEST(OperatorsTest, DecomposeHeapFileMatchesInMemory) {
  const GridSpec grid{2, 4};
  ObjectCatalog catalog;
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 8);

  Relation in_memory(Schema({{"obj", ValueType::kInt}}));
  HeapFile stored(&pool, Schema({{"obj", ValueType::kInt}}));
  util::Rng rng(208);
  for (int i = 0; i < 12; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.NextBelow(10));
    const uint32_t y = static_cast<uint32_t>(rng.NextBelow(10));
    const uint64_t id = catalog.Register(std::make_shared<BoxObject>(
        GridBox::Make2D(x, x + static_cast<uint32_t>(rng.NextBelow(6)), y,
                        y + static_cast<uint32_t>(rng.NextBelow(6)))));
    in_memory.Add({static_cast<int64_t>(id)});
    ASSERT_TRUE(stored.Append({static_cast<int64_t>(id)}));
  }

  const Relation a = DecomposeRelation(grid, in_memory, "obj", catalog, "z");
  uint64_t pages = 0;
  const Relation b =
      DecomposeHeapFile(grid, stored, "obj", catalog, "z", {}, &pages);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GE(pages, 1u);
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t c = 0; c < a.row(i).size(); ++c) {
      EXPECT_TRUE(ValueEquals(a.row(i)[c], b.row(i)[c])) << i << "," << c;
    }
  }
}

TEST(SpatialJoinTest, PaperScenarioEndToEnd) {
  // Section 4's range-search strategy, executed with relational operators:
  //   P(p@, zp) := Points shuffled;  B(zb) := Decompose(Box);
  //   Result := (P[zp <> zb] B)[p@]
  const GridSpec grid{2, 5};
  util::Rng rng(207);

  // Points relation with full-resolution z values.
  Relation points(
      Schema({{"p_id", ValueType::kInt}, {"zp", ValueType::kZValue}}));
  std::vector<std::pair<uint32_t, uint32_t>> coords;
  for (int i = 0; i < 200; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.NextBelow(32));
    const uint32_t y = static_cast<uint32_t>(rng.NextBelow(32));
    coords.emplace_back(x, y);
    points.Add({static_cast<int64_t>(i), Shuffle2D(grid, x, y)});
  }

  // Query box relation, decomposed.
  const GridBox query = GridBox::Make2D(5, 20, 9, 27);
  ObjectCatalog catalog;
  const uint64_t box_id =
      catalog.Register(std::make_shared<BoxObject>(query));
  Relation box_rel(Schema({{"b_id", ValueType::kInt}}));
  box_rel.Add({static_cast<int64_t>(box_id)});
  const Relation elements =
      DecomposeRelation(grid, box_rel, "b_id", catalog, "zb");

  // Join and project.
  const Relation joined = SpatialJoin(points, "zp", elements, "zb");
  const std::string result_cols[] = {"p_id"};
  const Relation result = Project(joined, result_cols, /*deduplicate=*/true);

  // Reference: direct containment check.
  size_t expect = 0;
  for (const auto& [x, y] : coords) {
    if (x >= 5 && x <= 20 && y >= 9 && y <= 27) ++expect;
  }
  EXPECT_EQ(result.size(), expect);
}

}  // namespace
}  // namespace probe::relational
