#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/point.h"
#include "server/protocol.h"
#include "util/rng.h"

// Seeded fuzz driver for the wire codec. The decoder's contract is that it
// never crashes and never silently yields a wrong frame, whatever bytes
// arrive: truncations are kNeedMore, corruptions are classified Statuses,
// and a single flipped bit can never pass the CRC. The ASan/UBSan CI jobs
// run this test to hold the "no way to read out of bounds" claim of
// protocol.h under hostile input.

namespace probe::server {
namespace {

using probe::util::Rng;

std::vector<uint8_t> RandomPayload(Rng& rng, size_t max_len) {
  std::vector<uint8_t> bytes(rng.NextBelow(max_len + 1));
  for (auto& b : bytes) b = static_cast<uint8_t>(rng.Next());
  return bytes;
}

Frame RandomFrame(Rng& rng) {
  static constexpr FrameType kTypes[] = {
      FrameType::kHello,       FrameType::kRange,      FrameType::kBox,
      FrameType::kCount,       FrameType::kKnn,        FrameType::kExplain,
      FrameType::kPing,        FrameType::kGoodbye,    FrameType::kHelloOk,
      FrameType::kRangeResult, FrameType::kBoxResult,  FrameType::kCountResult,
      FrameType::kKnnResult,   FrameType::kExplainResult, FrameType::kPong,
      FrameType::kGoodbyeOk,   FrameType::kError,
  };
  Frame f;
  f.type = kTypes[rng.NextBelow(std::size(kTypes))];
  f.request_id = static_cast<uint32_t>(rng.Next());
  f.payload = RandomPayload(rng, 512);
  return f;
}

TEST(FuzzProtocolTest, RandomFramesRoundTrip) {
  Rng rng(0xF7A3E001);
  for (int iter = 0; iter < 2000; ++iter) {
    const Frame sent = RandomFrame(rng);
    std::vector<uint8_t> wire;
    EncodeFrame(sent, &wire);

    Frame got;
    size_t consumed = 0;
    Status error = Status::kOk;
    ASSERT_EQ(DecodeFrame(wire, &got, &consumed, &error), DecodeResult::kFrame);
    EXPECT_EQ(error, Status::kOk);
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(got.type, sent.type);
    EXPECT_EQ(got.request_id, sent.request_id);
    EXPECT_EQ(got.payload, sent.payload);
  }
}

TEST(FuzzProtocolTest, ConcatenatedFramesDecodeInOrder) {
  Rng rng(0xF7A3E002);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<Frame> sent;
    std::vector<uint8_t> wire;
    const size_t count = 1 + rng.NextBelow(8);
    for (size_t i = 0; i < count; ++i) {
      sent.push_back(RandomFrame(rng));
      EncodeFrame(sent.back(), &wire);
    }
    size_t off = 0;
    for (const Frame& expect : sent) {
      Frame got;
      size_t consumed = 0;
      Status error = Status::kOk;
      ASSERT_EQ(DecodeFrame(std::span<const uint8_t>(wire.data() + off,
                                                     wire.size() - off),
                            &got, &consumed, &error),
                DecodeResult::kFrame);
      EXPECT_EQ(error, Status::kOk);
      EXPECT_EQ(got.request_id, expect.request_id);
      EXPECT_EQ(got.payload, expect.payload);
      off += consumed;
    }
    EXPECT_EQ(off, wire.size());
  }
}

TEST(FuzzProtocolTest, EveryTruncationAsksForMoreBytes) {
  Rng rng(0xF7A3E003);
  for (int iter = 0; iter < 200; ++iter) {
    const Frame sent = RandomFrame(rng);
    std::vector<uint8_t> wire;
    EncodeFrame(sent, &wire);
    // Check every prefix when the frame is small, sampled prefixes when not.
    for (size_t len = 0; len < wire.size();
         len += (wire.size() > 128 ? 1 + rng.NextBelow(17) : 1)) {
      Frame got;
      size_t consumed = 1234;
      Status error = Status::kOk;
      EXPECT_EQ(DecodeFrame(std::span<const uint8_t>(wire.data(), len), &got,
                            &consumed, &error),
                DecodeResult::kNeedMore)
          << "prefix " << len << " of " << wire.size();
      EXPECT_EQ(consumed, 0u);
    }
  }
}

TEST(FuzzProtocolTest, SingleBitFlipNeverYieldsACleanFrame) {
  Rng rng(0xF7A3E004);
  for (int iter = 0; iter < 500; ++iter) {
    Frame sent = RandomFrame(rng);
    sent.payload = RandomPayload(rng, 64);
    std::vector<uint8_t> wire;
    EncodeFrame(sent, &wire);

    std::vector<uint8_t> flipped = wire;
    const size_t bit = rng.NextBelow(flipped.size() * 8);
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));

    Frame got;
    size_t consumed = 0;
    Status error = Status::kOk;
    const DecodeResult r = DecodeFrame(flipped, &got, &consumed, &error);
    // CRC32 detects every single-bit error; a flip that grows payload_len
    // may legitimately park the decoder at kNeedMore. What can never
    // happen is a clean (error-free) frame.
    EXPECT_FALSE(r == DecodeResult::kFrame && error == Status::kOk)
        << "bit " << bit << " flipped undetected";
  }
}

TEST(FuzzProtocolTest, OversizedLengthIsRejectedBeforeBuffering) {
  Rng rng(0xF7A3E005);
  for (int iter = 0; iter < 100; ++iter) {
    Frame sent = RandomFrame(rng);
    std::vector<uint8_t> wire;
    EncodeFrame(sent, &wire);
    // Overwrite payload_len (bytes 8..11) with a hostile length.
    const uint32_t hostile =
        kMaxPayloadBytes + 1 +
        static_cast<uint32_t>(rng.NextBelow(0x7FFFFFFF - kMaxPayloadBytes));
    for (int i = 0; i < 4; ++i) {
      wire[8 + static_cast<size_t>(i)] = static_cast<uint8_t>(hostile >> (8 * i));
    }
    Frame got;
    size_t consumed = 0;
    Status error = Status::kOk;
    EXPECT_EQ(DecodeFrame(wire, &got, &consumed, &error), DecodeResult::kError);
    EXPECT_EQ(error, Status::kOversized);
  }
}

TEST(FuzzProtocolTest, RandomGarbageNeverCrashes) {
  Rng rng(0xF7A3E006);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> garbage = RandomPayload(rng, 256);
    // Bias some iterations toward the magic so deeper header paths run.
    if (iter % 3 == 0 && garbage.size() >= 2) {
      garbage[0] = kMagic0;
      garbage[1] = kMagic1;
      if (iter % 6 == 0 && garbage.size() >= 3) garbage[2] = kProtocolVersion;
    }
    Frame got;
    size_t consumed = 0;
    Status error = Status::kOk;
    const DecodeResult r = DecodeFrame(garbage, &got, &consumed, &error);
    if (r == DecodeResult::kError) {
      EXPECT_NE(error, Status::kOk);
    }
    // 16 random CRC-consistent bytes are astronomically unlikely, but a
    // kFrame result is not *wrong* if the bytes happen to hold one.
  }
}

TEST(FuzzProtocolTest, HostileBytesToEveryParserNeverCrash) {
  Rng rng(0xF7A3E007);
  for (int iter = 0; iter < 3000; ++iter) {
    const std::vector<uint8_t> bytes = RandomPayload(rng, 128);
    const std::span<const uint8_t> payload(bytes);
    {
      HelloRequest m;
      HelloRequest::FromPayload(payload, &m);
    }
    {
      HelloResponse m;
      HelloResponse::FromPayload(payload, &m);
    }
    {
      RangeRequest m;
      RangeRequest::FromPayload(payload, &m);
    }
    {
      RangeResponse m;
      RangeResponse::FromPayload(payload, &m);
    }
    {
      BoxRequest m;
      BoxRequest::FromPayload(payload, &m);
    }
    {
      BoxResponse m;
      BoxResponse::FromPayload(payload, &m);
    }
    {
      CountRequest m;
      CountRequest::FromPayload(payload, &m);
    }
    {
      CountResponse m;
      CountResponse::FromPayload(payload, &m);
    }
    {
      KnnRequest m;
      KnnRequest::FromPayload(payload, &m);
    }
    {
      KnnResponse m;
      KnnResponse::FromPayload(payload, &m);
    }
    {
      ExplainRequest m;
      ExplainRequest::FromPayload(payload, &m);
    }
    {
      ExplainResponse m;
      ExplainResponse::FromPayload(payload, &m);
    }
    {
      ErrorResponse m;
      ErrorResponse::FromPayload(payload, &m);
    }
  }
}

TEST(FuzzProtocolTest, TypedMessagesRoundTripThroughFrames) {
  Rng rng(0xF7A3E008);
  for (int iter = 0; iter < 300; ++iter) {
    const uint32_t id = static_cast<uint32_t>(rng.Next());
    {
      RangeResponse sent;
      sent.ids.resize(rng.NextBelow(64));
      for (auto& v : sent.ids) v = rng.Next();
      RangeResponse got;
      ASSERT_TRUE(RangeResponse::FromPayload(sent.ToFrame(id).payload, &got));
      EXPECT_EQ(got.ids, sent.ids);
    }
    {
      const int dims = 2 + static_cast<int>(rng.NextBelow(3));
      BoxResponse sent;
      sent.rows.resize(rng.NextBelow(32));
      for (auto& row : sent.rows) {
        row.id = rng.Next();
        uint32_t coords[8];
        for (int d = 0; d < dims; ++d) {
          coords[d] = static_cast<uint32_t>(rng.NextBelow(256));
        }
        row.point = geometry::GridPoint(
            std::span<const uint32_t>(coords, static_cast<size_t>(dims)));
      }
      BoxResponse got;
      ASSERT_TRUE(BoxResponse::FromPayload(sent.ToFrame(id).payload, &got));
      ASSERT_EQ(got.rows.size(), sent.rows.size());
      for (size_t i = 0; i < got.rows.size(); ++i) {
        EXPECT_EQ(got.rows[i].id, sent.rows[i].id);
        EXPECT_EQ(got.rows[i].point, sent.rows[i].point);
      }
    }
    {
      KnnResponse sent;
      sent.neighbors.resize(rng.NextBelow(32));
      for (auto& n : sent.neighbors) {
        n.id = rng.Next();
        n.distance2 = rng.Next();
      }
      KnnResponse got;
      ASSERT_TRUE(KnnResponse::FromPayload(sent.ToFrame(id).payload, &got));
      ASSERT_EQ(got.neighbors.size(), sent.neighbors.size());
      for (size_t i = 0; i < got.neighbors.size(); ++i) {
        EXPECT_EQ(got.neighbors[i].id, sent.neighbors[i].id);
        EXPECT_EQ(got.neighbors[i].distance2, sent.neighbors[i].distance2);
      }
    }
    {
      ExplainResponse sent;
      sent.text.assign(rng.NextBelow(200), 'x');
      ExplainResponse got;
      ASSERT_TRUE(ExplainResponse::FromPayload(sent.ToFrame(id).payload, &got));
      EXPECT_EQ(got.text, sent.text);
    }
    {
      ErrorResponse sent;
      sent.status = Status::kBusy;
      sent.message.assign(rng.NextBelow(100), 'e');
      ErrorResponse got;
      ASSERT_TRUE(ErrorResponse::FromPayload(sent.ToFrame(id).payload, &got));
      EXPECT_EQ(got.status, sent.status);
      EXPECT_EQ(got.message, sent.message);
    }
  }
}

TEST(FuzzProtocolTest, TruncatedTypedPayloadsFailCleanly) {
  Rng rng(0xF7A3E009);
  for (int iter = 0; iter < 100; ++iter) {
    HelloRequest hello;
    hello.max_element_depth = static_cast<int32_t>(rng.Next());
    hello.client_name.assign(1 + rng.NextBelow(32), 'c');
    const std::vector<uint8_t> payload = hello.ToFrame(0).payload;
    for (size_t len = 0; len < payload.size(); ++len) {
      HelloRequest out;
      EXPECT_FALSE(HelloRequest::FromPayload(
          std::span<const uint8_t>(payload.data(), len), &out))
          << "prefix " << len;
    }

    CountResponse count;
    count.count = rng.Next();
    const std::vector<uint8_t> cp = count.ToFrame(0).payload;
    for (size_t len = 0; len < cp.size(); ++len) {
      CountResponse out;
      EXPECT_FALSE(CountResponse::FromPayload(
          std::span<const uint8_t>(cp.data(), len), &out));
    }
  }
}

TEST(FuzzProtocolTest, MalformedBoxesAreRejectedNotAsserted) {
  // lo > hi must fail the parse (GridBox's constructor would assert).
  PayloadWriter w;
  w.U8(2);
  w.U32(10);
  w.U32(5);  // lo > hi in dimension 0
  w.U32(0);
  w.U32(1);
  const std::vector<uint8_t> bytes = w.Take();
  RangeRequest out;
  EXPECT_FALSE(RangeRequest::FromPayload(bytes, &out));

  // dims outside [1, kMaxDims] must fail, not index out of bounds.
  for (const uint8_t dims : {uint8_t{0}, uint8_t{9}, uint8_t{255}}) {
    PayloadWriter bad;
    bad.U8(dims);
    for (int i = 0; i < 16; ++i) bad.U32(0);
    RangeRequest reject;
    EXPECT_FALSE(RangeRequest::FromPayload(bad.Take(), &reject));
  }
}

}  // namespace
}  // namespace probe::server
