#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

// ThreadPool::Shutdown: the graceful drain-then-join path the server's
// Stop() depends on. The contract under test:
//
//   * drain path  — everything queued at shutdown time runs; returns true;
//   * deadline    — a wedged task cannot hold shutdown past ~deadline;
//     queued-but-never-started tasks are shed and their futures break;
//   * afterlife   — submissions after shutdown run inline (nothing is
//     silently dropped), and Shutdown is idempotent.

namespace probe::util {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

TEST(ThreadPoolShutdownTest, DrainsQueuedTasksBeforeReturning) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  futures.reserve(64);
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&ran]() {
      std::this_thread::sleep_for(milliseconds(1));
      ran.fetch_add(1);
    }));
  }
  EXPECT_TRUE(pool.Shutdown(milliseconds(10000)));
  EXPECT_EQ(ran.load(), 64);
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

TEST(ThreadPoolShutdownTest, DeadlineBoundsShutdownAndBreaksShedFutures) {
  ThreadPool pool(1);  // one worker: the wedge blocks everything behind it
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();

  std::atomic<bool> started{false};
  auto wedged = pool.Submit([gate, &started]() {
    started.store(true);
    gate.wait();
  });
  // Make sure the worker is wedged *inside* the task before queueing the
  // victims, so exactly the 8 queued tasks get shed.
  while (!started.load()) std::this_thread::yield();
  std::vector<std::future<void>> shed;
  shed.reserve(8);
  for (int i = 0; i < 8; ++i) {
    shed.push_back(pool.Submit([]() {}));
  }

  // Shutdown joins the workers, so the wedge must be released by a timer
  // thread — after the deadline has certainly passed.
  std::thread releaser([&release]() {
    std::this_thread::sleep_for(milliseconds(200));
    release.set_value();
  });
  EXPECT_FALSE(pool.Shutdown(milliseconds(50)));
  releaser.join();

  int broken = 0;
  for (auto& f : shed) {
    try {
      f.get();
    } catch (const std::future_error& e) {
      EXPECT_EQ(e.code(), std::make_error_code(std::future_errc::broken_promise));
      ++broken;
    }
  }
  // Every task that never started was shed; the single worker can have
  // started at most zero of them while wedged.
  EXPECT_EQ(broken, 8);
  EXPECT_NO_THROW(wedged.get());
}

TEST(ThreadPoolShutdownTest, DeadlineElapsesWhileTaskRuns) {
  ThreadPool pool(2);
  std::atomic<bool> stop{false};
  auto slow = pool.Submit([&stop]() {
    while (!stop.load()) std::this_thread::sleep_for(milliseconds(1));
  });

  // Release the wedge from a timer thread so Shutdown's join can finish.
  std::thread releaser([&stop]() {
    std::this_thread::sleep_for(milliseconds(200));
    stop.store(true);
  });
  const auto start = steady_clock::now();
  EXPECT_FALSE(pool.Shutdown(milliseconds(20)));
  const auto elapsed = steady_clock::now() - start;
  releaser.join();
  EXPECT_NO_THROW(slow.get());
  // Bounded by deadline + the in-flight task's remaining runtime (~200ms),
  // with generous slack for CI scheduling.
  EXPECT_LT(elapsed, milliseconds(5000));
}

TEST(ThreadPoolShutdownTest, SubmitAfterShutdownRunsInline) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.Shutdown(milliseconds(1000)));
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on{};
  auto f = pool.Submit([&ran_on]() { ran_on = std::this_thread::get_id(); });
  f.get();
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolShutdownTest, IsIdempotent) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.Shutdown(milliseconds(1000)));
  EXPECT_TRUE(pool.Shutdown(milliseconds(1000)));
  EXPECT_TRUE(pool.Shutdown(milliseconds(0)));
}

TEST(ThreadPoolShutdownTest, ParallelForAfterShutdownDegradesToSerial) {
  ThreadPool pool(4);
  EXPECT_TRUE(pool.Shutdown(milliseconds(1000)));
  std::atomic<size_t> sum{0};
  pool.ParallelFor(100, [&sum](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolShutdownTest, ShutdownWithIdlePoolReturnsImmediately) {
  ThreadPool pool(4);
  const auto start = steady_clock::now();
  EXPECT_TRUE(pool.Shutdown(milliseconds(10000)));
  EXPECT_LT(steady_clock::now() - start, milliseconds(5000));
}

TEST(ThreadPoolShutdownTest, ConcurrentSubmittersDuringShutdownLoseNoWork) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> submitters;
  submitters.reserve(4);
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &ran, &go]() {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 50; ++i) {
        pool.Submit([&ran]() { ran.fetch_add(1); }).get();
      }
    });
  }
  go.store(true);
  std::this_thread::sleep_for(milliseconds(5));
  pool.Shutdown(milliseconds(10000));
  for (auto& t : submitters) t.join();
  // Every Submit either ran on the pool (pre-drain) or inline (post-drain);
  // .get() would have thrown had any been dropped.
  EXPECT_EQ(ran.load(), 200);
}

}  // namespace
}  // namespace probe::util
