#include "zorder/fast_interleave.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "zorder/shuffle.h"

namespace probe::zorder {
namespace {

// Reference bit-by-bit interleave for the equivalence checks.
uint64_t SlowEncode2(uint32_t x, uint32_t y, int bits) {
  uint64_t z = 0;
  for (int b = bits - 1; b >= 0; --b) {
    z = (z << 1) | ((x >> b) & 1);
    z = (z << 1) | ((y >> b) & 1);
  }
  return z;
}

uint64_t SlowEncode3(uint32_t x, uint32_t y, uint32_t w, int bits) {
  uint64_t z = 0;
  for (int b = bits - 1; b >= 0; --b) {
    z = (z << 1) | ((x >> b) & 1);
    z = (z << 1) | ((y >> b) & 1);
    z = (z << 1) | ((w >> b) & 1);
  }
  return z;
}

TEST(FastInterleaveTest, SpreadGatherRoundTrip2) {
  util::Rng rng(6100);
  for (int t = 0; t < 2000; ++t) {
    const uint32_t x = static_cast<uint32_t>(rng.Next());
    EXPECT_EQ(GatherBits2(SpreadBits2(x)), x);
  }
}

TEST(FastInterleaveTest, SpreadGatherRoundTrip3) {
  util::Rng rng(6200);
  for (int t = 0; t < 2000; ++t) {
    const uint32_t x = static_cast<uint32_t>(rng.Next()) & 0x1FFFFF;
    EXPECT_EQ(GatherBits3(SpreadBits3(x)), x);
  }
}

TEST(FastInterleaveTest, Encode2MatchesBitByBit) {
  util::Rng rng(6300);
  for (const int bits : {1, 4, 10, 16, 24, 32}) {
    const uint64_t mask = bits == 32 ? ~0u : ((1u << bits) - 1);
    for (int t = 0; t < 500; ++t) {
      const uint32_t x = static_cast<uint32_t>(rng.Next()) & mask;
      const uint32_t y = static_cast<uint32_t>(rng.Next()) & mask;
      EXPECT_EQ(MortonEncode2(x, y, bits), SlowEncode2(x, y, bits))
          << x << "," << y << " bits=" << bits;
      uint32_t dx, dy;
      MortonDecode2(MortonEncode2(x, y, bits), bits, &dx, &dy);
      EXPECT_EQ(dx, x);
      EXPECT_EQ(dy, y);
    }
  }
}

TEST(FastInterleaveTest, Encode3MatchesBitByBit) {
  util::Rng rng(6400);
  for (const int bits : {1, 5, 12, 21}) {
    const uint32_t mask = (1u << bits) - 1;
    for (int t = 0; t < 500; ++t) {
      const uint32_t x = static_cast<uint32_t>(rng.Next()) & mask;
      const uint32_t y = static_cast<uint32_t>(rng.Next()) & mask;
      const uint32_t w = static_cast<uint32_t>(rng.Next()) & mask;
      EXPECT_EQ(MortonEncode3(x, y, w, bits), SlowEncode3(x, y, w, bits));
      uint32_t dx, dy, dw;
      MortonDecode3(MortonEncode3(x, y, w, bits), bits, &dx, &dy, &dw);
      EXPECT_EQ(dx, x);
      EXPECT_EQ(dy, y);
      EXPECT_EQ(dw, w);
    }
  }
}

TEST(FastInterleaveTest, Bmi2AndPortablePathsAgree) {
  // The BMI2 PDEP/PEXT variants must be bit-identical to the portable
  // magic-constant code; the unsuffixed dispatchers must agree with both.
  // On machines without BMI2 only the portable/dispatcher half runs.
  util::Rng rng(6600);
  for (int t = 0; t < 5000; ++t) {
    const uint32_t x2 = static_cast<uint32_t>(rng.Next());
    const uint32_t x3 = x2 & 0x1FFFFF;
    const uint64_t z = rng.Next();

    EXPECT_EQ(SpreadBits2(x2), SpreadBits2Portable(x2));
    EXPECT_EQ(GatherBits2(z), GatherBits2Portable(z));
    EXPECT_EQ(SpreadBits3(x3), SpreadBits3Portable(x3));
    EXPECT_EQ(GatherBits3(z), GatherBits3Portable(z));

    if (HasBmi2()) {
      EXPECT_EQ(SpreadBits2Bmi2(x2), SpreadBits2Portable(x2)) << x2;
      EXPECT_EQ(GatherBits2Bmi2(z), GatherBits2Portable(z)) << z;
      EXPECT_EQ(SpreadBits3Bmi2(x3), SpreadBits3Portable(x3)) << x3;
      EXPECT_EQ(GatherBits3Bmi2(z), GatherBits3Portable(z)) << z;
    }
  }
}

TEST(FastInterleaveTest, Bmi2EdgeValues) {
  if (!HasBmi2()) GTEST_SKIP() << "no BMI2 on this CPU";
  for (const uint32_t x : {0u, 1u, 0xFFFFFFFFu, 0x80000001u, 0x55555555u,
                           0xAAAAAAAAu}) {
    EXPECT_EQ(SpreadBits2Bmi2(x), SpreadBits2Portable(x));
    EXPECT_EQ(SpreadBits3Bmi2(x & 0x1FFFFF), SpreadBits3Portable(x));
  }
  for (const uint64_t z : {0ULL, ~0ULL, 0x5555555555555555ULL,
                           0xAAAAAAAAAAAAAAAAULL, 0x1249249249249249ULL}) {
    EXPECT_EQ(GatherBits2Bmi2(z), GatherBits2Portable(z));
    EXPECT_EQ(GatherBits3Bmi2(z), GatherBits3Portable(z));
  }
}

TEST(FastInterleaveTest, ShuffleDispatchesToFastPathConsistently) {
  // Shuffle/Unshuffle must give identical results whether or not the fast
  // path applies; a custom schedule equal to the default alternation
  // forces the generic loop, giving us both sides to compare.
  for (const int dims : {2, 3}) {
    const int bits = dims == 2 ? 13 : 9;
    const GridSpec fast{dims, bits};
    std::vector<int> schedule;
    for (int j = 0; j < dims * bits; ++j) schedule.push_back(j % dims);
    const GridSpec generic = GridSpec::WithSchedule(dims, bits, schedule);
    util::Rng rng(6500 + dims);
    for (int t = 0; t < 500; ++t) {
      std::vector<uint32_t> coords(dims);
      for (int d = 0; d < dims; ++d) {
        coords[d] = static_cast<uint32_t>(rng.NextBelow(fast.side()));
      }
      const ZValue a = Shuffle(fast, coords);
      const ZValue b = Shuffle(generic, coords);
      EXPECT_EQ(a, b);
      EXPECT_EQ(Unshuffle(fast, a), coords);
    }
  }
}

}  // namespace
}  // namespace probe::zorder
