/// \file
/// Deterministic fuzz driver for BIGMIN / LITMAX / InBox.
///
/// The oracle is the *decomposition* of the same box: a box's elements are
/// disjoint z intervals whose union is exactly the box's cells (Section 3),
/// so the smallest in-box z value greater than zcur is computable directly
/// from the interval list. Cross-checking BigMin against it validates the
/// two implementations against each other — a bug would have to appear
/// identically in both bit-twiddling paths to slip through. Seeded with
/// util::Rng, so every run explores the same 10,000 cases; under UBSan
/// (scripts/check.sh) each case also shakes out shift and conversion UB.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "decompose/decomposer.h"
#include "geometry/box.h"
#include "util/rng.h"
#include "zorder/audit.h"
#include "zorder/bigmin.h"
#include "zorder/grid.h"
#include "zorder/shuffle.h"
#include "zorder/zvalue.h"

namespace probe {
namespace {

using geometry::GridBox;
using zorder::DimRange;
using zorder::GridSpec;
using zorder::ZValue;

constexpr int kCases = 10000;

struct Interval {
  uint64_t lo;
  uint64_t hi;
};

std::vector<Interval> ElementIntervals(const GridSpec& grid,
                                       const std::vector<ZValue>& elements) {
  std::vector<Interval> out;
  out.reserve(elements.size());
  for (const ZValue& e : elements) {
    out.push_back({e.RangeLo(grid.total_bits()), e.RangeHi(grid.total_bits())});
  }
  return out;
}

// Smallest in-box z value > zcur, from the interval list.
std::optional<uint64_t> OracleBigMin(const std::vector<Interval>& intervals,
                                     uint64_t zcur) {
  for (const Interval& iv : intervals) {  // intervals are ascending
    if (iv.hi <= zcur) continue;
    return std::max(iv.lo, zcur + 1);
  }
  return std::nullopt;
}

// Largest in-box z value < zcur.
std::optional<uint64_t> OracleLitMax(const std::vector<Interval>& intervals,
                                     uint64_t zcur) {
  std::optional<uint64_t> best;
  for (const Interval& iv : intervals) {
    if (iv.lo >= zcur) break;
    best = std::min(iv.hi, zcur - 1);
  }
  return best;
}

bool OracleInBox(const std::vector<Interval>& intervals, uint64_t z) {
  for (const Interval& iv : intervals) {
    if (z >= iv.lo && z <= iv.hi) return true;
  }
  return false;
}

TEST(FuzzBigMin, MatchesDecompositionOracle) {
  util::Rng rng(0xB16B16Bu);
  for (int c = 0; c < kCases; ++c) {
    GridSpec grid;
    grid.dims = static_cast<int>(1 + rng.NextBelow(3));
    grid.bits_per_dim = static_cast<int>(1 + rng.NextBelow(
                            static_cast<uint64_t>(16 / grid.dims)));
    ASSERT_TRUE(grid.Valid());

    std::vector<DimRange> ranges(static_cast<size_t>(grid.dims));
    std::vector<uint32_t> lo_coords, hi_coords;
    for (auto& r : ranges) {
      uint64_t a = rng.NextBelow(grid.side());
      uint64_t b = rng.NextBelow(grid.side());
      if (a > b) std::swap(a, b);
      r.lo = static_cast<uint32_t>(a);
      r.hi = static_cast<uint32_t>(b);
      lo_coords.push_back(r.lo);
      hi_coords.push_back(r.hi);
    }
    const GridBox box(ranges);
    const uint64_t zmin = zorder::Shuffle(grid, lo_coords).ToInteger();
    const uint64_t zmax = zorder::Shuffle(grid, hi_coords).ToInteger();

    const std::vector<ZValue> elements = decompose::DecomposeBox(grid, box);
    // The oracle itself is audited: strictly ascending, disjoint, and
    // covering exactly the box's volume.
    zorder::AuditElementCover(grid, elements,
                              static_cast<int64_t>(box.Volume()),
                              /*max_elements=*/0);
    const std::vector<Interval> intervals = ElementIntervals(grid, elements);

    const uint64_t zcur = rng.NextBelow(grid.cell_count());

    ASSERT_EQ(zorder::InBox(grid, zcur, zmin, zmax),
              OracleInBox(intervals, zcur))
        << "InBox mismatch, case " << c << " box " << box.ToString();

    uint64_t got = 0;
    const bool found = zorder::BigMin(grid, zcur, zmin, zmax, &got);
    zorder::AuditBigMinResult(grid, zcur, zmin, zmax, found, got,
                              /*is_bigmin=*/true);
    const std::optional<uint64_t> want = OracleBigMin(intervals, zcur);
    ASSERT_EQ(found, want.has_value())
        << "BigMin existence mismatch, case " << c;
    if (found) {
      ASSERT_EQ(got, *want) << "BigMin not minimal, case " << c << " box "
                            << box.ToString() << " zcur " << zcur;
    }

    const bool lfound = zorder::LitMax(grid, zcur, zmin, zmax, &got);
    zorder::AuditBigMinResult(grid, zcur, zmin, zmax, lfound, got,
                              /*is_bigmin=*/false);
    const std::optional<uint64_t> lwant = OracleLitMax(intervals, zcur);
    ASSERT_EQ(lfound, lwant.has_value())
        << "LitMax existence mismatch, case " << c;
    if (lfound) {
      ASSERT_EQ(got, *lwant) << "LitMax not maximal, case " << c;
    }
  }
}

// Degenerate geometries get a dedicated sweep: single-cell boxes, full-grid
// boxes, and zcur pinned to the box corners — the off-by-one hot spots.
TEST(FuzzBigMin, EdgeGeometries) {
  util::Rng rng(0xED6E);
  for (int c = 0; c < kCases; ++c) {
    GridSpec grid;
    grid.dims = static_cast<int>(1 + rng.NextBelow(3));
    grid.bits_per_dim = static_cast<int>(1 + rng.NextBelow(
                            static_cast<uint64_t>(16 / grid.dims)));

    std::vector<DimRange> ranges(static_cast<size_t>(grid.dims));
    const int shape = static_cast<int>(rng.NextBelow(3));
    for (auto& r : ranges) {
      if (shape == 0) {  // single cell
        r.lo = r.hi = static_cast<uint32_t>(rng.NextBelow(grid.side()));
      } else if (shape == 1) {  // whole grid
        r.lo = 0;
        r.hi = static_cast<uint32_t>(grid.side() - 1);
      } else {  // one-cell-thick slab
        r.lo = static_cast<uint32_t>(rng.NextBelow(grid.side()));
        r.hi = r.lo;
        if (rng.NextBelow(2) == 0) {
          r.lo = 0;
          r.hi = static_cast<uint32_t>(grid.side() - 1);
        }
      }
    }
    std::vector<uint32_t> lo_coords, hi_coords;
    for (const auto& r : ranges) {
      lo_coords.push_back(r.lo);
      hi_coords.push_back(r.hi);
    }
    const GridBox box(ranges);
    const uint64_t zmin = zorder::Shuffle(grid, lo_coords).ToInteger();
    const uint64_t zmax = zorder::Shuffle(grid, hi_coords).ToInteger();
    const std::vector<Interval> intervals =
        ElementIntervals(grid, decompose::DecomposeBox(grid, box));

    // Probe the exact boundary z values and their neighbours.
    const uint64_t last = grid.cell_count() - 1;
    const uint64_t probes[] = {0,
                               zmin,
                               zmin == 0 ? 0 : zmin - 1,
                               zmax,
                               zmax == last ? last : zmax + 1,
                               last};
    for (const uint64_t zcur : probes) {
      uint64_t got = 0;
      const bool found = zorder::BigMin(grid, zcur, zmin, zmax, &got);
      zorder::AuditBigMinResult(grid, zcur, zmin, zmax, found, got, true);
      const std::optional<uint64_t> want = OracleBigMin(intervals, zcur);
      ASSERT_EQ(found, want.has_value());
      if (found) ASSERT_EQ(got, *want);

      const bool lfound = zorder::LitMax(grid, zcur, zmin, zmax, &got);
      zorder::AuditBigMinResult(grid, zcur, zmin, zmax, lfound, got, false);
      const std::optional<uint64_t> lwant = OracleLitMax(intervals, zcur);
      ASSERT_EQ(lfound, lwant.has_value());
      if (lfound) ASSERT_EQ(got, *lwant);
    }
  }
}

}  // namespace
}  // namespace probe
