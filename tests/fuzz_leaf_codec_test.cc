// Seeded fuzz drivers for the compressed leaf format.
//
// Two payloads: (1) 10k random sorted key sets round-tripped through
// V2Encode/V2Decode against the std::vector oracle that produced them —
// random key lengths, duplicate runs, extreme payloads; (2) random
// insert/delete sequences on a compressed-format tree checked against a
// multiset model, which drives v2 page splits, merges, and redistributes
// through every admission boundary. Runs under the `fuzz` ctest label, so
// the UBSan/ASan passes in scripts/check.sh sweep the codec's
// bit-twiddling paths.

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "btree/btree.h"
#include "btree/leaf_codec.h"
#include "btree/node.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/pager.h"
#include "util/rng.h"
#include "zorder/zvalue.h"

namespace probe::btree {
namespace {

using zorder::ZValue;

ZKey RandomKey(util::Rng& rng, int max_len) {
  const int len = 1 + static_cast<int>(rng.NextBelow(
                          static_cast<uint64_t>(max_len)));
  const uint64_t bits =
      len == 64 ? rng.Next() : rng.Next() & ((1ULL << len) - 1);
  return ZKey::FromZValue(ZValue::FromInteger(bits, len));
}

TEST(FuzzLeafCodecTest, RandomKeySetsRoundTrip) {
  util::Rng rng(0x1eaf);
  int encoded_sets = 0;
  for (int iter = 0; iter < 10000; ++iter) {
    const size_t count = rng.NextBelow(120);
    std::vector<LeafEntry> oracle;
    oracle.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      // Occasionally duplicate the previous key (duplicate payload runs).
      if (!oracle.empty() && rng.NextBelow(8) == 0) {
        oracle.push_back(LeafEntry{oracle.back().key, rng.Next()});
      } else {
        oracle.push_back(LeafEntry{RandomKey(rng, 40), rng.Next()});
      }
    }
    std::stable_sort(oracle.begin(), oracle.end(),
                     [](const LeafEntry& a, const LeafEntry& b) {
                       return a.key < b.key;
                     });
    if (!V2Admits(oracle)) continue;
    ++encoded_sets;

    storage::Page page;
    const size_t used = V2Encode(&page, oracle, iter % 97);
    ASSERT_LE(used, storage::Page::kSize);
    ASSERT_LE(used, V2WorstSize(oracle));

    std::vector<LeafEntry> decoded;
    ASSERT_EQ(V2Decode(page, &decoded), static_cast<int>(oracle.size()));
    for (size_t i = 0; i < oracle.size(); ++i) {
      ASSERT_EQ(decoded[i].key, oracle[i].key) << "iter " << iter << " i " << i;
      ASSERT_EQ(decoded[i].payload, oracle[i].payload)
          << "iter " << iter << " i " << i;
    }
    if (!oracle.empty()) {
      ASSERT_EQ(V2FirstKey(page), oracle.front().key);
      ASSERT_EQ(V2LastKey(page), oracle.back().key);
    }
  }
  // The generator must actually exercise the encoder, not skip everything.
  EXPECT_GT(encoded_sets, 8000);
}

TEST(FuzzLeafCodecTest, RandomInsertDeleteSequencesOnV2Pages) {
  util::Rng rng(0x2eaf);
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 256);
  BTreeConfig config = BTreeConfig::Compressed();
  // A small capacity forces frequent splits/merges so the page-level
  // encode/re-encode paths run constantly.
  config.leaf_capacity = 48;
  BTree tree(&pool, config);

  std::multiset<std::pair<ZKey, uint64_t>> model;
  for (int op = 0; op < 6000; ++op) {
    if (model.empty() || rng.NextBelow(3) != 0) {
      const ZKey key = RandomKey(rng, 24);
      const uint64_t payload = rng.NextBelow(1 << 20);
      tree.Insert(key, payload);
      model.emplace(key, payload);
    } else {
      auto victim = model.begin();
      std::advance(victim, static_cast<long>(rng.NextBelow(model.size())));
      ASSERT_TRUE(tree.Delete(victim->first, victim->second));
      model.erase(victim);
    }
    if (op % 500 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();

  ASSERT_EQ(tree.size(), model.size());
  BTree::Cursor cursor(&tree);
  auto expect = model.begin();
  if (cursor.SeekFirst()) {
    do {
      ASSERT_NE(expect, model.end());
      ASSERT_EQ(cursor.entry().key, expect->first);
      ++expect;
    } while (cursor.Next());
  }
  ASSERT_EQ(expect, model.end());
}

}  // namespace
}  // namespace probe::btree
