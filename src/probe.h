#ifndef PROBE_PROBE_H_
#define PROBE_PROBE_H_

/// \file
/// Umbrella header: the complete public API of probe-spatial.
///
/// Fine-grained includes are preferred in library code (include what you
/// use); this header is a convenience for applications and exploratory
/// programs. See docs/TUTORIAL.md for a guided tour.

#include "ag/connected.h"
#include "ag/interference.h"
#include "ag/merge.h"
#include "ag/overlay.h"
#include "ag/setops.h"
#include "baseline/bucket_kdtree.h"
#include "baseline/composite_index.h"
#include "baseline/kdtree.h"
#include "btree/btree.h"
#include "btree/external_sort.h"
#include "btree/node.h"
#include "btree/zkey.h"
#include "decompose/analysis.h"
#include "decompose/coarsen.h"
#include "decompose/decomposer.h"
#include "decompose/generator.h"
#include "geometry/box.h"
#include "geometry/csg.h"
#include "geometry/object.h"
#include "geometry/point.h"
#include "geometry/polygon.h"
#include "geometry/primitives.h"
#include "geometry/raster.h"
#include "index/cost_model.h"
#include "index/nearest.h"
#include "index/object_index.h"
#include "index/zkd_index.h"
#include "relational/catalog.h"
#include "relational/heap_file.h"
#include "relational/operators.h"
#include "relational/relation.h"
#include "relational/spatial_join.h"
#include "relational/value.h"
#include "storage/buffer_pool.h"
#include "storage/file_pager.h"
#include "storage/page.h"
#include "storage/pager.h"
#include "util/bits.h"
#include "util/ppm.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/datagen.h"
#include "workload/experiment.h"
#include "workload/querygen.h"
#include "zorder/bigmin.h"
#include "zorder/curve.h"
#include "zorder/fast_interleave.h"
#include "zorder/grid.h"
#include "zorder/shuffle.h"
#include "zorder/zvalue.h"

#endif  // PROBE_PROBE_H_
