#ifndef PROBE_GEOMETRY_OBJECT_H_
#define PROBE_GEOMETRY_OBJECT_H_

#include <string>

#include "geometry/box.h"

/// \file
/// The classifier interface that drives decomposition.
///
/// Section 3.1: the decomposition algorithm for boxes "generalizes
/// immediately to an algorithm for the decomposition of arbitrary spatial
/// objects. All that is required is a procedure that indicates whether a
/// given element is inside a given spatial object, outside the object, or
/// crosses the boundary of the object." SpatialObject is that procedure.

namespace probe::geometry {

/// Relation of a candidate grid region to a spatial object.
enum class RegionClass {
  /// Every cell of the region is inside (or on the boundary of) the object.
  kInside,
  /// No cell of the region is inside the object.
  kOutside,
  /// The region contains both inside and outside cells.
  kCrossing,
};

/// A k-dimensional spatial object, approximated on the grid by noting which
/// cells lie inside or on its boundary (Section 3.1).
///
/// Implementations may classify conservatively: reporting kCrossing for a
/// region that is in fact wholly inside or outside is allowed (it only
/// costs extra splitting), but kInside/kOutside must be exact.
class SpatialObject {
 public:
  virtual ~SpatialObject() = default;

  /// Dimensionality of the object.
  virtual int dims() const = 0;

  /// Classifies the axis-aligned region against the object.
  virtual RegionClass Classify(const GridBox& region) const = 0;

  /// True iff the single cell at `p` is inside or on the boundary. The
  /// default routes through Classify on a one-cell box; implementations may
  /// override with something cheaper.
  virtual bool ContainsCell(const GridPoint& p) const {
    return Classify(GridBox::FromPoint(p)) == RegionClass::kInside;
  }

  /// Human-readable description for traces and examples.
  virtual std::string Describe() const = 0;
};

}  // namespace probe::geometry

#endif  // PROBE_GEOMETRY_OBJECT_H_
