#ifndef PROBE_GEOMETRY_PRIMITIVES_H_
#define PROBE_GEOMETRY_PRIMITIVES_H_

#include <cstdint>
#include <memory>
#include <string>

#include "geometry/object.h"

/// \file
/// Primitive spatial objects: boxes, balls, and half-spaces.
///
/// Boxes are the paper's canonical decomposition target (Figure 2 and the
/// range-search reduction); balls and half-spaces exercise the "arbitrary
/// spatial object" claim and feed the Section 6 algorithms.

namespace probe::geometry {

/// An axis-aligned box object: the query region of a range query.
class BoxObject final : public SpatialObject {
 public:
  explicit BoxObject(const GridBox& box) : box_(box) {}

  int dims() const override { return box_.dims(); }
  RegionClass Classify(const GridBox& region) const override;
  bool ContainsCell(const GridPoint& p) const override {
    return box_.ContainsPoint(p);
  }
  std::string Describe() const override { return "box " + box_.ToString(); }

  const GridBox& box() const { return box_; }

 private:
  GridBox box_;
};

/// A k-dimensional ball: cells whose centers lie within `radius` of the
/// center point (coordinates in cell units; cell (i,...) has center
/// (i+0.5,...)).
class BallObject final : public SpatialObject {
 public:
  /// `center` and `radius` are in continuous cell coordinates.
  BallObject(std::vector<double> center, double radius);

  int dims() const override { return static_cast<int>(center_.size()); }
  RegionClass Classify(const GridBox& region) const override;
  bool ContainsCell(const GridPoint& p) const override;
  std::string Describe() const override;

 private:
  std::vector<double> center_;
  double radius_;
};

/// A capsule: all cells whose centers lie within `radius` of the segment
/// from `a` to `b` (continuous cell coordinates). The natural model for
/// linear features with width — roads, rivers, wire traces — in the
/// cartographic applications the paper targets.
class CapsuleObject final : public SpatialObject {
 public:
  /// Endpoints and radius in continuous cell coordinates; any dimension
  /// (endpoints must agree in size).
  CapsuleObject(std::vector<double> a, std::vector<double> b, double radius);

  int dims() const override { return static_cast<int>(a_.size()); }
  RegionClass Classify(const GridBox& region) const override;
  bool ContainsCell(const GridPoint& p) const override;
  std::string Describe() const override;

 private:
  // Squared distance from point `p` (size dims) to the segment.
  double SegmentDistance2(const double* p) const;

  std::vector<double> a_;
  std::vector<double> b_;
  double radius_;
};

/// A half-space a . x <= b over continuous cell-center coordinates.
class HalfSpaceObject final : public SpatialObject {
 public:
  HalfSpaceObject(std::vector<double> normal, double offset);

  int dims() const override { return static_cast<int>(normal_.size()); }
  RegionClass Classify(const GridBox& region) const override;
  bool ContainsCell(const GridPoint& p) const override;
  std::string Describe() const override;

 private:
  std::vector<double> normal_;
  double offset_;
};

}  // namespace probe::geometry

#endif  // PROBE_GEOMETRY_PRIMITIVES_H_
