#include "geometry/point.h"

namespace probe::geometry {

std::string GridPoint::ToString() const {
  std::string out = "(";
  for (int i = 0; i < dims_; ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(coords_[i]);
  }
  out += ")";
  return out;
}

}  // namespace probe::geometry
