#ifndef PROBE_GEOMETRY_POLYGON_H_
#define PROBE_GEOMETRY_POLYGON_H_

#include <string>
#include <vector>

#include "geometry/object.h"

/// \file
/// Simple polygons over the 2-d grid.
///
/// Polygons are the workhorse of the geographic applications that motivate
/// the paper (cartography, polygon overlay in Section 6). A cell belongs to
/// the polygon when its center is inside (even-odd rule) — the grid
/// approximation of Section 3.1.

namespace probe::geometry {

/// A 2-d point in continuous cell coordinates.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

/// A simple (non-self-intersecting) polygon; vertices in order, implicitly
/// closed. Membership of a grid cell is decided by its center under the
/// even-odd rule, so non-convex polygons work.
class PolygonObject final : public SpatialObject {
 public:
  /// Requires at least 3 vertices.
  explicit PolygonObject(std::vector<Vec2> vertices);

  int dims() const override { return 2; }
  RegionClass Classify(const GridBox& region) const override;
  bool ContainsCell(const GridPoint& p) const override;
  std::string Describe() const override;

  const std::vector<Vec2>& vertices() const { return vertices_; }

  /// Even-odd point-in-polygon test on continuous coordinates.
  bool ContainsContinuous(double x, double y) const;

 private:
  std::vector<Vec2> vertices_;
};

/// True iff the closed segment (a, b) intersects the closed axis-aligned
/// rectangle [xlo, xhi] x [ylo, yhi]. Exposed for testing.
bool SegmentIntersectsRect(Vec2 a, Vec2 b, double xlo, double xhi, double ylo,
                           double yhi);

}  // namespace probe::geometry

#endif  // PROBE_GEOMETRY_POLYGON_H_
