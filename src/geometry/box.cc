#include "geometry/box.h"

#include <algorithm>

namespace probe::geometry {

GridBox GridBox::Make2D(uint32_t xlo, uint32_t xhi, uint32_t ylo,
                        uint32_t yhi) {
  const zorder::DimRange ranges[2] = {{xlo, xhi}, {ylo, yhi}};
  return GridBox(ranges);
}

GridBox GridBox::Make3D(uint32_t xlo, uint32_t xhi, uint32_t ylo, uint32_t yhi,
                        uint32_t zlo, uint32_t zhi) {
  const zorder::DimRange ranges[3] = {{xlo, xhi}, {ylo, yhi}, {zlo, zhi}};
  return GridBox(ranges);
}

GridBox GridBox::FromPoint(const GridPoint& p) {
  GridBox box;
  box.dims_ = p.dims();
  for (int i = 0; i < p.dims(); ++i) box.ranges_[i] = {p[i], p[i]};
  return box;
}

uint64_t GridBox::Volume() const {
  uint64_t v = 1;
  for (int i = 0; i < dims_; ++i) v *= ranges_[i].width();
  return v;
}

bool GridBox::ContainsPoint(const GridPoint& p) const {
  assert(p.dims() == dims_);
  for (int i = 0; i < dims_; ++i) {
    if (p[i] < ranges_[i].lo || p[i] > ranges_[i].hi) return false;
  }
  return true;
}

bool GridBox::ContainsBox(const GridBox& other) const {
  assert(other.dims_ == dims_);
  for (int i = 0; i < dims_; ++i) {
    if (other.ranges_[i].lo < ranges_[i].lo ||
        other.ranges_[i].hi > ranges_[i].hi) {
      return false;
    }
  }
  return true;
}

bool GridBox::Intersects(const GridBox& other) const {
  assert(other.dims_ == dims_);
  for (int i = 0; i < dims_; ++i) {
    if (other.ranges_[i].hi < ranges_[i].lo ||
        other.ranges_[i].lo > ranges_[i].hi) {
      return false;
    }
  }
  return true;
}

std::optional<GridBox> GridBox::Intersection(const GridBox& other) const {
  if (!Intersects(other)) return std::nullopt;
  GridBox out;
  out.dims_ = dims_;
  for (int i = 0; i < dims_; ++i) {
    out.ranges_[i].lo = std::max(ranges_[i].lo, other.ranges_[i].lo);
    out.ranges_[i].hi = std::min(ranges_[i].hi, other.ranges_[i].hi);
  }
  return out;
}

std::string GridBox::ToString() const {
  std::string out;
  for (int i = 0; i < dims_; ++i) {
    if (i > 0) out += "x";
    out += "[" + std::to_string(ranges_[i].lo) + "," +
           std::to_string(ranges_[i].hi) + "]";
  }
  return out;
}

}  // namespace probe::geometry
