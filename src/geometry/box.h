#ifndef PROBE_GEOMETRY_BOX_H_
#define PROBE_GEOMETRY_BOX_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <optional>
#include <string>

#include "geometry/point.h"
#include "zorder/shuffle.h"

/// \file
/// Axis-aligned boxes of grid cells.
///
/// A range query L_i <= A_i <= U_i is "a k-dimensional box in the space
/// whose sides are parallel to the axes" (Section 2, Figure 1). GridBox is
/// that box: a closed per-dimension interval of cells.

namespace probe::geometry {

/// A closed axis-aligned box of grid cells in up to 8 dimensions.
class GridBox {
 public:
  static constexpr int kMaxDims = 8;

  GridBox() : dims_(0) {}

  /// Builds a box from per-dimension [lo, hi] ranges. Each range must have
  /// lo <= hi (boxes are never empty; use std::optional<GridBox> for maybe-
  /// empty results).
  explicit GridBox(std::span<const zorder::DimRange> ranges) : dims_(0) {
    assert(ranges.size() <= kMaxDims);
    for (const auto& r : ranges) {
      assert(r.lo <= r.hi);
      ranges_[dims_++] = r;
    }
  }

  /// 2-d convenience constructor: [xlo, xhi] x [ylo, yhi].
  static GridBox Make2D(uint32_t xlo, uint32_t xhi, uint32_t ylo,
                        uint32_t yhi);

  /// 3-d convenience constructor.
  static GridBox Make3D(uint32_t xlo, uint32_t xhi, uint32_t ylo, uint32_t yhi,
                        uint32_t zlo, uint32_t zhi);

  /// The degenerate box holding a single cell.
  static GridBox FromPoint(const GridPoint& p);

  int dims() const { return dims_; }

  const zorder::DimRange& range(int i) const {
    assert(i >= 0 && i < dims_);
    return ranges_[i];
  }

  std::span<const zorder::DimRange> ranges() const {
    return std::span<const zorder::DimRange>(ranges_.data(), dims_);
  }

  /// Number of cells in the box (its volume in pixels).
  uint64_t Volume() const;

  /// True iff `p` lies in the box. Requires matching dimensionality.
  bool ContainsPoint(const GridPoint& p) const;

  /// True iff `other` is entirely inside this box.
  bool ContainsBox(const GridBox& other) const;

  /// True iff the boxes share at least one cell.
  bool Intersects(const GridBox& other) const;

  /// The common cells of the two boxes, or nullopt if disjoint.
  std::optional<GridBox> Intersection(const GridBox& other) const;

  /// Renders as "[lo,hi]x[lo,hi]...".
  std::string ToString() const;

  friend bool operator==(const GridBox& a, const GridBox& b) {
    if (a.dims_ != b.dims_) return false;
    for (int i = 0; i < a.dims_; ++i) {
      if (!(a.ranges_[i] == b.ranges_[i])) return false;
    }
    return true;
  }

 private:
  std::array<zorder::DimRange, kMaxDims> ranges_;
  int dims_;
};

}  // namespace probe::geometry

#endif  // PROBE_GEOMETRY_BOX_H_
