#include "geometry/primitives.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace probe::geometry {

RegionClass BoxObject::Classify(const GridBox& region) const {
  if (box_.ContainsBox(region)) return RegionClass::kInside;
  if (!box_.Intersects(region)) return RegionClass::kOutside;
  return RegionClass::kCrossing;
}

BallObject::BallObject(std::vector<double> center, double radius)
    : center_(std::move(center)), radius_(radius) {
  assert(radius_ >= 0.0);
  assert(!center_.empty() &&
         center_.size() <= static_cast<size_t>(GridPoint::kMaxDims));
}

bool BallObject::ContainsCell(const GridPoint& p) const {
  assert(p.dims() == dims());
  double dist2 = 0.0;
  for (int i = 0; i < dims(); ++i) {
    const double d = (static_cast<double>(p[i]) + 0.5) - center_[i];
    dist2 += d * d;
  }
  return dist2 <= radius_ * radius_;
}

RegionClass BallObject::Classify(const GridBox& region) const {
  assert(region.dims() == dims());
  // Distance from the center to the nearest and farthest cell centers of
  // the region decide the classification exactly (membership is defined on
  // cell centers).
  double near2 = 0.0;
  double far2 = 0.0;
  for (int i = 0; i < dims(); ++i) {
    const double lo = static_cast<double>(region.range(i).lo) + 0.5;
    const double hi = static_cast<double>(region.range(i).hi) + 0.5;
    const double c = center_[i];
    const double near_d = c < lo ? lo - c : (c > hi ? c - hi : 0.0);
    const double far_d = std::max(std::abs(c - lo), std::abs(c - hi));
    near2 += near_d * near_d;
    far2 += far_d * far_d;
  }
  const double r2 = radius_ * radius_;
  if (far2 <= r2) return RegionClass::kInside;
  if (near2 > r2) return RegionClass::kOutside;
  return RegionClass::kCrossing;
}

std::string BallObject::Describe() const {
  std::string out = "ball r=" + std::to_string(radius_) + " at (";
  for (size_t i = 0; i < center_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(center_[i]);
  }
  return out + ")";
}

CapsuleObject::CapsuleObject(std::vector<double> a, std::vector<double> b,
                             double radius)
    : a_(std::move(a)), b_(std::move(b)), radius_(radius) {
  assert(!a_.empty() && a_.size() == b_.size());
  assert(a_.size() <= static_cast<size_t>(GridPoint::kMaxDims));
  assert(radius_ >= 0.0);
}

double CapsuleObject::SegmentDistance2(const double* p) const {
  double seg_len2 = 0.0;
  double dot = 0.0;
  for (size_t d = 0; d < a_.size(); ++d) {
    const double dir = b_[d] - a_[d];
    seg_len2 += dir * dir;
    dot += (p[d] - a_[d]) * dir;
  }
  const double t =
      seg_len2 > 0 ? std::clamp(dot / seg_len2, 0.0, 1.0) : 0.0;
  double dist2 = 0.0;
  for (size_t d = 0; d < a_.size(); ++d) {
    const double delta = p[d] - (a_[d] + t * (b_[d] - a_[d]));
    dist2 += delta * delta;
  }
  return dist2;
}

bool CapsuleObject::ContainsCell(const GridPoint& p) const {
  assert(p.dims() == dims());
  double center[GridPoint::kMaxDims];
  for (int d = 0; d < dims(); ++d) {
    center[d] = static_cast<double>(p[d]) + 0.5;
  }
  return SegmentDistance2(center) <= radius_ * radius_;
}

RegionClass CapsuleObject::Classify(const GridBox& region) const {
  assert(region.dims() == dims());
  const int k = dims();
  const double r2 = radius_ * radius_;

  // Far distance: dist-to-segment is convex in the point, so its maximum
  // over the center rectangle is attained at a corner.
  double far2 = 0.0;
  for (uint32_t mask = 0; mask < (1u << k); ++mask) {
    double corner[GridPoint::kMaxDims];
    for (int d = 0; d < k; ++d) {
      corner[d] = static_cast<double>((mask >> d) & 1 ? region.range(d).hi
                                                      : region.range(d).lo) +
                  0.5;
    }
    far2 = std::max(far2, SegmentDistance2(corner));
  }
  if (far2 <= r2) return RegionClass::kInside;

  // Near distance: minimize g(t) = dist2(segment(t), rect) — convex in t
  // (affine path into a convex distance), so ternary search is exact up to
  // the iteration tolerance.
  auto rect_dist2_at = [&](double t) {
    double dist2 = 0.0;
    for (int d = 0; d < k; ++d) {
      const double s = a_[d] + t * (b_[d] - a_[d]);
      const double lo = static_cast<double>(region.range(d).lo) + 0.5;
      const double hi = static_cast<double>(region.range(d).hi) + 0.5;
      const double gap = s < lo ? lo - s : (s > hi ? s - hi : 0.0);
      dist2 += gap * gap;
    }
    return dist2;
  };
  double lo_t = 0.0;
  double hi_t = 1.0;
  for (int iter = 0; iter < 100; ++iter) {
    const double m1 = lo_t + (hi_t - lo_t) / 3.0;
    const double m2 = hi_t - (hi_t - lo_t) / 3.0;
    if (rect_dist2_at(m1) <= rect_dist2_at(m2)) {
      hi_t = m2;
    } else {
      lo_t = m1;
    }
  }
  const double near2 = rect_dist2_at((lo_t + hi_t) / 2.0);
  if (near2 > r2) return RegionClass::kOutside;
  return RegionClass::kCrossing;
}

std::string CapsuleObject::Describe() const {
  return "capsule r=" + std::to_string(radius_) + " between (" +
         std::to_string(a_[0]) + ",...) and (" + std::to_string(b_[0]) +
         ",...)";
}

HalfSpaceObject::HalfSpaceObject(std::vector<double> normal, double offset)
    : normal_(std::move(normal)), offset_(offset) {
  assert(!normal_.empty() &&
         normal_.size() <= static_cast<size_t>(GridPoint::kMaxDims));
}

bool HalfSpaceObject::ContainsCell(const GridPoint& p) const {
  assert(p.dims() == dims());
  double dot = 0.0;
  for (int i = 0; i < dims(); ++i) {
    dot += normal_[i] * (static_cast<double>(p[i]) + 0.5);
  }
  return dot <= offset_;
}

RegionClass HalfSpaceObject::Classify(const GridBox& region) const {
  assert(region.dims() == dims());
  // The dot product over the region's cell centers attains its extremes at
  // corners: pick per-dimension min/max according to the normal's sign.
  double min_dot = 0.0;
  double max_dot = 0.0;
  for (int i = 0; i < dims(); ++i) {
    const double lo = static_cast<double>(region.range(i).lo) + 0.5;
    const double hi = static_cast<double>(region.range(i).hi) + 0.5;
    const double a = normal_[i];
    min_dot += a * (a >= 0 ? lo : hi);
    max_dot += a * (a >= 0 ? hi : lo);
  }
  if (max_dot <= offset_) return RegionClass::kInside;
  if (min_dot > offset_) return RegionClass::kOutside;
  return RegionClass::kCrossing;
}

std::string HalfSpaceObject::Describe() const {
  std::string out = "halfspace ";
  for (size_t i = 0; i < normal_.size(); ++i) {
    if (i > 0) out += " + ";
    out += std::to_string(normal_[i]) + "*x" + std::to_string(i);
  }
  return out + " <= " + std::to_string(offset_);
}

}  // namespace probe::geometry
