#ifndef PROBE_GEOMETRY_POINT_H_
#define PROBE_GEOMETRY_POINT_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>

/// \file
/// Grid points: tuples viewed as pixels (Section 2).
///
/// "If each attribute is an integer, then a tuple can be viewed as a point
/// in k-dimensional space or as a pixel in a k-dimensional grid." GridPoint
/// is that view: up to 8 integer coordinates, one per attribute/axis.

namespace probe::geometry {

/// A point on a k-dimensional grid, k <= 8. Coordinates are cell indices.
class GridPoint {
 public:
  static constexpr int kMaxDims = 8;

  GridPoint() : dims_(0) { coords_.fill(0); }

  /// Constructs from an explicit coordinate list, e.g. GridPoint({3, 5}).
  GridPoint(std::initializer_list<uint32_t> coords) : dims_(0) {
    coords_.fill(0);
    assert(coords.size() <= kMaxDims);
    for (uint32_t c : coords) coords_[dims_++] = c;
  }

  /// Constructs from a span of coordinates.
  explicit GridPoint(std::span<const uint32_t> coords) : dims_(0) {
    coords_.fill(0);
    assert(coords.size() <= kMaxDims);
    for (uint32_t c : coords) coords_[dims_++] = c;
  }

  int dims() const { return dims_; }

  uint32_t operator[](int i) const {
    assert(i >= 0 && i < dims_);
    return coords_[i];
  }

  /// Mutable coordinate access.
  uint32_t& at(int i) {
    assert(i >= 0 && i < dims_);
    return coords_[i];
  }

  /// View of the live coordinates.
  std::span<const uint32_t> coords() const {
    return std::span<const uint32_t>(coords_.data(), dims_);
  }

  /// Renders as "(x, y, ...)".
  std::string ToString() const;

  friend bool operator==(const GridPoint& a, const GridPoint& b) {
    if (a.dims_ != b.dims_) return false;
    for (int i = 0; i < a.dims_; ++i) {
      if (a.coords_[i] != b.coords_[i]) return false;
    }
    return true;
  }

 private:
  std::array<uint32_t, kMaxDims> coords_;
  int dims_;
};

}  // namespace probe::geometry

#endif  // PROBE_GEOMETRY_POINT_H_
