#include "geometry/raster.h"

#include <cassert>

namespace probe::geometry {

namespace {

// Invokes fn(point) for every cell of the grid in row-major order.
template <typename Fn>
void ForEachCell(const zorder::GridSpec& grid, Fn&& fn) {
  assert(grid.total_bits() <= 24);
  const int k = grid.dims;
  const uint32_t side = static_cast<uint32_t>(grid.side());
  std::vector<uint32_t> coords(k, 0);
  for (;;) {
    fn(GridPoint(std::span<const uint32_t>(coords)));
    int axis = k - 1;
    while (axis >= 0) {
      if (++coords[axis] < side) break;
      coords[axis] = 0;
      --axis;
    }
    if (axis < 0) return;
  }
}

}  // namespace

std::vector<GridPoint> Rasterize(const zorder::GridSpec& grid,
                                 const SpatialObject& object) {
  assert(object.dims() == grid.dims);
  std::vector<GridPoint> cells;
  ForEachCell(grid, [&](const GridPoint& p) {
    if (object.ContainsCell(p)) cells.push_back(p);
  });
  return cells;
}

uint64_t RasterVolume(const zorder::GridSpec& grid,
                      const SpatialObject& object) {
  uint64_t count = 0;
  ForEachCell(grid, [&](const GridPoint& p) {
    if (object.ContainsCell(p)) ++count;
  });
  return count;
}

std::string RasterArt(const zorder::GridSpec& grid,
                      const SpatialObject& object) {
  assert(grid.dims == 2);
  assert(grid.side() <= 128);
  const uint32_t side = static_cast<uint32_t>(grid.side());
  std::string out;
  out.reserve((side + 1) * side);
  for (uint32_t row = side; row-- > 0;) {
    for (uint32_t col = 0; col < side; ++col) {
      out.push_back(object.ContainsCell(GridPoint({col, row})) ? '#' : '.');
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace probe::geometry
