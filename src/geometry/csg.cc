#include "geometry/csg.h"

#include <cassert>

namespace probe::geometry {

UnionObject::UnionObject(
    std::vector<std::shared_ptr<const SpatialObject>> parts)
    : parts_(std::move(parts)) {
  assert(!parts_.empty());
  for ([[maybe_unused]] const auto& p : parts_) {
    assert(p->dims() == parts_[0]->dims());
  }
}

int UnionObject::dims() const { return parts_[0]->dims(); }

RegionClass UnionObject::Classify(const GridBox& region) const {
  bool all_outside = true;
  for (const auto& part : parts_) {
    switch (part->Classify(region)) {
      case RegionClass::kInside:
        return RegionClass::kInside;  // one covering child covers the union
      case RegionClass::kCrossing:
        all_outside = false;
        break;
      case RegionClass::kOutside:
        break;
    }
  }
  return all_outside ? RegionClass::kOutside : RegionClass::kCrossing;
}

bool UnionObject::ContainsCell(const GridPoint& p) const {
  for (const auto& part : parts_) {
    if (part->ContainsCell(p)) return true;
  }
  return false;
}

std::string UnionObject::Describe() const {
  return "union of " + std::to_string(parts_.size()) + " objects";
}

IntersectionObject::IntersectionObject(
    std::vector<std::shared_ptr<const SpatialObject>> parts)
    : parts_(std::move(parts)) {
  assert(!parts_.empty());
  for ([[maybe_unused]] const auto& p : parts_) {
    assert(p->dims() == parts_[0]->dims());
  }
}

int IntersectionObject::dims() const { return parts_[0]->dims(); }

RegionClass IntersectionObject::Classify(const GridBox& region) const {
  bool all_inside = true;
  for (const auto& part : parts_) {
    switch (part->Classify(region)) {
      case RegionClass::kOutside:
        return RegionClass::kOutside;
      case RegionClass::kCrossing:
        all_inside = false;
        break;
      case RegionClass::kInside:
        break;
    }
  }
  return all_inside ? RegionClass::kInside : RegionClass::kCrossing;
}

bool IntersectionObject::ContainsCell(const GridPoint& p) const {
  for (const auto& part : parts_) {
    if (!part->ContainsCell(p)) return false;
  }
  return true;
}

std::string IntersectionObject::Describe() const {
  return "intersection of " + std::to_string(parts_.size()) + " objects";
}

TranslatedObject::TranslatedObject(std::shared_ptr<const SpatialObject> base,
                                   std::vector<int64_t> offset)
    : base_(std::move(base)), offset_(std::move(offset)) {
  assert(static_cast<int>(offset_.size()) == base_->dims());
}

bool TranslatedObject::ContainsCell(const GridPoint& p) const {
  assert(p.dims() == dims());
  GridPoint shifted = p;
  for (int d = 0; d < dims(); ++d) {
    const int64_t c = static_cast<int64_t>(p[d]) - offset_[d];
    if (c < 0 || c > 0xFFFFFFFFll) return false;
    shifted.at(d) = static_cast<uint32_t>(c);
  }
  return base_->ContainsCell(shifted);
}

RegionClass TranslatedObject::Classify(const GridBox& region) const {
  assert(region.dims() == dims());
  // Shift the region by -offset, clipping to the base's coordinate domain;
  // the clipped-away part maps to no base cell and is therefore outside.
  std::vector<zorder::DimRange> shifted(dims());
  bool clipped = false;
  for (int d = 0; d < dims(); ++d) {
    const int64_t lo = static_cast<int64_t>(region.range(d).lo) - offset_[d];
    const int64_t hi = static_cast<int64_t>(region.range(d).hi) - offset_[d];
    if (hi < 0 || lo > 0xFFFFFFFFll) return RegionClass::kOutside;
    if (lo < 0 || hi > 0xFFFFFFFFll) clipped = true;
    shifted[d].lo = static_cast<uint32_t>(std::max<int64_t>(lo, 0));
    shifted[d].hi =
        static_cast<uint32_t>(std::min<int64_t>(hi, 0xFFFFFFFFll));
  }
  const RegionClass base_class = base_->Classify(GridBox(shifted));
  if (base_class == RegionClass::kInside && clipped) {
    // The in-domain part is inside, but clipped cells are outside.
    return RegionClass::kCrossing;
  }
  return base_class;
}

std::string TranslatedObject::Describe() const {
  std::string out = "translate(" + base_->Describe() + ") by (";
  for (size_t d = 0; d < offset_.size(); ++d) {
    if (d > 0) out += ", ";
    out += std::to_string(offset_[d]);
  }
  return out + ")";
}

DifferenceObject::DifferenceObject(
    std::shared_ptr<const SpatialObject> base,
    std::shared_ptr<const SpatialObject> subtrahend)
    : base_(std::move(base)), subtrahend_(std::move(subtrahend)) {
  assert(base_->dims() == subtrahend_->dims());
}

RegionClass DifferenceObject::Classify(const GridBox& region) const {
  const RegionClass base_class = base_->Classify(region);
  if (base_class == RegionClass::kOutside) return RegionClass::kOutside;
  const RegionClass sub_class = subtrahend_->Classify(region);
  if (sub_class == RegionClass::kInside) return RegionClass::kOutside;
  if (base_class == RegionClass::kInside &&
      sub_class == RegionClass::kOutside) {
    return RegionClass::kInside;
  }
  return RegionClass::kCrossing;
}

bool DifferenceObject::ContainsCell(const GridPoint& p) const {
  return base_->ContainsCell(p) && !subtrahend_->ContainsCell(p);
}

std::string DifferenceObject::Describe() const {
  return "difference (" + base_->Describe() + ") minus (" +
         subtrahend_->Describe() + ")";
}

}  // namespace probe::geometry
