#ifndef PROBE_GEOMETRY_RASTER_H_
#define PROBE_GEOMETRY_RASTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/object.h"
#include "zorder/grid.h"

/// \file
/// Explicit grid rasterization — the reference the paper's techniques
/// optimize away.
///
/// Section 2: "It is not feasible to store high-resolution grids
/// explicitly. The space and time requirements are too high." We keep an
/// explicit rasterizer anyway, as ground truth for decomposition tests and
/// as the baseline whose cost scales with *volume* where AG scales with
/// *surface area* (Section 5.1).

namespace probe::geometry {

/// All cells of the grid inside `object`, in row-major order. Intended for
/// small grids: requires grid.total_bits() <= 24.
std::vector<GridPoint> Rasterize(const zorder::GridSpec& grid,
                                 const SpatialObject& object);

/// Number of cells inside `object` (the object's pixel volume), computed by
/// explicit scan. Requires grid.total_bits() <= 24.
uint64_t RasterVolume(const zorder::GridSpec& grid,
                      const SpatialObject& object);

/// ASCII art of a 2-d object on its grid ('#' inside, '.' outside), row
/// y = side-1 first so the origin is bottom-left as in the paper's figures.
/// Requires a 2-d grid with side <= 128.
std::string RasterArt(const zorder::GridSpec& grid,
                      const SpatialObject& object);

}  // namespace probe::geometry

#endif  // PROBE_GEOMETRY_RASTER_H_
