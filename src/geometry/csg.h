#ifndef PROBE_GEOMETRY_CSG_H_
#define PROBE_GEOMETRY_CSG_H_

#include <memory>
#include <string>
#include <vector>

#include "geometry/object.h"

/// \file
/// Composite (CSG) spatial objects.
///
/// Set operations over classifiers compose exactly for the inside/outside
/// verdicts and conservatively for crossing, which is all the decomposer
/// needs. These composites let the examples model realistic shapes (a lake
/// with an island, a machined part with holes) without new primitives, and
/// they are the substrate for the solid-modeling use of Section 6.

namespace probe::geometry {

/// Union of one or more objects: a cell is inside iff inside any child.
class UnionObject final : public SpatialObject {
 public:
  explicit UnionObject(std::vector<std::shared_ptr<const SpatialObject>> parts);

  int dims() const override;
  RegionClass Classify(const GridBox& region) const override;
  bool ContainsCell(const GridPoint& p) const override;
  std::string Describe() const override;

 private:
  std::vector<std::shared_ptr<const SpatialObject>> parts_;
};

/// Intersection of one or more objects.
class IntersectionObject final : public SpatialObject {
 public:
  explicit IntersectionObject(
      std::vector<std::shared_ptr<const SpatialObject>> parts);

  int dims() const override;
  RegionClass Classify(const GridBox& region) const override;
  bool ContainsCell(const GridPoint& p) const override;
  std::string Describe() const override;

 private:
  std::vector<std::shared_ptr<const SpatialObject>> parts_;
};

/// A rigid translation of another object by an integer cell offset.
///
/// Lets one geometry be tested at many positions without rebuilding —
/// e.g. sweeping a CAD part along a path and interference-checking each
/// pose. Cells that would map outside the base object's coordinate domain
/// are outside the translated object.
class TranslatedObject final : public SpatialObject {
 public:
  /// `offset` has one (possibly negative) entry per dimension: the
  /// translated object occupies cell c iff base occupies c - offset.
  TranslatedObject(std::shared_ptr<const SpatialObject> base,
                   std::vector<int64_t> offset);

  int dims() const override { return base_->dims(); }
  RegionClass Classify(const GridBox& region) const override;
  bool ContainsCell(const GridPoint& p) const override;
  std::string Describe() const override;

 private:
  std::shared_ptr<const SpatialObject> base_;
  std::vector<int64_t> offset_;
};

/// Difference base \ subtrahend.
class DifferenceObject final : public SpatialObject {
 public:
  DifferenceObject(std::shared_ptr<const SpatialObject> base,
                   std::shared_ptr<const SpatialObject> subtrahend);

  int dims() const override { return base_->dims(); }
  RegionClass Classify(const GridBox& region) const override;
  bool ContainsCell(const GridPoint& p) const override;
  std::string Describe() const override;

 private:
  std::shared_ptr<const SpatialObject> base_;
  std::shared_ptr<const SpatialObject> subtrahend_;
};

}  // namespace probe::geometry

#endif  // PROBE_GEOMETRY_CSG_H_
