#include "geometry/polygon.h"

#include <algorithm>
#include <cassert>

namespace probe::geometry {

PolygonObject::PolygonObject(std::vector<Vec2> vertices)
    : vertices_(std::move(vertices)) {
  assert(vertices_.size() >= 3);
}

bool PolygonObject::ContainsContinuous(double x, double y) const {
  // Even-odd rule: count crossings of a ray going in +x from (x, y).
  bool inside = false;
  const size_t n = vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Vec2& vi = vertices_[i];
    const Vec2& vj = vertices_[j];
    const bool straddles = (vi.y > y) != (vj.y > y);
    if (straddles) {
      const double x_cross = (vj.x - vi.x) * (y - vi.y) / (vj.y - vi.y) + vi.x;
      if (x < x_cross) inside = !inside;
    }
  }
  return inside;
}

bool PolygonObject::ContainsCell(const GridPoint& p) const {
  assert(p.dims() == 2);
  return ContainsContinuous(static_cast<double>(p[0]) + 0.5,
                            static_cast<double>(p[1]) + 0.5);
}

bool SegmentIntersectsRect(Vec2 a, Vec2 b, double xlo, double xhi, double ylo,
                           double yhi) {
  // Slab (Liang-Barsky style) clipping of the parametric segment against
  // each axis interval; the segment hits the rectangle iff a nonempty
  // parameter interval survives.
  double t0 = 0.0;
  double t1 = 1.0;
  const double d[2] = {b.x - a.x, b.y - a.y};
  const double p0[2] = {a.x, a.y};
  const double lo[2] = {xlo, ylo};
  const double hi[2] = {xhi, yhi};
  for (int axis = 0; axis < 2; ++axis) {
    if (d[axis] == 0.0) {
      if (p0[axis] < lo[axis] || p0[axis] > hi[axis]) return false;
      continue;
    }
    double ta = (lo[axis] - p0[axis]) / d[axis];
    double tb = (hi[axis] - p0[axis]) / d[axis];
    if (ta > tb) std::swap(ta, tb);
    t0 = std::max(t0, ta);
    t1 = std::min(t1, tb);
    if (t0 > t1) return false;
  }
  return true;
}

RegionClass PolygonObject::Classify(const GridBox& region) const {
  assert(region.dims() == 2);
  // Cell centers of the region span this rectangle. If no polygon edge
  // meets it, all centers are on the same side of the boundary, and one
  // representative decides the whole region. Otherwise report kCrossing —
  // conservative (the edge might slip between centers) but safe: it only
  // causes further splitting, never a wrong element.
  const double xlo = static_cast<double>(region.range(0).lo) + 0.5;
  const double xhi = static_cast<double>(region.range(0).hi) + 0.5;
  const double ylo = static_cast<double>(region.range(1).lo) + 0.5;
  const double yhi = static_cast<double>(region.range(1).hi) + 0.5;
  const size_t n = vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    if (SegmentIntersectsRect(vertices_[j], vertices_[i], xlo, xhi, ylo,
                              yhi)) {
      if (region.Volume() == 1) {
        // A single cell cannot be split further; decide by its center.
        return ContainsContinuous(xlo, ylo) ? RegionClass::kInside
                                            : RegionClass::kOutside;
      }
      return RegionClass::kCrossing;
    }
  }
  return ContainsContinuous(xlo, ylo) ? RegionClass::kInside
                                      : RegionClass::kOutside;
}

std::string PolygonObject::Describe() const {
  return "polygon with " + std::to_string(vertices_.size()) + " vertices";
}

}  // namespace probe::geometry
