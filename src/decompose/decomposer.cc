#include "decompose/decomposer.h"

#include <cassert>

#include "decompose/audit.h"
#include "geometry/primitives.h"
#include "probe/check.h"
#include "zorder/shuffle.h"

namespace probe::decompose {

namespace {

using geometry::GridBox;
using geometry::RegionClass;
using geometry::SpatialObject;
using zorder::GridSpec;
using zorder::ZValue;

// Shared recursive core. Emit is called with elements in z order.
template <typename Emit>
void DecomposeRecursive(const GridSpec& grid, const SpatialObject& object,
                        const DecomposeOptions& options, const ZValue& region,
                        int depth_cap, DecomposeStats* stats, Emit&& emit) {
  const GridBox box(UnshuffleRegion(grid, region));
  if (stats != nullptr) ++stats->classify_calls;
  switch (object.Classify(box)) {
    case RegionClass::kOutside:
      return;
    case RegionClass::kInside:
      if (stats != nullptr) ++stats->elements;
      emit(region, /*boundary=*/false);
      return;
    case RegionClass::kCrossing:
      if (region.length() >= depth_cap) {
        // Cannot (or may not) split further: the region straddles the
        // boundary at the resolution limit.
        if (options.include_boundary) {
          if (stats != nullptr) {
            ++stats->elements;
            ++stats->boundary_elements;
          }
          emit(region, /*boundary=*/true);
        }
        return;
      }
      DecomposeRecursive(grid, object, options, region.Child(0), depth_cap,
                         stats, emit);
      DecomposeRecursive(grid, object, options, region.Child(1), depth_cap,
                         stats, emit);
      return;
  }
}

int EffectiveDepthCap(const GridSpec& grid, const DecomposeOptions& options) {
  if (options.max_depth < 0) return grid.total_bits();
  return options.max_depth < grid.total_bits() ? options.max_depth
                                               : grid.total_bits();
}

}  // namespace

std::vector<ZValue> Decompose(const GridSpec& grid,
                              const SpatialObject& object,
                              const DecomposeOptions& options,
                              DecomposeStats* stats) {
  assert(grid.Valid());
  assert(object.dims() == grid.dims);
  std::vector<ZValue> elements;
  DecomposeRecursive(grid, object, options, ZValue(),
                     EffectiveDepthCap(grid, options), stats,
                     [&](const ZValue& z, bool) { elements.push_back(z); });
  PROBE_AUDIT(AuditDecomposition(grid, elements));
  return elements;
}

std::vector<TaggedElement> DecomposeTagged(const GridSpec& grid,
                                           const SpatialObject& object,
                                           const DecomposeOptions& options,
                                           DecomposeStats* stats) {
  assert(grid.Valid());
  assert(object.dims() == grid.dims);
  std::vector<TaggedElement> elements;
  DecomposeRecursive(grid, object, options, ZValue(),
                     EffectiveDepthCap(grid, options), stats,
                     [&](const ZValue& z, bool boundary) {
                       elements.push_back(TaggedElement{z, boundary});
                     });
  return elements;
}

std::vector<ZValue> DecomposeBox(const GridSpec& grid, const GridBox& box,
                                 const DecomposeOptions& options,
                                 DecomposeStats* stats) {
  const geometry::BoxObject object(box);
  std::vector<ZValue> elements = Decompose(grid, object, options, stats);
  // A full-resolution box decomposition is an exact disjoint cover; a
  // depth-capped one approximates from outside (or inside, when boundary
  // elements are dropped).
  PROBE_AUDIT(AuditBoxCover(
      grid, box, elements,
      /*exact=*/EffectiveDepthCap(grid, options) == grid.total_bits(),
      options.include_boundary));
  return elements;
}

uint64_t CountElements(const GridSpec& grid, const SpatialObject& object,
                       const DecomposeOptions& options) {
  uint64_t count = 0;
  DecomposeRecursive(grid, object, options, ZValue(),
                     EffectiveDepthCap(grid, options), nullptr,
                     [&](const ZValue&, bool) { ++count; });
  return count;
}

uint64_t CoveredVolume(const GridSpec& grid,
                       const std::vector<ZValue>& elements) {
  uint64_t volume = 0;
  for (const ZValue& z : elements) {
    volume += 1ULL << (grid.total_bits() - z.length());
  }
  return volume;
}

}  // namespace probe::decompose
