#include "decompose/audit.h"

#include "probe/check.h"
#include "zorder/audit.h"

namespace probe::decompose {

void AuditDecomposition(const zorder::GridSpec& grid,
                        std::span<const zorder::ZValue> elements) {
  zorder::AuditElementCover(grid, elements, /*expected_cells=*/-1,
                            /*max_elements=*/0);
}

void AuditBoxCover(const zorder::GridSpec& grid, const geometry::GridBox& box,
                   std::span<const zorder::ZValue> elements, bool exact,
                   bool include_boundary) {
  zorder::AuditElementCover(grid, elements, /*expected_cells=*/-1,
                            /*max_elements=*/0);
  const uint64_t want = box.Volume();
  const uint64_t covered = CoveredVolume(grid, std::vector<zorder::ZValue>(
                                                   elements.begin(),
                                                   elements.end()));
  if (exact) {
    if (covered != want) {
      check::AuditFailure(__FILE__, __LINE__, "covered == box.Volume()",
                          "exact box cover volume mismatch");
    }
  } else if (include_boundary) {
    if (covered < want) {
      check::AuditFailure(__FILE__, __LINE__, "covered >= box.Volume()",
                          "outside approximation lost cells of the box");
    }
  } else {
    if (covered > want) {
      check::AuditFailure(__FILE__, __LINE__, "covered <= box.Volume()",
                          "inside approximation covers cells off the box");
    }
  }
}

}  // namespace probe::decompose
