#ifndef PROBE_DECOMPOSE_ANALYSIS_H_
#define PROBE_DECOMPOSE_ANALYSIS_H_

#include <cstdint>
#include <span>

#include "zorder/grid.h"

/// \file
/// Space analysis of Section 5.1: the element count E(U, V).
///
/// The paper analyzes the decomposition of a U x V rectangle anchored at
/// the origin and reports that E(U,V) (a) is driven by the number of bit
/// positions between the first and last 1 bits of U OR V, and (b) is cyclic
/// in magnitude: E(U,V) = E(2U,2V). AnchoredBoxElementCount computes the
/// exact count combinatorially — no decomposition is materialized; the
/// recursion only ever holds one "partial in every dimension" state plus
/// one "full in all but one dimension" state per dimension per level, so
/// with memoization it runs in time polynomial in the grid depth. The
/// Section 5.1 bench sweeps large parameter ranges with it and checks it
/// against real decompositions.
///
/// In one dimension the count has a genuinely closed form: the elements of
/// [0, U) are exactly the aligned blocks named by the 1 bits of U, so
/// E_1(U) = popcount(U). The k-d recursion reduces to that in the 1-d case.

namespace probe::decompose {

/// Exact number of elements in the decomposition of the anchored box
/// [0, extents[0]-1] x ... x [0, extents[k-1]-1] on `grid`. An extent of 0
/// yields 0. Extents must not exceed grid.side().
uint64_t AnchoredBoxElementCount(const zorder::GridSpec& grid,
                                 std::span<const uint64_t> extents);

/// 2-d convenience wrapper: E(U, V) on `grid`.
uint64_t ElementCountUV(const zorder::GridSpec& grid, uint64_t u, uint64_t v);

/// Closed form for the 1-d case: E_1(U) = popcount(U).
uint64_t ElementCount1D(uint64_t u);

/// The bit-span statistic the paper names as the driver of E(U,V): the
/// number of bit positions between the first and last 1 bits of the bitwise
/// OR of the extents, inclusive. 0 when all extents are 0.
int ExtentBitSpan(std::span<const uint64_t> extents);

/// Upper bound on the elements a box with the given per-dimension extents
/// produces when decomposition is capped at `max_depth` bits, wherever the
/// box is placed. Elements are disjoint and each contains at least one
/// depth-`max_depth` region intersecting the box, so the bound is the
/// worst-case (unaligned) count of cap-level regions the box can touch:
/// per dimension, floor((extent-1)/side)+2 aligned blocks of the region's
/// side, clamped to the blocks that exist. The query planner walks this
/// bound to pick the coarsest depth cap that stays inside an element
/// budget (the Section 5.1 grid-coarsening optimization, applied at plan
/// time). `max_depth` < 0 or >= total_bits() means full depth.
uint64_t CappedElementUpperBound(const zorder::GridSpec& grid,
                                 std::span<const uint64_t> extents,
                                 int max_depth);

}  // namespace probe::decompose

#endif  // PROBE_DECOMPOSE_ANALYSIS_H_
