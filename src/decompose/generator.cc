#include "decompose/generator.h"

#include <cassert>

#include "geometry/box.h"
#include "zorder/shuffle.h"

namespace probe::decompose {

namespace {

int EffectiveDepthCap(const zorder::GridSpec& grid,
                      const DecomposeOptions& options) {
  if (options.max_depth < 0) return grid.total_bits();
  return options.max_depth < grid.total_bits() ? options.max_depth
                                               : grid.total_bits();
}

}  // namespace

ElementGenerator::ElementGenerator(const zorder::GridSpec& grid,
                                   const geometry::SpatialObject& object,
                                   const DecomposeOptions& options)
    : grid_(grid),
      object_(object),
      options_(options),
      depth_cap_(EffectiveDepthCap(grid, options)) {
  assert(grid_.Valid());
  assert(object_.dims() == grid_.dims);
  stack_.push_back(zorder::ZValue());  // the whole space
}

bool ElementGenerator::Next(zorder::ZValue* out) { return Advance(0, out); }

bool ElementGenerator::SeekForward(uint64_t target, zorder::ZValue* out) {
  return Advance(target, out);
}

bool ElementGenerator::Advance(uint64_t target, zorder::ZValue* out) {
  const int total = grid_.total_bits();
  while (!stack_.empty()) {
    const zorder::ZValue region = stack_.back();
    stack_.pop_back();
    // Random-access pruning: if the whole region precedes the target z
    // value, no element inside it is of interest — and no classifier call
    // is spent on it. This is the skip that makes the merge's running time
    // proportional to the query's share of the space (Section 5.3).
    if (target != 0 && region.RangeHi(total) < target) continue;
    ++stats_.classify_calls;
    const geometry::GridBox box(UnshuffleRegion(grid_, region));
    switch (object_.Classify(box)) {
      case geometry::RegionClass::kOutside:
        continue;
      case geometry::RegionClass::kInside:
        ++stats_.elements;
        PROBE_AUDIT(
            emit_order_.Observe(region.RangeLo(total), "element generator"));
        *out = region;
        return true;
      case geometry::RegionClass::kCrossing:
        if (region.length() >= depth_cap_) {
          if (options_.include_boundary) {
            ++stats_.elements;
            ++stats_.boundary_elements;
            PROBE_AUDIT(emit_order_.Observe(region.RangeLo(total),
                                            "element generator"));
            *out = region;
            return true;
          }
          continue;
        }
        // Push child 1 first so child 0 (earlier in z order) pops first.
        stack_.push_back(region.Child(1));
        stack_.push_back(region.Child(0));
        continue;
    }
  }
  return false;
}

}  // namespace probe::decompose
