#include "decompose/analysis.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <map>
#include <vector>

#include "util/bits.h"

namespace probe::decompose {

namespace {

// Memoized recursion over (split level, per-dimension remaining extents).
// At `level` splits consumed, the current region has per-dimension side
// 2^(bits_per_dim - BitsConsumed(level, dim)); extents are the portion of
// each side covered by the anchored box. States repeat heavily (an extent
// is either "the full side" or a suffix of the original extent), so a map
// memo keeps the state count tiny.
class Counter {
 public:
  Counter(const zorder::GridSpec& grid) : grid_(grid) {}

  uint64_t Count(int level, std::vector<uint64_t> extents) {
    for (uint64_t e : extents) {
      if (e == 0) return 0;
    }
    bool all_full = true;
    for (int dim = 0; dim < grid_.dims; ++dim) {
      if (extents[dim] != SideAt(level, dim)) {
        all_full = false;
        break;
      }
    }
    if (all_full) return 1;  // region entirely covered: one element
    assert(level < grid_.total_bits());
    const auto key = std::make_pair(level, extents);
    if (auto it = memo_.find(key); it != memo_.end()) return it->second;

    const int dim = grid_.SplitDimAt(level);  // schedule-directed split
    const uint64_t half = SideAt(level, dim) / 2;
    uint64_t result = 0;
    if (extents[dim] <= half) {
      // Anchored box lies in the lower child only.
      result = Count(level + 1, extents);
    } else {
      // Lower child is spanned fully in this dimension; upper child gets
      // the remainder.
      std::vector<uint64_t> lower = extents;
      lower[dim] = half;
      std::vector<uint64_t> upper = extents;
      upper[dim] = extents[dim] - half;
      result = Count(level + 1, lower) + Count(level + 1, std::move(upper));
    }
    memo_.emplace(key, result);
    return result;
  }

 private:
  uint64_t SideAt(int level, int dim) const {
    return 1ULL << (grid_.bits_per_dim - grid_.BitsConsumed(level, dim));
  }

  const zorder::GridSpec grid_;
  std::map<std::pair<int, std::vector<uint64_t>>, uint64_t> memo_;
};

}  // namespace

uint64_t AnchoredBoxElementCount(const zorder::GridSpec& grid,
                                 std::span<const uint64_t> extents) {
  assert(grid.Valid());
  assert(extents.size() == static_cast<size_t>(grid.dims));
  std::vector<uint64_t> e(extents.begin(), extents.end());
  for (uint64_t x : e) {
    assert(x <= grid.side());
    (void)x;
  }
  Counter counter(grid);
  return counter.Count(0, std::move(e));
}

uint64_t ElementCountUV(const zorder::GridSpec& grid, uint64_t u, uint64_t v) {
  assert(grid.dims == 2);
  const uint64_t extents[2] = {u, v};
  return AnchoredBoxElementCount(grid, extents);
}

uint64_t ElementCount1D(uint64_t u) {
  return static_cast<uint64_t>(std::popcount(u));
}

int ExtentBitSpan(std::span<const uint64_t> extents) {
  uint64_t combined = 0;
  for (uint64_t e : extents) combined |= e;
  return util::BitSpan(combined);
}

uint64_t CappedElementUpperBound(const zorder::GridSpec& grid,
                                 std::span<const uint64_t> extents,
                                 int max_depth) {
  assert(grid.Valid());
  assert(extents.size() == static_cast<size_t>(grid.dims));
  int depth = max_depth;
  if (depth < 0 || depth > grid.total_bits()) depth = grid.total_bits();
  uint64_t bound = 1;
  for (int dim = 0; dim < grid.dims; ++dim) {
    const uint64_t extent = extents[static_cast<size_t>(dim)];
    if (extent == 0) return 0;
    const int region_bits = grid.bits_per_dim - grid.BitsConsumed(depth, dim);
    const uint64_t side = 1ULL << region_bits;
    const uint64_t blocks_total = grid.side() / side;
    // Worst alignment: the box straddles one extra block boundary.
    const uint64_t blocks = std::min(blocks_total, (extent - 1) / side + 2);
    // The product cannot overflow: it is bounded by the cell count, which
    // fits 64 bits by GridSpec's limits.
    bound *= blocks;
  }
  return bound;
}

}  // namespace probe::decompose
