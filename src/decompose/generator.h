#ifndef PROBE_DECOMPOSE_GENERATOR_H_
#define PROBE_DECOMPOSE_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "decompose/decomposer.h"
#include "geometry/object.h"
#include "probe/check.h"
#include "zorder/grid.h"
#include "zorder/zvalue.h"

/// \file
/// On-demand element generation (Section 3.3's second optimization).
///
/// "The sequence B does not have to be formed before the merge starts.
/// Elements of the box may be generated on demand, i.e. when a sequential
/// or random access on sequence B is performed." ElementGenerator is that
/// demand-driven producer: Next() yields the next element in z order, and
/// SeekForward() implements the random access — it skips every part of the
/// object that precedes a target z value without classifying it.

namespace probe::decompose {

/// Streams the elements of a decomposition in z order, lazily.
///
/// The generator holds a stack of unexplored regions (z-value prefixes);
/// regions are classified only when reached, so a merge that skips most of
/// the object also skips most of the classification work.
class ElementGenerator {
 public:
  /// The object must outlive the generator.
  ElementGenerator(const zorder::GridSpec& grid,
                   const geometry::SpatialObject& object,
                   const DecomposeOptions& options = {});

  /// Produces the next element in z order. Returns false when exhausted.
  bool Next(zorder::ZValue* out);

  /// Produces the next element whose z-value range [zlo, zhi] ends at or
  /// after `target` (a full-resolution z integer); i.e. the first element
  /// that could still contain a point with z value >= target. Regions that
  /// lie entirely before the target are discarded *without* classifier
  /// calls. Returns false when exhausted.
  bool SeekForward(uint64_t target, zorder::ZValue* out);

  /// Classifier invocations so far (work measure for the laziness ablation).
  uint64_t classify_calls() const { return stats_.classify_calls; }

  /// Elements emitted so far.
  uint64_t elements_emitted() const { return stats_.elements; }

 private:
  // Advances until an element is found; `target` prunes regions whose
  // entire z range precedes it (pass 0 for plain Next()).
  bool Advance(uint64_t target, zorder::ZValue* out);

  const zorder::GridSpec grid_;
  const geometry::SpatialObject& object_;
  const DecomposeOptions options_;
  const int depth_cap_;
  std::vector<zorder::ZValue> stack_;
  DecomposeStats stats_;
  // Audit state: emitted elements must be strictly ascending in z order.
  check::ZMonotone emit_order_{/*strict=*/true};
};

}  // namespace probe::decompose

#endif  // PROBE_DECOMPOSE_GENERATOR_H_
