#ifndef PROBE_DECOMPOSE_DECOMPOSER_H_
#define PROBE_DECOMPOSE_DECOMPOSER_H_

#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "geometry/object.h"
#include "zorder/grid.h"
#include "zorder/zvalue.h"

/// \file
/// Decomposition of spatial objects into elements (Section 3.1, Figure 2).
///
/// A region produced by the recursive alternating splitting policy is kept
/// (becomes an element) when it is entirely inside the object; a region
/// that crosses the boundary is split further, down to single pixels (or a
/// configured depth cap). Because child 0 precedes child 1 in z order, a
/// depth-first traversal emits elements already sorted by z value — no sort
/// step is needed.

namespace probe::decompose {

/// Tuning knobs for decomposition.
struct DecomposeOptions {
  /// Maximum z-value length of an emitted element. Boundary-crossing
  /// regions at this depth are emitted as elements (approximating the
  /// object from outside), matching the paper's grid approximation where
  /// boundary pixels count as part of the object. Default -1 means full
  /// pixel resolution (grid.total_bits()).
  int max_depth = -1;

  /// When false, boundary-crossing regions at the depth cap are dropped
  /// instead of emitted: the decomposition then approximates the object
  /// from the *inside*. Useful for interference tests that must avoid
  /// false positives.
  bool include_boundary = true;
};

/// Statistics from one decomposition run.
struct DecomposeStats {
  /// Elements emitted.
  uint64_t elements = 0;
  /// Calls made to the object's classifier.
  uint64_t classify_calls = 0;
  /// Elements that were boundary-crossing regions at the depth cap.
  uint64_t boundary_elements = 0;
};

/// Decomposes `object` into elements, in z order. `stats` may be null.
std::vector<zorder::ZValue> Decompose(const zorder::GridSpec& grid,
                                      const geometry::SpatialObject& object,
                                      const DecomposeOptions& options = {},
                                      DecomposeStats* stats = nullptr);

/// An element plus whether it came from a boundary-crossing region at the
/// depth cap (interior elements are certain; boundary elements are the
/// approximation fringe).
struct TaggedElement {
  zorder::ZValue z;
  bool boundary = false;
};

/// Like Decompose but keeps the interior/boundary distinction per element.
/// Interference detection (Section 6) uses the tags to separate certain
/// overlap from approximation-fringe contact.
std::vector<TaggedElement> DecomposeTagged(
    const zorder::GridSpec& grid, const geometry::SpatialObject& object,
    const DecomposeOptions& options = {}, DecomposeStats* stats = nullptr);

/// Decomposes an axis-aligned box (the range-query case, Figure 2). Exact:
/// box decompositions have no boundary-crossing leaves.
std::vector<zorder::ZValue> DecomposeBox(const zorder::GridSpec& grid,
                                         const geometry::GridBox& box,
                                         const DecomposeOptions& options = {},
                                         DecomposeStats* stats = nullptr);

/// Counts the elements a decomposition would produce without materializing
/// them (used by the Section 5.1 space analysis sweeps).
uint64_t CountElements(const zorder::GridSpec& grid,
                       const geometry::SpatialObject& object,
                       const DecomposeOptions& options = {});

/// Total number of grid cells covered by a set of elements.
uint64_t CoveredVolume(const zorder::GridSpec& grid,
                       const std::vector<zorder::ZValue>& elements);

}  // namespace probe::decompose

#endif  // PROBE_DECOMPOSE_DECOMPOSER_H_
