#ifndef PROBE_DECOMPOSE_COARSEN_H_
#define PROBE_DECOMPOSE_COARSEN_H_

#include <cstdint>

#include "geometry/box.h"
#include "zorder/grid.h"

/// \file
/// The grid-coarsening optimization of Section 5.1.
///
/// "By expanding the boundaries of the spatial object appropriately, the
/// number of elements generated can be decreased. Specifically, replace U
/// and V by U' and V' such that U' >= U, V' >= V and the last m bits of U'
/// and V' are zero. This is equivalent to using a coarser grid." The
/// imprecision added grows slowly because only the small boundary elements
/// get aggregated.

namespace probe::decompose {

/// Result of coarsening a box to granularity 2^m.
struct CoarsenedBox {
  /// The expanded box (a superset of the input, clipped to the grid).
  geometry::GridBox box;
  /// Cells in the expanded box.
  uint64_t volume = 0;
  /// Cells added relative to the input box.
  uint64_t added_volume = 0;
  /// added_volume / input volume.
  double relative_error = 0.0;
};

/// Expands `box` so every face lies on a multiple of 2^m: lower bounds are
/// rounded down, upper bounds up, then clipped to the grid. With m = 0 the
/// box is returned unchanged. This generalizes the paper's origin-anchored
/// construction (where only U and V move) to arbitrary boxes.
CoarsenedBox CoarsenBox(const zorder::GridSpec& grid,
                        const geometry::GridBox& box, int m);

}  // namespace probe::decompose

#endif  // PROBE_DECOMPOSE_COARSEN_H_
