#include "decompose/coarsen.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "util/bits.h"

namespace probe::decompose {

CoarsenedBox CoarsenBox(const zorder::GridSpec& grid,
                        const geometry::GridBox& box, int m) {
  assert(m >= 0 && m <= grid.bits_per_dim);
  const uint64_t unit = 1ULL << m;
  const uint64_t side = grid.side();
  std::vector<zorder::DimRange> ranges(box.dims());
  for (int i = 0; i < box.dims(); ++i) {
    const uint64_t lo = (box.range(i).lo / unit) * unit;
    // hi is inclusive; the exclusive end rounds up to a unit boundary.
    uint64_t hi_exclusive =
        util::RoundUpToZeroBits(static_cast<uint64_t>(box.range(i).hi) + 1, m);
    hi_exclusive = std::min(hi_exclusive, side);
    ranges[i].lo = static_cast<uint32_t>(lo);
    ranges[i].hi = static_cast<uint32_t>(hi_exclusive - 1);
  }
  CoarsenedBox out{geometry::GridBox(ranges), 0, 0, 0.0};
  out.volume = out.box.Volume();
  const uint64_t original = box.Volume();
  out.added_volume = out.volume - original;
  out.relative_error =
      static_cast<double>(out.added_volume) / static_cast<double>(original);
  return out;
}

}  // namespace probe::decompose
