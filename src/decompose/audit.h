#ifndef PROBE_DECOMPOSE_AUDIT_H_
#define PROBE_DECOMPOSE_AUDIT_H_

#include <cstdint>
#include <span>

#include "decompose/decomposer.h"
#include "geometry/box.h"
#include "zorder/grid.h"
#include "zorder/zvalue.h"

/// \file
/// Auditors for decomposition outputs (Section 3.1/5.1).
///
/// A decomposition must be a disjoint cover: elements strictly ascending in
/// z order, pairwise disjoint as z intervals, and — for an exact (full
/// depth) box decomposition — covering exactly the box's cells. These abort
/// on violation and are wrapped in PROBE_AUDIT at the emit sites.

namespace probe::decompose {

/// Audits a general decomposition result: sorted, disjoint, within the
/// grid's resolution. Does not check coverage (general objects are only
/// approximated by their covers).
void AuditDecomposition(const zorder::GridSpec& grid,
                        std::span<const zorder::ZValue> elements);

/// Audits a box decomposition. When `exact` (full-resolution decomposition
/// of an aligned box) the union of elements must cover exactly
/// `box.Volume()` cells; otherwise at least that many (a depth-capped cover
/// approximates the box from outside) — unless boundary elements were
/// dropped, in which case at most that many.
void AuditBoxCover(const zorder::GridSpec& grid, const geometry::GridBox& box,
                   std::span<const zorder::ZValue> elements, bool exact,
                   bool include_boundary);

}  // namespace probe::decompose

#endif  // PROBE_DECOMPOSE_AUDIT_H_
