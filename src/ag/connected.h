#ifndef PROBE_AG_CONNECTED_H_
#define PROBE_AG_CONNECTED_H_

#include <cstdint>
#include <span>
#include <vector>

#include "zorder/grid.h"
#include "zorder/zvalue.h"

/// \file
/// Connected-component labelling on a z-ordered element sequence
/// (Section 6).
///
/// The input is a decomposed black-and-white picture — a linear quadtree in
/// the IPV vocabulary. Components are maximal 4-connected sets of black
/// cells. Instead of the "extremely complicated" direct quadtree algorithm
/// the paper cites [SAME85c], the AG formulation is a union-find over
/// elements: two elements join when their regions share an edge. Neighbor
/// elements are found by point location in the sorted sequence (binary
/// search on z ranges), and each face is walked in jumps the size of the
/// neighbor just found, so the work is proportional to the number of
/// adjacencies, not the pixel area.

namespace probe::ag {

/// Result of a labelling run.
struct ComponentResult {
  /// Component id (0-based, in order of first appearance) per input element.
  std::vector<int> component_of;
  /// Number of distinct components.
  int component_count = 0;
  /// Cells per component (the "area of each object" global property).
  std::vector<uint64_t> component_areas;
  /// Adjacency probes performed (work measure).
  uint64_t probes = 0;
};

/// Labels the 4-connected components of a 2-d element sequence. `elements`
/// must be sorted in z order and pairwise non-overlapping (the output of
/// Decompose always is). Requires grid.dims == 2.
ComponentResult LabelComponents(const zorder::GridSpec& grid,
                                std::span<const zorder::ZValue> elements);

}  // namespace probe::ag

#endif  // PROBE_AG_CONNECTED_H_
