#ifndef PROBE_AG_SETOPS_H_
#define PROBE_AG_SETOPS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "zorder/grid.h"
#include "zorder/zvalue.h"

/// \file
/// Set algebra on element sequences — the algebraic core of the Section 6
/// algorithms.
///
/// A decomposed spatial object *is* a set of cells represented as a
/// z-ordered sequence of disjoint elements. Union, intersection and
/// difference of objects then reduce to merges of their sequences
/// (overlay is intersection with labels; interference is emptiness of
/// intersection; containment is emptiness of difference). All operations
/// cost O(|A| + |B| + |output|) merge steps — surface, not volume — and
/// produce *canonical* sequences: disjoint, z-sorted, with sibling pairs
/// coalesced into their parent, so equal cell sets have equal sequences.

namespace probe::ag {

/// True iff `elements` is sorted in z order and pairwise disjoint (the
/// decomposer's output contract; inputs to the set operations).
bool IsDisjointSorted(const zorder::GridSpec& grid,
                      std::span<const zorder::ZValue> elements);

/// Canonicalizes a disjoint sorted sequence: coalesces complete sibling
/// pairs bottom-up until no two adjacent elements merge. The result
/// represents the same cell set; equal cell sets canonicalize to the same
/// sequence.
std::vector<zorder::ZValue> Canonicalize(
    const zorder::GridSpec& grid, std::span<const zorder::ZValue> elements);

/// Cells covered by a or b (canonical).
std::vector<zorder::ZValue> UnionOf(const zorder::GridSpec& grid,
                                    std::span<const zorder::ZValue> a,
                                    std::span<const zorder::ZValue> b);

/// Cells covered by both a and b (canonical).
std::vector<zorder::ZValue> IntersectionOf(const zorder::GridSpec& grid,
                                           std::span<const zorder::ZValue> a,
                                           std::span<const zorder::ZValue> b);

/// Cells covered by a but not b (canonical).
std::vector<zorder::ZValue> DifferenceOf(const zorder::GridSpec& grid,
                                         std::span<const zorder::ZValue> a,
                                         std::span<const zorder::ZValue> b);

/// True iff every cell of b is covered by a (the containment query of
/// Section 6: "containment implies overlap but not vice versa").
bool Covers(const zorder::GridSpec& grid, std::span<const zorder::ZValue> a,
            std::span<const zorder::ZValue> b);

/// Number of cells a sequence covers.
uint64_t SequenceVolume(const zorder::GridSpec& grid,
                        std::span<const zorder::ZValue> elements);

}  // namespace probe::ag

#endif  // PROBE_AG_SETOPS_H_
