#ifndef PROBE_AG_INTERFERENCE_H_
#define PROBE_AG_INTERFERENCE_H_

#include <cstdint>
#include <optional>
#include <utility>

#include "decompose/decomposer.h"
#include "geometry/object.h"
#include "zorder/grid.h"

/// \file
/// Interference detection for mechanical CAD (Section 6).
///
/// "Very recently, IPV researchers have been using quadtrees to support
/// approximate algorithms for interference detection [MANT83, SAME85b].
/// AG, the spatial join in particular, can be of use here." Two parts
/// interfere when their decompositions share space. Boundary elements are
/// the approximation fringe, so the verdict is three-valued:
///
///   * kSolidOverlap   — two interior elements overlap: the parts
///                       definitely intersect (at grid resolution).
///   * kBoundaryContact — only pairs involving a boundary element overlap:
///                       the parts are within one element of touching;
///                       a finer grid (or an exact processor) must decide.
///   * kDisjoint        — no elements overlap: the parts are separated.
///
/// The merge stops at the first interior-interior pair, so deeply
/// interpenetrating parts are detected after a handful of elements.

namespace probe::ag {

/// Three-valued interference verdict.
enum class Interference { kDisjoint, kBoundaryContact, kSolidOverlap };

/// Outcome of one interference test.
struct InterferenceResult {
  Interference verdict = Interference::kDisjoint;
  /// A witnessing element pair (a's element, b's element) for non-disjoint
  /// verdicts: an interior-interior pair for kSolidOverlap, otherwise the
  /// first boundary-involved pair seen.
  std::optional<std::pair<zorder::ZValue, zorder::ZValue>> witness;
  /// Elements generated for each object (work measure).
  uint64_t a_elements = 0;
  uint64_t b_elements = 0;
  /// Merge steps executed before the verdict.
  uint64_t merge_steps = 0;
};

/// Tests two parts for interference on `grid`. `max_depth` caps the
/// decomposition depth (-1 = pixel resolution); coarser caps are faster
/// but report kBoundaryContact for a wider fringe.
InterferenceResult DetectInterference(const zorder::GridSpec& grid,
                                      const geometry::SpatialObject& a,
                                      const geometry::SpatialObject& b,
                                      int max_depth = -1);

}  // namespace probe::ag

#endif  // PROBE_AG_INTERFERENCE_H_
