#include "ag/connected.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "zorder/shuffle.h"

namespace probe::ag {

namespace {

using zorder::DimRange;
using zorder::GridSpec;
using zorder::ZValue;

// Union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
};

// Locates the element whose z range contains the cell (x, y); -1 if the
// cell is white. `range_lo` holds each element's zlo in ascending order.
int LocateElement(const GridSpec& grid, std::span<const ZValue> elements,
                  const std::vector<uint64_t>& range_lo, uint32_t x,
                  uint32_t y) {
  const uint64_t z = Shuffle2D(grid, x, y).ToInteger();
  // Last element with zlo <= z.
  auto it = std::upper_bound(range_lo.begin(), range_lo.end(), z);
  if (it == range_lo.begin()) return -1;
  const size_t idx = static_cast<size_t>(it - range_lo.begin()) - 1;
  if (elements[idx].RangeHi(grid.total_bits()) < z) return -1;
  return static_cast<int>(idx);
}

}  // namespace

ComponentResult LabelComponents(const GridSpec& grid,
                                std::span<const ZValue> elements) {
  assert(grid.dims == 2);
  ComponentResult result;
  const size_t n = elements.size();
  std::vector<uint64_t> range_lo(n);
  for (size_t i = 0; i < n; ++i) {
    range_lo[i] = elements[i].RangeLo(grid.total_bits());
    assert(i == 0 || range_lo[i] > range_lo[i - 1]);
  }

  UnionFind uf(n);
  const uint32_t side = static_cast<uint32_t>(grid.side());
  for (size_t i = 0; i < n; ++i) {
    const auto ranges = UnshuffleRegion(grid, elements[i]);
    const DimRange& xr = ranges[0];
    const DimRange& yr = ranges[1];
    // Probe the west face (x = xr.lo - 1) and the south face
    // (y = yr.lo - 1); east/north adjacencies are discovered by the
    // neighbor itself, so every edge is examined once.
    if (xr.lo > 0) {
      uint32_t y = yr.lo;
      while (y <= yr.hi) {
        ++result.probes;
        const int neighbor =
            LocateElement(grid, elements, range_lo, xr.lo - 1, y);
        uint32_t jump_to = y + 1;
        if (neighbor >= 0) {
          uf.Union(i, static_cast<size_t>(neighbor));
          const auto nr = UnshuffleRegion(grid, elements[neighbor]);
          jump_to = nr[1].hi + 1;  // skip the rest of that neighbor's face
        }
        if (jump_to <= y) break;  // guard against wrap at the grid edge
        y = jump_to;
      }
    }
    if (yr.lo > 0) {
      uint32_t x = xr.lo;
      while (x <= xr.hi) {
        ++result.probes;
        const int neighbor =
            LocateElement(grid, elements, range_lo, x, yr.lo - 1);
        uint32_t jump_to = x + 1;
        if (neighbor >= 0) {
          uf.Union(i, static_cast<size_t>(neighbor));
          const auto nr = UnshuffleRegion(grid, elements[neighbor]);
          jump_to = nr[0].hi + 1;
        }
        if (jump_to <= x) break;
        x = jump_to;
      }
    }
    (void)side;
  }

  // Assign dense component ids in order of first appearance.
  result.component_of.assign(n, -1);
  std::vector<int> root_to_component(n, -1);
  for (size_t i = 0; i < n; ++i) {
    const size_t root = uf.Find(i);
    if (root_to_component[root] < 0) {
      root_to_component[root] = result.component_count++;
      result.component_areas.push_back(0);
    }
    const int comp = root_to_component[root];
    result.component_of[i] = comp;
    result.component_areas[comp] +=
        1ULL << (grid.total_bits() - elements[i].length());
  }
  return result;
}

}  // namespace probe::ag
