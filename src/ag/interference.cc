#include "ag/interference.h"

#include <vector>

#include "ag/merge.h"

namespace probe::ag {

InterferenceResult DetectInterference(const zorder::GridSpec& grid,
                                      const geometry::SpatialObject& a,
                                      const geometry::SpatialObject& b,
                                      int max_depth) {
  decompose::DecomposeOptions options;
  options.max_depth = max_depth;
  const auto a_tagged = DecomposeTagged(grid, a, options);
  const auto b_tagged = DecomposeTagged(grid, b, options);

  std::vector<zorder::ZValue> a_z(a_tagged.size()), b_z(b_tagged.size());
  for (size_t i = 0; i < a_tagged.size(); ++i) a_z[i] = a_tagged[i].z;
  for (size_t j = 0; j < b_tagged.size(); ++j) b_z[j] = b_tagged[j].z;

  InterferenceResult result;
  result.a_elements = a_tagged.size();
  result.b_elements = b_tagged.size();

  result.merge_steps =
      MergeOverlappingElements(a_z, b_z, [&](size_t i, size_t j) {
        const bool solid = !a_tagged[i].boundary && !b_tagged[j].boundary;
        if (solid) {
          result.verdict = Interference::kSolidOverlap;
          result.witness = {a_z[i], b_z[j]};
          return false;  // early exit: definite interference
        }
        if (result.verdict == Interference::kDisjoint) {
          result.verdict = Interference::kBoundaryContact;
          result.witness = {a_z[i], b_z[j]};
        }
        return true;  // keep looking for a solid pair
      });
  return result;
}

}  // namespace probe::ag
