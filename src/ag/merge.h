#ifndef PROBE_AG_MERGE_H_
#define PROBE_AG_MERGE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "zorder/zvalue.h"

/// \file
/// The generic overlap merge over two z-ordered element sequences.
///
/// Every Section 6 algorithm — overlay, interference, and the spatial join
/// itself — reduces to the same scan: walk two sorted element sequences in
/// z order maintaining, per side, the stack of elements whose z range still
/// covers the current position, and pair each arriving element with the
/// other side's open stack. Correctness rests on Section 3.2's structural
/// theorem: elements either nest or are disjoint, so the open set is a
/// chain of prefixes.

namespace probe::ag {

/// Calls `visit(i, j)` exactly once for every pair (a[i], b[j]) whose
/// elements overlap (one z value contains the other). Both spans must be
/// sorted in z order. `visit` returns false to stop the merge early (used
/// by interference detection). Returns the number of merge steps taken.
template <typename Visit>
uint64_t MergeOverlappingElements(std::span<const zorder::ZValue> a,
                                  std::span<const zorder::ZValue> b,
                                  Visit&& visit) {
  std::vector<size_t> a_stack, b_stack;
  size_t i = 0;
  size_t j = 0;
  uint64_t steps = 0;
  while (i < a.size() || j < b.size()) {
    ++steps;
    bool take_a;
    if (i >= a.size()) {
      take_a = false;
    } else if (j >= b.size()) {
      take_a = true;
    } else {
      take_a = !(b[j] < a[i]);  // ties to A; equal elements nest either way
    }
    const zorder::ZValue& z = take_a ? a[i] : b[j];
    while (!a_stack.empty() && !a[a_stack.back()].Contains(z)) {
      a_stack.pop_back();
    }
    while (!b_stack.empty() && !b[b_stack.back()].Contains(z)) {
      b_stack.pop_back();
    }
    if (take_a) {
      for (size_t open : b_stack) {
        if (!visit(i, open)) return steps;
      }
      a_stack.push_back(i);
      ++i;
    } else {
      for (size_t open : a_stack) {
        if (!visit(open, j)) return steps;
      }
      b_stack.push_back(j);
      ++j;
    }
  }
  return steps;
}

}  // namespace probe::ag

#endif  // PROBE_AG_MERGE_H_
