#ifndef PROBE_AG_OVERLAY_H_
#define PROBE_AG_OVERLAY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "zorder/grid.h"
#include "zorder/zvalue.h"

/// \file
/// Polygon overlay on element sequences (Section 6).
///
/// "Polygon overlay is an extremely important operation in geographic
/// information processing. The operation is simple to carry out on a grid
/// representation, a pixel at a time. We have developed an AG algorithm
/// that works directly on sequences of elements" — faster because cost
/// follows *surface area*, not volume. Given two decomposed layers (e.g.
/// land parcels and flood zones), the overlay finds every overlapping
/// (labelA, labelB) combination together with the overlap region and its
/// area, in one merge over the element sequences.

namespace probe::ag {

/// An element attributed to an object of one layer.
struct LabeledElement {
  zorder::ZValue z;
  uint64_t label = 0;
};

/// One piece of the overlay: a region where an A object and a B object
/// coincide. `region` is the finer of the two paired elements, so it is
/// exactly the intersection of the pair.
struct OverlayPiece {
  zorder::ZValue region;
  uint64_t a_label = 0;
  uint64_t b_label = 0;
};

/// Aggregated overlay: total intersection area per label pair.
struct OverlayArea {
  uint64_t a_label = 0;
  uint64_t b_label = 0;
  uint64_t cells = 0;
};

/// Computes the overlay pieces of two layers. Each input must be sorted in
/// z order (the order Decompose emits). Within one layer, elements of
/// *different* labels must not overlap (they may in principle nest if the
/// caller decomposed overlapping objects into one layer; that is the
/// caller's modelling choice — every piece is still reported).
std::vector<OverlayPiece> OverlayElements(std::span<const LabeledElement> a,
                                          std::span<const LabeledElement> b);

/// Aggregates pieces into per-(a_label, b_label) intersection cell counts,
/// sorted by (a_label, b_label).
std::vector<OverlayArea> AggregateOverlay(const zorder::GridSpec& grid,
                                          std::span<const OverlayPiece> pieces);

/// The complete thematic coverage of two layers: every label-pair
/// intersection plus, per label, the cells covered by no object of the
/// other layer. This is the full "polygon overlay" product of geographic
/// information processing — intersections tell you what overlaps what;
/// the remainders tell you what is unaccounted for.
struct CoverageReport {
  /// Intersection cells per (a_label, b_label), sorted.
  std::vector<OverlayArea> intersections;
  /// (a_label, cells of that label outside every B object), sorted.
  std::vector<std::pair<uint64_t, uint64_t>> a_only;
  /// (b_label, cells of that label outside every A object), sorted.
  std::vector<std::pair<uint64_t, uint64_t>> b_only;
};

/// Computes the full coverage. Inputs as for OverlayElements.
CoverageReport OverlayCoverage(const zorder::GridSpec& grid,
                               std::span<const LabeledElement> a,
                               std::span<const LabeledElement> b);

}  // namespace probe::ag

#endif  // PROBE_AG_OVERLAY_H_
