#include "ag/setops.h"

#include <algorithm>
#include <cassert>

#include "util/bits.h"

namespace probe::ag {

namespace {

using zorder::GridSpec;
using zorder::ZValue;

// A maximal run of consecutive full-resolution z values, inclusive.
struct Run {
  uint64_t lo;
  uint64_t hi;
};

// Elements (disjoint, sorted) -> coalesced runs.
std::vector<Run> RunsFromElements(const GridSpec& grid,
                                  std::span<const ZValue> elements) {
  const int total = grid.total_bits();
  std::vector<Run> runs;
  for (const ZValue& e : elements) {
    const uint64_t lo = e.RangeLo(total);
    const uint64_t hi = e.RangeHi(total);
    assert(runs.empty() || lo > runs.back().hi);
    if (!runs.empty() && runs.back().hi + 1 == lo) {
      runs.back().hi = hi;
    } else {
      runs.push_back(Run{lo, hi});
    }
  }
  return runs;
}

// Runs -> canonical elements: greedy maximal aligned blocks. A z-aligned
// block of size 2^s is exactly the range of a (total - s)-bit prefix, so
// this is the unique coarsest element cover of the run set.
std::vector<ZValue> ElementsFromRuns(const GridSpec& grid,
                                     const std::vector<Run>& runs) {
  const int total = grid.total_bits();
  std::vector<ZValue> elements;
  for (const Run& run : runs) {
    uint64_t lo = run.lo;
    while (lo <= run.hi) {
      const uint64_t remaining = run.hi - lo + 1;
      // Largest power of two that divides lo (alignment) and fits.
      int log_size = lo == 0 ? total : std::min(total, util::LowestSetBit(lo));
      while ((1ULL << log_size) > remaining) --log_size;
      elements.push_back(
          ZValue::FromInteger(lo >> log_size, total - log_size));
      lo += 1ULL << log_size;
      if (lo == 0) break;  // wrapped: the run ended at the space's last cell
    }
  }
  return elements;
}

std::vector<Run> UnionRuns(const std::vector<Run>& a,
                           const std::vector<Run>& b) {
  std::vector<Run> merged;
  size_t i = 0;
  size_t j = 0;
  auto push = [&](const Run& r) {
    if (merged.empty()) {
      merged.push_back(r);
      return;
    }
    Run& back = merged.back();
    if (back.hi == ~0ULL) return;  // already covers to the end of space
    if (r.lo > back.hi + 1) {
      merged.push_back(r);
      return;
    }
    back.hi = std::max(back.hi, r.hi);  // adjacent or overlapping: extend
  };
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && a[i].lo <= b[j].lo)) {
      push(a[i++]);
    } else {
      push(b[j++]);
    }
  }
  return merged;
}

std::vector<Run> IntersectRuns(const std::vector<Run>& a,
                               const std::vector<Run>& b) {
  std::vector<Run> out;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const uint64_t lo = std::max(a[i].lo, b[j].lo);
    const uint64_t hi = std::min(a[i].hi, b[j].hi);
    if (lo <= hi) out.push_back(Run{lo, hi});
    if (a[i].hi < b[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

std::vector<Run> SubtractRuns(const std::vector<Run>& a,
                              const std::vector<Run>& b) {
  std::vector<Run> out;
  size_t j = 0;
  for (const Run& run : a) {
    uint64_t lo = run.lo;
    bool tail_alive = true;
    while (j < b.size() && b[j].hi < run.lo) ++j;  // blockers before the run
    size_t k = j;
    while (k < b.size() && b[k].lo <= run.hi) {
      // Invariant: b[k].hi >= lo (earlier blockers were consumed), so the
      // uncovered span before this blocker, if any, is [lo, b[k].lo - 1].
      if (b[k].lo > lo) out.push_back(Run{lo, b[k].lo - 1});
      if (b[k].hi >= run.hi) {
        tail_alive = false;  // blocker runs past the end of this run
        break;
      }
      lo = b[k].hi + 1;
      ++k;
    }
    if (tail_alive && lo <= run.hi) out.push_back(Run{lo, run.hi});
  }
  return out;
}

}  // namespace

bool IsDisjointSorted(const GridSpec& grid, std::span<const ZValue> elements) {
  const int total = grid.total_bits();
  for (size_t i = 1; i < elements.size(); ++i) {
    if (elements[i - 1].RangeHi(total) >= elements[i].RangeLo(total)) {
      return false;
    }
  }
  for (const ZValue& e : elements) {
    if (e.length() > total) return false;
  }
  return true;
}

std::vector<ZValue> Canonicalize(const GridSpec& grid,
                                 std::span<const ZValue> elements) {
  assert(IsDisjointSorted(grid, elements));
  return ElementsFromRuns(grid, RunsFromElements(grid, elements));
}

std::vector<ZValue> UnionOf(const GridSpec& grid, std::span<const ZValue> a,
                            std::span<const ZValue> b) {
  assert(IsDisjointSorted(grid, a) && IsDisjointSorted(grid, b));
  return ElementsFromRuns(grid, UnionRuns(RunsFromElements(grid, a),
                                          RunsFromElements(grid, b)));
}

std::vector<ZValue> IntersectionOf(const GridSpec& grid,
                                   std::span<const ZValue> a,
                                   std::span<const ZValue> b) {
  assert(IsDisjointSorted(grid, a) && IsDisjointSorted(grid, b));
  return ElementsFromRuns(grid, IntersectRuns(RunsFromElements(grid, a),
                                              RunsFromElements(grid, b)));
}

std::vector<ZValue> DifferenceOf(const GridSpec& grid,
                                 std::span<const ZValue> a,
                                 std::span<const ZValue> b) {
  assert(IsDisjointSorted(grid, a) && IsDisjointSorted(grid, b));
  return ElementsFromRuns(grid, SubtractRuns(RunsFromElements(grid, a),
                                             RunsFromElements(grid, b)));
}

bool Covers(const GridSpec& grid, std::span<const ZValue> a,
            std::span<const ZValue> b) {
  return SubtractRuns(RunsFromElements(grid, b), RunsFromElements(grid, a))
      .empty();
}

uint64_t SequenceVolume(const GridSpec& grid,
                        std::span<const ZValue> elements) {
  uint64_t volume = 0;
  for (const ZValue& e : elements) {
    volume += 1ULL << (grid.total_bits() - e.length());
  }
  return volume;
}

}  // namespace probe::ag
