#include "ag/overlay.h"

#include <algorithm>
#include <map>

#include "ag/merge.h"
#include "ag/setops.h"

namespace probe::ag {

std::vector<OverlayPiece> OverlayElements(std::span<const LabeledElement> a,
                                          std::span<const LabeledElement> b) {
  std::vector<zorder::ZValue> a_z(a.size()), b_z(b.size());
  for (size_t i = 0; i < a.size(); ++i) a_z[i] = a[i].z;
  for (size_t j = 0; j < b.size(); ++j) b_z[j] = b[j].z;

  std::vector<OverlayPiece> pieces;
  MergeOverlappingElements(a_z, b_z, [&](size_t i, size_t j) {
    OverlayPiece piece;
    // The deeper (longer) element of the pair is contained in the other,
    // so it *is* the intersection region.
    piece.region = a_z[i].length() >= b_z[j].length() ? a_z[i] : b_z[j];
    piece.a_label = a[i].label;
    piece.b_label = b[j].label;
    pieces.push_back(piece);
    return true;
  });
  return pieces;
}

std::vector<OverlayArea> AggregateOverlay(
    const zorder::GridSpec& grid, std::span<const OverlayPiece> pieces) {
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> areas;
  for (const OverlayPiece& piece : pieces) {
    const uint64_t cells = 1ULL
                           << (grid.total_bits() - piece.region.length());
    areas[{piece.a_label, piece.b_label}] += cells;
  }
  std::vector<OverlayArea> out;
  out.reserve(areas.size());
  for (const auto& [key, cells] : areas) {
    out.push_back(OverlayArea{key.first, key.second, cells});
  }
  return out;
}

CoverageReport OverlayCoverage(const zorder::GridSpec& grid,
                               std::span<const LabeledElement> a,
                               std::span<const LabeledElement> b) {
  CoverageReport report;
  report.intersections = AggregateOverlay(grid, OverlayElements(a, b));

  // Per-label element subsequences (z order is preserved by filtering) and
  // the union footprint of each layer.
  auto split_by_label = [](std::span<const LabeledElement> layer) {
    std::map<uint64_t, std::vector<zorder::ZValue>> by_label;
    for (const LabeledElement& e : layer) by_label[e.label].push_back(e.z);
    return by_label;
  };
  const auto a_by_label = split_by_label(a);
  const auto b_by_label = split_by_label(b);

  auto footprint = [&grid](
                       const std::map<uint64_t, std::vector<zorder::ZValue>>&
                           by_label) {
    std::vector<zorder::ZValue> all;
    for (const auto& [label, elements] : by_label) {
      all = UnionOf(grid, all, elements);
    }
    return all;
  };
  const auto a_footprint = footprint(a_by_label);
  const auto b_footprint = footprint(b_by_label);

  for (const auto& [label, elements] : a_by_label) {
    report.a_only.emplace_back(
        label,
        SequenceVolume(grid, DifferenceOf(grid, elements, b_footprint)));
  }
  for (const auto& [label, elements] : b_by_label) {
    report.b_only.emplace_back(
        label,
        SequenceVolume(grid, DifferenceOf(grid, elements, a_footprint)));
  }
  return report;
}

}  // namespace probe::ag
