#include "server/session.h"

#include <utility>

namespace probe::server {

uint64_t SessionManager::Create(int32_t max_element_depth,
                                std::string client_name) {
  util::MutexLock lock(&mutex_);
  const uint64_t id = next_id_++;
  sessions_.emplace(id, std::make_unique<Session>(id, max_element_depth,
                                                  std::move(client_name)));
  return id;
}

Session* SessionManager::Touch(uint64_t id) {
  util::MutexLock lock(&mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return nullptr;
  it->second->Touch();
  return it->second.get();
}

bool SessionManager::Close(uint64_t id) {
  util::MutexLock lock(&mutex_);
  return sessions_.erase(id) != 0;
}

bool SessionManager::Expired(uint64_t id) const {
  util::MutexLock lock(&mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  return std::chrono::steady_clock::now() - it->second->last_active() >
         idle_timeout_;
}

size_t SessionManager::ExpireIdle() {
  util::MutexLock lock(&mutex_);
  const auto now = std::chrono::steady_clock::now();
  size_t expired = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second->last_active() > idle_timeout_) {
      it = sessions_.erase(it);
      ++expired;
    } else {
      ++it;
    }
  }
  return expired;
}

size_t SessionManager::active() const {
  util::MutexLock lock(&mutex_);
  return sessions_.size();
}

}  // namespace probe::server
