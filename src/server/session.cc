#include "server/session.h"

#include <utility>

namespace probe::server {

std::chrono::steady_clock::time_point SessionManager::Now() const {
  return clock_ ? clock_() : std::chrono::steady_clock::now();
}

void SessionManager::SetClockForTest(
    std::function<std::chrono::steady_clock::time_point()> clock) {
  util::MutexLock lock(&mutex_);
  clock_ = std::move(clock);
}

uint64_t SessionManager::Create(int32_t max_element_depth,
                                std::string client_name) {
  util::MutexLock lock(&mutex_);
  const uint64_t id = next_id_++;
  sessions_.emplace(id, std::make_unique<Session>(id, max_element_depth,
                                                  std::move(client_name),
                                                  Now()));
  return id;
}

Session* SessionManager::Touch(uint64_t id) {
  util::MutexLock lock(&mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return nullptr;
  const auto now = Now();
  // An expired session is dead even if nobody swept it yet: touching it
  // must not revive it (that would make expiry depend on sweep timing).
  if (now - it->second->last_active() > idle_timeout_) return nullptr;
  it->second->Touch(now);
  return it->second.get();
}

bool SessionManager::Close(uint64_t id) {
  util::MutexLock lock(&mutex_);
  return sessions_.erase(id) != 0;
}

bool SessionManager::Expired(uint64_t id) const {
  util::MutexLock lock(&mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  return Now() - it->second->last_active() > idle_timeout_;
}

size_t SessionManager::ExpireIdle() {
  util::MutexLock lock(&mutex_);
  const auto now = Now();
  size_t expired = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second->last_active() > idle_timeout_) {
      it = sessions_.erase(it);
      ++expired;
    } else {
      ++it;
    }
  }
  return expired;
}

size_t SessionManager::active() const {
  util::MutexLock lock(&mutex_);
  return sessions_.size();
}

}  // namespace probe::server
