#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace probe::server {

namespace {

// Cap on buffered HTTP request bytes; headers past this are hostile.
constexpr size_t kMaxHttpRequest = 8192;

// Receive-timeout tick: blocked reads wake this often to check shutdown
// and session-idle deadlines.
constexpr int kRecvTickMs = 50;

// k-NN request cap: a hostile k cannot force an arbitrarily large
// response allocation.
constexpr uint32_t kMaxKnnK = 1u << 16;

void SetRecvTimeout(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

Server::Server(ShardedEngine* engine, const ServerOptions& options)
    : engine_(engine),
      options_(options),
      sessions_(options.idle_timeout),
      pool_(std::max(1, options.worker_threads)) {
  obs::Registry& reg = obs::Registry::Default();
  m_requests_ = reg.GetCounter("probe_server_requests_total");
  m_errors_ = reg.GetCounter("probe_server_errors_total");
  m_busy_ = reg.GetCounter("probe_server_busy_total");
  m_bytes_read_ = reg.GetCounter("probe_server_bytes_read_total");
  m_bytes_written_ = reg.GetCounter("probe_server_bytes_written_total");
  m_sessions_ = reg.GetGauge("probe_server_sessions");
  m_connections_ = reg.GetGauge("probe_server_connections");
  m_request_ms_ = reg.GetHistogram("probe_server_request_ms", {},
                                   obs::Histogram::LatencyBucketsMs());
}

Server::~Server() { Stop(); }

bool Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  // invariant-lint waiver(raw-thread): dedicated acceptor (see server.h).
  acceptor_ = std::thread([this]() { AcceptLoop(); });
  return true;
}

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (Stop) or fatal
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ServeConnection(fd);
  }
}

void Server::ServeConnection(int fd) {
  connections_total_.fetch_add(1);
  if (stopping_.load() ||
      active_connections_.load() >= options_.max_connections) {
    // Refuse at the door: a kBusy frame, then close. Nothing queues.
    busy_total_.fetch_add(1);
    m_busy_->Increment();
    ErrorResponse busy;
    busy.status = stopping_.load() ? Status::kShuttingDown : Status::kBusy;
    busy.message = StatusName(busy.status);
    std::vector<uint8_t> bytes;
    EncodeFrame(busy.ToFrame(0), &bytes);
    WriteAll(fd, bytes.data(), bytes.size());
    ::close(fd);
    return;
  }
  active_connections_.fetch_add(1);
  m_connections_->Add(1);
  RegisterFd(fd);
  pool_.Submit([this, fd]() { HandleConnection(fd); });
}

void Server::HandleConnection(int fd) {
  SetRecvTimeout(fd, kRecvTickMs);
  Conn conn;
  conn.fd = fd;
  conn.last_frame = std::chrono::steady_clock::now();

  // Protocol discrimination: read until the first byte arrives. 'z' (the
  // frame magic) selects the binary protocol; anything else is HTTP.
  std::vector<uint8_t> buf;
  for (;;) {
    uint8_t first = 0;
    const ssize_t n = ::recv(fd, &first, 1, 0);
    if (n == 1) {
      buf.push_back(first);
      break;
    }
    if (n == 0 || stopping_.load() ||
        (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)) {
      buf.clear();
      break;
    }
    if (std::chrono::steady_clock::now() - conn.last_frame >
        sessions_.idle_timeout()) {
      buf.clear();
      break;
    }
  }
  if (!buf.empty()) {
    if (buf[0] == kMagic0) {
      ServeBinary(&conn, std::move(buf));
    } else {
      ServeHttp(&conn, std::move(buf));
    }
  }

  if (conn.session_id != 0) {
    if (sessions_.Close(conn.session_id)) m_sessions_->Add(-1);
  }
  UnregisterFd(fd);
  ::close(fd);
  active_connections_.fetch_sub(1);
  m_connections_->Add(-1);
}

void Server::ServeBinary(Conn* conn, std::vector<uint8_t> buf) {
  size_t off = 0;
  uint8_t chunk[16384];
  for (;;) {
    // Drain every complete frame already buffered, batching the encoded
    // responses into one write (what makes pipelining pay).
    std::vector<uint8_t> out;
    bool keep_open = true;
    while (keep_open) {
      Frame frame;
      size_t consumed = 0;
      Status error = Status::kOk;
      const DecodeResult r = DecodeFrame(
          std::span<const uint8_t>(buf.data() + off, buf.size() - off), &frame,
          &consumed, &error);
      if (r == DecodeResult::kNeedMore) break;
      if (r == DecodeResult::kError) {
        // The stream is unsynchronized: report and hang up.
        errors_total_.fetch_add(1);
        m_errors_->Increment();
        SendError(&out, 0, error, StatusName(error));
        keep_open = false;
        break;
      }
      off += consumed;
      conn->last_frame = std::chrono::steady_clock::now();
      if (error != Status::kOk) {
        // Intact frame, unknown type: answer per-frame and stay open.
        errors_total_.fetch_add(1);
        m_errors_->Increment();
        SendError(&out, frame.request_id, error, StatusName(error));
        continue;
      }
      keep_open = HandleFrame(conn, frame, &out);
    }
    if (!out.empty()) {
      m_bytes_written_->Increment(out.size());
      if (!WriteAll(conn->fd, out.data(), out.size())) return;
    }
    if (!keep_open) return;
    if (off > 0) {
      buf.erase(buf.begin(), buf.begin() + static_cast<ptrdiff_t>(off));
      off = 0;
    }

    // Refill.
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      m_bytes_read_->Increment(static_cast<uint64_t>(n));
      buf.insert(buf.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) return;  // peer closed
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return;
    // Timeout tick: shutdown and idle checks.
    if (stopping_.load()) {
      std::vector<uint8_t> bye;
      SendError(&bye, 0, Status::kShuttingDown, "server stopping");
      WriteAll(conn->fd, bye.data(), bye.size());
      return;
    }
    if (conn->session_id != 0 && sessions_.Expired(conn->session_id)) {
      std::vector<uint8_t> expired;
      SendError(&expired, 0, Status::kSessionExpired, "idle timeout");
      WriteAll(conn->fd, expired.data(), expired.size());
      if (sessions_.Close(conn->session_id)) m_sessions_->Add(-1);
      conn->session_id = 0;
      return;
    }
    if (std::chrono::steady_clock::now() - conn->last_frame >
        sessions_.idle_timeout()) {
      return;  // idle connection with no session: just hang up
    }
  }
}

bool Server::HandleFrame(Conn* conn, const Frame& frame,
                         std::vector<uint8_t>* out) {
  requests_total_.fetch_add(1);
  m_requests_->Increment();
  const auto started = std::chrono::steady_clock::now();
  bool keep_open = true;

  switch (frame.type) {
    case FrameType::kPing: {
      Frame pong;
      pong.type = FrameType::kPong;
      pong.request_id = frame.request_id;
      EncodeFrame(pong, out);
      break;
    }
    case FrameType::kHello: {
      HelloRequest req;
      if (!HelloRequest::FromPayload(frame.payload, &req)) {
        errors_total_.fetch_add(1);
        m_errors_->Increment();
        SendError(out, frame.request_id, Status::kBadPayload, "bad HELLO");
        break;
      }
      if (conn->session_id != 0) {
        errors_total_.fetch_add(1);
        m_errors_->Increment();
        SendError(out, frame.request_id, Status::kDoubleHello,
                  "session already established");
        break;
      }
      conn->session_id =
          sessions_.Create(req.max_element_depth, req.client_name);
      m_sessions_->Add(1);
      HelloResponse resp;
      resp.session_id = conn->session_id;
      resp.dims = static_cast<uint8_t>(engine_->grid().dims);
      resp.bits_per_dim = static_cast<uint8_t>(engine_->grid().bits_per_dim);
      resp.shards = static_cast<uint16_t>(engine_->shard_count());
      resp.point_count = engine_->size();
      EncodeFrame(resp.ToFrame(frame.request_id), out);
      break;
    }
    case FrameType::kGoodbye: {
      if (conn->session_id == 0) {
        errors_total_.fetch_add(1);
        m_errors_->Increment();
        SendError(out, frame.request_id, Status::kNoSession, "no session");
        break;
      }
      if (sessions_.Close(conn->session_id)) m_sessions_->Add(-1);
      conn->session_id = 0;
      Frame bye;
      bye.type = FrameType::kGoodbyeOk;
      bye.request_id = frame.request_id;
      EncodeFrame(bye, out);
      break;
    }
    case FrameType::kRange:
    case FrameType::kBox:
    case FrameType::kCount:
    case FrameType::kKnn:
    case FrameType::kExplain: {
      EncodeFrame(ExecuteQuery(conn, frame), out);
      break;
    }
    default: {
      errors_total_.fetch_add(1);
      m_errors_->Increment();
      SendError(out, frame.request_id, Status::kUnknownType,
                "response type sent as request");
      break;
    }
  }

  m_request_ms_->Observe(std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - started)
                             .count());
  return keep_open;
}

Frame Server::ExecuteQuery(Conn* conn, const Frame& frame) {
  auto error = [&](Status status, const std::string& message) {
    errors_total_.fetch_add(1);
    m_errors_->Increment();
    if (status == Status::kBusy) {
      busy_total_.fetch_add(1);
      m_busy_->Increment();
    }
    ErrorResponse resp;
    resp.status = status;
    resp.message = message;
    return resp.ToFrame(frame.request_id);
  };

  if (conn->session_id == 0) return error(Status::kNoSession, "HELLO first");
  Session* session = sessions_.Touch(conn->session_id);
  if (session == nullptr) {
    // Touch refuses expired sessions but leaves them registered; finish
    // the job here so expiry is deterministic at the next query, not at
    // whichever sweep runs first.
    if (sessions_.Close(conn->session_id)) m_sessions_->Add(-1);
    conn->session_id = 0;
    return error(Status::kSessionExpired, "session expired");
  }

  // Admission: refuse (retryably) instead of queueing once the engine has
  // max_inflight queries on it.
  if (inflight_.fetch_add(1) >= options_.max_inflight) {
    inflight_.fetch_sub(1);
    session->stats().errors++;
    return error(Status::kBusy, "over max_inflight, retry");
  }
  struct InflightGuard {
    std::atomic<int>* counter;
    ~InflightGuard() { counter->fetch_sub(1); }
  } guard{&inflight_};

  index::SearchOptions search;
  search.max_element_depth = session->max_element_depth();

  session->stats().queries++;
  switch (frame.type) {
    case FrameType::kRange: {
      RangeRequest req;
      if (!RangeRequest::FromPayload(frame.payload, &req) ||
          !engine_->ValidBox(req.box)) {
        session->stats().errors++;
        return error(Status::kBadPayload, "bad RANGE box");
      }
      RangeResponse resp;
      resp.ids = engine_->RangeSearch(req.box, nullptr, search);
      session->stats().rows += resp.ids.size();
      return resp.ToFrame(frame.request_id);
    }
    case FrameType::kBox: {
      BoxRequest req;
      if (!BoxRequest::FromPayload(frame.payload, &req) ||
          !engine_->ValidBox(req.box)) {
        session->stats().errors++;
        return error(Status::kBadPayload, "bad BOX box");
      }
      BoxResponse resp;
      for (auto& row : engine_->RangeSearchRows(req.box)) {
        resp.rows.push_back({row.id, row.point});
      }
      session->stats().rows += resp.rows.size();
      return resp.ToFrame(frame.request_id);
    }
    case FrameType::kCount: {
      CountRequest req;
      if (!CountRequest::FromPayload(frame.payload, &req) ||
          !engine_->ValidBox(req.box)) {
        session->stats().errors++;
        return error(Status::kBadPayload, "bad COUNT box");
      }
      CountResponse resp;
      resp.count = engine_->CountBox(req.box, nullptr, search);
      session->stats().rows += 1;
      return resp.ToFrame(frame.request_id);
    }
    case FrameType::kKnn: {
      KnnRequest req;
      if (!KnnRequest::FromPayload(frame.payload, &req) ||
          !engine_->ValidPoint(req.center) || req.k > kMaxKnnK) {
        session->stats().errors++;
        return error(Status::kBadPayload, "bad KNN request");
      }
      KnnResponse resp;
      resp.neighbors = engine_->KNearest(req.center, req.k);
      session->stats().rows += resp.neighbors.size();
      return resp.ToFrame(frame.request_id);
    }
    case FrameType::kExplain: {
      ExplainRequest req;
      if (!ExplainRequest::FromPayload(frame.payload, &req) ||
          !engine_->ValidBox(req.box)) {
        session->stats().errors++;
        return error(Status::kBadPayload, "bad EXPLAIN box");
      }
      ExplainResponse resp;
      resp.text = engine_->Explain(req.box, req.count != 0);
      session->stats().rows += 1;
      return resp.ToFrame(frame.request_id);
    }
    default:
      session->stats().errors++;
      return error(Status::kUnknownType, "not a query");
  }
}

void Server::ServeHttp(Conn* conn, std::vector<uint8_t> buf) {
  http_total_.fetch_add(1);
  // Read until the header terminator (or cap / timeout); the request line
  // is all we route on.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(1000);
  auto has_terminator = [&]() {
    const std::string_view view(reinterpret_cast<const char*>(buf.data()),
                                buf.size());
    return view.find("\r\n\r\n") != std::string_view::npos ||
           view.find("\n\n") != std::string_view::npos;
  };
  uint8_t chunk[2048];
  while (!has_terminator() && buf.size() < kMaxHttpRequest &&
         std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf.insert(buf.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) break;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return;
  }
  const std::string_view request(reinterpret_cast<const char*>(buf.data()),
                                 buf.size());

  std::string body;
  std::string status = "200 OK";
  std::string content_type = "text/plain; version=0.0.4";
  if (request.starts_with("GET /metrics")) {
    body = obs::Registry::Default().RenderText();
  } else if (request.starts_with("GET /healthz")) {
    content_type = "application/json";
    body = "{\"status\":\"ok\",\"shards\":" +
           std::to_string(engine_->shard_count()) +
           ",\"points\":" + std::to_string(engine_->size()) +
           ",\"sessions\":" + std::to_string(sessions_.active()) + "}\n";
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }
  std::string response = "HTTP/1.0 " + status +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  WriteAll(conn->fd, reinterpret_cast<const uint8_t*>(response.data()),
           response.size());
}

void Server::SendError(std::vector<uint8_t>* out, uint32_t request_id,
                       Status status, const std::string& message) {
  ErrorResponse resp;
  resp.status = status;
  resp.message = message;
  EncodeFrame(resp.ToFrame(request_id), out);
}

bool Server::WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void Server::RegisterFd(int fd) {
  util::MutexLock lock(&fds_mutex_);
  open_fds_.insert(fd);
}

void Server::UnregisterFd(int fd) {
  util::MutexLock lock(&fds_mutex_);
  open_fds_.erase(fd);
}

bool Server::Stop() {
  if (stopped_.exchange(true)) return true;
  stopping_.store(true);
  if (listen_fd_ >= 0) {
    // shutdown+close wakes the acceptor's blocked accept(); the fd number
    // itself stays untouched until the acceptor has joined, so the
    // acceptor never reads listen_fd_ concurrently with a write.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (acceptor_.joinable()) acceptor_.join();
  listen_fd_ = -1;
  {
    // Wake every blocked read; handlers notice stopping_ and exit. The
    // handler (owner) does the close — shutdown only unblocks it.
    util::MutexLock lock(&fds_mutex_);
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  const bool drained = pool_.Shutdown(options_.shutdown_deadline);
  sessions_.ExpireIdle();
  return drained;
}

ServerCounters Server::counters() const {
  ServerCounters c;
  c.connections = connections_total_.load();
  c.requests = requests_total_.load();
  c.errors = errors_total_.load();
  c.busy = busy_total_.load();
  c.http_requests = http_total_.load();
  return c;
}

}  // namespace probe::server
