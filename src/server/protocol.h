#ifndef PROBE_SERVER_PROTOCOL_H_
#define PROBE_SERVER_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "index/nearest.h"

/// \file
/// The spatial query server's binary wire protocol.
///
/// A conversation is a stream of length-prefixed, CRC-guarded frames in
/// both directions. Every frame starts with a fixed 16-byte header:
///
///   +-------+-------+---------+------+----------------+-------------+-------+
///   | magic | magic | version | type | request_id (4) | payload_len | crc   |
///   |  'z'  |  'q'  |   (1)   | (1)  |                |     (4)     |  (4)  |
///   +-------+-------+---------+------+----------------+-------------+-------+
///
/// followed by `payload_len` payload bytes. All integers are little-endian.
/// The CRC (util::Crc32) covers the first 12 header bytes and the payload,
/// so a bit flip anywhere in the frame is detected before the payload is
/// parsed. The magic doubles as protocol discrimination: an HTTP request
/// ("GET /metrics ...") cannot start with 'z''q', which is how one listener
/// serves both the binary protocol and the metrics endpoint.
///
/// Requests carry a client-chosen request_id that the matching response
/// echoes, so clients may pipeline: write a window of requests, then read
/// the window of responses. The server answers frames of one connection in
/// order.
///
/// Decoding is defensive end to end: the decoder never trusts a length
/// (payloads are capped at kMaxPayloadBytes), never reads past the buffer,
/// and classifies every malformed input as a Status instead of crashing —
/// the protocol fuzz tier feeds it truncated, bit-flipped, and oversized
/// frames under ASan/UBSan to hold that claim.

namespace probe::server {

inline constexpr uint8_t kMagic0 = 'z';
inline constexpr uint8_t kMagic1 = 'q';
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kHeaderBytes = 16;

/// Hard cap on a frame's payload. Large enough for ~2M-row responses,
/// small enough that a hostile length prefix cannot balloon memory.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 24;

/// Frame types. Requests are < 64; each response type is its request + 64,
/// except kError which answers any request.
enum class FrameType : uint8_t {
  kHello = 1,
  kRange = 2,    // ids of points in a box
  kBox = 3,      // (id, point) rows in a box
  kCount = 4,    // COUNT(*) of points in a box (aggregate pushdown)
  kKnn = 5,      // k nearest neighbors of a point
  kExplain = 6,  // routing + plan text for a box query
  kPing = 7,
  kGoodbye = 8,

  kHelloOk = 65,
  kRangeResult = 66,
  kBoxResult = 67,
  kCountResult = 68,
  kKnnResult = 69,
  kExplainResult = 70,
  kPong = 71,
  kGoodbyeOk = 72,
  kError = 127,
};

/// True for the request half of the type space.
bool IsRequestType(FrameType type);

/// The response type answering `request` (kError aside).
FrameType ResponseTypeFor(FrameType request);

/// Protocol-level status codes, carried by kError responses.
enum class Status : uint16_t {
  kOk = 0,
  kBadMagic = 1,
  kBadVersion = 2,
  kBadCrc = 3,
  kOversized = 4,
  kBadPayload = 5,
  kUnknownType = 6,
  kNoSession = 7,     // query before HELLO
  kDoubleHello = 8,   // second HELLO on a live session
  kBusy = 9,          // admission control: retry later
  kShuttingDown = 10,
  kSessionExpired = 11,  // idle timeout
  kIoError = 12,
};

const char* StatusName(Status status);

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kPing;
  uint32_t request_id = 0;
  std::vector<uint8_t> payload;
};

/// Appends the encoded frame (header + payload) to `out`.
void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out);

/// What DecodeFrame found at the front of a receive buffer.
enum class DecodeResult {
  kFrame,     // one complete, CRC-valid frame; `*consumed` bytes used
  kNeedMore,  // the buffer holds only a prefix of a frame — read more
  kError,     // unrecoverable framing error (`*error` says which)
};

/// Decodes the frame at the front of `data`. On kFrame, `*frame` is filled
/// and `*consumed` is the total frame size; on kError the connection is
/// unsynchronized and must be torn down after reporting `*error`.
DecodeResult DecodeFrame(std::span<const uint8_t> data, Frame* frame,
                         size_t* consumed, Status* error);

// --------------------------------------------------------------- payloads

/// Bounds-checked payload serializer (little-endian).
class PayloadWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(v); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  /// u16 length + raw bytes; `text` beyond 64 KiB is truncated.
  void Str(std::string_view text);
  /// u8 dims + per-dimension u32 coordinate.
  void Point(const geometry::GridPoint& point);
  /// u8 dims + per-dimension u32 lo, u32 hi.
  void Box(const geometry::GridBox& box);

  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Bounds-checked payload parser: every getter returns false (and poisons
/// the reader) on underflow or malformed structure, so a parse is one
/// `if (!r.U32(&x) || ...) return BadPayload` chain with no way to read
/// out of bounds.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const uint8_t> data) : data_(data) {}

  bool U8(uint8_t* v);
  bool U16(uint16_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool Str(std::string* text);
  bool Point(geometry::GridPoint* point);
  /// Enforces lo <= hi per dimension (GridBox's invariant) — a malformed
  /// box fails the parse instead of tripping an assert downstream.
  bool Box(geometry::GridBox* box);

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

 private:
  bool Take(size_t n, const uint8_t** at);

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ------------------------------------------------------- typed messages

struct HelloRequest {
  /// Session-wide decomposition depth cap (SearchOptions::max_element_depth)
  /// applied to every query on the session; -1 = full depth.
  int32_t max_element_depth = -1;
  std::string client_name;

  Frame ToFrame(uint32_t request_id) const;
  static bool FromPayload(std::span<const uint8_t> payload, HelloRequest* out);
};

struct HelloResponse {
  uint64_t session_id = 0;
  uint8_t dims = 0;
  uint8_t bits_per_dim = 0;
  uint16_t shards = 0;
  uint64_t point_count = 0;

  Frame ToFrame(uint32_t request_id) const;
  static bool FromPayload(std::span<const uint8_t> payload, HelloResponse* out);
};

struct RangeRequest {
  geometry::GridBox box;

  Frame ToFrame(uint32_t request_id) const;
  static bool FromPayload(std::span<const uint8_t> payload, RangeRequest* out);
};

struct RangeResponse {
  std::vector<uint64_t> ids;

  Frame ToFrame(uint32_t request_id) const;
  static bool FromPayload(std::span<const uint8_t> payload, RangeResponse* out);
};

struct BoxRequest {
  geometry::GridBox box;

  Frame ToFrame(uint32_t request_id) const;
  static bool FromPayload(std::span<const uint8_t> payload, BoxRequest* out);
};

struct BoxResponse {
  struct Row {
    uint64_t id = 0;
    geometry::GridPoint point;
  };
  std::vector<Row> rows;

  Frame ToFrame(uint32_t request_id) const;
  static bool FromPayload(std::span<const uint8_t> payload, BoxResponse* out);
};

struct CountRequest {
  geometry::GridBox box;

  Frame ToFrame(uint32_t request_id) const;
  static bool FromPayload(std::span<const uint8_t> payload, CountRequest* out);
};

struct CountResponse {
  uint64_t count = 0;

  Frame ToFrame(uint32_t request_id) const;
  static bool FromPayload(std::span<const uint8_t> payload, CountResponse* out);
};

struct KnnRequest {
  geometry::GridPoint center;
  uint32_t k = 0;

  Frame ToFrame(uint32_t request_id) const;
  static bool FromPayload(std::span<const uint8_t> payload, KnnRequest* out);
};

struct KnnResponse {
  std::vector<index::Neighbor> neighbors;

  Frame ToFrame(uint32_t request_id) const;
  static bool FromPayload(std::span<const uint8_t> payload, KnnResponse* out);
};

struct ExplainRequest {
  geometry::GridBox box;
  /// 0 = range plan, 1 = count plan.
  uint8_t count = 0;

  Frame ToFrame(uint32_t request_id) const;
  static bool FromPayload(std::span<const uint8_t> payload, ExplainRequest* out);
};

struct ExplainResponse {
  std::string text;

  Frame ToFrame(uint32_t request_id) const;
  static bool FromPayload(std::span<const uint8_t> payload,
                          ExplainResponse* out);
};

struct ErrorResponse {
  Status status = Status::kOk;
  std::string message;

  Frame ToFrame(uint32_t request_id) const;
  static bool FromPayload(std::span<const uint8_t> payload, ErrorResponse* out);
};

}  // namespace probe::server

#endif  // PROBE_SERVER_PROTOCOL_H_
