#include "server/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "index/cost_model.h"
#include "probe/check.h"
#include "query/planner.h"
#include "query/query.h"
#include "zorder/shuffle.h"

namespace probe::server {

namespace {

void AddStats(index::QueryStats* into, const index::QueryStats& from) {
  into->leaf_pages += from.leaf_pages;
  into->internal_pages += from.internal_pages;
  into->points_scanned += from.points_scanned;
  into->elements_generated += from.elements_generated;
  into->classify_calls += from.classify_calls;
  into->point_seeks += from.point_seeks;
  into->results += from.results;
  into->entries_on_touched_pages += from.entries_on_touched_pages;
  into->contained_elements += from.contained_elements;
  into->materialized_rows += from.materialized_rows;
}

}  // namespace

ShardedEngine::ShardedEngine(const zorder::GridSpec& grid,
                             const std::string& path_prefix,
                             const ShardedEngineOptions& options,
                             util::ThreadPool* pool)
    : grid_(grid), pool_(pool) {
  const int n = std::max(1, options.shards);
  shards_.resize(static_cast<size_t>(n));
  index::DurableIndex::Options shard_options;
  shard_options.config = options.config;
  shard_options.pool_pages = options.pool_pages_per_shard;
  shard_options.snapshot_pool_pages = options.snapshot_pool_pages_per_shard;
  shard_options.policy = options.policy;
  shard_options.truncate = options.truncate;
  // Opening runs recovery, which is I/O-bound per shard and independent
  // across them — recover in parallel like everything else.
  std::atomic<bool> all_ok{true};
  pool_->ParallelFor(static_cast<size_t>(n), [&](size_t i) {
    shards_[i] = std::make_unique<index::DurableIndex>(
        grid_, ShardPath(path_prefix, static_cast<int>(i)), shard_options);
    if (!shards_[i]->ok()) all_ok.store(false);
  });
  ok_ = all_ok.load();
}

std::string ShardedEngine::ShardPath(const std::string& prefix, int shard) {
  return prefix + ".shard" + std::to_string(shard);
}

uint64_t ShardedEngine::size() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->published_size();
  return total;
}

uint64_t ShardedEngine::ZOf(const geometry::GridPoint& point) const {
  return zorder::Shuffle(grid_, point.coords()).ToInteger();
}

int ShardedEngine::ShardOf(uint64_t z) const {
  const int bits = grid_.total_bits();
  const auto n = static_cast<unsigned __int128>(shards_.size());
  return static_cast<int>((static_cast<unsigned __int128>(z) * n) >> bits);
}

std::pair<uint64_t, uint64_t> ShardedEngine::ShardZRange(int shard) const {
  const int bits = grid_.total_bits();
  const auto n = static_cast<unsigned __int128>(shards_.size());
  const unsigned __int128 space = static_cast<unsigned __int128>(1) << bits;
  auto low = [&](int i) {
    return (static_cast<unsigned __int128>(i) * space + n - 1) / n;
  };
  const uint64_t lo = static_cast<uint64_t>(low(shard));
  const uint64_t hi = static_cast<uint64_t>(low(shard + 1) - 1);
  PROBE_ASSERT(shard == 0 || ShardOf(lo) == shard);
  return {lo, hi};
}

std::pair<int, int> ShardedEngine::ShardSpan(const geometry::GridBox& box) const {
  // A box's z range is [z(lo corner), z(hi corner)]: z is monotone in each
  // coordinate, so the extremes sit at the corners (the BIGMIN bound).
  uint32_t lo_coords[geometry::GridBox::kMaxDims];
  uint32_t hi_coords[geometry::GridBox::kMaxDims];
  for (int i = 0; i < box.dims(); ++i) {
    lo_coords[i] = box.range(i).lo;
    hi_coords[i] = box.range(i).hi;
  }
  const std::span<const uint32_t> lo(lo_coords,
                                     static_cast<size_t>(box.dims()));
  const std::span<const uint32_t> hi(hi_coords,
                                     static_cast<size_t>(box.dims()));
  return {ShardOf(zorder::Shuffle(grid_, lo).ToInteger()),
          ShardOf(zorder::Shuffle(grid_, hi).ToInteger())};
}

bool ShardedEngine::ValidBox(const geometry::GridBox& box) const {
  if (box.dims() != grid_.dims) return false;
  const uint64_t side = grid_.side();
  for (int i = 0; i < box.dims(); ++i) {
    if (side != 0 && box.range(i).hi >= side) return false;
  }
  return true;
}

bool ShardedEngine::ValidPoint(const geometry::GridPoint& point) const {
  if (point.dims() != grid_.dims) return false;
  const uint64_t side = grid_.side();
  for (int i = 0; i < point.dims(); ++i) {
    if (side != 0 && point[i] >= side) return false;
  }
  return true;
}

bool ShardedEngine::Apply(std::span<const index::DurableIndex::Op> ops) {
  if (!ok_) return false;
  // Route every op to its point's shard, preserving op order within each
  // shard (Apply semantics are order-sensitive for insert/delete pairs).
  std::vector<std::vector<index::DurableIndex::Op>> batches(shards_.size());
  for (const auto& op : ops) {
    if (!ValidPoint(op.point)) return false;
    batches[static_cast<size_t>(ShardOf(ZOf(op.point)))].push_back(op);
  }
  std::atomic<bool> all_ok{true};
  pool_->ParallelFor(shards_.size(), [&](size_t i) {
    if (batches[i].empty()) return;
    if (!shards_[i]->Apply(batches[i])) all_ok.store(false);
  });
  return all_ok.load();
}

bool ShardedEngine::Checkpoint() {
  if (!ok_) return false;
  // Serial on the calling thread, one shard at a time — NOT ParallelFor.
  // A shard's checkpoint blocks in its pin-drain for as long as queries
  // hold that shard's snapshot pins, and CreateView pins shards in index
  // order; draining two shards concurrently (whether via pool workers or
  // two Checkpoint callers, hence the mutex) can therefore cycle: each
  // drain waiting on a view that is itself blocked at the other draining
  // shard. With one drain at a time every pin holder makes progress. See
  // the header comment.
  util::MutexLock lock(&checkpoint_mutex_);
  bool all_ok = true;
  for (auto& shard : shards_) {
    if (!shard->Checkpoint()) all_ok = false;
  }
  return all_ok;
}

ShardedEngine::View ShardedEngine::CreateView() const {
  View view;
  view.engine_ = this;
  view.snaps_.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    view.snaps_[i] = shards_[i]->CreateSnapshot();
  }
  return view;
}

uint64_t ShardedEngine::View::epoch(int i) const {
  return snaps_[static_cast<size_t>(i)].epoch();
}

std::vector<uint64_t> ShardedEngine::View::epochs() const {
  std::vector<uint64_t> out;
  out.reserve(snaps_.size());
  for (const auto& s : snaps_) out.push_back(s.epoch());
  return out;
}

uint64_t ShardedEngine::View::size() const {
  uint64_t total = 0;
  for (const auto& s : snaps_) total += s.index().size();
  return total;
}

std::vector<uint64_t> ShardedEngine::View::RangeSearch(
    const geometry::GridBox& box, index::QueryStats* stats,
    const index::SearchOptions& options) const {
  const auto [first, last] = engine_->ShardSpan(box);
  const size_t n = static_cast<size_t>(last - first + 1);
  std::vector<std::vector<uint64_t>> partials(n);
  std::vector<index::QueryStats> partial_stats(n);
  engine_->pool_->ParallelFor(n, [&](size_t i) {
    partials[i] = snaps_[static_cast<size_t>(first) + i].index().RangeSearch(
        box, stats != nullptr ? &partial_stats[i] : nullptr, options);
  });
  // Shard i's z interval wholly precedes shard i+1's and each shard
  // reports in ascending z order, so concatenation in shard order is the
  // single-engine output.
  std::vector<uint64_t> results;
  size_t total = 0;
  for (const auto& p : partials) total += p.size();
  results.reserve(total);
  for (auto& p : partials) {
    results.insert(results.end(), p.begin(), p.end());
  }
  if (stats != nullptr) {
    for (const auto& s : partial_stats) AddStats(stats, s);
  }
  return results;
}

std::vector<ShardedEngine::Row> ShardedEngine::View::RangeSearchRows(
    const geometry::GridBox& box, index::QueryStats* stats) const {
  // Ids first (scatter-gathered), then the points re-derived per id would
  // cost a lookup each; instead run per-shard cursors that stream (id,
  // point) pairs directly.
  const auto [first, last] = engine_->ShardSpan(box);
  const size_t n = static_cast<size_t>(last - first + 1);
  std::vector<std::vector<Row>> partials(n);
  std::vector<index::QueryStats> partial_stats(n);
  engine_->pool_->ParallelFor(n, [&](size_t i) {
    const index::ZkdIndex& shard_index =
        snaps_[static_cast<size_t>(first) + i].index();
    index::ZkdIndex::RangeCursor cursor(shard_index, box);
    Row row;
    while (cursor.Next(&row.id, &row.point)) partials[i].push_back(row);
    partial_stats[i] = cursor.stats();
  });
  std::vector<Row> rows;
  size_t total = 0;
  for (const auto& p : partials) total += p.size();
  rows.reserve(total);
  for (auto& p : partials) {
    rows.insert(rows.end(), p.begin(), p.end());
  }
  if (stats != nullptr) {
    for (const auto& s : partial_stats) AddStats(stats, s);
  }
  return rows;
}

uint64_t ShardedEngine::View::CountBox(const geometry::GridBox& box,
                                       index::QueryStats* stats,
                                       const index::SearchOptions& options) const {
  const auto [first, last] = engine_->ShardSpan(box);
  const size_t n = static_cast<size_t>(last - first + 1);
  std::vector<uint64_t> partials(n, 0);
  std::vector<index::QueryStats> partial_stats(n);
  engine_->pool_->ParallelFor(n, [&](size_t i) {
    partials[i] = snaps_[static_cast<size_t>(first) + i].index().CountBox(
        box, stats != nullptr ? &partial_stats[i] : nullptr, options);
  });
  uint64_t count = 0;
  for (uint64_t c : partials) count += c;
  if (stats != nullptr) {
    for (const auto& s : partial_stats) AddStats(stats, s);
  }
  return count;
}

std::vector<index::Neighbor> ShardedEngine::View::KNearest(
    const geometry::GridPoint& center, size_t k) const {
  std::vector<std::vector<index::Neighbor>> partials(snaps_.size());
  engine_->pool_->ParallelFor(snaps_.size(), [&](size_t i) {
    partials[i] = index::KNearest(snaps_[i].index(), center, k);
  });
  std::vector<index::Neighbor> all;
  for (auto& p : partials) {
    all.insert(all.end(), p.begin(), p.end());
  }
  // Single-engine order: ascending distance, ties by id.
  std::sort(all.begin(), all.end(),
            [](const index::Neighbor& a, const index::Neighbor& b) {
              if (a.distance2 != b.distance2) return a.distance2 < b.distance2;
              return a.id < b.id;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<uint64_t> ShardedEngine::RangeSearch(
    const geometry::GridBox& box, index::QueryStats* stats,
    const index::SearchOptions& options) const {
  return CreateView().RangeSearch(box, stats, options);
}

std::vector<ShardedEngine::Row> ShardedEngine::RangeSearchRows(
    const geometry::GridBox& box, index::QueryStats* stats) const {
  return CreateView().RangeSearchRows(box, stats);
}

uint64_t ShardedEngine::CountBox(const geometry::GridBox& box,
                                 index::QueryStats* stats,
                                 const index::SearchOptions& options) const {
  return CreateView().CountBox(box, stats, options);
}

std::vector<index::Neighbor> ShardedEngine::KNearest(
    const geometry::GridPoint& center, size_t k) const {
  return CreateView().KNearest(center, k);
}

std::string ShardedEngine::Explain(const geometry::GridBox& box,
                                   bool count) const {
  const View view = CreateView();
  const auto [first, last] = ShardSpan(box);
  std::ostringstream out;
  out << "scatter-gather " << (count ? "count" : "range") << " "
      << box.ToString() << ": shards " << first << ".." << last << " of "
      << shards_.size() << "\n";
  for (int s = first; s <= last; ++s) {
    const index::ZkdIndex& shard_index =
        view.snaps_[static_cast<size_t>(s)].index();
    const auto [zlo, zhi] = ShardZRange(s);
    const index::CostModel model = index::CostModel::FromIndex(shard_index);
    const query::Query q =
        count ? query::Query::Count(box) : query::Query::Range(box);
    query::PlannerContext ctx;
    ctx.index = &shard_index;
    ctx.cost_model = &model;
    const query::PlannedQuery planned = query::Plan(q, ctx);
    out << "  shard " << s << " z=[" << zlo << "," << zhi
        << "] points=" << shard_index.size() << ": " << planned.summary
        << "\n";
  }
  return out.str();
}

}  // namespace probe::server
