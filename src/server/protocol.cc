#include "server/protocol.h"

#include <cstring>

#include "util/crc32.h"

namespace probe::server {

namespace {

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t ReadU32(const uint8_t* at) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | at[i];
  return v;
}

bool ValidRequestType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kGoodbye);
}

bool ValidResponseType(uint8_t type) {
  return (type >= static_cast<uint8_t>(FrameType::kHelloOk) &&
          type <= static_cast<uint8_t>(FrameType::kGoodbyeOk)) ||
         type == static_cast<uint8_t>(FrameType::kError);
}

}  // namespace

bool IsRequestType(FrameType type) {
  return ValidRequestType(static_cast<uint8_t>(type));
}

FrameType ResponseTypeFor(FrameType request) {
  return static_cast<FrameType>(static_cast<uint8_t>(request) + 64);
}

const char* StatusName(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kBadMagic: return "bad-magic";
    case Status::kBadVersion: return "bad-version";
    case Status::kBadCrc: return "bad-crc";
    case Status::kOversized: return "oversized";
    case Status::kBadPayload: return "bad-payload";
    case Status::kUnknownType: return "unknown-type";
    case Status::kNoSession: return "no-session";
    case Status::kDoubleHello: return "double-hello";
    case Status::kBusy: return "busy";
    case Status::kShuttingDown: return "shutting-down";
    case Status::kSessionExpired: return "session-expired";
    case Status::kIoError: return "io-error";
  }
  return "?";
}

void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out) {
  const size_t header_at = out->size();
  out->push_back(kMagic0);
  out->push_back(kMagic1);
  out->push_back(kProtocolVersion);
  out->push_back(static_cast<uint8_t>(frame.type));
  PutU32(out, frame.request_id);
  PutU32(out, static_cast<uint32_t>(frame.payload.size()));
  // CRC over the 12 header bytes written so far, chained over the payload.
  uint32_t crc = util::Crc32(out->data() + header_at, 12);
  crc = util::Crc32(frame.payload.data(), frame.payload.size(), crc);
  PutU32(out, crc);
  out->insert(out->end(), frame.payload.begin(), frame.payload.end());
}

DecodeResult DecodeFrame(std::span<const uint8_t> data, Frame* frame,
                         size_t* consumed, Status* error) {
  *consumed = 0;
  *error = Status::kOk;
  if (data.size() < kHeaderBytes) return DecodeResult::kNeedMore;
  if (data[0] != kMagic0 || data[1] != kMagic1) {
    *error = Status::kBadMagic;
    return DecodeResult::kError;
  }
  if (data[2] != kProtocolVersion) {
    *error = Status::kBadVersion;
    return DecodeResult::kError;
  }
  const uint8_t type = data[3];
  const uint32_t request_id = ReadU32(data.data() + 4);
  const uint32_t payload_len = ReadU32(data.data() + 8);
  if (payload_len > kMaxPayloadBytes) {
    *error = Status::kOversized;
    return DecodeResult::kError;
  }
  if (data.size() < kHeaderBytes + payload_len) return DecodeResult::kNeedMore;
  const uint32_t want_crc = ReadU32(data.data() + 12);
  uint32_t crc = util::Crc32(data.data(), 12);
  crc = util::Crc32(data.data() + kHeaderBytes, payload_len, crc);
  if (crc != want_crc) {
    *error = Status::kBadCrc;
    return DecodeResult::kError;
  }
  if (!ValidRequestType(type) && !ValidResponseType(type)) {
    // The frame is intact (CRC passed) but names no known operation. The
    // stream stays synchronized, so this is reported per-frame, not as a
    // connection error; the caller still consumes the frame.
    *error = Status::kUnknownType;
  }
  frame->type = static_cast<FrameType>(type);
  frame->request_id = request_id;
  frame->payload.assign(data.begin() + kHeaderBytes,
                        data.begin() + kHeaderBytes + payload_len);
  *consumed = kHeaderBytes + payload_len;
  return DecodeResult::kFrame;
}

// --------------------------------------------------------------- payloads

void PayloadWriter::U16(uint16_t v) { PutU16(&bytes_, v); }
void PayloadWriter::U32(uint32_t v) { PutU32(&bytes_, v); }

void PayloadWriter::U64(uint64_t v) {
  PutU32(&bytes_, static_cast<uint32_t>(v));
  PutU32(&bytes_, static_cast<uint32_t>(v >> 32));
}

void PayloadWriter::Str(std::string_view text) {
  const size_t n = std::min<size_t>(text.size(), 0xFFFF);
  U16(static_cast<uint16_t>(n));
  bytes_.insert(bytes_.end(), text.begin(), text.begin() + n);
}

void PayloadWriter::Point(const geometry::GridPoint& point) {
  U8(static_cast<uint8_t>(point.dims()));
  for (int i = 0; i < point.dims(); ++i) U32(point[i]);
}

void PayloadWriter::Box(const geometry::GridBox& box) {
  U8(static_cast<uint8_t>(box.dims()));
  for (int i = 0; i < box.dims(); ++i) {
    U32(box.range(i).lo);
    U32(box.range(i).hi);
  }
}

bool PayloadReader::Take(size_t n, const uint8_t** at) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *at = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool PayloadReader::U8(uint8_t* v) {
  const uint8_t* at = nullptr;
  if (!Take(1, &at)) return false;
  *v = at[0];
  return true;
}

bool PayloadReader::U16(uint16_t* v) {
  const uint8_t* at = nullptr;
  if (!Take(2, &at)) return false;
  *v = static_cast<uint16_t>(at[0] | (at[1] << 8));
  return true;
}

bool PayloadReader::U32(uint32_t* v) {
  const uint8_t* at = nullptr;
  if (!Take(4, &at)) return false;
  *v = ReadU32(at);
  return true;
}

bool PayloadReader::U64(uint64_t* v) {
  uint32_t lo = 0;
  uint32_t hi = 0;
  if (!U32(&lo) || !U32(&hi)) return false;
  *v = (static_cast<uint64_t>(hi) << 32) | lo;
  return true;
}

bool PayloadReader::Str(std::string* text) {
  uint16_t n = 0;
  if (!U16(&n)) return false;
  const uint8_t* at = nullptr;
  if (!Take(n, &at)) return false;
  text->assign(reinterpret_cast<const char*>(at), n);
  return true;
}

bool PayloadReader::Point(geometry::GridPoint* point) {
  uint8_t dims = 0;
  if (!U8(&dims)) return false;
  if (dims < 1 || dims > geometry::GridPoint::kMaxDims) {
    ok_ = false;
    return false;
  }
  uint32_t coords[geometry::GridPoint::kMaxDims];
  for (int i = 0; i < dims; ++i) {
    if (!U32(&coords[i])) return false;
  }
  *point = geometry::GridPoint(std::span<const uint32_t>(coords, dims));
  return true;
}

bool PayloadReader::Box(geometry::GridBox* box) {
  uint8_t dims = 0;
  if (!U8(&dims)) return false;
  if (dims < 1 || dims > geometry::GridBox::kMaxDims) {
    ok_ = false;
    return false;
  }
  zorder::DimRange ranges[geometry::GridBox::kMaxDims];
  for (int i = 0; i < dims; ++i) {
    if (!U32(&ranges[i].lo) || !U32(&ranges[i].hi)) return false;
    if (ranges[i].lo > ranges[i].hi) {
      ok_ = false;
      return false;
    }
  }
  *box = geometry::GridBox(std::span<const zorder::DimRange>(ranges, dims));
  return true;
}

// ------------------------------------------------------- typed messages

namespace {

Frame MakeFrame(FrameType type, uint32_t request_id, PayloadWriter&& w) {
  Frame f;
  f.type = type;
  f.request_id = request_id;
  f.payload = w.Take();
  return f;
}

}  // namespace

Frame HelloRequest::ToFrame(uint32_t request_id) const {
  PayloadWriter w;
  w.U32(static_cast<uint32_t>(max_element_depth));
  w.Str(client_name);
  return MakeFrame(FrameType::kHello, request_id, std::move(w));
}

bool HelloRequest::FromPayload(std::span<const uint8_t> payload,
                               HelloRequest* out) {
  PayloadReader r(payload);
  uint32_t depth = 0;
  if (!r.U32(&depth) || !r.Str(&out->client_name) || !r.AtEnd()) return false;
  out->max_element_depth = static_cast<int32_t>(depth);
  return true;
}

Frame HelloResponse::ToFrame(uint32_t request_id) const {
  PayloadWriter w;
  w.U64(session_id);
  w.U8(dims);
  w.U8(bits_per_dim);
  w.U16(shards);
  w.U64(point_count);
  return MakeFrame(FrameType::kHelloOk, request_id, std::move(w));
}

bool HelloResponse::FromPayload(std::span<const uint8_t> payload,
                                HelloResponse* out) {
  PayloadReader r(payload);
  return r.U64(&out->session_id) && r.U8(&out->dims) &&
         r.U8(&out->bits_per_dim) && r.U16(&out->shards) &&
         r.U64(&out->point_count) && r.AtEnd();
}

namespace {

// RANGE/BOX/COUNT requests share the one-box payload.
Frame BoxedRequestFrame(FrameType type, uint32_t request_id,
                        const geometry::GridBox& box) {
  PayloadWriter w;
  w.Box(box);
  return MakeFrame(type, request_id, std::move(w));
}

bool BoxedRequestFromPayload(std::span<const uint8_t> payload,
                             geometry::GridBox* box) {
  PayloadReader r(payload);
  return r.Box(box) && r.AtEnd();
}

}  // namespace

Frame RangeRequest::ToFrame(uint32_t request_id) const {
  return BoxedRequestFrame(FrameType::kRange, request_id, box);
}

bool RangeRequest::FromPayload(std::span<const uint8_t> payload,
                               RangeRequest* out) {
  return BoxedRequestFromPayload(payload, &out->box);
}

Frame RangeResponse::ToFrame(uint32_t request_id) const {
  PayloadWriter w;
  w.U32(static_cast<uint32_t>(ids.size()));
  for (uint64_t id : ids) w.U64(id);
  return MakeFrame(FrameType::kRangeResult, request_id, std::move(w));
}

bool RangeResponse::FromPayload(std::span<const uint8_t> payload,
                                RangeResponse* out) {
  PayloadReader r(payload);
  uint32_t n = 0;
  if (!r.U32(&n)) return false;
  // 8 bytes per id: a hostile count larger than the remaining payload is
  // rejected before any reservation.
  if (static_cast<uint64_t>(n) * 8 > payload.size()) return false;
  out->ids.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!r.U64(&out->ids[i])) return false;
  }
  return r.AtEnd();
}

Frame BoxRequest::ToFrame(uint32_t request_id) const {
  return BoxedRequestFrame(FrameType::kBox, request_id, box);
}

bool BoxRequest::FromPayload(std::span<const uint8_t> payload,
                             BoxRequest* out) {
  return BoxedRequestFromPayload(payload, &out->box);
}

Frame BoxResponse::ToFrame(uint32_t request_id) const {
  PayloadWriter w;
  w.U32(static_cast<uint32_t>(rows.size()));
  for (const Row& row : rows) {
    w.U64(row.id);
    w.Point(row.point);
  }
  return MakeFrame(FrameType::kBoxResult, request_id, std::move(w));
}

bool BoxResponse::FromPayload(std::span<const uint8_t> payload,
                              BoxResponse* out) {
  PayloadReader r(payload);
  uint32_t n = 0;
  if (!r.U32(&n)) return false;
  if (static_cast<uint64_t>(n) * 9 > payload.size()) return false;
  out->rows.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!r.U64(&out->rows[i].id) || !r.Point(&out->rows[i].point)) return false;
  }
  return r.AtEnd();
}

Frame CountRequest::ToFrame(uint32_t request_id) const {
  return BoxedRequestFrame(FrameType::kCount, request_id, box);
}

bool CountRequest::FromPayload(std::span<const uint8_t> payload,
                               CountRequest* out) {
  return BoxedRequestFromPayload(payload, &out->box);
}

Frame CountResponse::ToFrame(uint32_t request_id) const {
  PayloadWriter w;
  w.U64(count);
  return MakeFrame(FrameType::kCountResult, request_id, std::move(w));
}

bool CountResponse::FromPayload(std::span<const uint8_t> payload,
                                CountResponse* out) {
  PayloadReader r(payload);
  return r.U64(&out->count) && r.AtEnd();
}

Frame KnnRequest::ToFrame(uint32_t request_id) const {
  PayloadWriter w;
  w.Point(center);
  w.U32(k);
  return MakeFrame(FrameType::kKnn, request_id, std::move(w));
}

bool KnnRequest::FromPayload(std::span<const uint8_t> payload,
                             KnnRequest* out) {
  PayloadReader r(payload);
  return r.Point(&out->center) && r.U32(&out->k) && r.AtEnd();
}

Frame KnnResponse::ToFrame(uint32_t request_id) const {
  PayloadWriter w;
  w.U32(static_cast<uint32_t>(neighbors.size()));
  for (const index::Neighbor& n : neighbors) {
    w.U64(n.id);
    // The wire field is 64 bits but distances are computed in 128 (a
    // full-resolution 2-d distance can pass 2^64). Saturate: a clamped
    // distance still sorts after every representable one, and result
    // *order* is fixed server-side before encoding.
    constexpr index::Dist2 kMax64 = ~static_cast<uint64_t>(0);
    w.U64(n.distance2 > kMax64 ? ~static_cast<uint64_t>(0)
                               : static_cast<uint64_t>(n.distance2));
  }
  return MakeFrame(FrameType::kKnnResult, request_id, std::move(w));
}

bool KnnResponse::FromPayload(std::span<const uint8_t> payload,
                              KnnResponse* out) {
  PayloadReader r(payload);
  uint32_t n = 0;
  if (!r.U32(&n)) return false;
  if (static_cast<uint64_t>(n) * 16 > payload.size()) return false;
  out->neighbors.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t distance2 = 0;
    if (!r.U64(&out->neighbors[i].id) || !r.U64(&distance2)) {
      return false;
    }
    out->neighbors[i].distance2 = distance2;
  }
  return r.AtEnd();
}

Frame ExplainRequest::ToFrame(uint32_t request_id) const {
  PayloadWriter w;
  w.Box(box);
  w.U8(count);
  return MakeFrame(FrameType::kExplain, request_id, std::move(w));
}

bool ExplainRequest::FromPayload(std::span<const uint8_t> payload,
                                 ExplainRequest* out) {
  PayloadReader r(payload);
  return r.Box(&out->box) && r.U8(&out->count) && r.AtEnd();
}

Frame ExplainResponse::ToFrame(uint32_t request_id) const {
  PayloadWriter w;
  w.U32(static_cast<uint32_t>(text.size()));
  std::vector<uint8_t> bytes = w.Take();
  bytes.insert(bytes.end(), text.begin(), text.end());
  Frame f;
  f.type = FrameType::kExplainResult;
  f.request_id = request_id;
  f.payload = std::move(bytes);
  return f;
}

bool ExplainResponse::FromPayload(std::span<const uint8_t> payload,
                                  ExplainResponse* out) {
  PayloadReader r(payload);
  uint32_t n = 0;
  if (!r.U32(&n)) return false;
  if (static_cast<uint64_t>(n) + 4 != payload.size()) return false;
  out->text.assign(reinterpret_cast<const char*>(payload.data()) + 4, n);
  return true;
}

Frame ErrorResponse::ToFrame(uint32_t request_id) const {
  PayloadWriter w;
  w.U16(static_cast<uint16_t>(status));
  w.Str(message);
  return MakeFrame(FrameType::kError, request_id, std::move(w));
}

bool ErrorResponse::FromPayload(std::span<const uint8_t> payload,
                                ErrorResponse* out) {
  PayloadReader r(payload);
  uint16_t status = 0;
  if (!r.U16(&status) || !r.Str(&out->message) || !r.AtEnd()) return false;
  out->status = static_cast<Status>(status);
  return true;
}

}  // namespace probe::server
