#ifndef PROBE_SERVER_SERVER_H_
#define PROBE_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "server/protocol.h"
#include "server/session.h"
#include "server/sharded_engine.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

/// \file
/// The spatial query server: a TCP front end for a ShardedEngine.
///
/// Architecture, bottom to top:
///
///   * One acceptor thread blocks in accept(); each accepted connection
///     becomes a task on a util::ThreadPool, which handles it with a
///     blocking read loop (thread-per-connection over a bounded pool).
///   * Admission control is refuse-early, never queue-unbounded: beyond
///     `max_connections` the acceptor answers a kBusy frame and closes
///     without dispatching; beyond `max_inflight` concurrently executing
///     queries a request gets a kBusy response instead of waiting.
///   * One listener serves two protocols, discriminated by the first
///     byte: binary frames start with the 'z''q' magic, anything else is
///     treated as HTTP — `GET /metrics` returns the Prometheus exposition
///     of obs::Registry::Default() (obs::RenderText) and `GET /healthz` a
///     one-line JSON status, so the server is scrapeable with nothing but
///     curl.
///   * Stop() is graceful and bounded: the listener closes, open
///     connections are shut down so their blocked reads wake, and the
///     pool drains with util::ThreadPool::Shutdown's deadline — a hung
///     handler can delay shutdown by at most one task, never hang it.
///
/// Hermetic tests bypass TCP entirely: ServeConnection() adopts any
/// connected byte-stream fd (socketpair), and the whole request path is
/// identical from the first byte on.

namespace probe::server {

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back with port()). Start() is optional — a server used only through
  /// ServeConnection never binds.
  int port = 0;
  /// Connection-handler pool size. Each live connection occupies one
  /// worker for its lifetime.
  int worker_threads = 8;
  /// Admission control: connections beyond this are answered kBusy and
  /// closed at accept time.
  int max_connections = 64;
  /// Admission control: queries executing concurrently beyond this are
  /// answered kBusy instead of queued.
  int max_inflight = 256;
  /// Sessions idle past this are expired (next request: kSessionExpired).
  std::chrono::milliseconds idle_timeout{60000};
  /// Stop()'s drain budget (ThreadPool::Shutdown deadline).
  std::chrono::milliseconds shutdown_deadline{2000};
};

/// Liveness counters, for tests and the bench.
struct ServerCounters {
  uint64_t connections = 0;
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t busy = 0;
  uint64_t http_requests = 0;
};

class Server {
 public:
  /// The engine must outlive the server.
  Server(ShardedEngine* engine, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:port, starts the acceptor. False on bind failure.
  bool Start();

  /// The bound port (after Start()).
  int port() const { return port_; }

  /// Adopts a connected stream fd (e.g. one end of a socketpair) as a
  /// client connection, served on the pool like an accepted one. The
  /// server takes ownership of the fd. Honors max_connections.
  void ServeConnection(int fd);

  /// Graceful stop: closes the listener, wakes and closes every open
  /// connection, drains the pool within the shutdown deadline. True iff
  /// all handlers finished in time. Idempotent.
  bool Stop();

  ServerCounters counters() const;
  SessionManager& sessions() { return sessions_; }
  ShardedEngine& engine() { return *engine_; }

 private:
  // Per-connection handler state.
  struct Conn {
    int fd = -1;
    uint64_t session_id = 0;  // 0 = not HELLO'd
    std::chrono::steady_clock::time_point last_frame;
  };

  void AcceptLoop();
  void HandleConnection(int fd);
  // Serves the binary protocol on an established connection; `buf` holds
  // bytes already read (the protocol-discrimination peek).
  void ServeBinary(Conn* conn, std::vector<uint8_t> buf);
  void ServeHttp(Conn* conn, std::vector<uint8_t> buf);

  // Dispatches one decoded frame; appends encoded response frames to
  // `out`. Returns false when the connection should close.
  bool HandleFrame(Conn* conn, const Frame& frame, std::vector<uint8_t>* out);

  // Query execution under the in-flight admission gate; each returns the
  // encoded response (result, error, or busy).
  Frame ExecuteQuery(Conn* conn, const Frame& frame);

  void SendError(std::vector<uint8_t>* out, uint32_t request_id, Status status,
                 const std::string& message);

  bool WriteAll(int fd, const uint8_t* data, size_t size);

  void RegisterFd(int fd);
  void UnregisterFd(int fd);

  ShardedEngine* engine_;
  ServerOptions options_;
  SessionManager sessions_;
  util::ThreadPool pool_;

  // Written by Start() before the acceptor launches and by Stop() only
  // after the acceptor has joined; the acceptor thread reads it in
  // between. That ordering (not a lock) is the synchronization.
  int listen_fd_ = -1;
  int port_ = 0;
  // invariant-lint waiver(raw-thread): the acceptor must block in
  // accept() indefinitely; parking it on the bounded worker pool would
  // steal a connection-handler slot for the server's whole lifetime.
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};

  std::atomic<int> active_connections_{0};
  std::atomic<int> inflight_{0};

  // Leaf lock: guards the open-connection fd set only. Lock hierarchy:
  // never held while calling into sessions_ or the pool.
  util::Mutex fds_mutex_;
  std::set<int> open_fds_ PROBE_GUARDED_BY(fds_mutex_);

  // Liveness counters (mirrored into obs::Registry::Default()).
  std::atomic<uint64_t> connections_total_{0};
  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> errors_total_{0};
  std::atomic<uint64_t> busy_total_{0};
  std::atomic<uint64_t> http_total_{0};

  // Hot-path metric cells from the default registry.
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_errors_ = nullptr;
  obs::Counter* m_busy_ = nullptr;
  obs::Counter* m_bytes_read_ = nullptr;
  obs::Counter* m_bytes_written_ = nullptr;
  obs::Gauge* m_sessions_ = nullptr;
  obs::Gauge* m_connections_ = nullptr;
  obs::Histogram* m_request_ms_ = nullptr;
};

}  // namespace probe::server

#endif  // PROBE_SERVER_SERVER_H_
