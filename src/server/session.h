#ifndef PROBE_SERVER_SESSION_H_
#define PROBE_SERVER_SESSION_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "util/mutex.h"
#include "util/thread_annotations.h"

/// \file
/// Per-connection session state.
///
/// A connection becomes a session with HELLO and stops being one with
/// GOODBYE (or by idling past the server's timeout, or by disconnecting).
/// The session carries the connection-scoped query context: the engine
/// handle implied by the grid the HELLO response described, the session's
/// decomposition depth cap (applied to every query as
/// SearchOptions::max_element_depth), and usage counters for /metrics.
///
/// Sessions are owned by a SessionManager so the server can enforce the
/// protocol rules centrally: one session per connection (double HELLO is
/// rejected), queries require a session, and idle sessions are expired by
/// a sweep instead of lingering until the TCP stack notices.

namespace probe::server {

/// Usage counters of one session.
struct SessionStats {
  uint64_t queries = 0;
  uint64_t rows = 0;
  uint64_t errors = 0;
};

/// One HELLO'd connection.
class Session {
 public:
  Session(uint64_t id, int32_t max_element_depth, std::string client_name,
          std::chrono::steady_clock::time_point now)
      : id_(id),
        max_element_depth_(max_element_depth),
        client_name_(std::move(client_name)),
        last_active_(now) {}

  uint64_t id() const { return id_; }
  int32_t max_element_depth() const { return max_element_depth_; }
  const std::string& client_name() const { return client_name_; }

  SessionStats& stats() { return stats_; }
  const SessionStats& stats() const { return stats_; }

  void Touch(std::chrono::steady_clock::time_point now) { last_active_ = now; }
  std::chrono::steady_clock::time_point last_active() const {
    return last_active_;
  }

 private:
  uint64_t id_;
  int32_t max_element_depth_;
  std::string client_name_;
  SessionStats stats_;
  std::chrono::steady_clock::time_point last_active_;
};

/// Registry of live sessions. Thread-safe; sessions are created and closed
/// from connection handlers and swept from whichever handler notices an
/// expiry first.
class SessionManager {
 public:
  explicit SessionManager(std::chrono::milliseconds idle_timeout)
      : idle_timeout_(idle_timeout) {}

  /// Creates a session and returns its id (ids are never reused).
  uint64_t Create(int32_t max_element_depth, std::string client_name);

  /// Looks up a session and touches it (resets the idle clock). Returns
  /// nullptr for unknown ids — and for sessions already idle past the
  /// timeout, which stay registered (touching an expired session must not
  /// revive it); the caller answers kSessionExpired and Close()s it. The
  /// pointer stays valid until Close(id) — each connection closes only
  /// its own session, and a connection handler is single-threaded, so
  /// handing out the raw pointer is safe.
  Session* Touch(uint64_t id);

  /// Removes the session; false if it did not exist.
  bool Close(uint64_t id);

  /// Expires every session idle past the timeout; returns how many.
  size_t ExpireIdle();

  /// True when `id` exists but has been idle past the timeout (the caller
  /// should answer kSessionExpired and Close it).
  bool Expired(uint64_t id) const;

  size_t active() const;
  std::chrono::milliseconds idle_timeout() const { return idle_timeout_; }

  /// Replaces the idle clock with a harness-controlled one, so expiry
  /// tests advance time instead of sleeping through it. The function is
  /// called under the registry lock and must be safe to call from any
  /// handler thread.
  void SetClockForTest(
      std::function<std::chrono::steady_clock::time_point()> clock);

 private:
  std::chrono::steady_clock::time_point Now() const PROBE_REQUIRES(mutex_);

  std::chrono::milliseconds idle_timeout_;
  // Leaf lock: guards the registry map only. Session *contents* are owned
  // by the connection handler that created the session (see Touch()).
  mutable util::Mutex mutex_;
  std::unordered_map<uint64_t, std::unique_ptr<Session>> sessions_
      PROBE_GUARDED_BY(mutex_);
  uint64_t next_id_ PROBE_GUARDED_BY(mutex_) = 1;
  std::function<std::chrono::steady_clock::time_point()> clock_
      PROBE_GUARDED_BY(mutex_);
};

}  // namespace probe::server

#endif  // PROBE_SERVER_SESSION_H_
