#ifndef PROBE_SERVER_SHARDED_ENGINE_H_
#define PROBE_SERVER_SHARDED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "index/durable_index.h"
#include "index/nearest.h"
#include "index/zkd_index.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "zorder/grid.h"

/// \file
/// Shard-per-core execution: N independent engines over a range-partitioned
/// z space.
///
/// BENCH_parallel showed the single-engine ceiling: partitioned execution
/// is correct but flat, because every lane contends on one buffer pool (one
/// latch set, one eviction clock, one WAL). The structural fix is to stop
/// sharing: a ShardedEngine range-partitions the full-resolution z space
/// into `shards` contiguous intervals and gives each interval its *own*
/// DurableIndex — own database file, own WAL, own buffer pool. Shards share
/// nothing, so a scatter-gathered query scales with cores instead of with
/// one pool's latch throughput, and a crash recovers shard by shard.
///
/// Range partitioning (not hashing) is what keeps answers *bitwise
/// identical* to a single engine: every query result this library produces
/// is in ascending z order, shard i's interval wholly precedes shard
/// i+1's, and a point's shard is determined by its z value — so
/// concatenating per-shard results in shard order *is* the single-engine
/// output, no merge or sort needed. This is the Zones-style scatter-gather
/// (Gray et al.): partition by the sort key, fan out, concatenate.
///
/// Concurrency: there is no engine-wide lock anymore. Writers route ops to
/// shards and commit per-shard batches in parallel; within a shard,
/// concurrent batches serialize on the shard's apply lock but share fsyncs
/// through the WAL's group commit. Queries never block writers and never
/// see a half-applied batch: each query pins a per-shard *snapshot* — the
/// shard's newest published (durable) epoch — and runs against that frozen
/// view (see DurableIndex::CreateSnapshot). A View makes the pinned state
/// explicit when a caller wants several queries against one consistent
/// per-shard state.
///
/// A batch is atomic within each shard (the DurableIndex guarantee);
/// cross-shard atomicity is not promised — a kill between shard commits
/// can surface a prefix of the batch, which the identity tests pin down by
/// replaying the per-shard commit oracle. Likewise a View's shards are
/// each internally consistent but pinned independently.

namespace probe::server {

/// Construction options; `config`/`pool_pages`/`policy`/`truncate` apply
/// to every shard.
struct ShardedEngineOptions {
  int shards = 1;
  size_t pool_pages_per_shard = 256;
  size_t snapshot_pool_pages_per_shard = 64;
  btree::BTreeConfig config;
  storage::EvictionPolicy policy = storage::EvictionPolicy::kLru;
  bool truncate = false;
};

/// N DurableIndex shards behind one query facade.
class ShardedEngine {
 public:
  /// (id, point) rows of a box, in the same order as RangeSearch.
  struct Row {
    uint64_t id = 0;
    geometry::GridPoint point;
  };

  /// A pinned per-shard read state: shard i's queries run against shard
  /// i's newest published epoch as of CreateView(). Holding a View keeps
  /// those epochs pinned (blocking checkpoints and version GC); drop it
  /// when done. Copyable — copies share the pins.
  class View {
   public:
    View() = default;

    bool ok() const { return engine_ != nullptr; }

    /// Epoch pinned on shard `i` / all pinned epochs in shard order.
    uint64_t epoch(int i) const;
    std::vector<uint64_t> epochs() const;

    /// Total points across the pinned shard states.
    uint64_t size() const;

    /// The scatter-gather queries, frozen at the pinned epochs. Same
    /// contracts as the engine-level methods.
    std::vector<uint64_t> RangeSearch(
        const geometry::GridBox& box, index::QueryStats* stats = nullptr,
        const index::SearchOptions& options = {}) const;
    std::vector<Row> RangeSearchRows(const geometry::GridBox& box,
                                     index::QueryStats* stats = nullptr) const;
    uint64_t CountBox(const geometry::GridBox& box,
                      index::QueryStats* stats = nullptr,
                      const index::SearchOptions& options = {}) const;
    std::vector<index::Neighbor> KNearest(const geometry::GridPoint& center,
                                          size_t k) const;

   private:
    friend class ShardedEngine;
    const ShardedEngine* engine_ = nullptr;
    std::vector<index::DurableIndex::Snapshot> snaps_;
  };

  /// Opens (creating or recovering) shard files `prefix + ".shardK"`.
  /// `pool` drives the scatter-gather fan-out and the parallel per-shard
  /// commits; it must outlive the engine. Check ok().
  ShardedEngine(const zorder::GridSpec& grid, const std::string& path_prefix,
                const ShardedEngineOptions& options, util::ThreadPool* pool);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// False when any shard failed to open or recover.
  bool ok() const { return ok_; }

  int shard_count() const { return static_cast<int>(shards_.size()); }
  const zorder::GridSpec& grid() const { return grid_; }

  /// Total points across shards, as of each shard's published epoch.
  uint64_t size() const;

  /// Pins every shard's newest published epoch. Thread-safe; cheap when
  /// the shards haven't advanced since the last View (pinned views of an
  /// unchanged epoch are shared, not rebuilt).
  View CreateView() const;

  /// Routes each op to its point's shard and applies the per-shard batches
  /// in parallel. Thread-safe: concurrent callers group-commit within each
  /// shard. True iff every involved shard committed.
  bool Apply(std::span<const index::DurableIndex::Op> ops);

  /// Checkpoints every shard (bounding each shard's log). Blocks until
  /// in-flight Views release their pins. Safe to overlap with queries and
  /// Apply. Shards are checkpointed one at a time, on the calling thread:
  /// a shard's checkpoint drains that shard's snapshot pins while
  /// CreateView acquires pins shard by shard, so draining two shards at
  /// once could deadlock in a cycle (view A pins shard 0 and waits on
  /// shard 1's drain, view B pins shard 1 and waits on shard 0's drain,
  /// each drain waits on the other view's pin). One drain at a time —
  /// enforced across concurrent Checkpoint calls by checkpoint_mutex_ —
  /// means a view blocked at the draining shard never holds that shard's
  /// pin, so every pin holder can finish and the drain always completes.
  bool Checkpoint();

  /// Scatter-gather range query: identical, element for element, to the
  /// same query on a single engine holding all the points. Only shards
  /// whose z interval meets the box's z range participate. Runs against a
  /// freshly pinned View — never blocks on, or sees a torn state from,
  /// concurrent Apply batches.
  std::vector<uint64_t> RangeSearch(
      const geometry::GridBox& box, index::QueryStats* stats = nullptr,
      const index::SearchOptions& options = {}) const;

  std::vector<Row> RangeSearchRows(const geometry::GridBox& box,
                                   index::QueryStats* stats = nullptr) const;

  /// Scatter-gather COUNT(*): the sum of per-shard aggregate pushdowns;
  /// equals RangeSearch(box).size().
  uint64_t CountBox(const geometry::GridBox& box,
                    index::QueryStats* stats = nullptr,
                    const index::SearchOptions& options = {}) const;

  /// Scatter-gather k-NN: every shard answers locally, the gather keeps
  /// the k best by (distance2, id) — the single-engine tie-break order.
  std::vector<index::Neighbor> KNearest(const geometry::GridPoint& center,
                                        size_t k) const;

  /// Routing + per-shard plan text for a box query (`count` = COUNT plan):
  /// which shards the query scatters to, each shard's z interval, and the
  /// planner's one-line decision for the shard-local query.
  std::string Explain(const geometry::GridBox& box, bool count) const;

  // -------------------------------------------------- routing arithmetic

  /// Shard owning full-resolution z value `z`.
  int ShardOf(uint64_t z) const;

  /// Closed z interval [lo, hi] owned by `shard`.
  std::pair<uint64_t, uint64_t> ShardZRange(int shard) const;

  /// Closed shard interval [first, last] a box query must scatter to.
  std::pair<int, int> ShardSpan(const geometry::GridBox& box) const;

  /// Full-resolution z value of a point on this engine's grid.
  uint64_t ZOf(const geometry::GridPoint& point) const;

  // --------------------------------------------------------- test seams

  /// Shard `i`'s engine, for fault injection and WAL kill tests.
  index::DurableIndex& shard(int i) { return *shards_[static_cast<size_t>(i)]; }

  static std::string ShardPath(const std::string& prefix, int shard);

  /// Dimensionality and coordinate-bound validation against the grid; the
  /// server layer rejects queries that fail these before any shard
  /// arithmetic or Shuffle assertion can run on hostile input.
  bool ValidBox(const geometry::GridBox& box) const;
  bool ValidPoint(const geometry::GridPoint& point) const;

 private:
  zorder::GridSpec grid_;
  util::ThreadPool* pool_;
  // Immutable after construction; each DurableIndex is internally
  // synchronized (apply lock + group commit for writers, epoch-pinned
  // snapshots for readers), so the query and write paths need no engine
  // lock.
  std::vector<std::unique_ptr<index::DurableIndex>> shards_;
  // Serializes Checkpoint calls so at most one shard is ever draining its
  // snapshot pins (see Checkpoint). Leaf: held across per-shard
  // DurableIndex::Checkpoint calls but never while touching another
  // engine-level lock.
  util::Mutex checkpoint_mutex_;
  bool ok_ = false;
};

}  // namespace probe::server

#endif  // PROBE_SERVER_SHARDED_ENGINE_H_
