#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace probe::server {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_request_id_(other.next_request_id_),
      rx_(std::move(other.rx_)),
      last_status_(other.last_status_),
      last_error_(std::move(other.last_error_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    next_request_id_ = other.next_request_id_;
    rx_ = std::move(other.rx_);
    last_status_ = other.last_status_;
    last_error_ = std::move(other.last_error_);
  }
  return *this;
}

bool Client::ConnectTcp(int port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    Fail(Status::kIoError, "socket() failed");
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    Fail(Status::kIoError, "connect() failed");
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Adopt(fd);
  return true;
}

void Client::Adopt(int fd) {
  Close();
  fd_ = fd;
  rx_.clear();
  last_status_ = Status::kOk;
  last_error_.clear();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::Fail(Status status, std::string message) {
  last_status_ = status;
  last_error_ = std::move(message);
}

bool Client::WriteAll(const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Fail(Status::kIoError, "send() failed");
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool Client::Send(const Frame& frame) {
  if (!connected()) {
    Fail(Status::kIoError, "not connected");
    return false;
  }
  std::vector<uint8_t> bytes;
  EncodeFrame(frame, &bytes);
  return WriteAll(bytes.data(), bytes.size());
}

bool Client::Recv(Frame* frame) {
  if (!connected()) {
    Fail(Status::kIoError, "not connected");
    return false;
  }
  uint8_t chunk[16384];
  for (;;) {
    size_t consumed = 0;
    Status error = Status::kOk;
    const DecodeResult r =
        DecodeFrame(std::span<const uint8_t>(rx_.data(), rx_.size()), frame,
                    &consumed, &error);
    if (r == DecodeResult::kFrame) {
      rx_.erase(rx_.begin(), rx_.begin() + static_cast<ptrdiff_t>(consumed));
      if (error != Status::kOk) {
        Fail(error, "malformed response frame");
        return false;
      }
      return true;
    }
    if (r == DecodeResult::kError) {
      Fail(error, "unsynchronized response stream");
      Close();
      return false;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      rx_.insert(rx_.end(), chunk, chunk + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Fail(Status::kIoError, n == 0 ? "server closed connection"
                                  : "recv() failed");
    Close();
    return false;
  }
}

bool Client::RoundTrip(const Frame& request, FrameType expected,
                       Frame* response) {
  if (!Send(request)) {
    // The peer may have refused the connection (kBusy/kShuttingDown) and
    // closed: its refusal frame is still in the receive buffer even though
    // the send got EPIPE. Prefer that protocol-level answer to "I/O error".
    if (connected() && Recv(response) && response->type == FrameType::kError) {
      ErrorResponse err;
      if (ErrorResponse::FromPayload(response->payload, &err)) {
        Fail(err.status, err.message);
      }
    }
    return false;
  }
  if (!Recv(response)) return false;
  if (response->type == FrameType::kError) {
    ErrorResponse err;
    if (ErrorResponse::FromPayload(response->payload, &err)) {
      Fail(err.status, err.message);
    } else {
      Fail(Status::kBadPayload, "undecodable error response");
    }
    return false;
  }
  if (response->type != expected || response->request_id != request.request_id) {
    Fail(Status::kBadPayload, "response type/id mismatch");
    return false;
  }
  last_status_ = Status::kOk;
  return true;
}

bool Client::Hello(HelloResponse* out, int32_t max_element_depth,
                   const std::string& client_name) {
  HelloRequest req;
  req.max_element_depth = max_element_depth;
  req.client_name = client_name;
  Frame resp;
  if (!RoundTrip(req.ToFrame(NextRequestId()), FrameType::kHelloOk, &resp)) {
    return false;
  }
  if (!HelloResponse::FromPayload(resp.payload, out)) {
    Fail(Status::kBadPayload, "undecodable HELLO response");
    return false;
  }
  return true;
}

bool Client::Range(const geometry::GridBox& box, std::vector<uint64_t>* ids) {
  RangeRequest req;
  req.box = box;
  Frame resp;
  if (!RoundTrip(req.ToFrame(NextRequestId()), FrameType::kRangeResult,
                 &resp)) {
    return false;
  }
  RangeResponse parsed;
  if (!RangeResponse::FromPayload(resp.payload, &parsed)) {
    Fail(Status::kBadPayload, "undecodable RANGE response");
    return false;
  }
  *ids = std::move(parsed.ids);
  return true;
}

bool Client::Box(const geometry::GridBox& box,
                 std::vector<BoxResponse::Row>* rows) {
  BoxRequest req;
  req.box = box;
  Frame resp;
  if (!RoundTrip(req.ToFrame(NextRequestId()), FrameType::kBoxResult, &resp)) {
    return false;
  }
  BoxResponse parsed;
  if (!BoxResponse::FromPayload(resp.payload, &parsed)) {
    Fail(Status::kBadPayload, "undecodable BOX response");
    return false;
  }
  *rows = std::move(parsed.rows);
  return true;
}

bool Client::Count(const geometry::GridBox& box, uint64_t* count) {
  CountRequest req;
  req.box = box;
  Frame resp;
  if (!RoundTrip(req.ToFrame(NextRequestId()), FrameType::kCountResult,
                 &resp)) {
    return false;
  }
  CountResponse parsed;
  if (!CountResponse::FromPayload(resp.payload, &parsed)) {
    Fail(Status::kBadPayload, "undecodable COUNT response");
    return false;
  }
  *count = parsed.count;
  return true;
}

bool Client::Knn(const geometry::GridPoint& center, uint32_t k,
                 std::vector<index::Neighbor>* neighbors) {
  KnnRequest req;
  req.center = center;
  req.k = k;
  Frame resp;
  if (!RoundTrip(req.ToFrame(NextRequestId()), FrameType::kKnnResult, &resp)) {
    return false;
  }
  KnnResponse parsed;
  if (!KnnResponse::FromPayload(resp.payload, &parsed)) {
    Fail(Status::kBadPayload, "undecodable KNN response");
    return false;
  }
  *neighbors = std::move(parsed.neighbors);
  return true;
}

bool Client::Explain(const geometry::GridBox& box, bool count,
                     std::string* text) {
  ExplainRequest req;
  req.box = box;
  req.count = count ? 1 : 0;
  Frame resp;
  if (!RoundTrip(req.ToFrame(NextRequestId()), FrameType::kExplainResult,
                 &resp)) {
    return false;
  }
  ExplainResponse parsed;
  if (!ExplainResponse::FromPayload(resp.payload, &parsed)) {
    Fail(Status::kBadPayload, "undecodable EXPLAIN response");
    return false;
  }
  *text = std::move(parsed.text);
  return true;
}

bool Client::Ping() {
  Frame req;
  req.type = FrameType::kPing;
  req.request_id = NextRequestId();
  Frame resp;
  return RoundTrip(req, FrameType::kPong, &resp);
}

bool Client::Goodbye() {
  Frame req;
  req.type = FrameType::kGoodbye;
  req.request_id = NextRequestId();
  Frame resp;
  return RoundTrip(req, FrameType::kGoodbyeOk, &resp);
}

}  // namespace probe::server
