#ifndef PROBE_SERVER_CLIENT_H_
#define PROBE_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "index/nearest.h"
#include "server/protocol.h"

/// \file
/// A blocking client for the spatial query server.
///
/// Two usage styles:
///
///   * Call-per-query: Hello(), then Range()/Box()/Count()/Knn()/Explain();
///     each call writes one request frame and blocks for its response.
///     Errors surface as a false/empty return plus last_status().
///   * Pipelined: Send() a window of request frames (each with a distinct
///     request_id), then Recv() the window of responses. The server answers
///     in order, so a pipeline of depth W keeps W requests in flight per
///     connection — that, not raw parsing speed, is what pushes a loopback
///     connection past the per-round-trip throughput wall.
///
/// Connect over TCP (ConnectTcp) or adopt any connected byte-stream fd
/// (Adopt — the socketpair seam the hermetic tests use).

namespace probe::server {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to 127.0.0.1:port. False on failure.
  bool ConnectTcp(int port);

  /// Adopts a connected fd (takes ownership).
  void Adopt(int fd);

  bool connected() const { return fd_ >= 0; }
  void Close();

  // ------------------------------------------------------- call-per-query

  /// HELLO handshake. `max_element_depth` caps decomposition depth for
  /// every query on this session (-1 = full depth).
  bool Hello(HelloResponse* out, int32_t max_element_depth = -1,
             const std::string& client_name = "probe-client");

  /// Ids of points inside `box`, in z order.
  bool Range(const geometry::GridBox& box, std::vector<uint64_t>* ids);

  /// (id, point) rows inside `box`, in z order.
  bool Box(const geometry::GridBox& box, std::vector<BoxResponse::Row>* rows);

  /// COUNT(*) of points inside `box`.
  bool Count(const geometry::GridBox& box, uint64_t* count);

  /// k nearest neighbors of `center`.
  bool Knn(const geometry::GridPoint& center, uint32_t k,
           std::vector<index::Neighbor>* neighbors);

  /// Planner/routing explanation of a box query.
  bool Explain(const geometry::GridBox& box, bool count, std::string* text);

  bool Ping();
  bool Goodbye();

  // ------------------------------------------------------------ pipelining

  /// Writes one encoded request frame. Does not wait for the response.
  bool Send(const Frame& frame);

  /// Flushes frames batched by Send (Send already writes through; Flush
  /// exists for symmetry and future buffering).
  bool Flush() { return connected(); }

  /// Blocks for the next response frame.
  bool Recv(Frame* frame);

  // ------------------------------------------------------------ diagnostics

  /// Protocol status of the last failed call (kOk after a success).
  Status last_status() const { return last_status_; }
  const std::string& last_error() const { return last_error_; }

 private:
  // Sends `request` and receives its response, handling kError frames.
  // Returns true when the response has the expected type and request_id.
  bool RoundTrip(const Frame& request, FrameType expected, Frame* response);

  bool WriteAll(const uint8_t* data, size_t size);
  uint32_t NextRequestId() { return next_request_id_++; }

  void Fail(Status status, std::string message);

  int fd_ = -1;
  uint32_t next_request_id_ = 1;
  std::vector<uint8_t> rx_;  // bytes received but not yet decoded
  Status last_status_ = Status::kOk;
  std::string last_error_;
};

}  // namespace probe::server

#endif  // PROBE_SERVER_CLIENT_H_
