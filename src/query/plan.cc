#include "query/plan.h"

#include <cassert>
#include <chrono>
#include <utility>

#include "index/nearest.h"
#include "probe/check.h"
#include "storage/buffer_pool.h"
#include "relational/distance_join.h"
#include "relational/operators.h"
#include "relational/spatial_join.h"
#include "zorder/zvalue.h"

namespace probe::query {

namespace {

using relational::Relation;
using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

/// Accumulates wall time into a NodeStats field for the enclosing scope.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* ms)
      : ms_(ms), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    *ms_ += std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start_)
                .count();
  }

 private:
  double* ms_;
  std::chrono::steady_clock::time_point start_;
};

Schema IdSchema() {
  return Schema({{"id", ValueType::kInt}});
}

/// Base for blocking nodes: Open materializes `result_`, Next streams it.
class MaterializedNode : public PlanNode {
 public:
  explicit MaterializedNode(Schema schema) : result_(std::move(schema)) {}

  const Schema& schema() const override { return result_.schema(); }

 protected:
  bool DoNext(Tuple* out) override {
    if (pos_ >= result_.size()) return false;
    *out = result_.row(pos_++);
    return true;
  }

  void ResetResult() {
    result_ = Relation(result_.schema());
    pos_ = 0;
  }

  Relation result_;
  size_t pos_ = 0;
};

/// Fills a relation of (id) tuples from an id vector.
void FillIds(Relation* rel, const std::vector<uint64_t>& ids) {
  rel->Reserve(ids.size());
  for (const uint64_t id : ids) {
    Tuple t;
    t.emplace_back(static_cast<int64_t>(id));
    rel->Add(std::move(t));
  }
}

// ----------------------------------------------------------- ZkdRangeScan

class ZkdRangeScanNode final : public PlanNode {
 public:
  ZkdRangeScanNode(const index::ZkdIndex& index, const geometry::GridBox& box,
                   const index::SearchOptions& options, util::ThreadPool* pool,
                   int partitions)
      : index_(index),
        box_(box),
        options_(options),
        pool_(pool),
        partitions_(partitions),
        schema_(IdSchema()) {
    stats_.op = pool_ != nullptr ? "ParallelRangeScan" : "ZkdRangeScan";
    wants_pool_window_ = true;
  }

  const Schema& schema() const override { return schema_; }

 protected:
  void DoOpen() override {
    ScopedTimer timer(&stats_.ms);
    // The streaming cursor runs the default skip merge only; capped or
    // non-default merges materialize through RangeSearch. Results are
    // identical either way (same merge, same z order).
    const bool default_options =
        options_.merge == index::SearchOptions::Merge::kSkipMerge &&
        options_.max_element_depth < 0 && options_.verify_candidates;
    if (pool_ == nullptr && default_options) {
      cursor_.emplace(index_, box_);
      return;
    }
    index::QueryStats qstats;
    if (pool_ != nullptr) {
      ids_ = index_.ParallelRangeSearch(box_, *pool_, partitions_, &qstats,
                                        options_);
    } else {
      ids_ = index_.RangeSearch(box_, &qstats, options_);
    }
    stats_.actual_pages = qstats.leaf_pages;
    stats_.actual_elements = qstats.elements_generated;
  }

  bool DoNext(Tuple* out) override {
    ScopedTimer timer(&stats_.ms);
    uint64_t id = 0;
    if (cursor_.has_value()) {
      if (!cursor_->Next(&id)) {
        // Final counters are known once the merge has run to the end.
        stats_.actual_pages = cursor_->stats().leaf_pages;
        stats_.actual_elements = cursor_->stats().elements_generated;
        return false;
      }
      stats_.actual_pages = cursor_->stats().leaf_pages;
      stats_.actual_elements = cursor_->stats().elements_generated;
    } else {
      if (pos_ >= ids_.size()) return false;
      id = ids_[pos_++];
    }
    out->clear();
    out->emplace_back(static_cast<int64_t>(id));
    return true;
  }

  void DoClose() override {
    // The cursor keeps its current leaf pinned; release it now rather than
    // at node destruction.
    if (cursor_.has_value()) {
      stats_.actual_pages = cursor_->stats().leaf_pages;
      stats_.actual_elements = cursor_->stats().elements_generated;
      cursor_.reset();
    }
  }

 private:
  const index::ZkdIndex& index_;
  geometry::GridBox box_;
  index::SearchOptions options_;
  util::ThreadPool* pool_;
  int partitions_;
  Schema schema_;
  std::optional<index::ZkdIndex::RangeCursor> cursor_;
  std::vector<uint64_t> ids_;
  size_t pos_ = 0;
};

// ----------------------------------------------------------- ObjectSearch

class ObjectSearchNode final : public MaterializedNode {
 public:
  ObjectSearchNode(const index::ZkdIndex& index,
                   const geometry::SpatialObject* object,
                   std::unique_ptr<const geometry::SpatialObject> owned,
                   const index::SearchOptions& options, util::ThreadPool* pool,
                   int partitions, const std::string& op_name)
      : MaterializedNode(IdSchema()),
        index_(index),
        owned_(std::move(owned)),
        object_(owned_ != nullptr ? owned_.get() : object),
        options_(options),
        pool_(pool),
        partitions_(partitions) {
    assert(object_ != nullptr);
    stats_.op = !op_name.empty()
                    ? op_name
                    : (pool_ != nullptr ? "ParallelObjectSearch"
                                        : "ObjectSearch");
    wants_pool_window_ = true;
  }

 protected:
  void DoOpen() override {
    ScopedTimer timer(&stats_.ms);
    ResetResult();
    index::QueryStats qstats;
    std::vector<uint64_t> ids;
    if (pool_ != nullptr) {
      ids = index_.ParallelSearchObject(*object_, *pool_, partitions_,
                                        &qstats, options_);
    } else {
      ids = index_.SearchObject(*object_, &qstats, options_);
    }
    stats_.actual_pages = qstats.leaf_pages;
    stats_.actual_elements = qstats.elements_generated;
    FillIds(&result_, ids);
  }

 private:
  const index::ZkdIndex& index_;
  std::unique_ptr<const geometry::SpatialObject> owned_;
  const geometry::SpatialObject* object_;
  index::SearchOptions options_;
  util::ThreadPool* pool_;
  int partitions_;
};

// --------------------------------------------------------- AggregateCount

/// COUNT(*) pushed down into the index: ZkdIndex::CountBox sums run entry
/// counts (whole leaves via their header) for elements fully contained in
/// the box, so a full-depth count materializes zero rows. Emits exactly one
/// (count) tuple.
class AggregateCountNode final : public PlanNode {
 public:
  AggregateCountNode(const index::ZkdIndex& index, const geometry::GridBox& box,
                     const index::SearchOptions& options)
      : index_(index), box_(box), options_(options),
        schema_(Schema({{"count", ValueType::kInt}})) {
    stats_.op = "AggregateCount";
    wants_pool_window_ = true;
  }

  const Schema& schema() const override { return schema_; }

 protected:
  void DoOpen() override {
    ScopedTimer timer(&stats_.ms);
    index::QueryStats qstats;
    count_ = index_.CountBox(box_, &qstats, options_);
    emitted_ = false;
    stats_.actual_pages = qstats.leaf_pages;
    stats_.actual_elements = qstats.elements_generated;
    stats_.has_aggregate = true;
    stats_.contained_elements = qstats.contained_elements;
    stats_.materialized_rows = qstats.materialized_rows;
  }

  bool DoNext(Tuple* out) override {
    if (emitted_) return false;
    emitted_ = true;
    out->clear();
    out->emplace_back(static_cast<int64_t>(count_));
    return true;
  }

 private:
  const index::ZkdIndex& index_;
  geometry::GridBox box_;
  index::SearchOptions options_;
  Schema schema_;
  uint64_t count_ = 0;
  bool emitted_ = false;
};

// ----------------------------------------------------------- BucketKdScan

class BucketKdScanNode final : public MaterializedNode {
 public:
  BucketKdScanNode(const baseline::BucketKdTree& tree,
                   const geometry::GridBox& box)
      : MaterializedNode(IdSchema()), tree_(tree), box_(box) {
    stats_.op = "BucketKdScan";
  }

 protected:
  void DoOpen() override {
    ScopedTimer timer(&stats_.ms);
    ResetResult();
    baseline::BucketKdStats kd_stats;
    FillIds(&result_, tree_.RangeSearch(box_, &kd_stats));
    stats_.actual_pages = kd_stats.leaf_pages;
  }

 private:
  const baseline::BucketKdTree& tree_;
  geometry::GridBox box_;
};

// --------------------------------------------------------------- KNearest

class KNearestNode final : public MaterializedNode {
 public:
  KNearestNode(const index::ZkdIndex& index, const geometry::GridPoint& center,
               size_t k)
      : MaterializedNode(Schema(
            {{"id", ValueType::kInt}, {"dist2", ValueType::kInt}})),
        index_(index),
        center_(center),
        k_(k) {
    stats_.op = "KNearest";
    wants_pool_window_ = true;
  }

 protected:
  void DoOpen() override {
    ScopedTimer timer(&stats_.ms);
    ResetResult();
    index::NearestStats nstats;
    const auto neighbors = index::KNearest(index_, center_, k_, &nstats);
    result_.Reserve(neighbors.size());
    for (const auto& n : neighbors) {
      Tuple t;
      t.emplace_back(static_cast<int64_t>(n.id));
      // The tuple column is int64 but distances are 128-bit; saturate so
      // an extreme-corner distance renders as "huge", never wraps
      // negative. Row order is decided before this cast.
      constexpr index::Dist2 kMaxInt64 =
          static_cast<index::Dist2>(~0ULL >> 1);
      t.emplace_back(n.distance2 > kMaxInt64
                         ? static_cast<int64_t>(~0ULL >> 1)
                         : static_cast<int64_t>(n.distance2));
      result_.Add(std::move(t));
    }
    stats_.actual_pages = nstats.leaf_pages;
    stats_.actual_elements = nstats.regions_expanded;
  }

 private:
  const index::ZkdIndex& index_;
  geometry::GridPoint center_;
  size_t k_;
};

// ----------------------------------------------------------- RelationScan

class RelationScanNode final : public PlanNode {
 public:
  explicit RelationScanNode(const Relation& rel) : rel_(rel) {
    stats_.op = "RelationScan";
  }

  const Schema& schema() const override { return rel_.schema(); }

 protected:
  void DoOpen() override { pos_ = 0; }

  bool DoNext(Tuple* out) override {
    if (pos_ >= rel_.size()) return false;
    *out = rel_.row(pos_++);
    return true;
  }

 private:
  const Relation& rel_;
  size_t pos_ = 0;
};

// ------------------------------------------------------------ EmptyResult

class EmptyResultNode final : public PlanNode {
 public:
  explicit EmptyResultNode(Schema schema) : schema_(std::move(schema)) {
    stats_.op = "EmptyResult";
  }

  const Schema& schema() const override { return schema_; }

 protected:
  void DoOpen() override {}
  bool DoNext(Tuple*) override { return false; }

 private:
  Schema schema_;
};

// -------------------------------------------------------------- Decompose

/// Drains an already-open child into an in-memory relation.
Relation DrainChild(PlanNode* child) {
  Relation out(child->schema());
  Tuple row;
  while (child->Next(&row)) out.Add(std::move(row));
  return out;
}

class DecomposeNode final : public MaterializedNode {
 public:
  DecomposeNode(std::unique_ptr<PlanNode> child, const zorder::GridSpec& grid,
                std::string id_column,
                const relational::ObjectCatalog& catalog, std::string z_column,
                const decompose::DecomposeOptions& options)
      : MaterializedNode(MakeSchema(child->schema(), z_column)),
        grid_(grid),
        id_column_(std::move(id_column)),
        catalog_(catalog),
        z_column_(std::move(z_column)),
        options_(options) {
    stats_.op = "Decompose";
    AddChild(std::move(child));
  }

 protected:
  void DoOpen() override {
    child(0)->Open();
    const Relation input = DrainChild(child(0));
    ScopedTimer timer(&stats_.ms);
    ResetResult();
    decompose::DecomposeStats dstats;
    result_ = relational::DecomposeRelation(grid_, input, id_column_, catalog_,
                                            z_column_, options_, &dstats);
    stats_.actual_elements = dstats.elements;
    // Every emitted element must be a region of this grid: a z value longer
    // than the grid's bit budget cannot come from a legal decomposition.
    PROBE_AUDIT({
      const int z_idx = result_.schema().IndexOf(z_column_);
      for (size_t row = 0; row < result_.size(); ++row) {
        const auto& z = std::get<zorder::ZValue>(result_.row(row)[z_idx]);
        PROBE_ASSERT_MSG(z.length() <= grid_.total_bits(),
                         "decomposed element deeper than the grid");
      }
    });
  }

 private:
  static Schema MakeSchema(const Schema& in, const std::string& z_column) {
    std::vector<relational::Column> columns;
    for (int i = 0; i < in.column_count(); ++i) columns.push_back(in.column(i));
    columns.push_back({z_column, ValueType::kZValue});
    return Schema(std::move(columns));
  }

  zorder::GridSpec grid_;
  std::string id_column_;
  const relational::ObjectCatalog& catalog_;
  std::string z_column_;
  decompose::DecomposeOptions options_;
};

// -------------------------------------------------------------- MergeJoin

class MergeJoinNode final : public MaterializedNode {
 public:
  MergeJoinNode(std::unique_ptr<PlanNode> left, std::unique_ptr<PlanNode> right,
                std::string left_z, std::string right_z,
                util::ThreadPool* pool, int partitions)
      : MaterializedNode(Schema::Concat(left->schema(), right->schema())),
        left_z_(std::move(left_z)),
        right_z_(std::move(right_z)),
        pool_(pool),
        partitions_(partitions) {
    stats_.op = pool_ != nullptr ? "ParallelMergeSpatialJoin"
                                 : "MergeSpatialJoin";
    AddChild(std::move(left));
    AddChild(std::move(right));
  }

 protected:
  void DoOpen() override {
    child(0)->Open();
    child(1)->Open();
    const Relation left = DrainChild(child(0));
    const Relation right = DrainChild(child(1));
    ScopedTimer timer(&stats_.ms);
    ResetResult();
    relational::SpatialJoinStats jstats;
    if (pool_ != nullptr) {
      result_ = relational::ParallelSpatialJoin(left, left_z_, right, right_z_,
                                                *pool_, partitions_, &jstats);
    } else {
      result_ = relational::SpatialJoin(left, left_z_, right, right_z_,
                                        &jstats);
    }
    stats_.actual_elements = jstats.r_rows + jstats.s_rows;
    // The pair counter and the materialized output are maintained
    // independently (per-slice counters vs. emitted tuples); they must
    // agree or a parallel slice lost or duplicated work.
    PROBE_ASSERT_MSG(jstats.pairs == result_.size(),
                     "spatial-join pair count disagrees with output size");
    stats_.detail += (stats_.detail.empty() ? "" : " ");
    stats_.detail += "pairs=" + std::to_string(jstats.pairs) +
                     " merge_partitions=" + std::to_string(jstats.partitions);
  }

 private:
  std::string left_z_;
  std::string right_z_;
  util::ThreadPool* pool_;
  int partitions_;
};

// ----------------------------------------------------------- DistanceJoin

class DistanceJoinNode final : public MaterializedNode {
 public:
  DistanceJoinNode(std::span<const index::PointRecord> r,
                   std::span<const index::PointRecord> s,
                   const zorder::GridSpec& grid, uint64_t radius,
                   uint64_t zone_height, util::ThreadPool* pool,
                   int partitions)
      : MaterializedNode(Schema(
            {{"r_id", ValueType::kInt}, {"s_id", ValueType::kInt}})),
        r_(r),
        s_(s),
        grid_(grid),
        radius_(radius),
        zone_height_(zone_height),
        pool_(pool),
        partitions_(partitions) {
    stats_.op = pool_ != nullptr ? "ParallelDistanceJoin" : "DistanceJoin";
  }

 protected:
  void DoOpen() override {
    ScopedTimer timer(&stats_.ms);
    ResetResult();
    relational::DistanceJoinOptions options;
    options.zone_height = zone_height_;
    options.pool = pool_;
    options.partitions = partitions_;
    relational::DistanceJoinStats jstats;
    relational::DistanceJoin(
        r_, s_, grid_, radius_,
        [this](const relational::IdPair& p) {
          Tuple t;
          t.emplace_back(static_cast<int64_t>(p.r_id));
          t.emplace_back(static_cast<int64_t>(p.s_id));
          result_.Add(std::move(t));
        },
        &jstats, options);
    // EXPLAIN's est-vs-actual pages: what the zone sort actually spilled.
    stats_.actual_pages = jstats.sort_pages;
    stats_.actual_elements = jstats.candidate_pairs;
    PROBE_ASSERT_MSG(jstats.pairs == result_.size(),
                     "distance-join pair count disagrees with output size");
    stats_.detail += (stats_.detail.empty() ? "" : " ");
    stats_.detail +=
        "zones=" + std::to_string(jstats.r_zones) + "/" +
        std::to_string(jstats.s_zones) +
        " candidates=" + std::to_string(jstats.candidate_pairs) +
        " pairs=" + std::to_string(jstats.pairs) +
        " merge_partitions=" + std::to_string(jstats.partitions);
  }

 private:
  std::span<const index::PointRecord> r_;
  std::span<const index::PointRecord> s_;
  zorder::GridSpec grid_;
  uint64_t radius_;
  uint64_t zone_height_;
  util::ThreadPool* pool_;
  int partitions_;
};

// ----------------------------------------------------------------- Filter

class FilterNode final : public PlanNode {
 public:
  FilterNode(std::unique_ptr<PlanNode> child,
             std::function<bool(const Tuple&)> predicate)
      : predicate_(std::move(predicate)) {
    stats_.op = "Filter";
    AddChild(std::move(child));
  }

  const Schema& schema() const override { return child(0)->schema(); }

 protected:
  void DoOpen() override { child(0)->Open(); }

  bool DoNext(Tuple* out) override {
    while (child(0)->Next(out)) {
      if (predicate_(*out)) return true;
    }
    return false;
  }

 private:
  std::function<bool(const Tuple&)> predicate_;
};

// ---------------------------------------------------------------- Project

class ProjectNode final : public MaterializedNode {
 public:
  ProjectNode(std::unique_ptr<PlanNode> child, std::vector<std::string> columns,
              bool deduplicate)
      : MaterializedNode(MakeSchema(child->schema(), columns)),
        columns_(std::move(columns)),
        deduplicate_(deduplicate) {
    stats_.op = "Project";
    stats_.detail = deduplicate_ ? "dedup" : "";
    AddChild(std::move(child));
  }

 protected:
  void DoOpen() override {
    child(0)->Open();
    const Relation input = DrainChild(child(0));
    ScopedTimer timer(&stats_.ms);
    ResetResult();
    result_ = relational::Project(input, columns_, deduplicate_);
  }

 private:
  static Schema MakeSchema(const Schema& in,
                           const std::vector<std::string>& columns) {
    std::vector<relational::Column> out;
    for (const std::string& name : columns) {
      const int idx = in.IndexOf(name);
      assert(idx >= 0);
      out.push_back(in.column(idx));
    }
    return Schema(std::move(out));
  }

  std::vector<std::string> columns_;
  bool deduplicate_;
};

// ------------------------------------------------------------------ Limit

class LimitNode final : public PlanNode {
 public:
  LimitNode(std::unique_ptr<PlanNode> child, size_t limit) : limit_(limit) {
    stats_.op = "Limit";
    stats_.detail = "n=" + std::to_string(limit);
    AddChild(std::move(child));
  }

  const Schema& schema() const override { return child(0)->schema(); }

 protected:
  void DoOpen() override { child(0)->Open(); }

  bool DoNext(Tuple* out) override {
    // stats_.rows counts rows already emitted (the base increments it
    // after each successful DoNext), so it doubles as the limit cursor.
    if (stats_.rows >= limit_) return false;
    return child(0)->Next(out);
  }

 private:
  size_t limit_;
};

}  // namespace

void PlanNode::Open() {
  stats_.executed = true;
  if (trace_ != nullptr) span_ = trace_->StartSpan(stats_.op);
  if (pool_ != nullptr && wants_pool_window_) {
    const storage::BufferPoolStats before = pool_->stats();
    window_misses_ = before.misses;
    window_hits_ = before.hits;
    window_open_ = true;
  }
  DoOpen();
}

bool PlanNode::Next(relational::Tuple* out) {
  if (!DoNext(out)) return false;
  ++stats_.rows;
  return true;
}

void PlanNode::Close() {
  DoClose();
  if (window_open_) {
    const storage::BufferPoolStats after = pool_->stats();
    stats_.pool_misses = after.misses - window_misses_;
    stats_.pool_hits = after.hits - window_hits_;
    stats_.has_pool_stats = true;
    window_open_ = false;
  }
  if (span_.active()) {
    span_.Count("rows", stats_.rows);
    if (stats_.actual_pages != 0) span_.Count("pages", stats_.actual_pages);
    if (stats_.has_pool_stats) span_.Count("pool_misses", stats_.pool_misses);
    span_.Finish();
  }
  for (auto& child : children_) child->Close();
}

void PlanNode::AttachInstrumentation(const storage::BufferPool* pool,
                                     obs::Trace* trace) {
  pool_ = pool;
  trace_ = trace;
  for (auto& child : children_) child->AttachInstrumentation(pool, trace);
}

std::unique_ptr<PlanNode> MakeZkdRangeScan(const index::ZkdIndex& index,
                                           const geometry::GridBox& box,
                                           const index::SearchOptions& options,
                                           util::ThreadPool* pool,
                                           int partitions) {
  return std::make_unique<ZkdRangeScanNode>(index, box, options, pool,
                                            partitions);
}

std::unique_ptr<PlanNode> MakeObjectSearch(
    const index::ZkdIndex& index, const geometry::SpatialObject* object,
    std::unique_ptr<const geometry::SpatialObject> owned,
    const index::SearchOptions& options, util::ThreadPool* pool,
    int partitions, const std::string& op_name) {
  return std::make_unique<ObjectSearchNode>(index, object, std::move(owned),
                                            options, pool, partitions,
                                            op_name);
}

std::unique_ptr<PlanNode> MakeAggregateCount(const index::ZkdIndex& index,
                                             const geometry::GridBox& box,
                                             const index::SearchOptions& options) {
  return std::make_unique<AggregateCountNode>(index, box, options);
}

std::unique_ptr<PlanNode> MakeBucketKdScan(const baseline::BucketKdTree& tree,
                                           const geometry::GridBox& box) {
  return std::make_unique<BucketKdScanNode>(tree, box);
}

std::unique_ptr<PlanNode> MakeKNearest(const index::ZkdIndex& index,
                                       const geometry::GridPoint& center,
                                       size_t k) {
  return std::make_unique<KNearestNode>(index, center, k);
}

std::unique_ptr<PlanNode> MakeRelationScan(const relational::Relation& rel) {
  return std::make_unique<RelationScanNode>(rel);
}

std::unique_ptr<PlanNode> MakeEmptyResult(relational::Schema schema) {
  return std::make_unique<EmptyResultNode>(std::move(schema));
}

std::unique_ptr<PlanNode> MakeDecompose(
    std::unique_ptr<PlanNode> child, const zorder::GridSpec& grid,
    const std::string& id_column, const relational::ObjectCatalog& catalog,
    const std::string& z_column, const decompose::DecomposeOptions& options) {
  return std::make_unique<DecomposeNode>(std::move(child), grid, id_column,
                                         catalog, z_column, options);
}

std::unique_ptr<PlanNode> MakeMergeJoin(std::unique_ptr<PlanNode> left,
                                        std::unique_ptr<PlanNode> right,
                                        const std::string& left_z,
                                        const std::string& right_z,
                                        util::ThreadPool* pool,
                                        int partitions) {
  return std::make_unique<MergeJoinNode>(std::move(left), std::move(right),
                                         left_z, right_z, pool, partitions);
}

std::unique_ptr<PlanNode> MakeDistanceJoin(
    std::span<const index::PointRecord> r,
    std::span<const index::PointRecord> s, const zorder::GridSpec& grid,
    uint64_t radius, uint64_t zone_height, util::ThreadPool* pool,
    int partitions) {
  return std::make_unique<DistanceJoinNode>(r, s, grid, radius, zone_height,
                                            pool, partitions);
}

std::unique_ptr<PlanNode> MakeFilter(
    std::unique_ptr<PlanNode> child,
    std::function<bool(const relational::Tuple&)> predicate) {
  return std::make_unique<FilterNode>(std::move(child), std::move(predicate));
}

std::unique_ptr<PlanNode> MakeProject(std::unique_ptr<PlanNode> child,
                                      std::vector<std::string> columns,
                                      bool deduplicate) {
  return std::make_unique<ProjectNode>(std::move(child), std::move(columns),
                                       deduplicate);
}

std::unique_ptr<PlanNode> MakeLimit(std::unique_ptr<PlanNode> child,
                                    size_t limit) {
  return std::make_unique<LimitNode>(std::move(child), limit);
}

}  // namespace probe::query
