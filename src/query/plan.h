#ifndef PROBE_QUERY_PLAN_H_
#define PROBE_QUERY_PLAN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "baseline/bucket_kdtree.h"
#include "decompose/decomposer.h"
#include "geometry/box.h"
#include "geometry/object.h"
#include "geometry/point.h"
#include "index/zkd_index.h"
#include "obs/trace.h"
#include "relational/catalog.h"
#include "relational/relation.h"
#include "util/thread_pool.h"
#include "zorder/grid.h"

namespace probe::storage {
class BufferPool;
}  // namespace probe::storage

/// \file
/// Physical plan nodes: a pull-based (volcano) iterator tree.
///
/// Every node exposes Open / Next / Close and streams tuples to its
/// parent. Leaf scans wrap the existing access paths (zkd merge, parallel
/// partitioned merge, bucket kd tree, k-NN best-first); interior nodes are
/// the relational operators (filter/refinement, project, limit, Decompose,
/// merge spatial join). Blocking operators (join, project-with-dedup,
/// Decompose) materialize in Open and stream from the result — the merge
/// join needs both inputs sorted, exactly as the paper's sort-merge
/// formulation expects.
///
/// Each node carries a NodeStats block: the planner writes the estimated
/// side (pages, elements, the parameters it chose), execution fills the
/// actual side (pages touched, elements generated, rows, time). EXPLAIN
/// renders the tree with both, so estimated-vs-actual drift is visible per
/// operator.

namespace probe::query {

/// Estimated and measured work for one plan node.
struct NodeStats {
  /// Physical operator name, e.g. "ParallelRangeScan".
  std::string op;
  /// Planner-chosen parameters, e.g. "threads=4 depth=full".
  std::string detail;

  /// True when the planner attached a cost estimate.
  bool has_estimate = false;
  uint64_t est_pages = 0;
  uint64_t est_elements = 0;

  /// True once the node has executed (Open reached).
  bool executed = false;
  uint64_t actual_pages = 0;
  uint64_t actual_elements = 0;
  /// Rows this node returned to its parent.
  uint64_t rows = 0;
  /// Time spent inside this node's own work (materialization for blocking
  /// nodes, cumulative streaming for leaf scans); 0 for pass-through
  /// nodes.
  double ms = 0.0;

  /// True when a BufferPool was attached (AttachInstrumentation) and this
  /// node sampled it across its Open..Close window. Only scan nodes that
  /// read through the pool open a window; for a serial plan the window is
  /// exact (misses == physical reads this node caused), for parallel scans
  /// it may include traffic from sibling partitions of the same query.
  bool has_pool_stats = false;
  uint64_t pool_misses = 0;
  uint64_t pool_hits = 0;

  /// True for aggregate-pushdown nodes: `contained_elements` counts the
  /// decomposed elements answered purely from leaf headers and entry
  /// counts, `materialized_rows` the rows that still had to be decoded and
  /// verified (boundary elements under a depth cap). A fully contained
  /// query reports zero materialized rows.
  bool has_aggregate = false;
  uint64_t contained_elements = 0;
  uint64_t materialized_rows = 0;
};

/// A physical operator in the volcano tree.
///
/// The iteration surface (Open/Next/Close) is non-virtual: the base class
/// owns the bookkeeping every operator needs — the executed flag, the row
/// count, the optional buffer-pool window and trace span — and delegates
/// the actual work to the DoOpen/DoNext/DoClose hooks. Operators implement
/// only the hooks, so no node can forget (or double-count) its stats.
class PlanNode {
 public:
  virtual ~PlanNode() = default;

  /// Prepares the node for iteration (blocking nodes do their work here):
  /// marks the node executed, opens its trace span and pool window when
  /// instrumentation is attached, then runs DoOpen. Children are opened by
  /// the operators that consume them (from DoOpen), not implicitly.
  void Open();

  /// Produces the next tuple; false at end of stream. `out` must not be
  /// null. Rows are counted here.
  bool Next(relational::Tuple* out);

  /// Releases resources: runs DoClose, finalizes the pool window and trace
  /// span, then closes the children. Idempotent.
  void Close();

  /// Schema of the tuples this node produces (valid after construction).
  virtual const relational::Schema& schema() const = 0;

  /// Attaches a buffer pool and/or trace to this subtree (either may be
  /// null). Scan nodes sample `pool`'s counters at Open and Close and
  /// report the delta in stats(); every node contributes a trace span
  /// spanning its Open..Close lifetime. Call before Open; both must
  /// outlive the plan's execution.
  void AttachInstrumentation(const storage::BufferPool* pool,
                             obs::Trace* trace);

  NodeStats& stats() { return stats_; }
  const NodeStats& stats() const { return stats_; }

  int child_count() const { return static_cast<int>(children_.size()); }
  PlanNode* child(int i) const { return children_[static_cast<size_t>(i)].get(); }

 protected:
  /// The operator hooks. DoClose defaults to nothing (the base Close
  /// already closes children).
  virtual void DoOpen() = 0;
  virtual bool DoNext(relational::Tuple* out) = 0;
  virtual void DoClose() {}

  void AddChild(std::unique_ptr<PlanNode> child) {
    children_.push_back(std::move(child));
  }

  std::vector<std::unique_ptr<PlanNode>> children_;
  NodeStats stats_;
  /// Scan nodes that read pages through the buffer pool set this in their
  /// constructor; the base then samples the attached pool around the
  /// node's Open..Close window.
  bool wants_pool_window_ = false;

 private:
  const storage::BufferPool* pool_ = nullptr;
  obs::Trace* trace_ = nullptr;
  obs::Trace::Span span_;
  uint64_t window_misses_ = 0;
  uint64_t window_hits_ = 0;
  bool window_open_ = false;
};

// ------------------------------------------------------------- leaf scans

/// Range scan over the zkd index. With `pool` null the scan is the serial
/// skip merge (streamed through ZkdIndex::RangeCursor when `options` are
/// the defaults, materialized otherwise); with a pool it is
/// ParallelRangeSearch cut into `partitions` z intervals. Output schema:
/// (id: int), in z order — bitwise identical between the two forms.
std::unique_ptr<PlanNode> MakeZkdRangeScan(const index::ZkdIndex& index,
                                           const geometry::GridBox& box,
                                           const index::SearchOptions& options,
                                           util::ThreadPool* pool = nullptr,
                                           int partitions = 0);

/// Containment scan for an arbitrary object (serial SearchObject, or
/// ParallelSearchObject when `pool` is set). `owned`, when non-null, is an
/// object the plan keeps alive (e.g. the ball a within-distance query
/// translates to); otherwise `object` must outlive the plan. `op_name`
/// overrides the operator label shown by EXPLAIN (defaults to
/// "ObjectSearch"/"ParallelObjectSearch").
std::unique_ptr<PlanNode> MakeObjectSearch(
    const index::ZkdIndex& index, const geometry::SpatialObject* object,
    std::unique_ptr<const geometry::SpatialObject> owned,
    const index::SearchOptions& options, util::ThreadPool* pool = nullptr,
    int partitions = 0, const std::string& op_name = "");

/// Aggregate pushdown: COUNT(*) of points in `box`, answered inside the
/// index (ZkdIndex::CountBox). Elements fully contained in the box add the
/// run's entry count — whole leaves via their header — without decoding or
/// materializing rows; only boundary elements under a depth cap decode and
/// verify per row. Output schema (count: int), exactly one row.
std::unique_ptr<PlanNode> MakeAggregateCount(
    const index::ZkdIndex& index, const geometry::GridBox& box,
    const index::SearchOptions& options = {});

/// Range scan over the bucket kd tree fallback. Output schema (id: int) in
/// the tree's traversal order (not z order).
std::unique_ptr<PlanNode> MakeBucketKdScan(const baseline::BucketKdTree& tree,
                                           const geometry::GridBox& box);

/// Best-first k-NN search. Output schema (id: int, dist2: int), closest
/// first.
std::unique_ptr<PlanNode> MakeKNearest(const index::ZkdIndex& index,
                                       const geometry::GridPoint& center,
                                       size_t k);

/// Streams an in-memory relation (a join input, typically). Not owned.
std::unique_ptr<PlanNode> MakeRelationScan(const relational::Relation& rel);

/// Produces no rows (the planner emits this when it can prove a join's
/// bounding boxes are disjoint). `schema` is the shape the result would
/// have had.
std::unique_ptr<PlanNode> MakeEmptyResult(relational::Schema schema);

// -------------------------------------------------------- interior nodes

/// The Decompose operator: extends each child tuple with one row per
/// element of its catalog object, sorted by the new `z_column`.
std::unique_ptr<PlanNode> MakeDecompose(
    std::unique_ptr<PlanNode> child, const zorder::GridSpec& grid,
    const std::string& id_column, const relational::ObjectCatalog& catalog,
    const std::string& z_column, const decompose::DecomposeOptions& options);

/// The merge spatial join R[zr <> zs]S over two child streams (serial, or
/// ParallelSpatialJoin when `pool` is set).
std::unique_ptr<PlanNode> MakeMergeJoin(std::unique_ptr<PlanNode> left,
                                        std::unique_ptr<PlanNode> right,
                                        const std::string& left_z,
                                        const std::string& right_z,
                                        util::ThreadPool* pool = nullptr,
                                        int partitions = 0);

/// The zones-style distance join over two borrowed point sets (leaf node —
/// the inputs are not plan children). Output schema (r_id: int, s_id: int)
/// in the join's deterministic order; with a pool the merge is partitioned
/// but the output is bitwise-identical. `zone_height` 0 means
/// max(1, radius).
std::unique_ptr<PlanNode> MakeDistanceJoin(
    std::span<const index::PointRecord> r,
    std::span<const index::PointRecord> s, const zorder::GridSpec& grid,
    uint64_t radius, uint64_t zone_height = 0,
    util::ThreadPool* pool = nullptr, int partitions = 0);

/// Refinement: keeps tuples satisfying `predicate`.
std::unique_ptr<PlanNode> MakeFilter(
    std::unique_ptr<PlanNode> child,
    std::function<bool(const relational::Tuple&)> predicate);

/// Projection onto `columns`; with `deduplicate` equal rows collapse.
std::unique_ptr<PlanNode> MakeProject(std::unique_ptr<PlanNode> child,
                                      std::vector<std::string> columns,
                                      bool deduplicate);

/// Stops after `limit` rows.
std::unique_ptr<PlanNode> MakeLimit(std::unique_ptr<PlanNode> child,
                                    size_t limit);

}  // namespace probe::query

#endif  // PROBE_QUERY_PLAN_H_
