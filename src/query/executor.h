#ifndef PROBE_QUERY_EXECUTOR_H_
#define PROBE_QUERY_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "query/plan.h"
#include "relational/relation.h"

/// \file
/// Driving a physical plan: Open the root, pull every tuple, Close.
///
/// Execution also fills in each node's NodeStats actuals, so a plan that
/// has been run through Execute can be handed to Explain for an
/// estimated-vs-actual report.

namespace probe::query {

/// The materialized output of one plan execution.
struct ExecutionResult {
  relational::Relation rows;
  /// End-to-end wall time of the pull loop (Open + all Next + Close).
  double total_ms = 0.0;
};

/// Runs the tree rooted at `root` to completion and materializes its
/// output.
ExecutionResult Execute(PlanNode& root);

/// Convenience for id-producing plans (range / object / proximity scans):
/// runs the plan and extracts the "id" column as raw ids, in stream order.
std::vector<uint64_t> ExecuteIds(PlanNode& root);

}  // namespace probe::query

#endif  // PROBE_QUERY_EXECUTOR_H_
