#ifndef PROBE_QUERY_EXPLAIN_H_
#define PROBE_QUERY_EXPLAIN_H_

#include <string>

#include "query/plan.h"

/// \file
/// EXPLAIN: rendering a plan tree with its estimates and actuals.
///
/// Before execution the rendering shows the planner's choices and cost
/// estimates; after Execute has pulled the tree, each node also shows the
/// pages/elements/rows it actually produced and its own time — the
/// estimated-vs-actual drift per operator, which is the feedback loop any
/// cost model lives or dies by.

namespace probe::query {

/// Multi-line text rendering of the tree rooted at `root`:
///
///   ParallelRangeScan (depth=full partitions=4)
///     est: 210 pages, 96 elements | actual: 203 pages, 96 elements,
///     4012 rows, 1.8 ms
///
/// Children are indented beneath their parent.
std::string Explain(const PlanNode& root);

/// The same tree as a JSON object (op/detail/estimated/actual/children),
/// for benches that archive plans alongside measurements.
std::string ExplainJson(const PlanNode& root);

/// ExplainJson with one key per line and two-space indentation, ending in
/// a newline — the stable, diffable form the golden plan snapshots under
/// tests/golden/ are stored in.
std::string ExplainJsonPretty(const PlanNode& root);

}  // namespace probe::query

#endif  // PROBE_QUERY_EXPLAIN_H_
