#ifndef PROBE_QUERY_EXPLAIN_H_
#define PROBE_QUERY_EXPLAIN_H_

#include <string>

#include "query/plan.h"

/// \file
/// EXPLAIN: rendering a plan tree with its estimates and actuals.
///
/// Before execution the rendering shows the planner's choices and cost
/// estimates; after Execute has pulled the tree, each node also shows the
/// pages/elements/rows it actually produced and its own time — the
/// estimated-vs-actual drift per operator, which is the feedback loop any
/// cost model lives or dies by.

namespace probe::query {

/// Multi-line text rendering of the tree rooted at `root`:
///
///   ParallelRangeScan (depth=full partitions=4)
///     est: 210 pages, 96 elements | actual: 203 pages, 96 elements,
///     4012 rows, 1.8 ms
///
/// Children are indented beneath their parent.
std::string Explain(const PlanNode& root);

/// The same tree as a JSON object (op/detail/estimated/actual/children),
/// for benches that archive plans alongside measurements.
std::string ExplainJson(const PlanNode& root);

/// ExplainJson with one key per line and two-space indentation, ending in
/// a newline — the stable, diffable form the golden plan snapshots under
/// tests/golden/ are stored in.
std::string ExplainJsonPretty(const PlanNode& root);

// ------------------------------------------------------- EXPLAIN ANALYZE

/// What ExplainAnalyze instruments the run with. Both members optional.
struct ExplainAnalyzeOptions {
  /// When set, the whole-run fetch/hit/miss delta is reported and every
  /// scan node samples its own Open..Close window (NodeStats.pool_*). The
  /// pool must be the one the plan's access paths actually read through.
  const storage::BufferPool* pool = nullptr;
  /// When set, spans land in the caller's trace; otherwise ExplainAnalyze
  /// uses a private per-run trace, rendered into `text`.
  obs::Trace* trace = nullptr;
};

/// The output of one instrumented execution.
struct ExplainAnalyzeResult {
  /// The query's materialized output.
  relational::Relation rows;
  /// End-to-end wall time of the pull loop.
  double total_ms = 0.0;

  /// Whole-run buffer-pool delta (valid when options.pool was set).
  bool has_pool_stats = false;
  uint64_t pool_fetches = 0;
  uint64_t pool_misses = 0;
  uint64_t pool_hits = 0;

  /// Summary line + the executed Explain tree + the per-node trace.
  std::string text;
  /// Pretty JSON: rows/total_ms/pool_* plus the executed plan tree under
  /// "plan" — the shape the explain_analyze golden snapshots store.
  std::string json;
};

/// EXPLAIN ANALYZE: attaches instrumentation to the tree, executes it to
/// completion, and renders estimated-vs-measured work per node. The plan
/// is left executed, so callers can also inspect per-node stats() or
/// re-render with Explain.
ExplainAnalyzeResult ExplainAnalyze(PlanNode& root,
                                    const ExplainAnalyzeOptions& options = {});

}  // namespace probe::query

#endif  // PROBE_QUERY_EXPLAIN_H_
