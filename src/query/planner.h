#ifndef PROBE_QUERY_PLANNER_H_
#define PROBE_QUERY_PLANNER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "baseline/bucket_kdtree.h"
#include "index/cost_model.h"
#include "index/zkd_index.h"
#include "query/plan.h"
#include "query/query.h"
#include "relational/catalog.h"
#include "util/thread_pool.h"

/// \file
/// The cost-based planner: logical Query -> physical PlanNode tree.
///
/// The optimizer the paper's integration argument calls for. Decisions it
/// makes, all priced with CostModel's leaf-snapshot estimates:
///
///  * serial vs parallel scan — a parallel partitioned merge only pays off
///    when enough leaf pages are predicted; the thread count scales with
///    the estimate (one lane per `pages_per_lane` pages).
///  * decomposition depth cap — the Section 5 element-count analysis
///    (CostModel::EstimateDepthCap) caps decomposition when a full-depth
///    cover would blow `element_budget`; capped plans keep candidate
///    verification on, so results stay exact.
///  * access method — when a bucket kd tree is registered and its
///    analytic page estimate beats the z plan's by better than
///    `kd_advantage`, the planner falls back to it (output order then
///    follows the kd traversal, not z order).
///  * join strategy — sides already carrying z columns merge-join
///    directly; object sides get a Decompose operator. When both sides
///    have bounding boxes, EstimateJoinPages prices the merge — and
///    proves the join empty when the bounds are disjoint, collapsing the
///    plan to EmptyResult without touching a page.

namespace probe::query {

/// Planner thresholds. The defaults suit the experiment workloads; every
/// decision can be forced by pushing a threshold to an extreme.
struct PlannerOptions {
  /// Predicted leaf pages at or above which a parallel scan is planned
  /// (when a pool is available).
  uint64_t parallel_page_threshold = 64;

  /// One scan partition per this many predicted leaf pages (clamped to the
  /// pool's lanes).
  uint64_t pages_per_lane = 32;

  /// Element budget for the decomposition depth cap (Section 5 analysis):
  /// full depth is kept while its worst-case element count fits.
  uint64_t element_budget = 1u << 16;

  /// The kd fallback is chosen only when its predicted cost is below
  /// `kd_advantage` times the best z plan's (strictly better, with margin
  /// — the z plan streams and keeps z order, so ties favor it).
  double kd_advantage = 0.5;

  /// Cost coefficients turning page/element estimates into one comparable
  /// cost figure per candidate plan. The defaults price a leaf page of
  /// either structure at 1 and everything else at 0, reducing every
  /// decision to page counts — the paper's I/O-bound assumption. An
  /// in-memory deployment is CPU-bound instead and calibrates these to
  /// measured milliseconds (bench_planner does, with a few probe scans).
  double z_cost_per_page = 1.0;
  double z_cost_per_element = 0.0;
  double kd_cost_per_page = 1.0;
  /// Fixed fan-out cost added to a parallel scan (same units).
  double parallel_overhead = 0.0;

  /// Combined join input rows at or above which the merge join is
  /// parallelized (when a pool is available).
  uint64_t join_parallel_row_threshold = 1u << 13;
};

/// Everything the planner may plan against. `index` is required; the rest
/// are optional capabilities (no pool: serial plans only; no cost model:
/// default plans without estimates; no kd tree: no fallback; no catalog:
/// join sides must be pre-decomposed).
struct PlannerContext {
  const index::ZkdIndex* index = nullptr;
  const index::CostModel* cost_model = nullptr;
  const baseline::BucketKdTree* kd_tree = nullptr;
  const relational::ObjectCatalog* catalog = nullptr;
  util::ThreadPool* pool = nullptr;
};

/// A planned query: the physical tree plus a one-line decision trace
/// ("range: ParallelRangeScan threads=4 est_pages=210 ...").
struct PlannedQuery {
  std::unique_ptr<PlanNode> root;
  std::string summary;
};

/// Plans `query` against `ctx`. The returned tree borrows everything the
/// context and query point to (index, relations, catalog, pool, query
/// object); those must outlive it.
PlannedQuery Plan(const Query& query, const PlannerContext& ctx,
                  const PlannerOptions& options = {});

}  // namespace probe::query

#endif  // PROBE_QUERY_PLANNER_H_
