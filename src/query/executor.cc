#include "query/executor.h"

#include <cassert>
#include <chrono>
#include <utility>

namespace probe::query {

ExecutionResult Execute(PlanNode& root) {
  const auto start = std::chrono::steady_clock::now();
  ExecutionResult result;
  root.Open();
  result.rows = relational::Relation(root.schema());
  relational::Tuple row;
  while (root.Next(&row)) result.rows.Add(std::move(row));
  root.Close();
  result.total_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  return result;
}

std::vector<uint64_t> ExecuteIds(PlanNode& root) {
  std::vector<uint64_t> ids;
  root.Open();
  const int id_index = root.schema().IndexOf("id");
  assert(id_index >= 0);
  relational::Tuple row;
  while (root.Next(&row)) {
    ids.push_back(
        static_cast<uint64_t>(std::get<int64_t>(row[id_index])));
  }
  root.Close();
  return ids;
}

}  // namespace probe::query
