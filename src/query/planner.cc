#include "query/planner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>
#include <utility>
#include <vector>

#include "geometry/primitives.h"
#include "zorder/shuffle.h"

namespace probe::query {

namespace {

using geometry::GridBox;
using index::CostModel;
using index::SearchOptions;

/// Analytic page estimate for the bucket kd tree: median splits carve the
/// space into leaf_count roughly equal bricks, leaf_count^(1/k) per
/// dimension; a box meets extent/brick_width + 1 brick columns per
/// dimension.
uint64_t EstimateKdPages(const baseline::BucketKdTree& tree,
                         const zorder::GridSpec& grid, const GridBox& box) {
  const double leaves = static_cast<double>(std::max<uint64_t>(
      tree.leaf_count(), 1));
  const double per_dim = std::pow(leaves, 1.0 / box.dims());
  const double brick =
      static_cast<double>(grid.side()) / std::max(per_dim, 1.0);
  double estimate = 1.0;
  for (int d = 0; d < box.dims(); ++d) {
    const double extent =
        static_cast<double>(box.range(d).hi - box.range(d).lo) + 1.0;
    estimate *= std::min(per_dim, extent / brick + 1.0);
  }
  return static_cast<uint64_t>(std::llround(std::ceil(estimate)));
}

/// Partition count for a scan predicted to touch `est_pages` leaves.
int ScanPartitions(uint64_t est_pages, const PlannerOptions& options,
                   const util::ThreadPool& pool) {
  const uint64_t wanted =
      std::max<uint64_t>(est_pages / std::max<uint64_t>(options.pages_per_lane, 1), 2);
  return static_cast<int>(
      std::min<uint64_t>(wanted, static_cast<uint64_t>(pool.lanes())));
}

std::string DepthDetail(int cap) {
  return cap < 0 ? "depth=full" : "depth=" + std::to_string(cap);
}

/// Shared box-scan planning: depth cap, page estimate, kd fallback,
/// serial vs parallel. Used by kRange directly and by the bounded
/// object/within-distance scans (which skip the kd fallback — the kd tree
/// only answers boxes).
struct ScanChoice {
  SearchOptions search;
  std::optional<CostModel::Estimate> estimate;
  bool use_kd = false;
  uint64_t kd_pages = 0;
  int partitions = 0;  // 0 = serial
};

ScanChoice ChooseBoxScan(const GridBox& box, const PlannerContext& ctx,
                         const PlannerOptions& options, bool allow_kd) {
  ScanChoice choice;
  if (ctx.cost_model == nullptr) return choice;

  const int cap = CostModel::EstimateDepthCap(ctx.cost_model->grid(), box,
                                              options.element_budget);
  choice.search.max_element_depth = cap;
  choice.estimate = ctx.cost_model->EstimatePages(box, cap);

  // Candidate costs, all in the options' cost units (pages by default).
  const double serial_cost =
      static_cast<double>(choice.estimate->pages) * options.z_cost_per_page +
      static_cast<double>(choice.estimate->elements_used) *
          options.z_cost_per_element;
  double best_z_cost = serial_cost;
  if (ctx.pool != nullptr && ctx.pool->lanes() > 1 &&
      choice.estimate->pages >= options.parallel_page_threshold) {
    const int partitions =
        ScanPartitions(choice.estimate->pages, options, *ctx.pool);
    const double parallel_cost =
        serial_cost / partitions + options.parallel_overhead;
    if (parallel_cost < serial_cost) {
      choice.partitions = partitions;
      best_z_cost = parallel_cost;
    }
  }

  if (allow_kd && ctx.kd_tree != nullptr) {
    choice.kd_pages = EstimateKdPages(*ctx.kd_tree, ctx.cost_model->grid(), box);
    if (static_cast<double>(choice.kd_pages) * options.kd_cost_per_page <
        options.kd_advantage * best_z_cost) {
      choice.use_kd = true;
      choice.partitions = 0;
    }
  }
  return choice;
}

/// Writes the planner's estimate into a scan node's stats block.
void AttachEstimate(PlanNode* node, const CostModel::Estimate& estimate,
                    const std::string& detail) {
  NodeStats& stats = node->stats();
  stats.has_estimate = true;
  stats.est_pages = estimate.pages;
  stats.est_elements = estimate.elements_used;
  stats.detail = detail;
}

/// Wraps `root` with the query's filter / projection / limit decoration.
std::unique_ptr<PlanNode> Decorate(std::unique_ptr<PlanNode> root,
                                   const Query& query) {
  if (query.filter) root = MakeFilter(std::move(root), query.filter);
  if (!query.projection.empty()) {
    root = MakeProject(std::move(root), query.projection, query.deduplicate);
  }
  if (query.limit > 0) root = MakeLimit(std::move(root), query.limit);
  return root;
}

std::string EstimateSummary(const ScanChoice& choice) {
  std::string out;
  if (choice.estimate.has_value()) {
    out += " est_pages=" + std::to_string(choice.estimate->pages);
    out += " " + DepthDetail(choice.search.max_element_depth);
  }
  if (choice.kd_pages > 0) {
    out += " kd_est_pages=" + std::to_string(choice.kd_pages);
  }
  return out;
}

// ------------------------------------------------------------------ range

PlannedQuery PlanRange(const Query& query, const PlannerContext& ctx,
                       const PlannerOptions& options) {
  assert(query.box.has_value());
  const GridBox& box = *query.box;
  const ScanChoice choice = ChooseBoxScan(box, ctx, options, /*allow_kd=*/true);

  PlannedQuery planned;
  if (choice.use_kd) {
    assert(ctx.kd_tree != nullptr);
    planned.root = MakeBucketKdScan(*ctx.kd_tree, box);
    planned.root->stats().has_estimate = true;
    planned.root->stats().est_pages = choice.kd_pages;
    planned.summary = "range: BucketKdScan";
  } else {
    util::ThreadPool* pool = choice.partitions > 0 ? ctx.pool : nullptr;
    planned.root =
        MakeZkdRangeScan(*ctx.index, box, choice.search, pool,
                         choice.partitions);
    std::string detail = DepthDetail(choice.search.max_element_depth);
    if (choice.partitions > 0) {
      detail += " partitions=" + std::to_string(choice.partitions);
    }
    if (choice.estimate.has_value()) {
      AttachEstimate(planned.root.get(), *choice.estimate, detail);
    } else {
      planned.root->stats().detail = detail;
    }
    planned.summary = "range: " + planned.root->stats().op;
    if (choice.partitions > 0) {
      planned.summary += " partitions=" + std::to_string(choice.partitions);
    }
  }
  planned.summary += EstimateSummary(choice);
  planned.root = Decorate(std::move(planned.root), query);
  return planned;
}

// -------------------------------------------------------- aggregate count

PlannedQuery PlanAggregateCount(const Query& query, const PlannerContext& ctx,
                                const PlannerOptions& options) {
  assert(query.box.has_value());
  const GridBox& box = *query.box;
  // Pushdown counts from leaf headers, so it never pays the per-row
  // materialization the kd fallback would; price the scan for EXPLAIN but
  // always take the index path, serial (the count is one cursor pass).
  const ScanChoice choice =
      ChooseBoxScan(box, ctx, options, /*allow_kd=*/false);

  PlannedQuery planned;
  planned.root = MakeAggregateCount(*ctx.index, box, choice.search);
  const std::string detail = DepthDetail(choice.search.max_element_depth);
  if (choice.estimate.has_value()) {
    AttachEstimate(planned.root.get(), *choice.estimate, detail);
  } else {
    planned.root->stats().detail = detail;
  }
  planned.summary = "aggregate-count: " + planned.root->stats().op;
  planned.summary += EstimateSummary(choice);
  planned.root = Decorate(std::move(planned.root), query);
  return planned;
}

// ---------------------------------------------------- object and proximity

PlannedQuery PlanObjectLike(const Query& query, const PlannerContext& ctx,
                            const PlannerOptions& options,
                            const geometry::SpatialObject* object,
                            std::unique_ptr<const geometry::SpatialObject> owned,
                            const std::optional<GridBox>& bound,
                            const std::string& op_name,
                            const std::string& kind_name) {
  ScanChoice choice;
  if (bound.has_value()) {
    // The kd tree answers boxes only, so no fallback here; the bound still
    // prices the scan and picks the depth cap / parallelism.
    choice = ChooseBoxScan(*bound, ctx, options, /*allow_kd=*/false);
  }
  util::ThreadPool* pool = choice.partitions > 0 ? ctx.pool : nullptr;

  PlannedQuery planned;
  planned.root = MakeObjectSearch(*ctx.index, object, std::move(owned),
                                  choice.search, pool, choice.partitions,
                                  op_name.empty()
                                      ? ""
                                      : op_name + (pool != nullptr ? "(parallel)"
                                                                   : ""));
  std::string detail = DepthDetail(choice.search.max_element_depth);
  if (choice.partitions > 0) {
    detail += " partitions=" + std::to_string(choice.partitions);
  }
  if (choice.estimate.has_value()) {
    AttachEstimate(planned.root.get(), *choice.estimate, detail);
  } else {
    planned.root->stats().detail = detail;
  }
  planned.summary = kind_name + ": " + planned.root->stats().op;
  if (choice.partitions > 0) {
    planned.summary += " partitions=" + std::to_string(choice.partitions);
  }
  planned.summary += EstimateSummary(choice);
  planned.root = Decorate(std::move(planned.root), query);
  return planned;
}

PlannedQuery PlanObjectSearch(const Query& query, const PlannerContext& ctx,
                              const PlannerOptions& options) {
  assert(query.object != nullptr);
  return PlanObjectLike(query, ctx, options, query.object, nullptr,
                        query.object_bound, "", "object-search");
}

PlannedQuery PlanWithinDistance(const Query& query, const PlannerContext& ctx,
                                const PlannerOptions& options) {
  // The proximity-to-containment translation of Section 6, built exactly
  // as index::WithinDistance builds it: the ball is centered on the query
  // cell's center (+0.5 per coordinate) so cell-center membership and
  // integer-coordinate distance agree.
  std::vector<double> center(query.center.dims());
  for (int d = 0; d < query.center.dims(); ++d) {
    center[d] = static_cast<double>(query.center[d]) + 0.5;
  }

  // Bounding box of the ball, clamped to the grid, for cost estimation.
  std::optional<GridBox> bound;
  if (ctx.cost_model != nullptr) {
    const uint64_t side = ctx.cost_model->grid().side();
    const auto reach = static_cast<uint32_t>(std::ceil(query.radius));
    std::vector<zorder::DimRange> ranges(center.size());
    for (size_t d = 0; d < ranges.size(); ++d) {
      const uint32_t c = query.center[static_cast<int>(d)];
      ranges[d].lo = c > reach ? c - reach : 0;
      ranges[d].hi = static_cast<uint32_t>(
          std::min<uint64_t>(static_cast<uint64_t>(c) + reach + 1, side - 1));
    }
    bound = GridBox(ranges);
  }

  auto ball =
      std::make_unique<geometry::BallObject>(std::move(center), query.radius);

  return PlanObjectLike(query, ctx, options, nullptr, std::move(ball), bound,
                        "WithinDistanceScan", "within-distance");
}

PlannedQuery PlanKNearest(const Query& query, const PlannerContext& ctx) {
  PlannedQuery planned;
  planned.root = MakeKNearest(*ctx.index, query.center, query.k);
  planned.root->stats().detail = "k=" + std::to_string(query.k);
  planned.summary = "k-nearest: KNearest k=" + std::to_string(query.k);
  planned.root = Decorate(std::move(planned.root), query);
  return planned;
}

// ------------------------------------------------------------------- join

/// Schema a join side presents to the merge (its relation's schema, plus
/// the z column Decompose would append).
relational::Schema SideSchema(const JoinSide& side, const std::string& z_out) {
  const relational::Schema& in = side.relation->schema();
  if (!side.z_column.empty()) return in;
  std::vector<relational::Column> columns;
  for (int i = 0; i < in.column_count(); ++i) columns.push_back(in.column(i));
  columns.push_back({z_out, relational::ValueType::kZValue});
  return relational::Schema(std::move(columns));
}

/// Builds one join input: a scan, plus Decompose when the side is an
/// object relation. Returns the name of the z column the merge should use.
std::unique_ptr<PlanNode> BuildJoinSide(const JoinSide& side,
                                        const std::string& z_out,
                                        const PlannerContext& ctx,
                                        std::string* z_column) {
  auto scan = MakeRelationScan(*side.relation);
  if (!side.z_column.empty()) {
    *z_column = side.z_column;
    return scan;
  }
  assert(ctx.catalog != nullptr &&
         "join side without a z column needs an object catalog");
  *z_column = z_out;
  return MakeDecompose(std::move(scan), ctx.index->grid(), side.id_column,
                       *ctx.catalog, z_out, {});
}

PlannedQuery PlanSpatialJoin(const Query& query, const PlannerContext& ctx,
                             const PlannerOptions& options) {
  assert(query.r.relation != nullptr && query.s.relation != nullptr);
  PlannedQuery planned;

  // Price the join when both sides carry bounds: disjoint bounds prove the
  // join empty before any page is read.
  std::optional<CostModel::JoinEstimate> join_estimate;
  if (ctx.cost_model != nullptr && query.r_bound.has_value() &&
      query.s_bound.has_value()) {
    join_estimate = ctx.cost_model->EstimateJoinPages(
        *ctx.cost_model, *query.r_bound, *query.s_bound);
    if (!join_estimate->overlap) {
      planned.root = MakeEmptyResult(relational::Schema::Concat(
          SideSchema(query.r, query.r_z_out), SideSchema(query.s, query.s_z_out)));
      planned.summary = "spatial-join: EmptyResult (disjoint bounds)";
      planned.root = Decorate(std::move(planned.root), query);
      return planned;
    }
  }

  std::string left_z;
  std::string right_z;
  auto left = BuildJoinSide(query.r, query.r_z_out, ctx, &left_z);
  auto right = BuildJoinSide(query.s, query.s_z_out, ctx, &right_z);

  const uint64_t input_rows =
      query.r.relation->size() + query.s.relation->size();
  int partitions = 0;
  if (ctx.pool != nullptr && ctx.pool->lanes() > 1 &&
      input_rows >= options.join_parallel_row_threshold) {
    partitions = ctx.pool->lanes();
  }
  util::ThreadPool* pool = partitions > 0 ? ctx.pool : nullptr;

  planned.root = MakeMergeJoin(std::move(left), std::move(right), left_z,
                               right_z, pool, partitions);
  if (join_estimate.has_value()) {
    NodeStats& stats = planned.root->stats();
    stats.has_estimate = true;
    stats.est_pages = join_estimate->pages();
    stats.est_elements = join_estimate->elements_used;
  }
  planned.summary = "spatial-join: " + planned.root->stats().op;
  if (partitions > 0) {
    planned.summary += " partitions=" + std::to_string(partitions);
  }
  if (join_estimate.has_value()) {
    planned.summary +=
        " est_pages=" + std::to_string(join_estimate->pages());
  }
  planned.root = Decorate(std::move(planned.root), query);
  return planned;
}

// ---------------------------------------------------------- distance join

PlannedQuery PlanDistanceJoin(const Query& query, const PlannerContext& ctx,
                              const PlannerOptions& options) {
  assert(query.dj_grid.has_value());
  const zorder::GridSpec& grid = *query.dj_grid;

  // Parallelize like the merge join: enough combined input rows and a
  // pool. The chunked merge reproduces the serial output bitwise, so the
  // only planning question is whether the fan-out pays for itself.
  const uint64_t input_rows = query.dj_r.size() + query.dj_s.size();
  int partitions = 0;
  if (ctx.pool != nullptr && ctx.pool->lanes() > 1 &&
      input_rows >= options.join_parallel_row_threshold) {
    partitions = ctx.pool->lanes();
  }
  util::ThreadPool* pool = partitions > 0 ? ctx.pool : nullptr;

  const CostModel::DistanceJoinEstimate estimate =
      CostModel::EstimateDistanceJoinPages(grid, query.dj_r.size(),
                                           query.dj_s.size(), query.dj_radius,
                                           query.dj_zone_height);

  PlannedQuery planned;
  planned.root =
      MakeDistanceJoin(query.dj_r, query.dj_s, grid, query.dj_radius,
                       query.dj_zone_height, pool, partitions);
  NodeStats& stats = planned.root->stats();
  stats.has_estimate = true;
  stats.est_pages = estimate.pages;
  stats.est_elements = estimate.candidate_pairs;
  stats.detail = "radius=" + std::to_string(query.dj_radius) +
                 " est_zones=" + std::to_string(estimate.zones);
  if (query.dj_zone_height != 0) {
    stats.detail += " zone_h=" + std::to_string(query.dj_zone_height);
  }
  if (partitions > 0) {
    stats.detail += " partitions=" + std::to_string(partitions);
  }
  planned.summary = "distance-join: " + stats.op +
                    " radius=" + std::to_string(query.dj_radius) +
                    " est_pages=" + std::to_string(estimate.pages) +
                    " est_candidates=" +
                    std::to_string(estimate.candidate_pairs);
  if (partitions > 0) {
    planned.summary += " partitions=" + std::to_string(partitions);
  }
  planned.root = Decorate(std::move(planned.root), query);
  return planned;
}

}  // namespace

PlannedQuery Plan(const Query& query, const PlannerContext& ctx,
                  const PlannerOptions& options) {
  assert(ctx.index != nullptr || query.kind == QueryKind::kSpatialJoin ||
         query.kind == QueryKind::kDistanceJoin);
  switch (query.kind) {
    case QueryKind::kRange:
      return PlanRange(query, ctx, options);
    case QueryKind::kObjectSearch:
      return PlanObjectSearch(query, ctx, options);
    case QueryKind::kWithinDistance:
      return PlanWithinDistance(query, ctx, options);
    case QueryKind::kKNearest:
      return PlanKNearest(query, ctx);
    case QueryKind::kSpatialJoin:
      return PlanSpatialJoin(query, ctx, options);
    case QueryKind::kDistanceJoin:
      return PlanDistanceJoin(query, ctx, options);
    case QueryKind::kAggregateCount:
      return PlanAggregateCount(query, ctx, options);
  }
  return {};
}

}  // namespace probe::query
