#ifndef PROBE_QUERY_QUERY_H_
#define PROBE_QUERY_QUERY_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "geometry/box.h"
#include "geometry/object.h"
#include "geometry/point.h"
#include "index/zkd_index.h"
#include "relational/catalog.h"
#include "relational/relation.h"
#include "zorder/grid.h"

/// \file
/// The logical query description the planner consumes.
///
/// The paper's central integration claim is that spatial search belongs
/// *inside* the DBMS query processor: a range query is the relational plan
/// `R := Decompose(P); RS := R[zr <> zs]S` and an optimizer chooses how to
/// run it. `Query` is the logical side of that claim — it says *what* is
/// wanted (a box, an object containment, a join, a proximity predicate,
/// plus optional refinement/projection/limit decoration) and nothing about
/// *how*. The planner (planner.h) maps it to a physical plan tree;
/// the executor (executor.h) pulls the tree; EXPLAIN (explain.h) renders
/// what was chosen and what it cost.

namespace probe::query {

/// What a query asks for.
enum class QueryKind {
  /// Points inside an axis-aligned box (Figure 1 / Section 3.3).
  kRange,
  /// Points inside an arbitrary spatial object (decomposed on demand).
  kObjectSearch,
  /// Points within Euclidean distance r of a center (Section 6's
  /// proximity-to-containment translation).
  kWithinDistance,
  /// The k nearest stored points to a center.
  kKNearest,
  /// The spatial join R[zr <> zs]S of Section 4 between two relations.
  kSpatialJoin,
  /// The zones-style distance join DistanceJoin(R, S, r) between two
  /// point sets: every pair within Euclidean distance r.
  kDistanceJoin,
  /// COUNT(*) of points inside a box, answered by aggregate pushdown:
  /// elements fully contained in the box are counted from leaf headers
  /// without materializing rows.
  kAggregateCount,
};

/// Short operator-style name ("range", "join", ...) for traces.
const char* QueryKindName(QueryKind kind);

/// One input of a spatial join. A side is either an *element relation*
/// (`z_column` names the z-value column — the side is already decomposed)
/// or an *object relation* (`z_column` empty; `id_column` names the object
/// ids the planner must run through Decompose via the catalog).
struct JoinSide {
  const relational::Relation* relation = nullptr;
  std::string id_column = "id";
  std::string z_column;
};

/// A logical query. Build with the factory helpers; decorate by assigning
/// `filter` / `projection` / `limit` afterwards.
struct Query {
  QueryKind kind = QueryKind::kRange;

  /// kRange: the query box.
  std::optional<geometry::GridBox> box;

  /// kObjectSearch: the query object (not owned; must outlive the plan)
  /// and an optional bounding box the planner may use for cost estimation
  /// (without one the whole space is assumed).
  const geometry::SpatialObject* object = nullptr;
  std::optional<geometry::GridBox> object_bound;

  /// kWithinDistance / kKNearest: the center point; radius or k.
  geometry::GridPoint center;
  double radius = 0.0;
  size_t k = 0;

  /// kSpatialJoin: the two inputs, the names given to z columns produced
  /// by Decompose, and optional per-side bounding boxes (of all the side's
  /// objects) that let the planner price the join against an index
  /// snapshot — including proving it empty when the bounds are disjoint.
  JoinSide r;
  JoinSide s;
  std::string r_z_out = "zr";
  std::string s_z_out = "zs";
  std::optional<geometry::GridBox> r_bound;
  std::optional<geometry::GridBox> s_bound;

  /// kDistanceJoin: the two point sets (borrowed; must outlive the plan),
  /// the grid they live on, the integer radius in cells, and an optional
  /// zone-height override (0 = the planner's max(1, radius) default).
  std::span<const index::PointRecord> dj_r;
  std::span<const index::PointRecord> dj_s;
  std::optional<zorder::GridSpec> dj_grid;
  uint64_t dj_radius = 0;
  uint64_t dj_zone_height = 0;

  /// Optional refinement predicate applied to every output tuple (the
  /// "attribute filter" of a mixed spatial/non-spatial query).
  std::function<bool(const relational::Tuple&)> filter;

  /// Optional projection onto the named columns; with `deduplicate`, equal
  /// projected rows collapse (the paper's redundancy-removing projection).
  std::vector<std::string> projection;
  bool deduplicate = false;

  /// Keep only the first `limit` rows (0 = unlimited).
  size_t limit = 0;

  // ---------------------------------------------------------- factories

  static Query Range(const geometry::GridBox& range_box) {
    Query q;
    q.kind = QueryKind::kRange;
    q.box = range_box;
    return q;
  }

  static Query ObjectSearch(
      const geometry::SpatialObject& search_object,
      std::optional<geometry::GridBox> bound = std::nullopt) {
    Query q;
    q.kind = QueryKind::kObjectSearch;
    q.object = &search_object;
    q.object_bound = bound;
    return q;
  }

  static Query WithinDistance(const geometry::GridPoint& query_center,
                              double query_radius) {
    Query q;
    q.kind = QueryKind::kWithinDistance;
    q.center = query_center;
    q.radius = query_radius;
    return q;
  }

  static Query KNearest(const geometry::GridPoint& query_center,
                        size_t neighbors) {
    Query q;
    q.kind = QueryKind::kKNearest;
    q.center = query_center;
    q.k = neighbors;
    return q;
  }

  static Query SpatialJoin(JoinSide r_side, JoinSide s_side) {
    Query q;
    q.kind = QueryKind::kSpatialJoin;
    q.r = std::move(r_side);
    q.s = std::move(s_side);
    return q;
  }

  static Query DistanceJoin(std::span<const index::PointRecord> r_points,
                            std::span<const index::PointRecord> s_points,
                            const zorder::GridSpec& join_grid,
                            uint64_t join_radius) {
    Query q;
    q.kind = QueryKind::kDistanceJoin;
    q.dj_r = r_points;
    q.dj_s = s_points;
    q.dj_grid = join_grid;
    q.dj_radius = join_radius;
    return q;
  }

  static Query Count(const geometry::GridBox& count_box) {
    Query q;
    q.kind = QueryKind::kAggregateCount;
    q.box = count_box;
    return q;
  }
};

}  // namespace probe::query

#endif  // PROBE_QUERY_QUERY_H_
