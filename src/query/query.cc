#include "query/query.h"

namespace probe::query {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kRange:
      return "range";
    case QueryKind::kObjectSearch:
      return "object-search";
    case QueryKind::kWithinDistance:
      return "within-distance";
    case QueryKind::kKNearest:
      return "k-nearest";
    case QueryKind::kSpatialJoin:
      return "spatial-join";
    case QueryKind::kDistanceJoin:
      return "distance-join";
    case QueryKind::kAggregateCount:
      return "aggregate-count";
  }
  return "?";
}

}  // namespace probe::query
