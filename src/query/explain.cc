#include "query/explain.h"

#include <cstdio>
#include <utility>

#include "query/executor.h"
#include "storage/buffer_pool.h"
#include "util/bench_json.h"

namespace probe::query {

namespace {

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

void ExplainNode(const PlanNode& node, int depth, std::string* out) {
  const NodeStats& stats = node.stats();
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += stats.op;
  if (!stats.detail.empty()) {
    *out += " (" + stats.detail + ")";
  }
  *out += "\n";

  out->append(static_cast<size_t>(depth) * 2 + 2, ' ');
  if (stats.has_estimate) {
    *out += "est: " + std::to_string(stats.est_pages) + " pages, " +
            std::to_string(stats.est_elements) + " elements";
  } else {
    *out += "est: -";
  }
  *out += " | ";
  if (stats.executed) {
    *out += "actual: " + std::to_string(stats.actual_pages) + " pages, " +
            std::to_string(stats.actual_elements) + " elements, " +
            std::to_string(stats.rows) + " rows, " + FormatMs(stats.ms) +
            " ms";
    if (stats.has_pool_stats) {
      *out += ", " + std::to_string(stats.pool_misses) + " pool misses (" +
              std::to_string(stats.pool_hits) + " hits)";
    }
    if (stats.has_aggregate) {
      *out += ", " + std::to_string(stats.contained_elements) +
              " contained elements, " +
              std::to_string(stats.materialized_rows) + " materialized rows";
    }
  } else {
    *out += "actual: not executed";
  }
  *out += "\n";

  for (int i = 0; i < node.child_count(); ++i) {
    ExplainNode(*node.child(i), depth + 1, out);
  }
}

void ExplainNodeJson(const PlanNode& node, std::string* out) {
  const NodeStats& stats = node.stats();
  *out += "{\"op\": \"" + util::JsonEscape(stats.op) + "\"";
  if (!stats.detail.empty()) {
    *out += ", \"detail\": \"" + util::JsonEscape(stats.detail) + "\"";
  }
  if (stats.has_estimate) {
    *out += ", \"est_pages\": " + std::to_string(stats.est_pages);
    *out += ", \"est_elements\": " + std::to_string(stats.est_elements);
  }
  if (stats.executed) {
    *out += ", \"actual_pages\": " + std::to_string(stats.actual_pages);
    *out += ", \"actual_elements\": " + std::to_string(stats.actual_elements);
    *out += ", \"rows\": " + std::to_string(stats.rows);
    *out += ", \"ms\": " + FormatMs(stats.ms);
  }
  if (stats.has_pool_stats) {
    *out += ", \"pool_misses\": " + std::to_string(stats.pool_misses);
    *out += ", \"pool_hits\": " + std::to_string(stats.pool_hits);
  }
  if (stats.has_aggregate) {
    *out += ", \"contained_elements\": " +
            std::to_string(stats.contained_elements);
    *out += ", \"materialized_rows\": " +
            std::to_string(stats.materialized_rows);
  }
  if (node.child_count() > 0) {
    *out += ", \"children\": [";
    for (int i = 0; i < node.child_count(); ++i) {
      if (i > 0) *out += ", ";
      ExplainNodeJson(*node.child(i), out);
    }
    *out += "]";
  }
  *out += "}";
}

void ExplainNodeJsonPretty(const PlanNode& node, int depth, std::string* out) {
  const NodeStats& stats = node.stats();
  const std::string pad(static_cast<size_t>(depth) * 2 + 2, ' ');
  *out += "{\n";
  *out += pad + "\"op\": \"" + util::JsonEscape(stats.op) + "\"";
  if (!stats.detail.empty()) {
    *out += ",\n" + pad + "\"detail\": \"" + util::JsonEscape(stats.detail) +
            "\"";
  }
  if (stats.has_estimate) {
    *out += ",\n" + pad + "\"est_pages\": " + std::to_string(stats.est_pages);
    *out +=
        ",\n" + pad + "\"est_elements\": " + std::to_string(stats.est_elements);
  }
  if (stats.executed) {
    *out +=
        ",\n" + pad + "\"actual_pages\": " + std::to_string(stats.actual_pages);
    *out += ",\n" + pad +
            "\"actual_elements\": " + std::to_string(stats.actual_elements);
    *out += ",\n" + pad + "\"rows\": " + std::to_string(stats.rows);
    *out += ",\n" + pad + "\"ms\": " + FormatMs(stats.ms);
  }
  if (stats.has_pool_stats) {
    *out +=
        ",\n" + pad + "\"pool_misses\": " + std::to_string(stats.pool_misses);
    *out += ",\n" + pad + "\"pool_hits\": " + std::to_string(stats.pool_hits);
  }
  if (stats.has_aggregate) {
    *out += ",\n" + pad + "\"contained_elements\": " +
            std::to_string(stats.contained_elements);
    *out += ",\n" + pad + "\"materialized_rows\": " +
            std::to_string(stats.materialized_rows);
  }
  if (node.child_count() > 0) {
    *out += ",\n" + pad + "\"children\": [";
    for (int i = 0; i < node.child_count(); ++i) {
      if (i > 0) *out += ", ";
      ExplainNodeJsonPretty(*node.child(i), depth + 1, out);
    }
    *out += "]";
  }
  *out += "\n";
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += "}";
}

}  // namespace

std::string Explain(const PlanNode& root) {
  std::string out;
  ExplainNode(root, 0, &out);
  return out;
}

std::string ExplainJson(const PlanNode& root) {
  std::string out;
  ExplainNodeJson(root, &out);
  return out;
}

std::string ExplainJsonPretty(const PlanNode& root) {
  std::string out;
  ExplainNodeJsonPretty(root, 0, &out);
  out += "\n";
  return out;
}

namespace {

/// Re-indents a pretty-printed block by `spaces` (every line but the
/// first, which sits after its key).
std::string IndentBlock(const std::string& block, int spaces) {
  std::string out;
  const std::string pad(static_cast<size_t>(spaces), ' ');
  for (size_t i = 0; i < block.size(); ++i) {
    out += block[i];
    if (block[i] == '\n' && i + 1 < block.size()) out += pad;
  }
  return out;
}

}  // namespace

ExplainAnalyzeResult ExplainAnalyze(PlanNode& root,
                                    const ExplainAnalyzeOptions& options) {
  obs::Trace local_trace;
  obs::Trace* trace = options.trace != nullptr ? options.trace : &local_trace;
  root.AttachInstrumentation(options.pool, trace);

  storage::BufferPoolStats before;
  if (options.pool != nullptr) before = options.pool->stats();

  ExecutionResult exec = Execute(root);

  ExplainAnalyzeResult out;
  out.rows = std::move(exec.rows);
  out.total_ms = exec.total_ms;
  if (options.pool != nullptr) {
    const storage::BufferPoolStats after = options.pool->stats();
    out.has_pool_stats = true;
    out.pool_fetches = after.fetches - before.fetches;
    out.pool_misses = after.misses - before.misses;
    out.pool_hits = after.hits - before.hits;
  }

  out.text = "Execution: " + std::to_string(out.rows.size()) + " rows, " +
             FormatMs(out.total_ms) + " ms";
  if (out.has_pool_stats) {
    out.text += ", pool: " + std::to_string(out.pool_misses) + " misses / " +
                std::to_string(out.pool_hits) + " hits (" +
                std::to_string(out.pool_fetches) + " fetches)";
  }
  out.text += "\n" + Explain(root);
  out.text += "trace:\n" + trace->RenderText(2);

  out.json = "{\n";
  out.json += "  \"rows\": " + std::to_string(out.rows.size()) + ",\n";
  out.json += "  \"total_ms\": " + FormatMs(out.total_ms) + ",\n";
  if (out.has_pool_stats) {
    out.json += "  \"pool_fetches\": " + std::to_string(out.pool_fetches) +
                ",\n";
    out.json +=
        "  \"pool_misses\": " + std::to_string(out.pool_misses) + ",\n";
    out.json += "  \"pool_hits\": " + std::to_string(out.pool_hits) + ",\n";
  }
  std::string plan = ExplainJsonPretty(root);
  if (!plan.empty() && plan.back() == '\n') plan.pop_back();
  out.json += "  \"plan\": " + IndentBlock(plan, 2) + "\n";
  out.json += "}\n";
  return out;
}

}  // namespace probe::query
