#include "query/explain.h"

#include <cstdio>

#include "util/bench_json.h"

namespace probe::query {

namespace {

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

void ExplainNode(const PlanNode& node, int depth, std::string* out) {
  const NodeStats& stats = node.stats();
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += stats.op;
  if (!stats.detail.empty()) {
    *out += " (" + stats.detail + ")";
  }
  *out += "\n";

  out->append(static_cast<size_t>(depth) * 2 + 2, ' ');
  if (stats.has_estimate) {
    *out += "est: " + std::to_string(stats.est_pages) + " pages, " +
            std::to_string(stats.est_elements) + " elements";
  } else {
    *out += "est: -";
  }
  *out += " | ";
  if (stats.executed) {
    *out += "actual: " + std::to_string(stats.actual_pages) + " pages, " +
            std::to_string(stats.actual_elements) + " elements, " +
            std::to_string(stats.rows) + " rows, " + FormatMs(stats.ms) +
            " ms";
  } else {
    *out += "actual: not executed";
  }
  *out += "\n";

  for (int i = 0; i < node.child_count(); ++i) {
    ExplainNode(*node.child(i), depth + 1, out);
  }
}

void ExplainNodeJson(const PlanNode& node, std::string* out) {
  const NodeStats& stats = node.stats();
  *out += "{\"op\": \"" + util::JsonEscape(stats.op) + "\"";
  if (!stats.detail.empty()) {
    *out += ", \"detail\": \"" + util::JsonEscape(stats.detail) + "\"";
  }
  if (stats.has_estimate) {
    *out += ", \"est_pages\": " + std::to_string(stats.est_pages);
    *out += ", \"est_elements\": " + std::to_string(stats.est_elements);
  }
  if (stats.executed) {
    *out += ", \"actual_pages\": " + std::to_string(stats.actual_pages);
    *out += ", \"actual_elements\": " + std::to_string(stats.actual_elements);
    *out += ", \"rows\": " + std::to_string(stats.rows);
    *out += ", \"ms\": " + FormatMs(stats.ms);
  }
  if (node.child_count() > 0) {
    *out += ", \"children\": [";
    for (int i = 0; i < node.child_count(); ++i) {
      if (i > 0) *out += ", ";
      ExplainNodeJson(*node.child(i), out);
    }
    *out += "]";
  }
  *out += "}";
}

void ExplainNodeJsonPretty(const PlanNode& node, int depth, std::string* out) {
  const NodeStats& stats = node.stats();
  const std::string pad(static_cast<size_t>(depth) * 2 + 2, ' ');
  *out += "{\n";
  *out += pad + "\"op\": \"" + util::JsonEscape(stats.op) + "\"";
  if (!stats.detail.empty()) {
    *out += ",\n" + pad + "\"detail\": \"" + util::JsonEscape(stats.detail) +
            "\"";
  }
  if (stats.has_estimate) {
    *out += ",\n" + pad + "\"est_pages\": " + std::to_string(stats.est_pages);
    *out +=
        ",\n" + pad + "\"est_elements\": " + std::to_string(stats.est_elements);
  }
  if (stats.executed) {
    *out +=
        ",\n" + pad + "\"actual_pages\": " + std::to_string(stats.actual_pages);
    *out += ",\n" + pad +
            "\"actual_elements\": " + std::to_string(stats.actual_elements);
    *out += ",\n" + pad + "\"rows\": " + std::to_string(stats.rows);
    *out += ",\n" + pad + "\"ms\": " + FormatMs(stats.ms);
  }
  if (node.child_count() > 0) {
    *out += ",\n" + pad + "\"children\": [";
    for (int i = 0; i < node.child_count(); ++i) {
      if (i > 0) *out += ", ";
      ExplainNodeJsonPretty(*node.child(i), depth + 1, out);
    }
    *out += "]";
  }
  *out += "\n";
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += "}";
}

}  // namespace

std::string Explain(const PlanNode& root) {
  std::string out;
  ExplainNode(root, 0, &out);
  return out;
}

std::string ExplainJson(const PlanNode& root) {
  std::string out;
  ExplainNodeJson(root, &out);
  return out;
}

std::string ExplainJsonPretty(const PlanNode& root) {
  std::string out;
  ExplainNodeJsonPretty(root, 0, &out);
  out += "\n";
  return out;
}

}  // namespace probe::query
