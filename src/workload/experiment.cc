#include "workload/experiment.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"
#include "workload/querygen.h"

namespace probe::workload {

double PredictedPages2D(double width_cells, double height_cells, double side,
                        uint64_t leaf_pages) {
  // Fixed-size-page model (Section 5.2): the space divides into equal
  // rectangular blocks of at most 6 pages each (2-d bound). With
  // leaf_pages/6 square blocks, a block has side s_b = side*sqrt(6/N).
  // Worst case, a segment of length w overlaps floor(w/s_b) + 2 aligned
  // blocks, so a w x h query touches at most
  // 6 * (floor(w/s_b)+2)(floor(h/s_b)+2) pages.
  const double n = static_cast<double>(leaf_pages);
  if (n <= 0) return 0.0;
  const double pages_per_block = 6.0;
  const double block_side = side * std::sqrt(pages_per_block / n);
  const double blocks = (std::floor(width_cells / block_side) + 2.0) *
                        (std::floor(height_cells / block_side) + 2.0);
  return pages_per_block * blocks;
}

double PredictedPagesKD(std::span<const double> extent_cells, double side,
                        uint64_t leaf_pages) {
  const int dims = static_cast<int>(extent_cells.size());
  assert(dims == 2 || dims == 3);  // the paper derives these two constants
  const double pages_per_block = dims == 2 ? 6.0 : 28.0 / 3.0;
  const double n = static_cast<double>(leaf_pages);
  if (n <= 0) return 0.0;
  // Cubic blocks of volume pages_per_block * side^k / N.
  const double block_side =
      side * std::pow(pages_per_block / n, 1.0 / static_cast<double>(dims));
  double blocks = 1.0;
  for (double extent : extent_cells) {
    blocks *= std::floor(extent / block_side) + 2.0;
  }
  return pages_per_block * blocks;
}

BuiltIndex BuildZkdIndex(const zorder::GridSpec& grid,
                         std::span<const index::PointRecord> points,
                         int page_capacity, size_t pool_frames) {
  BuiltIndex built;
  built.pager = std::make_unique<storage::MemPager>();
  built.pool = std::make_unique<storage::BufferPool>(built.pager.get(),
                                                     pool_frames);
  btree::BTreeConfig config;
  config.leaf_capacity = page_capacity;
  built.index = std::make_unique<index::ZkdIndex>(
      index::ZkdIndex::Build(grid, built.pool.get(), points, config));
  built.leaf_pages = built.index->tree().ComputeShape().leaf_pages;
  return built;
}

ExperimentReport RunRangeExperiment(const ExperimentConfig& config) {
  const auto points = GeneratePoints(config.grid, config.data);
  BuiltIndex built = BuildZkdIndex(config.grid, points, config.page_capacity,
                                   config.pool_frames);

  ExperimentReport report;
  report.points = points.size();
  report.leaf_pages = built.leaf_pages;
  report.tree_height = built.index->tree().height();

  util::Rng rng(config.query_seed);
  const double side = static_cast<double>(config.grid.side());
  for (double volume : config.volumes) {
    for (double aspect : config.aspects) {
      util::Summary pages, efficiency, results;
      double width_cells = 0.0;
      double height_cells = 0.0;
      for (const geometry::GridBox& box : MakeQueryBoxes2D(
               config.grid, volume, aspect, config.locations, rng)) {
        index::QueryStats stats;
        built.index->RangeSearch(box, &stats, config.search);
        pages.Add(static_cast<double>(stats.leaf_pages));
        efficiency.Add(stats.Efficiency());
        results.Add(static_cast<double>(stats.results));
        width_cells = static_cast<double>(box.range(0).width());
        height_cells = static_cast<double>(box.range(1).width());
      }
      ExperimentCell cell;
      cell.volume = volume;
      cell.aspect = aspect;
      cell.mean_pages = pages.Mean();
      cell.max_pages = pages.Max();
      cell.mean_efficiency = efficiency.Mean();
      cell.mean_results = results.Mean();
      cell.predicted_pages =
          PredictedPages2D(width_cells, height_cells, side, report.leaf_pages);
      cell.v_times_n =
          volume * static_cast<double>(report.leaf_pages);
      report.cells.push_back(cell);
    }
  }
  return report;
}

}  // namespace probe::workload
