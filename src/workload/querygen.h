#ifndef PROBE_WORKLOAD_QUERYGEN_H_
#define PROBE_WORKLOAD_QUERYGEN_H_

#include <span>
#include <vector>

#include "geometry/box.h"
#include "util/rng.h"
#include "zorder/grid.h"

/// \file
/// Query workload generation (Section 5.3.2): "queries of various
/// rectangular shapes (and four different volumes) were run in five
/// randomly selected locations."
///
/// A shape is described by a volume fraction (box cells / grid cells) and
/// per-dimension weights; weights (1, 2) mean the box is twice as tall as
/// wide — the shape the analysis predicts is most efficient, along with
/// squares.

namespace probe::workload {

/// Builds one box of roughly `volume_fraction` of the grid with side
/// lengths proportional to `weights`, clamped to the grid; the position is
/// drawn uniformly from placements that keep the box inside the grid.
geometry::GridBox MakeQueryBox(const zorder::GridSpec& grid,
                               double volume_fraction,
                               std::span<const double> weights,
                               util::Rng& rng);

/// `count` boxes of the same shape at random locations.
std::vector<geometry::GridBox> MakeQueryBoxes(const zorder::GridSpec& grid,
                                              double volume_fraction,
                                              std::span<const double> weights,
                                              int count, util::Rng& rng);

/// 2-d helper: weights (1, aspect), i.e. aspect = height / width.
std::vector<geometry::GridBox> MakeQueryBoxes2D(const zorder::GridSpec& grid,
                                                double volume_fraction,
                                                double aspect, int count,
                                                util::Rng& rng);

}  // namespace probe::workload

#endif  // PROBE_WORKLOAD_QUERYGEN_H_
